(** The fft/mlink scenario from §5: a promotion that MOD/REF analysis alone
    cannot prove safe.

    [T1] is a global whose address is taken (by [seed]); the hot loop stores
    through a pointer parameter [out].  Under MOD/REF, the tag set of that
    store is "every address-taken tag" — which includes [T1], so [T1] is
    ambiguous in the loop and stays in memory.  Points-to analysis proves
    [out] can only point at [buf], the store's tag set shrinks to [buf],
    and [T1] promotes.

    {v dune exec examples/needs_pointer.exe v} *)

open Rp_driver

let src =
  {|
float T1;
float buf[512];

void seed(float *p) { *p = 2.5; }

void kernel(float *out, int n) {
  int i;
  for (i = 0; i < n; i++) {
    T1 = T1 * 1.0001;        // wants to live in a register
    out[i] = T1 * 0.5;       // MOD/REF: this store might clobber T1
  }
}

int main() {
  seed(&T1);
  int rep;
  for (rep = 0; rep < 200; rep++) kernel(buf, 512);
  print_float(T1);
  print_float(buf[100]);
  return 0;
}
|}

let run name analysis =
  let cfg = { Config.default with Config.analysis } in
  let (_, stats, r) = Pipeline.compile_and_run ~config:cfg src in
  let t = r.Rp_exec.Interp.total in
  Fmt.pr "%-20s ops=%8d loads=%7d stores=%7d  promoted=%d@." name
    t.Rp_exec.Interp.ops t.Rp_exec.Interp.loads t.Rp_exec.Interp.stores
    stats.Pipeline.promoted;
  r.Rp_exec.Interp.output

let () =
  Fmt.pr "== needs_pointer: promotion gated on analysis precision ==@.@.";
  let o1 = run "modref" Config.Amodref in
  let o2 = run "pointer (points-to)" Config.Apointer in
  assert (o1 = o2);
  Fmt.pr
    "@.points-to analysis shrinks the out[i] store's tag set from every \
     address-taken@.tag down to {buf}, unblocking the promotion of T1 — \
     the paper's fft example.@."
