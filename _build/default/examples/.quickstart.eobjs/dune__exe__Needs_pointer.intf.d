examples/needs_pointer.mli:
