examples/pressure.mli:
