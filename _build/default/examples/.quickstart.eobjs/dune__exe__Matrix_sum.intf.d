examples/matrix_sum.mli:
