examples/matrix_sum.ml: Config Fmt Pipeline Rp_driver Rp_exec String
