examples/pressure.ml: Config Fmt List Pipeline Rp_driver Rp_exec
