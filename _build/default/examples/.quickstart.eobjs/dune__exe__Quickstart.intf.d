examples/quickstart.mli:
