examples/quickstart.ml: Config Fmt Pipeline Rp_driver Rp_exec Rp_ir String
