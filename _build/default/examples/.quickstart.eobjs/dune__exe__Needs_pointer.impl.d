examples/needs_pointer.ml: Config Fmt Pipeline Rp_driver Rp_exec
