examples/figure2.ml: Block Fmt Func Hashtbl Instr List Program Rp_cfg Rp_core Rp_ir Tag Tagset Validate
