examples/particles.mli:
