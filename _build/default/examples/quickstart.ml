(** Quickstart: compile a small C program with and without register
    promotion and watch the memory traffic drop.

    {v dune exec examples/quickstart.exe v} *)

open Rp_driver

let src =
  {|
int total;       // a global: lives in memory, accessed by sLoad/sStore
int hist[32];

void tally(int *data, int n) {
  int i;
  for (i = 0; i < n; i++) {
    total = total + data[i];          // promotable: explicit in the loop
    hist[data[i] & 31] = hist[data[i] & 31] + 1;
  }
}

int main() {
  int buf[64];
  int i;
  for (i = 0; i < 64; i++) buf[i] = i * 7 % 23;
  int rep;
  for (rep = 0; rep < 50; rep++) tally(buf, 64);
  print_int(total);
  return 0;
}
|}

let show name cfg =
  let (prog, stats, result) = Pipeline.compile_and_run ~config:cfg src in
  let t = result.Rp_exec.Interp.total in
  Fmt.pr "%-22s ops=%7d loads=%6d stores=%6d  (promoted %d tags)@." name
    t.Rp_exec.Interp.ops t.Rp_exec.Interp.loads t.Rp_exec.Interp.stores
    stats.Pipeline.promoted;
  (prog, result)

let () =
  Fmt.pr "== quickstart: register promotion on a reduction loop ==@.@.";
  let without = { Config.default with Config.promote = false } in
  let (_, r1) = show "without promotion" without in
  let (prog, r2) = show "with promotion" Config.default in
  assert (r1.Rp_exec.Interp.output = r2.Rp_exec.Interp.output);
  Fmt.pr "@.program output (identical in both configurations): %s@."
    (String.trim r1.Rp_exec.Interp.output);
  Fmt.pr
    "@.The promoted loop body of tally (final IL) — note the copies where@.\
     sLoad/sStore of [total] used to be, and the load/store pushed to the@.\
     landing pad and loop exit:@.@.%a@."
    Rp_ir.Func.pp
    (Rp_ir.Program.func prog "tally")
