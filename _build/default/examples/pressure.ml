(** Register pressure — the water anecdote from §5/§7 of the paper:

    "Register promotion can increase register pressure.  This, in turn, can
    cause the register allocator to spill some values by inserting new loads
    and stores.  These spill operations hurt performance; in some cases,
    this effect can lead to slower code than that obtained without register
    promotion."

    A loop nest touches 28 global scalars per iteration; we sweep the
    physical register count k and print where promotion flips from loss to
    win.

    {v dune exec examples/pressure.exe v} *)

open Rp_driver

let src =
  {|
float e00; float e01; float e02; float e03; float e04; float e05;
float e06; float e07; float e08; float e09; float e10; float e11;
float e12; float e13; float e14; float e15; float e16; float e17;
float e18; float e19; float e20; float e21; float e22; float e23;
float e24; float e25; float e26; float e27;
float pos[32];

void kick(float dt) {
  int i;
  for (i = 0; i < 32; i++) {
    float p = pos[i];
    e00 = e00 + p * dt;      e01 = e01 + e00 * 0.5;
    e02 = e02 + e01 * 0.25;  e03 = e03 + e02 * 0.125;
    e04 = e04 + p;           e05 = e05 + e04 * dt;
    e06 = e06 + e05 * 0.5;   e07 = e07 + e06 * 0.25;
    e08 = e08 + p * p;       e09 = e09 + e08 * dt;
    e10 = e10 + e09 * 0.5;   e11 = e11 + e10 * 0.25;
    e12 = e12 + p;           e13 = e13 + e12 * dt;
    e14 = e14 + e13 * 0.5;   e15 = e15 + e14 * 0.25;
    e16 = e16 + p * dt;      e17 = e17 + e16 * 0.5;
    e18 = e18 + e17 * 0.25;  e19 = e19 + e18 * 0.125;
    e20 = e20 + p;           e21 = e21 + e20 * dt;
    e22 = e22 + e21 * 0.5;   e23 = e23 + e22 * 0.25;
    e24 = e24 + p * p;       e25 = e25 + e24 * dt;
    e26 = e26 + e25 * 0.5;   e27 = e27 + e26 * 0.25;
  }
}

int main() {
  int i;
  for (i = 0; i < 32; i++) pos[i] = 0.001 * (i % 13);
  int step;
  for (step = 0; step < 40; step++) kick(0.01);
  float sum = e00 + e07 + e13 + e19 + e27;
  print_float(sum);
  return 0;
}
|}

let () =
  Fmt.pr "== pressure: promotion vs the register file (water effect) ==@.@.";
  Fmt.pr "%-4s %-9s %10s %10s %10s %8s@." "k" "promotion" "ops" "loads"
    "stores" "spilled";
  let base = ref None in
  List.iter
    (fun k ->
      List.iter
        (fun promote ->
          let cfg = { Config.default with Config.promote; k } in
          let (_, stats, r) = Pipeline.compile_and_run ~config:cfg src in
          (match !base with
          | None -> base := Some r.Rp_exec.Interp.output
          | Some o -> assert (o = r.Rp_exec.Interp.output));
          let t = r.Rp_exec.Interp.total in
          Fmt.pr "%-4d %-9s %10d %10d %10d %8d@." k
            (if promote then "with" else "without")
            t.Rp_exec.Interp.ops t.Rp_exec.Interp.loads
            t.Rp_exec.Interp.stores stats.Pipeline.spilled)
        [ false; true ])
    [ 8; 12; 16; 24; 32; 48 ];
  Fmt.pr
    "@.With few registers the 28 promoted values spill (the allocator \
     'over-spills in@.tight situations') and promotion loses; with a large \
     file it wins outright.@."
