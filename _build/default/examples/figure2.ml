(** Figure 2 of the paper, reconstructed block-for-block through the IR API.

    A triply nested loop; tag A is referenced ambiguously in the outer loop
    (a JSR), explicitly in the inner loop; tag B is stored in the middle
    loop but also referenced by a call and a multi-tag pointer load; tag C
    is only ever explicit.  The promoter must discover:

    {v
      L_PROMOTABLE(outer)  = {C}        L_LIFT(outer)  = {C}
      L_PROMOTABLE(middle) = {A}        L_LIFT(middle) = {A}
      L_PROMOTABLE(inner)  = {A}        L_LIFT(inner)  = {}
    v}

    i.e. "A should be promoted in B3 rather than B5 since loop B3 contains
    loop B5", and C around the outermost loop.

    {v dune exec examples/figure2.exe v} *)

open Rp_ir
module P = Rp_core.Promotion

let () =
  let prog = Program.create () in
  let tag name =
    Tag.Table.fresh prog.Program.tags ~name ~storage:Tag.Global ()
  in
  let a = tag "A" and b = tag "B" and c = tag "C" and d = tag "D" in
  List.iter (fun t -> Program.add_global prog t (Program.Init_zero (Instr.Cint 0))) [ a; b; c; d ];
  let f = Func.create ~name:"figure2" ~nparams:0 in
  let reg () = Func.fresh_reg f in
  let block label instrs term =
    Func.add_block f (Block.create ~instrs ~term label)
  in
  let jsr tags_name targets =
    Instr.Call
      {
        Instr.target = Instr.Direct targets;
        args = [];
        ret = None;
        mods = Tagset.of_list tags_name;
        refs = Tagset.of_list tags_name;
        targets = [ targets ];
        site = Program.fresh_site prog;
      }
  in
  let rc = reg () and r0 = reg () and r1 = reg () and r2 = reg () in
  let r3 = reg () and cond = reg () in
  (* entry -> B0 (pad of outer) -> B1 (outer header) ... B9 (outer exit) *)
  block "entry" [ Instr.Loadi (r0, Instr.Cint 1); Instr.Loadi (cond, Instr.Cint 0) ] (Instr.Jump "B0");
  block "B0" [] (Instr.Jump "B1");
  (* outer loop header: sStore [C]; JSR referencing A ambiguously *)
  block "B1"
    [ Instr.Loads (rc, c); Instr.Stores (c, r0); jsr [ a ] "extA" ]
    (Instr.Jump "B2");
  (* B2: pad of middle loop; pointer load with a multi-tag set {B, D} *)
  block "B2" [ Instr.Loadg (r1, r0, Tagset.of_list [ b; d ]) ] (Instr.Jump "B3");
  (* middle loop header: sStore [B] *)
  block "B3" [ Instr.Stores (b, r2) ] (Instr.Jump "B4");
  (* B4: pad of inner loop; JSR referencing B *)
  block "B4" [ jsr [ b ] "extB" ] (Instr.Jump "B5");
  (* inner loop: sLoad [A] *)
  block "B5" [ Instr.Loads (r3, a) ] (Instr.Jump "B6");
  block "B6" [] (Instr.Cbr (cond, "B5", "B7"));
  block "B7" [] (Instr.Cbr (cond, "B3", "B8"));
  block "B8" [] (Instr.Cbr (cond, "B1", "B9"));
  block "B9" [ Instr.Stores (c, rc) ] (Instr.Ret None);
  f.Func.entry <- "entry";
  (* the example is analysis-only: copy-propagate r2 init to keep it valid *)
  (Func.block f "entry").Block.instrs <-
    (Func.block f "entry").Block.instrs @ [ Instr.Loadi (r2, Instr.Cint 7) ];
  Program.add_func prog f;
  prog.Program.main <- "figure2";
  Validate.assert_ok prog;
  (* --- solve the Figure 1 equations and print the sets --- *)
  let dom = Rp_cfg.Dominators.compute f in
  let forest = Rp_cfg.Loops.analyze f dom in
  let infos = P.analyze_loops f forest in
  Fmt.pr "== Figure 2: equation results per loop ==@.";
  List.iter
    (fun (l : Rp_cfg.Loops.loop) ->
      let info = Hashtbl.find infos l.Rp_cfg.Loops.header in
      Fmt.pr
        "loop@%s (depth %d):@.  L_EXPLICIT   = %a@.  L_AMBIGUOUS  = %a@.  \
         L_PROMOTABLE = %a@.  L_LIFT       = %a@."
        l.Rp_cfg.Loops.header l.Rp_cfg.Loops.depth Tagset.pp info.P.l_explicit
        Tagset.pp info.P.l_ambiguous Tagset.pp info.P.l_promotable Tagset.pp
        info.P.l_lift)
    (List.sort
       (fun a b -> compare a.Rp_cfg.Loops.depth b.Rp_cfg.Loops.depth)
       forest.Rp_cfg.Loops.loops);
  (* --- rewrite and show the transformed code, as in the figure --- *)
  ignore (P.promote_func f : P.stats);
  Fmt.pr "@.== After promotion (compare with the right side of Figure 2) ==@.";
  Fmt.pr "%a@." Func.pp f
