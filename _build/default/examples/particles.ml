(** Structs, the heap, and promotion working together: a linked particle
    system.  Shows
    - struct field accesses carrying the owning object's tag,
    - §3.3 invariant-base promotion firing on a single-field update loop,
    - the global accumulator promoting under §3.1 while the call-bearing
      loop around it blocks promotion at the outer level.

    {v dune exec examples/particles.exe v} *)

open Rp_driver

let src =
  {|
struct Particle {
  float pos;
  float vel;
  struct Particle *next;
};

struct Particle pool[32];
float total_energy;
int n_steps;

struct Particle *build_chain(int n) {
  int i;
  for (i = 0; i < n; i++) {
    pool[i].pos = 0.0;
    pool[i].vel = 0.01 * (i + 1);
    if (i + 1 < n) pool[i].next = &pool[i + 1];
    else pool[i].next = 0;
  }
  return &pool[0];
}

void integrate(struct Particle *p, float dt, float v) {
  // single-field inner loop: p->pos is the only access to pool in here,
  // through an invariant base — §3.3 keeps it in a register for the
  // whole loop.  (Touching p->vel too would create a second base register
  // over the same tag and correctly block the promotion: the tags are
  // per-object, not per-field.)
  int t;
  for (t = 0; t < 100; t++) {
    p->pos = p->pos + v * dt;
  }
}

float energy(struct Particle *head) {
  float e = 0.0;
  struct Particle *p = head;
  while (p != 0) {
    e = e + 0.5 * p->vel * p->vel + p->pos;
    p = p->next;
  }
  return e;
}

int main() {
  struct Particle *head = build_chain(32);
  int step;
  for (step = 0; step < 20; step++) {
    struct Particle *p = head;
    while (p != 0) {
      integrate(p, 0.125, p->vel);
      p = p->next;
    }
    // total_energy and n_steps are globals: promotable in this loop only
    // where no call can touch them
    total_energy = total_energy + energy(head);
    n_steps = n_steps + 1;
  }
  print_float(total_energy);
  print_int(n_steps);
  return 0;
}
|}

let run name cfg =
  let (_, stats, r) = Pipeline.compile_and_run ~config:cfg src in
  let t = r.Rp_exec.Interp.total in
  Fmt.pr "%-26s ops=%8d loads=%7d stores=%7d  ptr-groups=%d@." name
    t.Rp_exec.Interp.ops t.Rp_exec.Interp.loads t.Rp_exec.Interp.stores
    stats.Pipeline.ptr_promoted;
  r.Rp_exec.Interp.output

let () =
  Fmt.pr "== particles: structs + heap-style chains + promotion ==@.@.";
  let o1 =
    run "no promotion" { Config.default with Config.promote = false }
  in
  let o2 = run "scalar promotion" Config.default in
  let o3 =
    run "scalar + §3.3 (pointer)"
      { Config.default with
        Config.analysis = Config.Apointer; ptr_promote = true }
  in
  assert (o1 = o2 && o2 = o3);
  Fmt.pr "@.identical output:@.%s@." (String.trim o1);
  Fmt.pr
    "§3.3 lifts p->pos out of integrate's loop: one Load/Store pair per \
     call@.instead of one per timestep.@."
