(** Figure 3 of the paper: promoting the array reference [B\[i\]] in

    {v
      for (i=0; i<DIM_X; i++) {
        B[i] = 0;
        for (j=0; j<DIM_Y; j++)
          B[i] += A[i][j];
      }
    v}

    [B\[i\]]'s address is invariant in the inner loop and nothing else in
    that loop can touch [B], so §3.3 pointer-based promotion rewrites the
    inner loop to accumulate in a register — "the code that might be
    expected of a good assembly programmer".

    {v dune exec examples/matrix_sum.exe v} *)

open Rp_driver

let src =
  {|
int A[40][30];
int B[40];

int main() {
  int i;
  int j;
  for (i = 0; i < 40; i++)
    for (j = 0; j < 30; j++)
      A[i][j] = (i * 13 + j * 7) % 19;
  for (i = 0; i < 40; i++) {
    B[i] = 0;
    for (j = 0; j < 30; j++) {
      B[i] += A[i][j];
    }
  }
  int sum = 0;
  for (i = 0; i < 40; i++) sum += B[i];
  print_int(sum);
  return 0;
}
|}

let run name cfg =
  let (_, stats, r) = Pipeline.compile_and_run ~config:cfg src in
  let t = r.Rp_exec.Interp.total in
  Fmt.pr "%-28s ops=%6d loads=%6d stores=%6d  (ptr-promoted groups: %d)@."
    name t.Rp_exec.Interp.ops t.Rp_exec.Interp.loads t.Rp_exec.Interp.stores
    stats.Pipeline.ptr_promoted;
  r.Rp_exec.Interp.output

let () =
  Fmt.pr "== Figure 3: promoting B[i] across the inner loop ==@.@.";
  let base = { Config.default with Config.analysis = Config.Amodref } in
  let o1 = run "scalar promotion only" base in
  let o2 =
    run "scalar + §3.3 pointer-based" { base with Config.ptr_promote = true }
  in
  assert (o1 = o2);
  Fmt.pr "@.identical output: %s@." (String.trim o1);
  Fmt.pr
    "The inner-loop load AND store of B[i] become register copies; the load \
     moves@.to the landing pad and the store to the loop exit — one \
     load/store pair per@.row instead of one per element.@."
