(** Lexer, parser, and type-checker tests. *)

open Rp_minic

let lex src =
  Array.to_list (Lexer.tokenize src) |> List.map fst
  |> List.filter (fun t -> t <> Token.EOF)

let token = Alcotest.testable (Fmt.of_to_string Token.to_string) ( = )

let lexer_tests =
  [
    Util.tc "integers, identifiers, operators" (fun () ->
        Util.check
          Alcotest.(list token)
          "tokens"
          [ Token.IDENT "x"; Token.ASSIGN; Token.INT 42; Token.PLUS;
            Token.INT 7; Token.SEMI ]
          (lex "x = 42 + 7;"));
    Util.tc "hex literals" (fun () ->
        Util.check Alcotest.(list token) "hex" [ Token.INT 255 ] (lex "0xff"));
    Util.tc "float literals with exponent" (fun () ->
        match lex "1.5 2. 3e2 4.5e-1" with
        | [ Token.FLOAT a; Token.FLOAT b; Token.FLOAT c; Token.FLOAT d ] ->
          Util.check (Alcotest.float 1e-9) "a" 1.5 a;
          Util.check (Alcotest.float 1e-9) "b" 2.0 b;
          Util.check (Alcotest.float 1e-9) "c" 300.0 c;
          Util.check (Alcotest.float 1e-9) "d" 0.45 d
        | ts ->
          Alcotest.failf "unexpected tokens: %s"
            (String.concat " " (List.map Token.to_string ts)));
    Util.tc "leading-dot float" (fun () ->
        match lex ".25" with
        | [ Token.FLOAT f ] -> Util.check (Alcotest.float 1e-9) "f" 0.25 f
        | _ -> Alcotest.fail "expected one float");
    Util.tc "char literals and escapes" (fun () ->
        Util.check
          Alcotest.(list token)
          "chars"
          [ Token.CHAR 97; Token.CHAR 10; Token.CHAR 0 ]
          (lex "'a' '\\n' '\\0'"));
    Util.tc "line and block comments are skipped" (fun () ->
        Util.check
          Alcotest.(list token)
          "tokens" [ Token.INT 1; Token.INT 2 ]
          (lex "1 // c\n/* multi\nline */ 2"));
    Util.tc "compound operators lex greedily" (fun () ->
        Util.check
          Alcotest.(list token)
          "ops"
          [ Token.LSHIFTEQ; Token.RSHIFT; Token.GE; Token.AMPAMP;
            Token.PLUSPLUS; Token.MINUSEQ; Token.NEQ ]
          (lex "<<= >> >= && ++ -= !="));
    Util.tc "integer vs float disambiguation: 1..2 not consumed" (fun () ->
        (* not valid C anyway, but the lexer must not loop or crash *)
        match lex "1.5" with
        | [ Token.FLOAT _ ] -> ()
        | _ -> Alcotest.fail "bad");
    Util.tc "unterminated comment raises" (fun () ->
        match lex "/* oops" with
        | exception Srcloc.Error _ -> ()
        | _ -> Alcotest.fail "expected lexer error");
    Util.tc "unexpected char raises" (fun () ->
        match lex "$" with
        | exception Srcloc.Error _ -> ()
        | _ -> Alcotest.fail "expected lexer error");
  ]

(* ------------------------------------------------------------------ *)

let parse src = Parser.parse_program src

let parser_tests =
  [
    Util.tc "precedence: 1 + 2 * 3 parses as 1 + (2*3)" (fun () ->
        match parse "int main() { return 1 + 2 * 3; }" with
        | [ Ast.Tfunc { fbody = Some { sdesc = Ast.Sblock [ s ]; _ }; _ } ] -> (
          match s.Ast.sdesc with
          | Ast.Sreturn
              (Some { desc = Ast.Ebinop (Ast.Badd, { desc = Ast.Eint 1; _ },
                                         { desc = Ast.Ebinop (Ast.Bmul, _, _); _ }); _ })
            -> ()
          | _ -> Alcotest.fail "wrong tree")
        | _ -> Alcotest.fail "wrong program");
    Util.tc "assignment is right associative" (fun () ->
        match parse "int main() { int a; int b; a = b = 1; return a; }" with
        | _ -> ());
    Util.tc "array declarator dimensions" (fun () ->
        match parse "int a[3][4];" with
        | [ Ast.Tglobal [ d ] ] ->
          Util.check Alcotest.string "type" "int[3][4]"
            (Fmt.str "%a" Ast.pp_ty d.Ast.dty)
        | _ -> Alcotest.fail "wrong program");
    Util.tc "pointer declarators" (fun () ->
        match parse "int **pp;" with
        | [ Ast.Tglobal [ d ] ] ->
          Util.check Alcotest.string "type" "int**"
            (Fmt.str "%a" Ast.pp_ty d.Ast.dty)
        | _ -> Alcotest.fail "wrong program");
    Util.tc "function-pointer declarator" (fun () ->
        match parse "int (*f)(int, float);" with
        | [ Ast.Tglobal [ d ] ] ->
          Util.check Alcotest.string "type" "int(int, float)*"
            (Fmt.str "%a" Ast.pp_ty d.Ast.dty)
        | _ -> Alcotest.fail "wrong program");
    Util.tc "array of function pointers" (fun () ->
        match parse "int (*tab[4])(int);" with
        | [ Ast.Tglobal [ d ] ] -> (
          match d.Ast.dty with
          | Ast.Tarr (Ast.Tptr (Ast.Tfun (Ast.Tint, [ Ast.Tint ])), 4) -> ()
          | t -> Alcotest.failf "wrong type %s" (Fmt.str "%a" Ast.pp_ty t))
        | _ -> Alcotest.fail "wrong program");
    Util.tc "array parameters decay" (fun () ->
        match parse "int f(int a[], int b[3][4]) { return 0; }" with
        | [ Ast.Tfunc fd ] -> (
          match List.map snd fd.Ast.fparams with
          | [ Ast.Tptr Ast.Tint; Ast.Tptr (Ast.Tarr (Ast.Tint, 4)) ] -> ()
          | _ -> Alcotest.fail "params did not decay")
        | _ -> Alcotest.fail "wrong program");
    Util.tc "dangling else binds to nearest if" (fun () ->
        match
          parse
            "int main() { if (1) if (0) return 1; else return 2; return 3; }"
        with
        | [ Ast.Tfunc { fbody = Some { sdesc = Ast.Sblock [ s; _ ]; _ }; _ } ]
          -> (
          match s.Ast.sdesc with
          | Ast.Sif (_, { sdesc = Ast.Sif (_, _, Some _); _ }, None) -> ()
          | _ -> Alcotest.fail "else bound to the wrong if")
        | _ -> Alcotest.fail "wrong program");
    Util.tc "for with declaration init" (fun () ->
        ignore (parse "int main() { for (int i = 0; i < 3; i++) {} return 0; }"));
    Util.tc "do-while" (fun () ->
        ignore
          (parse "int main() { int i = 0; do { i++; } while (i < 3); return i; }"));
    Util.tc "ternary" (fun () ->
        ignore (parse "int main() { return 1 ? 2 : 3; }"));
    Util.tc "casts" (fun () ->
        ignore
          (parse
             "int main() { float f = (float)3; int i = (int)f; int *p = \
              (int*)0; return i; }"));
    Util.tc "comma-separated declarators" (fun () ->
        match parse "int a, b = 2, c[3];" with
        | [ Ast.Tglobal ds ] ->
          Util.check Alcotest.int "three declarators" 3 (List.length ds)
        | _ -> Alcotest.fail "wrong program");
    Util.tc "prototypes accepted" (fun () ->
        ignore (parse "int f(int x); int main() { return 0; }"));
    Util.expect_frontend_error "missing semicolon" "int main() { return 0 }";
    Util.expect_frontend_error "unbalanced paren" "int main() { return (1; }";
    Util.expect_frontend_error "bad toplevel" "return 0;";
  ]

(* ------------------------------------------------------------------ *)

let tcheck src = Typecheck.check_source src

let typecheck_tests =
  [
    Util.tc "address-taken marking" (fun () ->
        let p =
          tcheck
            "int main() { int x; int y; int *p = &x; *p = 1; y = 2; return \
             x + y; }"
        in
        let main = List.find (fun f -> f.Tast.fname = "main") p.Tast.pfuncs in
        let var name =
          List.find (fun v -> v.Tast.vname = name) main.Tast.flocals
        in
        Util.check Alcotest.bool "x addressed" true (var "x").Tast.vaddr_taken;
        Util.check Alcotest.bool "y not addressed" false
          (var "y").Tast.vaddr_taken);
    Util.tc "arrays live in memory without explicit &" (fun () ->
        let p = tcheck "int main() { int a[4]; a[0] = 1; return a[0]; }" in
        let main = List.find (fun f -> f.Tast.fname = "main") p.Tast.pfuncs in
        let a = List.find (fun v -> v.Tast.vname = "a") main.Tast.flocals in
        Util.check Alcotest.bool "in memory" true (Tast.var_in_memory a));
    Util.tc "direct recursion detected" (fun () ->
        let p =
          tcheck "int f(int n) { if (n) return f(n-1); return 0; } int main() { return f(3); }"
        in
        let f = List.find (fun f -> f.Tast.fname = "f") p.Tast.pfuncs in
        Util.check Alcotest.bool "recursive" true f.Tast.frecursive);
    Util.tc "mutual recursion detected" (fun () ->
        let p =
          tcheck
            "int g(int n); int f(int n) { return g(n); } int g(int n) { if \
             (n) return f(n-1); return 0; } int main() { return f(2); }"
        in
        let f = List.find (fun f -> f.Tast.fname = "f") p.Tast.pfuncs in
        let g = List.find (fun f -> f.Tast.fname = "g") p.Tast.pfuncs in
        Util.check Alcotest.bool "f rec" true f.Tast.frecursive;
        Util.check Alcotest.bool "g rec" true g.Tast.frecursive);
    Util.tc "recursion through function pointers is conservative" (fun () ->
        let p =
          tcheck
            "int h(int n); int (*fp)(int); int h(int n) { return fp(n); } \
             int main() { fp = h; return h(1); }"
        in
        let h = List.find (fun f -> f.Tast.fname = "h") p.Tast.pfuncs in
        Util.check Alcotest.bool "h possibly recursive" true h.Tast.frecursive);
    Util.tc "non-recursive stays non-recursive" (fun () ->
        let p = tcheck "int f(int n) { return n; } int main() { return f(1); }" in
        let f = List.find (fun f -> f.Tast.fname = "f") p.Tast.pfuncs in
        Util.check Alcotest.bool "not recursive" false f.Tast.frecursive);
    Util.tc "global initializers fold constants" (fun () ->
        let p = tcheck "int x = 2 * 3 + 1; int main() { return x; }" in
        match List.assoc_opt "x"
                (List.map (fun (v, i) -> (v.Tast.vname, i)) p.Tast.pglobals)
        with
        | Some (Tast.Gwords [ Tast.Wint 7 ]) -> ()
        | _ -> Alcotest.fail "expected folded initializer 7");
    Util.tc "array initializer pads with zeros" (fun () ->
        let p = tcheck "int a[4] = {1, 2}; int main() { return a[3]; }" in
        match List.assoc_opt "a"
                (List.map (fun (v, i) -> (v.Tast.vname, i)) p.Tast.pglobals)
        with
        | Some (Tast.Gwords [ Tast.Wint 1; Tast.Wint 2; Tast.Wint 0; Tast.Wint 0 ]) -> ()
        | _ -> Alcotest.fail "expected padded initializer");
    Util.tc "int literal initializer for float global converts" (fun () ->
        let p = tcheck "float f = 3; int main() { return (int)f; }" in
        match List.assoc_opt "f"
                (List.map (fun (v, i) -> (v.Tast.vname, i)) p.Tast.pglobals)
        with
        | Some (Tast.Gwords [ Tast.Wflt 3.0 ]) -> ()
        | _ -> Alcotest.fail "expected converted initializer");
    Util.expect_frontend_error "undeclared variable" "int main() { return z; }";
    Util.expect_frontend_error "void variable" "void v; int main() { return 0; }";
    Util.expect_frontend_error "break outside loop" "int main() { break; return 0; }";
    Util.expect_frontend_error "continue outside loop"
      "int main() { continue; return 0; }";
    Util.expect_frontend_error "assign to array"
      "int main() { int a[3]; int b[3]; a = b; return 0; }";
    Util.expect_frontend_error "call with wrong arity"
      "int f(int x) { return x; } int main() { return f(1, 2); }";
    Util.expect_frontend_error "return value from void"
      "void f() { return 3; } int main() { return 0; }";
    Util.expect_frontend_error "missing return value"
      "int f() { return; } int main() { return 0; }";
    Util.expect_frontend_error "no main" "int f() { return 0; }";
    Util.expect_frontend_error "duplicate global" "int x; int x; int main() { return 0; }";
    Util.expect_frontend_error "redefining a builtin"
      "int rand() { return 4; } int main() { return 0; }";
    Util.expect_frontend_error "float bitwise operator"
      "int main() { float f = 1.0; return (int)(f & 2.0); }";
    Util.expect_frontend_error "indexing a non-pointer"
      "int main() { int x = 1; return x[0]; }";
    Util.expect_frontend_error "dereferencing an int"
      "int main() { int x = 1; return *x; }";
    Util.expect_frontend_error "address of rvalue" "int main() { return *&3; }";
    Util.expect_frontend_error "too many initializers"
      "int a[2] = {1,2,3}; int main() { return 0; }";
    Util.expect_frontend_error "conflicting prototype"
      "int f(int x); float f(float x) { return x; } int main() { return 0; }";
  ]

(* ------------------------------------------------------------------ *)

let struct_tests =
  [
    Util.tc "struct layout: offsets in declaration order" (fun () ->
        match
          parse
            "struct P { int x; float f; int arr[3]; struct P *next; }; \
             struct P g; int main() { return 0; }"
        with
        | Ast.Tstructdef sd :: _ ->
          Util.check Alcotest.int "size" 6 sd.Ast.ssize;
          let off n =
            match Ast.field sd n with
            | Some (_, _, o) -> o
            | None -> Alcotest.failf "missing field %s" n
          in
          Util.check Alcotest.int "x" 0 (off "x");
          Util.check Alcotest.int "f" 1 (off "f");
          Util.check Alcotest.int "arr" 2 (off "arr");
          Util.check Alcotest.int "next" 5 (off "next")
        | _ -> Alcotest.fail "expected a struct definition");
    Util.tc "nested structs compose sizes" (fun () ->
        match
          parse
            "struct In { int a; int b; }; struct Out { struct In i; int c; \
             }; struct Out o; int main() { return 0; }"
        with
        | _ :: Ast.Tstructdef sd :: _ ->
          Util.check Alcotest.int "size" 3 sd.Ast.ssize
        | _ -> Alcotest.fail "expected definitions");
    Util.tc "self-referential pointers allowed" (fun () ->
        ignore
          (tcheck
             "struct Node { int v; struct Node *next; }; struct Node a; \
              struct Node b; int main() { a.v = 1; a.next = &b; b.v = 2; \
              b.next = 0; return a.next->v; }"));
    Util.tc "dot and arrow resolve fields" (fun () ->
        ignore
          (tcheck
             "struct P { int x; int y; }; struct P g; int main() { struct P \
              *p = &g; g.x = 3; p->y = 4; return g.x + p->y + (&g)->x; }"));
    Util.expect_frontend_error "unknown struct"
      "struct Nope v; int main() { return 0; }";
    Util.expect_frontend_error "unknown field"
      "struct P { int x; }; struct P g; int main() { return g.z; }";
    Util.expect_frontend_error "dot on a pointer"
      "struct P { int x; }; struct P g; int main() { struct P *p = &g; \
       return p.x; }";
    Util.expect_frontend_error "arrow on a non-pointer"
      "struct P { int x; }; struct P g; int main() { return g->x; }";
    Util.expect_frontend_error "whole-struct assignment"
      "struct P { int x; }; struct P a; struct P b; int main() { a = b; \
       return 0; }";
    Util.expect_frontend_error "struct parameter by value"
      "struct P { int x; }; int f(struct P p) { return p.x; } int main() { \
       return 0; }";
    Util.expect_frontend_error "struct return by value"
      "struct P { int x; }; struct P f() { struct P p; return p; } int \
       main() { return 0; }";
    Util.expect_frontend_error "struct redefinition"
      "struct P { int x; }; struct P { int y; }; int main() { return 0; }";
    Util.expect_frontend_error "duplicate field"
      "struct P { int x; int x; }; int main() { return 0; }";
    Util.expect_frontend_error "empty struct"
      "struct P { }; int main() { return 0; }";
    Util.expect_frontend_error "struct global initializer"
      "struct P { int x; }; struct P g = {1}; int main() { return 0; }";
  ]

let () =
  Alcotest.run "frontend"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("typecheck", typecheck_tests);
      ("structs", struct_tests);
    ]
