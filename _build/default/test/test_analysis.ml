(** Interprocedural analysis tests: call graph + SCC condensation, MOD/REF
    summaries and tag-set limiting, and the points-to analysis with its
    refinement of pointer operations and indirect calls. *)

open Rp_ir
module CG = Rp_analysis.Callgraph
module MR = Rp_analysis.Modref
module PT = Rp_analysis.Pointsto
module SS = Rp_support.Smaps.String_set

let tag_names ts =
  match ts with
  | Tagset.Univ -> [ "*" ]
  | _ -> List.map (fun (t : Tag.t) -> t.Tag.name) (Tagset.elements ts)
    |> List.sort compare

let callgraph_tests =
  [
    Util.tc "direct edges and reachability" (fun () ->
        let p =
          Util.front
            "int h() { return 1; } int g() { return h(); } int f() { return \
             g(); } int main() { return f(); }"
        in
        let cg = CG.build p ~targets_of:(CG.conservative_targets p) in
        Util.check Alcotest.bool "main reaches h" true (CG.reaches cg "main" "h");
        Util.check Alcotest.bool "h reaches main" false (CG.reaches cg "h" "main");
        Util.check Alcotest.bool "reflexive" true (CG.reaches cg "g" "g"));
    Util.tc "SCCs in reverse topological order" (fun () ->
        let p =
          Util.front
            "int b(int n); int a(int n) { if (n) return b(n-1); return 0; } \
             int b(int n) { return a(n); } int main() { return a(5); }"
        in
        let cg = CG.build p ~targets_of:(CG.conservative_targets p) in
        (* the {a,b} component must come before {main} *)
        let pos name =
          let rec go i = function
            | [] -> -1
            | scc :: rest -> if List.mem name scc then i else go (i + 1) rest
          in
          go 0 cg.CG.sccs
        in
        Util.check Alcotest.bool "a and b share an SCC" true (pos "a" = pos "b");
        Util.check Alcotest.bool "callee SCC first" true (pos "a" < pos "main"));
    Util.tc "addressed functions collected" (fun () ->
        let p =
          Util.front
            "int f(int x) { return x; } int (*fp)(int); int main() { fp = \
             f; return fp(3); }"
        in
        let addr = CG.addressed_functions p in
        Util.check Alcotest.bool "f addressed" true (SS.mem "f" addr);
        Util.check Alcotest.bool "main not addressed" false (SS.mem "main" addr));
    Util.tc "indirect calls resolve conservatively to addressed functions"
      (fun () ->
        let p =
          Util.front
            "int f(int x) { return x; } int g(int x) { return x + 1; } int \
             (*fp)(int); int main() { fp = f; fp = g; return fp(3); }"
        in
        let cg = CG.build p ~targets_of:(CG.conservative_targets p) in
        let callees = CG.callees_of cg "main" in
        Util.check Alcotest.bool "f possible" true (SS.mem "f" callees);
        Util.check Alcotest.bool "g possible" true (SS.mem "g" callees));
  ]

(* ------------------------------------------------------------------ *)

let modref_tests =
  [
    Util.tc "leaf function summaries" (fun () ->
        let p =
          Util.front
            "int g1; int g2; void w() { g1 = 1; } int r() { return g2; } \
             int main() { w(); return r(); }"
        in
        let mr = MR.run p in
        Util.check Alcotest.(list string) "MOD w" [ "g1" ]
          (tag_names (MR.summary mr "w").MR.mods);
        Util.check Alcotest.(list string) "REF w" []
          (tag_names (MR.summary mr "w").MR.refs);
        Util.check Alcotest.(list string) "REF r" [ "g2" ]
          (tag_names (MR.summary mr "r").MR.refs));
    Util.tc "summaries propagate through callers" (fun () ->
        let p =
          Util.front
            "int g1; void w() { g1 = 1; } void mid() { w(); } int main() { \
             mid(); return g1; }"
        in
        let mr = MR.run p in
        Util.check Alcotest.(list string) "MOD mid includes callee" [ "g1" ]
          (tag_names (MR.summary mr "mid").MR.mods));
    Util.tc "recursive cycle members share a summary" (fun () ->
        let p =
          Util.front
            "int g1; int g2; int b(int n); int a(int n) { g1 = n; if (n) \
             return b(n-1); return 0; } int b(int n) { g2 = n; return a(n); \
             } int main() { return a(3); }"
        in
        let mr = MR.run p in
        Util.check Alcotest.(list string) "MOD a" [ "g1"; "g2" ]
          (tag_names (MR.summary mr "a").MR.mods);
        Util.check Alcotest.(list string) "MOD b" [ "g1"; "g2" ]
          (tag_names (MR.summary mr "b").MR.mods));
    Util.tc "pointer ops limited to address-taken tags" (fun () ->
        let p =
          Util.front
            "int x; int y; int main() { int *p = &x; *p = 1; y = 2; return \
             x + y; }"
        in
        ignore (MR.run p : MR.t);
        (* find the store through p; its tag set must contain x (addressed)
           but not y (never addressed) *)
        let f = Program.func p "main" in
        let found = ref false in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              found := true;
              Util.check Alcotest.bool "x possible" true
                (List.mem "x" (tag_names ts));
              Util.check Alcotest.bool "y excluded" false
                (List.mem "y" (tag_names ts))
            | _ -> ())
          f;
        Util.check Alcotest.bool "store found" true !found);
    Util.tc "locals visible only in descendants of their creator" (fun () ->
        let p =
          Util.front
            "void callee(int *p) { *p = 7; } int unrelated(int *q) { return \
             *q; } int main() { int loc = 0; callee(&loc); int z = 1; return \
             unrelated(&z) + loc; }"
        in
        ignore (MR.run p : MR.t);
        (* both callee and unrelated are called from main, so both see
           main's addressed locals; but main.loc must never appear in a
           function main does not reach... construct: nobody_calls *)
        let p2 =
          Util.front
            "int g; void never_called(int *p) { *p = 1; } int main() { int \
             loc = 0; int *q = &loc; *q = 3; g = loc; return g; }"
        in
        ignore (MR.run p2 : MR.t);
        let f = Program.func p2 "never_called" in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.bool "main.loc invisible" false
                (List.mem "main.loc" (tag_names ts))
            | _ -> ())
          f);
    Util.tc "builtin calls keep empty summaries" (fun () ->
        let p = Util.front "int main() { print_int(rand()); return 0; }" in
        ignore (MR.run p : MR.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Call c ->
              Util.check Alcotest.bool "empty mods" true
                (Tagset.is_empty c.Instr.mods)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "heap tags are in the address-taken universe" (fun () ->
        let p =
          Util.front
            "int main() { int *p = malloc(4); p[0] = 1; return p[0]; }"
        in
        ignore (MR.run p : MR.t);
        let f = Program.func p "main" in
        let saw_heap = ref false in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              if List.exists (fun n -> String.length n >= 4 && String.sub n 0 4 = "heap")
                   (tag_names ts)
              then saw_heap := true
            | _ -> ())
          f;
        Util.check Alcotest.bool "heap tag possible" true !saw_heap);
    Util.tc "re-running MOD/REF is stable" (fun () ->
        let p =
          Util.front
            "int g; void w() { g = 1; } int main() { w(); return g; }"
        in
        let m1 = MR.run p in
        let m2 = MR.run p in
        Util.check Alcotest.(list string) "same MOD"
          (tag_names (MR.summary m1 "w").MR.mods)
          (tag_names (MR.summary m2 "w").MR.mods));
  ]

(* ------------------------------------------------------------------ *)

let pointsto_tests =
  [
    Util.tc "points-to narrows a pointer store to its array" (fun () ->
        let p =
          Util.front
            "int x; int buf[8]; void fill(int *out) { int i; for (i = 0; i \
             < 8; i++) out[i] = i; } int main() { int *px = &x; *px = 5; \
             fill(buf); return x + buf[3]; }"
        in
        ignore (PT.run p : PT.t);
        let f = Program.func p "fill" in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "exactly buf" [ "buf" ]
                (tag_names ts)
            | _ -> ())
          f);
    Util.tc "distinct heap sites stay distinct" (fun () ->
        let p =
          Util.front
            "int main() { int *a = malloc(4); int *b = malloc(4); a[0] = 1; \
             b[0] = 2; return a[0] + b[0]; }"
        in
        ignore (PT.run p : PT.t);
        let f = Program.func p "main" in
        let sets = ref [] in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) -> sets := tag_names ts :: !sets
            | _ -> ())
          f;
        (* each store sees exactly one heap site, and they differ *)
        (match List.sort_uniq compare !sets with
        | [ [ h1 ]; [ h2 ] ] when h1 <> h2 -> ()
        | other ->
          Alcotest.failf "expected two singleton heap sets, got %s"
            (String.concat " | " (List.map (String.concat ",") other))));
    Util.tc "indirect call targets narrowed to assigned functions" (fun () ->
        let p =
          Util.front
            "int f(int x) { return x; } int g(int x) { return x + 1; } int \
             h(int x) { return x + 2; } int (*fp)(int); int main() { fp = \
             f; int r = fp(1); fp = g; r = r + fp(2); int (*unused)(int) = \
             h; return r; }"
        in
        ignore (PT.run p : PT.t);
        let f = Program.func p "main" in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Call ({ target = Instr.Indirect _; _ } as c) ->
              Util.check Alcotest.bool "f or g possible" true
                (List.mem "f" c.Instr.targets || List.mem "g" c.Instr.targets);
              Util.check Alcotest.bool "h excluded" false
                (List.mem "h" c.Instr.targets)
            | _ -> ())
          f);
    Util.tc "pointers stored in globals flow through memory" (fun () ->
        let p =
          Util.front
            "int x; int y; int *gp; void set() { gp = &x; } int main() { \
             set(); *gp = 4; return x + y; }"
        in
        ignore (PT.run p : PT.t);
        let f = Program.func p "main" in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "through gp: only x" [ "x" ]
                (tag_names ts)
            | _ -> ())
          f);
    Util.tc "refinement never widens the front end's sets" (fun () ->
        let p =
          Util.front
            "int a[4]; int main() { int i; for (i = 0; i < 4; i++) a[i] = \
             i; return a[2]; }"
        in
        ignore (PT.run p : PT.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) | Instr.Loadg (_, _, ts) ->
              Util.check Alcotest.(list string) "still exactly a" [ "a" ]
                (tag_names ts)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "pointer arithmetic stays within the object" (fun () ->
        let p =
          Util.front
            "int buf[8]; int other[8]; int main() { int *p = buf; p = p + \
             3; *p = 9; return buf[3] + other[0]; }"
        in
        ignore (PT.run p : PT.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "only buf" [ "buf" ]
                (tag_names ts)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "recursion collapses activations (weak updates only)" (fun () ->
        (* the address of a recursive function's local escapes; analysis
           must keep the program working through the single shared tag *)
        let src =
          "int depth(int n, int *up) { int here = n; if (n == 0) return \
           *up; return depth(n - 1, &here); } int main() { int top = 9; \
           return depth(3, &top); }"
        in
        let out = Util.differential src in
        Util.check Alcotest.string "value" "" out);
  ]

(* ------------------------------------------------------------------ *)

module ST = Rp_analysis.Steensgaard

let steens_cfg =
  { Rp_driver.Config.default with
    Rp_driver.Config.analysis = Rp_driver.Config.Asteens }

let steensgaard_tests =
  [
    Util.tc "narrows a single-target pointer" (fun () ->
        let p =
          Util.front
            "int x; int y; int main() { int *px = &x; *px = 5; y = 2; \
             return x + y; }"
        in
        ignore (ST.run p : ST.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "exactly x" [ "x" ]
                (tag_names ts)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "conflates a two-target pointer (unification!)" (fun () ->
        let p =
          Util.front
            "int x; int y; int main() { int *p; if (rand() % 2) p = &x; \
             else p = &y; *p = 1; return x + y; }"
        in
        ignore (ST.run p : ST.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "both x and y" [ "x"; "y" ]
                (tag_names ts)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "keeps independent pointers separate" (fun () ->
        let p =
          Util.front
            "int a[4]; int b[4]; void fill(int *q, int v) { q[0] = v; } int \
             main() { fill(a, 1); int *pb = b; pb[0] = 2; return a[0] + \
             b[0]; }"
        in
        ignore (ST.run p : ST.t);
        (* pb only ever saw b *)
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Storeg (_, _, ts) ->
              Util.check Alcotest.(list string) "only b" [ "b" ] (tag_names ts)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "function pointers resolve through the cell" (fun () ->
        let p =
          Util.front
            "int f(int x) { return x; } int g(int x) { return x + 1; } int \
             h(int x) { return x + 2; } int (*fp)(int); int (*other)(int); \
             int main() { fp = f; fp = g; other = h; return fp(1); }"
        in
        ignore (ST.run p : ST.t);
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Call ({ target = Instr.Indirect _; _ } as c) ->
              Util.check Alcotest.bool "f and g in" true
                (List.mem "f" c.Instr.targets && List.mem "g" c.Instr.targets);
              Util.check Alcotest.bool "h excluded" false
                (List.mem "h" c.Instr.targets)
            | _ -> ())
          (Program.func p "main"));
    Util.tc "all benchmarks run correctly under steens" (fun () ->
        List.iter
          (fun name ->
            let src = (Rp_suite.Programs.find name).Rp_suite.Programs.source in
            Util.check Alcotest.string (name ^ " output") (Util.output src)
              (Util.output ~config:steens_cfg src))
          [ "fft"; "bc"; "gzip(dec)"; "dhrystone"; "allroots" ]);
    Util.tc "precision order: steens between modref and pointer on bc"
      (fun () ->
        let src = (Rp_suite.Programs.find "bc").Rp_suite.Programs.source in
        let stores cfg =
          let (_, _, s) = Util.counts ~config:cfg src in
          s
        in
        let s_modref = stores Rp_driver.Config.default in
        let s_steens = stores steens_cfg in
        let s_pointer =
          stores
            { Rp_driver.Config.default with
              Rp_driver.Config.analysis = Rp_driver.Config.Apointer }
        in
        Util.check Alcotest.bool "steens <= modref stores" true
          (s_steens <= s_modref);
        Util.check Alcotest.bool "pointer <= steens stores" true
          (s_pointer <= s_steens));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("callgraph", callgraph_tests);
      ("modref", modref_tests);
      ("pointsto", pointsto_tests);
      ("steensgaard", steensgaard_tests);
    ]
