(** Shared helpers for the test suite. *)

open Rp_driver

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

(** Compile source text to IL (front end only). *)
let front src = Rp_irgen.Irgen.compile_source src

(** Compile under a configuration. *)
let compile ?(config = Config.default) src = fst (Pipeline.compile ~config src)

(** Compile and run; returns the interpreter result. *)
let run ?(config = Config.default) ?fuel src =
  let (_, _, r) = Pipeline.compile_and_run ~config ?fuel src in
  r

let output ?config ?fuel src = (run ?config ?fuel src).Rp_exec.Interp.output

(** Run [src] under every configuration in [configs] (default: a broad
    grid) and assert identical outputs; returns the common output. *)
let differential ?(configs = []) src =
  let configs =
    if configs <> [] then configs
    else
      [
        ("O0",
         { Config.default with
           Config.analysis = Config.Anone; promote = false; optimize = false;
           regalloc = false });
        ("opt-only",
         { Config.default with Config.analysis = Config.Anone; promote = false });
        ("modref", { Config.default with Config.promote = false });
        ("modref+promo", Config.default);
        ("pointer+promo",
         { Config.default with Config.analysis = Config.Apointer });
        ("pointer+ptr+always",
         { Config.default with
           Config.analysis = Config.Apointer; ptr_promote = true;
           always_store = true });
        ("k8", { Config.default with Config.k = 8 });
      ]
  in
  let results =
    List.map (fun (n, cfg) -> (n, run ~config:cfg src)) configs
  in
  match results with
  | [] -> assert false
  | (_, first) :: rest ->
    List.iter
      (fun (n, r) ->
        check Alcotest.string
          ("differential output under " ^ n)
          first.Rp_exec.Interp.output r.Rp_exec.Interp.output)
      rest;
    first.Rp_exec.Interp.output

(** Assert the program's final counts under a config. *)
let counts ?config src =
  let r = run ?config src in
  let t = r.Rp_exec.Interp.total in
  (t.Rp_exec.Interp.ops, t.Rp_exec.Interp.loads, t.Rp_exec.Interp.stores)

(** Expect a front-end failure. *)
let expect_frontend_error name src =
  tc name (fun () ->
      match front src with
      | exception Rp_minic.Srcloc.Error _ -> ()
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected a front-end error")

(** Expect a runtime trap. *)
let expect_runtime_error ?config name src =
  tc name (fun () ->
      match run ?config src with
      | exception Rp_exec.Value.Runtime_error _ -> ()
      | _ -> Alcotest.fail "expected a runtime error")
