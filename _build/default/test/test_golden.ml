(** Golden dynamic-count regression tests.

    The interpreter's counts are exact and deterministic (no wall-clock, no
    address randomness), so the reproduction's headline numbers can be
    pinned.  If an intentional pipeline change shifts these, re-baseline
    with the generator in the comment below and update EXPERIMENTS.md to
    match — the point of this suite is that such shifts never happen
    silently.

    Regenerate with:
    {v
      for each (program, config): Pipeline.compile_and_run and print
      (ops, loads, stores)  — see test/test_golden.ml history
    v} *)

open Rp_driver

(* (program, configuration, (ops, loads, stores)) under the default k=24
   modref pipeline *)
let golden =
  [
    ("mlink", "without", (1161850, 245764, 205008));
    ("mlink", "with", (967926, 81956, 41124));
    ("go", "without", (1002419, 210791, 613));
    ("go", "with", (811099, 65948, 613));
    ("dhrystone", "without", (162036, 12003, 26003));
    ("dhrystone", "with", (162036, 12003, 26003));
    ("bison", "without", (631869, 52002, 51923));
    ("bison", "with", (632670, 52401, 52324));
    ("water", "without", (1108704, 278428, 268864));
    ("water", "with", (1409454, 341578, 170764));
    ("allroots", "without", (618, 84, 4));
    ("allroots", "with", (618, 84, 4));
  ]

let cfg_of = function
  | "without" -> { Config.default with Config.promote = false }
  | "with" -> Config.default
  | s -> invalid_arg s

let tests =
  List.map
    (fun (name, cn, (ops, loads, stores)) ->
      Util.tc_slow (Printf.sprintf "%s/%s counts pinned" name cn) (fun () ->
          let src = (Rp_suite.Programs.find name).Rp_suite.Programs.source in
          let (got_ops, got_loads, got_stores) =
            Util.counts ~config:(cfg_of cn) src
          in
          Util.check Alcotest.int "ops" ops got_ops;
          Util.check Alcotest.int "loads" loads got_loads;
          Util.check Alcotest.int "stores" stores got_stores))
    golden

let () = Alcotest.run "golden" [ ("counts", tests) ]
