(** Optimizer tests: liveness, value numbering (with store forwarding),
    constant propagation and branch folding, LICM's division of labour with
    the promoter, availability-based redundant-load elimination (the PRE
    slot), dead-code elimination, and copy propagation. *)

open Rp_ir
module IS = Rp_support.Smaps.Int_set

(* Count instructions matching a predicate in a compiled program. *)
let count_instrs pred (p : Program.t) =
  let n = ref 0 in
  Program.iter_funcs
    (fun f -> Func.iter_instrs (fun _ i -> if pred i then incr n) f)
    p

let static_loads p =
  let n = ref 0 in
  count_instrs (fun i -> if Instr.is_load i then incr n; false) p |> ignore;
  !n

let _ = static_loads

(* Build a one-block function for pass unit tests. *)
let one_block instrs =
  let f = Func.create ~name:"t" ~nparams:0 in
  f.Func.nreg <- 64;
  Func.add_block f (Block.create ~instrs ~term:(Instr.Ret (Some 0)) "entry");
  f

let table = Tag.Table.create ()
let tx = Tag.Table.fresh table ~name:"x" ~storage:Tag.Global ()
let ty_ = Tag.Table.fresh table ~name:"y" ~storage:Tag.Global ()

let liveness_tests =
  [
    Util.tc "live across a block" (fun () ->
        let f =
          one_block
            [ Instr.Loadi (1, Instr.Cint 5); Instr.Binop (Instr.Add, 0, 1, 1) ]
        in
        let lv = Rp_opt.Liveness.compute f in
        Util.check Alcotest.bool "nothing live in" true
          (IS.is_empty (Rp_opt.Liveness.live_in lv "entry")));
    Util.tc "loop keeps the accumulator live around the backedge" (fun () ->
        let p =
          Util.front
            "int main() { int s = 0; int i; for (i = 0; i < 9; i++) s += i; \
             return s; }"
        in
        let f = Program.func p "main" in
        let lv = Rp_opt.Liveness.compute f in
        (* some block has a nonempty live-in (the loop header at least) *)
        let any = ref false in
        Func.iter_blocks
          (fun b ->
            if not (IS.is_empty (Rp_opt.Liveness.live_in lv b.Block.label))
            then any := true)
          f;
        Util.check Alcotest.bool "live sets nonempty" true !any);
    Util.tc "live_after_each matches defs/uses locally" (fun () ->
        let f =
          one_block
            [ Instr.Loadi (1, Instr.Cint 5); Instr.Binop (Instr.Add, 0, 1, 1) ]
        in
        let lv = Rp_opt.Liveness.compute f in
        let arr =
          Rp_opt.Liveness.live_after_each f lv (Func.block f "entry")
        in
        (* after the Loadi, r1 is live (used by the add); after the add,
           r0 is live (used by ret) *)
        Util.check Alcotest.bool "r1 live after loadi" true (IS.mem 1 arr.(0));
        Util.check Alcotest.bool "r0 live after add" true (IS.mem 0 arr.(1));
        Util.check Alcotest.bool "r1 dead after add" false (IS.mem 1 arr.(1)));
  ]

let valnum_tests =
  [
    Util.tc "redundant computation becomes a copy" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Loadi (2, Instr.Cint 7);
              Instr.Binop (Instr.Add, 3, 1, 2);
              Instr.Binop (Instr.Add, 4, 1, 2);
              Instr.Binop (Instr.Add, 0, 3, 4);
            ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ _; _; _; Instr.Copy (4, 3); _ ] -> ()
        | is ->
          Alcotest.failf "unexpected: %s"
            (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Instr.pp) is));
    Util.tc "commutative operands canonicalize" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Loadi (2, Instr.Cint 7);
              Instr.Binop (Instr.Add, 3, 1, 2);
              Instr.Binop (Instr.Add, 4, 2, 1);
              Instr.Binop (Instr.Add, 0, 3, 4);
            ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ _; _; _; Instr.Copy (4, 3); _ ] -> ()
        | _ -> Alcotest.fail "a+b and b+a should share a value number");
    Util.tc "non-commutative operands do not canonicalize" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Loadi (2, Instr.Cint 7);
              Instr.Binop (Instr.Sub, 3, 1, 2);
              Instr.Binop (Instr.Sub, 4, 2, 1);
              Instr.Binop (Instr.Add, 0, 3, 4);
            ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ _; _; Instr.Binop _; Instr.Binop _; _ ] -> ()
        | _ -> Alcotest.fail "a-b and b-a must stay distinct");
    Util.tc "redundant load becomes a copy" (fun () ->
        let f =
          one_block
            [ Instr.Loads (1, tx); Instr.Loads (2, tx);
              Instr.Binop (Instr.Add, 0, 1, 2) ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ Instr.Loads (1, _); Instr.Copy (2, 1); _ ] -> ()
        | _ -> Alcotest.fail "second load should be a copy");
    Util.tc "store kills loads of the same tag only" (fun () ->
        let f =
          one_block
            [
              Instr.Loads (1, tx);
              Instr.Loads (2, ty_);
              Instr.Loadi (3, Instr.Cint 1);
              Instr.Stores (tx, 3);
              Instr.Loads (4, tx);
              Instr.Loads (5, ty_);
              Instr.Binop (Instr.Add, 0, 4, 5);
            ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        let is = (Func.block f "entry").Block.instrs in
        (* the load of y is redundant; the reload of x forwards the store *)
        let copies = List.filter (function Instr.Copy _ -> true | _ -> false) is in
        Util.check Alcotest.int "two rewrites" 2 (List.length copies));
    Util.tc "store-to-load forwarding" (fun () ->
        let f =
          one_block
            [ Instr.Loadi (1, Instr.Cint 42); Instr.Stores (tx, 1);
              Instr.Loads (0, tx) ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ _; Instr.Stores _; Instr.Copy (0, 1) ] -> ()
        | _ -> Alcotest.fail "load should forward from the store");
    Util.tc "redundant store eliminated" (fun () ->
        let f =
          one_block
            [ Instr.Loadi (0, Instr.Cint 1); Instr.Stores (tx, 0);
              Instr.Stores (tx, 0) ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        let stores =
          List.filter Instr.is_store (Func.block f "entry").Block.instrs
        in
        Util.check Alcotest.int "one store" 1 (List.length stores));
    Util.tc "call with universal mods kills everything" (fun () ->
        let call =
          Instr.Call
            { target = Instr.Direct "ext"; args = []; ret = None;
              mods = Tagset.univ; refs = Tagset.univ; targets = [ "ext" ];
              site = 0 }
        in
        let f =
          one_block
            [ Instr.Loads (1, tx); call; Instr.Loads (2, tx);
              Instr.Binop (Instr.Add, 0, 1, 2) ]
        in
        ignore (Rp_opt.Valnum.run_func f : int);
        let loads =
          List.filter Instr.is_load (Func.block f "entry").Block.instrs
        in
        Util.check Alcotest.int "both loads survive" 2 (List.length loads));
    Util.tc "semantics preserved end to end" (fun () ->
        ignore
          (Util.differential
             "int g; int main() { g = 3; int a = g + g; int b = g + g; \
              print_int(a * b); return 0; }"));
  ]

let constprop_tests =
  [
    Util.tc "folds arithmetic on constants" (fun () ->
        let p =
          Util.compile ~config:{ Rp_driver.Config.default with
                                 Rp_driver.Config.regalloc = false }
            "int main() { return 2 * 3 + 4; }"
        in
        (* the return value should come from a single iLoad 10 *)
        let f = Program.func p "main" in
        let found = ref false in
        Func.iter_instrs
          (fun _ i ->
            match i with Instr.Loadi (_, Instr.Cint 10) -> found := true | _ -> ())
          f;
        Util.check Alcotest.bool "folded to 10" true !found);
    Util.tc "branch folding removes the dead arm" (fun () ->
        let p =
          Util.compile
            "int main() { if (0) { print_int(111); } print_int(5); return \
             0; }"
        in
        let f = Program.func p "main" in
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Loadi (_, Instr.Cint 111) ->
              Alcotest.fail "dead arm survived"
            | _ -> ())
          f);
    Util.tc "division by zero is not folded away" (fun () ->
        (* folding 1/0 would hide the trap *)
        match Util.run "int main() { int z = 0; return 1 / z; }" with
        | exception Rp_exec.Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected a trap");
    Util.tc "algebraic identities" (fun () ->
        ignore
          (Util.differential
             "int main() { int x = rand(); print_int(x + 0); print_int(x * \
              1); print_int(x << 0); print_int(0 + x); return 0; }"));
    Util.tc "single-def constants propagate across blocks" (fun () ->
        let p =
          Util.compile
            "int main() { int k = 6; int s = 0; int i; for (i = 0; i < 3; \
             i++) { s += k; } return s; }"
        in
        (* k's adds should use a constant, leaving no cross-block copy of k;
           just check the program still computes 18 *)
        let r = Rp_exec.Interp.run p in
        Util.check Alcotest.bool "returns 18" true
          (r.Rp_exec.Interp.ret = Rp_exec.Value.Vint 18));
  ]

let licm_tests =
  [
    Util.tc "pure invariant computation hoists" (fun () ->
        let src =
          "int main() { int a = rand(); int s = 0; int i; for (i = 0; i < \
           100; i++) { s += a * 7; } print_int(s); return 0; }"
        in
        let cfg =
          { Rp_driver.Config.default with Rp_driver.Config.promote = false }
        in
        let (ops, _, _) = Util.counts ~config:cfg src in
        (* the multiply must not execute 100 times: ops well under the
           unhoisted count.  Compare against optimize=false *)
        let cfg0 =
          { cfg with Rp_driver.Config.optimize = false; regalloc = false }
        in
        let (ops0, _, _) = Util.counts ~config:cfg0 src in
        ignore ops0;
        Util.check Alcotest.bool "optimized is cheaper" true (ops < ops0));
    Util.tc "cLoad of a const global hoists out of the loop" (fun () ->
        let src =
          "const int N = 100; int main() { int s = 0; int i; for (i = 0; i \
           < 10000; i++) { s += N; } print_int(s); return 0; }"
        in
        let cfg =
          { Rp_driver.Config.default with Rp_driver.Config.promote = false }
        in
        let (_, loads, _) = Util.counts ~config:cfg src in
        (* without hoisting there would be >= 10000 loads of N *)
        Util.check Alcotest.bool "const load hoisted" true (loads < 100));
    Util.tc "mutable scalar loads are NOT hoisted (promotion's job)"
      (fun () ->
        let src =
          "int n; int main() { n = 100; int s = 0; int i; for (i = 0; i < \
           1000; i++) { s += n; } print_int(s); return 0; }"
        in
        let without =
          { Rp_driver.Config.default with Rp_driver.Config.promote = false }
        in
        let (_, loads_np, _) = Util.counts ~config:without src in
        Util.check Alcotest.bool "n reloaded every iteration" true
          (loads_np >= 1000);
        let (_, loads_p, _) = Util.counts ~config:Rp_driver.Config.default src in
        Util.check Alcotest.bool "promotion removes the reloads" true
          (loads_p < 100));
    Util.tc "division is not speculated" (fun () ->
        ignore
          (Util.differential
             "int main() { int d = 0; int s = 0; int i; for (i = 0; i < 5; \
              i++) { if (i == 0) d = 1; s += 10 / (d + 1); } print_int(s); \
              return 0; }"));
    Util.tc "stores never move" (fun () ->
        let src =
          "int g; int main() { int i; for (i = 0; i < 7; i++) { if (i == 3) \
           g = i; } print_int(g); return 0; }"
        in
        ignore (Util.differential src));
  ]

let pre_tests =
  [
    Util.tc "redundant load across blocks removed" (fun () ->
        let src =
          "int g; int main() { g = 5; int a = g; int b; if (a > 1) { b = g; \
           } else { b = g; } print_int(a + b); return 0; }"
        in
        let cfg =
          { Rp_driver.Config.default with
            Rp_driver.Config.promote = false; regalloc = false }
        in
        let p = Util.compile ~config:cfg src in
        (* after the first access, g's value is available everywhere *)
        let loads = ref 0 in
        Func.iter_instrs
          (fun _ i -> if Instr.is_load i then incr loads)
          (Program.func p "main");
        Util.check Alcotest.bool "at most one static load of g" true (!loads <= 1));
    Util.tc "store makes its value available" (fun () ->
        let f =
          one_block
            [ Instr.Loadi (1, Instr.Cint 3); Instr.Stores (tx, 1);
              Instr.Loads (0, tx) ]
        in
        ignore (Rp_opt.Pre.run_func f : int);
        match (Func.block f "entry").Block.instrs with
        | [ _; _; Instr.Copy (0, 1) ] -> ()
        | _ -> Alcotest.fail "load after store should be a copy");
    Util.tc "kill through calls respected" (fun () ->
        let src =
          "int g; void w() { g = g + 1; } int main() { g = 1; int a = g; \
           w(); int b = g; print_int(a + b); return 0; }"
        in
        Util.check Alcotest.string "output" "3\n" (Util.differential src));
    Util.tc "availability meet is an intersection" (fun () ->
        (* g available on one path only: the join must reload *)
        let src =
          "int g; void w() { g = 77; } int main() { g = 1; if (rand() % 2) \
           { w(); } print_int(g); return 0; }"
        in
        ignore (Util.differential src));
  ]

let dce_tests =
  [
    Util.tc "dead chains vanish" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Binop (Instr.Add, 2, 1, 1);
              Instr.Binop (Instr.Mul, 3, 2, 2);
              (* r3 never used *)
              Instr.Loadi (0, Instr.Cint 0);
            ]
        in
        let removed = Rp_opt.Dce.run_func f in
        Util.check Alcotest.int "three removed" 3 removed;
        Util.check Alcotest.int "one left" 1
          (List.length (Func.block f "entry").Block.instrs));
    Util.tc "stores and calls are never removed" (fun () ->
        let call =
          Instr.Call
            { target = Instr.Direct "ext"; args = []; ret = Some 9;
              mods = Tagset.empty; refs = Tagset.empty; targets = [ "ext" ];
              site = 0 }
        in
        let f =
          one_block
            [ Instr.Loadi (1, Instr.Cint 5); Instr.Stores (tx, 1); call;
              Instr.Loadi (0, Instr.Cint 0) ]
        in
        ignore (Rp_opt.Dce.run_func f : int);
        Util.check Alcotest.int "all four instrs kept" 4
          (List.length (Func.block f "entry").Block.instrs));
    Util.tc "dead loads are removable" (fun () ->
        let f =
          one_block [ Instr.Loads (1, tx); Instr.Loadi (0, Instr.Cint 0) ]
        in
        ignore (Rp_opt.Dce.run_func f : int);
        Util.check Alcotest.int "load gone" 1
          (List.length (Func.block f "entry").Block.instrs));
    Util.tc "self copy removed" (fun () ->
        let f =
          one_block [ Instr.Copy (0, 0); Instr.Loadi (0, Instr.Cint 0) ]
        in
        ignore (Rp_opt.Dce.run_func f : int);
        Util.check Alcotest.int "copy gone" 1
          (List.length (Func.block f "entry").Block.instrs));
  ]

let copyprop_tests =
  [
    Util.tc "single-def copy chains collapse" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Copy (2, 1);
              Instr.Copy (3, 2);
              Instr.Binop (Instr.Add, 0, 3, 3);
            ]
        in
        ignore (Rp_opt.Copyprop.run_func f : int);
        match List.rev (Func.block f "entry").Block.instrs with
        | Instr.Binop (Instr.Add, 0, 3, 3) :: _ ->
          Alcotest.fail "uses should read r1 directly"
        | Instr.Binop (Instr.Add, 0, 1, 1) :: _ -> ()
        | _ -> Alcotest.fail "unexpected block shape");
    Util.tc "multiply-defined targets are left alone" (fun () ->
        let f =
          one_block
            [
              Instr.Loadi (1, Instr.Cint 5);
              Instr.Loadi (2, Instr.Cint 6);
              Instr.Copy (3, 1);
              Instr.Copy (3, 2);
              Instr.Binop (Instr.Add, 0, 3, 3);
            ]
        in
        ignore (Rp_opt.Copyprop.run_func f : int);
        match List.rev (Func.block f "entry").Block.instrs with
        | Instr.Binop (Instr.Add, 0, 3, 3) :: _ -> ()
        | _ -> Alcotest.fail "r3 has two defs; must not propagate");
    Util.tc "semantics preserved on loop-carried state" (fun () ->
        ignore
          (Util.differential
             "int main() { int s = 0; int t = 1; int i; for (i = 0; i < 10; \
              i++) { int u = t; s += u; t = s; } print_int(s); return 0; }"));
  ]

let dse_cfg = { Rp_driver.Config.default with Rp_driver.Config.dse = true }

let dse_tests =
  [
    Util.tc "overwritten store removed" (fun () ->
        let src =
          "int g; int main() { g = 1; g = 2; print_int(g); return 0; }"
        in
        let (_, _, stores) = Util.counts ~config:dse_cfg src in
        (* value numbering forwards the load, so even the second store is
           dead at main's exit *)
        Util.check Alcotest.int "both stores dead" 0 stores;
        Util.check Alcotest.string "output" "2\n" (Util.output ~config:dse_cfg src));
    Util.tc "trailing stores in main are dead" (fun () ->
        let src =
          "int g; int main() { print_int(3); g = 42; return 0; }"
        in
        let (_, _, stores) = Util.counts ~config:dse_cfg src in
        Util.check Alcotest.int "no stores" 0 stores);
    Util.tc "a read on one path keeps the store" (fun () ->
        let src =
          "int g; int main() { g = 1; if (rand() % 2) print_int(g); g = 2; \
           print_int(g); return 0; }"
        in
        ignore
          (Util.differential
             ~configs:
               [ ("plain", Rp_driver.Config.default); ("dse", dse_cfg) ]
             src));
    Util.tc "call REFs keep stores alive" (fun () ->
        let src =
          "int g; int peek() { return g; } int main() { g = 7; \
           print_int(peek()); g = 0; return 0; }"
        in
        Util.check Alcotest.string "output" "7\n"
          (Util.output ~config:dse_cfg src));
    Util.tc "pointer loads keep stores alive" (fun () ->
        let src =
          "int g; int main() { int *p = &g; g = 9; print_int(*p); return 0; }"
        in
        Util.check Alcotest.string "output" "9\n"
          (Util.output ~config:dse_cfg src));
    Util.tc "may-write through a pointer does not kill a store" (fun () ->
        let src =
          "int g; int h; int main() { int *p; if (rand() % 2) p = &g; else \
           p = &h; g = 5; *p = 1; print_int(g + h); return 0; }"
        in
        ignore
          (Util.differential
             ~configs:
               [ ("plain", Rp_driver.Config.default); ("dse", dse_cfg) ]
             src));
    Util.tc "locals of a returning function die" (fun () ->
        let src =
          "int f() { int x; int *p = &x; *p = 3; int v = *p; x = 99; return \
           v; } int main() { print_int(f()); return 0; }"
        in
        Util.check Alcotest.string "output" "3\n"
          (Util.output ~config:dse_cfg src));
    Util.tc "dse never changes any benchmark's checksum" (fun () ->
        List.iter
          (fun name ->
            let src = (Rp_suite.Programs.find name).Rp_suite.Programs.source in
            Util.check Alcotest.string (name ^ " output")
              (Util.output src) (Util.output ~config:dse_cfg src))
          [ "dhrystone"; "bison"; "gzip(dec)"; "allroots" ]);
    Util.tc "loop-carried stores survive" (fun () ->
        let src =
          "int g; int main() { int i; for (i = 0; i < 5; i++) { g = g + i; \
           } print_int(g); return 0; }"
        in
        Util.check Alcotest.string "output" "10\n"
          (Util.output ~config:{ dse_cfg with Rp_driver.Config.promote = false } src));
  ]

let () =
  Alcotest.run "opt"
    [
      ("liveness", liveness_tests);
      ("valnum", valnum_tests);
      ("constprop", constprop_tests);
      ("licm", licm_tests);
      ("pre", pre_tests);
      ("dce", dce_tests);
      ("copyprop", copyprop_tests);
      ("dse", dse_tests);
    ]
