(** IR-level tests: tag-set algebra (with qcheck laws), the Table-1 memory
    operation classification, instruction def/use bookkeeping, and the
    structural validator. *)

open Rp_ir

let table = Tag.Table.create ()

let mktag ?(storage = Tag.Global) ?(is_scalar = true) ?(is_const = false)
    ?(recursive = false) name =
  Tag.Table.fresh table ~name ~storage ~is_scalar ~is_const
    ~declared_in_recursive:recursive ()

let ta = mktag "A"
let tb = mktag "B"
let tc_ = mktag "C"
let tarr = mktag ~is_scalar:false "arr"
let theap = mktag ~storage:(Tag.Heap 0) ~is_scalar:false "heap0"
let tlocal = mktag ~storage:(Tag.Local "f") "f.x"
let trec = mktag ~storage:(Tag.Local "g") ~recursive:true "g.x"

let ts = Alcotest.testable Tagset.pp Tagset.equal

let tagset_tests =
  [
    Util.tc "empty and univ" (fun () ->
        Util.check Alcotest.bool "empty is empty" true (Tagset.is_empty Tagset.empty);
        Util.check Alcotest.bool "univ not empty" false (Tagset.is_empty Tagset.univ);
        Util.check Alcotest.bool "univ is univ" true (Tagset.is_univ Tagset.univ));
    Util.tc "mem on univ is always true" (fun () ->
        Util.check Alcotest.bool "mem" true (Tagset.mem ta Tagset.univ));
    Util.tc "union with univ absorbs" (fun () ->
        Util.check ts "absorb" Tagset.univ
          (Tagset.union (Tagset.singleton ta) Tagset.univ));
    Util.tc "inter with univ is identity" (fun () ->
        let s = Tagset.of_list [ ta; tb ] in
        Util.check ts "identity" s (Tagset.inter s Tagset.univ));
    Util.tc "diff with univ is empty (sound)" (fun () ->
        Util.check ts "empty" Tagset.empty
          (Tagset.diff (Tagset.of_list [ ta; tb ]) Tagset.univ));
    Util.tc "diff of concrete sets" (fun () ->
        Util.check ts "diff" (Tagset.singleton ta)
          (Tagset.diff (Tagset.of_list [ ta; tb ]) (Tagset.of_list [ tb; tc_ ])));
    Util.tc "as_singleton" (fun () ->
        Util.check Alcotest.bool "single" true
          (Tagset.as_singleton (Tagset.singleton ta) = Some ta);
        Util.check Alcotest.bool "pair" true
          (Tagset.as_singleton (Tagset.of_list [ ta; tb ]) = None);
        Util.check Alcotest.bool "univ" true (Tagset.as_singleton Tagset.univ = None));
    Util.tc "fold on univ raises" (fun () ->
        match Tagset.fold (fun acc _ -> acc) 0 Tagset.univ with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Util.tc "disjointness" (fun () ->
        Util.check Alcotest.bool "disjoint" true
          (Tagset.disjoint (Tagset.singleton ta) (Tagset.singleton tb));
        Util.check Alcotest.bool "overlap" false
          (Tagset.disjoint (Tagset.of_list [ ta; tb ]) (Tagset.singleton tb));
        Util.check Alcotest.bool "univ vs nonempty" false
          (Tagset.disjoint Tagset.univ (Tagset.singleton tb));
        Util.check Alcotest.bool "univ vs empty" true
          (Tagset.disjoint Tagset.univ Tagset.empty));
  ]

let tagset_props =
  let open QCheck in
  let pool = [| ta; tb; tc_; tarr; theap; tlocal; trec |] in
  let gen_set =
    Gen.map
      (fun ids -> Tagset.of_list (List.map (fun i -> pool.(i mod 7)) ids))
      (Gen.list_size (Gen.int_bound 6) (Gen.int_bound 6))
  in
  let gen = Gen.oneof [ gen_set; Gen.return Tagset.univ ] in
  let arb = make ~print:(Fmt.str "%a" Tagset.pp) gen in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"union commutative" ~count:300 (pair arb arb)
         (fun (a, b) -> Tagset.equal (Tagset.union a b) (Tagset.union b a)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"inter commutative" ~count:300 (pair arb arb)
         (fun (a, b) -> Tagset.equal (Tagset.inter a b) (Tagset.inter b a)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"union associative" ~count:300 (triple arb arb arb)
         (fun (a, b, c) ->
           Tagset.equal
             (Tagset.union a (Tagset.union b c))
             (Tagset.union (Tagset.union a b) c)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"diff subset of minuend" ~count:300 (pair arb arb)
         (fun (a, b) -> Tagset.subset (Tagset.diff a b) a));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"diff disjoint from concrete subtrahend" ~count:300
         (pair arb arb) (fun (a, b) ->
           Tagset.is_univ b || Tagset.is_univ a
           || Tagset.disjoint (Tagset.diff a b) b));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"inter subset of both" ~count:300 (pair arb arb)
         (fun (a, b) ->
           let i = Tagset.inter a b in
           Tagset.subset i a && Tagset.subset i b));
  ]

(* ------------------------------------------------------------------ *)

let promotability_tests =
  [
    Util.tc "global scalar promotable both ways" (fun () ->
        Util.check Alcotest.bool "direct" true (Tag.promotable_direct ta);
        Util.check Alcotest.bool "pointer" true (Tag.promotable_via_pointer ta));
    Util.tc "array promotable neither way" (fun () ->
        Util.check Alcotest.bool "direct" false (Tag.promotable_direct tarr);
        Util.check Alcotest.bool "pointer" false (Tag.promotable_via_pointer tarr));
    Util.tc "heap site never a single location" (fun () ->
        Util.check Alcotest.bool "direct" false (Tag.promotable_direct theap);
        Util.check Alcotest.bool "pointer" false (Tag.promotable_via_pointer theap));
    Util.tc "local scalar: direct yes, via pointer no" (fun () ->
        Util.check Alcotest.bool "direct" true (Tag.promotable_direct tlocal);
        Util.check Alcotest.bool "pointer" false
          (Tag.promotable_via_pointer tlocal));
    Util.tc "recursive-function local: one tag, many activations" (fun () ->
        Util.check Alcotest.bool "direct" true (Tag.promotable_direct trec);
        Util.check Alcotest.bool "pointer" false (Tag.promotable_via_pointer trec));
  ]

(* ------------------------------------------------------------------ *)

let classify_tests =
  let open Instr in
  [
    Util.tc "Table 1: load classification" (fun () ->
        Util.check Alcotest.bool "iLoad not a load" false
          (is_load (Loadi (0, Cint 1)));
        Util.check Alcotest.bool "addr not a load" false (is_load (Loada (0, ta)));
        Util.check Alcotest.bool "cLoad is a load" true (is_load (Loadc (0, ta)));
        Util.check Alcotest.bool "sLoad is a load" true (is_load (Loads (0, ta)));
        Util.check Alcotest.bool "Load is a load" true
          (is_load (Loadg (0, 1, Tagset.univ))));
    Util.tc "Table 1: store classification" (fun () ->
        Util.check Alcotest.bool "sStore" true (is_store (Stores (ta, 0)));
        Util.check Alcotest.bool "Store" true
          (is_store (Storeg (0, 1, Tagset.univ)));
        Util.check Alcotest.bool "copy is not a store" false (is_store (Copy (0, 1))));
    Util.tc "defs and uses" (fun () ->
        Util.check Alcotest.(list int) "binop defs" [ 2 ]
          (defs (Binop (Add, 2, 0, 1)));
        Util.check Alcotest.(list int) "binop uses" [ 0; 1 ]
          (uses (Binop (Add, 2, 0, 1)));
        Util.check Alcotest.(list int) "storeg uses" [ 3; 4 ]
          (uses (Storeg (3, 4, Tagset.univ)));
        Util.check Alcotest.(list int) "storeg defs" []
          (defs (Storeg (3, 4, Tagset.univ))));
    Util.tc "call defs/uses include target register" (fun () ->
        let c =
          Call
            { target = Indirect 9; args = [ 1; 2 ]; ret = Some 3;
              mods = Tagset.empty; refs = Tagset.empty; targets = []; site = 0 }
        in
        Util.check Alcotest.(list int) "defs" [ 3 ] (defs c);
        Util.check Alcotest.(list int) "uses" [ 1; 2; 9 ] (uses c));
    Util.tc "map_regs renames everything" (fun () ->
        let i = Binop (Add, 2, 0, 1) in
        match map_regs (fun r -> r + 10) i with
        | Binop (Add, 12, 10, 11) -> ()
        | _ -> Alcotest.fail "bad rename");
    Util.tc "map_uses leaves defs alone" (fun () ->
        match map_uses (fun r -> r + 10) (Binop (Add, 2, 0, 1)) with
        | Binop (Add, 2, 10, 11) -> ()
        | _ -> Alcotest.fail "bad rename");
    Util.tc "map_defs leaves uses alone" (fun () ->
        match map_defs (fun r -> r + 10) (Binop (Add, 2, 0, 1)) with
        | Binop (Add, 12, 0, 1) -> ()
        | _ -> Alcotest.fail "bad rename");
    Util.tc "term_succs deduplicates" (fun () ->
        Util.check Alcotest.(list string) "cbr same targets" [ "x" ]
          (term_succs (Cbr (0, "x", "x")));
        Util.check Alcotest.(list string) "ret" [] (term_succs (Ret None)));
  ]

(* ------------------------------------------------------------------ *)

let validate_tests =
  [
    Util.tc "well-formed program passes" (fun () ->
        let p = Util.front "int main() { return 0; }" in
        Util.check Alcotest.(list string) "no errors" [] (Validate.check_program p));
    Util.tc "missing successor detected" (fun () ->
        let f = Func.create ~name:"f" ~nparams:0 in
        Func.add_block f (Block.create ~term:(Instr.Jump "nowhere") "entry");
        Util.check Alcotest.bool "error reported" true
          (Validate.check_func f <> []));
    Util.tc "out-of-range register detected" (fun () ->
        let f = Func.create ~name:"f" ~nparams:0 in
        Func.add_block f
          (Block.create ~instrs:[ Instr.Copy (99, 98) ] ~term:(Instr.Ret None)
             "entry");
        Util.check Alcotest.bool "error reported" true
          (Validate.check_func f <> []));
    Util.tc "phi after non-phi detected" (fun () ->
        let f = Func.create ~name:"f" ~nparams:0 in
        f.Func.nreg <- 5;
        Func.add_block f
          (Block.create
             ~instrs:[ Instr.Copy (0, 1); Instr.Phi (2, []) ]
             ~term:(Instr.Ret None) "entry");
        Util.check Alcotest.bool "error reported" true
          (Validate.check_func f <> []));
    Util.tc "every benchmark program validates at every stage" (fun () ->
        List.iter
          (fun (pr : Rp_suite.Programs.program) ->
            let p = Util.front pr.Rp_suite.Programs.source in
            Validate.assert_ok p;
            let p2 = Util.compile pr.Rp_suite.Programs.source in
            Validate.assert_ok p2)
          Rp_suite.Programs.all);
  ]

let () =
  Alcotest.run "ir"
    [
      ("tagset", tagset_tests @ tagset_props);
      ("promotability", promotability_tests);
      ("instr", classify_tests);
      ("validate", validate_tests);
    ]
