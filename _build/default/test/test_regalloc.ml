(** Register allocator tests: colorings respect k, copies coalesce,
    semantics survive allocation at many register counts, spills appear as
    tagged memory traffic, and constants rematerialize instead of spilling. *)

open Rp_ir
open Rp_driver
module RA = Rp_regalloc.Regalloc

let max_reg (f : Func.t) =
  let m = ref (-1) in
  Func.iter_instrs
    (fun _ i ->
      List.iter (fun r -> m := max !m r) (Instr.defs i);
      List.iter (fun r -> m := max !m r) (Instr.uses i))
    f;
  List.iter (fun r -> m := max !m r) f.Func.params;
  !m

let sources =
  [
    ("expr", "int main() { int a = 1; int b = 2; int c = a * 3 + b * 5; \
              print_int(c + a - b); return 0; }");
    ("loop", "int g; int main() { int i; for (i = 0; i < 50; i++) g += i * \
              i; print_int(g); return 0; }");
    ("callheavy",
     "int f(int a, int b, int c) { return a * b + c; } int main() { int s \
      = 0; int i; for (i = 0; i < 20; i++) s += f(i, i + 1, s); \
      print_int(s); return 0; }");
    ("floats",
     "float acc; int main() { int i; for (i = 0; i < 30; i++) { acc = acc \
      * 0.5 + 1.0; } print_float(acc); return 0; }");
    ("wide",
     "int main() { int a=1; int b=2; int c=3; int d=4; int e=5; int f=6; \
      int g=7; int h=8; int i=9; int j=10; int k=11; int l=12; \
      print_int(a+b*c+d*e+f*g+h*i+j*k+l*(a+b)*(c+d)*(e+f)*(g+h)*(i+j)); \
      return 0; }");
  ]

let respect_k_tests =
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun k ->
          Util.tc (Printf.sprintf "%s fits in k=%d" name k) (fun () ->
              let cfg = { Config.default with Config.k } in
              let p = Util.compile ~config:cfg src in
              Program.iter_funcs
                (fun f ->
                  Util.check Alcotest.bool
                    (Printf.sprintf "%s max reg < %d" f.Func.name k)
                    true
                    (max_reg f < k))
                p))
        [ 4; 6; 8; 16; 32 ])
    sources

let semantics_tests =
  List.map
    (fun (name, src) ->
      Util.tc ("allocation preserves semantics: " ^ name) (fun () ->
          ignore
            (Util.differential
               ~configs:
                 [
                   ("noalloc",
                    { Config.default with Config.regalloc = false });
                   ("k4", { Config.default with Config.k = 4 });
                   ("k5", { Config.default with Config.k = 5 });
                   ("k7", { Config.default with Config.k = 7 });
                   ("k24", Config.default);
                 ]
               src)))
    sources

let spill_tests =
  [
    Util.tc "high pressure forces spills that appear as memory traffic"
      (fun () ->
        let src =
          "int main() { int a=1; int b=2; int c=3; int d=4; int e=5; int \
           f=6; int g=7; int h=8; int s = 0; int i; for (i = 0; i < 100; \
           i++) { s += a*b + c*d + e*f + g*h + a*c + b*d + e*g + f*h; a = \
           s % 9 + 1; b = s % 7 + 1; c = s % 5 + 1; d = s % 3 + 1; e = a + \
           b; f = c + d; g = e + f; h = g + a; } print_int(s); return 0; }"
        in
        let tight = { Config.default with Config.k = 5 } in
        let roomy = { Config.default with Config.k = 32 } in
        let (_, l_tight, s_tight) = Util.counts ~config:tight src in
        let (_, l_roomy, s_roomy) = Util.counts ~config:roomy src in
        Util.check Alcotest.bool "tight k costs memory traffic" true
          (l_tight + s_tight > l_roomy + s_roomy);
        Util.check Alcotest.string "same output"
          (Util.output ~config:tight src)
          (Util.output ~config:roomy src));
    Util.tc "spill slots are tagged to their function" (fun () ->
        let src =
          "int main() { int a=1; int b=2; int c=3; int d=4; int e=5; \
           print_int((a+b)*(c+d)*(e+a)*(b+c)*(d+e)*(a+c)*(b+d)); return 0; }"
        in
        let p = Util.compile ~config:{ Config.default with Config.k = 4 } src in
        let spill_tags =
          List.filter
            (fun (t : Tag.t) ->
              match t.Tag.storage with Tag.Spill _ -> true | _ -> false)
            (Tag.Table.all p.Program.tags)
        in
        (* with k=4 this expression tree needs some spills or remats; if
           slots exist they must be scalars owned by main *)
        List.iter
          (fun (t : Tag.t) ->
            Util.check Alcotest.bool "scalar slot" true t.Tag.is_scalar;
            match t.Tag.storage with
            | Tag.Spill fn -> Util.check Alcotest.string "owner" "main" fn
            | _ -> assert false)
          spill_tags);
    Util.tc "constants rematerialize rather than spill" (fun () ->
        (* a loop with many live loop-invariant constants: they must not
           produce spill loads *)
        let src =
          "int g; int main() { int i; for (i = 0; i < 100; i++) { g = g + \
           11 * 13 + i * 17 + i * 19 + i * 23 + i * 29 + i * 31 + i * 37; \
           } print_int(g); return 0; }"
        in
        let cfg = { Config.default with Config.k = 6 } in
        let (_, _, r) = Pipeline.compile_and_run ~config:cfg src in
        ignore r;
        ignore (Util.differential src));
    Util.tc "water-style pressure: promotion triggers over-spilling"
      (fun () ->
        let src = (Rp_suite.Programs.find "water").Rp_suite.Programs.source in
        let without =
          { Config.default with Config.promote = false; k = 16 }
        in
        let with_ = { Config.default with Config.k = 16 } in
        let (ops_without, _, _) = Util.counts ~config:without src in
        let (ops_with, _, _) = Util.counts ~config:with_ src in
        Util.check Alcotest.bool "promotion loses under pressure" true
          (ops_with > ops_without));
  ]

let coalesce_tests =
  [
    Util.tc "copies disappear in simple code" (fun () ->
        let p =
          Util.compile "int main() { int a = 3; int b = a; int c = b; \
                        print_int(c); return 0; }"
        in
        let f = Program.func p "main" in
        let copies = ref 0 in
        Func.iter_instrs
          (fun _ i -> match i with Instr.Copy _ -> incr copies | _ -> ())
          f;
        Util.check Alcotest.int "no copies left" 0 !copies);
    Util.tc "promotion-inserted copies coalesce away" (fun () ->
        (* the paper: "The copies are subject to coalescing by the register
           allocator.  It is quite effective at eliminating copies like
           these." *)
        let src =
          "int g; int main() { int i; for (i = 0; i < 100; i++) g += i; \
           print_int(g); return 0; }"
        in
        let p = Util.compile src in
        let f = Program.func p "main" in
        let copies = ref 0 in
        Func.iter_instrs
          (fun _ i -> match i with Instr.Copy _ -> incr copies | _ -> ())
          f;
        Util.check Alcotest.bool "at most one copy remains" true (!copies <= 1));
    Util.tc "params keep distinct registers" (fun () ->
        let src =
          "int sub(int a, int b) { return a - b; } int main() { \
           print_int(sub(9, 4)); return 0; }"
        in
        let p = Util.compile src in
        let f = Program.func p "sub" in
        match f.Func.params with
        | [ a; b ] -> Util.check Alcotest.bool "distinct" true (a <> b)
        | _ -> Alcotest.fail "two params expected");
  ]

let recursion_tests =
  [
    Util.tc "recursion works after allocation (private register files)"
      (fun () ->
        let src =
          "int fib(int n) { if (n < 2) return n; return fib(n-1) + \
           fib(n-2); } int main() { print_int(fib(15)); return 0; }"
        in
        Util.check Alcotest.string "fib 15" "610\n"
          (Util.output ~config:{ Config.default with Config.k = 5 } src));
    Util.tc "deep expression in a recursive function at k=4" (fun () ->
        let src =
          "int f(int n) { if (n == 0) return 1; return (f(n-1) * 3 + n * 7) \
           % 1000; } int main() { print_int(f(30)); return 0; }"
        in
        ignore
          (Util.differential
             ~configs:
               [
                 ("k4", { Config.default with Config.k = 4 });
                 ("k24", Config.default);
                 ("noalloc", { Config.default with Config.regalloc = false });
               ]
             src));
  ]

let () =
  Alcotest.run "regalloc"
    [
      ("respect_k", respect_k_tests);
      ("semantics", semantics_tests);
      ("spills", spill_tests);
      ("coalescing", coalesce_tests);
      ("recursion", recursion_tests);
    ]
