(** Shared random Mini-C program generator (safe, terminating, checksum-
    printing) used by the differential and serialization property tests. *)

open QCheck

let prelude =
  {|
int g0; int g1; int g2;
float gf;
int ga[8];
int *pg;

struct Pair { int a; int b; };
struct Pair gone;
struct Pair gpairs[4];
struct Pair *pp;

int f_pure(int a, int b) { return a * 3 + b; }

int f_touch(int a) { g1 = g1 + a; return g1 % 100; }

int f_deep(int n) {
  if (n <= 0) return 1;
  return f_deep(n - 1) + n;
}

int f_arr(int *p, int i) { return p[i & 7]; }

int f_pair(struct Pair *p) { return p->a * 2 + p->b; }
|}

let gen_expr depth_idx =
  let rec expr fuel st =
    if fuel <= 0 then atom st
    else
      match Gen.int_bound 9 st with
      | 0 | 1 ->
        Printf.sprintf "(%s + %s)" (expr (fuel - 1) st) (expr (fuel - 1) st)
      | 2 -> Printf.sprintf "(%s - %s)" (expr (fuel - 1) st) (expr (fuel - 1) st)
      | 3 -> Printf.sprintf "(%s * %s)" (atom st) (atom st)
      | 4 ->
        Printf.sprintf "(%s %% %d)" (expr (fuel - 1) st) (1 + Gen.int_bound 9 st)
      | 5 ->
        Printf.sprintf "(%s / %d)" (expr (fuel - 1) st) (1 + Gen.int_bound 9 st)
      | 6 ->
        let op = List.nth [ "<"; "<="; "=="; "!=" ] (Gen.int_bound 3 st) in
        Printf.sprintf "(%s %s %s)" (atom st) op (atom st)
      | 7 -> Printf.sprintf "(%s & %d)" (expr (fuel - 1) st) (Gen.int_bound 255 st)
      | _ -> atom st
  and atom st =
    match Gen.int_bound 15 st with
    | 0 | 1 -> string_of_int (Gen.int_bound 20 st)
    | 2 -> Printf.sprintf "x%d" (Gen.int_bound 3 st)
    | 3 | 4 -> Printf.sprintf "g%d" (Gen.int_bound 2 st)
    | 5 -> Printf.sprintf "ga[%s & 7]" (atom st)
    | 6 -> "(*pg)"
    | 7 -> Printf.sprintf "f_pure(%s, %s)" (atom st) (atom st)
    | 8 -> Printf.sprintf "f_touch(%s)" (atom st)
    | 9 -> Printf.sprintf "f_deep(%d)" (Gen.int_bound 6 st)
    | 10 -> Printf.sprintf "f_arr(ga, %s)" (atom st)
    | 11 -> Printf.sprintf "gone.%s" (if Gen.bool st then "a" else "b")
    | 12 ->
      Printf.sprintf "gpairs[%s & 3].%s" (atom st)
        (if Gen.bool st then "a" else "b")
    | 13 -> Printf.sprintf "pp->%s" (if Gen.bool st then "a" else "b")
    | 14 -> "f_pair(pp)"
    | _ ->
      if depth_idx > 0 then Printf.sprintf "i%d" (Gen.int_bound (depth_idx - 1) st)
      else string_of_int (Gen.int_bound 9 st)
  in
  expr

let gen_stmts =
  let buf_indent n = String.make (2 * n) ' ' in
  let rec stmts fuel depth_idx indent st =
    if fuel <= 0 then []
    else
      let n = 1 + Gen.int_bound 3 st in
      List.concat
        (List.init n (fun _ -> stmt (fuel - 1) depth_idx indent st))
  and stmt fuel depth_idx indent st =
    let pad = buf_indent indent in
    let e fuel' = gen_expr depth_idx fuel' st in
    match Gen.int_bound 13 st with
    | 0 | 1 ->
      [ Printf.sprintf "%sg%d = %s;" pad (Gen.int_bound 2 st) (e 2) ]
    | 2 -> [ Printf.sprintf "%sx%d = %s;" pad (Gen.int_bound 3 st) (e 2) ]
    | 3 -> [ Printf.sprintf "%sga[%s & 7] = %s;" pad (e 1) (e 2) ]
    | 4 -> [ Printf.sprintf "%s*pg = %s;" pad (e 2) ]
    | 5 ->
      let tgt =
        match Gen.int_bound 2 st with
        | 0 -> "&g0"
        | 1 -> "&g1"
        | _ -> Printf.sprintf "&ga[%d]" (Gen.int_bound 7 st)
      in
      [ Printf.sprintf "%spg = %s;" pad tgt ]
    | 6 ->
      let cond = e 2 in
      let then_ = stmts (fuel - 1) depth_idx (indent + 1) st in
      let else_ = stmts (fuel - 1) depth_idx (indent + 1) st in
      [ Printf.sprintf "%sif (%s) {" pad cond ]
      @ then_
      @ [ pad ^ "} else {" ]
      @ else_
      @ [ pad ^ "}" ]
    | 7 | 8 when depth_idx < 3 ->
      let bound = 2 + Gen.int_bound 6 st in
      let body = stmts (fuel - 1) (depth_idx + 1) (indent + 1) st in
      [ Printf.sprintf "%sfor (i%d = 0; i%d < %d; i%d++) {" pad depth_idx
          depth_idx bound depth_idx ]
      @ body
      @ [ pad ^ "}" ]
    | 9 when depth_idx < 3 ->
      let bound = 1 + Gen.int_bound 5 st in
      let body = stmts (fuel - 1) (depth_idx + 1) (indent + 1) st in
      [ Printf.sprintf "%si%d = 0;" pad depth_idx;
        Printf.sprintf "%swhile (i%d < %d) {" pad depth_idx bound ]
      @ body
      @ [ Printf.sprintf "%s  i%d = i%d + 1;" pad depth_idx depth_idx;
          pad ^ "}" ]
    | 10 -> [ Printf.sprintf "%sg%d += %s;" pad (Gen.int_bound 2 st) (e 1) ]
    | 11 ->
      (* struct traffic: field stores, pointer retargeting *)
      (match Gen.int_bound 3 st with
      | 0 ->
        [ Printf.sprintf "%sgone.%s = %s;" pad
            (if Gen.bool st then "a" else "b")
            (e 2) ]
      | 1 ->
        [ Printf.sprintf "%sgpairs[%s & 3].%s = %s;" pad (e 1)
            (if Gen.bool st then "a" else "b")
            (e 2) ]
      | 2 ->
        [ Printf.sprintf "%spp = %s;" pad
            (if Gen.bool st then "&gone"
             else Printf.sprintf "&gpairs[%d]" (Gen.int_bound 3 st)) ]
      | _ ->
        [ Printf.sprintf "%spp->%s = %s;" pad
            (if Gen.bool st then "a" else "b")
            (e 2) ])
    | 12 -> [ Printf.sprintf "%sgf = gf * 0.5 + %s;" pad (e 1) ]
    | _ -> [ Printf.sprintf "%sx%d = f_touch(x%d);" pad (Gen.int_bound 3 st)
               (Gen.int_bound 3 st) ]
  in
  stmts

let gen_program : string Gen.t =
 fun st ->
  let body = gen_stmts 4 0 1 st in
  let lines =
    [ prelude; "int main() {";
      "  int x0 = 1; int x1 = 2; int x2 = 3; int x3 = 4;";
      "  int i0; int i1; int i2;";
      "  pg = &g0;";
      "  pp = &gone;" ]
    @ body
    @ [
        "  print_int(g0); print_int(g1); print_int(g2);";
        "  print_float(gf);";
        "  print_int(gone.a * 3 + gone.b);";
        "  { int i; int s = 0; for (i = 0; i < 4; i++) s += gpairs[i].a - \
         gpairs[i].b; print_int(s); }";
        "  print_int(x0 + x1 + x2 + x3);";
        "  { int i; int s = 0; for (i = 0; i < 8; i++) s += ga[i]; \
         print_int(s); }";
        "  return 0;";
        "}";
      ]
  in
  String.concat "\n" lines

let arb_program = make ~print:(fun s -> s) gen_program
