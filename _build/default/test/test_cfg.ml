(** CFG algorithm tests: Lengauer–Tarjan dominators (cross-checked against
    the independent iterative solver on random graphs), natural loops and
    the nesting forest, normalization invariants, and the Clean pass. *)

open Rp_ir
module D = Rp_cfg.Dominators
module L = Rp_cfg.Loops

(* Build a function from (label, successor list) pairs; reg 0 holds an
   arbitrary branch condition. *)
let mk_cfg ?(entry = "b0") (edges : (string * string list) list) : Func.t =
  let f = Func.create ~name:"g" ~nparams:0 in
  f.Func.nreg <- 1;
  f.Func.entry <- entry;
  List.iter
    (fun (l, succs) ->
      let term =
        match succs with
        | [] -> Instr.Ret None
        | [ s ] -> Instr.Jump s
        | [ a; b ] -> Instr.Cbr (0, a, b)
        | _ -> invalid_arg "mk_cfg: at most 2 successors"
      in
      Func.add_block f (Block.create ~term l))
    edges;
  (* define reg 0 at entry so validation passes *)
  (Func.block f entry).Block.instrs <- [ Instr.Loadi (0, Instr.Cint 0) ];
  f

let idom_alist (d : D.t) (f : Func.t) =
  List.filter_map (fun l -> Option.map (fun p -> (l, p)) (D.idom d l)) f.Func.order
  |> List.sort compare

let dominator_tests =
  [
    Util.tc "diamond" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "l"; "r" ]); ("l", [ "j" ]); ("r", [ "j" ]); ("j", []) ]
        in
        let d = D.compute f in
        Util.check
          Alcotest.(list (pair string string))
          "idoms"
          [ ("j", "b0"); ("l", "b0"); ("r", "b0") ]
          (idom_alist d f);
        Util.check Alcotest.bool "b0 dominates j" true (D.dominates d "b0" "j");
        Util.check Alcotest.bool "l does not dominate j" false
          (D.dominates d "l" "j"));
    Util.tc "simple loop" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "h" ]); ("h", [ "body"; "exit" ]); ("body", [ "h" ]);
              ("exit", []) ]
        in
        let d = D.compute f in
        Util.check Alcotest.(option string) "idom body" (Some "h")
          (D.idom d "body");
        Util.check Alcotest.(option string) "idom exit" (Some "h")
          (D.idom d "exit"));
    Util.tc "irreducible graph (two entries to a cycle)" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "a"; "b" ]); ("a", [ "b" ]); ("b", [ "a" ]) ]
        in
        let d = D.compute f in
        (* neither a nor b dominates the other *)
        Util.check Alcotest.(option string) "idom a" (Some "b0") (D.idom d "a");
        Util.check Alcotest.(option string) "idom b" (Some "b0") (D.idom d "b"));
    Util.tc "unreachable blocks ignored" (fun () ->
        let f = mk_cfg [ ("b0", []); ("dead", [ "b0" ]) ] in
        let d = D.compute f in
        Util.check Alcotest.bool "dead unreachable" false (D.is_reachable d "dead"));
    Util.tc "strict domination is irreflexive" (fun () ->
        let f = mk_cfg [ ("b0", [ "x" ]); ("x", []) ] in
        let d = D.compute f in
        Util.check Alcotest.bool "not strict self" false
          (D.strictly_dominates d "x" "x");
        Util.check Alcotest.bool "reflexive dominates" true (D.dominates d "x" "x"));
    Util.tc "dom tree depths" (fun () ->
        let f =
          mk_cfg [ ("b0", [ "m" ]); ("m", [ "n" ]); ("n", []) ]
        in
        let d = D.compute f in
        Util.check Alcotest.int "entry depth" 0 (D.depth d "b0");
        Util.check Alcotest.int "n depth" 2 (D.depth d "n"));
  ]

(* random CFG property: LT and the iterative solver agree *)
let random_cfg_gen =
  let open QCheck.Gen in
  sized_size (int_range 2 14) (fun n ->
      let labels = List.init n (fun i -> Printf.sprintf "b%d" i) in
      let* succs =
        flatten_l
          (List.map
             (fun _ ->
               let* kind = int_bound 9 in
               if kind = 0 then return []
               else
                 let* a = int_bound (n - 1) in
                 if kind <= 5 then return [ List.nth labels a ]
                 else
                   let* b = int_bound (n - 1) in
                   return [ List.nth labels a; List.nth labels b ])
             labels)
      in
      return (List.combine labels succs))

let dominator_props =
  let open QCheck in
  let arb =
    make
      ~print:(fun edges ->
        String.concat "; "
          (List.map (fun (l, ss) -> l ^ "->" ^ String.concat "," ss) edges))
      random_cfg_gen
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"LT equals iterative dominators on random CFGs"
         ~count:300 arb (fun edges ->
           let f = mk_cfg edges in
           let lt = D.compute f in
           let it = D.compute_iterative f in
           idom_alist lt f = idom_alist it f));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"idom strictly dominates its node" ~count:200 arb
         (fun edges ->
           let f = mk_cfg edges in
           let d = D.compute f in
           List.for_all
             (fun l ->
               match D.idom d l with
               | None -> true
               | Some p -> D.strictly_dominates d p l)
             f.Func.order));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"loop headers dominate their blocks" ~count:200 arb
         (fun edges ->
           let f = mk_cfg edges in
           let d = D.compute f in
           let forest = L.analyze f d in
           List.for_all
             (fun (l : L.loop) ->
               Rp_support.Smaps.String_set.for_all
                 (fun b -> D.dominates d l.L.header b)
                 l.L.blocks)
             forest.L.loops));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"normalize yields landing pads and dedicated exits"
         ~count:200 arb (fun edges ->
           let f = mk_cfg edges in
           Rp_cfg.Normalize.run f;
           let d = D.compute f in
           let forest = L.analyze f d in
           List.for_all
             (fun (l : L.loop) ->
               L.preheader f l <> None && L.exits_dedicated f l)
             forest.L.loops));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"clean preserves entry reachability structure"
         ~count:200 arb (fun edges ->
           let f = mk_cfg edges in
           (* whether the program can reach a Ret terminator *)
           let reaches_ret f =
             let seen = Hashtbl.create 16 in
             let rec go l =
               if Hashtbl.mem seen l then false
               else begin
                 Hashtbl.replace seen l ();
                 match (Func.block f l).Block.term with
                 | Instr.Ret _ -> true
                 | t -> List.exists go (Instr.term_succs t)
               end
             in
             go f.Func.entry
           in
           let before = reaches_ret f in
           Rp_cfg.Clean.run f;
           reaches_ret f = before));
  ]

(* ------------------------------------------------------------------ *)

let loop_tests =
  [
    Util.tc "triple nest structure" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "h1" ]);
              ("h1", [ "h2"; "x1" ]);
              ("h2", [ "h3"; "x2" ]);
              ("h3", [ "h3b" ]);
              ("h3b", [ "h3"; "x3" ]);
              ("x3", [ "h2" ]);
              ("x2", [ "h1" ]);
              ("x1", []) ]
        in
        let d = D.compute f in
        let forest = L.analyze f d in
        Util.check Alcotest.int "three loops" 3 (List.length forest.L.loops);
        let by h = Hashtbl.find forest.L.by_header h in
        Util.check Alcotest.int "outer depth" 1 (by "h1").L.depth;
        Util.check Alcotest.int "middle depth" 2 (by "h2").L.depth;
        Util.check Alcotest.int "inner depth" 3 (by "h3").L.depth;
        Util.check Alcotest.bool "inner parent is middle" true
          ((by "h3").L.parent == Some (by "h2") ||
           match (by "h3").L.parent with
           | Some p -> p.L.header = "h2"
           | None -> false));
    Util.tc "loops sharing a header merge" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "h" ]); ("h", [ "a"; "b" ]); ("a", [ "h" ]);
              ("b", [ "h" ]) ]
        in
        let d = D.compute f in
        let forest = L.analyze f d in
        Util.check Alcotest.int "one loop" 1 (List.length forest.L.loops);
        let l = List.hd forest.L.loops in
        Util.check Alcotest.int "three blocks (h, a, b)" 3
          (Rp_support.Smaps.String_set.cardinal l.L.blocks));
    Util.tc "loops_of returns innermost first" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "h1" ]); ("h1", [ "h2" ]); ("h2", [ "h2b" ]);
              ("h2b", [ "h2"; "l1" ]); ("l1", [ "h1"; "out" ]); ("out", []) ]
        in
        let d = D.compute f in
        let forest = L.analyze f d in
        match L.loops_of forest "h2b" with
        | [ inner; outer ] ->
          Util.check Alcotest.string "inner" "h2" inner.L.header;
          Util.check Alcotest.string "outer" "h1" outer.L.header
        | ls -> Alcotest.failf "expected 2 loops, got %d" (List.length ls));
  ]

let normalize_tests =
  [
    Util.tc "inserts a preheader when the header has two outside preds"
      (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "p1"; "p2" ]); ("p1", [ "h" ]); ("p2", [ "h" ]);
              ("h", [ "h"; "out" ]); ("out", []) ]
        in
        Rp_cfg.Normalize.run f;
        let d = D.compute f in
        let forest = L.analyze f d in
        let l = Hashtbl.find forest.L.by_header "h" in
        Util.check Alcotest.bool "has preheader" true (L.preheader f l <> None));
    Util.tc "splits non-dedicated exits" (fun () ->
        (* 'out' is reachable both from inside the loop and from b0 *)
        let f =
          mk_cfg
            [ ("b0", [ "h"; "out" ]); ("h", [ "h"; "out" ]); ("out", []) ]
        in
        Rp_cfg.Normalize.run f;
        let d = D.compute f in
        let forest = L.analyze f d in
        let l = Hashtbl.find forest.L.by_header "h" in
        Util.check Alcotest.bool "exits dedicated" true (L.exits_dedicated f l));
    Util.tc "entry-header loop gets a pad and a new entry" (fun () ->
        let f = mk_cfg ~entry:"h" [ ("h", [ "h"; "out" ]); ("out", []) ] in
        Rp_cfg.Normalize.run f;
        Util.check Alcotest.bool "entry moved" true (f.Func.entry <> "h"));
    Util.tc "idempotent on front-end output" (fun () ->
        let p =
          Util.front
            "int g; int main() { int i; for (i = 0; i < 3; i++) g += i; \
             return g; }"
        in
        let f = Program.func p "main" in
        Rp_cfg.Normalize.run f;
        let order1 = f.Func.order in
        Rp_cfg.Normalize.run f;
        Util.check Alcotest.(list string) "no new blocks" order1 f.Func.order);
  ]

let clean_tests =
  [
    Util.tc "unreachable blocks removed" (fun () ->
        let f = mk_cfg [ ("b0", []); ("dead1", [ "dead2" ]); ("dead2", []) ] in
        Rp_cfg.Clean.run f;
        Util.check Alcotest.(list string) "only entry" [ "b0" ] f.Func.order);
    Util.tc "empty blocks bypassed" (fun () ->
        let f =
          mk_cfg [ ("b0", [ "mid" ]); ("mid", [ "fin" ]); ("fin", []) ]
        in
        Rp_cfg.Clean.run f;
        (* the whole chain collapses into the entry block *)
        Util.check Alcotest.(list string) "collapsed" [ "b0" ] f.Func.order);
    Util.tc "cbr with equal targets folds" (fun () ->
        let f = mk_cfg [ ("b0", [ "x"; "x" ]); ("x", []) ] in
        (* mk_cfg turns [x;x] into a Cbr with both arms x *)
        (Func.block f "b0").Block.term <- Instr.Cbr (0, "x", "x");
        Rp_cfg.Clean.run f;
        Util.check Alcotest.(list string) "merged" [ "b0" ] f.Func.order);
    Util.tc "does not merge into a block with other predecessors" (fun () ->
        let f =
          mk_cfg
            [ ("b0", [ "a"; "b" ]); ("a", [ "j" ]); ("b", [ "j" ]); ("j", []) ]
        in
        (* put an instruction in each block so nothing is empty *)
        List.iter
          (fun l ->
            (Func.block f l).Block.instrs <-
              [ Instr.Loadi (0, Instr.Cint 1) ])
          [ "a"; "b"; "j" ];
        Rp_cfg.Clean.run f;
        Util.check Alcotest.bool "join survives" true (Func.mem_block f "j"));
    Util.tc "empty landing pads disappear after promotion found nothing"
      (fun () ->
        let p =
          Util.compile
            "int main() { int s = 0; int i; for (i = 0; i < 4; i++) s += i; \
             return s; }"
        in
        (* all loop scaffolding that carries no code is gone *)
        let f = Program.func p "main" in
        Func.iter_blocks
          (fun b ->
            if b.Block.instrs = [] then
              match b.Block.term with
              | Instr.Jump _ ->
                Alcotest.failf "leftover empty block %s" b.Block.label
              | _ -> ())
          f);
  ]

let () =
  Alcotest.run "cfg"
    [
      ("dominators", dominator_tests @ dominator_props);
      ("loops", loop_tests);
      ("normalize", normalize_tests);
      ("clean", clean_tests);
    ]
