(** SSA construction/destruction tests: structural validity after
    construction, semantic preservation through a construct→destruct round
    trip, and dominance-frontier sanity. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

let sources =
  [
    ("straightline", "int main() { int x = 1; x = x + 2; return x; }");
    ("diamond",
     "int main() { int x = 0; if (rand() % 2) x = 1; else x = 2; return x; }");
    ("loop",
     "int main() { int s = 0; int i; for (i = 0; i < 10; i++) s += i; \
      return s; }");
    ("nested",
     "int g; int main() { int i; int j; for (i = 0; i < 5; i++) { for (j = \
      0; j < 5; j++) { g += i * j; } } return g; }");
    ("calls",
     "int f(int x) { if (x < 2) return x; return f(x-1) + f(x-2); } int \
      main() { return f(10); }");
    ("shortcircuit",
     "int main() { int a = 3; int b = 0; if (a > 1 && b == 0 || a == 9) \
      return 1; return 0; }");
    ("breaks",
     "int main() { int s = 0; int i; for (i = 0; i < 100; i++) { if (i > 7) \
      break; if (i % 2) continue; s += i; } return s; }");
    ("usebeforedef",
     "int main() { int x; int i; for (i = 0; i < 3; i++) { if (i > 0) { } \
      else { x = 5; } } return x; }");
  ]

let construct_tests =
  List.map
    (fun (name, src) ->
      Util.tc ("valid SSA: " ^ name) (fun () ->
          let p = Util.front src in
          Program.iter_funcs
            (fun f ->
              ignore (Rp_ssa.Ssa.construct f : Rp_ssa.Ssa.info);
              Util.check
                Alcotest.(list string)
                (f.Func.name ^ " SSA check")
                [] (Rp_ssa.Ssa.check f))
            p))
    sources

let roundtrip_tests =
  List.map
    (fun (name, src) ->
      Util.tc ("round trip preserves semantics: " ^ name) (fun () ->
          let p1 = Util.front src in
          let r1 = Rp_exec.Interp.run p1 in
          let p2 = Util.front src in
          Program.iter_funcs
            (fun f ->
              ignore (Rp_ssa.Ssa.construct f : Rp_ssa.Ssa.info);
              Rp_ssa.Ssa.destruct f)
            p2;
          Validate.assert_ok p2;
          let r2 = Rp_exec.Interp.run p2 in
          Util.check Alcotest.string "output" r1.Rp_exec.Interp.output
            r2.Rp_exec.Interp.output;
          Util.check Alcotest.int "checksum" r1.Rp_exec.Interp.checksum
            r2.Rp_exec.Interp.checksum))
    sources

let origin_tests =
  [
    Util.tc "origin maps every new name to its source register" (fun () ->
        let p = Util.front (List.assoc "loop" sources) in
        let f = Program.func p "main" in
        let before = f.Func.nreg in
        let info = Rp_ssa.Ssa.construct f in
        Func.iter_instrs
          (fun _ i ->
            List.iter
              (fun d ->
                match Hashtbl.find_opt info.Rp_ssa.Ssa.origin d with
                | Some o ->
                  if o >= before then
                    Alcotest.failf "origin r%d of r%d is not a source reg" o d
                | None -> Alcotest.failf "r%d has no origin" d)
              (Instr.defs i))
          f);
    Util.tc "instruction order per block is preserved modulo phis" (fun () ->
        let src = List.assoc "nested" sources in
        let p1 = Util.front src in
        let p2 = Util.front src in
        let f2 = Program.func p2 "main" in
        ignore (Rp_ssa.Ssa.construct f2 : Rp_ssa.Ssa.info);
        let f1 = Program.func p1 "main" in
        (* SSA construction may drop unreachable blocks; compare shared *)
        Func.iter_blocks
          (fun (b1 : Block.t) ->
            match Func.block_opt f2 b1.Block.label with
            | None -> ()
            | Some b2 ->
              let shape i =
                match (i : Instr.t) with
                | Instr.Loadi _ -> "loadi" | Instr.Loada _ -> "addr"
                | Instr.Loadfp _ -> "fnptr" | Instr.Unop _ -> "unop"
                | Instr.Binop _ -> "binop" | Instr.Copy _ -> "cp"
                | Instr.Loadc _ -> "cload" | Instr.Loads _ -> "sload"
                | Instr.Stores _ -> "sstore" | Instr.Loadg _ -> "load"
                | Instr.Storeg _ -> "store" | Instr.Call _ -> "call"
                | Instr.Phi _ -> "phi"
              in
              let s1 = List.map shape b1.Block.instrs in
              let s2 =
                List.map shape
                  (List.filter (fun i -> not (Instr.is_phi i)) b2.Block.instrs)
              in
              Util.check Alcotest.(list string) ("shapes " ^ b1.Block.label) s1 s2)
          f1);
  ]

let frontier_tests =
  [
    Util.tc "diamond join is in both arms' frontiers" (fun () ->
        (* b0 -> l,r ; l,r -> j *)
        let f = Func.create ~name:"g" ~nparams:0 in
        f.Func.nreg <- 1;
        f.Func.entry <- "b0";
        List.iter (Func.add_block f)
          [
            Block.create ~instrs:[ Instr.Loadi (0, Instr.Cint 0) ]
              ~term:(Instr.Cbr (0, "l", "r")) "b0";
            Block.create ~term:(Instr.Jump "j") "l";
            Block.create ~term:(Instr.Jump "j") "r";
            Block.create ~term:(Instr.Ret None) "j";
          ];
        let dom = Rp_cfg.Dominators.compute f in
        let df = Rp_ssa.Ssa.dominance_frontiers f dom in
        let get l = Option.value ~default:SS.empty (Hashtbl.find_opt df l) in
        Util.check Alcotest.bool "j in DF(l)" true (SS.mem "j" (get "l"));
        Util.check Alcotest.bool "j in DF(r)" true (SS.mem "j" (get "r"));
        Util.check Alcotest.bool "DF(b0) empty" true (SS.is_empty (get "b0")));
    Util.tc "loop header is in the latch's frontier (and its own)" (fun () ->
        let f = Func.create ~name:"g" ~nparams:0 in
        f.Func.nreg <- 1;
        f.Func.entry <- "b0";
        List.iter (Func.add_block f)
          [
            Block.create ~instrs:[ Instr.Loadi (0, Instr.Cint 0) ]
              ~term:(Instr.Jump "h") "b0";
            Block.create ~term:(Instr.Cbr (0, "body", "out")) "h";
            Block.create ~term:(Instr.Jump "h") "body";
            Block.create ~term:(Instr.Ret None) "out";
          ];
        let dom = Rp_cfg.Dominators.compute f in
        let df = Rp_ssa.Ssa.dominance_frontiers f dom in
        let get l = Option.value ~default:SS.empty (Hashtbl.find_opt df l) in
        Util.check Alcotest.bool "h in DF(body)" true (SS.mem "h" (get "body"));
        Util.check Alcotest.bool "h in DF(h)" true (SS.mem "h" (get "h")));
  ]

let phi_tests =
  [
    Util.tc "diamond assignment produces a phi at the join" (fun () ->
        let p =
          Util.front
            "int main() { int x = 0; if (rand() % 2) x = 1; else x = 2; \
             return x; }"
        in
        let f = Program.func p "main" in
        ignore (Rp_ssa.Ssa.construct f : Rp_ssa.Ssa.info);
        let phis = ref 0 in
        Func.iter_instrs
          (fun _ i -> if Instr.is_phi i then incr phis)
          f;
        Util.check Alcotest.bool "at least one phi" true (!phis >= 1));
    Util.tc "straight-line code needs no phis" (fun () ->
        let p = Util.front "int main() { int x = 1; x = x + 1; return x; }" in
        let f = Program.func p "main" in
        ignore (Rp_ssa.Ssa.construct f : Rp_ssa.Ssa.info);
        Func.iter_instrs
          (fun _ i ->
            if Instr.is_phi i then Alcotest.fail "unexpected phi")
          f);
  ]

let () =
  Alcotest.run "ssa"
    [
      ("construct", construct_tests);
      ("roundtrip", roundtrip_tests);
      ("origin", origin_tests);
      ("frontiers", frontier_tests);
      ("phis", phi_tests);
    ]
