test/test_regalloc.ml: Alcotest Config Func Instr List Pipeline Printf Program Rp_driver Rp_ir Rp_regalloc Rp_suite Tag Util
