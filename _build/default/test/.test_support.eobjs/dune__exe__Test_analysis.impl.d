test/test_analysis.ml: Alcotest Func Instr List Program Rp_analysis Rp_driver Rp_ir Rp_suite Rp_support String Tag Tagset Util
