test/test_cfg.ml: Alcotest Block Func Hashtbl Instr List Option Printf Program QCheck QCheck_alcotest Rp_cfg Rp_ir Rp_support String Test Util
