test/test_golden.ml: Alcotest Config List Printf Rp_driver Rp_suite Util
