test/test_serial.ml: Alcotest Block Config Func Gen_minic Instr List Program QCheck QCheck_alcotest Rp_driver Rp_exec Rp_ir Rp_suite Serial Tag Test Util Validate
