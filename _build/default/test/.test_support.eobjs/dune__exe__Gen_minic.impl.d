test/gen_minic.ml: Gen List Printf QCheck String
