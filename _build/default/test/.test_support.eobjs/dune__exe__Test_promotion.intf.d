test/test_promotion.mli:
