test/test_frontend.ml: Alcotest Array Ast Fmt Lexer List Parser Rp_minic Srcloc String Tast Token Typecheck Util
