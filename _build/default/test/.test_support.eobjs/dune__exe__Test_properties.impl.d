test/test_properties.ml: Alcotest Config Gen_minic List Pipeline QCheck QCheck_alcotest Rp_driver Rp_exec Rp_ir Test
