test/util.ml: Alcotest Config List Pipeline Rp_driver Rp_exec Rp_irgen Rp_minic
