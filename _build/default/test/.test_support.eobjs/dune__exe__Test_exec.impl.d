test/test_exec.ml: Alcotest Block Bool Config Fmt Func Instr List Printf Program Rp_driver Rp_exec Rp_ir Rp_suite String Tag Tagset Util
