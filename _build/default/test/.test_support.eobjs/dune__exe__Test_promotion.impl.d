test/test_promotion.ml: Alcotest Block Config Func Hashtbl Instr List Pipeline Printf Program Rp_cfg Rp_core Rp_driver Rp_ir Rp_suite Tag Tagset Util
