test/test_ssa.ml: Alcotest Block Func Hashtbl Instr List Option Program Rp_cfg Rp_exec Rp_ir Rp_ssa Rp_support Util Validate
