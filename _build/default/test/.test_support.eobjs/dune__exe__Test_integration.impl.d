test/test_integration.ml: Alcotest Config Filename Fun List Pipeline Printf Rp_driver Rp_exec Rp_suite String Sys Util
