test/test_ir.ml: Alcotest Array Block Fmt Func Gen Instr List QCheck QCheck_alcotest Rp_ir Rp_suite Tag Tagset Test Util Validate
