test/test_opt.ml: Alcotest Array Block Fmt Func Instr List Program Rp_driver Rp_exec Rp_ir Rp_opt Rp_suite Rp_support Tag Tagset Util
