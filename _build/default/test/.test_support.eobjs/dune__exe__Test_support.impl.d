test/test_support.ml: Alcotest Array Idgen List QCheck QCheck_alcotest Rp_support Test Union_find Util Worklist
