(** Unit and property tests for the support library. *)

open Rp_support

let idgen_tests =
  [
    Util.tc "fresh is monotonic" (fun () ->
        let g = Idgen.create () in
        Util.check Alcotest.int "first" 0 (Idgen.fresh g);
        Util.check Alcotest.int "second" 1 (Idgen.fresh g);
        Util.check Alcotest.int "third" 2 (Idgen.fresh g));
    Util.tc "start offset respected" (fun () ->
        let g = Idgen.create ~start:10 () in
        Util.check Alcotest.int "first" 10 (Idgen.fresh g);
        Util.check Alcotest.int "peek" 11 (Idgen.peek g));
    Util.tc "count tracks allocations" (fun () ->
        let g = Idgen.create () in
        ignore (Idgen.fresh g);
        ignore (Idgen.fresh g);
        Util.check Alcotest.int "count" 2 (Idgen.count g));
  ]

let uf_tests =
  [
    Util.tc "singletons are their own roots" (fun () ->
        let uf = Union_find.create 8 in
        for i = 0 to 7 do
          Util.check Alcotest.int "root" i (Union_find.find uf i)
        done);
    Util.tc "union merges classes" (fun () ->
        let uf = Union_find.create 8 in
        ignore (Union_find.union uf 0 1);
        ignore (Union_find.union uf 2 3);
        Util.check Alcotest.bool "0~1" true (Union_find.same uf 0 1);
        Util.check Alcotest.bool "2~3" true (Union_find.same uf 2 3);
        Util.check Alcotest.bool "0!~2" false (Union_find.same uf 0 2);
        ignore (Union_find.union uf 1 3);
        Util.check Alcotest.bool "0~3 after chain union" true
          (Union_find.same uf 0 3));
    Util.tc "union is idempotent" (fun () ->
        let uf = Union_find.create 4 in
        let r1 = Union_find.union uf 0 1 in
        let r2 = Union_find.union uf 0 1 in
        Util.check Alcotest.int "same root" r1 r2);
  ]

let uf_props =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"union-find: find is a class representative"
         ~count:200
         (list (pair (int_bound 31) (int_bound 31)))
         (fun pairs ->
           let uf = Union_find.create 32 in
           List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
           (* representative is consistent: same a b <=> find a = find b *)
           List.for_all
             (fun (a, b) ->
               Union_find.same uf a b
               = (Union_find.find uf a = Union_find.find uf b))
             pairs));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"union-find: unions are transitive" ~count:200
         (list (pair (int_bound 15) (int_bound 15)))
         (fun pairs ->
           let uf = Union_find.create 16 in
           List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
           (* brute-force reference partition *)
           let parent = Array.init 16 (fun i -> i) in
           let rec find i = if parent.(i) = i then i else find parent.(i) in
           List.iter
             (fun (a, b) ->
               let ra = find a and rb = find b in
               if ra <> rb then parent.(ra) <- rb)
             pairs;
           List.for_all
             (fun (a, b) ->
               Union_find.same uf a b = (find a = find b))
             (List.concat_map
                (fun a -> List.map (fun b -> (a, b)) [ 0; 5; 10; 15 ])
                [ 0; 3; 7; 12 ])));
  ]

let worklist_tests =
  [
    Util.tc "fifo order" (fun () ->
        let wl = Worklist.create () in
        Worklist.push wl 1;
        Worklist.push wl 2;
        Worklist.push wl 3;
        Util.check Alcotest.(option int) "pop1" (Some 1) (Worklist.pop wl);
        Util.check Alcotest.(option int) "pop2" (Some 2) (Worklist.pop wl));
    Util.tc "no duplicates while pending" (fun () ->
        let wl = Worklist.create () in
        Worklist.push wl 7;
        Worklist.push wl 7;
        ignore (Worklist.pop wl);
        Util.check Alcotest.(option int) "only one" None (Worklist.pop wl));
    Util.tc "re-push after pop allowed" (fun () ->
        let wl = Worklist.create () in
        Worklist.push wl 7;
        ignore (Worklist.pop wl);
        Worklist.push wl 7;
        Util.check Alcotest.(option int) "requeued" (Some 7) (Worklist.pop wl));
    Util.tc "run drains including new work" (fun () ->
        let wl = Worklist.of_list [ 0 ] in
        let seen = ref [] in
        Worklist.run wl (fun x ->
            seen := x :: !seen;
            if x < 3 then Worklist.push wl (x + 1));
        Util.check
          Alcotest.(list int)
          "visited chain" [ 0; 1; 2; 3 ] (List.rev !seen));
  ]

let () =
  Alcotest.run "support"
    [
      ("idgen", idgen_tests);
      ("union_find", uf_tests @ uf_props);
      ("worklist", worklist_tests);
    ]
