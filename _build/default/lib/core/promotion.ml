(** Register promotion — the paper's §3.1 algorithm, implemented from the
    Figure 1 equations.

    For every basic block the pass gathers
    - [B_EXPLICIT(b)]: tags referenced by explicit memory operations
      (sLoad/sStore/cLoad, plus a pointer-based operation whose tag set is a
      singleton promotable scalar — a pointer that "cannot point to multiple
      objects");
    - [B_AMBIGUOUS(b)]: tags referenced ambiguously — through procedure
      calls (MOD ∪ REF) or through pointer-based operations whose tag set
      contains multiple tags (or a single tag that does not denote a single
      scalar location).

    Per loop [l] (equations 1–4):
    {v
      L_EXPLICIT(l)   = ∪ B_EXPLICIT(b),  b ∈ l
      L_AMBIGUOUS(l)  = ∪ B_AMBIGUOUS(b), b ∈ l
      L_PROMOTABLE(l) = L_EXPLICIT(l) - L_AMBIGUOUS(l)
      L_LIFT(l)       = L_PROMOTABLE(l)                          l outermost
                      = L_PROMOTABLE(l) - L_PROMOTABLE(parent l) otherwise
    v}

    Rewriting: every reference to a promotable tag inside a loop where it is
    promotable becomes a register copy ("subject to coalescing by the
    register allocator"); a load of the tag is placed in the landing pad and
    a store in the dedicated exit blocks of every loop in whose [L_LIFT] the
    tag appears.

    Exit stores are emitted only when a store to the tag was rewritten
    inside the promoted region, unless [always_store] requests the paper's
    literal unconditional behaviour (DESIGN.md §6.2). *)

open Rp_ir
module Loops = Rp_cfg.Loops

type block_info = { explicit_ : Tagset.t; ambiguous : Tagset.t }

(** Per-instruction classification feeding [B_EXPLICIT]/[B_AMBIGUOUS]. *)
let classify (i : Instr.t) : [ `Explicit of Tag.t | `Ambiguous of Tagset.t | `None ]
    =
  match i with
  | Instr.Loads (_, t) | Instr.Loadc (_, t) | Instr.Stores (t, _) ->
    if Tag.promotable_direct t then `Explicit t
    else `Ambiguous (Tagset.singleton t)
  | Instr.Loadg (_, _, ts) | Instr.Storeg (_, _, ts) -> (
    match Tagset.as_singleton ts with
    | Some t when Tag.promotable_via_pointer t -> `Explicit t
    | _ -> `Ambiguous ts)
  | Instr.Call c -> `Ambiguous (Tagset.union c.Instr.mods c.Instr.refs)
  | _ -> `None

let block_info (b : Block.t) : block_info =
  List.fold_left
    (fun acc i ->
      match classify i with
      | `Explicit t -> { acc with explicit_ = Tagset.add t acc.explicit_ }
      | `Ambiguous ts -> { acc with ambiguous = Tagset.union ts acc.ambiguous }
      | `None -> acc)
    { explicit_ = Tagset.empty; ambiguous = Tagset.empty }
    b.Block.instrs

type loop_info = {
  loop : Loops.loop;
  l_explicit : Tagset.t;
  l_ambiguous : Tagset.t;
  l_promotable : Tagset.t;
  l_lift : Tagset.t;
  l_stored : Tagset.t;
      (** tags stored to by an explicit (rewritable) store inside the loop —
          drives the exit-store decision *)
}

(** Solve the Figure 1 equations over the loop forest of [f]. *)
let analyze_loops (f : Func.t) (forest : Loops.forest) :
    (Instr.label, loop_info) Hashtbl.t =
  (* per-block info, once *)
  let binfo = Hashtbl.create 32 in
  Func.iter_blocks
    (fun b -> Hashtbl.replace binfo b.Block.label (block_info b))
    f;
  let stored_of (b : Block.t) =
    List.fold_left
      (fun acc i ->
        match i with
        | Instr.Stores (t, _) when Tag.promotable_direct t -> Tagset.add t acc
        | Instr.Storeg (_, _, ts) -> (
          match Tagset.as_singleton ts with
          | Some t when Tag.promotable_via_pointer t -> Tagset.add t acc
          | _ -> acc)
        | _ -> acc)
      Tagset.empty b.Block.instrs
  in
  let infos : (Instr.label, loop_info) Hashtbl.t = Hashtbl.create 16 in
  (* equations 1-3 per loop *)
  List.iter
    (fun (l : Loops.loop) ->
      let ex = ref Tagset.empty in
      let am = ref Tagset.empty in
      let stored = ref Tagset.empty in
      Rp_support.Smaps.String_set.iter
        (fun lbl ->
          match Hashtbl.find_opt binfo lbl with
          | Some bi ->
            ex := Tagset.union bi.explicit_ !ex;
            am := Tagset.union bi.ambiguous !am;
            stored := Tagset.union (stored_of (Func.block f lbl)) !stored
          | None -> ())
        l.Loops.blocks;
      Hashtbl.replace infos l.Loops.header
        {
          loop = l;
          l_explicit = !ex;
          l_ambiguous = !am;
          l_promotable = Tagset.diff !ex !am;
          l_lift = Tagset.empty;
          l_stored = !stored;
        })
    forest.Loops.loops;
  (* equation 4, outermost first *)
  let rec set_lift (l : Loops.loop) =
    let info = Hashtbl.find infos l.Loops.header in
    let lift =
      match l.Loops.parent with
      | None -> info.l_promotable
      | Some parent ->
        let pinfo = Hashtbl.find infos parent.Loops.header in
        Tagset.diff info.l_promotable pinfo.l_promotable
    in
    Hashtbl.replace infos l.Loops.header { info with l_lift = lift };
    List.iter set_lift l.Loops.children
  in
  List.iter
    (fun l -> if Loops.is_outermost l then set_lift l)
    forest.Loops.loops;
  infos

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable promoted_tags : int;  (** tag-loop pairs lifted *)
  mutable rewritten_ops : int;  (** memory operations turned into copies *)
  mutable inserted_loads : int;
  mutable inserted_stores : int;
  mutable throttled_tags : int;
      (** promotable tags left in memory by the pressure throttle *)
}

let zero_stats () =
  { promoted_tags = 0; rewritten_ops = 0; inserted_loads = 0;
    inserted_stores = 0; throttled_tags = 0 }

(* ------------------------------------------------------------------ *)
(* Register-pressure throttling (the paper's §7 proposal)              *)
(* ------------------------------------------------------------------ *)

(** The paper closes with: "To guard against this problem, we may need to
    extend our promotion algorithm with an explicit decision-making process
    that considers register pressure and frequency of use before promoting
    a value" — citing Carr's bin-packing discipline for scalar replacement.

    [throttle] implements that process.  For each loop, it estimates the
    baseline register pressure (the maximum number of live registers across
    the loop's blocks), computes how many additional loop-long live ranges
    fit under the [budget] (the physical register count, minus headroom for
    the allocator's temporaries), ranks the promotable tags by reference
    frequency — static references weighted by loop depth, the classic 10^d
    estimate — and demotes the least-referenced tags that do not fit.

    Demotion is inheritance-safe: a tag removed from a loop's
    [L_PROMOTABLE] is also removed from all inner loops' sets (the inner
    loops could re-promote it locally, but that would reintroduce the very
    landing-pad traffic the throttle is avoiding on every outer iteration;
    matching Carr, the value simply stays in memory). *)
let throttle (f : Func.t) (forest : Loops.forest)
    (infos : (Instr.label, loop_info) Hashtbl.t) ~(budget : int)
    (stats : stats) : unit =
  let live = Rp_opt.Liveness.compute f in
  (* instruction-grained pressure: the maximum number of simultaneously
     live registers anywhere in the loop *)
  let block_pressure = Hashtbl.create 16 in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let after = Rp_opt.Liveness.live_after_each f live b in
      let m =
        Array.fold_left
          (fun acc s -> max acc (Rp_support.Smaps.Int_set.cardinal s))
          (Rp_support.Smaps.Int_set.cardinal
             (Rp_opt.Liveness.live_in live b.Block.label))
          after
      in
      Hashtbl.replace block_pressure b.Block.label m)
    f;
  let pressure_of (l : Loops.loop) =
    Rp_support.Smaps.String_set.fold
      (fun lbl acc ->
        max acc (Option.value ~default:0 (Hashtbl.find_opt block_pressure lbl)))
      l.Loops.blocks 0
  in
  (* reference frequency of each tag inside loop l, weighted by depth *)
  let freq (l : Loops.loop) (t : Tag.t) =
    Rp_support.Smaps.String_set.fold
      (fun lbl acc ->
        let depth =
          match Hashtbl.find_opt forest.Loops.innermost lbl with
          | Some il -> il.Loops.depth
          | None -> 0
        in
        let w = Float.pow 10. (float_of_int (min depth 6)) in
        List.fold_left
          (fun acc i ->
            match classify i with
            | `Explicit t' when Tag.equal t t' -> acc +. w
            | _ -> acc)
          acc (Func.block f lbl).Block.instrs)
      l.Loops.blocks 0.
  in
  let rec demote_in_children (l : Loops.loop) (t : Tag.t) =
    List.iter
      (fun (child : Loops.loop) ->
        let info = Hashtbl.find infos child.Loops.header in
        if Tagset.mem t info.l_promotable then begin
          Hashtbl.replace infos child.Loops.header
            { info with
              l_promotable = Tagset.diff info.l_promotable (Tagset.singleton t) };
          demote_in_children child t
        end)
      l.Loops.children
  in
  let rec visit (l : Loops.loop) =
    let info = Hashtbl.find infos l.Loops.header in
    (match Tagset.cardinal info.l_promotable with
    | Some n when n > 0 ->
      let room = max 0 (budget - pressure_of l) in
      if n > room then begin
        let ranked =
          Tagset.fold (fun acc t -> (freq l t, t) :: acc) [] info.l_promotable
          |> List.sort (fun (a, ta) (b, tb) ->
                 match compare b a with 0 -> Tag.compare ta tb | c -> c)
        in
        let keep = List.filteri (fun i _ -> i < room) ranked in
        let keep_set = Tagset.of_list (List.map snd keep) in
        let dropped = Tagset.diff info.l_promotable keep_set in
        stats.throttled_tags <-
          stats.throttled_tags
          + Option.value ~default:0 (Tagset.cardinal dropped);
        Hashtbl.replace infos l.Loops.header
          { info with l_promotable = keep_set };
        Tagset.iter (fun t -> demote_in_children l t) dropped
      end
    | _ -> ());
    List.iter visit l.Loops.children
  in
  List.iter (fun l -> if Loops.is_outermost l then visit l) forest.Loops.loops;
  (* recompute L_LIFT (equation 4) over the throttled promotable sets *)
  let rec relift (l : Loops.loop) =
    let info = Hashtbl.find infos l.Loops.header in
    let lift =
      match l.Loops.parent with
      | None -> info.l_promotable
      | Some parent ->
        let pinfo = Hashtbl.find infos parent.Loops.header in
        Tagset.diff info.l_promotable pinfo.l_promotable
    in
    Hashtbl.replace infos l.Loops.header { info with l_lift = lift };
    List.iter relift l.Loops.children
  in
  List.iter (fun l -> if Loops.is_outermost l then relift l) forest.Loops.loops

(** Promote in one function.  The CFG must be normalized (every loop has a
    landing pad and dedicated exits) — see {!Rp_cfg.Normalize}.

    [pressure_budget], when given, enables the §7 throttle: promotable tags
    are kept in memory when the loop's estimated register pressure plus the
    promoted live ranges would exceed the budget (typically the physical
    register count). *)
let promote_func ?(always_store = false) ?pressure_budget (f : Func.t) : stats
    =
  let stats = zero_stats () in
  let dom = Rp_cfg.Dominators.compute f in
  let forest = Loops.analyze f dom in
  if forest.Loops.loops = [] then stats
  else begin
    let infos = analyze_loops f forest in
    (match pressure_budget with
    | Some budget -> throttle f forest infos ~budget stats
    | None -> ());
    (* virtual register for each promoted tag *)
    let vreg : (int, Instr.reg) Hashtbl.t = Hashtbl.create 16 in
    let reg_of (t : Tag.t) =
      match Hashtbl.find_opt vreg t.Tag.id with
      | Some r -> r
      | None ->
        let r = Func.fresh_reg f in
        Hashtbl.replace vreg t.Tag.id r;
        r
    in
    (* a tag is rewritable in block b if some loop containing b promotes it *)
    let promotable_in_block lbl (t : Tag.t) =
      List.exists
        (fun (l : Loops.loop) ->
          match Hashtbl.find_opt infos l.Loops.header with
          | Some info -> Tagset.mem t info.l_promotable
          | None -> false)
        (Loops.loops_of forest lbl)
    in
    (* pass 1: rewrite references *)
    Func.iter_blocks
      (fun (b : Block.t) ->
        if Hashtbl.mem forest.Loops.innermost b.Block.label then
          b.Block.instrs <-
            List.map
              (fun i ->
                let lbl = b.Block.label in
                match i with
                | Instr.Loads (d, t) | Instr.Loadc (d, t)
                  when promotable_in_block lbl t ->
                  stats.rewritten_ops <- stats.rewritten_ops + 1;
                  Instr.Copy (d, reg_of t)
                | Instr.Stores (t, s) when promotable_in_block lbl t ->
                  stats.rewritten_ops <- stats.rewritten_ops + 1;
                  Instr.Copy (reg_of t, s)
                | Instr.Loadg (d, _, ts) -> (
                  match Tagset.as_singleton ts with
                  | Some t
                    when Tag.promotable_via_pointer t
                         && promotable_in_block lbl t ->
                    stats.rewritten_ops <- stats.rewritten_ops + 1;
                    Instr.Copy (d, reg_of t)
                  | _ -> i)
                | Instr.Storeg (_, s, ts) -> (
                  match Tagset.as_singleton ts with
                  | Some t
                    when Tag.promotable_via_pointer t
                         && promotable_in_block lbl t ->
                    stats.rewritten_ops <- stats.rewritten_ops + 1;
                    Instr.Copy (reg_of t, s)
                  | _ -> i)
                | i -> i)
              b.Block.instrs)
      f;
    (* pass 2: insert lifted loads and stores around each loop *)
    Hashtbl.iter
      (fun _ info ->
        let l = info.loop in
        if not (Tagset.is_empty info.l_lift) then begin
          match Loops.preheader f l with
          | None ->
            (* un-normalized CFG: refuse quietly; references inside were
               rewritten only if promotable, and promotable requires the
               lift to land somewhere — so assert instead *)
            invalid_arg
              ("Promotion: loop at " ^ l.Loops.header ^ " has no landing pad")
          | Some pad ->
            let exits = Loops.exit_targets f l in
            Tagset.iter
              (fun t ->
                stats.promoted_tags <- stats.promoted_tags + 1;
                let v = reg_of t in
                let load =
                  if t.Tag.is_const then Instr.Loadc (v, t)
                  else Instr.Loads (v, t)
                in
                Block.append (Func.block f pad) load;
                stats.inserted_loads <- stats.inserted_loads + 1;
                let must_store =
                  (always_store && not t.Tag.is_const)
                  || Tagset.mem t info.l_stored
                in
                if must_store then
                  List.iter
                    (fun e ->
                      Block.prepend (Func.block f e) (Instr.Stores (t, v));
                      stats.inserted_stores <- stats.inserted_stores + 1)
                    exits)
              info.l_lift
        end)
      infos;
    stats
  end

(** Promote every function of the program (normalizing CFGs first) and
    return aggregate statistics. *)
let promote_program ?always_store ?pressure_budget (p : Program.t) : stats =
  let total = zero_stats () in
  Program.iter_funcs
    (fun f ->
      Rp_cfg.Normalize.run f;
      let s = promote_func ?always_store ?pressure_budget f in
      total.promoted_tags <- total.promoted_tags + s.promoted_tags;
      total.rewritten_ops <- total.rewritten_ops + s.rewritten_ops;
      total.inserted_loads <- total.inserted_loads + s.inserted_loads;
      total.inserted_stores <- total.inserted_stores + s.inserted_stores;
      total.throttled_tags <- total.throttled_tags + s.throttled_tags)
    p;
  total
