(** Pointer-based register promotion — the paper's §3.3 extension.

    Promotes memory references whose base register is loop invariant when
    they are the only accesses in the loop to the tags they may touch (the
    Figure 3 [B\[i\] += A\[i\]\[j\]] pattern).  Run after loop-invariant
    code motion so address computations sit in landing pads. *)

open Rp_ir

type stats = {
  mutable promoted_refs : int;  (** invariant-base groups promoted *)
  mutable rewritten_ops : int;
  mutable inserted_loads : int;
  mutable inserted_stores : int;
}

val zero_stats : unit -> stats

(** Promote invariant-base pointer references in one function (the CFG is
    normalized internally).  Loops are processed outermost-first so a
    reference promotable across a whole nest lifts as far out as its
    conditions allow.

    @param always_store emit exit stores even for read-only groups. *)
val promote_func : ?always_store:bool -> Func.t -> stats

val promote_program : ?always_store:bool -> Program.t -> stats
