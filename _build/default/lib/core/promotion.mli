(** Register promotion — the paper's §3.1 algorithm (Figure 1 equations),
    plus the §7 register-pressure throttle.

    The pass rewrites references to promotable memory tags inside loops
    into register copies, loading the tag in the loop's landing pad and
    storing it at the loop's dedicated exits.  See the implementation for
    the full commentary; this interface is the library's public surface. *)

open Rp_ir

(** Per-block contribution to the equations. *)
type block_info = {
  explicit_ : Tagset.t;
      (** tags referenced by explicit memory operations in the block *)
  ambiguous : Tagset.t;
      (** tags referenced ambiguously: call MOD ∪ REF sets and pointer
          operations that may touch several locations *)
}

(** Classify one instruction's contribution: an explicit single-location
    reference, an ambiguous tag set, or no memory effect.  A pointer-based
    operation whose tag set is a singleton global scalar counts as
    explicit. *)
val classify :
  Instr.t -> [ `Explicit of Tag.t | `Ambiguous of Tagset.t | `None ]

val block_info : Block.t -> block_info

(** Per-loop solution of equations (1)–(4). *)
type loop_info = {
  loop : Rp_cfg.Loops.loop;
  l_explicit : Tagset.t;
  l_ambiguous : Tagset.t;
  l_promotable : Tagset.t;  (** equation 3: L_EXPLICIT − L_AMBIGUOUS *)
  l_lift : Tagset.t;
      (** equation 4: tags loaded/stored around {e this} loop (empty when an
          enclosing loop already promotes the tag) *)
  l_stored : Tagset.t;
      (** tags with a rewritable store inside the loop; drives the
          store-only-if-stored exit policy *)
}

(** Solve the Figure 1 equations over a function's loop forest.  The result
    maps each loop header to its {!loop_info}. *)
val analyze_loops :
  Func.t -> Rp_cfg.Loops.forest -> (Instr.label, loop_info) Hashtbl.t

type stats = {
  mutable promoted_tags : int;  (** tag–loop pairs lifted *)
  mutable rewritten_ops : int;  (** memory operations turned into copies *)
  mutable inserted_loads : int;
  mutable inserted_stores : int;
  mutable throttled_tags : int;
      (** promotable tags kept in memory by the pressure throttle *)
}

val zero_stats : unit -> stats

(** The §7 throttle: demote the least-referenced promotable tags of each
    loop whose estimated register pressure would exceed [budget], then
    recompute the lift sets.  Exposed for testing; [promote_func] calls it
    when [pressure_budget] is given. *)
val throttle :
  Func.t ->
  Rp_cfg.Loops.forest ->
  (Instr.label, loop_info) Hashtbl.t ->
  budget:int ->
  stats ->
  unit

(** Promote one function.  The CFG must be normalized
    ({!Rp_cfg.Normalize.run}): every loop needs a landing pad and dedicated
    exits.

    @param always_store store every lifted tag at loop exits even when no
      store to it was rewritten (the paper's literal scheme); default
      [false] stores only tags actually stored in the promoted region.
    @param pressure_budget enable the §7 throttle with the given register
      budget. *)
val promote_func :
  ?always_store:bool -> ?pressure_budget:int -> Func.t -> stats

(** Normalize and promote every function of a program; returns aggregate
    statistics. *)
val promote_program :
  ?always_store:bool -> ?pressure_budget:int -> Program.t -> stats
