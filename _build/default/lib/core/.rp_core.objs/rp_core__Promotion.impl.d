lib/core/promotion.ml: Array Block Float Func Hashtbl Instr List Option Program Rp_cfg Rp_ir Rp_opt Rp_support Tag Tagset
