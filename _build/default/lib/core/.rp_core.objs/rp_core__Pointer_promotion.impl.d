lib/core/pointer_promotion.ml: Block Func Hashtbl Instr List Option Program Rp_cfg Rp_ir Rp_support Tagset
