lib/core/pointer_promotion.mli: Func Program Rp_ir
