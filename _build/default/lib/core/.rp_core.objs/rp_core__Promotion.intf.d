lib/core/promotion.mli: Block Func Hashtbl Instr Program Rp_cfg Rp_ir Tag Tagset
