(** Recursive-descent parser for Mini-C.

    The grammar is the usual C expression grammar (precedence climbing) over
    the statement and declaration forms listed in {!Ast}, including struct
    definitions with C's declare-before-use discipline.  There is no
    preprocessor; unions, string literals, and [switch] are out of scope
    (see DESIGN.md §2). *)

type t = {
  toks : (Token.t * Srcloc.t) array;
  mutable pos : int;
  structs : (string, Ast.sdef) Hashtbl.t;
      (** struct definitions seen so far; C's declare-before-use rule lets
          the parser resolve [struct X] to a complete layout on the spot *)
}

let create toks = { toks; pos = 0; structs = Hashtbl.create 8 }

let peek p = fst p.toks.(p.pos)
let peek_loc p = snd p.toks.(p.pos)
let peek2 p =
  if p.pos + 1 < Array.length p.toks then fst p.toks.(p.pos + 1)
  else Token.EOF

let peek3 p =
  if p.pos + 2 < Array.length p.toks then fst p.toks.(p.pos + 2)
  else Token.EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let eat p tok =
  if peek p = tok then (advance p; true) else false

let expect p tok =
  if not (eat p tok) then
    Srcloc.error (peek_loc p) "expected '%s' but found '%s'"
      (Token.to_string tok)
      (Token.to_string (peek p))

let expect_ident p =
  match peek p with
  | Token.IDENT s ->
    advance p;
    s
  | t -> Srcloc.error (peek_loc p) "expected identifier, found '%s'" (Token.to_string t)

let is_type_start = function
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_VOID | Token.KW_CONST
  | Token.KW_STRUCT -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types and declarators                                               *)
(* ------------------------------------------------------------------ *)

(** [const? (int|float|void)] — the type specifier, without declarator. *)
let parse_type_spec p =
  let const = eat p Token.KW_CONST in
  let base =
    match peek p with
    | Token.KW_INT -> advance p; Ast.Tint
    | Token.KW_FLOAT -> advance p; Ast.Tflt
    | Token.KW_VOID -> advance p; Ast.Tvoid
    | Token.KW_STRUCT -> (
      advance p;
      let loc = peek_loc p in
      let name = expect_ident p in
      match Hashtbl.find_opt p.structs name with
      | Some sd -> Ast.Tstruct sd
      | None -> Srcloc.error loc "unknown struct '%s'" name)
    | t ->
      Srcloc.error (peek_loc p) "expected type specifier, found '%s'"
        (Token.to_string t)
  in
  (* 'int const' postfix placement *)
  let const = const || eat p Token.KW_CONST in
  (base, const)

let parse_stars p base =
  let ty = ref base in
  while eat p Token.STAR do
    ty := Ast.Tptr !ty
  done;
  !ty

(** Array dimensions after an identifier: [\[3\]\[4\]] applied outside-in. *)
let parse_dims p base =
  let rec dims () =
    if eat p Token.LBRACKET then begin
      let n =
        match peek p with
        | Token.INT n ->
          advance p;
          n
        | t ->
          Srcloc.error (peek_loc p) "expected array length, found '%s'"
            (Token.to_string t)
      in
      expect p Token.RBRACKET;
      let inner = dims () in
      Ast.Tarr (inner, n)
    end
    else base
  in
  dims ()

(** A declarator: stars, name, dimensions; or the function-pointer form
    ["( * name[dims...] )(param-types)"].  Returns (name, type, loc). *)
let rec parse_declarator p base =
  let ty = parse_stars p base in
  parse_declarator_tail p ty

(** The declarator after any leading stars have been consumed. *)
and parse_declarator_tail p ty =
  let loc = peek_loc p in
  if peek p = Token.LPAREN && peek2 p = Token.STAR then begin
    advance p;
    (* LPAREN *)
    expect p Token.STAR;
    let name = expect_ident p in
    (* dims inside the group apply around the pointer-to-function *)
    let hole_dims = collect_dims p in
    expect p Token.RPAREN;
    expect p Token.LPAREN;
    let ptys =
      if peek p = Token.RPAREN then []
      else if peek p = Token.KW_VOID && peek2 p = Token.RPAREN then begin
        advance p;
        []
      end
      else begin
        let rec more acc =
          let (b, _) = parse_type_spec p in
          let t = parse_stars p b in
          (* optional parameter name in the abstract declarator *)
          (match peek p with Token.IDENT _ -> advance p | _ -> ());
          if eat p Token.COMMA then more (t :: acc) else List.rev (t :: acc)
        in
        more []
      end
    in
    expect p Token.RPAREN;
    let fnty = Ast.Tfun (ty, ptys) in
    let inner = Ast.Tptr fnty in
    let ty = List.fold_right (fun n t -> Ast.Tarr (t, n)) hole_dims inner in
    (name, ty, loc)
  end
  else begin
    let name = expect_ident p in
    let ty = parse_dims p ty in
    (name, ty, loc)
  end

(** Raw dimension list [\[3\]\[4\]] -> [[3;4]]. *)
and collect_dims p =
  let rec go acc =
    if eat p Token.LBRACKET then begin
      let n =
        match peek p with
        | Token.INT n ->
          advance p;
          n
        | t ->
          Srcloc.error (peek_loc p) "expected array length, found '%s'"
            (Token.to_string t)
      in
      expect p Token.RBRACKET;
      go (n :: acc)
    end
    else List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk loc desc = { Ast.desc; eloc = loc }

let assign_op = function
  | Token.ASSIGN -> Some None
  | Token.PLUSEQ -> Some (Some Ast.Badd)
  | Token.MINUSEQ -> Some (Some Ast.Bsub)
  | Token.STAREQ -> Some (Some Ast.Bmul)
  | Token.SLASHEQ -> Some (Some Ast.Bdiv)
  | Token.PERCENTEQ -> Some (Some Ast.Brem)
  | Token.AMPEQ -> Some (Some Ast.Bband)
  | Token.PIPEEQ -> Some (Some Ast.Bbor)
  | Token.CARETEQ -> Some (Some Ast.Bbxor)
  | Token.LSHIFTEQ -> Some (Some Ast.Bshl)
  | Token.RSHIFTEQ -> Some (Some Ast.Bshr)
  | _ -> None

let rec parse_expr p = parse_assign p

and parse_assign p =
  let loc = peek_loc p in
  let lhs = parse_cond p in
  match assign_op (peek p) with
  | Some op ->
    advance p;
    let rhs = parse_assign p in
    mk loc (Ast.Eassign (op, lhs, rhs))
  | None -> lhs

and parse_cond p =
  let loc = peek_loc p in
  let c = parse_binary p 0 in
  if eat p Token.QUESTION then begin
    let t = parse_expr p in
    expect p Token.COLON;
    let e = parse_cond p in
    mk loc (Ast.Econd (c, t, e))
  end
  else c

(* Binary operators by precedence level, loosest first. *)
and binop_levels =
  [|
    [ (Token.PIPEPIPE, Ast.Blor) ];
    [ (Token.AMPAMP, Ast.Bland) ];
    [ (Token.PIPE, Ast.Bbor) ];
    [ (Token.CARET, Ast.Bbxor) ];
    [ (Token.AMP, Ast.Bband) ];
    [ (Token.EQEQ, Ast.Beq); (Token.NEQ, Ast.Bne) ];
    [ (Token.LT, Ast.Blt); (Token.LE, Ast.Ble); (Token.GT, Ast.Bgt);
      (Token.GE, Ast.Bge) ];
    [ (Token.LSHIFT, Ast.Bshl); (Token.RSHIFT, Ast.Bshr) ];
    [ (Token.PLUS, Ast.Badd); (Token.MINUS, Ast.Bsub) ];
    [ (Token.STAR, Ast.Bmul); (Token.SLASH, Ast.Bdiv);
      (Token.PERCENT, Ast.Brem) ];
  |]

and parse_binary p level =
  if level >= Array.length binop_levels then parse_unary p
  else begin
    let loc = peek_loc p in
    let lhs = ref (parse_binary p (level + 1)) in
    let continue = ref true in
    while !continue do
      match List.assoc_opt (peek p) binop_levels.(level) with
      | Some op ->
        advance p;
        let rhs = parse_binary p (level + 1) in
        lhs := mk loc (Ast.Ebinop (op, !lhs, rhs))
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary p =
  let loc = peek_loc p in
  match peek p with
  | Token.MINUS ->
    advance p;
    mk loc (Ast.Eunop (Ast.Uneg, parse_unary p))
  | Token.BANG ->
    advance p;
    mk loc (Ast.Eunop (Ast.Unot, parse_unary p))
  | Token.TILDE ->
    advance p;
    mk loc (Ast.Eunop (Ast.Ubnot, parse_unary p))
  | Token.STAR ->
    advance p;
    mk loc (Ast.Ederef (parse_unary p))
  | Token.AMP ->
    advance p;
    mk loc (Ast.Eaddr (parse_unary p))
  | Token.PLUSPLUS ->
    advance p;
    mk loc (Ast.Eincdec (true, true, parse_unary p))
  | Token.MINUSMINUS ->
    advance p;
    mk loc (Ast.Eincdec (true, false, parse_unary p))
  | Token.PLUS ->
    advance p;
    parse_unary p
  | Token.LPAREN when is_type_start (peek2 p) ->
    (* cast *)
    advance p;
    let (base, _const) = parse_type_spec p in
    let ty = parse_stars p base in
    expect p Token.RPAREN;
    mk loc (Ast.Ecast (ty, parse_unary p))
  | _ -> parse_postfix p

and parse_postfix p =
  let loc = peek_loc p in
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    match peek p with
    | Token.LPAREN ->
      advance p;
      let args =
        if peek p = Token.RPAREN then []
        else begin
          let rec more acc =
            let a = parse_assign p in
            if eat p Token.COMMA then more (a :: acc) else List.rev (a :: acc)
          in
          more []
        end
      in
      expect p Token.RPAREN;
      e := mk loc (Ast.Ecall (!e, args))
    | Token.LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p Token.RBRACKET;
      e := mk loc (Ast.Eindex (!e, idx))
    | Token.DOT ->
      advance p;
      let f = expect_ident p in
      e := mk loc (Ast.Efield (!e, f, false))
    | Token.ARROW ->
      advance p;
      let f = expect_ident p in
      e := mk loc (Ast.Efield (!e, f, true))
    | Token.PLUSPLUS ->
      advance p;
      e := mk loc (Ast.Eincdec (false, true, !e))
    | Token.MINUSMINUS ->
      advance p;
      e := mk loc (Ast.Eincdec (false, false, !e))
    | _ -> continue := false
  done;
  !e

and parse_primary p =
  let loc = peek_loc p in
  match peek p with
  | Token.INT n ->
    advance p;
    mk loc (Ast.Eint n)
  | Token.FLOAT f ->
    advance p;
    mk loc (Ast.Eflt f)
  | Token.CHAR c ->
    advance p;
    mk loc (Ast.Eint c)
  | Token.IDENT s ->
    advance p;
    mk loc (Ast.Evar s)
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | t ->
    Srcloc.error loc "expected expression, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mks loc sdesc = { Ast.sdesc; sloc = loc }

let rec parse_stmt p =
  let loc = peek_loc p in
  match peek p with
  | Token.SEMI ->
    advance p;
    mks loc Ast.Sskip
  | Token.LBRACE ->
    advance p;
    let stmts = ref [] in
    while peek p <> Token.RBRACE && peek p <> Token.EOF do
      stmts := parse_stmt p :: !stmts
    done;
    expect p Token.RBRACE;
    mks loc (Ast.Sblock (List.rev !stmts))
  | Token.KW_IF ->
    advance p;
    expect p Token.LPAREN;
    let c = parse_expr p in
    expect p Token.RPAREN;
    let then_ = parse_stmt p in
    let else_ = if eat p Token.KW_ELSE then Some (parse_stmt p) else None in
    mks loc (Ast.Sif (c, then_, else_))
  | Token.KW_WHILE ->
    advance p;
    expect p Token.LPAREN;
    let c = parse_expr p in
    expect p Token.RPAREN;
    mks loc (Ast.Swhile (c, parse_stmt p))
  | Token.KW_DO ->
    advance p;
    let body = parse_stmt p in
    expect p Token.KW_WHILE;
    expect p Token.LPAREN;
    let c = parse_expr p in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    mks loc (Ast.Sdowhile (body, c))
  | Token.KW_FOR ->
    advance p;
    expect p Token.LPAREN;
    let init =
      if peek p = Token.SEMI then (advance p; None)
      else if is_type_start (peek p) then begin
        let d = parse_decl_stmt p in
        Some d
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        Some (mks loc (Ast.Sexpr e))
      end
    in
    let cond =
      if peek p = Token.SEMI then None else Some (parse_expr p)
    in
    expect p Token.SEMI;
    let step =
      if peek p = Token.RPAREN then None else Some (parse_expr p)
    in
    expect p Token.RPAREN;
    mks loc (Ast.Sfor (init, cond, step, parse_stmt p))
  | Token.KW_BREAK ->
    advance p;
    expect p Token.SEMI;
    mks loc Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance p;
    expect p Token.SEMI;
    mks loc Ast.Scontinue
  | Token.KW_RETURN ->
    advance p;
    let e = if peek p = Token.SEMI then None else Some (parse_expr p) in
    expect p Token.SEMI;
    mks loc (Ast.Sreturn e)
  | t when is_type_start t -> parse_decl_stmt p
  | _ ->
    let e = parse_expr p in
    expect p Token.SEMI;
    mks loc (Ast.Sexpr e)

(** [const? type declarator (= init)? (, declarator (= init)?)* ;] *)
and parse_decl_stmt p =
  let loc = peek_loc p in
  let decls = parse_decls p in
  mks loc (Ast.Sdecl decls)

and parse_decls p =
  let (base, const) = parse_type_spec p in
  let rec one acc =
    let (name, ty, dloc) = parse_declarator p base in
    let init =
      if eat p Token.ASSIGN then Some (parse_init p) else None
    in
    let d = { Ast.dname = name; dty = ty; dconst = const; dinit = init; dloc } in
    if eat p Token.COMMA then one (d :: acc) else List.rev (d :: acc)
  in
  let ds = one [] in
  expect p Token.SEMI;
  ds

and parse_init p =
  if eat p Token.LBRACE then begin
    let rec more acc =
      if peek p = Token.RBRACE then List.rev acc
      else begin
        let e = parse_assign p in
        if eat p Token.COMMA then more (e :: acc) else List.rev (e :: acc)
      end
    in
    let es = more [] in
    expect p Token.RBRACE;
    Ast.Ilist es
  end
  else Ast.Iexpr (parse_assign p)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(** [struct Name { type field; ... };] — registers the layout (offsets in
    declaration order) and returns the definition. *)
let parse_structdef p =
  expect p Token.KW_STRUCT;
  let loc = peek_loc p in
  let name = expect_ident p in
  if Hashtbl.mem p.structs name then
    Srcloc.error loc "redefinition of struct '%s'" name;
  (* register an incomplete placeholder so fields may hold [struct X *] *)
  let sd = { Ast.sname = name; sfields = []; ssize = 0 } in
  Hashtbl.replace p.structs name sd;
  expect p Token.LBRACE;
  let fields = ref [] in
  let offset = ref 0 in
  (* a field type is complete when its size does not depend on an
     unfinished definition (pointers to incomplete structs are fine) *)
  let rec complete = function
    | Ast.Tstruct d -> d.Ast.ssize > 0
    | Ast.Tarr (t, _) -> complete t
    | _ -> true
  in
  while peek p <> Token.RBRACE do
    let (fbase, _) = parse_type_spec p in
    (match fbase with
    | Ast.Tvoid -> Srcloc.error (peek_loc p) "void struct field"
    | _ -> ());
    let rec one () =
      let (fname, fty, floc) = parse_declarator p fbase in
      (match fty with
      | Ast.Tfun _ -> Srcloc.error floc "function struct field"
      | _ -> ());
      if not (complete fty) then
        Srcloc.error floc "field '%s' has incomplete type" fname;
      if List.exists (fun (n, _, _) -> n = fname) !fields then
        Srcloc.error floc "duplicate field '%s'" fname;
      fields := (fname, fty, !offset) :: !fields;
      offset := !offset + Ast.sizeof fty;
      if eat p Token.COMMA then one ()
    in
    one ();
    expect p Token.SEMI
  done;
  expect p Token.RBRACE;
  expect p Token.SEMI;
  if !offset = 0 then Srcloc.error loc "empty struct '%s'" name;
  sd.Ast.sfields <- List.rev !fields;
  sd.Ast.ssize <- !offset;
  Ast.Tstructdef sd

let parse_top p =
  if
    peek p = Token.KW_STRUCT
    && (match peek2 p with Token.IDENT _ -> true | _ -> false)
    && peek3 p = Token.LBRACE
  then parse_structdef p
  else begin
  let floc = peek_loc p in
  let (base, const) = parse_type_spec p in
  let ty = parse_stars p base in
  if peek p = Token.LPAREN && peek2 p = Token.STAR then begin
    (* global function-pointer declaration(s), e.g. "int ( *hook )(int);" *)
    let (name, dty, dloc) = parse_declarator_tail p ty in
    let init = if eat p Token.ASSIGN then Some (parse_init p) else None in
    let first = { Ast.dname = name; dty; dconst = const; dinit = init; dloc } in
    let rec more acc =
      if eat p Token.COMMA then begin
        let (n, t, l) = parse_declarator p base in
        let i = if eat p Token.ASSIGN then Some (parse_init p) else None in
        more ({ Ast.dname = n; dty = t; dconst = const; dinit = i; dloc = l } :: acc)
      end
      else List.rev acc
    in
    let rest = more [] in
    expect p Token.SEMI;
    Ast.Tglobal (first :: rest)
  end
  else begin
  let name = expect_ident p in
  if peek p = Token.LPAREN then begin
    (* function definition or prototype *)
    advance p;
    let params =
      if peek p = Token.RPAREN then []
      else if peek p = Token.KW_VOID && peek2 p = Token.RPAREN then begin
        advance p;
        []
      end
      else begin
        let parse_param () =
          let (pbase, _) = parse_type_spec p in
          let decay = function Ast.Tarr (t, _) -> Ast.Tptr t | t -> t in
          if peek p = Token.LPAREN && peek2 p = Token.STAR then begin
            let (pname, pty, _) = parse_declarator p pbase in
            (pname, decay pty)
          end
          else begin
            let pty = parse_stars p pbase in
            if peek p = Token.LPAREN && peek2 p = Token.STAR then begin
              (* fn-pointer param after leading stars — rare; delegate by
                 re-entering the declarator on the star-free remainder *)
              let (pname, pty', _) = parse_declarator p pty in
              (pname, pty')
            end
            else begin
              let pname = expect_ident p in
              (* array parameters decay to pointers:
                 f(int a[]), f(int a[3][4]) *)
              let pty =
                if peek p = Token.LBRACKET then begin
                  expect p Token.LBRACKET;
                  (match peek p with
                  | Token.INT _ -> advance p
                  | _ -> ());
                  expect p Token.RBRACKET;
                  let inner = parse_dims p pty in
                  Ast.Tptr inner
                end
                else pty
              in
              (pname, pty)
            end
          end
        in
        let rec more acc =
          let prm = parse_param () in
          if eat p Token.COMMA then more (prm :: acc)
          else List.rev (prm :: acc)
        in
        more []
      end
    in
    expect p Token.RPAREN;
    let body =
      if eat p Token.SEMI then None
      else begin
        if peek p <> Token.LBRACE then
          Srcloc.error (peek_loc p) "expected function body";
        Some (parse_stmt p)
      end
    in
    Ast.Tfunc { fname = name; fret = ty; fparams = params; fbody = body; floc }
  end
  else begin
    (* global declaration; we already consumed the first declarator's stars
       and name, so finish it by hand, then continue with the comma list *)
    let ty = parse_dims p ty in
    let init = if eat p Token.ASSIGN then Some (parse_init p) else None in
    let first =
      { Ast.dname = name; dty = ty; dconst = const; dinit = init; dloc = floc }
    in
    let rec more acc =
      if eat p Token.COMMA then begin
        let (n, t, l) = parse_declarator p base in
        let i = if eat p Token.ASSIGN then Some (parse_init p) else None in
        more ({ Ast.dname = n; dty = t; dconst = const; dinit = i; dloc = l } :: acc)
      end
      else List.rev acc
    in
    let rest = more [] in
    expect p Token.SEMI;
    Ast.Tglobal (first :: rest)
  end
  end
  end

(** Parse a complete translation unit. *)
let parse_program src =
  let p = create (Lexer.tokenize src) in
  let tops = ref [] in
  while peek p <> Token.EOF do
    tops := parse_top p :: !tops
  done;
  List.rev !tops
