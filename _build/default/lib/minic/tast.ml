(** Typed abstract syntax, as produced by {!Typecheck}.

    Differences from {!Ast}:
    - every name is resolved to a {!var} carrying its storage kind and an
      address-taken mark;
    - implicit conversions are explicit ({!conv});
    - pointer arithmetic is explicit and pre-scaled ([Tptradd]);
    - array indexing is normalized to pointer arithmetic, but the original
      base object remains recoverable for tag-set precision;
    - short-circuit operators are distinct nodes. *)

type kind =
  | Kglobal
  | Klocal of string  (** declared in the named function *)
  | Kparam of string * int  (** parameter [index] of the named function *)

type var = {
  vid : int;  (** unique across the program *)
  vname : string;
  vty : Ast.ty;
  vkind : kind;
  vconst : bool;
  mutable vaddr_taken : bool;
      (** set when [&v] occurs anywhere; array and function-pointer-table
          variables are memory objects regardless *)
}

let var_is_array v = match v.vty with Ast.Tarr _ -> true | _ -> false

(** Aggregates (arrays and structs) are memory objects regardless of
    whether their address is written explicitly. *)
let var_is_aggregate v =
  match v.vty with Ast.Tarr _ | Ast.Tstruct _ -> true | _ -> false

(** Does this variable necessarily live in memory (so it needs a tag)? *)
let var_in_memory v =
  match v.vkind with
  | Kglobal -> true
  | Klocal _ | Kparam _ -> v.vaddr_taken || var_is_aggregate v

type conv =
  | CI2F  (** int -> float *)
  | CF2I  (** float -> int, truncating *)
  | CBits  (** pointer/integer reinterpretation; a no-op at runtime *)

type expr = { edesc : edesc; ety : Ast.ty }

and edesc =
  | Tint_lit of int
  | Tflt_lit of float
  | Tload of lval  (** an lvalue read *)
  | Taddr of lval  (** & *)
  | Tfunref of string  (** function name used as a value *)
  | Tunop of Ast.unop * expr
  | Tbinop of Ast.binop * expr * expr
      (** both operands share the (non-pointer) type dictated by [ety] /
          comparison operand types *)
  | Tptradd of expr * expr * int
      (** pointer + index, scale in words: [p + i*scale] *)
  | Tptrdiff of expr * expr * int  (** (p - q) / scale *)
  | Tand of expr * expr  (** short-circuit && *)
  | Tor of expr * expr  (** short-circuit || *)
  | Tcond of expr * expr * expr
  | Tconv of conv * expr
  | Tassign of Ast.binop option * lval * expr
      (** compound ops keep the lvalue so it is evaluated exactly once *)
  | Tincdec of bool * bool * lval  (** (is_pre, is_inc, lvalue) *)
  | Tcall of callee * expr list

and callee = Cdirect of string | Cindirect of expr

and lval =
  | Lvar of var
  | Lmem of expr * Ast.ty * var option
      (** memory at [address expr]; payload: pointee type and, when the
          address provably derives from a specific array/scalar variable,
          that variable (for precise tag sets) *)

let lval_ty = function
  | Lvar v -> v.vty
  | Lmem (_, t, _) -> t

type stmt =
  | Sexpr of expr
  | Svardef of var * expr option
      (** local declaration; arrays get no initializer here (the element
          initializers are expanded into assignments by the checker) *)
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of stmt list
  | Sskip

(** Constant words for global initializers (the front end does not depend on
    the IR library, so it has its own constant type). *)
type cval = Wint of int | Wflt of float

type ginit = Gwords of cval list | Gzero

type fundef = {
  fname : string;
  fret : Ast.ty;
  fparams : var list;
  fbody : stmt;
  frecursive : bool;
      (** conservatively true when the function may (transitively) call
          itself, including through function pointers *)
  flocals : var list;  (** all locals declared anywhere in the body *)
}

type program = {
  pglobals : (var * ginit) list;
  pfuncs : fundef list;
  pfunc_sigs : (string * Ast.ty) list;
      (** every defined function's [Tfun] signature, for indirect calls *)
}
