lib/minic/srcloc.ml: Fmt
