lib/minic/token.ml: Char Printf
