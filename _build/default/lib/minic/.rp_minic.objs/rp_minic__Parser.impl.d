lib/minic/parser.ml: Array Ast Hashtbl Lexer List Srcloc Token
