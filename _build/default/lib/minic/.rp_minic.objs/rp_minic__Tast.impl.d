lib/minic/tast.ml: Ast
