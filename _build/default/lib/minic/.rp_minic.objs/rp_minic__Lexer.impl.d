lib/minic/lexer.ml: Array Char List Srcloc String Token
