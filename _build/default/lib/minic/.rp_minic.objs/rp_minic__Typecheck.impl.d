lib/minic/typecheck.ml: Ast Builtins Hashtbl List Option Parser Rp_support Srcloc Tast
