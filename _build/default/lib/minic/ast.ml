(** Untyped abstract syntax, as produced by the parser. *)

type ty =
  | Tint
  | Tflt
  | Tvoid
  | Tptr of ty
  | Tarr of ty * int  (** element type, length *)
  | Tfun of ty * ty list  (** return type, parameter types (via fn pointers) *)
  | Tstruct of sdef  (** fully resolved at parse time (decl-before-use) *)

and sdef = {
  sname : string;
  mutable sfields : (string * ty * int) list;
      (** name, type, word offset; filled in when the definition closes, so
          that [struct X *self] fields can reference the incomplete type *)
  mutable ssize : int;  (** total size in words; 0 while incomplete *)
}

(** Object size in words.  Every scalar (int, float, pointer) is one word;
    the interpreter's memory is word-addressed (see DESIGN.md §6). *)
let rec sizeof = function
  | Tint | Tflt | Tptr _ -> 1
  | Tarr (t, n) -> n * sizeof t
  | Tstruct sd -> sd.ssize
  | Tvoid | Tfun _ -> invalid_arg "sizeof: not an object type"

let field sd name =
  List.find_opt (fun (n, _, _) -> n = name) sd.sfields

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tflt -> Fmt.string ppf "float"
  | Tvoid -> Fmt.string ppf "void"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarr _ as t ->
    (* print dimensions outside-in, C-style: int[3][4] *)
    let rec split = function
      | Tarr (inner, n) ->
        let (base, dims) = split inner in
        (base, n :: dims)
      | base -> (base, [])
    in
    let (base, dims) = split t in
    Fmt.pf ppf "%a%a" pp_ty base
      Fmt.(list ~sep:(any "") (fun ppf n -> Fmt.pf ppf "[%d]" n))
      dims
  | Tfun (r, args) ->
    Fmt.pf ppf "%a(%a)" pp_ty r Fmt.(list ~sep:(any ", ") pp_ty) args
  | Tstruct sd -> Fmt.pf ppf "struct %s" sd.sname

type unop = Uneg | Unot | Ubnot

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Bshl | Bshr | Bband | Bbor | Bbxor
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bland | Blor  (** short-circuit; lowered to control flow *)

type expr = { desc : desc; eloc : Srcloc.t }

and desc =
  | Eint of int
  | Eflt of float
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of binop option * expr * expr
      (** [lhs op= rhs]; [None] is plain assignment *)
  | Eincdec of bool * bool * expr  (** (is_pre, is_inc, lvalue) *)
  | Ecall of expr * expr list
  | Eindex of expr * expr
  | Efield of expr * string * bool  (** (object-or-pointer, field, is_arrow) *)
  | Ederef of expr
  | Eaddr of expr
  | Econd of expr * expr * expr
  | Ecast of ty * expr

type stmt = { sdesc : sdesc; sloc : Srcloc.t }

and sdesc =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
      (** init (an expression or declaration statement), cond, step, body *)
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of stmt list
  | Sskip

and decl = {
  dname : string;
  dty : ty;
  dconst : bool;
  dinit : initializer_ option;
  dloc : Srcloc.t;
}

and initializer_ = Iexpr of expr | Ilist of expr list

type fundef = {
  fname : string;
  fret : ty;
  fparams : (string * ty) list;
  fbody : stmt option;  (** [None] for a prototype *)
  floc : Srcloc.t;
}

type top =
  | Tglobal of decl list
  | Tfunc of fundef
  | Tstructdef of sdef  (** kept for completeness; already registered *)

type program = top list
