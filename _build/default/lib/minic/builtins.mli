(** Built-in functions: known to the type checker, implemented natively by
    the interpreter, all with empty MOD/REF summaries (they take register
    arguments and touch no user-visible memory). *)

val signatures : (string * Ast.ty) list
val is_builtin : string -> bool
val signature : string -> Ast.ty option

(** Does the builtin allocate fresh heap memory ([malloc])? *)
val allocates : string -> bool
