(** Source positions and front-end error reporting. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let pp ppf { line; col } = Fmt.pf ppf "%d:%d" line col

exception Error of t * string
(** Raised by the lexer, parser, and type checker on malformed input. *)

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let to_string (loc, msg) = Fmt.str "%a: %s" pp loc msg
