(** Built-in functions known to the front end and implemented natively by the
    interpreter.  They take register arguments only and touch no user-visible
    memory, so their MOD/REF summaries are empty — exactly the property the
    paper's compiler gets from hand-written summaries for library calls. *)

open Ast

let signatures : (string * ty) list =
  [
    (* memory *)
    ("malloc", Tfun (Tptr Tint, [ Tint ]));  (* size in words *)
    ("free", Tfun (Tvoid, [ Tptr Tint ]));
    (* output: all output is folded into a running checksum as well, so that
       every compilation configuration can be verified to agree *)
    ("print_int", Tfun (Tvoid, [ Tint ]));
    ("print_float", Tfun (Tvoid, [ Tflt ]));
    ("print_char", Tfun (Tvoid, [ Tint ]));
    (* deterministic pseudo-random source (LCG inside the interpreter) *)
    ("rand", Tfun (Tint, []));
    ("srand", Tfun (Tvoid, [ Tint ]));
    (* math *)
    ("pow", Tfun (Tflt, [ Tflt; Tflt ]));
    ("sqrt", Tfun (Tflt, [ Tflt ]));
    ("sin", Tfun (Tflt, [ Tflt ]));
    ("cos", Tfun (Tflt, [ Tflt ]));
    ("exp", Tfun (Tflt, [ Tflt ]));
    ("log", Tfun (Tflt, [ Tflt ]));
    ("fabs", Tfun (Tflt, [ Tflt ]));
    ("abs", Tfun (Tint, [ Tint ]));
  ]

let is_builtin name = List.mem_assoc name signatures
let signature name = List.assoc_opt name signatures

(** [malloc]'s result points to fresh memory named by its call site; every
    other builtin returns a non-pointer. *)
let allocates name = name = "malloc"
