(** Tokens of Mini-C, the C subset accepted by the front end. *)

type t =
  (* literals and names *)
  | INT of int
  | FLOAT of float
  | CHAR of int  (** character literal, already an integer *)
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_CONST
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_DO
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  (* punctuation / operators *)
  | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
  | COMMA | SEMI | QUESTION | COLON | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LSHIFT | RSHIFT
  | LT | LE | GT | GE | EQEQ | NEQ
  | AMP | PIPE | CARET | TILDE | BANG
  | AMPAMP | PIPEPIPE
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | LSHIFTEQ | RSHIFTEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_table =
  [
    ("int", KW_INT); ("float", KW_FLOAT); ("double", KW_FLOAT);
    ("void", KW_VOID); ("const", KW_CONST); ("struct", KW_STRUCT);
    ("if", KW_IF);
    ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR); ("do", KW_DO);
    ("break", KW_BREAK); ("continue", KW_CONTINUE); ("return", KW_RETURN);
  ]

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | CHAR c -> Printf.sprintf "'%c'" (Char.chr (c land 0xff))
  | IDENT s -> s
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_VOID -> "void"
  | KW_CONST -> "const" | KW_STRUCT -> "struct"
  | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_FOR -> "for" | KW_DO -> "do"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue" | KW_RETURN -> "return"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACKET -> "[" | RBRACKET -> "]"
  | LBRACE -> "{" | RBRACE -> "}" | COMMA -> "," | SEMI -> ";"
  | QUESTION -> "?" | COLON -> ":" | DOT -> "." | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | AMPAMP -> "&&" | PIPEPIPE -> "||" | ASSIGN -> "="
  | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/="
  | PERCENTEQ -> "%=" | AMPEQ -> "&=" | PIPEEQ -> "|=" | CARETEQ -> "^="
  | LSHIFTEQ -> "<<=" | RSHIFTEQ -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"
