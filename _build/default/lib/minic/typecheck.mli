(** Type checking and name resolution: {!Ast.program} -> {!Tast.program}.

    Marks address-taken variables, makes conversions explicit, pre-scales
    pointer arithmetic, resolves struct field offsets, expands local array
    initializers, and conservatively detects possibly-recursive functions
    (including recursion through function pointers).
    @raise Srcloc.Error on ill-typed programs. *)

val check_program : Ast.program -> Tast.program

(** Parse + check in one step. *)
val check_source : string -> Tast.program
