(** Hand-written recursive-descent parser for Mini-C (see DESIGN.md §2 for
    the accepted subset).  Struct definitions follow C's declare-before-use
    rule and are resolved to complete layouts during parsing.
    @raise Srcloc.Error on syntax errors. *)

val parse_program : string -> Ast.program
