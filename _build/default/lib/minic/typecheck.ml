(** Type checking and name resolution: {!Ast.program} -> {!Tast.program}.

    Besides ordinary checking this pass
    - marks address-taken variables ([&v] anywhere in the program);
    - normalizes array indexing to pre-scaled pointer arithmetic while
      keeping the base object for tag-set precision;
    - makes all implicit conversions explicit;
    - expands local array initializers into element assignments;
    - detects possibly-recursive functions (including recursion through
      function pointers), which the IR generator needs when deciding whether
      a local's tag may stand for several activations. *)

open Tast

type env = {
  scopes : (string, var) Hashtbl.t list ref;  (** innermost first *)
  globals : (string, var) Hashtbl.t;
  funcs : (string, Ast.ty) Hashtbl.t;  (** name -> Tfun signature *)
  mutable cur_fn : string;
  mutable cur_ret : Ast.ty;
  mutable loop_depth : int;
  mutable locals_acc : var list;  (** locals of the current function *)
  vids : Rp_support.Idgen.t;
}

let err = Srcloc.error

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

let push_scope env = env.scopes := Hashtbl.create 8 :: !(env.scopes)
let pop_scope env =
  match !(env.scopes) with
  | _ :: rest -> env.scopes := rest
  | [] -> assert false

let lookup env name =
  let rec go = function
    | [] -> Hashtbl.find_opt env.globals name
    | s :: rest -> (
      match Hashtbl.find_opt s name with Some v -> Some v | None -> go rest)
  in
  go !(env.scopes)

let define_local env loc (v : var) =
  match !(env.scopes) with
  | s :: _ ->
    if Hashtbl.mem s v.vname then
      err loc "redeclaration of '%s'" v.vname;
    Hashtbl.replace s v.vname v;
    env.locals_acc <- v :: env.locals_acc
  | [] -> assert false

let fresh_var env ~name ~ty ~kind ~const =
  {
    vid = Rp_support.Idgen.fresh env.vids;
    vname = name;
    vty = ty;
    vkind = kind;
    vconst = const;
    vaddr_taken = false;
  }

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec ty_equal a b =
  match (a, b) with
  | Ast.Tint, Ast.Tint | Ast.Tflt, Ast.Tflt | Ast.Tvoid, Ast.Tvoid -> true
  | Ast.Tptr a, Ast.Tptr b -> ty_equal a b
  | Ast.Tarr (a, n), Ast.Tarr (b, m) -> n = m && ty_equal a b
  | Ast.Tfun (r1, a1), Ast.Tfun (r2, a2) ->
    ty_equal r1 r2
    && List.length a1 = List.length a2
    && List.for_all2 ty_equal a1 a2
  | Ast.Tstruct a, Ast.Tstruct b ->
    (* nominal equality; never compare recursive layouts structurally *)
    a.Ast.sname = b.Ast.sname
  | _ -> false

let is_ptr = function Ast.Tptr _ -> true | _ -> false
let is_numeric = function Ast.Tint | Ast.Tflt -> true | _ -> false

let mk ety edesc = { edesc; ety }

(** Decay an lvalue into an rvalue expression: arrays become pointers to
    their first element, everything else becomes a load. *)
let decay_lval lv =
  match lval_ty lv with
  | Ast.Tarr (elem, _) -> mk (Ast.Tptr elem) (Taddr lv)
  | Ast.Tfun _ -> assert false
  | t -> mk t (Tload lv)

(** Best-effort identification of the memory object an address expression
    points into.  Drives the front end's tag-set precision: a direct array
    reference gets the singleton tag set, a pointer-variable-based access
    gets the conservative universe. *)
let rec base_var (e : expr) =
  match e.edesc with
  | Taddr (Lvar v) -> Some v
  | Taddr (Lmem (a, _, _)) -> base_var a
  | Tptradd (a, _, _) -> base_var a
  | Tconv (CBits, a) -> base_var a
  | _ -> None

(** Convert [e] to type [want], inserting explicit conversions.  [loc] is
    used for error reporting. *)
let coerce loc (e : expr) want =
  let have = e.ety in
  if ty_equal have want then e
  else
    match (have, want) with
    | Ast.Tint, Ast.Tflt -> mk want (Tconv (CI2F, e))
    | Ast.Tflt, Ast.Tint -> mk want (Tconv (CF2I, e))
    | Ast.Tptr _, Ast.Tptr _ -> mk want (Tconv (CBits, e))
    | Ast.Tint, Ast.Tptr _ -> mk want (Tconv (CBits, e))
    | Ast.Tptr _, Ast.Tint -> mk want (Tconv (CBits, e))
    | _ ->
      err loc "cannot convert %a to %a" Ast.pp_ty have Ast.pp_ty want

(** Promote two numeric operands to their common type. *)
let promote loc a b =
  match (a.ety, b.ety) with
  | Ast.Tint, Ast.Tint -> (a, b, Ast.Tint)
  | Ast.Tflt, Ast.Tflt -> (a, b, Ast.Tflt)
  | Ast.Tint, Ast.Tflt -> (mk Ast.Tflt (Tconv (CI2F, a)), b, Ast.Tflt)
  | Ast.Tflt, Ast.Tint -> (a, mk Ast.Tflt (Tconv (CI2F, b)), Ast.Tflt)
  | ta, tb ->
    err loc "invalid operand types %a and %a" Ast.pp_ty ta Ast.pp_ty tb

(** An expression used as a branch condition: normalize to int-valued. *)
let boolify loc (e : expr) =
  match e.ety with
  | Ast.Tint -> e
  | Ast.Tflt -> mk Ast.Tint (Tbinop (Ast.Bne, e, mk Ast.Tflt (Tflt_lit 0.)))
  | Ast.Tptr _ -> mk Ast.Tint (Tbinop (Ast.Bne, e, mk e.ety (Tint_lit 0)))
  | t -> err loc "%a cannot be used as a condition" Ast.pp_ty t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec check_expr env (e : Ast.expr) : expr =
  let loc = e.eloc in
  match e.desc with
  | Ast.Eint n -> mk Ast.Tint (Tint_lit n)
  | Ast.Eflt f -> mk Ast.Tflt (Tflt_lit f)
  | Ast.Evar name -> (
    match lookup env name with
    | Some v -> decay_lval (Lvar v)
    | None -> (
      match Hashtbl.find_opt env.funcs name with
      | Some sig_ -> mk (Ast.Tptr sig_) (Tfunref name)
      | None -> (
        match Builtins.signature name with
        | Some sig_ -> mk (Ast.Tptr sig_) (Tfunref name)
        | None -> err loc "undeclared identifier '%s'" name)))
  | Ast.Eunop (op, a) -> (
    let a = check_expr env a in
    match op with
    | Ast.Uneg ->
      if not (is_numeric a.ety) then err loc "unary - needs a numeric operand";
      mk a.ety (Tunop (Ast.Uneg, a))
    | Ast.Unot ->
      let a = boolify loc a in
      mk Ast.Tint (Tunop (Ast.Unot, a))
    | Ast.Ubnot ->
      if a.ety <> Ast.Tint then err loc "~ needs an int operand";
      mk Ast.Tint (Tunop (Ast.Ubnot, a)))
  | Ast.Ebinop (op, a, b) -> check_binop env loc op a b
  | Ast.Eassign (op, lhs, rhs) ->
    let lv = check_lval env lhs in
    let lty = lval_ty lv in
    (match lty with
    | Ast.Tarr _ -> err loc "cannot assign to an array"
    | Ast.Tstruct _ -> err loc "whole-struct assignment is not supported"
    | Ast.Tvoid | Ast.Tfun _ -> err loc "invalid assignment target"
    | _ -> ());
    let rhs = check_expr env rhs in
    (match op with
    | None ->
      let rhs = coerce loc rhs lty in
      mk lty (Tassign (None, lv, rhs))
    | Some bop -> (
      match lty with
      | Ast.Tptr pointee when bop = Ast.Badd || bop = Ast.Bsub ->
        (* p += i / p -= i: keep the index, scaled at IR generation *)
        let rhs = coerce loc rhs Ast.Tint in
        if rhs.ety <> Ast.Tint then err loc "pointer step must be int";
        mk lty (Tassign (Some bop, lv, rhs))
        |> fun e ->
        ignore pointee;
        e
      | Ast.Tint | Ast.Tflt ->
        let rhs = coerce loc rhs lty in
        (match bop with
        | Ast.Brem | Ast.Bshl | Ast.Bshr | Ast.Bband | Ast.Bbor | Ast.Bbxor
          when lty <> Ast.Tint ->
          err loc "integer operator on float target"
        | _ -> ());
        mk lty (Tassign (Some bop, lv, rhs))
      | _ -> err loc "invalid compound assignment"))
  | Ast.Eincdec (pre, inc, lhs) ->
    let lv = check_lval env lhs in
    (match lval_ty lv with
    | Ast.Tint | Ast.Tflt | Ast.Tptr _ -> ()
    | _ -> err loc "invalid ++/-- target");
    mk (lval_ty lv) (Tincdec (pre, inc, lv))
  | Ast.Ecall (f, args) -> check_call env loc f args
  | Ast.Eindex (base, idx) -> decay_lval (check_index env loc base idx)
  | Ast.Efield (obj, fname, arrow) ->
    decay_lval (check_field env loc obj fname arrow)
  | Ast.Ederef a -> decay_lval (check_deref env loc a)
  | Ast.Eaddr a -> (
    match a.desc with
    | Ast.Evar name
      when lookup env name = None
           && (Hashtbl.mem env.funcs name || Builtins.is_builtin name) ->
      (* &f on a function name *)
      check_expr env a
    | _ ->
      let lv = check_lval env a in
      (match lv with
      | Lvar v -> v.vaddr_taken <- true
      | Lmem _ -> ());
      mk (Ast.Tptr (lval_ty lv)) (Taddr lv))
  | Ast.Econd (c, t, e2) ->
    let c = boolify loc (check_expr env c) in
    let t = check_expr env t in
    let e2 = check_expr env e2 in
    let (t, e2, ty) =
      if ty_equal t.ety e2.ety then (t, e2, t.ety)
      else if is_numeric t.ety && is_numeric e2.ety then promote loc t e2
      else if is_ptr t.ety && e2.ety = Ast.Tint then
        (t, coerce loc e2 t.ety, t.ety)
      else if is_ptr e2.ety && t.ety = Ast.Tint then
        (coerce loc t e2.ety, e2, e2.ety)
      else err loc "incompatible branches of ?:"
    in
    mk ty (Tcond (c, t, e2))
  | Ast.Ecast (ty, a) -> (
    let a = check_expr env a in
    match (a.ety, ty) with
    | t1, t2 when ty_equal t1 t2 -> a
    | Ast.Tint, Ast.Tflt -> mk ty (Tconv (CI2F, a))
    | Ast.Tflt, Ast.Tint -> mk ty (Tconv (CF2I, a))
    | (Ast.Tint | Ast.Tptr _), Ast.Tptr _ -> mk ty (Tconv (CBits, a))
    | Ast.Tptr _, Ast.Tint -> mk ty (Tconv (CBits, a))
    | _ -> err loc "invalid cast from %a to %a" Ast.pp_ty a.ety Ast.pp_ty ty)

and check_binop env loc op a b =
  let a = check_expr env a in
  let b = check_expr env b in
  match op with
  | Ast.Bland ->
    mk Ast.Tint (Tand (boolify loc a, boolify loc b))
  | Ast.Blor -> mk Ast.Tint (Tor (boolify loc a, boolify loc b))
  | Ast.Badd -> (
    match (a.ety, b.ety) with
    | Ast.Tptr t, Ast.Tint -> mk a.ety (Tptradd (a, b, Ast.sizeof t))
    | Ast.Tint, Ast.Tptr t -> mk b.ety (Tptradd (b, a, Ast.sizeof t))
    | _ ->
      let (a, b, ty) = promote loc a b in
      mk ty (Tbinop (Ast.Badd, a, b)))
  | Ast.Bsub -> (
    match (a.ety, b.ety) with
    | Ast.Tptr t, Ast.Tint ->
      let negb = mk Ast.Tint (Tunop (Ast.Uneg, b)) in
      mk a.ety (Tptradd (a, negb, Ast.sizeof t))
    | Ast.Tptr t1, Ast.Tptr t2 when ty_equal t1 t2 ->
      mk Ast.Tint (Tptrdiff (a, b, Ast.sizeof t1))
    | _ ->
      let (a, b, ty) = promote loc a b in
      mk ty (Tbinop (Ast.Bsub, a, b)))
  | Ast.Bmul | Ast.Bdiv ->
    let (a, b, ty) = promote loc a b in
    mk ty (Tbinop (op, a, b))
  | Ast.Brem | Ast.Bshl | Ast.Bshr | Ast.Bband | Ast.Bbor | Ast.Bbxor ->
    if a.ety <> Ast.Tint || b.ety <> Ast.Tint then
      err loc "integer operator applied to non-int operands";
    mk Ast.Tint (Tbinop (op, a, b))
  | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge | Ast.Beq | Ast.Bne -> (
    match (a.ety, b.ety) with
    | Ast.Tptr _, Ast.Tptr _ -> mk Ast.Tint (Tbinop (op, a, b))
    | Ast.Tptr _, Ast.Tint -> mk Ast.Tint (Tbinop (op, a, coerce loc b a.ety))
    | Ast.Tint, Ast.Tptr _ -> mk Ast.Tint (Tbinop (op, coerce loc a b.ety, b))
    | _ ->
      let (a, b, _) = promote loc a b in
      mk Ast.Tint (Tbinop (op, a, b)))

and check_index env loc base idx =
  let base = check_expr env base in
  let idx = coerce loc (check_expr env idx) Ast.Tint in
  match base.ety with
  | Ast.Tptr elem when elem <> Ast.Tvoid ->
    let addr = mk base.ety (Tptradd (base, idx, Ast.sizeof elem)) in
    Lmem (addr, elem, base_var addr)
  | t -> err loc "cannot index a value of type %a" Ast.pp_ty t

and check_deref env loc a =
  let a = check_expr env a in
  match a.ety with
  | Ast.Tptr (Ast.Tfun _) ->
    err loc "cannot dereference a function pointer outside a call"
  | Ast.Tptr t -> Lmem (a, t, base_var a)
  | t -> err loc "cannot dereference a value of type %a" Ast.pp_ty t

and check_field env loc obj fname arrow : lval =
  let base =
    if arrow then begin
      let e = check_expr env obj in
      match e.ety with
      | Ast.Tptr (Ast.Tstruct _) -> e
      | t -> err loc "'->' applied to a value of type %a" Ast.pp_ty t
    end
    else begin
      let lv = check_lval env obj in
      match lval_ty lv with
      | Ast.Tstruct sd -> (
        match lv with
        | Lvar _ -> mk (Ast.Tptr (Ast.Tstruct sd)) (Taddr lv)
        | Lmem (addr, _, _) ->
          (* the address already points at the struct *)
          { addr with ety = Ast.Tptr (Ast.Tstruct sd) })
      | t -> err loc "'.' applied to a value of type %a" Ast.pp_ty t
    end
  in
  let sd =
    match base.ety with
    | Ast.Tptr (Ast.Tstruct sd) -> sd
    | _ -> assert false
  in
  match Ast.field sd fname with
  | None -> err loc "struct %s has no field '%s'" sd.Ast.sname fname
  | Some (_, fty, off) ->
    let addr =
      mk base.ety (Tptradd (base, mk Ast.Tint (Tint_lit off), 1))
    in
    Lmem (addr, fty, base_var addr)

and check_lval env (e : Ast.expr) : lval =
  let loc = e.eloc in
  match e.desc with
  | Ast.Evar name -> (
    match lookup env name with
    | Some v -> Lvar v
    | None -> err loc "undeclared identifier '%s'" name)
  | Ast.Eindex (base, idx) -> check_index env loc base idx
  | Ast.Efield (obj, fname, arrow) -> check_field env loc obj fname arrow
  | Ast.Ederef a -> check_deref env loc a
  | _ -> err loc "expression is not an lvalue"

and check_call env loc (f : Ast.expr) args =
  let check_args sig_args sig_ret mkcall =
    if List.length args <> List.length sig_args then
      err loc "wrong number of arguments (expected %d, got %d)"
        (List.length sig_args) (List.length args);
    let targs =
      List.map2
        (fun a want ->
          let a = check_expr env a in
          match (a.ety, want) with
          | Ast.Tptr _, Ast.Tptr _ -> coerce loc a want
          | _ -> coerce loc a want)
        args sig_args
    in
    mk sig_ret (mkcall targs)
  in
  match f.desc with
  | Ast.Evar name when lookup env name = None -> (
    (* direct call to a function or builtin *)
    match Hashtbl.find_opt env.funcs name with
    | Some (Ast.Tfun (ret, sig_args)) ->
      check_args sig_args ret (fun ta -> Tcall (Cdirect name, ta))
    | Some _ -> assert false
    | None -> (
      match Builtins.signature name with
      | Some (Ast.Tfun (ret, sig_args)) ->
        check_args sig_args ret (fun ta -> Tcall (Cdirect name, ta))
      | Some _ -> assert false
      | None -> err loc "call to undeclared function '%s'" name))
  | Ast.Ederef inner -> check_call env loc inner args
  | _ -> (
    (* call through a function-pointer expression *)
    let fe = check_expr env f in
    match fe.ety with
    | Ast.Tptr (Ast.Tfun (ret, sig_args)) ->
      check_args sig_args ret (fun ta -> Tcall (Cindirect fe, ta))
    | t -> err loc "called object has type %a, not a function" Ast.pp_ty t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env (s : Ast.stmt) : stmt =
  let loc = s.sloc in
  match s.sdesc with
  | Ast.Sskip -> Sskip
  | Ast.Sexpr e -> Sexpr (check_expr env e)
  | Ast.Sblock stmts ->
    push_scope env;
    let out = List.map (check_stmt env) stmts in
    pop_scope env;
    Sblock out
  | Ast.Sdecl ds -> Sblock (List.concat_map (check_local_decl env) ds)
  | Ast.Sif (c, t, e) ->
    let c = boolify loc (check_expr env c) in
    Sif (c, check_stmt env t, Option.map (check_stmt env) e)
  | Ast.Swhile (c, body) ->
    let c = boolify loc (check_expr env c) in
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    Swhile (c, body)
  | Ast.Sdowhile (body, c) ->
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    let c = boolify loc (check_expr env c) in
    Sdowhile (body, c)
  | Ast.Sfor (init, c, step, body) ->
    push_scope env;
    let init = Option.map (check_stmt env) init in
    let c = Option.map (fun e -> boolify loc (check_expr env e)) c in
    let step = Option.map (check_expr env) step in
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env;
    Sfor (init, c, step, body)
  | Ast.Sbreak ->
    if env.loop_depth = 0 then err loc "break outside a loop";
    Sbreak
  | Ast.Scontinue ->
    if env.loop_depth = 0 then err loc "continue outside a loop";
    Scontinue
  | Ast.Sreturn e -> (
    match (e, env.cur_ret) with
    | None, Ast.Tvoid -> Sreturn None
    | None, _ -> err loc "non-void function must return a value"
    | Some _, Ast.Tvoid -> err loc "void function cannot return a value"
    | Some e, ret ->
      let e = coerce loc (check_expr env e) ret in
      Sreturn (Some e))

and check_local_decl env (d : Ast.decl) : stmt list =
  let loc = d.dloc in
  (match d.dty with
  | Ast.Tvoid -> err loc "variable '%s' has type void" d.dname
  | _ -> ());
  let v =
    fresh_var env ~name:d.dname ~ty:d.dty ~kind:(Klocal env.cur_fn)
      ~const:d.dconst
  in
  define_local env loc v;
  match (d.dty, d.dinit) with
  | _, None -> [ Svardef (v, None) ]
  | Ast.Tarr (elem, n), Some (Ast.Ilist es) ->
    if List.length es > n then err loc "too many initializers for '%s'" d.dname;
    let assigns =
      List.mapi
        (fun i e ->
          let e = coerce loc (check_expr env e) elem in
          let base = decay_lval (Lvar v) in
          let addr =
            mk base.ety (Tptradd (base, mk Ast.Tint (Tint_lit i), Ast.sizeof elem))
          in
          Sexpr (mk elem (Tassign (None, Lmem (addr, elem, Some v), e))))
        es
    in
    Svardef (v, None) :: assigns
  | Ast.Tarr _, Some (Ast.Iexpr _) ->
    err loc "array initializer must be a brace list"
  | _, Some (Ast.Ilist _) ->
    err loc "brace initializer on a scalar"
  | ty, Some (Ast.Iexpr e) ->
    let e = coerce loc (check_expr env e) ty in
    [ Svardef (v, Some e) ]

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

(** Constant-expression evaluator for global initializers. *)
let rec eval_const (e : Ast.expr) : cval =
  let loc = e.eloc in
  match e.desc with
  | Ast.Eint n -> Wint n
  | Ast.Eflt f -> Wflt f
  | Ast.Eunop (Ast.Uneg, a) -> (
    match eval_const a with
    | Wint n -> Wint (-n)
    | Wflt f -> Wflt (-.f))
  | Ast.Ebinop (op, a, b) -> (
    let a = eval_const a and b = eval_const b in
    match (op, a, b) with
    | Ast.Badd, Wint x, Wint y -> Wint (x + y)
    | Ast.Bsub, Wint x, Wint y -> Wint (x - y)
    | Ast.Bmul, Wint x, Wint y -> Wint (x * y)
    | Ast.Bdiv, Wint x, Wint y when y <> 0 -> Wint (x / y)
    | Ast.Badd, Wflt x, Wflt y -> Wflt (x +. y)
    | Ast.Bsub, Wflt x, Wflt y -> Wflt (x -. y)
    | Ast.Bmul, Wflt x, Wflt y -> Wflt (x *. y)
    | Ast.Bdiv, Wflt x, Wflt y -> Wflt (x /. y)
    | _ -> err loc "unsupported constant expression")
  | Ast.Ecast (Ast.Tint, a) -> (
    match eval_const a with Wint n -> Wint n | Wflt f -> Wint (int_of_float f))
  | Ast.Ecast (Ast.Tflt, a) -> (
    match eval_const a with Wint n -> Wflt (float_of_int n) | Wflt f -> Wflt f)
  | _ -> err loc "global initializer must be a constant expression"

let const_to_ty loc (c : cval) (ty : Ast.ty) : cval =
  match (c, ty) with
  | Wint _, Ast.Tint | Wflt _, Ast.Tflt -> c
  | Wint n, Ast.Tflt -> Wflt (float_of_int n)
  | Wflt f, Ast.Tint -> Wint (int_of_float f)
  | Wint 0, Ast.Tptr _ -> Wint 0
  | _ -> err loc "initializer has the wrong type"

let check_global env (d : Ast.decl) : var * ginit =
  let loc = d.dloc in
  (match d.dty with
  | Ast.Tvoid -> err loc "variable '%s' has type void" d.dname
  | _ -> ());
  if Hashtbl.mem env.globals d.dname then
    err loc "redeclaration of global '%s'" d.dname;
  if Hashtbl.mem env.funcs d.dname || Builtins.is_builtin d.dname then
    err loc "'%s' is already a function" d.dname;
  let v =
    fresh_var env ~name:d.dname ~ty:d.dty ~kind:Kglobal ~const:d.dconst
  in
  Hashtbl.replace env.globals d.dname v;
  (match (d.dty, d.dinit) with
  | Ast.Tstruct _, Some _ | Ast.Tarr (Ast.Tstruct _, _), Some _ ->
    err loc "struct globals are zero-initialized only"
  | _ -> ());
  let init =
    match (d.dty, d.dinit) with
    | _, None -> Gzero
    | Ast.Tarr (elem, n), Some (Ast.Ilist es) ->
      if List.length es > n then
        err loc "too many initializers for '%s'" d.dname;
      let words =
        List.map (fun e -> const_to_ty loc (eval_const e) elem) es
      in
      let pad = n - List.length words in
      let zero = match elem with Ast.Tflt -> Wflt 0. | _ -> Wint 0 in
      Gwords (words @ List.init pad (fun _ -> zero))
    | Ast.Tarr _, Some (Ast.Iexpr _) ->
      err loc "array initializer must be a brace list"
    | _, Some (Ast.Ilist _) -> err loc "brace initializer on a scalar"
    | ty, Some (Ast.Iexpr e) ->
      Gwords [ const_to_ty loc (eval_const e) ty ]
  in
  (v, init)

(* ------------------------------------------------------------------ *)
(* Recursion detection                                                 *)
(* ------------------------------------------------------------------ *)

(** Call-graph edges computed conservatively over the typed AST: direct
    calls, plus — for any function containing an indirect call — edges to
    every function whose address is taken anywhere in the program. *)
let compute_recursive (funcs : (string * stmt) list) : (string, bool) Hashtbl.t
    =
  let addr_taken = Hashtbl.create 16 in
  let direct = Hashtbl.create 16 in
  let has_indirect = Hashtbl.create 16 in
  let rec walk_expr fn (e : expr) =
    match e.edesc with
    | Tint_lit _ | Tflt_lit _ -> ()
    | Tfunref g -> Hashtbl.replace addr_taken g ()
    | Tload lv | Taddr lv -> walk_lval fn lv
    | Tunop (_, a) | Tconv (_, a) -> walk_expr fn a
    | Tbinop (_, a, b)
    | Tptradd (a, b, _)
    | Tptrdiff (a, b, _)
    | Tand (a, b)
    | Tor (a, b) ->
      walk_expr fn a;
      walk_expr fn b
    | Tcond (a, b, c) ->
      walk_expr fn a;
      walk_expr fn b;
      walk_expr fn c
    | Tassign (_, lv, e) ->
      walk_lval fn lv;
      walk_expr fn e
    | Tincdec (_, _, lv) -> walk_lval fn lv
    | Tcall (Cdirect g, args) ->
      Hashtbl.replace direct (fn, g) ();
      List.iter (walk_expr fn) args
    | Tcall (Cindirect f, args) ->
      Hashtbl.replace has_indirect fn ();
      walk_expr fn f;
      List.iter (walk_expr fn) args
  and walk_lval fn = function
    | Lvar _ -> ()
    | Lmem (a, _, _) -> walk_expr fn a
  in
  let rec walk_stmt fn = function
    | Sexpr e -> walk_expr fn e
    | Svardef (_, e) -> Option.iter (walk_expr fn) e
    | Sif (c, t, e) ->
      walk_expr fn c;
      walk_stmt fn t;
      Option.iter (walk_stmt fn) e
    | Swhile (c, b) ->
      walk_expr fn c;
      walk_stmt fn b
    | Sdowhile (b, c) ->
      walk_stmt fn b;
      walk_expr fn c
    | Sfor (i, c, s, b) ->
      Option.iter (walk_stmt fn) i;
      Option.iter (walk_expr fn) c;
      Option.iter (walk_expr fn) s;
      walk_stmt fn b
    | Sreturn e -> Option.iter (walk_expr fn) e
    | Sblock ss -> List.iter (walk_stmt fn) ss
    | Sbreak | Scontinue | Sskip -> ()
  in
  List.iter (fun (fn, body) -> walk_stmt fn body) funcs;
  let names = List.map fst funcs in
  (* successor function *)
  let succs fn =
    let ds =
      List.filter_map
        (fun g -> if Hashtbl.mem direct (fn, g) then Some g else None)
        names
    in
    if Hashtbl.mem has_indirect fn then
      ds @ List.filter (fun g -> Hashtbl.mem addr_taken g) names
    else ds
  in
  (* reachability: does fn reach itself? (tiny graphs; DFS per function) *)
  let result = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      let seen = Hashtbl.create 16 in
      let found = ref false in
      let rec dfs g =
        if not !found then
          List.iter
            (fun s ->
              if s = fn then found := true
              else if not (Hashtbl.mem seen s) then begin
                Hashtbl.replace seen s ();
                dfs s
              end)
            (succs g)
      in
      dfs fn;
      Hashtbl.replace result fn !found)
    names;
  result

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check_program (prog : Ast.program) : program =
  let env =
    {
      scopes = ref [];
      globals = Hashtbl.create 32;
      funcs = Hashtbl.create 32;
      cur_fn = "";
      cur_ret = Ast.Tvoid;
      loop_depth = 0;
      locals_acc = [];
      vids = Rp_support.Idgen.create ();
    }
  in
  (* pass 1: collect function signatures *)
  List.iter
    (function
      | Ast.Tfunc f ->
        let sig_ = Ast.Tfun (f.fret, List.map snd f.fparams) in
        if Builtins.is_builtin f.fname then
          err f.floc "cannot redefine builtin '%s'" f.fname;
        (match Hashtbl.find_opt env.funcs f.fname with
        | Some old when not (ty_equal old sig_) ->
          err f.floc "conflicting declarations for '%s'" f.fname
        | _ -> ());
        Hashtbl.replace env.funcs f.fname sig_
      | Ast.Tglobal _ | Ast.Tstructdef _ -> ())
    prog;
  (* pass 2: globals in order, then function bodies *)
  let globals = ref [] in
  List.iter
    (function
      | Ast.Tglobal ds ->
        List.iter (fun d -> globals := check_global env d :: !globals) ds
      | Ast.Tfunc _ | Ast.Tstructdef _ -> ())
    prog;
  let checked = ref [] in
  List.iter
    (function
      | Ast.Tglobal _ | Ast.Tstructdef _ -> ()
      | Ast.Tfunc f when f.fbody = None -> ()
      | Ast.Tfunc f ->
        (match f.fret with
        | Ast.Tstruct _ ->
          err f.floc "struct return values must go through pointers"
        | _ -> ());
        let body = Option.get f.fbody in
        env.cur_fn <- f.fname;
        env.cur_ret <- f.fret;
        env.locals_acc <- [];
        push_scope env;
        let params =
          List.mapi
            (fun i (name, ty) ->
              (match ty with
              | Ast.Tarr _ -> err f.floc "array parameter did not decay"
              | Ast.Tstruct _ ->
                err f.floc "struct parameters must be passed by pointer"
              | Ast.Tvoid -> err f.floc "void parameter"
              | _ -> ());
              let v =
                fresh_var env ~name ~ty ~kind:(Kparam (f.fname, i))
                  ~const:false
              in
              (match !(env.scopes) with
              | s :: _ ->
                if Hashtbl.mem s name then
                  err f.floc "duplicate parameter '%s'" name;
                Hashtbl.replace s name v
              | [] -> assert false);
              v)
            f.fparams
        in
        let tbody = check_stmt env body in
        pop_scope env;
        checked :=
          (f.fname, f.fret, params, tbody, List.rev env.locals_acc)
          :: !checked)
    prog;
  let checked = List.rev !checked in
  let rec_tbl =
    compute_recursive (List.map (fun (n, _, _, b, _) -> (n, b)) checked)
  in
  let funcs =
    List.map
      (fun (fname, fret, fparams, fbody, flocals) ->
        {
          fname;
          fret;
          fparams;
          fbody;
          frecursive =
            (try Hashtbl.find rec_tbl fname with Not_found -> false);
          flocals;
        })
      checked
  in
  if not (List.exists (fun f -> f.fname = "main") funcs) then
    failwith "program has no main function";
  {
    pglobals = List.rev !globals;
    pfuncs = funcs;
    pfunc_sigs =
      List.map (fun f -> (f.fname, Ast.Tfun (f.fret, List.map (fun v -> v.vty) f.fparams))) funcs;
  }

(** Convenience: parse + check in one step. *)
let check_source src = check_program (Parser.parse_program src)
