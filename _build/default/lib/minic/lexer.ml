(** Hand-written lexer for Mini-C.

    Supports line ([//]) and block ([/* */]) comments, decimal and hex
    integers, floating literals (with optional exponent), and character
    literals with the usual escapes. *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let loc lx = { Srcloc.line = lx.line; col = lx.pos - lx.bol + 1 }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
    while peek lx <> None && peek lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
    let start = loc lx in
    advance lx;
    advance lx;
    let rec close () =
      match peek lx with
      | None -> Srcloc.error start "unterminated block comment"
      | Some '*' when peek2 lx = Some '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        close ()
    in
    close ();
    skip_ws lx
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  let l = loc lx in
  if peek lx = Some '0' && (peek2 lx = Some 'x' || peek2 lx = Some 'X') then begin
    advance lx;
    advance lx;
    while (match peek lx with Some c -> is_hex c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    (Token.INT (int_of_string s), l)
  end
  else begin
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let is_float = ref false in
    (match (peek lx, peek2 lx) with
    | Some '.', Some c when is_digit c ->
      is_float := true;
      advance lx;
      while (match peek lx with Some c -> is_digit c | None -> false) do
        advance lx
      done
    | Some '.', (None | Some _) when peek2 lx <> Some '.' ->
      (* "1." style literal; don't consume "1..." (not valid anyway) *)
      is_float := true;
      advance lx
    | _ -> ());
    (match peek lx with
    | Some ('e' | 'E') ->
      let save = lx.pos in
      advance lx;
      (match peek lx with
      | Some ('+' | '-') -> advance lx
      | _ -> ());
      if match peek lx with Some c -> is_digit c | None -> false then begin
        is_float := true;
        while (match peek lx with Some c -> is_digit c | None -> false) do
          advance lx
        done
      end
      else lx.pos <- save
    | _ -> ());
    let s = String.sub lx.src start (lx.pos - start) in
    if !is_float then (Token.FLOAT (float_of_string s), l)
    else (Token.INT (int_of_string s), l)
  end

let lex_char lx =
  let l = loc lx in
  advance lx;
  (* opening quote *)
  let c =
    match peek lx with
    | None -> Srcloc.error l "unterminated character literal"
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' -> advance lx; 10
      | Some 't' -> advance lx; 9
      | Some 'r' -> advance lx; 13
      | Some '0' -> advance lx; 0
      | Some '\\' -> advance lx; 92
      | Some '\'' -> advance lx; 39
      | _ -> Srcloc.error l "bad escape in character literal")
    | Some c ->
      advance lx;
      Char.code c
  in
  (match peek lx with
  | Some '\'' -> advance lx
  | _ -> Srcloc.error l "unterminated character literal");
  (Token.CHAR c, l)

let lex_ident lx =
  let start = lx.pos in
  let l = loc lx in
  while (match peek lx with Some c -> is_alnum c | None -> false) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match List.assoc_opt s Token.keyword_table with
  | Some kw -> (kw, l)
  | None -> (Token.IDENT s, l)

(** Produce the next token together with its source location. *)
let next lx : Token.t * Srcloc.t =
  skip_ws lx;
  let l = loc lx in
  let adv1 tok = advance lx; (tok, l) in
  let adv2 tok = advance lx; advance lx; (tok, l) in
  match peek lx with
  | None -> (Token.EOF, l)
  | Some c when is_digit c -> lex_number lx
  | Some c when is_alpha c -> lex_ident lx
  | Some '\'' -> lex_char lx
  | Some '(' -> adv1 Token.LPAREN
  | Some ')' -> adv1 Token.RPAREN
  | Some '[' -> adv1 Token.LBRACKET
  | Some ']' -> adv1 Token.RBRACKET
  | Some '{' -> adv1 Token.LBRACE
  | Some '}' -> adv1 Token.RBRACE
  | Some ',' -> adv1 Token.COMMA
  | Some ';' -> adv1 Token.SEMI
  | Some '?' -> adv1 Token.QUESTION
  | Some ':' -> adv1 Token.COLON
  | Some '~' -> adv1 Token.TILDE
  | Some '+' -> (
    match peek2 lx with
    | Some '+' -> adv2 Token.PLUSPLUS
    | Some '=' -> adv2 Token.PLUSEQ
    | _ -> adv1 Token.PLUS)
  | Some '-' -> (
    match peek2 lx with
    | Some '-' -> adv2 Token.MINUSMINUS
    | Some '=' -> adv2 Token.MINUSEQ
    | Some '>' -> adv2 Token.ARROW
    | _ -> adv1 Token.MINUS)
  | Some '*' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.STAREQ
    | _ -> adv1 Token.STAR)
  | Some '/' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.SLASHEQ
    | _ -> adv1 Token.SLASH)
  | Some '%' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.PERCENTEQ
    | _ -> adv1 Token.PERCENT)
  | Some '<' -> (
    match peek2 lx with
    | Some '<' ->
      advance lx;
      advance lx;
      if peek lx = Some '=' then (advance lx; (Token.LSHIFTEQ, l))
      else (Token.LSHIFT, l)
    | Some '=' -> adv2 Token.LE
    | _ -> adv1 Token.LT)
  | Some '>' -> (
    match peek2 lx with
    | Some '>' ->
      advance lx;
      advance lx;
      if peek lx = Some '=' then (advance lx; (Token.RSHIFTEQ, l))
      else (Token.RSHIFT, l)
    | Some '=' -> adv2 Token.GE
    | _ -> adv1 Token.GT)
  | Some '=' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.EQEQ
    | _ -> adv1 Token.ASSIGN)
  | Some '!' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.NEQ
    | _ -> adv1 Token.BANG)
  | Some '&' -> (
    match peek2 lx with
    | Some '&' -> adv2 Token.AMPAMP
    | Some '=' -> adv2 Token.AMPEQ
    | _ -> adv1 Token.AMP)
  | Some '|' -> (
    match peek2 lx with
    | Some '|' -> adv2 Token.PIPEPIPE
    | Some '=' -> adv2 Token.PIPEEQ
    | _ -> adv1 Token.PIPE)
  | Some '^' -> (
    match peek2 lx with
    | Some '=' -> adv2 Token.CARETEQ
    | _ -> adv1 Token.CARET)
  | Some '.' when (match peek2 lx with Some c -> is_digit c | None -> false)
    ->
    lex_number lx
  | Some '.' -> adv1 Token.DOT
  | Some c -> Srcloc.error l "unexpected character %C" c

(** Tokenize the whole input eagerly.  The parser works over this array. *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let (tok, l) = next lx in
    if tok = Token.EOF then List.rev ((tok, l) :: acc)
    else go ((tok, l) :: acc)
  in
  Array.of_list (go [])
