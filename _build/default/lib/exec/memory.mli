(** Word-addressed object memory with full error detection.

    Every object — a global, one activation of an addressed local or spill
    slot, or one heap allocation — occupies a distinct base; an address is
    a (base, offset) pair.  Each base remembers the {!Rp_ir.Tag.t} naming
    it, enabling the interpreter's dynamic tag-set verification. *)

type t

val create : unit -> t

(** Allocate a fresh object; cells start undefined. *)
val alloc : t -> tag:Rp_ir.Tag.t -> size:int -> int

(** The tag that named an (alive or dead) base.
    @raise Value.Runtime_error on an unknown base. *)
val obj_tag : t -> int -> Rp_ir.Tag.t

(** Release an object (heap [free] or frame pop); later accesses trap. *)
val release : t -> int -> unit

(** Checked load/store: traps on dead objects and out-of-bounds offsets. *)
val load : t -> int -> int -> Value.t

val store : t -> int -> int -> Value.t -> unit

(** Initialize a prefix from constants (global initializers). *)
val init_words : t -> int -> Rp_ir.Instr.const list -> unit

val zero_fill : t -> int -> unit
