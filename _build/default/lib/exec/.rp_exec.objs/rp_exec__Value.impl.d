lib/exec/value.ml: Fmt Rp_ir
