lib/exec/memory.mli: Rp_ir Value
