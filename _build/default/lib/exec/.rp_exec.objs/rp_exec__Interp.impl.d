lib/exec/interp.ml: Array Block Buffer Char Float Func Hashtbl Instr List Memory Printf Program Rp_ir Rp_minic String Tag Tagset Value
