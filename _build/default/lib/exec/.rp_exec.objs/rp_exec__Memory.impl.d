lib/exec/memory.ml: Array Hashtbl List Rp_ir Rp_support Value
