lib/exec/interp.mli: Program Rp_ir Value
