(** Word-addressed object memory.

    Every memory object — a global, one activation of an address-taken
    local or spill slot, or one heap allocation — occupies a distinct
    {e base}.  An address is a (base, offset) pair, so out-of-bounds,
    cross-object, use-after-free, and dangling-frame accesses are detected
    rather than silently absorbed.  Each base remembers the {!Rp_ir.Tag.t}
    that names it, which lets the interpreter dynamically verify that the
    static tag sets over-approximate the accesses that actually happen. *)

type obj = {
  cells : Value.t array;
  tag : Rp_ir.Tag.t;
  mutable live : bool;
}

type t = {
  objects : (int, obj) Hashtbl.t;
  bases : Rp_support.Idgen.t;
}

let create () =
  { objects = Hashtbl.create 256; bases = Rp_support.Idgen.create ~start:1 () }

(** Allocate a fresh object of [size] words named by [tag]. *)
let alloc mem ~(tag : Rp_ir.Tag.t) ~size : int =
  let b = Rp_support.Idgen.fresh mem.bases in
  Hashtbl.replace mem.objects b
    { cells = Array.make (max size 0) Value.Vundef; tag; live = true };
  b

let find mem b =
  match Hashtbl.find_opt mem.objects b with
  | Some o -> o
  | None -> Value.error "access to invalid base %d" b

let obj_tag mem b = (find mem b).tag

(** Release an object (heap [free], or frame pop).  Later accesses fail. *)
let release mem b =
  let o = find mem b in
  o.live <- false

let check mem b off =
  let o = find mem b in
  if not o.live then
    Value.error "access to dead object '%s'" o.tag.Rp_ir.Tag.name;
  if off < 0 || off >= Array.length o.cells then
    Value.error "out-of-bounds access to '%s' (offset %d, size %d)"
      o.tag.Rp_ir.Tag.name off (Array.length o.cells);
  o

let load mem b off = (check mem b off).cells.(off)

let store mem b off v = (check mem b off).cells.(off) <- v

(** Initialize an object's prefix from constants (globals). *)
let init_words mem b words =
  let o = find mem b in
  List.iteri (fun i c -> o.cells.(i) <- Value.of_const c) words

let zero_fill mem b =
  let o = find mem b in
  Array.fill o.cells 0 (Array.length o.cells) (Value.Vint 0)
