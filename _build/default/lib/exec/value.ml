(** Runtime values of the IL interpreter.

    The machine is word-oriented and dynamically checked: using an undefined
    value in arithmetic, mixing types under an operator, or comparing
    pointers into different objects raises {!Runtime_error} instead of
    producing garbage.  The null pointer is the integer 0. *)

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type t =
  | Vint of int
  | Vflt of float
  | Vptr of int * int  (** (base, word offset) *)
  | Vfun of string  (** function pointer *)
  | Vundef  (** uninitialized; may be copied/stored but not computed with *)

let pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vflt f -> Fmt.pf ppf "%g" f
  | Vptr (b, o) -> Fmt.pf ppf "<%d:+%d>" b o
  | Vfun f -> Fmt.pf ppf "@%s" f
  | Vundef -> Fmt.string ppf "undef"

let as_int = function
  | Vint n -> n
  | Vundef -> error "use of an undefined value as an integer"
  | v -> error "expected an integer, got %a" pp v

let as_flt = function
  | Vflt f -> f
  | Vundef -> error "use of an undefined value as a float"
  | v -> error "expected a float, got %a" pp v

let truthy = function
  | Vint n -> n <> 0
  | Vptr _ -> true
  | Vundef -> error "branch on an undefined value"
  | v -> error "branch on a non-integer value %a" pp v

let of_bool b = Vint (if b then 1 else 0)

let of_const = function
  | Rp_ir.Instr.Cint n -> Vint n
  | Rp_ir.Instr.Cflt f -> Vflt f

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let unop (op : Rp_ir.Instr.unop) v =
  match op with
  | Rp_ir.Instr.Neg -> Vint (-as_int v)
  | Rp_ir.Instr.Fneg -> Vflt (-.as_flt v)
  | Rp_ir.Instr.Lnot -> of_bool (not (truthy v))
  | Rp_ir.Instr.Bnot -> Vint (lnot (as_int v))
  | Rp_ir.Instr.I2f -> Vflt (float_of_int (as_int v))
  | Rp_ir.Instr.F2i -> Vint (int_of_float (as_flt v))

let ptr_eq a b =
  match (a, b) with
  | Vptr (b1, o1), Vptr (b2, o2) -> b1 = b2 && o1 = o2
  | Vptr _, Vint 0 | Vint 0, Vptr _ -> false
  | Vfun f, Vfun g -> f = g
  | Vfun _, Vint 0 | Vint 0, Vfun _ -> false
  | _ -> error "invalid pointer comparison %a == %a" pp a pp b

let ptr_cmp name cmp a b =
  match (a, b) with
  | Vptr (b1, o1), Vptr (b2, o2) when b1 = b2 -> of_bool (cmp o1 o2)
  | Vptr _, Vptr _ -> error "%s on pointers into different objects" name
  | _ -> error "invalid pointer comparison under %s" name

let binop (op : Rp_ir.Instr.binop) a b =
  let module I = Rp_ir.Instr in
  match op with
  | I.Add -> (
    match (a, b) with
    | Vptr (ba, oa), Vint n -> Vptr (ba, oa + n)
    | Vint n, Vptr (bb, ob) -> Vptr (bb, ob + n)
    | _ -> Vint (as_int a + as_int b))
  | I.Sub -> (
    match (a, b) with
    | Vptr (ba, oa), Vint n -> Vptr (ba, oa - n)
    | Vptr (ba, oa), Vptr (bb, ob) ->
      if ba = bb then Vint (oa - ob)
      else error "subtraction of pointers into different objects"
    | _ -> Vint (as_int a - as_int b))
  | I.Mul -> Vint (as_int a * as_int b)
  | I.Div ->
    let d = as_int b in
    if d = 0 then error "integer division by zero" else Vint (as_int a / d)
  | I.Rem ->
    let d = as_int b in
    if d = 0 then error "integer remainder by zero" else Vint (as_int a mod d)
  | I.Shl -> Vint (as_int a lsl as_int b)
  | I.Shr -> Vint (as_int a asr as_int b)
  | I.Band -> Vint (as_int a land as_int b)
  | I.Bor -> Vint (as_int a lor as_int b)
  | I.Bxor -> Vint (as_int a lxor as_int b)
  | I.Lt -> (
    match (a, b) with
    | Vptr _, _ | _, Vptr _ -> ptr_cmp "<" ( < ) a b
    | _ -> of_bool (as_int a < as_int b))
  | I.Le -> (
    match (a, b) with
    | Vptr _, _ | _, Vptr _ -> ptr_cmp "<=" ( <= ) a b
    | _ -> of_bool (as_int a <= as_int b))
  | I.Gt -> (
    match (a, b) with
    | Vptr _, _ | _, Vptr _ -> ptr_cmp ">" ( > ) a b
    | _ -> of_bool (as_int a > as_int b))
  | I.Ge -> (
    match (a, b) with
    | Vptr _, _ | _, Vptr _ -> ptr_cmp ">=" ( >= ) a b
    | _ -> of_bool (as_int a >= as_int b))
  | I.Eq -> (
    match (a, b) with
    | (Vptr _ | Vfun _), _ | _, (Vptr _ | Vfun _) -> of_bool (ptr_eq a b)
    | _ -> of_bool (as_int a = as_int b))
  | I.Ne -> (
    match (a, b) with
    | (Vptr _ | Vfun _), _ | _, (Vptr _ | Vfun _) ->
      of_bool (not (ptr_eq a b))
    | _ -> of_bool (as_int a <> as_int b))
  | I.Fadd -> Vflt (as_flt a +. as_flt b)
  | I.Fsub -> Vflt (as_flt a -. as_flt b)
  | I.Fmul -> Vflt (as_flt a *. as_flt b)
  | I.Fdiv -> Vflt (as_flt a /. as_flt b)
  | I.Flt -> of_bool (as_flt a < as_flt b)
  | I.Fle -> of_bool (as_flt a <= as_flt b)
  | I.Fgt -> of_bool (as_flt a > as_flt b)
  | I.Fge -> of_bool (as_flt a >= as_flt b)
  | I.Feq -> of_bool (as_flt a = as_flt b)
  | I.Fne -> of_bool (as_flt a <> as_flt b)
