(** Dominator computation: Lengauer–Tarjan (primary) and an independent
    iterative solver used by the test-suite to cross-check it. *)

open Rp_ir

type t
(** Dominator information for one function: immediate dominators, dominator
    tree (children/depths), and reachability from the entry. *)

(** Compute dominators with Lengauer–Tarjan (simple path-compression
    variant, O(E log V)). *)
val compute : Func.t -> t

(** Compute dominators with the Cooper–Harvey–Kennedy iterative scheme;
    same results, independent code path. *)
val compute_iterative : Func.t -> t

(** Immediate dominator; [None] for the entry (and unreachable blocks). *)
val idom : t -> Instr.label -> Instr.label option

(** Depth in the dominator tree (entry = 0; 0 for unreachable blocks). *)
val depth : t -> Instr.label -> int

val is_reachable : t -> Instr.label -> bool
val dom_children : t -> Instr.label -> Instr.label list

(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)
val dominates : t -> Instr.label -> Instr.label -> bool

val strictly_dominates : t -> Instr.label -> Instr.label -> bool
val pp : Format.formatter -> t -> unit
