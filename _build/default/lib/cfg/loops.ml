(** Natural-loop detection and the loop-nesting forest.

    A back edge is an edge [u -> h] where [h] dominates [u]; the natural loop
    of the back edge is [h] plus every block that can reach [u] without
    passing through [h].  Loops sharing a header are merged.  The nesting
    forest orders loops by block-set containment; [parent] is the innermost
    enclosing loop, matching the paper's equation (4) use of
    "parent-in-loop-tree(l)". *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

type loop = {
  header : Instr.label;
  mutable blocks : SS.t;  (** all blocks of the loop, inner loops included *)
  mutable parent : loop option;
  mutable children : loop list;
  mutable depth : int;  (** 1 for outermost loops *)
}

type forest = {
  loops : loop list;  (** all loops, outermost-first within each nest *)
  by_header : (Instr.label, loop) Hashtbl.t;
  innermost : (Instr.label, loop) Hashtbl.t;
      (** block -> innermost loop containing it *)
}

let is_outermost l = l.parent = None

(** All loops that contain block [b], innermost first. *)
let loops_of forest b =
  match Hashtbl.find_opt forest.innermost b with
  | None -> []
  | Some l ->
    let rec up l = l :: (match l.parent with Some p -> up p | None -> []) in
    up l

let mem_block l b = SS.mem b l.blocks

(** Compute the loop forest of [f] using dominator information [dom]. *)
let analyze (f : Func.t) (dom : Dominators.t) : forest =
  let preds = Func.preds f in
  (* collect back edges, grouped by header *)
  let back_edges = Hashtbl.create 16 in
  Func.iter_blocks
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if
            Dominators.is_reachable dom b.Block.label
            && Dominators.dominates dom s b.Block.label
          then
            Hashtbl.replace back_edges s
              (b.Block.label
              :: Option.value ~default:[] (Hashtbl.find_opt back_edges s)))
        (Func.succs f b))
    f;
  (* natural loop per header: header + reverse-reachable from latches *)
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] in
  let headers = List.sort compare headers in
  let loops =
    List.map
      (fun h ->
        let latches = Hashtbl.find back_edges h in
        let blocks = ref (SS.singleton h) in
        let rec pull l =
          (* unreachable predecessors have edges into the loop but are not
             dominated by the header; they are not part of it *)
          if (not (SS.mem l !blocks)) && Dominators.is_reachable dom l then begin
            blocks := SS.add l !blocks;
            List.iter pull (Hashtbl.find preds l)
          end
        in
        List.iter pull latches;
        { header = h; blocks = !blocks; parent = None; children = []; depth = 0 })
      headers
  in
  (* nesting: parent = smallest strictly containing loop *)
  let sorted =
    List.sort (fun a b -> compare (SS.cardinal a.blocks) (SS.cardinal b.blocks)) loops
  in
  List.iteri
    (fun i l ->
      let rec find j =
        if j >= List.length sorted then None
        else
          let cand = List.nth sorted j in
          if cand != l && SS.mem l.header cand.blocks && SS.subset l.blocks cand.blocks
          then Some cand
          else find (j + 1)
      in
      match find (i + 1) with
      | Some p ->
        l.parent <- Some p;
        p.children <- l :: p.children
      | None -> ())
    sorted;
  let rec set_depth d l =
    l.depth <- d;
    List.iter (set_depth (d + 1)) l.children
  in
  List.iter (fun l -> if is_outermost l then set_depth 1 l) loops;
  (* innermost map: smallest loop containing each block *)
  let innermost = Hashtbl.create 64 in
  List.iter
    (fun l ->
      SS.iter
        (fun b ->
          match Hashtbl.find_opt innermost b with
          | Some prev when SS.cardinal prev.blocks <= SS.cardinal l.blocks -> ()
          | _ -> Hashtbl.replace innermost b l)
        l.blocks)
    loops;
  let by_header = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace by_header l.header l) loops;
  { loops; by_header; innermost }

(* ------------------------------------------------------------------ *)
(* Landing pads and exits                                              *)
(* ------------------------------------------------------------------ *)

(** The loop's landing pad: the unique predecessor of the header outside the
    loop, provided it has the header as its only successor.  [None] when the
    CFG has not been normalized. *)
let preheader (f : Func.t) (l : loop) : Instr.label option =
  let preds = Func.preds f in
  let outside =
    List.filter (fun p -> not (mem_block l p)) (Hashtbl.find preds l.header)
  in
  match outside with
  | [ p ] -> (
    match (Func.block f p).Block.term with
    | Instr.Jump _ -> Some p
    | _ -> None)
  | _ -> None

(** Blocks outside the loop that are targets of loop-leaving edges. *)
let exit_targets (f : Func.t) (l : loop) : Instr.label list =
  let out = ref SS.empty in
  SS.iter
    (fun b ->
      List.iter
        (fun s -> if not (mem_block l s) then out := SS.add s !out)
        (Func.succs f (Func.block f b)))
    l.blocks;
  SS.elements !out

(** Exit targets are dedicated when every predecessor lies inside the loop. *)
let exits_dedicated (f : Func.t) (l : loop) : bool =
  let preds = Func.preds f in
  List.for_all
    (fun e -> List.for_all (fun p -> mem_block l p) (Hashtbl.find preds e))
    (exit_targets f l)

let pp_loop ppf l =
  Fmt.pf ppf "loop@%s depth=%d blocks={%a}" l.header l.depth
    Fmt.(list ~sep:sp string)
    (SS.elements l.blocks)

let pp ppf forest =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_loop) forest.loops
