(** Dominator computation.

    The primary algorithm is Lengauer–Tarjan (the paper's step 3 cites it
    directly: "The compiler computes dominator information to identify loop
    nests using an algorithm due to Lengauer and Tarjan"), in the simple
    path-compression variant — O(E log V), effectively linear on compiler
    CFGs.  An independent iterative solver (Cooper–Harvey–Kennedy style) is
    exported for the test suite to cross-check the two. *)

open Rp_ir

type t = {
  idom : (Instr.label, Instr.label) Hashtbl.t;
      (** immediate dominator of every reachable non-entry block *)
  depth : (Instr.label, int) Hashtbl.t;  (** depth in the dominator tree *)
  children : (Instr.label, Instr.label list) Hashtbl.t;
  entry : Instr.label;
  reachable : (Instr.label, unit) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Lengauer–Tarjan                                                     *)
(* ------------------------------------------------------------------ *)

let lengauer_tarjan (f : Func.t) : (Instr.label, Instr.label) Hashtbl.t =
  (* DFS numbering *)
  let dfnum = Hashtbl.create 64 in
  let vertex = ref [||] in
  let parent = Hashtbl.create 64 in
  let verts = ref [] in
  let n = ref 0 in
  let rec dfs p l =
    if not (Hashtbl.mem dfnum l) then begin
      Hashtbl.replace dfnum l !n;
      (match p with Some p -> Hashtbl.replace parent l p | None -> ());
      verts := l :: !verts;
      incr n;
      List.iter (dfs (Some l)) (Func.succs f (Func.block f l))
    end
  in
  dfs None f.Func.entry;
  vertex := Array.of_list (List.rev !verts);
  let nv = !n in
  let num l = Hashtbl.find dfnum l in
  let preds = Func.preds f in
  (* arrays indexed by dfnum *)
  let semi = Array.init nv (fun i -> i) in
  let idom = Array.make nv (-1) in
  let ancestor = Array.make nv (-1) in
  let best = Array.init nv (fun i -> i) in
  (* link-eval with path compression *)
  let rec compress v =
    let a = ancestor.(v) in
    if ancestor.(a) >= 0 then begin
      compress a;
      if semi.(best.(a)) < semi.(best.(v)) then best.(v) <- best.(a);
      ancestor.(v) <- ancestor.(a)
    end
  in
  let eval v =
    if ancestor.(v) < 0 then v
    else begin
      compress v;
      best.(v)
    end
  in
  let link p w = ancestor.(w) <- p in
  let bucket = Array.make nv [] in
  (* pass in decreasing dfnum *)
  for w = nv - 1 downto 1 do
    let wl = !vertex.(w) in
    let p = num (Hashtbl.find parent wl) in
    List.iter
      (fun ul ->
        match Hashtbl.find_opt dfnum ul with
        | None -> () (* unreachable predecessor *)
        | Some u ->
          let u' = eval u in
          if semi.(u') < semi.(w) then semi.(w) <- semi.(u'))
      (Hashtbl.find preds wl);
    bucket.(semi.(w)) <- w :: bucket.(semi.(w));
    link p w;
    List.iter
      (fun v ->
        let u = eval v in
        idom.(v) <- (if semi.(u) < semi.(v) then u else p))
      bucket.(p);
    bucket.(p) <- []
  done;
  (* final pass in increasing dfnum *)
  for w = 1 to nv - 1 do
    if idom.(w) <> semi.(w) then idom.(w) <- idom.(idom.(w))
  done;
  let out = Hashtbl.create 64 in
  for w = 1 to nv - 1 do
    Hashtbl.replace out !vertex.(w) !vertex.(idom.(w))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Iterative dataflow variant (for cross-checking)                     *)
(* ------------------------------------------------------------------ *)

let iterative (f : Func.t) : (Instr.label, Instr.label) Hashtbl.t =
  let order = Func.rpo f in
  let index = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.replace index l i) order;
  let arr = Array.of_list order in
  let nv = Array.length arr in
  let preds = Func.preds f in
  let idom = Array.make nv (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to nv - 1 do
      let ps =
        List.filter_map
          (fun p -> Hashtbl.find_opt index p)
          (Hashtbl.find preds arr.(i))
      in
      let processed = List.filter (fun p -> idom.(p) >= 0) ps in
      match processed with
      | [] -> ()
      | first :: rest ->
        let ni = List.fold_left intersect first rest in
        if idom.(i) <> ni then begin
          idom.(i) <- ni;
          changed := true
        end
    done
  done;
  let out = Hashtbl.create 64 in
  for i = 1 to nv - 1 do
    if idom.(i) >= 0 then Hashtbl.replace out arr.(i) arr.(idom.(i))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let build_from_idom (f : Func.t) idom : t =
  let depth = Hashtbl.create 64 in
  let children = Hashtbl.create 64 in
  let reachable = Hashtbl.create 64 in
  Hashtbl.iter
    (fun l p ->
      Hashtbl.replace children p (l :: (Option.value ~default:[] (Hashtbl.find_opt children p))))
    idom;
  (* depths via DFS from entry *)
  let rec set_depth l d =
    Hashtbl.replace depth l d;
    Hashtbl.replace reachable l ();
    List.iter
      (fun c -> set_depth c (d + 1))
      (Option.value ~default:[] (Hashtbl.find_opt children l))
  in
  set_depth f.Func.entry 0;
  { idom; depth; children; entry = f.Func.entry; reachable }

(** Compute dominators with Lengauer–Tarjan. *)
let compute (f : Func.t) : t = build_from_idom f (lengauer_tarjan f)

(** Compute dominators with the iterative solver (testing/verification). *)
let compute_iterative (f : Func.t) : t = build_from_idom f (iterative f)

let idom t l = Hashtbl.find_opt t.idom l
let depth t l = Option.value ~default:0 (Hashtbl.find_opt t.depth l)
let is_reachable t l = Hashtbl.mem t.reachable l

let dom_children t l =
  Option.value ~default:[] (Hashtbl.find_opt t.children l)

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  let rec up b =
    if a = b then true
    else
      match idom t b with
      | Some p -> if depth t p < depth t a then false else up p
      | None -> false
  in
  up b

let strictly_dominates t a b = a <> b && dominates t a b

let pp ppf t =
  let rows = Hashtbl.fold (fun l p acc -> (l, p) :: acc) t.idom [] in
  let rows = List.sort compare rows in
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf (l, p) -> Fmt.pf ppf "idom(%s) = %s" l p))
    rows
