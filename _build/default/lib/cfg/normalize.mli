(** CFG normalization: guarantee every natural loop a landing pad and
    dedicated exit blocks (the invariants the paper's compiler establishes
    during CFG construction, and which promotion's lift placement needs). *)

open Rp_ir

(** Normalize one function (iterates loop analysis + fixes to a fixed
    point; a handful of rounds at most). *)
val run : Func.t -> unit

val run_program : Program.t -> unit
