lib/cfg/loops.ml: Block Dominators Fmt Func Hashtbl Instr List Option Rp_ir Rp_support
