lib/cfg/normalize.mli: Func Program Rp_ir
