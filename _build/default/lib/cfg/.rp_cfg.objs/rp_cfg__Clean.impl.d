lib/cfg/clean.ml: Block Func Hashtbl Instr List Program Rp_ir
