lib/cfg/normalize.ml: Block Dominators Func Hashtbl Instr List Loops Program Rp_ir Rp_support
