lib/cfg/dominators.mli: Format Func Instr Rp_ir
