lib/cfg/clean.mli: Func Program Rp_ir
