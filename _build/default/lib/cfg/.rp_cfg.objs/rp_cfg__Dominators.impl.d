lib/cfg/dominators.ml: Array Fmt Func Hashtbl Instr List Option Rp_ir
