lib/cfg/loops.mli: Dominators Format Func Hashtbl Instr Rp_ir Rp_support
