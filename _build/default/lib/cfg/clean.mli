(** CFG cleaning after Cooper's "Clean": remove unreachable blocks, fold
    same-target conditional branches, bypass empty blocks (this is how
    unused landing pads and exits vanish), and merge straight-line chains;
    iterated to a fixed point. *)

open Rp_ir

val remove_unreachable : Func.t -> bool
val run : Func.t -> unit
val run_program : Program.t -> unit
