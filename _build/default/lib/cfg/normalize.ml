(** CFG normalization: guarantee that every natural loop has

    - a {e landing pad}: a unique out-of-loop predecessor of the header whose
      only successor is the header, and
    - {e dedicated exits}: every edge leaving the loop targets a block whose
      predecessors all lie inside the loop.

    The paper's compiler establishes both invariants while building the CFG
    ("Our compiler automatically inserts landing pads and exits as part of
    constructing the control-flow graph"); our front end does the same for
    structured loops, and this pass re-establishes the invariants for
    hand-built or transformed CFGs.  Empty pads and exits left unused by the
    optimizer are removed afterwards by {!Clean}. *)

open Rp_ir

(** Retarget every successor edge of [b] going to [old_l] so that it goes to
    [new_l]. *)
let retarget (b : Block.t) ~old_l ~new_l =
  b.Block.term <-
    Instr.term_map_labels (fun l -> if l = old_l then new_l else l) b.Block.term

(** Ensure loop [l] has a landing pad; returns true if the CFG changed. *)
let ensure_preheader (f : Func.t) (l : Loops.loop) : bool =
  match Loops.preheader f l with
  | Some _ -> false
  | None ->
    let preds = Func.preds f in
    let outside =
      List.filter
        (fun p -> not (Loops.mem_block l p))
        (Hashtbl.find preds l.Loops.header)
    in
    let pad = Func.new_block ~hint:"pad" f in
    pad.Block.term <- Instr.Jump l.Loops.header;
    List.iter
      (fun p -> retarget (Func.block f p) ~old_l:l.Loops.header ~new_l:pad.Block.label)
      outside;
    (* entry header: the pad must become the entry *)
    if f.Func.entry = l.Loops.header then f.Func.entry <- pad.Block.label;
    true

(** Ensure all exits of loop [l] are dedicated; returns true if changed. *)
let ensure_dedicated_exits (f : Func.t) (l : Loops.loop) : bool =
  let preds = Func.preds f in
  let changed = ref false in
  List.iter
    (fun e ->
      let outside_preds =
        List.exists
          (fun p -> not (Loops.mem_block l p))
          (Hashtbl.find preds e)
      in
      if outside_preds then begin
        (* split every in-loop edge into e through a fresh exit block *)
        let ex = Func.new_block ~hint:"exit" f in
        ex.Block.term <- Instr.Jump e;
        Rp_support.Smaps.String_set.iter
          (fun b -> retarget (Func.block f b) ~old_l:e ~new_l:ex.Block.label)
          l.Loops.blocks;
        changed := true
      end)
    (Loops.exit_targets f l);
  !changed

(** Normalize the whole function.  Because inserting blocks invalidates the
    loop analysis, the pass iterates (analyze, fix one round) until no more
    changes occur — at most a few rounds in practice. *)
let run (f : Func.t) : unit =
  let rec go guard =
    if guard = 0 then invalid_arg "Normalize.run: did not converge";
    let dom = Dominators.compute f in
    let forest = Loops.analyze f dom in
    let changed =
      List.fold_left
        (fun acc l ->
          let a = ensure_preheader f l in
          let b = ensure_dedicated_exits f l in
          acc || a || b)
        false forest.Loops.loops
    in
    if changed then go (guard - 1)
  in
  go 16

let run_program (p : Program.t) = Program.iter_funcs run p
