(** Natural loops and the loop-nesting forest.

    A back edge is an edge [u -> h] with [h] dominating [u]; the natural
    loop of [h] is [h] plus everything reaching a latch without passing
    [h].  Loops sharing a header are merged; nesting follows block-set
    containment — [parent] is the paper's "parent-in-loop-tree". *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

type loop = {
  header : Instr.label;
  mutable blocks : SS.t;  (** all blocks, inner loops included *)
  mutable parent : loop option;
  mutable children : loop list;
  mutable depth : int;  (** 1 for outermost loops *)
}

type forest = {
  loops : loop list;
  by_header : (Instr.label, loop) Hashtbl.t;
  innermost : (Instr.label, loop) Hashtbl.t;
      (** block -> innermost containing loop *)
}

val is_outermost : loop -> bool

(** Loops containing a block, innermost first. *)
val loops_of : forest -> Instr.label -> loop list

val mem_block : loop -> Instr.label -> bool

(** Build the forest from dominator information. *)
val analyze : Func.t -> Dominators.t -> forest

(** The loop's landing pad — the unique out-of-loop predecessor of the
    header whose only successor is the header — or [None] when the CFG is
    not normalized (see {!Normalize}). *)
val preheader : Func.t -> loop -> Instr.label option

(** Out-of-loop targets of loop-leaving edges. *)
val exit_targets : Func.t -> loop -> Instr.label list

(** True when every exit target's predecessors all lie inside the loop. *)
val exits_dedicated : Func.t -> loop -> bool

val pp_loop : Format.formatter -> loop -> unit
val pp : Format.formatter -> forest -> unit
