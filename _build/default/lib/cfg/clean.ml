(** CFG cleaning, after Cooper's classic "Clean" pass.

    Four transformations applied to a fixed point:
    + removal of unreachable blocks;
    + folding of conditional branches with identical targets;
    + removal of empty blocks (an empty block that just jumps to [l] is
      bypassed by retargeting its predecessors — this is how the unused
      landing pads and exit blocks disappear, "empty blocks are
      automatically removed after optimization");
    + merging of straight-line chains ([b] jumps to [c], [c] has exactly one
      predecessor).

    The pass never removes the entry block and is careful not to touch
    blocks containing phis (it runs only on non-SSA code in the pipeline,
    but hand-written tests may call it on anything). *)

open Rp_ir

let has_phi (b : Block.t) = List.exists Instr.is_phi b.Block.instrs

let remove_unreachable (f : Func.t) : bool =
  let reach = Hashtbl.create 64 in
  let rec dfs l =
    if not (Hashtbl.mem reach l) then begin
      Hashtbl.replace reach l ();
      List.iter dfs (Func.succs f (Func.block f l))
    end
  in
  dfs f.Func.entry;
  let dead =
    List.filter (fun l -> not (Hashtbl.mem reach l)) f.Func.order
  in
  List.iter (Func.remove_block f) dead;
  dead <> []

let fold_branches (f : Func.t) : bool =
  let changed = ref false in
  Func.iter_blocks
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Cbr (_, a, c) when a = c ->
        b.Block.term <- Instr.Jump a;
        changed := true
      | _ -> ())
    f;
  !changed

let remove_empty (f : Func.t) : bool =
  let changed = ref false in
  let victims =
    List.filter
      (fun l ->
        l <> f.Func.entry
        &&
        let b = Func.block f l in
        b.Block.instrs = []
        && (match b.Block.term with
           | Instr.Jump t -> t <> l
           | _ -> false))
      f.Func.order
  in
  List.iter
    (fun l ->
      (* re-check: an earlier removal may have retargeted this block *)
      if Func.mem_block f l then begin
        let b = Func.block f l in
        match b.Block.term with
        | Instr.Jump target when target <> l && b.Block.instrs = [] ->
          if not (has_phi (Func.block f target)) then begin
            let preds = Func.preds f in
            let ps = Hashtbl.find preds l in
            List.iter
              (fun p ->
                let pb = Func.block f p in
                pb.Block.term <-
                  Instr.term_map_labels
                    (fun x -> if x = l then target else x)
                    pb.Block.term)
              ps;
            Func.remove_block f l;
            changed := true
          end
        | _ -> ()
      end)
    victims;
  !changed

let merge_chains (f : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Func.preds f in
    let candidate =
      List.find_opt
        (fun l ->
          match (Func.block f l).Block.term with
          | Instr.Jump c ->
            c <> l && c <> f.Func.entry
            && (match Hashtbl.find_opt preds c with
               | Some [ _ ] -> true
               | _ -> false)
            && not (has_phi (Func.block f c))
          | _ -> false)
        f.Func.order
    in
    match candidate with
    | Some l ->
      let b = Func.block f l in
      (match b.Block.term with
      | Instr.Jump c ->
        let cb = Func.block f c in
        b.Block.instrs <- b.Block.instrs @ cb.Block.instrs;
        b.Block.term <- cb.Block.term;
        Func.remove_block f c;
        changed := true;
        continue_ := true
      | _ -> assert false)
    | None -> ()
  done;
  !changed

(** Run all four transformations to a fixed point. *)
let run (f : Func.t) : unit =
  let rec go guard =
    if guard = 0 then ()
    else begin
      let c1 = remove_unreachable f in
      let c2 = fold_branches f in
      let c3 = remove_empty f in
      let c4 = merge_chains f in
      if c1 || c2 || c3 || c4 then go (guard - 1)
    end
  in
  go 1000

let run_program (p : Program.t) = Program.iter_funcs run p
