lib/ssa/ssa.ml: Block Fmt Func Hashtbl Instr List Option Queue Rp_cfg Rp_ir Rp_support
