lib/ssa/ssa.mli: Func Hashtbl Instr Rp_cfg Rp_ir Rp_support
