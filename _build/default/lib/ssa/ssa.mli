(** SSA construction and destruction (Cytron et al.), used by the points-to
    analyzer ("Each function is converted into SSA form") and available as a
    general substrate. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

(** Per-block dominance frontiers (Cooper–Harvey–Kennedy runner method). *)
val dominance_frontiers :
  Func.t -> Rp_cfg.Dominators.t -> (Instr.label, SS.t) Hashtbl.t

type info = {
  origin : (Instr.reg, Instr.reg) Hashtbl.t;
      (** SSA name -> the original register it renames; parameters map to
          themselves *)
}

(** Convert a function to SSA in place (semi-pruned phi placement,
    dominator-tree renaming).  Unreachable blocks are removed first.
    Per-block instruction order is preserved modulo the prepended phis —
    the lockstep property the points-to refinement relies on. *)
val construct : Func.t -> info

(** Split critical edges (pred with several succs into a block with several
    preds), updating phi predecessor labels. *)
val split_critical_edges : Func.t -> unit

(** Replace phis with predecessor copies (critical edges are split first). *)
val destruct : Func.t -> unit

(** SSA well-formedness violations (single defs, defs dominate uses);
    empty when valid. *)
val check : Func.t -> string list
