(** SSA construction and destruction (Cytron et al.).

    The points-to analyzer follows the paper's recipe — "Each function is
    converted into SSA form.  For each SSA name, the analyzer determines the
    set of tags to which it may point" — so SSA here is a first-class
    substrate: dominance frontiers, semi-pruned phi placement, renaming, and
    copy-insertion destruction with critical-edge splitting.

    Construction returns a map from every SSA name back to the register it
    renames, which is what lets the analyzer transfer per-SSA-name facts
    back onto the original function's instructions. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set
module IS = Rp_support.Smaps.Int_set

(* ------------------------------------------------------------------ *)
(* Dominance frontiers                                                 *)
(* ------------------------------------------------------------------ *)

(** Per-block dominance frontier, computed by the Cooper–Harvey–Kennedy
    "runner" method: for each join point, walk up from each predecessor to
    the join's idom. *)
let dominance_frontiers (f : Func.t) (dom : Rp_cfg.Dominators.t) :
    (Instr.label, SS.t) Hashtbl.t =
  let df = Hashtbl.create 64 in
  let add l x =
    Hashtbl.replace df l (SS.add x (Option.value ~default:SS.empty (Hashtbl.find_opt df l)))
  in
  let preds = Func.preds f in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let l = b.Block.label in
      if Rp_cfg.Dominators.is_reachable dom l then begin
        let ps =
          List.filter (Rp_cfg.Dominators.is_reachable dom) (Hashtbl.find preds l)
        in
        if List.length ps >= 2 then
          List.iter
            (fun p ->
              let stop = Rp_cfg.Dominators.idom dom l in
              let rec runner r =
                if Some r <> stop then begin
                  add r l;
                  match Rp_cfg.Dominators.idom dom r with
                  | Some up -> runner up
                  | None -> ()
                end
              in
              runner p)
            ps
      end)
    f;
  df

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type info = {
  origin : (Instr.reg, Instr.reg) Hashtbl.t;
      (** SSA name -> the original register it renames *)
}

(** Convert [f] to SSA in place.  Unreachable blocks are removed first
    (renaming is undefined on them). *)
let construct (f : Func.t) : info =
  Rp_cfg.Clean.remove_unreachable f |> ignore;
  let dom = Rp_cfg.Dominators.compute f in
  let df = dominance_frontiers f dom in
  (* collect definition sites and "global" names (live across blocks) *)
  let def_blocks : (Instr.reg, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let add_def r l =
    Hashtbl.replace def_blocks r
      (SS.add l (Option.value ~default:SS.empty (Hashtbl.find_opt def_blocks r)))
  in
  List.iter (fun r -> add_def r f.Func.entry) f.Func.params;
  let globals = ref IS.empty in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let killed = Hashtbl.create 16 in
      let use r = if not (Hashtbl.mem killed r) then globals := IS.add r !globals in
      List.iter
        (fun i ->
          List.iter use (Instr.uses i);
          List.iter
            (fun d ->
              add_def d b.Block.label;
              Hashtbl.replace killed d ())
            (Instr.defs i))
        b.Block.instrs;
      List.iter use (Instr.term_uses b.Block.term))
    f;
  (* phi insertion (semi-pruned: only for globals) *)
  let phi_for : (Instr.label * Instr.reg, unit) Hashtbl.t = Hashtbl.create 64 in
  IS.iter
    (fun r ->
      let work = Queue.create () in
      SS.iter (fun l -> Queue.push l work)
        (Option.value ~default:SS.empty (Hashtbl.find_opt def_blocks r));
      let placed = Hashtbl.create 8 in
      while not (Queue.is_empty work) do
        let l = Queue.pop work in
        SS.iter
          (fun y ->
            if not (Hashtbl.mem placed y) then begin
              Hashtbl.replace placed y ();
              Hashtbl.replace phi_for (y, r) ();
              Queue.push y work
            end)
          (Option.value ~default:SS.empty (Hashtbl.find_opt df l))
      done)
    !globals;
  (* materialize phis, with placeholder sources to be filled by renaming *)
  Func.iter_blocks
    (fun (b : Block.t) ->
      let preds = Func.preds f in
      let ps = Hashtbl.find preds b.Block.label in
      let mine =
        IS.filter (fun r -> Hashtbl.mem phi_for (b.Block.label, r)) !globals
      in
      let phis =
        IS.elements mine
        |> List.map (fun r -> Instr.Phi (r, List.map (fun p -> (p, r)) ps))
      in
      b.Block.instrs <- phis @ b.Block.instrs)
    f;
  (* renaming *)
  let info = { origin = Hashtbl.create 64 } in
  List.iter (fun r -> Hashtbl.replace info.origin r r) f.Func.params;
  let stacks : (Instr.reg, Instr.reg list ref) Hashtbl.t = Hashtbl.create 64 in
  let stack r =
    match Hashtbl.find_opt stacks r with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks r s;
      s
  in
  let top r =
    match !(stack r) with
    | v :: _ -> v
    | [] ->
      (* use of a never-defined register (use-before-def paths): keep the
         original name; it denotes an undefined value *)
      r
  in
  let fresh_version r =
    let v = Func.fresh_reg f in
    Hashtbl.replace info.origin v r;
    let s = stack r in
    s := v :: !s;
    v
  in
  (* parameters are their own first version *)
  List.iter
    (fun r ->
      let s = stack r in
      s := r :: !s)
    f.Func.params;
  let rec rename (l : Instr.label) =
    let b = Func.block f l in
    let pushed = ref [] in
    let instrs' =
      List.map
        (fun i ->
          match i with
          | Instr.Phi (d, srcs) ->
            let d' = fresh_version d in
            pushed := d :: !pushed;
            Instr.Phi (d', srcs)
          | i ->
            let i = Instr.map_uses top i in
            Instr.map_defs
              (fun d ->
                let d' = fresh_version d in
                pushed := d :: !pushed;
                d')
              i)
        b.Block.instrs
    in
    b.Block.instrs <- instrs';
    b.Block.term <- Instr.term_map_uses top b.Block.term;
    (* fill phi arguments in successors; each pred is visited exactly once,
       so the argument slot for this edge still holds its placeholder (the
       original register) *)
    List.iter
      (fun s ->
        let sb = Func.block f s in
        sb.Block.instrs <-
          List.map
            (fun i ->
              match i with
              | Instr.Phi (d, srcs) ->
                Instr.Phi
                  ( d,
                    List.map
                      (fun (p, r) -> if p = l then (p, top r) else (p, r))
                      srcs )
              | i -> i)
            sb.Block.instrs)
      (Func.succs f b);
    (* recurse over dominator-tree children *)
    List.iter rename (Rp_cfg.Dominators.dom_children dom l);
    (* pop *)
    List.iter
      (fun r ->
        let s = stack r in
        match !s with _ :: rest -> s := rest | [] -> ())
      !pushed
  in
  rename f.Func.entry;
  info

(* ------------------------------------------------------------------ *)
(* Destruction                                                         *)
(* ------------------------------------------------------------------ *)

(** Split critical edges (predecessor with several successors into a block
    with several predecessors) so phi-replacement copies have a home. *)
let split_critical_edges (f : Func.t) =
  let preds = Func.preds f in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let succs = Func.succs f b in
      if List.length succs > 1 then
        List.iter
          (fun s ->
            if List.length (Hashtbl.find preds s) > 1 then begin
              let mid = Func.new_block ~hint:"crit" f in
              mid.Block.term <- Instr.Jump s;
              b.Block.term <-
                Instr.term_map_labels
                  (fun l -> if l = s then mid.Block.label else l)
                  b.Block.term;
              (* update phi predecessor labels in s *)
              let sb = Func.block f s in
              sb.Block.instrs <-
                List.map
                  (fun i ->
                    match i with
                    | Instr.Phi (d, srcs) ->
                      Instr.Phi
                        ( d,
                          List.map
                            (fun (p, r) ->
                              if p = b.Block.label then (mid.Block.label, r)
                              else (p, r))
                            srcs )
                    | i -> i)
                  sb.Block.instrs
            end)
          succs)
    f

(** Replace phis with copies in predecessors (conventional SSA assumed, as
    produced by {!construct}). *)
let destruct (f : Func.t) : unit =
  split_critical_edges f;
  Func.iter_blocks
    (fun (b : Block.t) ->
      let phis, rest = List.partition Instr.is_phi b.Block.instrs in
      List.iter
        (fun i ->
          match i with
          | Instr.Phi (d, srcs) ->
            List.iter
              (fun (p, r) ->
                let pb = Func.block f p in
                if r <> d then pb.Block.instrs <- pb.Block.instrs @ [ Instr.Copy (d, r) ])
              srcs
          | _ -> assert false)
        phis;
      b.Block.instrs <- rest)
    f

(** Is [f] in valid SSA form?  Returns violations for the test-suite. *)
let check (f : Func.t) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let def_count = Hashtbl.create 64 in
  let bump r =
    Hashtbl.replace def_count r (1 + Option.value ~default:0 (Hashtbl.find_opt def_count r))
  in
  List.iter bump f.Func.params;
  Func.iter_blocks
    (fun (b : Block.t) ->
      List.iter (fun i -> List.iter bump (Instr.defs i)) b.Block.instrs)
    f;
  Hashtbl.iter
    (fun r n -> if n > 1 then err "register r%d defined %d times" r n)
    def_count;
  (* each use dominated by its def *)
  let dom = Rp_cfg.Dominators.compute f in
  let def_block = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace def_block r f.Func.entry) f.Func.params;
  Func.iter_blocks
    (fun (b : Block.t) ->
      List.iter
        (fun i ->
          List.iter (fun d -> Hashtbl.replace def_block d b.Block.label) (Instr.defs i))
        b.Block.instrs)
    f;
  Func.iter_blocks
    (fun (b : Block.t) ->
      let seen = Hashtbl.create 16 in
      if b.Block.label = f.Func.entry then
        List.iter (fun p -> Hashtbl.replace seen p ()) f.Func.params;
      List.iter
        (fun i ->
          (match i with
          | Instr.Phi (_, srcs) ->
            List.iter
              (fun (p, r) ->
                match Hashtbl.find_opt def_block r with
                | Some dl ->
                  if not (Rp_cfg.Dominators.dominates dom dl p) then
                    err "phi arg r%d (from %s) not dominated by its def" r p
                | None -> ())
              srcs
          | _ ->
            List.iter
              (fun u ->
                match Hashtbl.find_opt def_block u with
                | Some dl ->
                  if dl = b.Block.label then begin
                    if not (Hashtbl.mem seen u) then
                      err "use of r%d before its def in %s" u b.Block.label
                  end
                  else if not (Rp_cfg.Dominators.strictly_dominates dom dl b.Block.label)
                  then
                    err "use of r%d in %s not dominated by def in %s" u
                      b.Block.label dl
                | None -> ())
              (Instr.uses i));
          List.iter (fun d -> Hashtbl.replace seen d ()) (Instr.defs i))
        b.Block.instrs)
    f;
  List.rev !errs
