(** Lowering from the typed Mini-C AST to the tagged IL.

    Storage decisions per the paper's §2: never-addressed local scalars live
    in virtual registers; globals, address-taken locals, aggregates, and
    heap objects live in memory behind tags.  Loops are emitted with landing
    pads and dedicated exit blocks; calls start with ⊤ MOD/REF summaries
    (builtins excepted). *)

val gen_program : Rp_minic.Tast.program -> Rp_ir.Program.t

(** Front-end pipeline: source text to IL (parse, check, lower). *)
val compile_source : string -> Rp_ir.Program.t
