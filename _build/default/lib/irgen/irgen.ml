(** Lowering from the typed AST to the IL.

    The storage decision (the paper's §2): a scalar local or parameter whose
    address is never taken lives in a virtual register from birth; globals,
    address-taken locals, arrays, and heap objects live in memory behind
    tags.  The front end "encodes the best information it has into the tag
    field and the opcode": a direct array access gets the array's singleton
    tag set; an access through a pointer variable gets the conservative
    universe (shrunk later by analysis); calls get universal MOD/REF sets
    unless the callee is a builtin with an empty summary.

    Loops are emitted with an explicit empty landing pad before the header
    and a dedicated exit block, as the paper's compiler does when building
    the control-flow graph. *)

open Rp_ir
module T = Rp_minic.Tast
module A = Rp_minic.Ast
module B = Rp_minic.Builtins

type loc =
  | Lreg of Instr.reg  (** enregistered scalar *)
  | Ltag of Tag.t  (** memory-resident scalar (global / addressed local) *)
  | Lobj of Tag.t  (** aggregate (array) — only its address is taken *)

type ctx = {
  prog : Program.t;
  fn : Func.t;
  var_loc : (int, loc) Hashtbl.t;  (** vid -> storage *)
  mutable cur : Block.t;
  mutable acc : Instr.t list;  (** current block's instrs, reversed *)
  mutable break_to : Instr.label list;
  mutable cont_to : Instr.label list;
  mutable finished : bool;  (** current block already terminated *)
}

(* ------------------------------------------------------------------ *)
(* Block plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let emit ctx i = ctx.acc <- i :: ctx.acc

let flush ctx =
  ctx.cur.Block.instrs <- List.rev ctx.acc;
  ctx.acc <- []

(** Terminate the current block and switch to [next]. *)
let finish ctx term (next : Block.t) =
  if not ctx.finished then ctx.cur.Block.term <- term;
  flush ctx;
  ctx.cur <- next;
  ctx.finished <- false

(** Terminate the current block; continue in a fresh unreachable block
    (after return/break/continue, any trailing code is dead). *)
let finish_dead ctx term =
  let dead = Func.new_block ~hint:"dead" ctx.fn in
  finish ctx term dead

let fresh ctx = Func.fresh_reg ctx.fn

(* ------------------------------------------------------------------ *)
(* Variables and lvalues                                               *)
(* ------------------------------------------------------------------ *)

let var_loc ctx (v : T.var) =
  match Hashtbl.find_opt ctx.var_loc v.T.vid with
  | Some l -> l
  | None -> invalid_arg ("irgen: variable without storage: " ^ v.T.vname)

let tag_of_var ctx (v : T.var) =
  match var_loc ctx v with
  | Ltag t | Lobj t -> t
  | Lreg _ -> invalid_arg ("irgen: register variable has no tag: " ^ v.T.vname)

(** A resolved lvalue: the address (if any) is computed exactly once. *)
type rlval =
  | Rreg of Instr.reg
  | Rtag of Tag.t
  | Rmem of Instr.reg * Tagset.t

let rl_load ctx = function
  | Rreg r -> r
  | Rtag t ->
    let d = fresh ctx in
    emit ctx (if t.Tag.is_const then Instr.Loadc (d, t) else Instr.Loads (d, t));
    d
  | Rmem (a, ts) ->
    let d = fresh ctx in
    emit ctx (Instr.Loadg (d, a, ts));
    d

let rl_store ctx rl r =
  match rl with
  | Rreg dst -> if dst <> r then emit ctx (Instr.Copy (dst, r))
  | Rtag t -> emit ctx (Instr.Stores (t, r))
  | Rmem (a, ts) -> emit ctx (Instr.Storeg (a, r, ts))

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let int_binop : A.binop -> Instr.binop = function
  | A.Badd -> Instr.Add
  | A.Bsub -> Instr.Sub
  | A.Bmul -> Instr.Mul
  | A.Bdiv -> Instr.Div
  | A.Brem -> Instr.Rem
  | A.Bshl -> Instr.Shl
  | A.Bshr -> Instr.Shr
  | A.Bband -> Instr.Band
  | A.Bbor -> Instr.Bor
  | A.Bbxor -> Instr.Bxor
  | A.Blt -> Instr.Lt
  | A.Ble -> Instr.Le
  | A.Bgt -> Instr.Gt
  | A.Bge -> Instr.Ge
  | A.Beq -> Instr.Eq
  | A.Bne -> Instr.Ne
  | A.Bland | A.Blor -> invalid_arg "irgen: unlowered short-circuit operator"

let flt_binop : A.binop -> Instr.binop = function
  | A.Badd -> Instr.Fadd
  | A.Bsub -> Instr.Fsub
  | A.Bmul -> Instr.Fmul
  | A.Bdiv -> Instr.Fdiv
  | A.Blt -> Instr.Flt
  | A.Ble -> Instr.Fle
  | A.Bgt -> Instr.Fgt
  | A.Bge -> Instr.Fge
  | A.Beq -> Instr.Feq
  | A.Bne -> Instr.Fne
  | op ->
    ignore op;
    invalid_arg "irgen: float operator has no float form"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec gen_expr ctx (e : T.expr) : Instr.reg =
  match e.T.edesc with
  | T.Tint_lit n ->
    let d = fresh ctx in
    emit ctx (Instr.Loadi (d, Instr.Cint n));
    d
  | T.Tflt_lit f ->
    let d = fresh ctx in
    emit ctx (Instr.Loadi (d, Instr.Cflt f));
    d
  | T.Tload lv -> rl_load ctx (resolve_lval ctx lv)
  | T.Taddr lv -> gen_addr ctx lv
  | T.Tfunref f ->
    let d = fresh ctx in
    emit ctx (Instr.Loadfp (d, f));
    d
  | T.Tunop (op, a) ->
    let ra = gen_expr ctx a in
    let d = fresh ctx in
    let iop =
      match (op, a.T.ety) with
      | A.Uneg, A.Tflt -> Instr.Fneg
      | A.Uneg, _ -> Instr.Neg
      | A.Unot, _ -> Instr.Lnot
      | A.Ubnot, _ -> Instr.Bnot
    in
    emit ctx (Instr.Unop (iop, d, ra));
    d
  | T.Tbinop (op, a, b) ->
    let ra = gen_expr ctx a in
    let rb = gen_expr ctx b in
    let d = fresh ctx in
    let iop = if a.T.ety = A.Tflt then flt_binop op else int_binop op in
    emit ctx (Instr.Binop (iop, d, ra, rb));
    d
  | T.Tptradd (p, i, scale) ->
    let rp = gen_expr ctx p in
    let ri = gen_expr ctx i in
    let ri =
      if scale = 1 then ri
      else begin
        let rs = fresh ctx in
        emit ctx (Instr.Loadi (rs, Instr.Cint scale));
        let rm = fresh ctx in
        emit ctx (Instr.Binop (Instr.Mul, rm, ri, rs));
        rm
      end
    in
    let d = fresh ctx in
    emit ctx (Instr.Binop (Instr.Add, d, rp, ri));
    d
  | T.Tptrdiff (a, b, scale) ->
    let ra = gen_expr ctx a in
    let rb = gen_expr ctx b in
    let d = fresh ctx in
    emit ctx (Instr.Binop (Instr.Sub, d, ra, rb));
    if scale = 1 then d
    else begin
      let rs = fresh ctx in
      emit ctx (Instr.Loadi (rs, Instr.Cint scale));
      let q = fresh ctx in
      emit ctx (Instr.Binop (Instr.Div, q, d, rs));
      q
    end
  | T.Tand (a, b) -> gen_shortcircuit ctx ~is_and:true a b
  | T.Tor (a, b) -> gen_shortcircuit ctx ~is_and:false a b
  | T.Tcond (c, t, e2) ->
    let res = fresh ctx in
    let rc = gen_expr ctx c in
    let bt = Func.new_block ctx.fn in
    let be = Func.new_block ctx.fn in
    let bj = Func.new_block ctx.fn in
    finish ctx (Instr.Cbr (rc, bt.Block.label, be.Block.label)) bt;
    let rt = gen_expr ctx t in
    emit ctx (Instr.Copy (res, rt));
    finish ctx (Instr.Jump bj.Block.label) be;
    let re = gen_expr ctx e2 in
    emit ctx (Instr.Copy (res, re));
    finish ctx (Instr.Jump bj.Block.label) bj;
    res
  | T.Tconv (conv, a) ->
    let ra = gen_expr ctx a in
    let d = fresh ctx in
    (match conv with
    | T.CI2F -> emit ctx (Instr.Unop (Instr.I2f, d, ra))
    | T.CF2I -> emit ctx (Instr.Unop (Instr.F2i, d, ra))
    | T.CBits -> emit ctx (Instr.Copy (d, ra)));
    d
  | T.Tassign (None, lv, rhs) ->
    let rl = resolve_lval ctx lv in
    let r = gen_expr ctx rhs in
    rl_store ctx rl r;
    r
  | T.Tassign (Some op, lv, rhs) ->
    let rl = resolve_lval ctx lv in
    let old = rl_load ctx rl in
    let r = gen_expr ctx rhs in
    let d = fresh ctx in
    (match T.lval_ty lv with
    | A.Tptr pointee ->
      (* p += i / p -= i with the index scaled to words *)
      let scale = A.sizeof pointee in
      let r =
        if scale = 1 then r
        else begin
          let rs = fresh ctx in
          emit ctx (Instr.Loadi (rs, Instr.Cint scale));
          let rm = fresh ctx in
          emit ctx (Instr.Binop (Instr.Mul, rm, r, rs));
          rm
        end
      in
      let iop = if op = A.Badd then Instr.Add else Instr.Sub in
      emit ctx (Instr.Binop (iop, d, old, r))
    | A.Tflt -> emit ctx (Instr.Binop (flt_binop op, d, old, r))
    | _ -> emit ctx (Instr.Binop (int_binop op, d, old, r)));
    rl_store ctx rl d;
    d
  | T.Tincdec (pre, inc, lv) ->
    let rl = resolve_lval ctx lv in
    let old = rl_load ctx rl in
    (* for post-inc/dec the old value must be snapshotted: when the lvalue
       is a register variable, [rl_load] returns that very register, which
       the store below overwrites *)
    let old =
      if pre then old
      else begin
        let snap = fresh ctx in
        emit ctx (Instr.Copy (snap, old));
        snap
      end
    in
    let step = fresh ctx in
    let d = fresh ctx in
    (match T.lval_ty lv with
    | A.Tflt ->
      emit ctx (Instr.Loadi (step, Instr.Cflt 1.));
      emit ctx (Instr.Binop ((if inc then Instr.Fadd else Instr.Fsub), d, old, step))
    | A.Tptr pointee ->
      emit ctx (Instr.Loadi (step, Instr.Cint (A.sizeof pointee)));
      emit ctx (Instr.Binop ((if inc then Instr.Add else Instr.Sub), d, old, step))
    | _ ->
      emit ctx (Instr.Loadi (step, Instr.Cint 1));
      emit ctx (Instr.Binop ((if inc then Instr.Add else Instr.Sub), d, old, step)));
    rl_store ctx rl d;
    if pre then d else old
  | T.Tcall (callee, args) -> (
    match gen_call ctx callee args ~want_value:(e.T.ety <> A.Tvoid) with
    | Some r -> r
    | None -> invalid_arg "irgen: void call used as a value")

and gen_shortcircuit ctx ~is_and a b =
  let res = fresh ctx in
  let ra = gen_expr ctx a in
  let brhs = Func.new_block ctx.fn in
  let bshort = Func.new_block ctx.fn in
  let bj = Func.new_block ctx.fn in
  let term =
    if is_and then Instr.Cbr (ra, brhs.Block.label, bshort.Block.label)
    else Instr.Cbr (ra, bshort.Block.label, brhs.Block.label)
  in
  finish ctx term brhs;
  (* rhs path: result is (b != 0) *)
  let rb = gen_expr ctx b in
  let z = fresh ctx in
  emit ctx (Instr.Loadi (z, Instr.Cint 0));
  let nb = fresh ctx in
  emit ctx (Instr.Binop (Instr.Ne, nb, rb, z));
  emit ctx (Instr.Copy (res, nb));
  finish ctx (Instr.Jump bj.Block.label) bshort;
  (* short-circuit path: && -> 0, || -> 1 *)
  emit ctx (Instr.Loadi (res, Instr.Cint (if is_and then 0 else 1)));
  finish ctx (Instr.Jump bj.Block.label) bj;
  res

and gen_addr ctx (lv : T.lval) : Instr.reg =
  match lv with
  | T.Lvar v -> (
    match var_loc ctx v with
    | Lreg _ -> invalid_arg "irgen: address of register variable"
    | Ltag t | Lobj t ->
      let d = fresh ctx in
      emit ctx (Instr.Loada (d, t));
      d)
  | T.Lmem (addr, _, _) -> gen_expr ctx addr

and resolve_lval ctx (lv : T.lval) : rlval =
  match lv with
  | T.Lvar v -> (
    match var_loc ctx v with
    | Lreg r -> Rreg r
    | Ltag t -> Rtag t
    | Lobj _ -> invalid_arg "irgen: array used as scalar lvalue")
  | T.Lmem (addr, _, prov) ->
    let ra = gen_expr ctx addr in
    let tags =
      match prov with
      | Some v when T.var_in_memory v -> Tagset.singleton (tag_of_var ctx v)
      | _ -> Tagset.univ
    in
    Rmem (ra, tags)

and gen_call ctx callee args ~want_value : Instr.reg option =
  let rargs = List.map (gen_expr ctx) args in
  let ret = if want_value then Some (fresh ctx) else None in
  let site = Program.fresh_site ctx.prog in
  let call =
    match callee with
    | T.Cdirect f when B.is_builtin f ->
      (* builtins touch no user-visible memory: empty summaries; an
         allocating builtin gets a heap tag for its site now, so the tag
         exists for every later phase *)
      if B.allocates f then
        ignore (Program.heap_tag ctx.prog site : Tag.t);
      {
        Instr.target = Instr.Direct f;
        args = rargs;
        ret;
        mods = Tagset.empty;
        refs = Tagset.empty;
        targets = [ f ];
        site;
      }
    | T.Cdirect f ->
      {
        Instr.target = Instr.Direct f;
        args = rargs;
        ret;
        mods = Tagset.univ;
        refs = Tagset.univ;
        targets = [ f ];
        site;
      }
    | T.Cindirect fe ->
      let rf = gen_expr ctx fe in
      {
        Instr.target = Instr.Indirect rf;
        args = rargs;
        ret;
        mods = Tagset.univ;
        refs = Tagset.univ;
        targets = [];
        site;
      }
  in
  emit ctx (Instr.Call call);
  ret

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt ctx (s : T.stmt) : unit =
  match s with
  | T.Sskip -> ()
  | T.Sblock ss -> List.iter (gen_stmt ctx) ss
  | T.Sexpr { T.edesc = T.Tcall (callee, args); ety = A.Tvoid } ->
    ignore (gen_call ctx callee args ~want_value:false : Instr.reg option)
  | T.Sexpr e -> ignore (gen_expr ctx e : Instr.reg)
  | T.Svardef (v, init) -> (
    match (var_loc ctx v, init) with
    | _, None -> ()
    | Lreg r, Some e ->
      let re = gen_expr ctx e in
      if re <> r then emit ctx (Instr.Copy (r, re))
    | Ltag t, Some e ->
      let re = gen_expr ctx e in
      emit ctx (Instr.Stores (t, re))
    | Lobj _, Some _ -> invalid_arg "irgen: array initializer not expanded")
  | T.Sif (c, then_, else_) -> (
    let rc = gen_expr ctx c in
    let bt = Func.new_block ctx.fn in
    let bj = Func.new_block ctx.fn in
    match else_ with
    | None ->
      finish ctx (Instr.Cbr (rc, bt.Block.label, bj.Block.label)) bt;
      gen_stmt ctx then_;
      finish ctx (Instr.Jump bj.Block.label) bj
    | Some else_ ->
      let be = Func.new_block ctx.fn in
      finish ctx (Instr.Cbr (rc, bt.Block.label, be.Block.label)) bt;
      gen_stmt ctx then_;
      finish ctx (Instr.Jump bj.Block.label) be;
      gen_stmt ctx else_;
      finish ctx (Instr.Jump bj.Block.label) bj)
  | T.Swhile (c, body) ->
    let pad = Func.new_block ~hint:"pad" ctx.fn in
    let header = Func.new_block ~hint:"head" ctx.fn in
    let bbody = Func.new_block ctx.fn in
    let bexit = Func.new_block ~hint:"exit" ctx.fn in
    let after = Func.new_block ctx.fn in
    finish ctx (Instr.Jump pad.Block.label) pad;
    finish ctx (Instr.Jump header.Block.label) header;
    let rc = gen_expr ctx c in
    finish ctx (Instr.Cbr (rc, bbody.Block.label, bexit.Block.label)) bbody;
    ctx.break_to <- bexit.Block.label :: ctx.break_to;
    ctx.cont_to <- header.Block.label :: ctx.cont_to;
    gen_stmt ctx body;
    ctx.break_to <- List.tl ctx.break_to;
    ctx.cont_to <- List.tl ctx.cont_to;
    finish ctx (Instr.Jump header.Block.label) bexit;
    finish ctx (Instr.Jump after.Block.label) after
  | T.Sdowhile (body, c) ->
    let pad = Func.new_block ~hint:"pad" ctx.fn in
    let bbody = Func.new_block ctx.fn in
    let bcond = Func.new_block ~hint:"latch" ctx.fn in
    let bexit = Func.new_block ~hint:"exit" ctx.fn in
    let after = Func.new_block ctx.fn in
    finish ctx (Instr.Jump pad.Block.label) pad;
    finish ctx (Instr.Jump bbody.Block.label) bbody;
    ctx.break_to <- bexit.Block.label :: ctx.break_to;
    ctx.cont_to <- bcond.Block.label :: ctx.cont_to;
    gen_stmt ctx body;
    ctx.break_to <- List.tl ctx.break_to;
    ctx.cont_to <- List.tl ctx.cont_to;
    finish ctx (Instr.Jump bcond.Block.label) bcond;
    let rc = gen_expr ctx c in
    finish ctx (Instr.Cbr (rc, bbody.Block.label, bexit.Block.label)) bexit;
    finish ctx (Instr.Jump after.Block.label) after
  | T.Sfor (init, cond, step, body) ->
    Option.iter (gen_stmt ctx) init;
    let pad = Func.new_block ~hint:"pad" ctx.fn in
    let header = Func.new_block ~hint:"head" ctx.fn in
    let bbody = Func.new_block ctx.fn in
    let bstep = Func.new_block ~hint:"step" ctx.fn in
    let bexit = Func.new_block ~hint:"exit" ctx.fn in
    let after = Func.new_block ctx.fn in
    finish ctx (Instr.Jump pad.Block.label) pad;
    finish ctx (Instr.Jump header.Block.label) header;
    (match cond with
    | Some c ->
      let rc = gen_expr ctx c in
      finish ctx (Instr.Cbr (rc, bbody.Block.label, bexit.Block.label)) bbody
    | None -> finish ctx (Instr.Jump bbody.Block.label) bbody);
    ctx.break_to <- bexit.Block.label :: ctx.break_to;
    ctx.cont_to <- bstep.Block.label :: ctx.cont_to;
    gen_stmt ctx body;
    ctx.break_to <- List.tl ctx.break_to;
    ctx.cont_to <- List.tl ctx.cont_to;
    finish ctx (Instr.Jump bstep.Block.label) bstep;
    Option.iter (fun e -> ignore (gen_expr ctx e : Instr.reg)) step;
    finish ctx (Instr.Jump header.Block.label) bexit;
    finish ctx (Instr.Jump after.Block.label) after
  | T.Sbreak -> finish_dead ctx (Instr.Jump (List.hd ctx.break_to))
  | T.Scontinue -> finish_dead ctx (Instr.Jump (List.hd ctx.cont_to))
  | T.Sreturn None -> finish_dead ctx (Instr.Ret None)
  | T.Sreturn (Some e) ->
    let r = gen_expr ctx e in
    finish_dead ctx (Instr.Ret (Some r))

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let gen_func prog ~(globals : (int, loc) Hashtbl.t) (fd : T.fundef) : Func.t =
  let fn = Func.create ~name:fd.T.fname ~nparams:(List.length fd.T.fparams) in
  let entry = Block.create fn.Func.entry in
  Func.add_block fn entry;
  let var_loc = Hashtbl.copy globals in
  let ctx =
    {
      prog;
      fn;
      var_loc;
      cur = entry;
      acc = [];
      break_to = [];
      cont_to = [];
      finished = false;
    }
  in
  (* storage decisions for parameters *)
  List.iteri
    (fun i (v : T.var) ->
      if T.var_in_memory v then begin
        let tag =
          Tag.Table.fresh prog.Program.tags ~name:(fd.T.fname ^ "." ^ v.T.vname)
            ~storage:(Tag.Local fd.T.fname) ~size:1 ~is_scalar:true
            ~declared_in_recursive:fd.T.frecursive ()
        in
        fn.Func.local_tags <- fn.Func.local_tags @ [ tag ];
        Hashtbl.replace ctx.var_loc v.T.vid (Ltag tag);
        (* prologue: spill the incoming value to its home *)
        emit ctx (Instr.Stores (tag, i))
      end
      else Hashtbl.replace ctx.var_loc v.T.vid (Lreg i))
    fd.T.fparams;
  (* storage decisions for locals *)
  List.iter
    (fun (v : T.var) ->
      if T.var_in_memory v then begin
        let is_agg = T.var_is_aggregate v in
        let tag =
          Tag.Table.fresh prog.Program.tags ~name:(fd.T.fname ^ "." ^ v.T.vname)
            ~storage:(Tag.Local fd.T.fname) ~size:(A.sizeof v.T.vty)
            ~is_scalar:(not is_agg) ~is_const:v.T.vconst
            ~declared_in_recursive:fd.T.frecursive ()
        in
        fn.Func.local_tags <- fn.Func.local_tags @ [ tag ];
        Hashtbl.replace ctx.var_loc v.T.vid
          (if is_agg then Lobj tag else Ltag tag)
      end
      else Hashtbl.replace ctx.var_loc v.T.vid (Lreg (fresh ctx)))
    fd.T.flocals;
  gen_stmt ctx fd.T.fbody;
  (* implicit return *)
  (match fd.T.fret with
  | A.Tvoid -> ctx.cur.Block.term <- Instr.Ret None
  | _ ->
    let r = fresh ctx in
    emit ctx (Instr.Loadi (r, Instr.Cint 0));
    ctx.cur.Block.term <- Instr.Ret (Some r));
  flush ctx;
  fn

(** Lower a whole checked program. *)
let gen_program (tast : T.program) : Program.t =
  let prog = Program.create () in
  (* globals first, so their tags exist before any body is lowered *)
  let globals : (int, loc) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ((v : T.var), ginit) ->
      let is_agg = T.var_is_aggregate v in
      let tag =
        Tag.Table.fresh prog.Program.tags ~name:v.T.vname ~storage:Tag.Global
          ~size:(A.sizeof v.T.vty) ~is_scalar:(not is_agg)
          ~is_const:v.T.vconst ()
      in
      Hashtbl.replace globals v.T.vid (if is_agg then Lobj tag else Ltag tag);
      let rec elem_zero = function
        | A.Tflt -> Instr.Cflt 0.
        | A.Tarr (t, _) -> elem_zero t
        | _ -> Instr.Cint 0
      in
      (* struct-containing objects are heterogeneous: spell the zeros out
         word by word so float fields start as typed zeros *)
      let rec has_struct = function
        | A.Tstruct _ -> true
        | A.Tarr (t, _) -> has_struct t
        | _ -> false
      in
      let rec zero_words = function
        | A.Tint | A.Tptr _ -> [ Instr.Cint 0 ]
        | A.Tflt -> [ Instr.Cflt 0. ]
        | A.Tarr (t, n) -> List.concat (List.init n (fun _ -> zero_words t))
        | A.Tstruct sd ->
          List.concat_map (fun (_, t, _) -> zero_words t) sd.A.sfields
        | A.Tvoid | A.Tfun _ -> invalid_arg "irgen: zero of non-object type"
      in
      let init =
        match ginit with
        | T.Gzero when has_struct v.T.vty ->
          Program.Init_words (zero_words v.T.vty)
        | T.Gzero -> Program.Init_zero (elem_zero v.T.vty)
        | T.Gwords ws ->
          Program.Init_words
            (List.map
               (function
                 | T.Wint n -> Instr.Cint n
                 | T.Wflt f -> Instr.Cflt f)
               ws)
      in
      Program.add_global prog tag init)
    tast.T.pglobals;
  List.iter
    (fun (fd : T.fundef) -> Program.add_func prog (gen_func prog ~globals fd))
    tast.T.pfuncs;
  prog.Program.main <- "main";
  prog

(** Front-end pipeline: source text to IL. *)
let compile_source src =
  src |> Rp_minic.Typecheck.check_source |> gen_program
