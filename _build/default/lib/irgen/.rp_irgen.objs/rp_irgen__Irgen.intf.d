lib/irgen/irgen.mli: Rp_ir Rp_minic
