lib/irgen/irgen.ml: Block Func Hashtbl Instr List Option Program Rp_ir Rp_minic Tag Tagset
