(** Chaitin–Briggs graph-coloring register allocation: liveness →
    interference → Briggs-conservative coalescing → simplify with
    optimistic push → select → spill-and-retry.  Spill code is emitted as
    tagged scalar memory operations so spills appear in the paper's dynamic
    load/store counts; single-definition constants and addresses are
    rematerialized instead of spilled. *)

open Rp_ir

type stats = {
  mutable spilled_regs : int;  (** live ranges sent to stack slots *)
  mutable remat_regs : int;  (** "spilled" constants recomputed instead *)
  mutable coalesced : int;
  mutable removed_copies : int;
  mutable rounds : int;  (** build/color iterations until success *)
}

val zero_stats : unit -> stats

(** Allocate one function onto [k] physical registers (numbered [0..k-1]);
    rewrites instructions, parameters, and [nreg] in place.
    @raise Invalid_argument when [k < 4]. *)
val alloc_func : Program.t -> k:int -> Func.t -> stats

(** Allocate every function of the program. *)
val alloc_program : ?k:int -> Program.t -> stats
