lib/regalloc/regalloc.mli: Func Program Rp_ir
