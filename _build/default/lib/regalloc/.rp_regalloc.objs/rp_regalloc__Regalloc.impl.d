lib/regalloc/regalloc.ml: Array Block Float Func Hashtbl Instr List Option Printf Program Rp_cfg Rp_ir Rp_opt Rp_support Tag
