(** Graph-coloring register allocation, after Chaitin and Briggs et al. [1]
    (the allocator the paper uses: "Our compiler uses a graph-coloring
    allocator.  These allocators are known to over-spill in tight
    situations").

    Phases: liveness → interference graph → conservative (Briggs)
    coalescing → simplify with optimistic push → select → either done or
    spill-and-retry.  Spill code is emitted as tagged scalar memory
    operations ([Tag.Spill]), so spills show up in the dynamic load/store
    counts exactly as the paper's experiments require (the "water" effect,
    where promotion-induced pressure makes the allocated code slower).

    There are no calling-convention constraints: the execution model gives
    every activation a private register file, so values never live across a
    call in a shared register.  Promoted values therefore "compete for
    registers on an equal footing with other values". *)

open Rp_ir
module IS = Rp_support.Smaps.Int_set

type stats = {
  mutable spilled_regs : int;
  mutable remat_regs : int;
      (** "spilled" constants rematerialized instead of stored *)
  mutable coalesced : int;
  mutable removed_copies : int;
  mutable rounds : int;
}

let zero_stats () =
  { spilled_regs = 0; remat_regs = 0; coalesced = 0; removed_copies = 0;
    rounds = 0 }

(* ------------------------------------------------------------------ *)
(* Interference graph                                                  *)
(* ------------------------------------------------------------------ *)

type graph = {
  adj : (Instr.reg, IS.t) Hashtbl.t;
  mutable nodes : IS.t;
}

let g_create () = { adj = Hashtbl.create 64; nodes = IS.empty }

let g_neighbors g n = Option.value ~default:IS.empty (Hashtbl.find_opt g.adj n)

let g_add_node g n = g.nodes <- IS.add n g.nodes

let g_add_edge g a b =
  if a <> b then begin
    g_add_node g a;
    g_add_node g b;
    Hashtbl.replace g.adj a (IS.add b (g_neighbors g a));
    Hashtbl.replace g.adj b (IS.add a (g_neighbors g b))
  end

let g_interferes g a b = IS.mem b (g_neighbors g a)

let g_degree g n = IS.cardinal (g_neighbors g n)

(** Build the interference graph plus spill-cost estimates.  A definition
    interferes with everything live after it; for a copy, the source is
    excluded (the classic move exception enabling coalescing). *)
let build (f : Func.t) (forest : Rp_cfg.Loops.forest) =
  let live = Rp_opt.Liveness.compute f in
  let g = g_create () in
  let cost : (Instr.reg, float) Hashtbl.t = Hashtbl.create 64 in
  let moves = ref [] in
  let bump_cost r w =
    Hashtbl.replace cost r (w +. Option.value ~default:0. (Hashtbl.find_opt cost r))
  in
  (* every register that appears is a node *)
  List.iter (fun p -> g_add_node g p) f.Func.params;
  Func.iter_blocks
    (fun (b : Block.t) ->
      let depth =
        match Hashtbl.find_opt forest.Rp_cfg.Loops.innermost b.Block.label with
        | Some l -> l.Rp_cfg.Loops.depth
        | None -> 0
      in
      let w = Float.pow 10. (float_of_int (min depth 6)) in
      let after = Rp_opt.Liveness.live_after_each f live b in
      let instrs = Array.of_list b.Block.instrs in
      Array.iteri
        (fun k i ->
          List.iter (fun r -> g_add_node g r; bump_cost r w) (Instr.uses i);
          List.iter (fun d -> g_add_node g d; bump_cost d w) (Instr.defs i);
          let live_after = after.(k) in
          match i with
          | Instr.Copy (d, s) ->
            moves := (d, s) :: !moves;
            IS.iter (fun l -> if l <> s then g_add_edge g d l) live_after
          | _ ->
            List.iter
              (fun d -> IS.iter (fun l -> g_add_edge g d l) live_after)
              (Instr.defs i))
        instrs;
      List.iter (fun r -> bump_cost r w) (Instr.term_uses b.Block.term))
    f;
  (* parameters are all live simultaneously at entry *)
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
      List.iter (fun q -> g_add_edge g p q) rest;
      pairs rest
  in
  pairs f.Func.params;
  let entry_live = Rp_opt.Liveness.live_in live f.Func.entry in
  List.iter
    (fun p -> IS.iter (fun l -> g_add_edge g p l) entry_live)
    f.Func.params;
  (g, cost, !moves)

(* ------------------------------------------------------------------ *)
(* Coalescing                                                          *)
(* ------------------------------------------------------------------ *)

(** Briggs-conservative coalescing on the interference graph.  Returns the
    alias map (register -> representative). *)
let coalesce (g : graph) (moves : (Instr.reg * Instr.reg) list) ~k stats =
  let uf_size = 1 + IS.fold max g.nodes 0 in
  let uf = Rp_support.Union_find.create (max uf_size 1) in
  let resolve r = Rp_support.Union_find.find uf r in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d, s) ->
        let d = resolve d and s = resolve s in
        if d <> s && (not (g_interferes g d s)) && IS.mem d g.nodes
           && IS.mem s g.nodes
        then begin
          let combined = IS.union (g_neighbors g d) (g_neighbors g s) in
          let significant =
            IS.fold
              (fun n acc -> if g_degree g n >= k then acc + 1 else acc)
              combined 0
          in
          if significant < k then begin
            (* merge s into d *)
            let root = Rp_support.Union_find.union uf d s in
            let other = if root = d then s else d in
            IS.iter
              (fun n ->
                Hashtbl.replace g.adj n (IS.remove other (g_neighbors g n));
                g_add_edge g root n)
              (g_neighbors g other);
            Hashtbl.remove g.adj other;
            g.nodes <- IS.remove other g.nodes;
            stats.coalesced <- stats.coalesced + 1;
            changed := true
          end
        end)
      moves
  done;
  resolve

(* ------------------------------------------------------------------ *)
(* Coloring                                                            *)
(* ------------------------------------------------------------------ *)

(** Simplify + optimistic select.  Returns [Ok coloring] or [Error spills]
    with the registers chosen for spilling. *)
let color (g : graph) (cost : (Instr.reg, float) Hashtbl.t) ~k :
    ((Instr.reg, int) Hashtbl.t, IS.t) result =
  (* work on a mutable copy of the adjacency degrees *)
  let adj = Hashtbl.copy g.adj in
  let neighbors n = Option.value ~default:IS.empty (Hashtbl.find_opt adj n) in
  let present = ref g.nodes in
  let stack = ref [] in
  let remove n =
    IS.iter
      (fun m -> Hashtbl.replace adj m (IS.remove n (neighbors m)))
      (neighbors n);
    present := IS.remove n !present;
    stack := n :: !stack
  in
  while not (IS.is_empty !present) do
    (* pick a trivially colorable node, else the cheapest spill candidate *)
    let trivial =
      IS.fold
        (fun n acc ->
          match acc with
          | Some _ -> acc
          | None -> if IS.cardinal (neighbors n) < k then Some n else None)
        !present None
    in
    match trivial with
    | Some n -> remove n
    | None ->
      (* spill metric: cost / (1 + degree); lowest goes first (optimistic) *)
      let (victim, _) =
        IS.fold
          (fun n (best, bestm) ->
            let c = Option.value ~default:1.0 (Hashtbl.find_opt cost n) in
            let m = c /. float_of_int (1 + IS.cardinal (neighbors n)) in
            if m < bestm then (n, m) else (best, bestm))
          !present
          (IS.min_elt !present, infinity)
      in
      remove victim
  done;
  (* select *)
  let coloring = Hashtbl.create 64 in
  let spills = ref IS.empty in
  List.iter
    (fun n ->
      let taken =
        IS.fold
          (fun m acc ->
            match Hashtbl.find_opt coloring m with
            | Some c -> IS.add c acc
            | None -> acc)
          (g_neighbors g n) IS.empty
      in
      let rec first c = if IS.mem c taken then first (c + 1) else c in
      let c = first 0 in
      if c < k then Hashtbl.replace coloring n c
      else spills := IS.add n !spills)
    !stack;
  if IS.is_empty !spills then Ok coloring else Error !spills

(* ------------------------------------------------------------------ *)
(* Spill code                                                          *)
(* ------------------------------------------------------------------ *)

(** Insert spill code for each register in [victims]: a fresh spill tag per
    register, a store after every definition, a load into a fresh temporary
    before every use.  Every temporary created here is recorded in [temps]:
    spill temporaries must never be chosen as spill victims themselves, or
    the allocator would loop re-spilling its own fixes. *)
let insert_spill_code (p : Program.t) (f : Func.t) (victims : IS.t)
    (temps : IS.t ref) stats =
  let fresh_temp () =
    let r = Func.fresh_reg f in
    temps := IS.add r !temps;
    r
  in
  (* rematerialization: a victim whose single definition materializes a
     constant or an address is recomputed at each use instead of being
     stored to a stack slot — the classic Chaitin-Briggs refinement, and
     essential here so that constants hoisted by LICM do not turn register
     pressure into phantom memory traffic *)
  let def_count : (Instr.reg, int) Hashtbl.t = Hashtbl.create 64 in
  let def_instr : (Instr.reg, Instr.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace def_count r 1) f.Func.params;
  Func.iter_blocks
    (fun (b : Block.t) ->
      List.iter
        (fun i ->
          List.iter
            (fun d ->
              Hashtbl.replace def_count d
                (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d));
              Hashtbl.replace def_instr d i)
            (Instr.defs i))
        b.Block.instrs)
    f;
  let remat : (Instr.reg, Instr.t) Hashtbl.t = Hashtbl.create 8 in
  IS.iter
    (fun r ->
      if Hashtbl.find_opt def_count r = Some 1 then
        match Hashtbl.find_opt def_instr r with
        | Some ((Instr.Loadi _ | Instr.Loada _ | Instr.Loadfp _) as i) ->
          Hashtbl.replace remat r i;
          stats.remat_regs <- stats.remat_regs + 1
        | _ -> ())
    victims;
  let slot : (Instr.reg, Tag.t) Hashtbl.t = Hashtbl.create 8 in
  let slot_of r =
    match Hashtbl.find_opt slot r with
    | Some t -> t
    | None ->
      let t =
        Tag.Table.fresh p.Program.tags
          ~name:(Printf.sprintf "%s.spill.r%d" f.Func.name r)
          ~storage:(Tag.Spill f.Func.name) ~size:1 ~is_scalar:true ()
      in
      Hashtbl.replace slot r t;
      f.Func.local_tags <- f.Func.local_tags @ [ t ];
      stats.spilled_regs <- stats.spilled_regs + 1;
      t
  in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let out = ref [] in
      List.iter
        (fun i ->
          (* loads before uses *)
          let remap = Hashtbl.create 4 in
          List.iter
            (fun u ->
              if IS.mem u victims && not (Hashtbl.mem remap u) then begin
                let tmp = fresh_temp () in
                Hashtbl.replace remap u tmp;
                match Hashtbl.find_opt remat u with
                | Some def ->
                  out := Instr.map_defs (fun _ -> tmp) def :: !out
                | None -> out := Instr.Loads (tmp, slot_of u) :: !out
              end)
            (Instr.uses i);
          let i =
            if Hashtbl.length remap = 0 then i
            else
              Instr.map_uses
                (fun u -> Option.value ~default:u (Hashtbl.find_opt remap u))
                i
          in
          (* defs keep their register but the value is stored immediately;
             use a fresh def register to shorten the live range *)
          let stores = ref [] in
          let keep = ref true in
          let i =
            match Instr.defs i with
            | [ d ] when Hashtbl.mem remat d ->
              (* the rematerialized value is recomputed at each use; its
                 original (pure) definition is now dead and must go, or the
                 register would resurface unchanged every round *)
              keep := false;
              i
            | [ d ] when IS.mem d victims ->
              let tmp = fresh_temp () in
              stores := [ Instr.Stores (slot_of d, tmp) ];
              Instr.map_defs (fun _ -> tmp) i
            | _ -> i
          in
          if !keep then out := List.rev_append (i :: !stores) !out)
        b.Block.instrs;
      b.Block.instrs <- List.rev !out;
      (* spilled registers read by the terminator *)
      let tuses = Instr.term_uses b.Block.term in
      let remap = Hashtbl.create 2 in
      List.iter
        (fun u ->
          if IS.mem u victims && not (Hashtbl.mem remap u) then begin
            let tmp = fresh_temp () in
            Hashtbl.replace remap u tmp;
            let fill =
              match Hashtbl.find_opt remat u with
              | Some def -> Instr.map_defs (fun _ -> tmp) def
              | None -> Instr.Loads (tmp, slot_of u)
            in
            b.Block.instrs <- b.Block.instrs @ [ fill ]
          end)
        tuses;
      if Hashtbl.length remap > 0 then
        b.Block.term <-
          Instr.term_map_uses
            (fun u -> Option.value ~default:u (Hashtbl.find_opt remap u))
            b.Block.term)
    f;
  (* spilled parameters: store the incoming value at function entry *)
  let entry = Func.entry_block f in
  List.iter
    (fun prm ->
      if IS.mem prm victims then
        entry.Block.instrs <- Instr.Stores (slot_of prm, prm) :: entry.Block.instrs)
    f.Func.params

(* ------------------------------------------------------------------ *)
(* Rewrite with colors                                                 *)
(* ------------------------------------------------------------------ *)

let apply_coloring (f : Func.t) resolve (coloring : (Instr.reg, int) Hashtbl.t)
    ~k stats =
  let color_of r =
    let r = resolve r in
    match Hashtbl.find_opt coloring r with
    | Some c -> c
    | None ->
      (* a register that never appears live anywhere (dead def with no
         uses): give it color 0 *)
      0
  in
  Func.iter_blocks
    (fun (b : Block.t) ->
      b.Block.instrs <-
        List.filter_map
          (fun i ->
            let i' = Instr.map_regs color_of i in
            match i' with
            | Instr.Copy (d, s) when d = s ->
              stats.removed_copies <- stats.removed_copies + 1;
              None
            | _ -> Some i')
          b.Block.instrs;
      b.Block.term <- Instr.term_map_uses color_of b.Block.term)
    f;
  f.Func.params <- List.map color_of f.Func.params;
  f.Func.nreg <- k

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Allocate [f] onto [k] physical registers. *)
let alloc_func (p : Program.t) ~k (f : Func.t) : stats =
  if k < 4 then invalid_arg "Regalloc: need at least 4 registers";
  let stats = zero_stats () in
  let temps = ref IS.empty in
  let rec round n =
    if n > 64 then failwith "Regalloc: did not converge";
    stats.rounds <- stats.rounds + 1;
    let dom = Rp_cfg.Dominators.compute f in
    let forest = Rp_cfg.Loops.analyze f dom in
    let (g, cost, moves) = build f forest in
    let resolve = coalesce g moves ~k stats in
    (* fold costs through coalescing aliases; spill temporaries must never
       look cheap, or they would be re-spilled forever *)
    let merged_cost = Hashtbl.create 64 in
    Hashtbl.iter
      (fun r c ->
        let c = if IS.mem r !temps then infinity else c in
        let r = resolve r in
        Hashtbl.replace merged_cost r
          (c +. Option.value ~default:0. (Hashtbl.find_opt merged_cost r)))
      cost;
    match color g merged_cost ~k with
    | Ok coloring -> apply_coloring f resolve coloring ~k stats
    | Error spills ->
      (* spill the chosen victims (mapped back to every original register
         whose representative was spilled is unnecessary: victims are graph
         nodes, i.e. representatives; spill code must target the registers
         as they appear in the code, so expand through the alias map) *)
      let expand = Hashtbl.create 8 in
      IS.iter (fun v -> Hashtbl.replace expand v ()) spills;
      let victims = ref IS.empty in
      Func.iter_blocks
        (fun (b : Block.t) ->
          List.iter
            (fun i ->
              List.iter
                (fun r ->
                  if Hashtbl.mem expand (resolve r) then
                    victims := IS.add r !victims)
                (Instr.uses i @ Instr.defs i))
            b.Block.instrs;
          List.iter
            (fun r ->
              if Hashtbl.mem expand (resolve r) then victims := IS.add r !victims)
            (Instr.term_uses b.Block.term))
        f;
      List.iter
        (fun r ->
          if Hashtbl.mem expand (resolve r) then victims := IS.add r !victims)
        f.Func.params;
      insert_spill_code p f !victims temps stats;
      round (n + 1)
  in
  round 1;
  stats

(** Allocate every function in the program. *)
let alloc_program ?(k = 24) (p : Program.t) : stats =
  let total = zero_stats () in
  Program.iter_funcs
    (fun f ->
      let s = alloc_func p ~k f in
      total.spilled_regs <- total.spilled_regs + s.spilled_regs;
      total.coalesced <- total.coalesced + s.coalesced;
      total.removed_copies <- total.removed_copies + s.removed_copies;
      total.rounds <- total.rounds + s.rounds)
    p;
  total
