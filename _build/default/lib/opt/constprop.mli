(** Constant propagation and folding: single-definition iLoad registers are
    constants everywhere; a per-block sweep folds operators, copies, and
    conditional branches on known conditions.  Division/remainder by a
    known zero is preserved (the trap is behaviour).  Returns fold counts. *)

open Rp_ir

val fold_unop : Instr.unop -> Instr.const -> Instr.const option
val fold_binop : Instr.binop -> Instr.const -> Instr.const -> Instr.const option
val run_func : Func.t -> int
val run_program : Program.t -> int
