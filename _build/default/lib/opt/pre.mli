(** Availability-based redundant-load elimination (the PRE slot of the
    paper's optimizer): a dataflow over "register r holds memory tag t"
    facts, meet = intersection, kills on stores/calls/redefinition; an
    incoming-available load becomes a copy.  Stores never move.  Returns
    removal counts. *)

open Rp_ir

val run_func : Func.t -> int
val run_program : Program.t -> int
