lib/opt/constprop.mli: Func Instr Program Rp_ir
