lib/opt/pre.ml: Block Func Hashtbl Instr List Program Rp_ir Rp_support Tag Tagset
