lib/opt/dce.mli: Func Instr Program Rp_ir
