lib/opt/valnum.mli: Block Func Program Rp_ir
