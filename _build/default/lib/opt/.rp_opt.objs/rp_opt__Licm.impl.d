lib/opt/licm.ml: Block Func Hashtbl Instr List Option Program Rp_cfg Rp_ir Rp_support
