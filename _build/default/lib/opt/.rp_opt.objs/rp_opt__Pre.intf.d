lib/opt/pre.mli: Func Program Rp_ir
