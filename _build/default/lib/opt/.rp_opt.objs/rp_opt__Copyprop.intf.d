lib/opt/copyprop.mli: Func Program Rp_ir
