lib/opt/constprop.ml: Block Func Hashtbl Instr List Option Program Rp_ir
