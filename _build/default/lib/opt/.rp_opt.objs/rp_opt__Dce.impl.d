lib/opt/dce.ml: Block Func Instr List Program Rp_ir Rp_support
