lib/opt/dse.mli: Func Program Rp_ir
