lib/opt/valnum.ml: Block Func Hashtbl Instr List Option Program Rp_ir Tag Tagset
