lib/opt/liveness.ml: Array Block Func Hashtbl Instr List Option Rp_ir Rp_support
