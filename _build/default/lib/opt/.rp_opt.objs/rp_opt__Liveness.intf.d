lib/opt/liveness.mli: Block Func Instr Rp_ir Rp_support
