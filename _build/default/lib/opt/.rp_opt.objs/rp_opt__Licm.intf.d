lib/opt/licm.mli: Func Program Rp_ir
