(** Global dead-store elimination over memory tags (optional extension).

    The paper's §3.4 notes that its PRE "must treat stores more
    conservatively.  Extending the promoter could improve the behavior for
    these stores."  This pass is that extension in dataflow form: a
    backward analysis computes, at each point, the set of tags whose
    current memory value is {e dead} — certain to be overwritten by an
    explicit scalar store before any possible read — and deletes scalar
    stores into dead tags.

    Facts (a {!Tagset.t}, ⊤-capable):
    - at a [Ret] of [main], every tag is dead (nothing observes memory
      after the program ends — all output flows through [print_*]);
    - at a [Ret] of any function, that function's own frame tags are dead
      (the activation's storage disappears; a direct sStore always targets
      the current activation);
    - [sStore t] makes [t] dead {e above} it; [sLoad]/[cLoad t] makes [t]
      live; a pointer load makes its whole tag set live; a call makes its
      REF set live.  May-writes (pointer stores, call MODs) change nothing:
      they are not certain to overwrite.

    Off by default in the driver: the paper's compiler had no DSE, and
    leaving it on would silently improve both columns of every table.  The
    benchmark harness carries an ablation for it instead. *)

open Rp_ir

(** One backward pass: returns the number of stores removed. *)
let run_func_once (p : Program.t) (f : Func.t) : int =
  let is_main = f.Func.name = p.Program.main in
  (* deadness is a MUST property: its top element has to be a concrete
     all-tags set, because {!Tagset.diff} treats ⊤ conservatively in the
     may-direction (⊤ - x = ⊤), which would be unsound here *)
  let top = Tagset.of_list (Tag.Table.all p.Program.tags) in
  let frame_tags = Tagset.of_list f.Func.local_tags in
  let exit_dead = if is_main then top else frame_tags in
  (* backward dataflow: IN[b] = transfer(OUT[b]); OUT[b] = ∩ succ IN *)
  let in_ : (Instr.label, Tagset.t) Hashtbl.t = Hashtbl.create 32 in
  Func.iter_blocks (fun b -> Hashtbl.replace in_ b.Block.label top) f;
  let transfer_instr dead (i : Instr.t) =
    match i with
    | Instr.Stores (t, _) -> Tagset.add t dead
    | Instr.Loads (_, t) | Instr.Loadc (_, t) ->
      Tagset.diff dead (Tagset.singleton t)
    | Instr.Loadg (_, _, ts) -> Tagset.diff dead ts
    | Instr.Call c -> Tagset.diff dead c.Instr.refs
    | Instr.Storeg _ -> dead (* may-write: neither kills nor creates *)
    | _ -> dead
  in
  let out_of b =
    match (Func.block f b).Block.term with
    | Instr.Ret _ -> exit_dead
    | t ->
      List.fold_left
        (fun acc s ->
          Tagset.inter acc
            (Option.value ~default:top (Hashtbl.find_opt in_ s)))
        top (Instr.term_succs t)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun lbl ->
        let b = Func.block f lbl in
        let dead = ref (out_of lbl) in
        List.iter (fun i -> dead := transfer_instr !dead i) (List.rev b.Block.instrs);
        if not (Tagset.equal !dead (Hashtbl.find in_ lbl)) then begin
          Hashtbl.replace in_ lbl !dead;
          changed := true
        end)
      (List.rev (Func.rpo f))
  done;
  (* removal: walk each block backward with exact facts *)
  let removed = ref 0 in
  Func.iter_blocks
    (fun (b : Block.t) ->
      let dead = ref (out_of b.Block.label) in
      let kept =
        List.fold_left
          (fun acc i ->
            match i with
            | Instr.Stores (t, _) when Tagset.mem t !dead ->
              incr removed;
              acc
            | i ->
              dead := transfer_instr !dead i;
              i :: acc)
          []
          (List.rev b.Block.instrs)
      in
      b.Block.instrs <- kept)
    f;
  !removed

(** Iterate to a fixed point (removing a store can expose another). *)
let run_func (p : Program.t) (f : Func.t) : int =
  let total = ref 0 in
  let rec go guard =
    if guard = 0 then ()
    else
      let n = run_func_once p f in
      total := !total + n;
      if n > 0 then go (guard - 1)
  in
  go 16;
  !total

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func p f) 0 (Program.funcs p)
