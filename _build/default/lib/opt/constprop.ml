(** Constant propagation and folding.

    Two cooperating mechanisms:
    - {e global}: a register with exactly one definition in its function,
      where that definition is an iLoad, is a known constant everywhere
      (dominance of the def over its uses is the front end's invariant for
      well-defined programs; a use that could precede the def reads an
      undefined value, which only UB programs observe);
    - {e local}: a forward sweep through each block tracking register
      constancy, folding unary/binary operators, copies, and conditional
      branches on known conditions (branch folding feeds {!Rp_cfg.Clean},
      which then prunes the dead arm).

    Division and remainder by a known zero are left in place to preserve the
    runtime trap. *)

open Rp_ir

let fold_unop (op : Instr.unop) (c : Instr.const) : Instr.const option =
  match (op, c) with
  | Instr.Neg, Instr.Cint n -> Some (Instr.Cint (-n))
  | Instr.Fneg, Instr.Cflt f -> Some (Instr.Cflt (-.f))
  | Instr.Lnot, Instr.Cint n -> Some (Instr.Cint (if n = 0 then 1 else 0))
  | Instr.Bnot, Instr.Cint n -> Some (Instr.Cint (lnot n))
  | Instr.I2f, Instr.Cint n -> Some (Instr.Cflt (float_of_int n))
  | Instr.F2i, Instr.Cflt f -> Some (Instr.Cint (int_of_float f))
  | _ -> None

let fold_binop (op : Instr.binop) a b : Instr.const option =
  let module I = Instr in
  let bool v = Some (I.Cint (if v then 1 else 0)) in
  match (op, a, b) with
  | I.Add, I.Cint x, I.Cint y -> Some (I.Cint (x + y))
  | I.Sub, I.Cint x, I.Cint y -> Some (I.Cint (x - y))
  | I.Mul, I.Cint x, I.Cint y -> Some (I.Cint (x * y))
  | I.Div, I.Cint x, I.Cint y when y <> 0 -> Some (I.Cint (x / y))
  | I.Rem, I.Cint x, I.Cint y when y <> 0 -> Some (I.Cint (x mod y))
  | I.Shl, I.Cint x, I.Cint y -> Some (I.Cint (x lsl y))
  | I.Shr, I.Cint x, I.Cint y -> Some (I.Cint (x asr y))
  | I.Band, I.Cint x, I.Cint y -> Some (I.Cint (x land y))
  | I.Bor, I.Cint x, I.Cint y -> Some (I.Cint (x lor y))
  | I.Bxor, I.Cint x, I.Cint y -> Some (I.Cint (x lxor y))
  | I.Lt, I.Cint x, I.Cint y -> bool (x < y)
  | I.Le, I.Cint x, I.Cint y -> bool (x <= y)
  | I.Gt, I.Cint x, I.Cint y -> bool (x > y)
  | I.Ge, I.Cint x, I.Cint y -> bool (x >= y)
  | I.Eq, I.Cint x, I.Cint y -> bool (x = y)
  | I.Ne, I.Cint x, I.Cint y -> bool (x <> y)
  | I.Fadd, I.Cflt x, I.Cflt y -> Some (I.Cflt (x +. y))
  | I.Fsub, I.Cflt x, I.Cflt y -> Some (I.Cflt (x -. y))
  | I.Fmul, I.Cflt x, I.Cflt y -> Some (I.Cflt (x *. y))
  | I.Fdiv, I.Cflt x, I.Cflt y -> Some (I.Cflt (x /. y))
  | I.Flt, I.Cflt x, I.Cflt y -> bool (x < y)
  | I.Fle, I.Cflt x, I.Cflt y -> bool (x <= y)
  | I.Fgt, I.Cflt x, I.Cflt y -> bool (x > y)
  | I.Fge, I.Cflt x, I.Cflt y -> bool (x >= y)
  | I.Feq, I.Cflt x, I.Cflt y -> bool (x = y)
  | I.Fne, I.Cflt x, I.Cflt y -> bool (x <> y)
  | _ -> None

(** Algebraic identities that simplify to a copy of one operand. *)
let identity (op : Instr.binop) a_const b_const a b : Instr.reg option =
  let module I = Instr in
  match (op, a_const, b_const) with
  | I.Add, Some (I.Cint 0), _ -> Some b
  | I.Add, _, Some (I.Cint 0) -> Some a
  | I.Sub, _, Some (I.Cint 0) -> Some a
  | I.Mul, Some (I.Cint 1), _ -> Some b
  | I.Mul, _, Some (I.Cint 1) -> Some a
  | (I.Shl | I.Shr), _, Some (I.Cint 0) -> Some a
  | I.Bor, _, Some (I.Cint 0) -> Some a
  | I.Bor, Some (I.Cint 0), _ -> Some b
  | _ -> None

let run_func (f : Func.t) : int =
  let folded = ref 0 in
  (* global: single-def iLoad registers *)
  let def_count = Hashtbl.create 64 in
  let def_const = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace def_count r 2 (* params: unknown *))
    f.Func.params;
  Func.iter_instrs
    (fun _ i ->
      List.iter
        (fun d ->
          Hashtbl.replace def_count d
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d));
          match i with
          | Instr.Loadi (_, c) -> Hashtbl.replace def_const d c
          | _ -> Hashtbl.remove def_const d)
        (Instr.defs i))
    f;
  let global_const r =
    if Hashtbl.find_opt def_count r = Some 1 then Hashtbl.find_opt def_const r
    else None
  in
  Func.iter_blocks
    (fun (b : Block.t) ->
      (* local environment: register -> constant *)
      let env : (Instr.reg, Instr.const) Hashtbl.t = Hashtbl.create 16 in
      let const_of r =
        match Hashtbl.find_opt env r with
        | Some c -> Some c
        | None -> global_const r
      in
      let kill d = Hashtbl.remove env d in
      b.Block.instrs <-
        List.map
          (fun i ->
            let i' =
              match i with
              | Instr.Unop (op, d, s) -> (
                match Option.bind (const_of s) (fold_unop op) with
                | Some c ->
                  incr folded;
                  Instr.Loadi (d, c)
                | None -> i)
              | Instr.Binop (op, d, s1, s2) -> (
                let c1 = const_of s1 and c2 = const_of s2 in
                match (c1, c2) with
                | Some a, Some b -> (
                  match fold_binop op a b with
                  | Some c ->
                    incr folded;
                    Instr.Loadi (d, c)
                  | None -> i)
                | _ -> (
                  match identity op c1 c2 s1 s2 with
                  | Some src ->
                    incr folded;
                    Instr.Copy (d, src)
                  | None -> i))
              | Instr.Copy (d, s) -> (
                match const_of s with
                | Some c ->
                  incr folded;
                  Instr.Loadi (d, c)
                | None -> i)
              | i -> i
            in
            (* update the environment from the (possibly rewritten) instr *)
            (match i' with
            | Instr.Loadi (d, c) -> Hashtbl.replace env d c
            | _ -> List.iter kill (Instr.defs i'));
            i')
          b.Block.instrs;
      (* branch folding *)
      match b.Block.term with
      | Instr.Cbr (r, yes, no) -> (
        match const_of r with
        | Some (Instr.Cint n) ->
          incr folded;
          b.Block.term <- Instr.Jump (if n <> 0 then yes else no)
        | _ -> ())
      | _ -> ())
    f;
  !folded

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Program.funcs p)
