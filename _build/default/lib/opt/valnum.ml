(** Local value numbering with tag-aware load/store forwarding.

    Within each block:
    - pure expressions with operands carrying known value numbers are
      replaced by copies of the first register that computed them
      (commutative operators are canonicalized);
    - a scalar load observes the per-tag memory version, so a reload with no
      intervening store to that tag (or call that may modify it) becomes a
      copy — and a load directly after a store to the same tag forwards the
      stored register;
    - a store of a value that the tag's memory already holds is removed
      (redundant-store elimination);
    - general pointer loads participate under a coarse whole-memory epoch.

    This is the "value numbering" entry of the paper's optimization suite
    (§5), extended with the tag information that the IL carries. *)

open Rp_ir

type key =
  | Kconst of Instr.const
  | Kaddr of int  (** tag id *)
  | Kfunref of string
  | Kunop of Instr.unop * int
  | Kbinop of Instr.binop * int * int
  | Kload of int * int  (** tag id, memory version of that tag *)
  | Kloadc of int  (** const load: never invalidated *)
  | Kloadg of int * int  (** address vn, global memory epoch *)

let commutative = function
  | Instr.Add | Instr.Mul | Instr.Band | Instr.Bor | Instr.Bxor | Instr.Eq
  | Instr.Ne | Instr.Fadd | Instr.Fmul | Instr.Feq | Instr.Fne -> true
  | _ -> false

let run_block (b : Block.t) : int =
  let rewrites = ref 0 in
  let next_vn = ref 0 in
  let fresh_vn () = incr next_vn; !next_vn in
  (* register -> current value number *)
  let reg_vn : (Instr.reg, int) Hashtbl.t = Hashtbl.create 32 in
  (* expression key -> (vn, representative register) *)
  let table : (key, int * Instr.reg) Hashtbl.t = Hashtbl.create 32 in
  (* vn -> register currently holding it (for copy insertion) *)
  let holder : (int, Instr.reg) Hashtbl.t = Hashtbl.create 32 in
  let vn_of r =
    match Hashtbl.find_opt reg_vn r with
    | Some v -> v
    | None ->
      let v = fresh_vn () in
      Hashtbl.replace reg_vn r v;
      Hashtbl.replace holder v r;
      v
  in
  let set_reg r vn =
    Hashtbl.replace reg_vn r vn;
    if not (Hashtbl.mem holder vn) then Hashtbl.replace holder vn r
  in
  let holder_of vn r_default =
    match Hashtbl.find_opt holder vn with
    | Some r when Hashtbl.find_opt reg_vn r = Some vn -> Some r
    | _ ->
      ignore r_default;
      None
  in
  (* per-tag memory versions, a universal-invalidation counter folded into
     every version (so a ⊤-set store/call invalidates all tags without
     enumerating them), and a whole-memory epoch for pointer loads *)
  let tag_ver : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let univ_count = ref 0 in
  let epoch = ref 0 in
  let ver t =
    Option.value ~default:0 (Hashtbl.find_opt tag_ver t) + !univ_count
  in
  let bump t =
    Hashtbl.replace tag_ver t
      (1 + Option.value ~default:0 (Hashtbl.find_opt tag_ver t));
    incr epoch
  in
  (* what value number does memory at tag t hold? *)
  let mem_vn : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let invalidate_tags ts =
    if Tagset.is_univ ts then begin
      incr univ_count;
      incr epoch;
      Hashtbl.reset mem_vn
    end
    else
      Tagset.iter
        (fun (t : Tag.t) ->
          bump t.Tag.id;
          Hashtbl.remove mem_vn t.Tag.id)
        ts
  in
  let lookup key d =
    match Hashtbl.find_opt table key with
    | Some (vn, _) -> (
      match holder_of vn d with
      | Some r when r <> d ->
        incr rewrites;
        set_reg d vn;
        Some (Instr.Copy (d, r))
      | Some _ | None ->
        set_reg d vn;
        None)
    | None ->
      let vn = fresh_vn () in
      Hashtbl.replace table key (vn, d);
      Hashtbl.replace reg_vn d vn;
      Hashtbl.replace holder vn d;
      None
  in
  let kill_def d =
    (* d gets a new value; other registers keep theirs *)
    Hashtbl.remove reg_vn d
  in
  let out = ref [] in
  List.iter
    (fun i ->
      let emit x = out := x :: !out in
      match i with
      | Instr.Loadi (d, c) -> (
        kill_def d;
        match lookup (Kconst c) d with Some x -> emit x | None -> emit i)
      | Instr.Loada (d, t) -> (
        kill_def d;
        match lookup (Kaddr t.Tag.id) d with Some x -> emit x | None -> emit i)
      | Instr.Loadfp (d, n) -> (
        kill_def d;
        match lookup (Kfunref n) d with Some x -> emit x | None -> emit i)
      | Instr.Unop (op, d, s) -> (
        let vs = vn_of s in
        kill_def d;
        match lookup (Kunop (op, vs)) d with Some x -> emit x | None -> emit i)
      | Instr.Binop (op, d, s1, s2) -> (
        let v1 = vn_of s1 and v2 = vn_of s2 in
        let (v1, v2) =
          if commutative op && v2 < v1 then (v2, v1) else (v1, v2)
        in
        kill_def d;
        match lookup (Kbinop (op, v1, v2)) d with
        | Some x -> emit x
        | None -> emit i)
      | Instr.Copy (d, s) ->
        let vs = vn_of s in
        kill_def d;
        set_reg d vs;
        emit i
      | Instr.Loadc (d, t) -> (
        kill_def d;
        match lookup (Kloadc t.Tag.id) d with Some x -> emit x | None -> emit i)
      | Instr.Loads (d, t) -> (
        (* store-to-load forwarding first *)
        match Hashtbl.find_opt mem_vn t.Tag.id with
        | Some vn when Hashtbl.mem holder vn && holder_of vn d <> None ->
          let r = Option.get (holder_of vn d) in
          kill_def d;
          set_reg d vn;
          if r <> d then begin
            incr rewrites;
            emit (Instr.Copy (d, r))
          end
          else emit i
        | _ -> (
          kill_def d;
          match lookup (Kload (t.Tag.id, ver t.Tag.id)) d with
          | Some x -> emit x
          | None ->
            Hashtbl.replace mem_vn t.Tag.id (vn_of d);
            emit i))
      | Instr.Stores (t, s) ->
        let vs = vn_of s in
        if Hashtbl.find_opt mem_vn t.Tag.id = Some vs then begin
          (* memory already holds this value: redundant store *)
          incr rewrites
        end
        else begin
          bump t.Tag.id;
          Hashtbl.replace mem_vn t.Tag.id vs;
          emit i
        end
      | Instr.Loadg (d, a, ts) -> (
        let va = vn_of a in
        kill_def d;
        match lookup (Kloadg (va, !epoch)) d with
        | Some x -> emit x
        | None -> emit (Instr.Loadg (d, a, ts)))
      | Instr.Storeg (_, _, ts) ->
        invalidate_tags ts;
        emit i
      | Instr.Call c ->
        invalidate_tags c.Instr.mods;
        (* a call also produces a fresh value in its result *)
        Option.iter kill_def c.Instr.ret;
        Option.iter (fun d -> ignore (vn_of d : int)) c.Instr.ret;
        emit i
      | Instr.Phi _ -> emit i)
    b.Block.instrs;
  b.Block.instrs <- List.rev !out;
  !rewrites

let run_func (f : Func.t) : int =
  Func.fold_blocks (fun n b -> n + run_block b) 0 f

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Program.funcs p)
