(** Global copy propagation over single-definition registers.

    When register [d]'s only definition in the function is [Copy (d, s)] and
    [s] itself has at most one definition, every use of [d] can read [s]
    directly (in a well-defined execution the copy ran — and therefore [s]'s
    definition ran — before any use of [d]).  Chains of copies are resolved
    transitively.  The dead copies are left for {!Dce}.

    This is what keeps loop-invariant code motion honest: LICM parks hoisted
    copies of constants in the landing pad, and without this pass each one
    occupies its own register for the whole loop, manufacturing register
    pressure that the paper's compiler would not have had. *)

open Rp_ir

let run_func (f : Func.t) : int =
  let def_count : (Instr.reg, int) Hashtbl.t = Hashtbl.create 64 in
  let copy_src : (Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace def_count r 1) f.Func.params;
  Func.iter_instrs
    (fun _ i ->
      List.iter
        (fun d ->
          Hashtbl.replace def_count d
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d));
          match i with
          | Instr.Copy (_, s) when s <> d -> Hashtbl.replace copy_src d s
          | _ -> Hashtbl.remove copy_src d)
        (Instr.defs i))
    f;
  let single r = Option.value ~default:0 (Hashtbl.find_opt def_count r) <= 1 in
  (* resolve copy chains, guarding against cycles *)
  let memo : (Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  let rec resolve seen r =
    match Hashtbl.find_opt memo r with
    | Some x -> x
    | None ->
      let out =
        if List.mem r seen then r
        else
          match Hashtbl.find_opt copy_src r with
          | Some s when single r && single s -> resolve (r :: seen) s
          | _ -> r
      in
      Hashtbl.replace memo r out;
      out
  in
  let rewrites = ref 0 in
  let subst r =
    let r' = resolve [] r in
    if r' <> r then incr rewrites;
    r'
  in
  Func.iter_blocks
    (fun (b : Block.t) ->
      b.Block.instrs <- List.map (Instr.map_uses subst) b.Block.instrs;
      b.Block.term <- Instr.term_map_uses subst b.Block.term)
    f;
  !rewrites

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Program.funcs p)
