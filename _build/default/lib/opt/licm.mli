(** Loop-invariant code motion: hoists pure computations (no div/rem) and
    cLoads into landing pads, innermost loops first.  Loads of mutable
    memory are deliberately left in place — moving those is register
    promotion's job (see the implementation commentary and DESIGN.md §6.8).
    Returns hoist counts. *)

open Rp_ir

val run_func : Func.t -> int
val run_program : Program.t -> int
