(** Global dead-store elimination over memory tags (optional §3.4
    extension; see DESIGN.md §6b): backward must-deadness dataflow — a
    scalar store whose tag is certainly overwritten before any possible
    read is deleted.  Frame tags die at their function's returns;
    everything dies at [main]'s exit.  Returns removal counts. *)

open Rp_ir

val run_func : Program.t -> Func.t -> int
val run_program : Program.t -> int
