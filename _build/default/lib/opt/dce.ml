(** Dead-code elimination.

    Deletes side-effect-free instructions whose results are never used,
    iterating so that whole dead chains (address computations left behind by
    register promotion, unused loads, stale copies) disappear.  Loads count
    as removable: they have no observable side effect in our memory model.
    Stores, calls, and terminators are never removed. *)

open Rp_ir
module IS = Rp_support.Smaps.Int_set

(** Removable when dead: pure computations plus loads. *)
let removable = function
  | Instr.Loadi _ | Instr.Loada _ | Instr.Loadfp _ | Instr.Unop _
  | Instr.Binop _ | Instr.Copy _ | Instr.Loadc _ | Instr.Loads _
  | Instr.Loadg _ -> true
  | Instr.Stores _ | Instr.Storeg _ | Instr.Call _ | Instr.Phi _ -> false

let run_func (f : Func.t) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    (* union of all registers read anywhere *)
    let used = ref IS.empty in
    Func.iter_blocks
      (fun (b : Block.t) ->
        List.iter
          (fun i ->
            List.iter (fun u -> used := IS.add u !used) (Instr.uses i);
            match i with
            | Instr.Phi (_, srcs) ->
              List.iter (fun (_, r) -> used := IS.add r !used) srcs
            | _ -> ())
          b.Block.instrs;
        List.iter (fun u -> used := IS.add u !used) (Instr.term_uses b.Block.term))
      f;
    Func.iter_blocks
      (fun (b : Block.t) ->
        let keep =
          List.filter
            (fun i ->
              let dead =
                removable i
                && (match Instr.defs i with
                   | [ d ] -> not (IS.mem d !used)
                   | _ -> false)
                || match i with
                   | Instr.Copy (d, s) -> d = s (* no-op copy *)
                   | _ -> false
              in
              if dead then begin
                incr removed;
                changed := true
              end;
              not dead)
            b.Block.instrs
        in
        b.Block.instrs <- keep)
      f
  done;
  !removed

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Program.funcs p)
