(** Local value numbering with tag-aware load/store forwarding: redundant
    pure computations and reloads become copies, a load after a store to
    the same tag forwards the stored register, and a store of the value
    memory already holds is deleted.  Returns rewrite counts. *)

open Rp_ir

val run_block : Block.t -> int
val run_func : Func.t -> int
val run_program : Program.t -> int
