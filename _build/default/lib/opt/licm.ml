(** Loop-invariant code motion.

    Hoists into the loop's landing pad:
    - pure computations whose operands are invariant in the loop (division
      and remainder excluded — hoisting must not introduce a trap);
    - const loads (cLoad): "loop invariant code motion can remove a load of
      a constant value out of a loop" (§5).

    Ordinary scalar and pointer-based loads are {e not} hoisted, even when
    their tags are provably un-stored in the loop.  This matches the
    division of labour in the paper's compiler: moving loads of mutable
    memory out of loops is exactly what register promotion (and §3.3
    pointer promotion) does, and the paper's Figure-7 results — e.g. go's
    15.6% of loads removed {e by promotion} — only exist because LICM
    leaves those loads in place.

    Loops are processed innermost-first and each loop is iterated to a local
    fixed point, so chains of invariant computations migrate as far out as
    their operands allow.  Hoisting requires the destination register to
    have a single definition in the whole function (the front end's
    temporaries satisfy this); stores are never moved, matching the paper's
    conservatism.

    This pass is what the §3.3 pointer promotion "relies on ... to identify
    the loop-invariant base registers and place the computation of these
    registers outside a loop". *)

open Rp_ir
module Loops = Rp_cfg.Loops
module SS = Rp_support.Smaps.String_set

let run_func (f : Func.t) : int =
  Rp_cfg.Normalize.run f;
  let hoisted = ref 0 in
  let dom = Rp_cfg.Dominators.compute f in
  let forest = Loops.analyze f dom in
  let loops =
    (* innermost (deepest) first *)
    List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) forest.Loops.loops
  in
  List.iter
    (fun (l : Loops.loop) ->
      match Loops.preheader f l with
      | None -> ()
      | Some pad ->
        let changed = ref true in
        while !changed do
          changed := false;
          (* recompute def locations (hoisting moves defs out of the loop) *)
          let defs_in_loop = Hashtbl.create 32 in
          let def_count_fn = Hashtbl.create 64 in
          List.iter (fun r -> Hashtbl.replace def_count_fn r 1) f.Func.params;
          Func.iter_blocks
            (fun (b : Block.t) ->
              List.iter
                (fun i ->
                  List.iter
                    (fun d ->
                      Hashtbl.replace def_count_fn d
                        (1
                        + Option.value ~default:0
                            (Hashtbl.find_opt def_count_fn d));
                      if SS.mem b.Block.label l.Loops.blocks then
                        Hashtbl.replace defs_in_loop d
                          (1
                          + Option.value ~default:0
                              (Hashtbl.find_opt defs_in_loop d)))
                    (Instr.defs i))
                b.Block.instrs)
            f;
          let invariant_reg r = not (Hashtbl.mem defs_in_loop r) in
          let single_def_everywhere d =
            Hashtbl.find_opt def_count_fn d = Some 1
          in
          let hoistable (i : Instr.t) =
            let dst_ok =
              match Instr.defs i with
              | [ d ] -> single_def_everywhere d
              | _ -> false
            in
            dst_ok
            && List.for_all invariant_reg (Instr.uses i)
            &&
            match i with
            | Instr.Binop ((Instr.Div | Instr.Rem), _, _, _) -> false
            | Instr.Loadi _ | Instr.Loada _ | Instr.Loadfp _ | Instr.Unop _
            | Instr.Binop _ | Instr.Copy _ -> true
            | Instr.Loadc _ -> true
            | _ -> false
          in
          SS.iter
            (fun lbl ->
              let b = Func.block f lbl in
              let (stay, go) =
                List.partition (fun i -> not (hoistable i)) b.Block.instrs
              in
              if go <> [] then begin
                b.Block.instrs <- stay;
                List.iter
                  (fun i ->
                    Block.append (Func.block f pad) i;
                    incr hoisted)
                  go;
                changed := true
              end)
            l.Loops.blocks
        done)
    loops;
  !hoisted

let run_program (p : Program.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Program.funcs p)
