(** Dead-code elimination: deletes side-effect-free instructions (loads
    included) whose results are never used, iterating over dead chains.
    Stores and calls are never removed.  Returns removal counts. *)

open Rp_ir

val removable : Instr.t -> bool
val run_func : Func.t -> int
val run_program : Program.t -> int
