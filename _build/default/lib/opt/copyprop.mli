(** Global copy propagation over single-definition registers: when [d]'s
    only definition is [Copy (d, s)] and [s] has at most one definition,
    uses of [d] read [s] directly (chains resolve transitively); dead
    copies are left for {!Dce}.  Returns substitution counts. *)

open Rp_ir

val run_func : Func.t -> int
val run_program : Program.t -> int
