(** Block-level register liveness (backward iterative dataflow), with an
    instruction-grained view for interference construction. *)

open Rp_ir
module IS = Rp_support.Smaps.Int_set

type t

val compute : Func.t -> t
val live_in : t -> Instr.label -> IS.t
val live_out : t -> Instr.label -> IS.t

(** For each instruction index of the block, the registers live after it
    (terminator uses included after the last instruction). *)
val live_after_each : Func.t -> t -> Block.t -> IS.t array
