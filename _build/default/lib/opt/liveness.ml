(** Block-level register liveness (backward iterative dataflow).

    Used by dead-code elimination and, instruction-grained via
    {!live_before}, by the register allocator's interference construction. *)

open Rp_ir
module IS = Rp_support.Smaps.Int_set

type t = {
  live_in : (Instr.label, IS.t) Hashtbl.t;
  live_out : (Instr.label, IS.t) Hashtbl.t;
}

(** Per-block [use] (read before any write) and [def] (written) sets.  Phi
    reads are attributed to the predecessor edge, so a phi's arguments count
    as live-out of the predecessors, not live-in here; the allocator runs
    after SSA destruction so phis are absent on its inputs anyway. *)
let block_use_def (f : Func.t) (b : Block.t) =
  ignore f;
  let use = ref IS.empty in
  let def = ref IS.empty in
  let read r = if not (IS.mem r !def) then use := IS.add r !use in
  List.iter
    (fun i ->
      if not (Instr.is_phi i) then begin
        List.iter read (Instr.uses i);
        List.iter (fun d -> def := IS.add d !def) (Instr.defs i)
      end
      else List.iter (fun d -> def := IS.add d !def) (Instr.defs i))
    b.Block.instrs;
  List.iter read (Instr.term_uses b.Block.term);
  (!use, !def)

let compute (f : Func.t) : t =
  let live_in = Hashtbl.create 32 in
  let live_out = Hashtbl.create 32 in
  let use_def = Hashtbl.create 32 in
  Func.iter_blocks
    (fun b ->
      Hashtbl.replace use_def b.Block.label (block_use_def f b);
      Hashtbl.replace live_in b.Block.label IS.empty;
      Hashtbl.replace live_out b.Block.label IS.empty)
    f;
  (* phi-edge uses: argument r from pred p is live-out of p *)
  let phi_out = Hashtbl.create 16 in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Phi (_, srcs) ->
            List.iter
              (fun (p, r) ->
                Hashtbl.replace phi_out p
                  (IS.add r
                     (Option.value ~default:IS.empty (Hashtbl.find_opt phi_out p))))
              srcs
          | _ -> ())
        b.Block.instrs)
    f;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse layout order is a decent schedule for backward problems *)
    List.iter
      (fun lbl ->
        let b = Func.block f lbl in
        let out =
          List.fold_left
            (fun acc s -> IS.union acc (Hashtbl.find live_in s))
            (Option.value ~default:IS.empty (Hashtbl.find_opt phi_out lbl))
            (Func.succs f b)
        in
        let (use, def) = Hashtbl.find use_def lbl in
        let inn = IS.union use (IS.diff out def) in
        if not (IS.equal out (Hashtbl.find live_out lbl)) then begin
          Hashtbl.replace live_out lbl out;
          changed := true
        end;
        if not (IS.equal inn (Hashtbl.find live_in lbl)) then begin
          Hashtbl.replace live_in lbl inn;
          changed := true
        end)
      (List.rev f.Func.order)
  done;
  { live_in; live_out }

let live_out t lbl =
  Option.value ~default:IS.empty (Hashtbl.find_opt t.live_out lbl)

let live_in t lbl =
  Option.value ~default:IS.empty (Hashtbl.find_opt t.live_in lbl)

(** Walk a block backward producing, for each instruction index, the set of
    registers live {e after} that instruction.  Returns an array indexed by
    instruction position. *)
let live_after_each (f : Func.t) (t : t) (b : Block.t) : IS.t array =
  ignore f;
  let n = List.length b.Block.instrs in
  let arr = Array.make (max n 1) IS.empty in
  let live = ref (live_out t b.Block.label) in
  live := IS.union !live (IS.of_list (Instr.term_uses b.Block.term));
  let instrs = Array.of_list b.Block.instrs in
  for k = n - 1 downto 0 do
    arr.(k) <- !live;
    let i = instrs.(k) in
    live := IS.diff !live (IS.of_list (Instr.defs i));
    live := IS.union !live (IS.of_list (Instr.uses i))
  done;
  arr
