lib/ir/serial.ml: Block Buffer Func Hashtbl Instr List Option Printf Program Rp_support Scanf String Tag Tagset
