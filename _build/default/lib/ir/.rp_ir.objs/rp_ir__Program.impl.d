lib/ir/program.ml: Fmt Func Hashtbl Instr List Printf Rp_support Tag
