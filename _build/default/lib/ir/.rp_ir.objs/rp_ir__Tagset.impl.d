lib/ir/tagset.ml: Fmt Set Tag
