lib/ir/tagset.mli: Format Set Tag
