lib/ir/instr.ml: Fmt List Option Tag Tagset
