lib/ir/validate.ml: Block Fmt Func Hashtbl Instr List Program String
