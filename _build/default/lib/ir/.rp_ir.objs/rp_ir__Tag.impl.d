lib/ir/tag.ml: Fmt Int List
