(** IL functions: a register namespace, an entry label, and a labelled set of
    basic blocks kept in a deterministic layout order. *)

type t = {
  name : string;
  mutable params : Instr.reg list;
      (** incoming argument registers, in order; rewritten by the register
          allocator when parameters are assigned physical registers *)
  mutable nreg : int;  (** next fresh virtual register *)
  mutable nlab : int;  (** suffix for fresh label generation *)
  mutable entry : Instr.label;
  blocks : (Instr.label, Block.t) Hashtbl.t;
  mutable order : Instr.label list;  (** layout order; entry is first *)
  mutable local_tags : Tag.t list;
      (** tags for address-taken locals / local arrays / spill slots whose
          storage lives in this function's frame; the interpreter allocates
          one fresh base per tag per activation *)
}

let create ~name ~nparams =
  {
    name;
    params = List.init nparams (fun i -> i);
    nreg = nparams;
    nlab = 0;
    entry = "entry";
    blocks = Hashtbl.create 16;
    order = [];
    local_tags = [];
  }

let fresh_reg f =
  let r = f.nreg in
  f.nreg <- r + 1;
  r

let fresh_label ?(hint = "B") f =
  let rec next () =
    let l = Printf.sprintf "%s%d" hint f.nlab in
    f.nlab <- f.nlab + 1;
    if Hashtbl.mem f.blocks l then next () else l
  in
  next ()

let add_block f (b : Block.t) =
  if Hashtbl.mem f.blocks b.label then
    invalid_arg ("Func.add_block: duplicate label " ^ b.label);
  Hashtbl.replace f.blocks b.label b;
  f.order <- f.order @ [ b.label ]

(** Create and register a fresh empty block. *)
let new_block ?hint f =
  let l = fresh_label ?hint f in
  let b = Block.create l in
  add_block f b;
  b

let block f l =
  match Hashtbl.find_opt f.blocks l with
  | Some b -> b
  | None -> invalid_arg ("Func.block: no block " ^ l)

let block_opt f l = Hashtbl.find_opt f.blocks l
let mem_block f l = Hashtbl.mem f.blocks l

let remove_block f l =
  Hashtbl.remove f.blocks l;
  f.order <- List.filter (fun l' -> l' <> l) f.order

(** Blocks in layout order (entry first). *)
let blocks f = List.map (block f) f.order

let entry_block f = block f f.entry

let iter_blocks fn f = List.iter fn (blocks f)
let fold_blocks fn acc f = List.fold_left fn acc (blocks f)

(** Iterate every instruction of the function, in layout order. *)
let iter_instrs fn f =
  iter_blocks (fun (b : Block.t) -> List.iter (fn b) b.instrs) f

let instr_count f =
  fold_blocks (fun n (b : Block.t) -> n + Block.instr_count b + 1) 0 f

(** Reachable successor labels of a block that actually exist. *)
let succs f (b : Block.t) = List.filter (mem_block f) (Block.succs b)

(** Compute the predecessor map label -> label list, in layout order. *)
let preds f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace tbl l []) f.order;
  iter_blocks
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some ps -> Hashtbl.replace tbl s (b.label :: ps)
          | None -> ())
        (succs f b))
    f;
  Hashtbl.iter (fun l ps -> Hashtbl.replace tbl l (List.rev ps)) tbl;
  tbl

(** Reverse postorder over the CFG from the entry; unreachable blocks are
    excluded.  The canonical iteration order for forward dataflow. *)
let rpo f =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter dfs (succs f (block f l));
      out := l :: !out
    end
  in
  dfs f.entry;
  !out

(** Deep-copy a function (instructions are immutable and shared; blocks and
    tables are fresh).  Used to run destructive analyses (SSA construction
    for points-to) on a scratch copy. *)
let copy (f : t) : t =
  let g =
    {
      f with
      blocks = Hashtbl.create (Hashtbl.length f.blocks);
      order = f.order;
      local_tags = f.local_tags;
    }
  in
  Hashtbl.iter
    (fun l (b : Block.t) ->
      Hashtbl.replace g.blocks l
        { Block.label = b.Block.label; instrs = b.Block.instrs; term = b.Block.term })
    f.blocks;
  g

let pp ppf f =
  Fmt.pf ppf "@[<v>function %s(%a)  [%d regs]@,%a@]" f.name
    Fmt.(list ~sep:(any ", ") Instr.pp_reg)
    f.params f.nreg
    Fmt.(list ~sep:cut Block.pp)
    (blocks f)
