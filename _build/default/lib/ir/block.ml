(** Basic blocks: a label, a straight-line instruction list, and one
    terminator.  Blocks are mutable containers; optimization passes replace
    [instrs]/[term] wholesale. *)

type t = {
  label : Instr.label;
  mutable instrs : Instr.t list;
  mutable term : Instr.term;
}

let create ?(instrs = []) ?(term = Instr.Ret None) label =
  { label; instrs; term }

let succs b = Instr.term_succs b.term

(** Append an instruction at the end of the block body. *)
let append b i = b.instrs <- b.instrs @ [ i ]

(** Prepend an instruction at the start of the block body (after phis, which
    must stay first — callers in SSA form use [prepend_after_phis]). *)
let prepend b i = b.instrs <- i :: b.instrs

let prepend_after_phis b i =
  let phis, rest = List.partition Instr.is_phi b.instrs in
  b.instrs <- phis @ (i :: rest)

let instr_count b = List.length b.instrs

let pp ppf b =
  let pp_body ppf = function
    | [] -> ()
    | is -> Fmt.pf ppf "%a@," Fmt.(list ~sep:cut Instr.pp) is
  in
  Fmt.pf ppf "@[<v 2>%s:@,%a%a@]" b.label pp_body b.instrs Instr.pp_term
    b.term
