(** The intermediate language.

    A register-based, ILOC-style IL.  The memory-operation hierarchy follows
    Table 1 of the paper:

    {v
      Loadi            iLoad  — load a known constant value (immediate)
      Loadc            cLoad  — load an invariant, but unknown, value
      Loads / Stores   sLoad / sStore — scalar load/store, address is a tag
      Loadg / Storeg   Load / Store   — general pointer-based load/store
    v}

    Every pointer-based memory operation carries a {!Tagset.t}; every call
    carries MOD and REF tag sets summarizing its side effects. *)

type reg = int
(** Virtual (pre-allocation) or physical (post-allocation) register. *)

type label = string

type const = Cint of int | Cflt of float

type unop =
  | Neg  (** integer negate *)
  | Lnot  (** logical not: 0 -> 1, nonzero -> 0 *)
  | Bnot  (** bitwise complement *)
  | Fneg  (** float negate *)
  | I2f  (** int -> float conversion *)
  | F2i  (** float -> int truncation *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Feq | Fne

type target =
  | Direct of string
  | Indirect of reg
      (** call through a function pointer held in [reg]; the set of possible
          callees lives in the call record and is refined by analysis *)

type call = {
  target : target;
  args : reg list;
  ret : reg option;
  mods : Tagset.t;  (** tags the call may modify (JSR modified-tags list) *)
  refs : Tagset.t;  (** tags the call may reference *)
  targets : string list;
      (** possible callees of an [Indirect] target, filled by analysis;
          for [Direct f] this is [[f]] *)
  site : int;  (** unique call-site id; names the heap site for [malloc] *)
}

type t =
  | Loadi of reg * const  (** iLoad: materialize a known constant *)
  | Loada of reg * Tag.t  (** materialize the address of a memory object *)
  | Loadfp of reg * string  (** materialize a function pointer *)
  | Unop of unop * reg * reg  (** [Unop (op, dst, src)] *)
  | Binop of binop * reg * reg * reg  (** [Binop (op, dst, s1, s2)] *)
  | Copy of reg * reg  (** [Copy (dst, src)] — coalescable register copy *)
  | Loadc of reg * Tag.t  (** cLoad: load an invariant, unknown value *)
  | Loads of reg * Tag.t  (** sLoad: scalar load, address is the tag *)
  | Stores of Tag.t * reg  (** sStore: scalar store *)
  | Loadg of reg * reg * Tagset.t  (** [Loadg (dst, addr, tags)] *)
  | Storeg of reg * reg * Tagset.t  (** [Storeg (addr, src, tags)] *)
  | Call of call  (** JSR with MOD/REF tag lists *)
  | Phi of reg * (label * reg) list  (** SSA only; removed before execution *)

type term =
  | Jump of label
  | Cbr of reg * label * label  (** branch on nonzero *)
  | Ret of reg option

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(** Is this instruction a load in the accounting sense of the paper (cLoad,
    sLoad, or general Load)?  [Loadi]/[Loada]/[Loadfp] materialize constants
    and addresses without touching memory. *)
let is_load = function Loadc _ | Loads _ | Loadg _ -> true | _ -> false

let is_store = function Stores _ | Storeg _ -> true | _ -> false
let is_mem = function
  | Loadc _ | Loads _ | Loadg _ | Stores _ | Storeg _ -> true
  | _ -> false

let is_call = function Call _ -> true | _ -> false
let is_phi = function Phi _ -> true | _ -> false

(** Registers written by an instruction. *)
let defs = function
  | Loadi (d, _) | Loada (d, _) | Loadfp (d, _)
  | Unop (_, d, _) | Binop (_, d, _, _) | Copy (d, _)
  | Loadc (d, _) | Loads (d, _)
  | Loadg (d, _, _) -> [ d ]
  | Stores _ | Storeg _ -> []
  | Call c -> (match c.ret with Some r -> [ r ] | None -> [])
  | Phi (d, _) -> [ d ]

(** Registers read by an instruction.  Phi arguments are excluded here
    because their reads happen on the incoming edges; liveness and SSA
    handle them specially. *)
let uses = function
  | Loadi _ | Loada _ | Loadfp _ | Loadc _ | Loads _ -> []
  | Unop (_, _, s) | Copy (_, s) | Stores (_, s) -> [ s ]
  | Binop (_, _, s1, s2) -> [ s1; s2 ]
  | Loadg (_, a, _) -> [ a ]
  | Storeg (a, s, _) -> [ a; s ]
  | Call c -> (
    c.args @ match c.target with Indirect r -> [ r ] | Direct _ -> [])
  | Phi _ -> []

(** Rebuild an instruction with every register (defs and uses) renamed. *)
let map_regs f = function
  | Loadi (d, c) -> Loadi (f d, c)
  | Loada (d, t) -> Loada (f d, t)
  | Loadfp (d, n) -> Loadfp (f d, n)
  | Unop (op, d, s) -> Unop (op, f d, f s)
  | Binop (op, d, s1, s2) -> Binop (op, f d, f s1, f s2)
  | Copy (d, s) -> Copy (f d, f s)
  | Loadc (d, t) -> Loadc (f d, t)
  | Loads (d, t) -> Loads (f d, t)
  | Stores (t, s) -> Stores (t, f s)
  | Loadg (d, a, ts) -> Loadg (f d, f a, ts)
  | Storeg (a, s, ts) -> Storeg (f a, f s, ts)
  | Call c ->
    Call
      {
        c with
        args = List.map f c.args;
        ret = Option.map f c.ret;
        target =
          (match c.target with
          | Direct n -> Direct n
          | Indirect r -> Indirect (f r));
      }
  | Phi (d, srcs) -> Phi (f d, List.map (fun (l, r) -> (l, f r)) srcs)

(** Rename only the used (read) registers — needed by SSA renaming, where the
    definition gets a fresh name after the uses are rewritten. *)
let map_uses f = function
  | (Loadi _ | Loada _ | Loadfp _ | Loadc _ | Loads _) as i -> i
  | Unop (op, d, s) -> Unop (op, d, f s)
  | Binop (op, d, s1, s2) -> Binop (op, d, f s1, f s2)
  | Copy (d, s) -> Copy (d, f s)
  | Stores (t, s) -> Stores (t, f s)
  | Loadg (d, a, ts) -> Loadg (d, f a, ts)
  | Storeg (a, s, ts) -> Storeg (f a, f s, ts)
  | Call c ->
    Call
      {
        c with
        args = List.map f c.args;
        target =
          (match c.target with
          | Direct n -> Direct n
          | Indirect r -> Indirect (f r));
      }
  | Phi (d, srcs) -> Phi (d, srcs)

let map_defs f = function
  | Loadi (d, c) -> Loadi (f d, c)
  | Loada (d, t) -> Loada (f d, t)
  | Loadfp (d, n) -> Loadfp (f d, n)
  | Unop (op, d, s) -> Unop (op, f d, s)
  | Binop (op, d, s1, s2) -> Binop (op, f d, s1, s2)
  | Copy (d, s) -> Copy (f d, s)
  | Loadc (d, t) -> Loadc (f d, t)
  | Loads (d, t) -> Loads (f d, t)
  | (Stores _ | Storeg _) as i -> i
  | Loadg (d, a, ts) -> Loadg (f d, a, ts)
  | Call c -> Call { c with ret = Option.map f c.ret }
  | Phi (d, srcs) -> Phi (f d, srcs)

let term_uses = function
  | Jump _ -> []
  | Cbr (r, _, _) -> [ r ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []

let term_map_uses f = function
  | Jump l -> Jump l
  | Cbr (r, a, b) -> Cbr (f r, a, b)
  | Ret (Some r) -> Ret (Some (f r))
  | Ret None -> Ret None

let term_succs = function
  | Jump l -> [ l ]
  | Cbr (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret _ -> []

let term_map_labels f = function
  | Jump l -> Jump (f l)
  | Cbr (r, a, b) -> Cbr (r, f a, f b)
  | Ret r -> Ret r

(* ------------------------------------------------------------------ *)
(* Pure-expression classification (for value numbering / PRE / LICM)   *)
(* ------------------------------------------------------------------ *)

(** An instruction with no side effects whose result depends only on its
    register operands (and, for loads, on memory named by its tags). *)
let is_pure = function
  | Loadi _ | Loada _ | Loadfp _ | Unop _ | Binop _ | Copy _ -> true
  | Loadc _ | Loads _ | Loadg _ -> false (* pure given untouched tags *)
  | Stores _ | Storeg _ | Call _ | Phi _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_const ppf = function
  | Cint i -> Fmt.int ppf i
  | Cflt f -> Fmt.pf ppf "%h" f

let pp_reg ppf r = Fmt.pf ppf "r%d" r

let unop_name = function
  | Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot" | Fneg -> "fneg"
  | I2f -> "i2f" | F2i -> "f2i"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Shl -> "shl" | Shr -> "shr" | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Lt -> "cmplt" | Le -> "cmple" | Gt -> "cmpgt" | Ge -> "cmpge"
  | Eq -> "cmpeq" | Ne -> "cmpne"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Flt -> "fcmplt" | Fle -> "fcmple" | Fgt -> "fcmpgt" | Fge -> "fcmpge"
  | Feq -> "fcmpeq" | Fne -> "fcmpne"

let pp ppf = function
  | Loadi (d, c) -> Fmt.pf ppf "%a <- iLoad %a" pp_reg d pp_const c
  | Loada (d, t) -> Fmt.pf ppf "%a <- addr [%a]" pp_reg d Tag.pp t
  | Loadfp (d, n) -> Fmt.pf ppf "%a <- fnptr @%s" pp_reg d n
  | Unop (op, d, s) -> Fmt.pf ppf "%a <- %s %a" pp_reg d (unop_name op) pp_reg s
  | Binop (op, d, s1, s2) ->
    Fmt.pf ppf "%a <- %s %a, %a" pp_reg d (binop_name op) pp_reg s1 pp_reg s2
  | Copy (d, s) -> Fmt.pf ppf "%a <- cp %a" pp_reg d pp_reg s
  | Loadc (d, t) -> Fmt.pf ppf "%a <- cLoad [%a]" pp_reg d Tag.pp t
  | Loads (d, t) -> Fmt.pf ppf "%a <- sLoad [%a]" pp_reg d Tag.pp t
  | Stores (t, s) -> Fmt.pf ppf "sStore [%a] %a" Tag.pp t pp_reg s
  | Loadg (d, a, ts) ->
    Fmt.pf ppf "%a <- Load %a %a" pp_reg d Tagset.pp ts pp_reg a
  | Storeg (a, s, ts) ->
    Fmt.pf ppf "Store %a %a <- %a" Tagset.pp ts pp_reg a pp_reg s
  | Call c ->
    let callee ppf = function
      | Direct n -> Fmt.string ppf n
      | Indirect r -> Fmt.pf ppf "*%a" pp_reg r
    in
    Fmt.pf ppf "%ajsr %a(%a) mods=%a refs=%a"
      (fun ppf -> function
        | Some r -> Fmt.pf ppf "%a <- " pp_reg r
        | None -> ())
      c.ret callee c.target
      Fmt.(list ~sep:(any ", ") pp_reg)
      c.args Tagset.pp c.mods Tagset.pp c.refs
  | Phi (d, srcs) ->
    Fmt.pf ppf "%a <- phi %a" pp_reg d
      Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string pp_reg))
      srcs

let pp_term ppf = function
  | Jump l -> Fmt.pf ppf "jump %s" l
  | Cbr (r, a, b) -> Fmt.pf ppf "cbr %a ? %s : %s" pp_reg r a b
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some r) -> Fmt.pf ppf "ret %a" pp_reg r
