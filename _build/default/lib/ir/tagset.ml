(** Sets of memory tags, with an explicit top element.

    Before interprocedural analysis runs, the front end "must behave
    conservatively and assume that an operation may reference any memory
    location" — represented here as [Univ].  MOD/REF analysis replaces every
    [Univ] with a concrete set, so the optimizer and the promoter only ever
    iterate concrete sets. *)

module S = Set.Make (Tag)

type t = Univ | Set of S.t

let empty = Set S.empty
let univ = Univ
let singleton t = Set (S.singleton t)
let of_list ts = Set (S.of_list ts)

let is_univ = function Univ -> true | Set _ -> false
let is_empty = function Univ -> false | Set s -> S.is_empty s

let mem tag = function Univ -> true | Set s -> S.mem tag s

let add tag = function Univ -> Univ | Set s -> Set (S.add tag s)

let union a b =
  match (a, b) with
  | Univ, _ | _, Univ -> Univ
  | Set a, Set b -> Set (S.union a b)

let inter a b =
  match (a, b) with
  | Univ, x | x, Univ -> x
  | Set a, Set b -> Set (S.inter a b)

(** [diff a b]: when [b] is [Univ] the result is empty; when [a] is [Univ]
    the (sound, conservative) result is [Univ]. *)
let diff a b =
  match (a, b) with
  | _, Univ -> Set S.empty
  | Univ, _ -> Univ
  | Set a, Set b -> Set (S.diff a b)

let subset a b =
  match (a, b) with
  | _, Univ -> true
  | Univ, Set _ -> false
  | Set a, Set b -> S.subset a b

let equal a b =
  match (a, b) with
  | Univ, Univ -> true
  | Set a, Set b -> S.equal a b
  | _ -> false

(** Cardinality; [None] for the universe. *)
let cardinal = function Univ -> None | Set s -> Some (S.cardinal s)

(** The unique element of a singleton set, if any. *)
let as_singleton = function
  | Univ -> None
  | Set s -> if S.cardinal s = 1 then Some (S.choose s) else None

(** Fold over a concrete set.  Raises [Invalid_argument] on [Univ]: passes
    that iterate tag sets must run after analysis has concretized them. *)
let fold f acc = function
  | Univ -> invalid_arg "Tagset.fold: universe"
  | Set s -> S.fold (fun tag acc -> f acc tag) s acc

let iter f = function
  | Univ -> invalid_arg "Tagset.iter: universe"
  | Set s -> S.iter f s

let elements = function
  | Univ -> invalid_arg "Tagset.elements: universe"
  | Set s -> S.elements s

let exists f = function Univ -> true | Set s -> S.exists f s
let for_all f = function Univ -> false | Set s -> S.for_all f s
let filter f = function Univ -> Univ | Set s -> Set (S.filter f s)

(** [disjoint a b] — never true when either side is the universe and the
    other is non-empty. *)
let disjoint a b = is_empty (inter a b)

let pp ppf = function
  | Univ -> Fmt.string ppf "[*]"
  | Set s ->
    Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") Tag.pp) (S.elements s)
