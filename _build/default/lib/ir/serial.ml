(** Textual IL serialization: an exact, machine-readable round trip for
    whole programs.

    The pretty-printers in {!Instr}/{!Func}/{!Program} are for humans; this
    module defines a stable line-oriented format that reads back to an
    identical program (same tag ids, registers, labels, tag sets, call
    sites), so passes can be tested against golden [.il] files and IL can
    be authored by hand.

    {v
      ; comment
      tag t0 "g" global scalar size=1
      tag t1 "a" global object size=10
      tag t2 "f.x" local:f scalar size=1 rec
      tag t3 "heap@0" heap:0 object size=0
      global t0 zero int
      global t1 words 1 2 3.5 0x1.8p1
      main main
      func main params= nreg=5 entry=entry
      block entry
        r0 = iload 42
        r1 = addr t1
        r2 = sload t0
        sstore t0 r2
        r3 = load r1 [t1]
        store r1 r3 [*]
        r4 = call sum(r1, r0) mods=[t0] refs=[*] targets=[sum] site=0
        cbr r4 B1 B2
      ...
      endfunc
    v}

    Floats are written as hexadecimal literals ([%h]) so the round trip is
    bit-exact. *)

let version = "regpromo-il 1"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let storage_str = function
  | Tag.Global -> "global"
  | Tag.Local f -> "local:" ^ f
  | Tag.Heap s -> Printf.sprintf "heap:%d" s
  | Tag.Spill f -> "spill:" ^ f

let const_str = function
  | Instr.Cint n -> string_of_int n
  | Instr.Cflt f -> Printf.sprintf "%h" f

let tagset_str = function
  | Tagset.Univ -> "[*]"
  | ts ->
    "["
    ^ String.concat " "
        (List.map (fun (t : Tag.t) -> Printf.sprintf "t%d" t.Tag.id)
           (Tagset.elements ts))
    ^ "]"

let instr_str (i : Instr.t) : string =
  let r = Printf.sprintf "r%d" in
  let t (tg : Tag.t) = Printf.sprintf "t%d" tg.Tag.id in
  match i with
  | Instr.Loadi (d, c) -> Printf.sprintf "%s = iload %s" (r d) (const_str c)
  | Instr.Loada (d, tg) -> Printf.sprintf "%s = addr %s" (r d) (t tg)
  | Instr.Loadfp (d, f) -> Printf.sprintf "%s = fnptr %s" (r d) f
  | Instr.Unop (op, d, s) ->
    Printf.sprintf "%s = un %s %s" (r d) (Instr.unop_name op) (r s)
  | Instr.Binop (op, d, a, b) ->
    Printf.sprintf "%s = bin %s %s %s" (r d) (Instr.binop_name op) (r a) (r b)
  | Instr.Copy (d, s) -> Printf.sprintf "%s = cp %s" (r d) (r s)
  | Instr.Loadc (d, tg) -> Printf.sprintf "%s = cload %s" (r d) (t tg)
  | Instr.Loads (d, tg) -> Printf.sprintf "%s = sload %s" (r d) (t tg)
  | Instr.Stores (tg, s) -> Printf.sprintf "sstore %s %s" (t tg) (r s)
  | Instr.Loadg (d, a, ts) ->
    Printf.sprintf "%s = load %s %s" (r d) (r a) (tagset_str ts)
  | Instr.Storeg (a, s, ts) ->
    Printf.sprintf "store %s %s %s" (r a) (r s) (tagset_str ts)
  | Instr.Call c ->
    let head =
      match c.Instr.ret with
      | Some d -> Printf.sprintf "%s = " (r d)
      | None -> ""
    in
    let callee =
      match c.Instr.target with
      | Instr.Direct n -> "call " ^ n
      | Instr.Indirect fr -> "callind " ^ r fr
    in
    Printf.sprintf "%s%s(%s) mods=%s refs=%s targets=[%s] site=%d" head
      callee
      (String.concat ", " (List.map r c.Instr.args))
      (tagset_str c.Instr.mods) (tagset_str c.Instr.refs)
      (String.concat " " c.Instr.targets)
      c.Instr.site
  | Instr.Phi (d, srcs) ->
    Printf.sprintf "%s = phi %s" (r d)
      (String.concat " "
         (List.map (fun (l, s) -> Printf.sprintf "%s:%s" l (r s)) srcs))

let term_str = function
  | Instr.Jump l -> "jump " ^ l
  | Instr.Cbr (c, a, b) -> Printf.sprintf "cbr r%d %s %s" c a b
  | Instr.Ret None -> "ret"
  | Instr.Ret (Some rr) -> Printf.sprintf "ret r%d" rr

(** Serialize a whole program. *)
let write (p : Program.t) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pr "; %s" version;
  List.iter
    (fun (tg : Tag.t) ->
      pr "tag t%d %S %s %s size=%d%s%s" tg.Tag.id tg.Tag.name
        (storage_str tg.Tag.storage)
        (if tg.Tag.is_scalar then "scalar" else "object")
        tg.Tag.size
        (if tg.Tag.is_const then " const" else "")
        (if tg.Tag.declared_in_recursive then " rec" else ""))
    (Tag.Table.all p.Program.tags);
  List.iter
    (fun ((tg : Tag.t), init) ->
      match init with
      | Program.Init_zero (Instr.Cint _) -> pr "global t%d zero int" tg.Tag.id
      | Program.Init_zero (Instr.Cflt _) -> pr "global t%d zero flt" tg.Tag.id
      | Program.Init_words ws ->
        pr "global t%d words %s" tg.Tag.id
          (String.concat " " (List.map const_str ws)))
    p.Program.globals;
  pr "main %s" p.Program.main;
  Program.iter_funcs
    (fun f ->
      pr "func %s params=%s nreg=%d entry=%s" f.Func.name
        (String.concat "," (List.map string_of_int f.Func.params))
        f.Func.nreg f.Func.entry;
      List.iter
        (fun (tg : Tag.t) -> pr "frame t%d" tg.Tag.id)
        f.Func.local_tags;
      Func.iter_blocks
        (fun (b : Block.t) ->
          pr "block %s" b.Block.label;
          List.iter (fun i -> pr "  %s" (instr_str i)) b.Block.instrs;
          pr "  %s" (term_str b.Block.term))
        f;
      pr "endfunc")
    p;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string
(** (line number, message) *)

let fail ln fmt = Printf.ksprintf (fun m -> raise (Parse_error (ln, m))) fmt

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_reg ln s =
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> n
    | None -> fail ln "bad register %S" s
  else fail ln "bad register %S" s

let parse_const ln s =
  match int_of_string_opt s with
  | Some n -> Instr.Cint n
  | None -> (
    match float_of_string_opt s with
    | Some f -> Instr.Cflt f
    | None -> fail ln "bad constant %S" s)

let unop_of_name ln = function
  | "neg" -> Instr.Neg | "lnot" -> Instr.Lnot | "bnot" -> Instr.Bnot
  | "fneg" -> Instr.Fneg | "i2f" -> Instr.I2f | "f2i" -> Instr.F2i
  | s -> fail ln "bad unop %S" s

let binop_of_name ln s =
  let table =
    [ "add", Instr.Add; "sub", Instr.Sub; "mul", Instr.Mul; "div", Instr.Div;
      "rem", Instr.Rem; "shl", Instr.Shl; "shr", Instr.Shr;
      "and", Instr.Band; "or", Instr.Bor; "xor", Instr.Bxor;
      "cmplt", Instr.Lt; "cmple", Instr.Le; "cmpgt", Instr.Gt;
      "cmpge", Instr.Ge; "cmpeq", Instr.Eq; "cmpne", Instr.Ne;
      "fadd", Instr.Fadd; "fsub", Instr.Fsub; "fmul", Instr.Fmul;
      "fdiv", Instr.Fdiv; "fcmplt", Instr.Flt; "fcmple", Instr.Fle;
      "fcmpgt", Instr.Fgt; "fcmpge", Instr.Fge; "fcmpeq", Instr.Feq;
      "fcmpne", Instr.Fne ]
  in
  match List.assoc_opt s table with
  | Some op -> op
  | None -> fail ln "bad binop %S" s

(** Parse a program written by {!write}. *)
let rec read (src : string) : Program.t =
  let p = Program.create () in
  let tag_by_id : (int, Tag.t) Hashtbl.t = Hashtbl.create 64 in
  let tag ln id_s =
    if String.length id_s >= 2 && id_s.[0] = 't' then
      match
        Option.bind
          (int_of_string_opt (String.sub id_s 1 (String.length id_s - 1)))
          (Hashtbl.find_opt tag_by_id)
      with
      | Some t -> t
      | None -> fail ln "unknown tag %S" id_s
    else fail ln "bad tag reference %S" id_s
  in
  let parse_tagset ln s =
    if s = "[*]" then Tagset.univ
    else if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']'
    then
      let inner = String.sub s 1 (String.length s - 2) in
      Tagset.of_list (List.map (tag ln) (split_ws inner))
    else fail ln "bad tag set %S" s
  in
  let max_site = ref (-1) in
  let cur_func : Func.t option ref = ref None in
  let cur_block : Block.t option ref = ref None in
  let finish_block () = cur_block := None in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = ';' then ()
      else
        let words = split_ws line in
        match words with
        | "tag" :: id_s :: rest ->
          (* the quoted name may contain spaces; recover it from the raw
             line between the first and last double quote *)
          let name =
            match (String.index_opt line '"', String.rindex_opt line '"') with
            | Some i, Some j when j > i -> Scanf.sscanf
                (String.sub line i (j - i + 1)) "%S" (fun s -> s)
            | _ -> fail ln "tag line missing quoted name"
          in
          let rest =
            (* drop the quoted name token(s): a space-free name is a single
               token that both starts and ends with a quote *)
            match rest with
            | tok :: tl
              when String.length tok >= 2
                   && tok.[0] = '"'
                   && tok.[String.length tok - 1] = '"' ->
              tl
            | _ ->
              (* re-split the raw suffix after the closing quote *)
              let j = String.rindex line '"' in
              split_ws (String.sub line (j + 1) (String.length line - j - 1))
          in
          (match rest with
          | storage_s :: kind_s :: size_s :: flags ->
            let storage =
              match String.split_on_char ':' storage_s with
              | [ "global" ] -> Tag.Global
              | [ "local"; f ] -> Tag.Local f
              | [ "heap"; s ] -> Tag.Heap (int_of_string s)
              | [ "spill"; f ] -> Tag.Spill f
              | _ -> fail ln "bad storage %S" storage_s
            in
            let size =
              match String.split_on_char '=' size_s with
              | [ "size"; n ] -> int_of_string n
              | _ -> fail ln "bad size %S" size_s
            in
            let expected_id =
              match int_of_string_opt (String.sub id_s 1 (String.length id_s - 1)) with
              | Some n -> n
              | None -> fail ln "bad tag id %S" id_s
            in
            if Tag.Table.count p.Program.tags <> expected_id then
              fail ln "tag ids must be dense and in order (expected t%d)"
                (Tag.Table.count p.Program.tags);
            let t =
              Tag.Table.fresh p.Program.tags ~name ~storage ~size
                ~is_scalar:(kind_s = "scalar")
                ~is_const:(List.mem "const" flags)
                ~declared_in_recursive:(List.mem "rec" flags) ()
            in
            (match storage with
            | Tag.Heap site ->
              Hashtbl.replace p.Program.heap_site_tags site t;
              if site > !max_site then max_site := site
            | _ -> ());
            Hashtbl.replace tag_by_id t.Tag.id t
          | _ -> fail ln "malformed tag line")
        | [ "global"; id_s; "zero"; "int" ] ->
          Program.add_global p (tag ln id_s) (Program.Init_zero (Instr.Cint 0))
        | [ "global"; id_s; "zero"; "flt" ] ->
          Program.add_global p (tag ln id_s) (Program.Init_zero (Instr.Cflt 0.))
        | "global" :: id_s :: "words" :: ws ->
          Program.add_global p (tag ln id_s)
            (Program.Init_words (List.map (parse_const ln) ws))
        | [ "main"; name ] -> p.Program.main <- name
        | [ "func"; name; params_s; nreg_s; entry_s ] ->
          let field prefix s =
            match String.split_on_char '=' s with
            | [ k; v ] when k = prefix -> v
            | _ -> fail ln "expected %s=... in %S" prefix s
          in
          let f = Func.create ~name ~nparams:0 in
          let params_v = field "params" params_s in
          f.Func.params <-
            (if params_v = "" then []
             else
               List.map int_of_string (String.split_on_char ',' params_v));
          f.Func.nreg <- int_of_string (field "nreg" nreg_s);
          f.Func.entry <- field "entry" entry_s;
          Program.add_func p f;
          cur_func := Some f
        | [ "frame"; id_s ] -> (
          match !cur_func with
          | Some f -> f.Func.local_tags <- f.Func.local_tags @ [ tag ln id_s ]
          | None -> fail ln "frame outside func")
        | [ "block"; label ] -> (
          finish_block ();
          match !cur_func with
          | Some f ->
            let b = Block.create label in
            Func.add_block f b;
            cur_block := Some b
          | None -> fail ln "block outside func")
        | [ "endfunc" ] ->
          finish_block ();
          cur_func := None
        | _ -> (
          let b =
            match !cur_block with
            | Some b -> b
            | None -> fail ln "instruction outside a block: %S" line
          in
          (* terminators *)
          match words with
          | [ "jump"; l ] -> b.Block.term <- Instr.Jump l
          | [ "cbr"; c; l1; l2 ] ->
            b.Block.term <- Instr.Cbr (parse_reg ln c, l1, l2)
          | [ "ret" ] -> b.Block.term <- Instr.Ret None
          | [ "ret"; rr ] -> b.Block.term <- Instr.Ret (Some (parse_reg ln rr))
          | [ "sstore"; t_s; s ] ->
            Block.append b (Instr.Stores (tag ln t_s, parse_reg ln s))
          | "store" :: a :: s :: ts_parts when ts_parts <> [] ->
            Block.append b
              (Instr.Storeg
                 ( parse_reg ln a,
                   parse_reg ln s,
                   parse_tagset ln (String.concat " " ts_parts) ))
          | d :: "=" :: rhs -> (
            let d = parse_reg ln d in
            match rhs with
            | [ "iload"; c ] -> Block.append b (Instr.Loadi (d, parse_const ln c))
            | [ "addr"; t_s ] -> Block.append b (Instr.Loada (d, tag ln t_s))
            | [ "fnptr"; f ] -> Block.append b (Instr.Loadfp (d, f))
            | [ "un"; op; s ] ->
              Block.append b (Instr.Unop (unop_of_name ln op, d, parse_reg ln s))
            | [ "bin"; op; a; bb ] ->
              Block.append b
                (Instr.Binop (binop_of_name ln op, d, parse_reg ln a, parse_reg ln bb))
            | [ "cp"; s ] -> Block.append b (Instr.Copy (d, parse_reg ln s))
            | [ "cload"; t_s ] -> Block.append b (Instr.Loadc (d, tag ln t_s))
            | [ "sload"; t_s ] -> Block.append b (Instr.Loads (d, tag ln t_s))
            | "load" :: a :: ts_parts when ts_parts <> [] ->
              Block.append b
                (Instr.Loadg
                   (d, parse_reg ln a, parse_tagset ln (String.concat " " ts_parts)))
            | "phi" :: srcs ->
              Block.append b
                (Instr.Phi
                   ( d,
                     List.map
                       (fun s ->
                         match String.split_on_char ':' s with
                         | [ l; rr ] -> (l, parse_reg ln rr)
                         | _ -> fail ln "bad phi source %S" s)
                       srcs ))
            | _ -> parse_call ln p max_site b (Some d) rhs
            )
          | rhs -> parse_call ln p max_site b None rhs))
    lines;
  (* keep fresh call-site ids beyond everything read back *)
  while Rp_support.Idgen.peek p.Program.sites <= !max_site do
    ignore (Rp_support.Idgen.fresh p.Program.sites)
  done;
  p

(* calls: [call f(r1, r2) mods=[..] refs=[..] targets=[..] site=N]
   or     [callind r9(r1) ...]; argument lists were written with ", "
   separators so commas may glue tokens — reparse from the raw text *)
and parse_call ln p max_site (b : Block.t) ret words =
  let line = String.concat " " words in
  let callee_part, rest =
    match String.index_opt line '(' with
    | Some i ->
      (String.sub line 0 i, String.sub line i (String.length line - i))
    | None -> fail ln "malformed call %S" line
  in
  let target =
    match split_ws callee_part with
    | [ "call"; n ] -> Instr.Direct n
    | [ "callind"; r ] -> Instr.Indirect (parse_reg ln r)
    | _ -> fail ln "malformed call head %S" callee_part
  in
  let close =
    match String.index_opt rest ')' with
    | Some i -> i
    | None -> fail ln "unclosed argument list"
  in
  let args_s = String.sub rest 1 (close - 1) in
  let args =
    String.split_on_char ',' args_s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (parse_reg ln)
  in
  let attrs = split_ws (String.sub rest (close + 1) (String.length rest - close - 1)) in
  (* attributes: mods=[..] refs=[..] targets=[..] site=N; tag sets may
     contain spaces, so scan bracket-aware over the raw attr string *)
  let attr_str = String.concat " " attrs in
  let find_attr key =
    let pat = key ^ "=" in
    match
      let rec search i =
        if i + String.length pat > String.length attr_str then None
        else if String.sub attr_str i (String.length pat) = pat then Some i
        else search (i + 1)
      in
      search 0
    with
    | None -> fail ln "missing %s= in call" key
    | Some i ->
      let start = i + String.length pat in
      if start < String.length attr_str && attr_str.[start] = '[' then begin
        match String.index_from_opt attr_str start ']' with
        | Some j -> String.sub attr_str start (j - start + 1)
        | None -> fail ln "unclosed bracket in %s=" key
      end
      else begin
        let j = ref start in
        while !j < String.length attr_str && attr_str.[!j] <> ' ' do incr j done;
        String.sub attr_str start (!j - start)
      end
  in
  let parse_tagset_local s =
    if s = "[*]" then Tagset.univ
    else
      let inner = String.sub s 1 (String.length s - 2) in
      Tagset.of_list
        (List.map
           (fun id_s ->
             match
               Option.bind
                 (int_of_string_opt
                    (String.sub id_s 1 (String.length id_s - 1)))
                 (fun id ->
                   List.find_opt
                     (fun (t : Tag.t) -> t.Tag.id = id)
                     (Tag.Table.all p.Program.tags))
             with
             | Some t -> t
             | None -> fail ln "unknown tag %S in call attr" id_s)
           (split_ws inner))
  in
  let mods = parse_tagset_local (find_attr "mods") in
  let refs = parse_tagset_local (find_attr "refs") in
  let targets_s = find_attr "targets" in
  let targets =
    split_ws (String.sub targets_s 1 (String.length targets_s - 2))
  in
  let site = int_of_string (find_attr "site") in
  if site > !max_site then max_site := site;
  Block.append b (Instr.Call { target; args; ret; mods; refs; targets; site })
