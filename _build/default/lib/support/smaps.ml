(** Shared instantiations of the standard containers, so every library agrees
    on the same concrete module (and so tests can build values directly). *)

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)
module String_set = Set.Make (String)
module String_map = Map.Make (String)

let pp_int_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements s)

let pp_string_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) (String_set.elements s)
