(** Classic union-find over dense integer elements with path compression and
    union by rank.  Used by the register allocator's coalescing phase and by
    the points-to analysis tests. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

(** [union uf a b] merges the classes of [a] and [b]; returns the new root. *)
let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then ra
  else if uf.rank.(ra) < uf.rank.(rb) then begin
    uf.parent.(ra) <- rb;
    rb
  end
  else if uf.rank.(ra) > uf.rank.(rb) then begin
    uf.parent.(rb) <- ra;
    ra
  end
  else begin
    uf.parent.(rb) <- ra;
    uf.rank.(ra) <- uf.rank.(ra) + 1;
    ra
  end

let same uf a b = find uf a = find uf b
