lib/support/idgen.ml:
