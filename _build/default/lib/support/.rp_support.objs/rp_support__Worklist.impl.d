lib/support/worklist.ml: Hashtbl List Queue
