lib/support/smaps.ml: Fmt Int Map Set String
