(** A FIFO worklist that never holds the same element twice.

    The standard driver for the iterative dataflow solvers (points-to,
    constant propagation, liveness) in this compiler. *)

type 'a t = { queue : 'a Queue.t; present : ('a, unit) Hashtbl.t }

let create () = { queue = Queue.create (); present = Hashtbl.create 64 }

(** [push wl x] enqueues [x] unless it is already pending. *)
let push wl x =
  if not (Hashtbl.mem wl.present x) then begin
    Hashtbl.replace wl.present x ();
    Queue.push x wl.queue
  end

let pop wl =
  match Queue.pop wl.queue with
  | x ->
    Hashtbl.remove wl.present x;
    Some x
  | exception Queue.Empty -> None

let is_empty wl = Queue.is_empty wl.queue

let of_list xs =
  let wl = create () in
  List.iter (push wl) xs;
  wl

(** [run wl f] pops elements and applies [f] until the list drains.  [f] may
    push further work. *)
let run wl f =
  let rec go () =
    match pop wl with
    | None -> ()
    | Some x ->
      f x;
      go ()
  in
  go ()
