(** The compilation pipeline in the paper's §5 order: analysis → register
    promotion (early) → scalar optimizer → register allocation → cleaning. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
}

val zero_stage_stats : unit -> stage_stats

(** Run the middle- and back-end on lowered IL; validates the result. *)
val optimize : ?config:Config.t -> Program.t -> stage_stats

(** Compile Mini-C source text. *)
val compile : ?config:Config.t -> string -> Program.t * stage_stats

(** Compile and execute. *)
val compile_and_run :
  ?config:Config.t ->
  ?fuel:int ->
  ?check_tags:bool ->
  string ->
  Program.t * stage_stats * Rp_exec.Interp.result
