lib/driver/config.ml: Fmt
