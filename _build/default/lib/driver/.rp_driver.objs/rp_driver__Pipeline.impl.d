lib/driver/pipeline.ml: Config Program Rp_analysis Rp_cfg Rp_core Rp_exec Rp_ir Rp_irgen Rp_opt Rp_regalloc Validate
