lib/driver/pipeline.mli: Config Program Rp_exec Rp_ir
