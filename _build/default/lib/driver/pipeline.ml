(** The compilation pipeline, in the paper's §5 order: front end →
    interprocedural analysis → register promotion (early) → value numbering,
    partial redundancy elimination, constant propagation, loop invariant
    code motion, dead code elimination → register allocation → block
    cleaning. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
}

let zero_stage_stats () =
  {
    promoted = 0;
    throttled = 0;
    ptr_promoted = 0;
    hoisted = 0;
    vn_rewrites = 0;
    pre_removed = 0;
    folded = 0;
    dce_removed = 0;
    dse_removed = 0;
    spilled = 0;
    coalesced = 0;
  }

(** Run the middle- and back-end on an already-lowered program. *)
let optimize ?(config = Config.default) (p : Program.t) : stage_stats =
  let s = zero_stage_stats () in
  Rp_cfg.Clean.run_program p;
  (* interprocedural analysis *)
  (match config.Config.analysis with
  | Config.Anone -> ()
  | Config.Amodref -> ignore (Rp_analysis.Modref.run p : Rp_analysis.Modref.t)
  | Config.Asteens ->
    ignore (Rp_analysis.Steensgaard.run p : Rp_analysis.Steensgaard.t)
  | Config.Apointer ->
    ignore (Rp_analysis.Pointsto.run p : Rp_analysis.Pointsto.t));
  (* register promotion, "in the early phases of optimization" *)
  if config.Config.promote then begin
    let pressure_budget =
      if config.Config.throttle then Some config.Config.k else None
    in
    let st =
      Rp_core.Promotion.promote_program ~always_store:config.Config.always_store
        ?pressure_budget p
    in
    s.promoted <- st.Rp_core.Promotion.promoted_tags;
    s.throttled <- st.Rp_core.Promotion.throttled_tags
  end;
  if config.Config.optimize then begin
    s.vn_rewrites <- Rp_opt.Valnum.run_program p;
    s.folded <- Rp_opt.Constprop.run_program p;
    ignore (Rp_opt.Copyprop.run_program p : int);
    Rp_cfg.Clean.run_program p;
    s.hoisted <- Rp_opt.Licm.run_program p;
    ignore (Rp_opt.Copyprop.run_program p : int);
    (* §3.3 depends on LICM having hoisted base addresses *)
    if config.Config.ptr_promote then begin
      let st =
        Rp_core.Pointer_promotion.promote_program
          ~always_store:config.Config.always_store p
      in
      s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs
    end;
    s.pre_removed <- Rp_opt.Pre.run_program p;
    s.vn_rewrites <- s.vn_rewrites + Rp_opt.Valnum.run_program p;
    if config.Config.dse then
      s.dse_removed <- Rp_opt.Dse.run_program p;
    s.dce_removed <- Rp_opt.Dce.run_program p;
    Rp_cfg.Clean.run_program p
  end
  else if config.Config.ptr_promote then begin
    let st =
      Rp_core.Pointer_promotion.promote_program
        ~always_store:config.Config.always_store p
    in
    s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs
  end;
  if config.Config.regalloc then begin
    let st = Rp_regalloc.Regalloc.alloc_program ~k:config.Config.k p in
    s.spilled <- st.Rp_regalloc.Regalloc.spilled_regs;
    s.coalesced <- st.Rp_regalloc.Regalloc.coalesced;
    (* allocation can leave self-jump-free empty blocks and dead code *)
    ignore (Rp_opt.Dce.run_program p : int);
    Rp_cfg.Clean.run_program p
  end;
  Validate.assert_ok p;
  s

(** Compile Mini-C source text under [config]. *)
let compile ?(config = Config.default) (src : string) : Program.t * stage_stats
    =
  let p = Rp_irgen.Irgen.compile_source src in
  let s = optimize ~config p in
  (p, s)

(** Compile and execute; returns the program, pipeline stats, and the
    interpreter result (output, checksum, dynamic counts). *)
let compile_and_run ?(config = Config.default) ?fuel ?check_tags (src : string)
    : Program.t * stage_stats * Rp_exec.Interp.result =
  let (p, s) = compile ~config src in
  let r = Rp_exec.Interp.run ?fuel ?check_tags p in
  (p, s, r)
