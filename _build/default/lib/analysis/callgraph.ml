(** Program call graph with Tarjan SCC condensation.

    The MOD/REF analysis "identifies the strongly-connected components (SCC)
    of the call-graph, and calculates the tag set of each SCC ... Processing
    the SCCs in reverse topological order ensures that the tag set of any
    called function not in the current SCC has already been calculated."

    Indirect-call resolution is pluggable: the baseline assumes any
    {e addressed} function (conservative, as in the paper); the pointer
    analysis later narrows each call's target list. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

type t = {
  callees : (string, SS.t) Hashtbl.t;
      (** user-function callees only (builtins have empty summaries and do
          not matter for reachability) *)
  addressed : SS.t;  (** functions whose address is taken somewhere *)
  sccs : string list list;  (** reverse topological (callees first) *)
  scc_index : (string, int) Hashtbl.t;
  reaches : (string, SS.t) Hashtbl.t;
      (** transitive: functions reachable from each function (inclusive) *)
}

(** Compute the set of functions whose address is taken ([Loadfp]). *)
let addressed_functions (p : Program.t) : SS.t =
  let acc = ref SS.empty in
  Program.iter_funcs
    (fun f ->
      Func.iter_instrs
        (fun _ i ->
          match i with
          | Instr.Loadfp (_, n) when Program.func_opt p n <> None ->
            acc := SS.add n !acc
          | _ -> ())
        f)
    p;
  !acc

(** [build p ~targets_of] constructs the call graph, resolving each indirect
    call with [targets_of]. *)
let build (p : Program.t) ~(targets_of : Instr.call -> string list) : t =
  let callees = Hashtbl.create 16 in
  Program.iter_funcs
    (fun f ->
      let acc = ref SS.empty in
      Func.iter_instrs
        (fun _ i ->
          match i with
          | Instr.Call c ->
            let ts =
              match c.Instr.target with
              | Instr.Direct n -> [ n ]
              | Instr.Indirect _ -> targets_of c
            in
            List.iter
              (fun n ->
                if Program.func_opt p n <> None then acc := SS.add n !acc)
              ts
          | _ -> ())
        f;
      Hashtbl.replace callees f.Func.name !acc)
    p;
  (* Tarjan SCC *)
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    SS.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value ~default:SS.empty (Hashtbl.find_opt callees v));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      sccs := pop [] :: !sccs
    end
  in
  Program.iter_funcs
    (fun f -> if not (Hashtbl.mem index f.Func.name) then strongconnect f.Func.name)
    p;
  (* Tarjan identifies sink components first; reversing the accumulator
     (which holds last-identified first) restores identification order,
     i.e. reverse topological order: callees before callers. *)
  let sccs = List.rev !sccs in
  let scc_index = Hashtbl.create 16 in
  List.iteri (fun i scc -> List.iter (fun f -> Hashtbl.replace scc_index f i) scc) sccs;
  (* transitive reachability, via the SCC DAG in reverse topological order *)
  let reaches = Hashtbl.create 16 in
  List.iter
    (fun scc ->
      let members = SS.of_list scc in
      let out = ref members in
      List.iter
        (fun f ->
          SS.iter
            (fun callee ->
              if not (SS.mem callee members) then
                out :=
                  SS.union !out
                    (Option.value ~default:(SS.singleton callee)
                       (Hashtbl.find_opt reaches callee)))
            (Option.value ~default:SS.empty (Hashtbl.find_opt callees f)))
        scc;
      List.iter (fun f -> Hashtbl.replace reaches f !out) scc)
    sccs;
  {
    callees;
    addressed = addressed_functions p;
    sccs;
    scc_index;
    reaches;
  }

(** Does [f] (transitively, reflexively) call [g]? *)
let reaches t f g =
  match Hashtbl.find_opt t.reaches f with
  | Some s -> SS.mem g s
  | None -> f = g

let callees_of t f =
  Option.value ~default:SS.empty (Hashtbl.find_opt t.callees f)

(** Baseline indirect-target resolution: "Indirect calls are conservatively
    assumed to target any addressed function." *)
let conservative_targets (p : Program.t) : Instr.call -> string list =
  let addr = addressed_functions p in
  fun _ -> SS.elements addr

(** Resolution using analysis-filled target lists, falling back to the
    conservative assumption when a call has none. *)
let recorded_targets (p : Program.t) : Instr.call -> string list =
  let addr = addressed_functions p in
  fun c ->
    match c.Instr.targets with [] -> SS.elements addr | ts -> ts
