lib/analysis/pointsto.mli: Func Hashtbl Instr Program Rp_ir Set Tag
