lib/analysis/modref.mli: Callgraph Format Func Hashtbl Instr Program Rp_ir Tag Tagset
