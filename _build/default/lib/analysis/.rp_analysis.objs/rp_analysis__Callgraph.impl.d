lib/analysis/callgraph.ml: Func Hashtbl Instr List Option Program Rp_ir Rp_support
