lib/analysis/modref.ml: Block Callgraph Fmt Func Hashtbl Instr Lazy List Option Program Rp_ir Rp_support Tag Tagset
