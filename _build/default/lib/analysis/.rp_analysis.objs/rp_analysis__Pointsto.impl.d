lib/analysis/pointsto.ml: Block Callgraph Func Hashtbl Instr List Modref Option Program Rp_ir Rp_minic Rp_ssa Set String Tag Tagset
