lib/analysis/steensgaard.mli: Instr Program Rp_ir Tag
