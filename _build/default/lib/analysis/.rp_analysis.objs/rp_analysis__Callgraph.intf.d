lib/analysis/callgraph.mli: Hashtbl Instr Program Rp_ir Rp_support
