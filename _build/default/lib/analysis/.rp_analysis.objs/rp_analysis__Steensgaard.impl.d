lib/analysis/steensgaard.ml: Block Callgraph Func Hashtbl Instr List Modref Option Program Rp_ir Rp_minic Rp_support String Tag Tagset
