(** Program call graph with Tarjan SCC condensation in reverse topological
    order (callees first) — the processing order MOD/REF needs. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

type t = {
  callees : (string, SS.t) Hashtbl.t;  (** user-function callees *)
  addressed : SS.t;  (** functions whose address is taken *)
  sccs : string list list;  (** reverse topological *)
  scc_index : (string, int) Hashtbl.t;
  reaches : (string, SS.t) Hashtbl.t;  (** transitive, reflexive *)
}

val addressed_functions : Program.t -> SS.t

(** Build the graph; [targets_of] resolves indirect calls. *)
val build : Program.t -> targets_of:(Instr.call -> string list) -> t

(** Does [f] (transitively, reflexively) call [g]? *)
val reaches : t -> string -> string -> bool

val callees_of : t -> string -> SS.t

(** "Indirect calls are conservatively assumed to target any addressed
    function." *)
val conservative_targets : Program.t -> Instr.call -> string list

(** Use analysis-recorded target lists, falling back to the conservative
    assumption for calls without one. *)
val recorded_targets : Program.t -> Instr.call -> string list
