bench/suite/programs.ml: List
