(** Native backend on the STREAM-style [triad] suite program: run the
    same post-regalloc IR through the interpreter and through the
    compiled-C backend, check every observable agrees bit for bit, and
    report the speedup.

    Degrades gracefully: without a working system C compiler the example
    prints the interpreter numbers and says why the native half was
    skipped.

    {v dune exec examples/native_triad.exe v} *)

open Rp_driver
module I = Rp_exec.Interp
module Native = Rp_backend.Native

let () =
  Fmt.pr "== native backend: STREAM-style triad at hardware speed ==@.@.";
  let prog = (Rp_suite.Programs.find "triad").Rp_suite.Programs.source in
  let config = Config.default in
  let compiled, stats = Pipeline.compile ~config prog in
  Fmt.pr "compiled [triad] under the default configuration: promoted=%d \
          hoisted=%d@.@."
    stats.Pipeline.promoted stats.Pipeline.hoisted;
  let t0 = Rp_support.Clock.now () in
  let ri = I.run compiled in
  let interp_ms = 1000. *. (Rp_support.Clock.now () -. t0) in
  Fmt.pr "interpreter: ops=%d loads=%d stores=%d checksum=%d  %.1f ms@."
    ri.I.total.I.ops ri.I.total.I.loads ri.I.total.I.stores ri.I.checksum
    interp_ms;
  match Native.find_cc () with
  | None ->
    Fmt.pr "@.native backend skipped: no working C compiler (probed `cc \
            --version`)@."
  | Some cc ->
    let timed = Native.run_timed ~cc compiled in
    let rn = timed.Native.result in
    Fmt.pr "native (%s): ops=%d loads=%d stores=%d checksum=%d  %.1f ms \
            (+%.0f ms cc)@."
      cc.Native.identity rn.I.total.I.ops rn.I.total.I.loads
      rn.I.total.I.stores rn.I.checksum timed.Native.exec_ms
      timed.Native.cc_ms;
    assert (ri.I.output = rn.I.output);
    assert (ri.I.checksum = rn.I.checksum);
    assert (ri.I.total = rn.I.total);
    assert (ri.I.per_func = rn.I.per_func);
    Fmt.pr
      "@.every observable agrees (output, checksum, total and per-function \
       counts);@.execution is %.1fx faster than interpretation.@."
      (interp_ms /. timed.Native.exec_ms)
