(** rpcc — the register-promotion C compiler driver.

    {v
      rpcc run file.c        compile + execute, print output and counts
      rpcc dump file.c       compile, print the final IL
      rpcc table file.c      the paper's 4-configuration comparison
      rpcc fuzz              fault-injection campaign on the pipeline
      rpcc gen-fuzz          generative differential testing vs an O0 reference
      rpcc reduce file.c     delta-debug an oracle failure to a minimal repro
      rpcc serve             crash-tolerant compile/run daemon (cached)
      rpcc client OP ...     send one request to a running daemon
    v}

    Exit codes (uniform across every subcommand): 0 success, 1 a finding —
    a runtime trap in the interpreted program, a differential divergence,
    or a fault-injection escape; 2 a usage or internal error — bad input,
    front-end rejection, invalid IL, compiler crash; 3 a resource limit —
    fuel, call depth, or wall-clock deadline exhausted; 130 interrupted
    (SIGINT), after flushing any campaign journal. *)

open Cmdliner
open Rp_driver

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Shared flags                                                        *)
(* ------------------------------------------------------------------ *)

let analysis_conv =
  Arg.enum
    [ ("none", Config.Anone); ("modref", Config.Amodref);
      ("steens", Config.Asteens); ("pointer", Config.Apointer) ]

let analysis_t =
  Arg.(
    value
    & opt analysis_conv Config.Amodref
    & info [ "analysis" ] ~docv:"KIND"
        ~doc:"Interprocedural analysis: none, modref, steens, or pointer.")

let promote_t =
  Arg.(
    value & opt bool true
    & info [ "promote" ] ~docv:"BOOL" ~doc:"Enable register promotion (§3.1).")

let ptr_promote_t =
  Arg.(
    value & flag
    & info [ "ptr-promote" ]
        ~doc:"Enable pointer-based promotion (§3.3).")

let always_store_t =
  Arg.(
    value & flag
    & info [ "always-store" ]
        ~doc:
          "Store every lifted tag at loop exits even if it was never stored \
           inside the loop (the paper's literal scheme).")

let throttle_t =
  Arg.(
    value & flag
    & info [ "throttle" ]
        ~doc:
          "Enable the pressure-aware promotion throttle (the paper's §7 \
           proposal): keep the least-referenced promotable values in memory \
           when a loop's estimated register pressure would exceed the \
           register count.")

let dse_t =
  Arg.(
    value & flag
    & info [ "dse" ]
        ~doc:
          "Enable global dead-store elimination over memory tags (a §3.4 \
           extension; not part of the paper's compiler).")

let opt_t =
  Arg.(
    value & opt bool true
    & info [ "opt" ] ~docv:"BOOL"
        ~doc:"Run the scalar optimizer (VN, const-prop, LICM, PRE, DCE).")

let regalloc_t =
  Arg.(
    value & opt bool true
    & info [ "regalloc" ] ~docv:"BOOL" ~doc:"Run the register allocator.")

let k_t =
  Arg.(
    value & opt int 24
    & info [ "k"; "registers" ] ~docv:"N" ~doc:"Physical register count.")

let verify_passes_t =
  Arg.(
    value & flag
    & info [ "verify-passes" ]
        ~doc:
          "Translation validation: check the IL after every optimization \
           pass and roll back (recording the pass as degraded in the stats) \
           any pass that produces ill-formed IL, instead of failing the \
           compile.")

let oracle_t =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:
          "Stronger translation validation (implies --verify-passes): \
           additionally execute the IL before and after every pass with \
           bounded fuel and roll back any pass that changes the program's \
           output or checksum, or unsoundly regresses its dynamic operation \
           count.")

let analysis_budget_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "analysis-budget" ] ~docv:"N"
        ~doc:
          "Cap the interprocedural analyses' fixpoint iterations.  An \
           exhausted budget degrades the compile to the conservative no-\
           analysis answer (reported as converged=false in the stats); it \
           never aborts it.")

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let config_t =
  let mk analysis promote ptr_promote always_store throttle dse optimize
      regalloc k verify_passes oracle analysis_budget =
    { Config.analysis; promote; ptr_promote; always_store; throttle; dse;
      optimize; regalloc; k; verify_passes; oracle; analysis_budget }
  in
  Term.(
    const mk $ analysis_t $ promote_t $ ptr_promote_t $ always_store_t
    $ throttle_t $ dse_t $ opt_t $ regalloc_t $ k_t $ verify_passes_t
    $ oracle_t $ analysis_budget_t)

(* Execution resource limits, shared by run and run-il. *)
let fuel_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Abort execution after N dynamic operations (exit code 3). \
           Default: 400M.")

let max_depth_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-depth" ] ~docv:"N"
        ~doc:
          "Abort execution when the call stack exceeds N frames (exit code \
           3).  Default: 100k.")

let exits =
  Cmd.Exit.info 0 ~doc:"on success."
  :: Cmd.Exit.info 1
       ~doc:
         "on a finding: a runtime trap in the interpreted program, a \
          differential divergence, or a fault-injection escape."
  :: Cmd.Exit.info 2
       ~doc:
         "on a usage or internal error: front-end rejection, invalid IL, \
          or a compiler crash."
  :: Cmd.Exit.info 3
       ~doc:
         "on a resource limit: execution fuel, call stack, or wall-clock \
          deadline exhausted (see $(b,--fuel), $(b,--max-depth), \
          $(b,--timeout))."
  :: Cmd.Exit.info 130
       ~doc:"when interrupted (SIGINT), after flushing any campaign journal."
  :: Cmd.Exit.defaults

let handle_errors f =
  try f () with
  | Rp_minic.Srcloc.Error (loc, msg) ->
    Fmt.epr "error: %s@." (Rp_minic.Srcloc.to_string (loc, msg));
    exit 2
  | Rp_ir.Serial.Parse_error (ln, msg) ->
    Fmt.epr "error: IL line %d: %s@." ln msg;
    exit 2
  | Rp_ir.Validate.Invalid (ctx, msg) ->
    Fmt.epr "error: invalid IL after %s:@.%s@." ctx msg;
    exit 2
  | Rp_exec.Interp.Resource_limit msg ->
    Fmt.epr "resource limit: %s@." msg;
    exit 3
  | Rp_exec.Value.Runtime_error msg ->
    Fmt.epr "runtime error: %s@." msg;
    exit 1
  | Stack_overflow ->
    Fmt.epr "error: compiler stack overflow@.";
    exit 2
  | Failure msg ->
    Fmt.epr "error: %s@." msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json

(** The [--stats-json] document: schema marker, the pipeline's stats
    (counters, fixpoint iterations, degradation/validation state, per-pass
    timings), the supervision layer's resilience counters, and the dynamic
    execution result.  Schema history: rpcc-stats/1 lacked the
    converged/degraded/validated_passes keys; rpcc-stats/2 lacked
    resilience; rpcc-stats/3 lacked the canonical [config_name] key
    (its [config] pretty-print does not distinguish [+ptrpromote]);
    rpcc-stats/4's resilience object lacked the fleet
    [failovers]/[respawns] counters. *)
let run_json config (st : Pipeline.stage_stats) resil
    (r : Rp_exec.Interp.result) =
  match Pipeline.stats_json config st with
  | Json.Obj fields ->
    Json.Obj
      (("schema", Json.Str "rpcc-stats/5")
       :: fields
      @ [
          ("resilience", Rp_support.Resilience.to_json resil);
          ( "result",
            Json.Obj
              [
                ("ops", Json.Int r.Rp_exec.Interp.total.Rp_exec.Interp.ops);
                ("loads", Json.Int r.Rp_exec.Interp.total.Rp_exec.Interp.loads);
                ( "stores",
                  Json.Int r.Rp_exec.Interp.total.Rp_exec.Interp.stores );
                ("checksum", Json.Int r.Rp_exec.Interp.checksum);
              ] );
        ])
  | j -> j

let run_cmd =
  let run config file quiet stats_json fuel max_depth timeout retries native
      cc_flags =
    handle_errors @@ fun () ->
    let src = read_file file in
    let resil = Rp_support.Resilience.create () in
    (* --native: same compile, but execution through the compiled-C
       backend — counts and trap behaviour are byte-identical to the
       interpreter, run time is the binary's.  Infrastructure failure
       (no cc, compile error, garbled trailer) is exit 2, never a
       silently different result. *)
    let native_cc =
      if not native then None
      else
        let flags =
          List.filter (fun f -> f <> "") (String.split_on_char ' ' cc_flags)
        in
        (* probe through the binary cache's identity rung: a warm rerun
           spawns no `cc --version` subprocess at all *)
        let cache =
          Rp_support.Cas.open_ (Rp_backend.Native.default_cache_dir ())
        in
        match Rp_backend.Native.find_cc ~cache ~flags () with
        | Some cc -> Some (cc, cache)
        | None ->
          Fmt.epr
            "error: --native needs a working C compiler (probed `cc \
             --version`)@.";
          exit 2
    in
    let attempt () =
      try
        match native_cc with
        | None ->
          Pipeline.compile_and_run ~config ?fuel ?max_depth ?deadline:timeout
            src
        | Some (cc, cache) ->
          let prog, st = Pipeline.compile ~config src in
          let key = Pipeline.cache_key ~config src in
          let r =
            Rp_backend.Native.run ?fuel ?max_depth ?deadline:timeout ~cache
              ~key ~cc prog
          in
          (prog, st, r)
      with
      | Rp_exec.Interp.Resource_limit m as e ->
        if timeout <> None && String.starts_with ~prefix:"external stop" m
        then Rp_support.Resilience.tick resil Rp_support.Resilience.Timeout;
        raise e
      | Rp_backend.Native.Error m ->
        Fmt.epr "error: native backend: %s@." m;
        exit 2
    in
    let (_, st, r) =
      if retries <= 0 then attempt ()
      else begin
        let policy =
          { Rp_support.Retry.default_policy with max_attempts = retries + 1 }
        in
        match
          Rp_support.Retry.with_backoff ~policy ~seed:0
            ~on_retry:(fun ~attempt:_ ~delay:_ _ ->
              Rp_support.Resilience.tick resil Rp_support.Resilience.Retry)
            attempt
        with
        | Ok v -> v
        | Error e -> raise e
      end
    in
    if stats_json then
      (* pure JSON on stdout; program output is suppressed so the document
         stays machine-parseable *)
      print_string (Json.to_string (run_json config st resil r))
    else begin
      if not quiet then print_string r.Rp_exec.Interp.output;
      Fmt.pr "; config: %a@." Config.pp config;
      Fmt.pr "; ops=%d loads=%d stores=%d checksum=%d@."
        r.Rp_exec.Interp.total.Rp_exec.Interp.ops
        r.Rp_exec.Interp.total.Rp_exec.Interp.loads
        r.Rp_exec.Interp.total.Rp_exec.Interp.stores r.Rp_exec.Interp.checksum;
      Fmt.pr "; promoted=%d ptr_promoted=%d hoisted=%d spilled=%d@."
        st.Pipeline.promoted st.Pipeline.ptr_promoted st.Pipeline.hoisted
        st.Pipeline.spilled;
      if Rp_support.Resilience.any resil then
        Fmt.pr "; resilience: %a@." Rp_support.Resilience.pp resil
    end
  in
  let quiet_t =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress program output.")
  in
  let stats_json_t =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:
            "Emit compile statistics (counters, analysis fixpoint \
             iterations, per-pass wall-clock timings), resilience \
             counters, and dynamic counts as a single JSON document \
             instead of the human-readable report.")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline for execution; exceeding it aborts with \
             exit code 3 (like fuel exhaustion) and is counted in the \
             stats' resilience object.")
  in
  let retries_t =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-attempt a failing compile+run up to N extra times with \
             exponential backoff before reporting the last error.  \
             Retries are counted in the stats' resilience object.")
  in
  let native_t =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Execute through the compiled-C backend: emit C from the \
             post-regalloc IR, compile it with the system C compiler \
             (binaries are cached), and run at hardware speed.  Output, \
             checksum, dynamic counts, and trap messages are identical \
             to the interpreter's.")
  in
  let cc_flags_t =
    Arg.(
      value & opt string "-O1"
      & info [ "cc-flags" ] ~docv:"FLAGS"
          ~doc:
            "Space-separated flags for the system C compiler under \
             $(b,--native) (part of the binary cache key).")
  in
  Cmd.v
    (Cmd.info "run" ~exits
       ~doc:"Compile and execute, reporting dynamic counts.")
    Term.(
      const run $ config_t $ file_t $ quiet_t $ stats_json_t $ fuel_t
      $ max_depth_t $ timeout_t $ retries_t $ native_t $ cc_flags_t)

let dump_cmd =
  let dump config file stage format =
    handle_errors @@ fun () ->
    let src = read_file file in
    let p =
      match stage with
      | `Front -> Rp_irgen.Irgen.compile_source src
      | `Final -> fst (Pipeline.compile ~config src)
    in
    match format with
    | `Pretty -> Fmt.pr "%a@." Rp_ir.Program.pp p
    | `Il -> print_string (Rp_ir.Serial.write p)
  in
  let stage_t =
    Arg.(
      value
      & opt (enum [ ("front", `Front); ("final", `Final) ]) `Final
      & info [ "stage" ] ~docv:"STAGE"
          ~doc:"Which IL to print: front (pre-optimization) or final.")
  in
  let format_t =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("il", `Il) ]) `Pretty
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: pretty (human-readable) or il (the exact \
             machine-readable serialization accepted by run-il).")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Compile and print the IL.")
    Term.(const dump $ config_t $ file_t $ stage_t $ format_t)

let run_il_cmd =
  let run file quiet fuel max_depth =
    handle_errors @@ fun () ->
    let p =
      try Rp_ir.Serial.read (read_file file)
      with Rp_ir.Serial.Parse_error (ln, msg) ->
        Fmt.epr "error: %s:%d: %s@." file ln msg;
        exit 2
    in
    Rp_ir.Validate.assert_ok ~ctx:"parse" p;
    let r = Rp_exec.Interp.run ?fuel ?max_depth p in
    if not quiet then print_string r.Rp_exec.Interp.output;
    Fmt.pr "; ops=%d loads=%d stores=%d checksum=%d@."
      r.Rp_exec.Interp.total.Rp_exec.Interp.ops
      r.Rp_exec.Interp.total.Rp_exec.Interp.loads
      r.Rp_exec.Interp.total.Rp_exec.Interp.stores r.Rp_exec.Interp.checksum
  in
  let file_il_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.il")
  in
  let quiet_t =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress program output.")
  in
  Cmd.v
    (Cmd.info "run-il" ~exits
       ~doc:"Execute a serialized IL file (as produced by dump --format il).")
    Term.(const run $ file_il_t $ quiet_t $ fuel_t $ max_depth_t)

let table_cmd =
  let table file k =
    handle_errors @@ fun () ->
    let src = read_file file in
    Fmt.pr "%-10s %-8s %10s %10s %10s %9s@." "metric" "analysis" "without"
      "with" "difference" "% removed";
    let results =
      List.map
        (fun (name, cfg) ->
          let cfg = { cfg with Config.k } in
          let (_, _, r) = Pipeline.compile_and_run ~config:cfg src in
          (name, r))
        Config.paper_grid
    in
    let find n = List.assoc n results in
    let row metric pick =
      List.iter
        (fun analysis ->
          let without = pick (find (analysis ^ "/without")) in
          let with_ = pick (find (analysis ^ "/with")) in
          let diff = without - with_ in
          let pct =
            if without = 0 then 0.
            else 100. *. float_of_int diff /. float_of_int without
          in
          Fmt.pr "%-10s %-8s %10d %10d %10d %9.2f@." metric analysis without
            with_ diff pct)
        [ "modref"; "pointer" ]
    in
    let total (r : Rp_exec.Interp.result) = r.Rp_exec.Interp.total in
    row "ops" (fun r -> (total r).Rp_exec.Interp.ops);
    row "stores" (fun r -> (total r).Rp_exec.Interp.stores);
    row "loads" (fun r -> (total r).Rp_exec.Interp.loads)
  in
  Cmd.v
    (Cmd.info "table" ~exits
       ~doc:
         "Run the paper's configuration-grid comparison (including the \
          §3.3 pointer-promotion cells) on one file.")
    Term.(const table $ file_t $ k_t)

(* The fuzz tools share one seed flag so every campaign — fault injection
   and generative — is replayed the same way. *)
let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "RNG seed for the campaign.  Printed in every failure report; \
           rerunning with the same seed reproduces the identical trial \
           sequence.")

let trials_t ~doc =
  Arg.(value & opt int 50 & info [ "trials"; "seeds" ] ~docv:"N" ~doc)

(* Both fuzz campaigns parallelize over trials with deterministic
   collection, so -j changes wall-clock time and nothing else. *)
let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run trials on $(docv) worker domains.  Reports, saved \
           reproducers, and exit codes are identical at every $(docv); \
           use 0 for the machine's recommended domain count.")

(* Uniform across serve, bench, fuzz, and gen-fuzz: 0 = auto, negative =
   usage error (exit 2), never a silent clamp. *)
let resolve_jobs j = Rp_support.Cli.jobs ~flag:"--jobs" j

(* Supervision flags shared by the campaign commands (fuzz, gen-fuzz). *)
let job_timeout_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "job-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-trial wall-clock deadline.  A trial over the deadline is \
           aborted (cooperatively when it is interpreting; by abandoning \
           and replacing its worker domain when it is wedged), retried \
           per $(b,--retries), then quarantined.  Quarantined trials are \
           reported on stderr and counted as inconclusive.")

let retries_campaign_t =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts for a trial that times out or crashes before it \
           is quarantined (default 1).")

let journal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append one fsynced line-JSON record per finished trial to \
           $(docv), so an interrupted or killed campaign can be resumed \
           with $(b,--resume) without losing completed work.")

let resume_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Replay the finished trials recorded in a previous campaign's \
           journal instead of re-running them, then run only the \
           remainder.  The final report is byte-identical to an \
           uninterrupted run.  Combine with $(b,--journal) $(docv) to \
           keep extending the same journal.")

(* SIGINT turns into cooperative cancellation: workers stop taking
   trials, in-flight journal records are already fsynced, and the
   command exits 130 with a resume hint. *)
let interrupted = Atomic.make false

let with_sigint f =
  let previous =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))
  in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint previous) f

let resume_hint journal =
  match journal with
  | Some p -> Printf.sprintf "; resume with --resume %s" p
  | None -> " (no --journal, completed work is lost)"

let fuzz_cmd =
  let fuzz seed seeds jobs job_timeout retries journal resume =
    handle_errors @@ fun () ->
    with_sigint @@ fun () ->
    let resil = Rp_support.Resilience.create () in
    let quarantined = ref [] in
    let report =
      Rp_fuzz.Faultgen.run ~seed ~seeds ~jobs:(resolve_jobs jobs)
        ?timeout:job_timeout ~retries ?journal ?resume ~resilience:resil
        ~cancel:(fun () -> Atomic.get interrupted)
        ~on_failure:(fun i f -> quarantined := (i, f) :: !quarantined)
        ()
    in
    if Atomic.get interrupted then begin
      Fmt.epr "interrupted after %d finished trials%s@."
        report.Rp_fuzz.Faultgen.trials (resume_hint journal);
      exit 130
    end;
    List.iter
      (fun (i, f) ->
        Fmt.epr "trial %d: %a@." i Rp_support.Pool.pp_job_failure f)
      (List.rev !quarantined);
    if Rp_support.Resilience.any resil then
      Fmt.epr "; resilience: %a@." Rp_support.Resilience.pp resil;
    Fmt.pr "%a" Rp_fuzz.Faultgen.pp_report report;
    let escapes = Rp_fuzz.Faultgen.total_escapes report in
    Fmt.pr "; seed=%d, %d trials, %d escapes@." seed
      report.Rp_fuzz.Faultgen.trials escapes;
    if escapes > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits
       ~doc:
         "Run a fault-injection campaign against the pipeline's isolation \
          and translation-validation machinery: corrupt the IL (dropped \
          stores, shrunk tag sets, dangling branch targets, out-of-range \
          registers) or raise inside a pass, and assert every fault is \
          contained.  Exits 1 if any fault escapes undetected.")
    Term.(
      const fuzz $ seed_t
      $ trials_t ~doc:"Number of fault-injection trials."
      $ jobs_t $ job_timeout_t $ retries_campaign_t $ journal_t $ resume_t)

(* ------------------------------------------------------------------ *)
(* Generative differential testing                                     *)
(* ------------------------------------------------------------------ *)

let mode_t =
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:
            "Disable the hardened pipeline during grid compiles: pure \
             end-to-end comparison against the O0 reference.")
  in
  let oracle =
    Arg.(
      value & flag
      & info [ "oracle-passes" ]
          ~doc:
            "Arm the full per-pass execution oracle during grid compiles \
             (catches unsound dynamic-count regressions and names the \
             offending pass; every guarded pass runs the program twice).")
  in
  let combine plain oracle =
    if oracle then Rp_fuzz.Difforacle.OraclePasses
    else if plain then Rp_fuzz.Difforacle.Plain
    else Rp_fuzz.Difforacle.Verify
  in
  Term.(const combine $ plain $ oracle)

let inject_t =
  let classes =
    List.map
      (fun c -> (Rp_fuzz.Faultgen.class_name c, c))
      Rp_fuzz.Faultgen.all_classes
  in
  Arg.(
    value
    & opt (some (enum classes)) None
    & info [ "inject" ] ~docv:"CLASS"
        ~doc:
          "Plant a fault of this class (e.g. drop_store) inside the first \
           guarded pass of every grid compile — never the reference.  For \
           demonstrating and testing the oracle end to end.")

let oracle_fuel_t =
  Arg.(
    value
    & opt int Rp_fuzz.Difforacle.default_fuel
    & info [ "fuel" ] ~docv:"N" ~doc:"Reference-run fuel for the oracle.")

let budget_t =
  Arg.(
    value & opt float 30.
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for reduction; timeouts are quarantined.")

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(** Shrink [src] against the signature of [target] and write the result
    next to [path]; shared by [gen-fuzz --reduce] and [rpcc reduce]. *)
let reduce_failure ~mode ~fuel ~inject ~budget ~path ~out
    (target : Rp_fuzz.Difforacle.failure) src =
  let module D = Rp_fuzz.Difforacle in
  let module Reduce = Rp_fuzz.Reduce in
  let deadline = Rp_support.Clock.now () +. budget in
  let predicate s =
    match D.check ~mode ~fuel ~deadline ?inject s with
    | D.Diverged fs
      when List.exists
             (fun (f : D.failure) ->
               f.D.config = target.D.config && f.D.cls = target.D.cls)
             fs ->
      Reduce.Fail
    | D.Inconclusive _ -> Reduce.Quarantine
    | _ -> Reduce.Pass
  in
  let r = Reduce.run ~budget ~predicate src in
  let out =
    match out with
    | Some o -> o
    | None ->
      (if Filename.check_suffix path ".c" then Filename.chop_suffix path ".c"
       else path)
      ^ ".min.c"
  in
  write_file out r.Reduce.reduced;
  Fmt.pr
    "reduced %d -> %d lines (%d candidates, %d accepted, %d quarantined%s) \
     -> %s@."
    r.Reduce.original_lines r.Reduce.reduced_lines r.Reduce.candidates
    r.Reduce.accepted r.Reduce.quarantined
    (if r.Reduce.deadline_hit then ", budget hit" else "")
    out;
  r

let gen_fuzz_cmd =
  let gen_fuzz seed trials mode inject fuel do_reduce budget out_dir jobs
      job_timeout retries journal resume native =
    handle_errors @@ fun () ->
    with_sigint @@ fun () ->
    let module D = Rp_fuzz.Difforacle in
    (try Sys.mkdir out_dir 0o755 with Sys_error _ -> ());
    let native_cc =
      if not native then None
      else
        match Rp_backend.Native.find_cc () with
        | Some cc -> Some cc
        | None ->
          Fmt.epr
            "error: --native needs a working C compiler (probed `cc \
             --version`)@.";
          exit 2
    in
    let inject = Option.map (fun c -> (c, seed)) inject in
    let resil = Rp_support.Resilience.create () in
    (* Resume: replay finished trials from a prior (interrupted)
       campaign's journal.  A record stores only (trial, outcome) —
       sources are regenerated from (seed, trial) on demand, so the
       journal stays small and replay is exact. *)
    let replayed : (int, D.outcome) Hashtbl.t = Hashtbl.create 64 in
    Option.iter
      (fun path ->
        List.iter
          (fun j ->
            match j with
            | Json.Obj fields -> (
              match
                ( List.assoc_opt "trial" fields,
                  List.assoc_opt "outcome" fields )
              with
              | Some (Json.Int i), Some oj when i >= 0 && i < trials -> (
                match D.outcome_of_json oj with
                | Some o ->
                  if not (Hashtbl.mem replayed i) then
                    Rp_support.Resilience.tick resil
                      Rp_support.Resilience.Resumed;
                  Hashtbl.replace replayed i o
                | None -> ())
              | _ -> ())
            | _ -> ())
          (Rp_support.Journal.load path))
      resume;
    let fresh =
      Array.of_list
        (List.filter
           (fun i -> not (Hashtbl.mem replayed i))
           (List.init trials Fun.id))
    in
    (* Trials are independent: each generates its program from (seed,
       trial) and checks it against the oracle.  Workers only compute
       (and journal, which has its own lock); all printing and
       reproducer-saving happens below, in trial order, so stdout is
       byte-identical at every --jobs level and across resumes. *)
    let jwriter = Option.map Rp_support.Journal.create journal in
    let on_result k (o : _ Rp_support.Pool.supervised) =
      match (o, jwriter) with
      | Ok outcome, Some w ->
        Rp_support.Journal.record w
          (Json.Obj
             [
               ("trial", Json.Int fresh.(k));
               ("outcome", D.outcome_json outcome);
             ])
      | _ -> ()
    in
    let outcomes =
      Fun.protect
        ~finally:(fun () -> Option.iter Rp_support.Journal.close jwriter)
        (fun () ->
          Rp_support.Pool.run_supervised ~jobs:(resolve_jobs jobs)
            ?timeout:job_timeout ~retries
            ~cancel:(fun () -> Atomic.get interrupted)
            ~resilience:resil ~on_result
            (fun ~should_stop trial ->
              let src = Rp_fuzz.Gen.program_of_seed ~seed ~trial in
              D.check ~mode ~fuel ~should_stop ?inject ?native:native_cc src)
            fresh)
    in
    if Atomic.get interrupted then begin
      let finished =
        Array.fold_left
          (fun acc o -> match o with Ok _ -> acc + 1 | Error _ -> acc)
          (Hashtbl.length replayed) outcomes
      in
      Fmt.epr "interrupted after %d/%d finished trials%s@." finished trials
        (resume_hint journal);
      exit 130
    end;
    let fresh_tbl : (int, D.outcome Rp_support.Pool.supervised) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iteri (fun k o -> Hashtbl.replace fresh_tbl fresh.(k) o) outcomes;
    let agreed = ref 0 and inconclusive = ref 0 and rejected = ref 0 in
    let diverged = ref [] in
    for trial = 0 to trials - 1 do
      let outcome =
        match Hashtbl.find_opt replayed trial with
        | Some o -> Some o
        | None -> (
          match Hashtbl.find_opt fresh_tbl trial with
          | Some (Ok o) -> Some o
          | Some (Error f) ->
            (* quarantined by the supervisor: wall-clock dependent, so it
               lives on stderr and counts as inconclusive *)
            incr inconclusive;
            Fmt.epr "trial %d (seed %d): quarantined: %a@." trial seed
              Rp_support.Pool.pp_job_failure f;
            None
          | None -> None)
      in
      match outcome with
      | None -> ()
      | Some (D.Agree _) -> incr agreed
      | Some (D.Inconclusive m) ->
        incr inconclusive;
        Fmt.epr "trial %d (seed %d): inconclusive: %s@." trial seed m
      | Some (D.Rejected m) ->
        (* the generator only emits valid programs; a rejection is a
           generator bug and fails the campaign *)
        incr rejected;
        Fmt.epr "trial %d (seed %d): generator emitted a rejected program: \
                 %s@."
          trial seed m
      | Some (D.Diverged fs) ->
        let src = Rp_fuzz.Gen.program_of_seed ~seed ~trial in
        let path =
          Filename.concat out_dir
            (Printf.sprintf "fuzz-s%d-t%d.c" seed trial)
        in
        write_file path src;
        diverged := (path, src, fs) :: !diverged;
        Fmt.pr "trial %d (seed %d): %a@.  saved to %s@." trial seed
          D.pp_outcome (D.Diverged fs) path;
        List.iter
          (fun (f : D.failure) ->
            Fmt.pr "  replay: rpcc reduce %s --config %s --class %s%s%s \
                    --seed %d@."
              path f.D.config (D.class_name f.D.cls)
              (match mode with
              | D.Plain -> " --plain"
              | D.Verify -> ""
              | D.OraclePasses -> " --oracle-passes")
              (match inject with
              | Some (c, _) ->
                " --inject " ^ Rp_fuzz.Faultgen.class_name c
              | None -> "")
              seed)
          fs
    done;
    if Rp_support.Resilience.any resil then
      Fmt.epr "; resilience: %a@." Rp_support.Resilience.pp resil;
    Fmt.pr
      "gen-fuzz: seed=%d trials=%d agreed=%d diverged=%d inconclusive=%d \
       rejected=%d@."
      seed trials !agreed
      (List.length !diverged)
      !inconclusive !rejected;
    if do_reduce then
      List.iter
        (fun (path, src, fs) ->
          let target = List.hd fs in
          Fmt.pr "reducing %s for %a@." path D.pp_failure target;
          ignore
            (reduce_failure ~mode ~fuel ~inject ~budget ~path ~out:None
               target src))
        (List.rev !diverged);
    if !diverged <> [] || !rejected > 0 then exit 1
  in
  let reduce_t =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:"Automatically shrink every divergence to a FILE.min.c.")
  in
  let out_dir_t =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Directory for saved reproducers (created if missing).")
  in
  let native_t =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Add an interpreter-vs-native comparison cell to every trial: \
             the default-configuration program also runs through the \
             compiled-C backend, and any difference in output, checksum, \
             counts, or trap message is reported as a divergence in the \
             $(i,native) configuration.")
  in
  Cmd.v
    (Cmd.info "gen-fuzz" ~exits
       ~doc:
         "Generative differential testing: generate random, safe, \
          terminating Mini-C programs biased toward promotion-relevant \
          shapes, compile each under the six grid configurations plus \
          an O0 reference (plus, with $(b,--native), an \
          interpreter-vs-native cell), and flag any divergence in \
          output, checksum, traps, fuel, or pipeline health.  Failing \
          programs are saved with their generator seed for exact \
          replay.  Exits 1 on any divergence.")
    Term.(
      const gen_fuzz $ seed_t
      $ trials_t ~doc:"Number of generated programs to test."
      $ mode_t $ inject_t $ oracle_fuel_t $ reduce_t $ budget_t $ out_dir_t
      $ jobs_t $ job_timeout_t $ retries_campaign_t $ journal_t $ resume_t
      $ native_t)

let reduce_cmd =
  let reduce file config_name cls_name mode inject iseed fuel budget out =
    handle_errors @@ fun () ->
    let module D = Rp_fuzz.Difforacle in
    let src = read_file file in
    let inject = Option.map (fun c -> (c, iseed)) inject in
    let cls =
      Option.map
        (fun n ->
          match D.class_of_string n with
          | Some c -> c
          | None -> Fmt.failwith "unknown failure class '%s'" n)
        cls_name
    in
    match D.check ~mode ~fuel ?inject src with
    | D.Agree _ ->
      Fmt.pr "no divergence: nothing to reduce@."
    | D.Rejected m ->
      Fmt.epr "error: the oracle rejected %s: %s@." file m;
      exit 2
    | D.Inconclusive m ->
      Fmt.epr "inconclusive: %s@." m;
      exit 3
    | D.Diverged fs -> (
      let matches (f : D.failure) =
        (match config_name with Some c -> f.D.config = c | None -> true)
        && match cls with Some k -> f.D.cls = k | None -> true
      in
      match List.find_opt matches fs with
      | None ->
        Fmt.epr "no failure matches the requested signature; observed:@.";
        List.iter (fun f -> Fmt.epr "  %a@." D.pp_failure f) fs;
        exit 2
      | Some target ->
        Fmt.pr "reducing for %a@." D.pp_failure target;
        let r =
          reduce_failure ~mode ~fuel ~inject ~budget ~path:file ~out target
            src
        in
        Fmt.pr "%s@." r.Rp_fuzz.Reduce.reduced)
  in
  let config_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"NAME"
          ~doc:
            "Reduce against the failure observed under this configuration \
             (modref/without, modref/with, modref/ptr, pointer/without, \
             pointer/with, pointer/ptr); default: the first reported \
             failure.")
  in
  let class_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "class" ] ~docv:"KIND"
          ~doc:
            "Restrict to this failure class (crash, degraded, counts, \
             output, checksum, trap, fuel).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the reduced program (default FILE.min.c).")
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE" ~doc:"The failing Mini-C program.")
  in
  Cmd.v
    (Cmd.info "reduce" ~exits
       ~doc:
         "Delta-debug a program that fails the cross-configuration oracle \
          down to a minimal reproducer: structured deletion, loop \
          unwrapping, ddmin chunk removal, and expression simplification, \
          re-checking the oracle after every step under a wall-clock \
          budget (timeouts are quarantined, not trusted).")
    Term.(
      const reduce $ file_arg $ config_t $ class_t $ mode_t $ inject_t
      $ seed_t $ oracle_fuel_t $ budget_t $ out_t)

(* ------------------------------------------------------------------ *)
(* The compile/run daemon and its client                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let serve socket state_dir cas_dir shard_id jobs queue_bound job_timeout
      retries threshold cooldown =
    handle_errors @@ fun () ->
    let jobs = Rp_support.Cli.jobs ~flag:"--jobs" jobs in
    let queue_bound =
      Rp_support.Cli.positive ~flag:"--queue-bound" queue_bound
    in
    let threshold =
      Rp_support.Cli.positive ~flag:"--breaker-threshold" threshold
    in
    Rp_serve.Daemon.serve
      {
        Rp_serve.Daemon.socket;
        state_dir;
        cas_dir;
        shard_id;
        jobs;
        queue_bound;
        job_timeout = (if job_timeout <= 0. then None else Some job_timeout);
        retries = max 0 retries;
        breaker_threshold = threshold;
        breaker_cooldown = cooldown;
      }
  in
  let socket_t =
    Arg.(
      value
      & opt string Rp_serve.Daemon.default_config.Rp_serve.Daemon.socket
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (stale files are replaced).")
  in
  let state_dir_t =
    Arg.(
      value
      & opt string Rp_serve.Daemon.default_config.Rp_serve.Daemon.state_dir
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable state: the content-addressed cache ($(docv)/cas) and \
             the request journal ($(docv)/journal.jsonl).  Restarting on \
             the same directory resumes warm.")
  in
  let cas_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cas-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed cache root override (default \
             --state-dir/cas).  Fleet shards point this at one shared \
             store so any shard can serve any cached artifact.")
  in
  let shard_id_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-id" ] ~docv:"N"
          ~doc:
            "Fleet membership tag echoed in health responses; omitted \
             when serving standalone.")
  in
  let queue_bound_t =
    Arg.(
      value & opt int 64
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admit at most $(docv) jobs per connection batch; the rest \
             receive 'overloaded' responses instead of queueing \
             unboundedly.")
  in
  let serve_timeout_t =
    Arg.(
      value & opt float 30.
      & info [ "job-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-job wall-clock deadline enforced by the supervised pool \
             (0 disables it).")
  in
  let threshold_t =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive supervised failures before a client's circuit \
             opens and its requests are rejected until a cooldown probe.")
  in
  let cooldown_t =
    Arg.(
      value & opt float 5.
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:"Seconds an open client circuit waits before a probe.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the crash-tolerant compile/run daemon: line-JSON batches \
          over a Unix-domain socket, dispatched to the supervised worker \
          pool, backed by a content-addressed cache and a request \
          journal.  SIGKILL-safe (restarts warm on the same --state-dir); \
          SIGTERM/SIGINT drain gracefully.")
    Term.(
      const serve $ socket_t $ state_dir_t $ cas_dir_t $ shard_id_t $ jobs_t
      $ queue_bound_t $ serve_timeout_t $ retries_campaign_t $ threshold_t
      $ cooldown_t)

let fleet_cmd =
  let fleet shards state_dir jobs job_timeout probe_interval probe_timeout
      wedged plant_crash =
    handle_errors @@ fun () ->
    let shards = Rp_support.Cli.positive ~flag:"SHARDS" shards in
    let jobs = Rp_support.Cli.jobs ~flag:"--jobs" jobs in
    let wedged = Rp_support.Cli.positive ~flag:"--wedged-threshold" wedged in
    Rp_serve.Fleet.run
      {
        Rp_serve.Fleet.shards;
        state_dir;
        rpcc = None;
        jobs;
        job_timeout;
        probe_interval;
        probe_timeout;
        wedged_threshold = wedged;
        plant_crash = (if plant_crash <= 0. then None else Some plant_crash);
      }
  in
  let shards_t =
    Arg.(
      value & pos 0 int Rp_serve.Fleet.default_config.Rp_serve.Fleet.shards
      & info [] ~docv:"SHARDS" ~doc:"Number of shard daemons to supervise.")
  in
  let fleet_state_t =
    Arg.(
      value
      & opt string Rp_serve.Fleet.default_config.Rp_serve.Fleet.state_dir
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Fleet state: per-shard sockets ($(docv)/shard-N.sock), \
             journals ($(docv)/shard-N/), logs, and the shared \
             content-addressed cache ($(docv)/cas).")
  in
  let probe_interval_t =
    Arg.(
      value & opt float 2.
      & info [ "probe-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between health-probe sweeps of the shards.")
  in
  let probe_timeout_t =
    Arg.(
      value & opt float 10.
      & info [ "probe-timeout" ] ~docv:"SECONDS"
          ~doc:"Client deadline for each health probe.")
  in
  let wedged_t =
    Arg.(
      value & opt int 3
      & info [ "wedged-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive failed probes before a shard is declared wedged, \
             SIGKILLed, and respawned.")
  in
  let plant_crash_t =
    Arg.(
      value & opt float 0.
      & info [ "plant-crash" ] ~docv:"SECONDS"
          ~doc:
            "Chaos drill: SIGKILL a deterministically chosen shard \
             $(docv) seconds after startup and let supervision recover \
             it (0 disables).")
  in
  let fleet_timeout_t =
    Arg.(
      value & opt float 30.
      & info [ "job-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job deadline forwarded to every shard.")
  in
  Cmd.v
    (Cmd.info "fleet" ~exits
       ~doc:
         "Supervise a fleet of rpcc serve shards: per-shard sockets and \
          journals, one shared content-addressed cache, health-probed \
          membership, crashed or wedged shards respawned with backoff.  \
          Clients route requests by rendezvous hash of the cache key so \
          each key stays on one warm shard.  SIGTERM/SIGINT drain every \
          shard and exit 0.")
    Term.(
      const fleet $ shards_t $ fleet_state_t $ jobs_t $ fleet_timeout_t
      $ probe_interval_t $ probe_timeout_t $ wedged_t $ plant_crash_t)

let client_cmd =
  let client socket timeout op file config_name client_name seed trials
      native =
    handle_errors @@ fun () ->
    let need_file () =
      match file with
      | Some f -> read_file f
      | None -> Fmt.failwith "op '%s' needs a FILE.c argument" op
    in
    if native && op <> "run" then
      Fmt.failwith "--native only applies to op 'run'";
    let base =
      [
        ("schema", Json.Str Rp_serve.Protocol.schema);
        ("id", Json.Int 1);
        ("client", Json.Str client_name);
        ("op", Json.Str op);
      ]
    in
    let req =
      match op with
      | "run" | "compile" | "stats" ->
        Json.Obj
          (base
          @ [
              ("src", Json.Str (need_file ()));
              ("config", Json.Str config_name);
            ]
          @ (if native then [ ("mode", Json.Str "native") ] else []))
      | "fuzz" ->
        Json.Obj
          (base @ [ ("seed", Json.Int seed); ("trials", Json.Int trials) ])
      | "health" -> Json.Obj base
      | other -> Fmt.failwith "unknown op '%s'" other
    in
    let timeout = if timeout <= 0. then None else Some timeout in
    let resps =
      match Rp_serve.Client.call ?timeout ~socket [ req ] with
      | resps -> resps
      | exception Unix.Unix_error (e, _, _) ->
        Fmt.failwith "cannot reach daemon at %s: %s" socket
          (Unix.error_message e)
      | exception Rp_serve.Client.Timeout m ->
        Fmt.epr "rpcc client: timeout: %s@." m;
        exit 3
    in
    List.iter
      (fun r -> print_endline (Json.to_string ~indent:false r))
      resps;
    match resps with
    | [ r ] -> (
      match Rp_serve.Protocol.response_status r with
      | "ok" -> ()
      | "error" -> (
        match Json.member "code" r with
        | Some (Json.Str "trap") -> exit 1
        | Some (Json.Str "resource") -> exit 3
        | _ -> exit 2)
      | "overloaded" | "rejected" -> exit 3
      | _ -> exit 2)
    | _ -> Fmt.failwith "expected exactly one response line"
  in
  let socket_t =
    Arg.(
      value
      & opt string Rp_serve.Daemon.default_config.Rp_serve.Daemon.socket
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's socket.")
  in
  let client_timeout_t =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Overall deadline for the exchange; a daemon that accepts \
             the connection but never answers cannot wedge the client.  \
             Expiry exits 3.  0 (the default) waits forever.")
  in
  let op_t =
    Arg.(
      required
      & pos 0 (some (enum
            [ ("run", "run"); ("compile", "compile"); ("stats", "stats");
              ("fuzz", "fuzz"); ("health", "health") ])) None
      & info [] ~docv:"OP"
          ~doc:"Request: run, compile, stats, fuzz, or health.")
  in
  let file_opt_t =
    Arg.(
      value & pos 1 (some file) None
      & info [] ~docv:"FILE.c" ~doc:"Source file (run/compile/stats).")
  in
  let config_name_t =
    Arg.(
      value & opt string "modref/with"
      & info [ "config" ] ~docv:"NAME"
          ~doc:
            "Grid configuration name (O0, modref/without, modref/with, \
             modref/ptr, pointer/without, pointer/with, pointer/ptr).")
  in
  let client_name_t =
    Arg.(
      value & opt string "cli"
      & info [ "client" ] ~docv:"NAME"
          ~doc:"Client name: the daemon's circuit-breaker key.")
  in
  let trials_client_t =
    Arg.(
      value & opt int 1
      & info [ "trials" ] ~docv:"N" ~doc:"Fuzz trials (op fuzz).")
  in
  let native_client_t =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Request native (compiled-C) execution for op run.  The \
             daemon answers through its degradation ladder — native, \
             recompile-once, interpreter — and reports the rung used in \
             the response's exec object; the result itself is \
             mode-independent.")
  in
  Cmd.v
    (Cmd.info "client" ~exits
       ~doc:
         "Send one request to a running rpcc serve daemon and print its \
          response line.  Exit code mirrors the response: 0 ok, 1 trap, \
          2 usage/internal error, 3 resource/overloaded/rejected/timeout.")
    Term.(
      const client $ socket_t $ client_timeout_t $ op_t $ file_opt_t
      $ config_name_t $ client_name_t $ seed_t $ trials_client_t
      $ native_client_t)

let main =
  Cmd.group
    (Cmd.info "rpcc" ~version:"1.0.0" ~exits
       ~doc:
         "Register promotion in C programs (Cooper & Lu, PLDI 1997) — \
          reference reimplementation.")
    [ run_cmd; dump_cmd; run_il_cmd; table_cmd; fuzz_cmd; gen_fuzz_cmd;
      reduce_cmd; serve_cmd; fleet_cmd; client_cmd ]

let () = exit (Cmd.eval main)
