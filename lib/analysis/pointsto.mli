(** Whole-program, context-insensitive points-to analysis (paper §4, after
    Ruf): SSA names get points-to sets via a worklist; memory is modeled
    per tag with weak updates; heap objects are named by allocation site;
    function pointers are first-class. *)

open Rp_ir

type loc = Ltag of Tag.t | Lfun of string

module LS : Set.S with type elt = loc

type t = {
  ssa : (string, Func.t) Hashtbl.t;  (** per-function SSA clones *)
  pts : (string * Instr.reg, LS.t) Hashtbl.t;  (** per SSA name *)
  mem : (int, LS.t) Hashtbl.t;  (** tag id -> contents *)
  rets : (string, LS.t) Hashtbl.t;  (** per function: returned locations *)
  mutable iters : int;
      (** function-transfer executions performed by the sparse worklist *)
  mutable converged : bool;
      (** false when the fixpoint budget ran out; the partial solution is
          never used to refine the program *)
}

val pts_get : t -> string * Instr.reg -> LS.t
val mem_get : t -> Tag.t -> LS.t
val tags_of : LS.t -> Tag.t list
val funs_of : LS.t -> string list

(** Solve the points-to constraints to a fixed point.  [budget] caps the
    number of function-transfer executions (default: 1000 × functions);
    when exhausted, the result has [converged = false] instead of raising. *)
val analyze : ?budget:int -> Program.t -> t

(** Narrow the original program's pointer-operation tag sets (never
    widening) and fill indirect-call target lists from the solution. *)
val refine_program : Program.t -> t -> unit

(** The full §4 pipeline: baseline MOD/REF → points-to → refinement →
    MOD/REF again over the sharper sets.  On budget exhaustion the program
    is {e not} refined (narrowing from a partial solution is unsound) and
    [converged] is false. *)
val run : ?budget:int -> Program.t -> t
