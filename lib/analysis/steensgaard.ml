(** Steensgaard-style unification-based points-to analysis.

    The paper's related-work section cites it directly: "Steensgaard showed
    a linear-time algorithm for performing a flow-insensitive points-to
    analysis by casting it as a type-inference problem [20]."  We implement
    it as a third precision point between the MOD/REF baseline and the
    Ruf-style inclusion analysis, giving the evaluation's precision axis a
    cheap lower rung.

    Model: every abstract node (a register, a memory tag, or a function)
    carries at most one {e pointee cell}; assignments unify cells instead
    of propagating subsets, so the whole analysis is a near-linear pass of
    union-find operations.  Conflation is the price: a pointer that ever
    targets two objects merges them for good.

    The analysis is flow-insensitive, so it runs directly on the non-SSA
    IL.  [refine_program] then narrows pointer-operation tag sets
    (intersecting with the existing sets — never widening) and fills
    indirect-call target lists, after which MOD/REF is re-run. *)

open Rp_ir

type node = int

type t = {
  parent : (node, node) Hashtbl.t;
  size : (node, int) Hashtbl.t;
  succ : (node, node) Hashtbl.t;  (** keyed by ECR representative *)
  tag_node : (int, node) Hashtbl.t;  (** tag id -> node *)
  fn_node : (string, node) Hashtbl.t;
  reg_node : (string * Instr.reg, node) Hashtbl.t;
  fresh : Rp_support.Idgen.t;
  mutable changed : bool;  (** any union performed this pass *)
  mutable rounds : int;  (** whole-program constraint passes until stable *)
  mutable converged : bool;
      (** false when the constraint passes blew their budget; the partial
          solution is never used to refine the program *)
}

let create () =
  {
    parent = Hashtbl.create 256;
    size = Hashtbl.create 256;
    succ = Hashtbl.create 256;
    tag_node = Hashtbl.create 64;
    fn_node = Hashtbl.create 16;
    reg_node = Hashtbl.create 256;
    fresh = Rp_support.Idgen.create ();
    changed = false;
    rounds = 0;
    converged = true;
  }

let new_node st =
  let n = Rp_support.Idgen.fresh st.fresh in
  Hashtbl.replace st.parent n n;
  Hashtbl.replace st.size n 1;
  n

let rec find st n =
  let p = Hashtbl.find st.parent n in
  if p = n then n
  else begin
    let r = find st p in
    Hashtbl.replace st.parent n r;
    r
  end

let node_of tbl st key =
  match Hashtbl.find_opt tbl key with
  | Some n -> n
  | None ->
    let n = new_node st in
    Hashtbl.replace tbl key n;
    n

let tag_node st (t : Tag.t) = node_of st.tag_node st t.Tag.id
let fn_node st name = node_of st.fn_node st name
let reg_node st fname r = node_of st.reg_node st (fname, r)

(** The pointee cell of a node, created on demand. *)
let succ_of st n =
  let r = find st n in
  match Hashtbl.find_opt st.succ r with
  | Some s -> find st s
  | None ->
    let s = new_node st in
    Hashtbl.replace st.succ r s;
    s

(** Unify two ECRs, recursively merging their pointee cells — the heart of
    Steensgaard's algorithm.  Terminates because every union strictly
    decreases the number of equivalence classes. *)
let rec unify st a b =
  let ra = find st a and rb = find st b in
  if ra <> rb then begin
    st.changed <- true;
    let sa = Hashtbl.find_opt st.succ ra in
    let sb = Hashtbl.find_opt st.succ rb in
    (* union by size *)
    let (root, child) =
      if Hashtbl.find st.size ra >= Hashtbl.find st.size rb then (ra, rb)
      else (rb, ra)
    in
    Hashtbl.replace st.parent child root;
    Hashtbl.replace st.size root
      (Hashtbl.find st.size ra + Hashtbl.find st.size rb);
    Hashtbl.remove st.succ child;
    (match (sa, sb) with
    | None, None -> ()
    | Some s, None | None, Some s -> Hashtbl.replace st.succ root s
    | Some s1, Some s2 ->
      Hashtbl.replace st.succ root s1;
      unify st s1 s2)
  end

(** [join st a b] — make the values of [a] and [b] compatible (used for
    copies and arithmetic): their pointee cells unify. *)
let join st a b = unify st (succ_of st a) (succ_of st b)

(* ------------------------------------------------------------------ *)
(* Constraint generation                                               *)
(* ------------------------------------------------------------------ *)

(** All function names currently unified into the cell of [n]. *)
let funs_in_cell st n =
  let r = find st n in
  Hashtbl.fold
    (fun name fn acc -> if find st fn = r then name :: acc else acc)
    st.fn_node []

(** A conventional node holding each function's returned value. *)
let fn_ret st name = node_of st.fn_node st ("$ret$" ^ name)

let transfer st (p : Program.t) fname (i : Instr.t) =
  let reg r = reg_node st fname r in
  match i with
  | Instr.Loada (d, t) ->
    (* d points to t: t joins d's pointee cell *)
    unify st (succ_of st (reg d)) (tag_node st t)
  | Instr.Loadfp (d, fn) -> unify st (succ_of st (reg d)) (fn_node st fn)
  | Instr.Copy (d, s) -> join st (reg d) (reg s)
  | Instr.Phi (d, srcs) -> List.iter (fun (_, s) -> join st (reg d) (reg s)) srcs
  | Instr.Binop (op, d, a, b) -> (
    match op with
    | Instr.Add | Instr.Sub | Instr.Mul | Instr.Band | Instr.Bor
    | Instr.Bxor | Instr.Shl | Instr.Shr ->
      join st (reg d) (reg a);
      join st (reg d) (reg b)
    | _ -> ())
  | Instr.Loads (d, t) | Instr.Loadc (d, t) ->
    (* contents of t flow into d *)
    join st (reg d) (tag_node st t)
  | Instr.Stores (t, s) -> join st (tag_node st t) (reg s)
  | Instr.Loadg (d, a, _) ->
    (* d receives the contents of whatever a points to *)
    join st (reg d) (succ_of st (reg a))
  | Instr.Storeg (a, s, _) -> join st (succ_of st (reg a)) (reg s)
  | Instr.Call c -> (
    let bind callee =
      if Rp_minic.Builtins.allocates callee then
        Option.iter
          (fun d ->
            unify st
              (succ_of st (reg d))
              (tag_node st (Program.heap_tag p c.Instr.site)))
          c.Instr.ret
      else
        match Program.func_opt p callee with
        | None -> () (* other builtins return and take non-pointers *)
        | Some f ->
          List.iteri
            (fun i prm ->
              match List.nth_opt c.Instr.args i with
              | Some a -> join st (reg a) (reg_node st callee prm)
              | None -> ())
            f.Func.params;
          (* returns: unified via a conventional per-function node, wired
             below in [solve] when scanning Ret terminators *)
          Option.iter
            (fun d -> join st (reg d) (fn_ret st callee))
            c.Instr.ret
    in
    match c.Instr.target with
    | Instr.Direct n -> bind n
    | Instr.Indirect r ->
      List.iter bind (funs_in_cell st (succ_of st (reg r))))
  | Instr.Loadi _ | Instr.Unop _ -> ()

let solve ?(budget = 100) (p : Program.t) : t =
  let st = create () in
  st.changed <- true;
  (* unification only ever merges classes, so non-convergence within the
     budget means a pathological program, not an infinite loop — degrade to
     a partial (unusable-for-refinement) solution instead of raising *)
  while st.changed && st.converged do
    st.changed <- false;
    st.rounds <- st.rounds + 1;
    if st.rounds > budget then st.converged <- false
    else
    Program.iter_funcs
      (fun f ->
        Func.iter_blocks
          (fun (b : Block.t) ->
            List.iter (transfer st p f.Func.name) b.Block.instrs;
            match b.Block.term with
            | Instr.Ret (Some r) ->
              join st (reg_node st f.Func.name r) (fn_ret st f.Func.name)
            | _ -> ())
          f)
      p
  done;
  st

(* ------------------------------------------------------------------ *)
(* Extraction and refinement                                           *)
(* ------------------------------------------------------------------ *)

(** Tags whose node lives in the pointee cell of register [r]. *)
let tags_pointed_to st (p : Program.t) fname r : Tag.t list =
  let cell = find st (succ_of st (reg_node st fname r)) in
  List.filter
    (fun (t : Tag.t) ->
      match Hashtbl.find_opt st.tag_node t.Tag.id with
      | Some n -> find st n = cell
      | None -> false)
    (Tag.Table.all p.Program.tags)

let funs_pointed_to st fname r =
  funs_in_cell st (succ_of st (reg_node st fname r))
  |> List.filter (fun n -> not (String.length n > 0 && n.[0] = '$'))
  |> List.sort compare

(** Narrow the program's pointer operations and indirect calls. *)
let refine_program (p : Program.t) (st : t) : unit =
  Program.iter_funcs
    (fun f ->
      Func.iter_blocks
        (fun (b : Block.t) ->
          b.Block.instrs <-
            List.map
              (fun i ->
                let narrowed old a =
                  Tagset.inter old
                    (Tagset.of_list (tags_pointed_to st p f.Func.name a))
                in
                match i with
                | Instr.Loadg (d, a, old) -> Instr.Loadg (d, a, narrowed old a)
                | Instr.Storeg (a, s, old) ->
                  Instr.Storeg (a, s, narrowed old a)
                | Instr.Call ({ target = Instr.Indirect r; _ } as c) ->
                  Instr.Call
                    { c with targets = funs_pointed_to st f.Func.name r }
                | i -> i)
              b.Block.instrs)
        f)
    p

(** The full pipeline for the [steens] configuration: baseline MOD/REF,
    unification analysis, refinement, MOD/REF again.  On budget exhaustion
    the program is not refined (a partial unification solution misses
    merges, so extracting points-to sets from it is unsound) and
    [converged] is false. *)
let iterations st = st.rounds

let converged st = st.converged

let run ?budget (p : Program.t) : t =
  let m1 = Modref.run ?budget p in
  let st = solve ?budget p in
  st.converged <- st.converged && m1.Modref.converged;
  if st.converged then begin
    refine_program p st;
    let m2 =
      Modref.run ?budget ~targets_of:(Callgraph.recorded_targets p) p
    in
    st.converged <- m2.Modref.converged
  end;
  st
