(** Whole-program points-to analysis, after Ruf [18] as described in §4:

    "We analyze the entire program at once.  Each function is converted into
    SSA form.  For each SSA name, the analyzer determines the set of tags to
    which it may point. ... Pointer values are propagated through the
    program using a worklist algorithm.  Non-local memory is modeled with
    explicit names rather than representative names.  Heap memory is modeled
    with a single name for each call-site that can generate a new heap
    address.  The analysis is context-insensitive."

    Design notes (DESIGN.md §6): registers are flow-sensitive through SSA;
    memory contents are modeled per tag with weak updates only; addressed
    locals of recursive functions already collapse to one tag at IR
    generation, so strong updates on them are impossible by construction —
    and we forgo strong updates everywhere, which is sound and only
    marginally less precise.

    After the fixpoint, {!refine} rewrites the original program's
    pointer-operation tag sets (never widening: the new set is intersected
    with the old) and fills indirect-call target lists.  MOD/REF is then
    expected to be re-run by the caller. *)

open Rp_ir

type loc = Ltag of Tag.t | Lfun of string

module LS = Set.Make (struct
  type t = loc

  let compare a b =
    match (a, b) with
    | Ltag x, Ltag y -> Tag.compare x y
    | Lfun x, Lfun y -> String.compare x y
    | Ltag _, Lfun _ -> -1
    | Lfun _, Ltag _ -> 1
end)

type t = {
  ssa : (string, Func.t) Hashtbl.t;  (** SSA clones, one per function *)
  pts : (string * Instr.reg, LS.t) Hashtbl.t;  (** per SSA name *)
  mem : (int, LS.t) Hashtbl.t;  (** tag id -> contents' points-to set *)
  rets : (string, LS.t) Hashtbl.t;  (** per function: returned locations *)
  mutable iters : int;
      (** function-transfer executions performed by the sparse worklist
          before the fixpoint (observability; see Pipeline.stage_stats) *)
  mutable converged : bool;
      (** false when the fixpoint budget ran out: the solution is partial
          (an under-approximation), so {!run} refuses to refine the program
          with it and the caller must fall back to the conservative ⊤
          answer instead of crashing *)
}

let pts_get st key = Option.value ~default:LS.empty (Hashtbl.find_opt st.pts key)
let mem_get st (tag : Tag.t) =
  Option.value ~default:LS.empty (Hashtbl.find_opt st.mem tag.Tag.id)

let tags_of ls =
  LS.fold (fun l acc -> match l with Ltag t -> t :: acc | Lfun _ -> acc) ls []

let funs_of ls =
  LS.fold (fun l acc -> match l with Lfun f -> f :: acc | Ltag _ -> acc) ls []

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

module SS = Rp_support.Smaps.String_set

let analyze ?budget (p : Program.t) : t =
  let st =
    {
      ssa = Hashtbl.create 16;
      pts = Hashtbl.create 256;
      mem = Hashtbl.create 64;
      rets = Hashtbl.create 16;
      iters = 0;
      converged = true;
    }
  in
  Program.iter_funcs
    (fun f ->
      let clone = Func.copy f in
      ignore (Rp_ssa.Ssa.construct clone : Rp_ssa.Ssa.info);
      Hashtbl.replace st.ssa f.Func.name clone)
    p;
  (* Sparse iteration: instead of re-scanning the whole program until
     nothing changes, keep a worklist of functions and a reader map from
     each abstract cell to the functions whose transfer consumes it.  A
     join that grows a cell re-enqueues exactly its readers. *)
  let tag_loaders : (int, SS.t) Hashtbl.t = Hashtbl.create 64 in
  (* functions whose Loadg may read any memory cell (its address's
     points-to set grows over time, so the static reader map must be
     conservative) *)
  let g_loaders = ref SS.empty in
  let direct_callers : (string, SS.t) Hashtbl.t = Hashtbl.create 16 in
  let indirect_callers = ref SS.empty in
  Hashtbl.iter
    (fun fname (clone : Func.t) ->
      Func.iter_instrs
        (fun _ i ->
          match i with
          | Instr.Loads (_, t) | Instr.Loadc (_, t) ->
            Hashtbl.replace tag_loaders t.Tag.id
              (SS.add fname
                 (Option.value ~default:SS.empty
                    (Hashtbl.find_opt tag_loaders t.Tag.id)))
          | Instr.Loadg _ -> g_loaders := SS.add fname !g_loaders
          | Instr.Call { Instr.target = Instr.Direct n; _ } ->
            Hashtbl.replace direct_callers n
              (SS.add fname
                 (Option.value ~default:SS.empty
                    (Hashtbl.find_opt direct_callers n)))
          | Instr.Call { Instr.target = Instr.Indirect _; _ } ->
            indirect_callers := SS.add fname !indirect_callers
          | _ -> ())
        clone)
    st.ssa;
  let wl : string Rp_support.Worklist.t = Rp_support.Worklist.create () in
  let enqueue fname = Rp_support.Worklist.push wl fname in
  let join_pts ((owner, _) as key) ls =
    if not (LS.is_empty ls) then begin
      let cur = pts_get st key in
      let nxt = LS.union cur ls in
      if not (LS.equal cur nxt) then begin
        Hashtbl.replace st.pts key nxt;
        enqueue owner
      end
    end
  in
  let join_mem (tag : Tag.t) ls =
    if not (LS.is_empty ls) then begin
      let cur = mem_get st tag in
      let nxt = LS.union cur ls in
      if not (LS.equal cur nxt) then begin
        Hashtbl.replace st.mem tag.Tag.id nxt;
        Option.iter (SS.iter enqueue)
          (Hashtbl.find_opt tag_loaders tag.Tag.id);
        SS.iter enqueue !g_loaders
      end
    end
  in
  let join_ret fname ls =
    if not (LS.is_empty ls) then begin
      let cur = Option.value ~default:LS.empty (Hashtbl.find_opt st.rets fname) in
      let nxt = LS.union cur ls in
      if not (LS.equal cur nxt) then begin
        Hashtbl.replace st.rets fname nxt;
        Option.iter (SS.iter enqueue) (Hashtbl.find_opt direct_callers fname);
        SS.iter enqueue !indirect_callers
      end
    end
  in
  let bind_call fname (c : Instr.call) argv_pts ret_reg =
    (* one callee: bind arguments to parameters, returns to result *)
    match Hashtbl.find_opt st.ssa fname with
    | None ->
      (* builtin: malloc allocates; everything else returns no pointers *)
      if Rp_minic.Builtins.allocates fname then
        Option.iter
          (fun d ->
            join_pts d (LS.singleton (Ltag (Program.heap_tag p c.Instr.site))))
          ret_reg
    | Some callee ->
      List.iteri
        (fun i ls ->
          match List.nth_opt callee.Func.params i with
          | Some prm -> join_pts (fname, prm) ls
          | None -> ())
        argv_pts;
      Option.iter
        (fun d ->
          join_pts d
            (Option.value ~default:LS.empty (Hashtbl.find_opt st.rets fname)))
        ret_reg
  in
  let transfer fname (i : Instr.t) =
    let get r = pts_get st (fname, r) in
    let set d ls = join_pts (fname, d) ls in
    match i with
    | Instr.Loada (d, t) -> set d (LS.singleton (Ltag t))
    | Instr.Loadfp (d, n) -> set d (LS.singleton (Lfun n))
    | Instr.Copy (d, s) -> set d (get s)
    | Instr.Phi (d, srcs) ->
      List.iter (fun (_, r) -> set d (get r)) srcs
    | Instr.Unop (_, _, _) -> ()
    | Instr.Binop (op, d, a, b) -> (
      (* pointer arithmetic keeps pointing into the same objects; any
         arithmetic op that could carry a pointer bit-pattern propagates *)
      match op with
      | Instr.Add | Instr.Sub | Instr.Mul | Instr.Band | Instr.Bor
      | Instr.Bxor | Instr.Shl | Instr.Shr ->
        set d (LS.union (get a) (get b))
      | _ -> ())
    | Instr.Loadi _ -> ()
    | Instr.Loads (d, t) | Instr.Loadc (d, t) -> set d (mem_get st t)
    | Instr.Stores (t, s) -> join_mem t (get s)
    | Instr.Loadg (d, a, _) ->
      List.iter (fun t -> set d (mem_get st t)) (tags_of (get a))
    | Instr.Storeg (a, s, _) ->
      List.iter (fun t -> join_mem t (get s)) (tags_of (get a))
    | Instr.Call c -> (
      let argv_pts = List.map get c.Instr.args in
      let ret = Option.map (fun d -> (fname, d)) c.Instr.ret in
      match c.Instr.target with
      | Instr.Direct n -> bind_call n c argv_pts ret
      | Instr.Indirect r ->
        List.iter
          (fun n -> bind_call n c argv_pts ret)
          (funs_of (get r)))
  in
  (* seed in program order (deterministic), then drain *)
  Program.iter_funcs (fun f -> enqueue f.Func.name) p;
  let budget =
    match budget with
    | Some b -> b
    | None -> 1000 * (Hashtbl.length st.ssa + 1)
  in
  (* A blown budget must not kill the compile: mark the solution as partial
     and drain the remaining worklist without processing ("the analysis may
     be conservative, the transformation may not" — a non-converging
     analysis degrades to the ⊤ answer upstream, it never raises). *)
  Rp_support.Worklist.run wl (fun fname ->
      if st.iters >= budget then st.converged <- false
      else begin
        st.iters <- st.iters + 1;
        match Hashtbl.find_opt st.ssa fname with
        | None -> ()
        | Some clone ->
          Func.iter_blocks
            (fun (b : Block.t) ->
              List.iter (transfer fname) b.Block.instrs;
              match b.Block.term with
              | Instr.Ret (Some r) -> join_ret fname (pts_get st (fname, r))
              | _ -> ())
            clone
      end);
  st

(* ------------------------------------------------------------------ *)
(* Refinement of the original program                                  *)
(* ------------------------------------------------------------------ *)

(** Rewrite pointer-op tag sets and indirect-call target lists of [p] from
    the analysis [st].  Walks each original block in lockstep with its SSA
    clone (SSA construction preserves per-block instruction order and only
    prepends phis). *)
let refine_program (p : Program.t) (st : t) : unit =
  Program.iter_funcs
    (fun f ->
      let clone =
        match Hashtbl.find_opt st.ssa f.Func.name with
        | Some c -> c
        | None -> invalid_arg "Pointsto.refine: missing clone"
      in
      Func.iter_blocks
        (fun (b : Block.t) ->
          match Func.block_opt clone b.Block.label with
          | None -> () (* unreachable in the clone: never executed *)
          | Some cb ->
            let cinstrs =
              List.filter (fun i -> not (Instr.is_phi i)) cb.Block.instrs
            in
            if List.length cinstrs <> List.length b.Block.instrs then
              invalid_arg "Pointsto.refine: lockstep walk desynchronized";
            b.Block.instrs <-
              List.map2
                (fun orig ssa_i ->
                  let narrowed old addr_ssa =
                    let ls = pts_get st (f.Func.name, addr_ssa) in
                    let nw = Tagset.of_list (tags_of ls) in
                    Tagset.inter old nw
                  in
                  match (orig, ssa_i) with
                  | Instr.Loadg (d, a, old), Instr.Loadg (_, a', _) ->
                    Instr.Loadg (d, a, narrowed old a')
                  | Instr.Storeg (a, s, old), Instr.Storeg (a', _, _) ->
                    Instr.Storeg (a, s, narrowed old a')
                  | Instr.Call c, Instr.Call c' -> (
                    match (c.Instr.target, c'.Instr.target) with
                    | Instr.Indirect _, Instr.Indirect r' ->
                      let targets =
                        funs_of (pts_get st (f.Func.name, r'))
                        |> List.sort compare
                      in
                      Instr.Call { c with targets }
                    | _ -> orig)
                  | _ -> orig)
                b.Block.instrs cinstrs)
        f)
    p

(** The full §4 pipeline for the pointer-analysis configuration: baseline
    MOD/REF, points-to, refinement, MOD/REF again on the sharper sets.

    When any fixpoint blows its [budget] the partial solution is discarded
    — refinement would narrow tag sets from an under-approximation, which
    is unsound — and [converged] is false; the driver rolls the IR back so
    the compile degrades to the ⊤ ("promotion finds nothing") answer. *)
let run ?budget (p : Program.t) : t =
  let m1 = Modref.run ?budget p in
  let st = analyze ?budget p in
  st.converged <- st.converged && m1.Modref.converged;
  if st.converged then begin
    refine_program p st;
    let m2 =
      Modref.run ?budget ~targets_of:(Callgraph.recorded_targets p) p
    in
    st.converged <- m2.Modref.converged
  end;
  st
