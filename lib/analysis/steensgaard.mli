(** Steensgaard-style unification-based points-to analysis — the cheap rung
    of the precision ladder (paper's related work [20]).  Near-linear
    union-find over pointee cells; conflation on multi-target pointers.
    Runs directly on the non-SSA IL (it is flow-insensitive). *)

open Rp_ir

type t

(** Solve the unification constraints.  [budget] caps the whole-program
    constraint passes (default 100); when exhausted the result is partial
    and {!converged} is false instead of raising. *)
val solve : ?budget:int -> Program.t -> t

(** Whole-program constraint passes performed until stabilization. *)
val iterations : t -> int

(** False when a fixpoint budget was exhausted; a non-converged solution is
    never used to refine the program. *)
val converged : t -> bool

(** Tags / functions in the pointee cell of a register. *)
val tags_pointed_to : t -> Program.t -> string -> Instr.reg -> Tag.t list

val funs_pointed_to : t -> string -> Instr.reg -> string list

(** Narrow pointer-operation tag sets (never widening) and fill
    indirect-call targets from the solution. *)
val refine_program : Program.t -> t -> unit

(** Baseline MOD/REF → unification analysis → refinement → MOD/REF.  On
    budget exhaustion the program is not refined and {!converged} is
    false. *)
val run : ?budget:int -> Program.t -> t
