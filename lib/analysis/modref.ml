(** Interprocedural MOD/REF analysis (§4 of the paper, after Cooper–Kennedy).

    Three steps:

    + {b Limit pointer-based operations.}  "Only tags that have had their
      address taken are placed in the tag sets of pointer-based memory
      operations.  To further limit the tag sets, it only places the tag of
      a local variable into the tag sets of memory operations that appear in
      descendants of the function that creates the local variable."  Every
      tag set that is still the conservative universe is replaced by the
      per-function visible address-taken set; tag sets already narrowed (by
      the front end or by points-to analysis) are left alone.
    + {b Function summaries.}  A function's MOD (resp. REF) set is the union
      of the tags its body may store to (load from), plus the summaries of
      everything it calls; computed over call-graph SCCs in reverse
      topological order, with every member of an SCC receiving the SCC's
      union.
    + {b Annotate call sites} with the callee summaries (union over possible
      targets for indirect calls).

    The analysis is re-runnable: after points-to analysis narrows pointer
    tag sets and indirect targets, calling {!run} again produces the
    sharper summaries. *)

open Rp_ir
module SS = Rp_support.Smaps.String_set

type summary = { mods : Tagset.t; refs : Tagset.t }

type t = {
  graph : Callgraph.t;
  summaries : (string, summary) Hashtbl.t;
  address_taken : Tagset.t;  (** global/heap address-taken tags *)
  iters : int;
      (** function summaries (re)computed by the sparse worklist before
          the fixpoint (observability; see Pipeline.stage_stats) *)
  converged : bool;
      (** false when the summary fixpoint blew its budget: call sites were
          left unannotated (their previous — conservative — MOD/REF sets
          survive) rather than annotated from partial summaries *)
}

(* ------------------------------------------------------------------ *)
(* Address-taken and visibility                                        *)
(* ------------------------------------------------------------------ *)

(** Tags whose address is taken ([Loada]) anywhere, plus every heap-site
    tag.  Split into globals (visible everywhere) and per-creator locals. *)
let address_taken_tags (p : Program.t) =
  let globals = ref Tagset.empty in
  let locals : (string, Tag.t list) Hashtbl.t = Hashtbl.create 16 in
  let add (t : Tag.t) =
    match t.Tag.storage with
    | Tag.Global | Tag.Heap _ -> globals := Tagset.add t !globals
    | Tag.Local fn | Tag.Spill fn ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt locals fn) in
      if not (List.exists (Tag.equal t) cur) then
        Hashtbl.replace locals fn (t :: cur)
  in
  Program.iter_funcs
    (fun f ->
      Func.iter_instrs
        (fun _ i -> match i with Instr.Loada (_, t) -> add t | _ -> ())
        f)
    p;
  Hashtbl.iter (fun _ t -> add t) p.Program.heap_site_tags;
  (!globals, locals)

(** The address-taken tags visible inside function [fn]: all addressed
    globals and heap sites, plus addressed locals of every function that
    (transitively) reaches [fn] in the call graph. *)
let visible_tags (graph : Callgraph.t) globals locals fn =
  Hashtbl.fold
    (fun creator tags acc ->
      if Callgraph.reaches graph creator fn then
        List.fold_left (fun acc t -> Tagset.add t acc) acc tags
      else acc)
    locals globals

(* ------------------------------------------------------------------ *)
(* Pass 1: concretize pointer-op tag sets                              *)
(* ------------------------------------------------------------------ *)

let limit_pointer_ops (p : Program.t) (graph : Callgraph.t) globals locals =
  Program.iter_funcs
    (fun f ->
      let visible = lazy (visible_tags graph globals locals f.Func.name) in
      Func.iter_blocks
        (fun (b : Block.t) ->
          b.Block.instrs <-
            List.map
              (fun i ->
                match i with
                | Instr.Loadg (d, a, ts) when Tagset.is_univ ts ->
                  Instr.Loadg (d, a, Lazy.force visible)
                | Instr.Storeg (a, s, ts) when Tagset.is_univ ts ->
                  Instr.Storeg (a, s, Lazy.force visible)
                | i -> i)
              b.Block.instrs)
        f)
    p

(* ------------------------------------------------------------------ *)
(* Pass 2: function summaries over SCCs                                *)
(* ------------------------------------------------------------------ *)

(** Local (intraprocedural) MOD/REF contribution of a function body,
    excluding calls. *)
let local_contribution (f : Func.t) =
  let mods = ref Tagset.empty in
  let refs = ref Tagset.empty in
  Func.iter_instrs
    (fun _ i ->
      match i with
      | Instr.Loads (_, t) | Instr.Loadc (_, t) -> refs := Tagset.add t !refs
      | Instr.Stores (t, _) -> mods := Tagset.add t !mods
      | Instr.Loadg (_, _, ts) -> refs := Tagset.union ts !refs
      | Instr.Storeg (_, _, ts) -> mods := Tagset.union ts !mods
      | _ -> ())
    f;
  { mods = !mods; refs = !refs }

(** Sparse worklist propagation of [S(f) = local(f) ∪ ⋃ S(callees f)].
    Seeded in reverse topological SCC order (callees first), so an acyclic
    region settles in a single visit per function; only members of cyclic
    SCCs are revisited, and only when a callee's summary actually grew.
    The least fixpoint equals the SCC-union formulation: within an SCC all
    members reach each other, so they converge to the same set.  Returns
    the summaries and the number of summary evaluations performed. *)
let compute_summaries ?budget (p : Program.t) (graph : Callgraph.t) =
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let locals : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let callers : (string, SS.t) Hashtbl.t = Hashtbl.create 16 in
  let budget =
    match budget with
    | Some b -> b
    | None -> 1000 * (List.length (Program.funcs p) + 1)
  in
  let converged = ref true in
  Program.iter_funcs
    (fun f ->
      Hashtbl.replace locals f.Func.name (local_contribution f);
      SS.iter
        (fun callee ->
          Hashtbl.replace callers callee
            (SS.add f.Func.name
               (Option.value ~default:SS.empty
                  (Hashtbl.find_opt callers callee))))
        (Callgraph.callees_of graph f.Func.name))
    p;
  let wl : string Rp_support.Worklist.t = Rp_support.Worklist.create () in
  List.iter (List.iter (Rp_support.Worklist.push wl)) graph.Callgraph.sccs;
  let iters = ref 0 in
  Rp_support.Worklist.run wl (fun fname ->
      if !iters >= budget then converged := false
      else
      match Hashtbl.find_opt locals fname with
      | None -> () (* builtin *)
      | Some local ->
        incr iters;
        let acc =
          SS.fold
            (fun callee acc ->
              match Hashtbl.find_opt summaries callee with
              | Some s ->
                {
                  mods = Tagset.union acc.mods s.mods;
                  refs = Tagset.union acc.refs s.refs;
                }
              | None -> acc)
            (Callgraph.callees_of graph fname)
            local
        in
        let grew =
          match Hashtbl.find_opt summaries fname with
          | Some cur ->
            not (Tagset.equal cur.mods acc.mods && Tagset.equal cur.refs acc.refs)
          | None -> true
        in
        if grew then begin
          Hashtbl.replace summaries fname acc;
          Option.iter
            (SS.iter (Rp_support.Worklist.push wl))
            (Hashtbl.find_opt callers fname)
        end);
  (summaries, !iters, !converged)

(* ------------------------------------------------------------------ *)
(* Pass 3: annotate call sites                                         *)
(* ------------------------------------------------------------------ *)

let annotate_calls (p : Program.t) (graph : Callgraph.t) summaries
    ~(targets_of : Instr.call -> string list) =
  ignore graph;
  Program.iter_funcs
    (fun f ->
      Func.iter_blocks
        (fun (b : Block.t) ->
          b.Block.instrs <-
            List.map
              (fun i ->
                match i with
                | Instr.Call c ->
                  let targets =
                    match c.Instr.target with
                    | Instr.Direct n -> [ n ]
                    | Instr.Indirect _ -> targets_of c
                  in
                  let user_targets =
                    List.filter (fun n -> Program.func_opt p n <> None) targets
                  in
                  let mods, refs =
                    List.fold_left
                      (fun (m, r) n ->
                        match Hashtbl.find_opt summaries n with
                        | Some s ->
                          (Tagset.union m s.mods, Tagset.union r s.refs)
                        | None -> (m, r))
                      (Tagset.empty, Tagset.empty)
                      user_targets
                  in
                  Instr.Call { c with mods; refs; targets }
                | i -> i)
              b.Block.instrs)
        f)
    p

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run MOD/REF over the whole program, rewriting tag sets and call
    annotations in place.  [targets_of] resolves indirect calls; use
    {!Callgraph.conservative_targets} for the baseline or
    {!Callgraph.recorded_targets} after points-to analysis. *)
let run ?(targets_of : (Instr.call -> string list) option) ?budget
    (p : Program.t) : t =
  let targets_of =
    match targets_of with
    | Some f -> f
    | None -> Callgraph.conservative_targets p
  in
  let graph = Callgraph.build p ~targets_of in
  let (globals, locals) = address_taken_tags p in
  limit_pointer_ops p graph globals locals;
  let (summaries, iters, converged) = compute_summaries ?budget p graph in
  (* partial summaries under-approximate MOD/REF; annotating calls with
     them would be unsound, so on a blown budget the existing (⊤ or
     previously computed) call annotations are kept as-is *)
  if converged then annotate_calls p graph summaries ~targets_of;
  { graph; summaries; address_taken = globals; iters; converged }

let summary t name =
  Option.value
    ~default:{ mods = Tagset.empty; refs = Tagset.empty }
    (Hashtbl.find_opt t.summaries name)

let pp ppf t =
  let rows = Hashtbl.fold (fun n s acc -> (n, s) :: acc) t.summaries [] in
  let rows = List.sort compare rows in
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (n, s) ->
          Fmt.pf ppf "%s: MOD=%a REF=%a" n Tagset.pp s.mods Tagset.pp s.refs))
    rows
