(** Interprocedural MOD/REF analysis (paper §4, after Cooper–Kennedy).

    Rewrites the program in place: every ⊤ pointer-operation tag set is
    replaced by the per-function visible address-taken set, and every call
    site receives its callees' MOD/REF summaries (union over possible
    targets for indirect calls).  Re-runnable after points-to refinement
    sharpens the underlying sets. *)

open Rp_ir

type summary = { mods : Tagset.t; refs : Tagset.t }

type t = {
  graph : Callgraph.t;
  summaries : (string, summary) Hashtbl.t;
  address_taken : Tagset.t;  (** addressed globals and heap-site tags *)
  iters : int;  (** summary evaluations performed by the sparse worklist *)
  converged : bool;
      (** false when the summary fixpoint blew its budget; call sites then
          keep their previous (conservative) annotations *)
}

(** Address-taken tags: the globally visible set (globals + heap sites) and
    the per-creator addressed locals. *)
val address_taken_tags :
  Program.t -> Tagset.t * (string, Tag.t list) Hashtbl.t

(** The address-taken tags visible inside a function: everything global
    plus addressed locals of each function that (transitively) reaches it. *)
val visible_tags :
  Callgraph.t -> Tagset.t -> (string, Tag.t list) Hashtbl.t -> string ->
  Tagset.t

(** Intraprocedural MOD/REF contribution of one body, calls excluded. *)
val local_contribution : Func.t -> summary

(** Run the analysis, mutating tag sets and call annotations.
    @param targets_of indirect-call resolution; defaults to
      {!Callgraph.conservative_targets} ("any addressed function").
    @param budget cap on summary evaluations (default: 1000 × functions);
      when exhausted the result has [converged = false] instead of raising,
      and call sites keep their previous annotations. *)
val run :
  ?targets_of:(Instr.call -> string list) -> ?budget:int -> Program.t -> t

(** A function's summary ([empty] for builtins/unknowns). *)
val summary : t -> string -> summary

val pp : Format.formatter -> t -> unit
