(** The [rpcc serve] daemon: a crash-tolerant compile/run service.

    Accepts {!Protocol} batches over a Unix-domain socket and dispatches
    them to the supervised worker pool ({!Rp_support.Pool.run_supervised}
    — per-job deadlines, bounded retries), backed by a content-addressed
    store ({!Rp_support.Cas}) keyed on (pass version, configuration
    fingerprint, source), with a per-client circuit breaker.

    Crash-tolerance contract:
    - every admitted job is journaled ({e recv}) before execution and
      again ({e done}) after it resolves, fsync-per-record;
    - all cache writes are atomic (tmp + rename) and verified on read;
      corrupt entries are quarantined and recomputed, never served;
    - a SIGKILL'd daemon restarted on the same [state_dir] comes back
      {e warm}: it replays the journal tail (corrupt records skipped and
      counted), reports work that was in flight at the kill, and serves
      byte-identical responses for re-submitted jobs from the store;
    - SIGTERM/SIGINT drain gracefully: the in-flight batch finishes and
      is answered, the socket is closed and unlinked, the journal is
      closed, and {!serve} returns (the CLI then exits 0);
    - backpressure: a batch's requests beyond [queue_bound] receive
      [overloaded] responses instead of queueing unboundedly;
    - a [health] request reports served/error counters, cache
      hit/miss/quarantine rates, resilience counters with per-client
      breaker snapshots, and the journal replay summary. *)

type config = {
  socket : string;  (** Unix-domain socket path; stale files are replaced *)
  state_dir : string;  (** holds [cas/] and [journal.jsonl] *)
  jobs : int;  (** worker domains for each batch *)
  queue_bound : int;  (** max jobs admitted per batch *)
  job_timeout : float option;  (** per-job wall-clock deadline, seconds *)
  retries : int;  (** extra attempts per failed job *)
  breaker_threshold : int;  (** consecutive failures tripping a client *)
  breaker_cooldown : float;  (** seconds before a half-open probe *)
}

val default_config : config
(** [socket = "rpcc.sock"], [state_dir = ".rpcc-serve"], auto [jobs],
    [queue_bound = 64], 30 s timeout, 1 retry, threshold 3, 5 s
    cooldown. *)

val serve : config -> unit
(** Run until SIGTERM/SIGINT, then drain and return.  Prints one
    [listening] line to stdout once accepting. *)
