(** The [rpcc serve] daemon: a crash-tolerant compile/run service.

    Accepts {!Protocol} batches over a Unix-domain socket and dispatches
    them to the supervised worker pool ({!Rp_support.Pool.run_supervised}
    — per-job deadlines, bounded retries), backed by a content-addressed
    store ({!Rp_support.Cas}) keyed on (pass version, configuration
    fingerprint, source), with a per-client circuit breaker.

    Crash-tolerance contract:
    - every admitted job is journaled ({e recv}) before execution and
      again ({e done}) after it resolves, fsync-per-record;
    - all cache writes are atomic (tmp + rename) and verified on read;
      corrupt entries are quarantined and recomputed, never served;
    - a SIGKILL'd daemon restarted on the same [state_dir] comes back
      {e warm}: it replays the journal tail (corrupt records skipped and
      counted), reports work that was in flight at the kill, and serves
      byte-identical responses for re-submitted jobs from the store;
    - SIGTERM/SIGINT drain gracefully: the in-flight batch finishes and
      is answered, the socket is closed and unlinked, the journal is
      closed, and {!serve} returns (the CLI then exits 0);
    - backpressure: a batch's requests beyond [queue_bound] receive
      [overloaded] responses instead of queueing unboundedly;
    - a [health] request reports served/error counters, cache
      hit/miss/quarantine rates, resilience counters with per-client
      breaker snapshots, and the journal replay summary. *)

type config = {
  socket : string;
      (** Unix-domain socket path.  A stale leftover file is replaced; a
          socket a {e live} daemon still answers on is refused (usage
          error) — see {!remove_stale_socket} *)
  state_dir : string;  (** holds [journal.jsonl] (and [cas/] by default) *)
  cas_dir : string option;
      (** store root override; fleet shards point this at one shared
          store.  [None] ⇒ [state_dir ^ "/cas"] *)
  shard_id : int option;
      (** fleet membership tag, echoed in [health]; [None] standalone *)
  jobs : int;  (** worker domains for each batch *)
  queue_bound : int;  (** max jobs admitted per batch *)
  job_timeout : float option;  (** per-job wall-clock deadline, seconds *)
  retries : int;  (** extra attempts per failed job *)
  breaker_threshold : int;  (** consecutive failures tripping a client *)
  breaker_cooldown : float;  (** seconds before a half-open probe *)
}

val default_config : config
(** [socket = "rpcc.sock"], [state_dir = ".rpcc-serve"], auto [jobs],
    [queue_bound = 64], 30 s timeout, 1 retry, threshold 3, 5 s
    cooldown. *)

val remove_stale_socket : string -> unit
(** Clear the way for binding [path].  Probe-first: a leftover socket
    file is connected to before anything is unlinked — [ECONNREFUSED]
    means no listener survives and the file is removed; a successful
    connect means a live daemon owns the name and this raises [Failure]
    ("already being served") instead of orphaning it.  Non-socket files
    and unsure probes also raise [Failure]; a missing path is fine. *)

val serve : config -> unit
(** Run until SIGTERM/SIGINT, then drain and return.  Prints one
    [listening] line to stdout once accepting.  Startup replays the
    journal, then {e compacts} it: matched recv/done pairs and corrupt
    lines are dropped (atomic rewrite), leaving only the lost-in-flight
    records; the count dropped is reported as
    [journal.compacted_records] in [health], alongside [uptime_s],
    [shard_id], and the pipeline [pass_version]. *)
