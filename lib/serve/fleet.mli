(** A supervised fleet of [rpcc serve] shard processes.

    The fleet is the daemon's horizontal-scaling story: N shard daemons,
    each with a private socket and journal, all sharing one
    content-addressed store, with requests routed by rendezvous hash of
    their cache key ({!Fleet_client}) so each key's artifacts stay on
    one warm shard.

    Supervision contract:
    - shards are separate [rpcc serve] {e processes} (spawned via
      [create_process], never forked: forking a multi-domain OCaml 5
      runtime is undefined), so a shard crash cannot take the
      supervisor down;
    - a dead shard is reaped and respawned with bounded backoff on the
      same state, restarting warm off the shared store;
    - live shards are health-probed ({!Protocol.Health}) on an
      interval; a {e wedged} shard — alive but failing
      [wedged_threshold] consecutive probes — is SIGKILLed and respawned;
      probe responses are also checked for pipeline [pass_version]
      agreement (a mismatched build is counted, not kill-looped);
    - every respawn ticks the [Respawn] resilience counter; combined
      with the router's failover ("fewer shards = slower, never wrong,
      never lost"), a crash costs recomputation at most.

    Chaos drills: [plant_crash = Some s] SIGKILLs a deterministically
    chosen shard [s] seconds after start; {!kill_shard} does the same on
    demand (the bench/test harnesses use it to force the failover path
    at an exact point in a campaign). *)

module Json = Rp_support.Json

type config = {
  shards : int;  (** shard count, >= 1 *)
  state_dir : string;
      (** holds [shard-<i>.sock], [shard-<i>/] (private journal),
          [shard-<i>.log], and the shared [cas/] *)
  rpcc : string option;
      (** rpcc executable override; default: [$RPCC], then self when
          the executable name starts with "rpcc", then the build-tree
          sibling [../bin/rpcc.exe], then [rpcc] on PATH *)
  jobs : int;  (** per-shard worker domains (0 = auto) *)
  job_timeout : float;  (** per-job deadline forwarded to shards *)
  probe_interval : float;  (** seconds between health-probe sweeps *)
  probe_timeout : float;  (** per-probe client deadline *)
  wedged_threshold : int;
      (** consecutive probe failures before a shard is declared wedged
          and SIGKILLed *)
  plant_crash : float option;
      (** chaos drill: SIGKILL a deterministic shard this many seconds
          after start *)
}

val default_config : config
(** 3 shards, [state_dir = ".rpcc-fleet"], auto jobs, 30 s job timeout,
    2 s probe interval, 10 s probe timeout, wedged threshold 3, no
    planted crash. *)

type t

val start : config -> t
(** Spawn the shards, wait until every socket accepts, then start the
    supervisor domain.  Raises [Failure] if a shard never comes up
    (its log path is named). *)

val stop : t -> unit
(** Stop supervising, SIGTERM every shard, wait for drain (escalating
    to SIGKILL after 10 s), and unlink leftover sockets.  Idempotent. *)

val sockets : t -> string list
(** Shard socket paths, index = shard id; feed to
    {!Fleet_client.create}. *)

val cas_dir : t -> string
(** Root of the shared content-addressed store every shard compiles
    through ([--cas-dir]); chaos drills corrupt cached artifacts here. *)

val kill_shard : t -> int -> unit
(** SIGKILL shard [i] (counted as planted).  The supervisor reaps and
    respawns it; the router fails its in-flight work over meanwhile. *)

val respawns : t -> int
(** Total shard respawns since {!start}. *)

val planted : t -> int
(** Shards deliberately killed ({!kill_shard} / [plant_crash]). *)

val resilience : t -> Rp_support.Resilience.t
(** The fleet's counters; every respawn ticks [Respawn] here. *)

val telemetry_json : t -> Json.t
(** [{"shards", "respawns", "planted", "probes_ok", "probe_failures",
    "pass_version_mismatches", "per_shard": [...]}]. *)

val run : config -> unit
(** Foreground mode for [rpcc fleet]: start, print the membership,
    block until SIGTERM/SIGINT, then {!stop} and return (the CLI exits
    0 with every shard drained and every socket unlinked). *)
