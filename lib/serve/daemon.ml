(** The [rpcc serve] daemon.  See daemon.mli for the contract.

    Concurrency model: the main domain owns the socket, the journal, and
    the per-connection request/response assembly; each connection's
    admitted jobs run on the supervised worker pool.  Job bodies touch
    only thread-safe state (the CAS, the breaker, the resilience
    counters); the plain counters below are main-domain-only. *)

module Json = Rp_support.Json
module Cas = Rp_support.Cas
module Pool = Rp_support.Pool
module Journal = Rp_support.Journal
module Resilience = Rp_support.Resilience
module Breaker = Rp_support.Retry.Breaker
module Config = Rp_driver.Config
module Pipeline = Rp_driver.Pipeline

type config = {
  socket : string;
  state_dir : string;
  cas_dir : string option;
  shard_id : int option;
  jobs : int;
  queue_bound : int;
  job_timeout : float option;
  retries : int;
  breaker_threshold : int;
  breaker_cooldown : float;
}

let default_config =
  {
    socket = "rpcc.sock";
    state_dir = ".rpcc-serve";
    cas_dir = None;
    shard_id = None;
    jobs = 0;
    queue_bound = 64;
    job_timeout = Some 30.;
    retries = 1;
    breaker_threshold = 3;
    breaker_cooldown = 5.;
  }

(** Journal-replay summary, frozen at startup and reported by [health]. *)
type journal_summary = {
  mutable records : int;  (** readable records in the journal at startup *)
  mutable skipped : int;  (** corrupt records skipped by CRC/parse checks *)
  mutable replayed : int;  (** [done] records: work already in the cache *)
  mutable lost_inflight : int;
      (** [recv] records with no matching [done]: jobs that were running
          when the previous daemon died *)
  mutable compacted : int;
      (** records dropped by startup compaction (matched recv/done pairs
          and corrupt lines) *)
}

type state = {
  cfg : config;
  cas : Cas.t;
  journal : Journal.writer;
  resil : Resilience.t;
  breaker : Breaker.t;
  jsum : journal_summary;
  started : float;  (** {!Rp_support.Clock.now} at startup, for uptime *)
  mutable served : int;  (** [ok] responses written *)
  mutable errors : int;  (** [error] responses written *)
  mutable overloaded : int;  (** requests bounced by the queue bound *)
  mutable rejected : int;  (** requests bounced by an open breaker *)
}

(* ------------------------------------------------------------------ *)
(* Journal replay                                                      *)
(* ------------------------------------------------------------------ *)

(** A job's identity across its [recv]/[done] record pair. *)
let record_sig r =
  let f k =
    match Json.member k r with Some (Json.Str s) -> s | _ -> ""
  in
  let id =
    match Json.member "id" r with
    | Some j -> Json.to_string ~indent:false j
    | None -> ""
  in
  String.concat "\x00" [ f "client"; id; f "op"; f "key" ]

let replay ~journal_path jsum =
  let records =
    Journal.load
      ~on_skip:(fun ~line:_ _ -> jsum.skipped <- jsum.skipped + 1)
      journal_path
  in
  jsum.records <- List.length records;
  (* multiset of recv signatures not yet matched by a done *)
  let pending : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let s = record_sig r in
      match Json.member "ev" r with
      | Some (Json.Str "recv") ->
        Hashtbl.replace pending s
          (1 + Option.value (Hashtbl.find_opt pending s) ~default:0)
      | Some (Json.Str "done") -> (
        jsum.replayed <- jsum.replayed + 1;
        match Hashtbl.find_opt pending s with
        | Some n when n > 1 -> Hashtbl.replace pending s (n - 1)
        | Some _ -> Hashtbl.remove pending s
        | None -> ())
      | _ -> ())
    records;
  jsum.lost_inflight <- Hashtbl.fold (fun _ n acc -> acc + n) pending 0;
  (records, pending)

(** Startup compaction.  Matched recv/done pairs carry no information a
    future replay needs (the work already landed in the CAS), so after
    replay the journal is rewritten to hold only the unmatched [recv]
    records — the lost-in-flight set — via tmp + rename, the same
    atomicity discipline as the store.  Keeps the latest n recvs per
    signature when duplicates are owed.  A crash mid-compaction leaves
    the old journal intact; rerunning is idempotent. *)
let compact ~journal_path jsum (records, pending) =
  let kept =
    let owed = Hashtbl.copy pending in
    List.fold_left
      (fun acc r ->
        match Json.member "ev" r with
        | Some (Json.Str "recv") -> (
          let s = record_sig r in
          match Hashtbl.find_opt owed s with
          | Some n when n > 0 ->
            Hashtbl.replace owed s (n - 1);
            r :: acc
          | _ -> acc)
        | _ -> acc)
      [] (List.rev records)
  in
  jsum.compacted <- jsum.records - List.length kept;
  if (jsum.compacted > 0 || jsum.skipped > 0) && Sys.file_exists journal_path
  then begin
    let tmp = journal_path ^ ".compact.tmp" in
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    let w = Journal.create tmp in
    List.iter (Journal.record w) kept;
    Journal.close w;
    Unix.rename tmp journal_path
  end

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

(** The interpreter's cooperative-abort marker (see
    {!Rp_exec.Interp.run}): a [Resource_limit] carrying it means the
    supervised pool's deadline fired, not that the program itself blew a
    resource bound. *)
let is_external_stop msg =
  let sub = "external stop" in
  let n = String.length sub and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
  go 0

(* One probe per process, memoized inside {!Rp_backend.Native.find_cc}
   (with the CAS rung making it survive restarts), so calling this per
   native job or health request costs a hashtable lookup. *)
let native_cc st = Rp_backend.Native.find_cc ~cache:st.cas ()

let result_json (c : Pipeline.cached_run) =
  Json.Obj
    [
      ("output", Json.Str c.Pipeline.output);
      ("checksum", Json.Int c.Pipeline.checksum);
      ("ops", Json.Int c.Pipeline.ops);
      ("loads", Json.Int c.Pipeline.loads);
      ("stores", Json.Int c.Pipeline.stores);
    ]

(** Execute one admitted job.  Deterministic failures — traps, front-end
    rejections, resource exhaustion {e of the program} — become [error]
    responses here, inside the job: retrying them cannot help.  The one
    exception that escapes is an external-stop [Resource_limit]: that is
    the pool's own deadline, and propagating it lets the supervision
    layer do its retry/timeout/quarantine accounting. *)
let handle_op ~should_stop st (r : Protocol.request) : Json.t =
  let err code m = Protocol.error ~id:r.id ~client:r.client ~code m in
  let compile_family ~src ~config payload_of =
    match Protocol.config_of_name config with
    | None -> err "usage" ("unknown config " ^ config)
    | Some cfg ->
      let c =
        Pipeline.compile_and_run_cached ~config:cfg ~should_stop ~cas:st.cas
          src
      in
      Protocol.ok ~id:r.id ~client:r.client (payload_of c)
  in
  try
    match r.op with
    | Protocol.Health ->
      (* answered by the connection loop, never admitted to the pool *)
      err "internal" "health reached the pool"
    | Protocol.Run { src; config; mode = Protocol.Interp } ->
      compile_family ~src ~config (fun c ->
          [ ("result", result_json c); ("stats", c.Pipeline.stats) ])
    | Protocol.Run { src; config; mode = Protocol.Native } -> (
      (* native jobs share the interp path's cache key and artifacts —
         both engines compute the same answer by contract — so a warm
         shard serves either mode from one entry, and the rendezvous
         router keeps this shard's binary cache hot for the cold ones.
         The degradation ladder means a native request never fails for
         infrastructure reasons: it answers slower, from a lower rung,
         and says so in the [exec] object. *)
      match Protocol.config_of_name config with
      | None -> err "usage" ("unknown config " ^ config)
      | Some cfg ->
        let exec_info = ref ("cached", false) in
        let runner p =
          let lad =
            Rp_backend.Native.run_laddered ?deadline:st.cfg.job_timeout
              ~cache:st.cas
              ~key:(Pipeline.cache_key ~config:cfg src)
              ~interp:(fun () ->
                let t0 = Rp_support.Clock.now () in
                let r = Rp_exec.Interp.run ~should_stop p in
                (r, (Rp_support.Clock.now () -. t0) *. 1000.))
              ~cc:(native_cc st) p
          in
          (exec_info :=
             match lad.Rp_backend.Native.l_mode with
             | `Native -> ("native", false)
             | `Interp -> ("interp", true));
          lad.Rp_backend.Native.l_result
        in
        let c =
          Pipeline.compile_and_run_cached ~config:cfg ~should_stop ~runner
            ~cas:st.cas src
        in
        let mode_used, degraded = !exec_info in
        Protocol.ok ~id:r.id ~client:r.client
          [
            ("result", result_json c);
            ("stats", c.Pipeline.stats);
            ( "exec",
              Json.Obj
                [
                  ("mode", Json.Str mode_used);
                  ("degraded", Json.Bool degraded);
                ] );
          ])
    | Protocol.Compile { src; config } ->
      compile_family ~src ~config (fun c ->
          [ ("il", Json.Str c.Pipeline.il); ("stats", c.Pipeline.stats) ])
    | Protocol.Stats { src; config } ->
      compile_family ~src ~config (fun c ->
          [ ("stats", c.Pipeline.stats) ])
    | Protocol.Fuzz { seed; trials } -> (
      let key = Protocol.fuzz_key ~seed ~trials in
      match Cas.get st.cas ~key ~kind:"fuzz" with
      | Some raw -> Protocol.ok ~id:r.id ~client:r.client
          [ ("fuzz", Json.parse raw) ]
      | None ->
        let agreed = ref 0 and diverged = ref 0 in
        let rejected = ref 0 and inconclusive = ref 0 in
        let stop_now () =
          raise
            (Rp_exec.Interp.Resource_limit "external stop during fuzz batch")
        in
        for t = 0 to trials - 1 do
          if should_stop () then stop_now ();
          let src = Rp_fuzz.Gen.program_of_seed ~seed ~trial:t in
          match Rp_fuzz.Difforacle.check ~should_stop src with
          | Rp_fuzz.Difforacle.Agree _ -> incr agreed
          | Rp_fuzz.Difforacle.Rejected _ -> incr rejected
          | Rp_fuzz.Difforacle.Inconclusive _ -> incr inconclusive
          | Rp_fuzz.Difforacle.Diverged _ -> incr diverged
        done;
        (* a deadline can surface as Inconclusive instead of an abort;
           never cache a batch the deadline touched *)
        if should_stop () then stop_now ();
        let summary =
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("trials", Json.Int trials);
              ("agreed", Json.Int !agreed);
              ("diverged", Json.Int !diverged);
              ("rejected", Json.Int !rejected);
              ("inconclusive", Json.Int !inconclusive);
            ]
        in
        Cas.put st.cas ~key ~kind:"fuzz"
          (Json.to_string ~indent:false summary);
        Protocol.ok ~id:r.id ~client:r.client [ ("fuzz", summary) ])
  with
  | Rp_exec.Interp.Resource_limit m when is_external_stop m ->
    raise (Rp_exec.Interp.Resource_limit m)
  | Rp_exec.Interp.Error m -> err "trap" m
  | Rp_exec.Interp.Resource_limit m -> err "resource" m
  | Rp_minic.Srcloc.Error (loc, msg) ->
    err "usage" (Rp_minic.Srcloc.to_string (loc, msg))
  | Failure m -> err "usage" m
  | Stack_overflow -> err "internal" "Stack_overflow"
  | Out_of_memory -> raise Out_of_memory
  | e -> err "internal" (Printexc.to_string e)

(** One pool job: {!handle_op} under the client's circuit.  Only
    escaping exceptions (external stops) count as breaker failures —
    gracefully answered traps and usage errors are the service working
    as intended. *)
let job ~should_stop st (r : Protocol.request) : Json.t =
  match
    Breaker.call st.breaker ~key:r.client (fun () ->
        handle_op ~should_stop st r)
  with
  | Ok resp -> resp
  | Error (Breaker.Open_circuit key) ->
    Protocol.rejected ~id:r.id ~client:r.client
      (Printf.sprintf "circuit open for client %s; back off" key)
  | Error e -> raise e

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let health_json st ~id ~client =
  Protocol.ok ~id ~client
    [
      ( "health",
        Json.Obj
          [
            ("pid", Json.Int (Unix.getpid ()));
            ( "shard_id",
              match st.cfg.shard_id with
              | Some i -> Json.Int i
              | None -> Json.Null );
            ( "uptime_s",
              Json.Float
                (Float.round (Rp_support.Clock.elapsed st.started *. 1e3)
                /. 1e3) );
            ("pass_version", Json.Str Pipeline.pass_version);
            (* probed once per process (memoized in find_cc, persisted
               via the CAS identity cache); [null]/[null] when there is
               no system compiler, so clients can pre-degrade instead of
               submitting native jobs that will ladder down *)
            ( "cc",
              match native_cc st with
              | Some cc -> Json.Str cc.Rp_backend.Native.identity
              | None -> Json.Null );
            ( "native",
              match native_cc st with
              | Some _ -> Json.Bool true
              | None -> Json.Null );
            ("served", Json.Int st.served);
            ("errors", Json.Int st.errors);
            ("overloaded", Json.Int st.overloaded);
            ("rejected", Json.Int st.rejected);
            ("jobs", Json.Int st.cfg.jobs);
            ("queue_bound", Json.Int st.cfg.queue_bound);
            ("cache", Cas.stats_json st.cas);
            ( "resilience",
              Resilience.to_json
                ~breakers:(Breaker.snapshots_json st.breaker)
                st.resil );
            ( "journal",
              Json.Obj
                [
                  ("records", Json.Int st.jsum.records);
                  ("skipped", Json.Int st.jsum.skipped);
                  ("replayed", Json.Int st.jsum.replayed);
                  ("lost_inflight", Json.Int st.jsum.lost_inflight);
                  ("compacted_records", Json.Int st.jsum.compacted);
                ] );
          ] );
    ]

(** What each request line of a batch resolved to before the pool ran. *)
type slot =
  | Immediate of Json.t  (** parse/usage error or [overloaded] *)
  | Deferred_health of Json.t * string  (** (id, client): built post-batch *)
  | Job_slot of int  (** index into the admitted-jobs array *)

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let journal_event st ~ev (r : Protocol.request) extra =
  Journal.record st.journal
    (Json.Obj
       ([
          ("ev", Json.Str ev);
          ("id", r.Protocol.id);
          ("client", Json.Str r.Protocol.client);
          ("op", Json.Str (Protocol.op_name r.Protocol.op));
          ("key", Json.Str (Protocol.op_key r.Protocol.op));
        ]
       @ extra))

let handle_connection st cfd =
  (* a client that connects and then stalls must not wedge the daemon *)
  Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 30.;
  let ic = Unix.in_channel_of_descr cfd in
  let oc = Unix.out_channel_of_descr cfd in
  let lines = read_lines ic in
  let admitted = ref [] in
  let n_admitted = ref 0 in
  let slots =
    List.map
      (fun line ->
        match Json.parse line with
        | exception Json.Parse_error m ->
          Immediate
            (Protocol.error ~id:Json.Null ~client:"anonymous" ~code:"usage"
               ("bad request line: " ^ m))
        | doc -> (
          let id = Option.value (Json.member "id" doc) ~default:Json.Null in
          let client =
            match Json.member "client" doc with
            | Some (Json.Str s) -> s
            | _ -> "anonymous"
          in
          match Protocol.parse_request doc with
          | Error m -> Immediate (Protocol.error ~id ~client ~code:"usage" m)
          | Ok ({ Protocol.op = Protocol.Health; _ } as r) ->
            Deferred_health (r.Protocol.id, r.Protocol.client)
          | Ok r ->
            if !n_admitted >= st.cfg.queue_bound then
              Immediate (Protocol.overloaded ~id ~client)
            else begin
              (* journaled before execution: a crash mid-compute leaves a
                 recv with no done — reported as lost_inflight on restart *)
              journal_event st ~ev:"recv" r [];
              admitted := r :: !admitted;
              incr n_admitted;
              Job_slot (!n_admitted - 1)
            end))
      lines
  in
  let jobs_arr = Array.of_list (List.rev !admitted) in
  let outcomes =
    if Array.length jobs_arr = 0 then [||]
    else
      Pool.run_supervised ~jobs:st.cfg.jobs ?timeout:st.cfg.job_timeout
        ~retries:st.cfg.retries ~resilience:st.resil
        (fun ~should_stop r -> job ~should_stop st r)
        jobs_arr
  in
  let job_response i =
    let r = jobs_arr.(i) in
    let resp =
      match outcomes.(i) with
      | Ok resp -> resp
      | Error (Pool.Timed_out { elapsed; attempts }) ->
        Protocol.error ~id:r.Protocol.id ~client:r.Protocol.client
          ~code:"resource"
          (Printf.sprintf "job timed out after %.1f s (%d attempts)" elapsed
             attempts)
      | Error (Pool.Crashed { reason; attempts }) ->
        Protocol.error ~id:r.Protocol.id ~client:r.Protocol.client
          ~code:"internal"
          (Printf.sprintf "job crashed after %d attempts: %s" attempts reason)
    in
    journal_event st ~ev:"done" r
      [ ("resp", Json.Str (Protocol.response_status resp)) ];
    resp
  in
  List.iter
    (fun slot ->
      let resp =
        match slot with
        | Immediate j -> j
        | Deferred_health (id, client) -> health_json st ~id ~client
        | Job_slot i -> job_response i
      in
      (match Protocol.response_status resp with
      | "ok" -> st.served <- st.served + 1
      | "error" -> st.errors <- st.errors + 1
      | "overloaded" -> st.overloaded <- st.overloaded + 1
      | "rejected" -> st.rejected <- st.rejected + 1
      | _ -> ());
      output_string oc (Json.to_string ~indent:false resp);
      output_char oc '\n')
    slots;
  flush oc

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* probe before unlinking: a connect that succeeds means a live
       daemon owns this name — yanking it out from under that daemon
       would orphan it, so refuse instead *)
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (e, _, _) -> `Unsure e
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match verdict with
    | `Stale -> Unix.unlink path
    | `Gone -> ()
    | `Live ->
      failwith
        (path
       ^ " is already being served by a live daemon; stop it or pick \
          another --socket")
    | `Unsure e ->
      failwith
        (Printf.sprintf
           "%s exists and the liveness probe failed (%s); refusing to \
            unlink it"
           path (Unix.error_message e)))
  | _ -> failwith (path ^ " exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let serve (cfg : config) =
  (* the journal needs state_dir even when the CAS lives elsewhere
     (fleet shards share one store but keep private journals) *)
  mkdir_p cfg.state_dir;
  let cas_dir =
    Option.value cfg.cas_dir
      ~default:(Filename.concat cfg.state_dir "cas")
  in
  let cas = Cas.open_ cas_dir in
  let journal_path = Filename.concat cfg.state_dir "journal.jsonl" in
  let jsum =
    { records = 0; skipped = 0; replayed = 0; lost_inflight = 0;
      compacted = 0 }
  in
  compact ~journal_path jsum (replay ~journal_path jsum);
  let st =
    {
      cfg;
      cas;
      journal = Journal.create journal_path;
      resil = Resilience.create ();
      breaker =
        Breaker.create ~threshold:cfg.breaker_threshold
          ~cooldown:cfg.breaker_cooldown ();
      jsum;
      started = Rp_support.Clock.now ();
      served = 0;
      errors = 0;
      overloaded = 0;
      rejected = 0;
    }
  in
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale_socket cfg.socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen lfd 64;
  Printf.printf "rpcc-serve listening on %s (pid %d)\n%!" cfg.socket
    (Unix.getpid ());
  while not (Atomic.get stop) do
    match Unix.select [ lfd ] [] [] 0.2 with
    | ([ _ ], _, _) ->
      let (cfd, _) = Unix.accept lfd in
      (* one bad connection (stalled reader, dead peer, junk bytes) must
         never take the daemon down *)
      (try handle_connection st cfd with
      | Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
      (try Unix.close cfd with Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* graceful drain: the in-flight batch above has been answered; stop
     accepting, release the socket name, seal the journal *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  Journal.close st.journal
