(** The shard-fleet supervisor.  See fleet.mli.

    Concurrency model: shard processes are children of this process; a
    supervisor domain runs the reap/probe/respawn tick.  All shard-record
    mutation happens under [t.lock]; health probes (which can block for
    [probe_timeout]) run outside it. *)

module Json = Rp_support.Json
module Clock = Rp_support.Clock
module Retry = Rp_support.Retry
module Resilience = Rp_support.Resilience

type config = {
  shards : int;
  state_dir : string;
  rpcc : string option;
  jobs : int;
  job_timeout : float;
  probe_interval : float;
  probe_timeout : float;
  wedged_threshold : int;
  plant_crash : float option;
}

let default_config =
  {
    shards = 3;
    state_dir = ".rpcc-fleet";
    rpcc = None;
    jobs = 0;
    job_timeout = 30.;
    probe_interval = 2.;
    probe_timeout = 10.;
    wedged_threshold = 3;
    plant_crash = None;
  }

(* respawn backoff: slow enough that a router retrying right after a
   crash reliably sees ECONNREFUSED (and fails over) before the
   replacement binds, fast enough that the fleet heals within a tick or
   two; the streak is capped so a crash-looping shard settles at the
   ceiling instead of vanishing *)
let backoff =
  {
    Retry.max_attempts = max_int;
    base_delay = 0.3;
    max_delay = 2.0;
    jitter = 0.25;
  }

type shard = {
  id : int;
  socket : string;
  shard_state : string;
  log : string;
  mutable pid : int;  (** 0 = down *)
  mutable respawns : int;
  mutable probes_ok : int;
  mutable probe_failures : int;  (** total since start *)
  mutable consec_probe_failures : int;
  mutable respawn_at : float;  (** 0. = none scheduled *)
  mutable respawn_streak : int;  (** deaths since the last good probe *)
}

type t = {
  cfg : config;
  rpcc : string;
  cas_dir : string;
  members : shard array;
  resil : Resilience.t;
  lock : Mutex.t;
  stop_flag : bool Atomic.t;
  mutable supervisor : unit Domain.t option;
  mutable planted : int;
  mutable pass_version_mismatches : int;
  mutable next_probe : float;
  mutable plant_at : float;  (** 0. = no planted crash pending *)
}

let locked t f = Mutex.protect t.lock f

(* ------------------------------------------------------------------ *)
(* Locating the rpcc executable                                        *)
(* ------------------------------------------------------------------ *)

(** Shards are separate [rpcc serve] processes, never forks: forking a
    multi-domain OCaml 5 runtime is undefined.  The chain makes the
    fleet spawnable from rpcc itself, from the bench/test executables in
    the same dune build tree, and from anything that sets [$RPCC]. *)
let locate_rpcc override =
  let starts_with_rpcc p =
    let b = Filename.basename p in
    String.length b >= 4 && String.sub b 0 4 = "rpcc"
  in
  match override with
  | Some p -> p
  | None -> (
    match Sys.getenv_opt "RPCC" with
    | Some p when p <> "" -> p
    | _ ->
      let self = Sys.executable_name in
      if starts_with_rpcc self then self
      else
        let sibling =
          Filename.(
            concat (concat (dirname self) (concat ".." "bin")) "rpcc.exe")
        in
        if Sys.file_exists sibling then sibling else "rpcc")

(* ------------------------------------------------------------------ *)
(* Spawning and reaping                                                *)
(* ------------------------------------------------------------------ *)

let spawn_shard t sh =
  let logfd =
    Unix.openfile sh.log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let argv =
    [|
      t.rpcc; "serve";
      "--socket"; sh.socket;
      "--state-dir"; sh.shard_state;
      "--cas-dir"; t.cas_dir;
      "--shard-id"; string_of_int sh.id;
      "--jobs"; string_of_int t.cfg.jobs;
      "--job-timeout"; string_of_float t.cfg.job_timeout;
    |]
  in
  let pid = Unix.create_process t.rpcc argv Unix.stdin logfd logfd in
  (try Unix.close logfd with Unix.Unix_error _ -> ());
  sh.pid <- pid;
  sh.respawn_at <- 0.

(** One supervision tick: reap dead shards (scheduling their respawn
    with backoff), start respawns that are due.  Called under the
    lock. *)
let reap_and_respawn t now =
  Array.iter
    (fun sh ->
      if sh.pid > 0 then begin
        match Unix.waitpid [ Unix.WNOHANG ] sh.pid with
        | (0, _) -> ()
        | (_, _) | (exception Unix.Unix_error (Unix.ECHILD, _, _)) ->
          sh.pid <- 0;
          sh.respawn_streak <- sh.respawn_streak + 1;
          sh.respawn_at <-
            now
            +. Retry.delay_for backoff ~seed:sh.id
                 ~attempt:(min sh.respawn_streak 4)
      end
      else if sh.respawn_at > 0. && now >= sh.respawn_at then begin
        spawn_shard t sh;
        sh.respawns <- sh.respawns + 1;
        Resilience.tick t.resil Resilience.Respawn
      end)
    t.members

(* ------------------------------------------------------------------ *)
(* Health probes                                                       *)
(* ------------------------------------------------------------------ *)

let health_req =
  Json.Obj
    [
      ("schema", Json.Str Protocol.schema);
      ("id", Json.Str "probe");
      ("client", Json.Str "fleet");
      ("op", Json.Str "health");
    ]

let probe_shard t sh =
  match
    Client.call ~timeout:t.cfg.probe_timeout ~socket:sh.socket [ health_req ]
  with
  | [ resp ] when Protocol.response_status resp = "ok" ->
    let pv =
      match Json.member "health" resp with
      | Some h -> (
        match Json.member "pass_version" h with
        | Some (Json.Str v) -> v
        | _ -> "")
      | None -> ""
    in
    locked t (fun () ->
        sh.probes_ok <- sh.probes_ok + 1;
        sh.consec_probe_failures <- 0;
        sh.respawn_streak <- 0;
        (* a shard built from different pipeline sources would fill the
           shared store with keys nobody else can own consistently;
           count it loudly rather than kill-looping it *)
        if pv <> "" && pv <> Rp_driver.Pipeline.pass_version then
          t.pass_version_mismatches <- t.pass_version_mismatches + 1)
  | _ | (exception _) ->
    locked t (fun () ->
        sh.probe_failures <- sh.probe_failures + 1;
        sh.consec_probe_failures <- sh.consec_probe_failures + 1;
        (* a wedged shard (alive but unresponsive) is worse than a dead
           one: the router keeps timing out on it.  Kill it and let the
           respawn path bring back a fresh one *)
        if sh.consec_probe_failures >= t.cfg.wedged_threshold && sh.pid > 0
        then begin
          (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error _ -> ());
          sh.consec_probe_failures <- 0
        end)

(* ------------------------------------------------------------------ *)
(* The supervisor loop                                                 *)
(* ------------------------------------------------------------------ *)

let deterministic_victim t =
  (* seeded, not Random: chaos drills must be replayable *)
  Hashtbl.hash ("plant", t.cfg.shards) mod t.cfg.shards

let kill_shard t i =
  locked t (fun () ->
      let sh = t.members.(i) in
      if sh.pid > 0 then begin
        (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error _ -> ());
        t.planted <- t.planted + 1
      end)

let tick t =
  let now = Clock.now () in
  locked t (fun () -> reap_and_respawn t now);
  if t.plant_at > 0. && now >= t.plant_at then begin
    t.plant_at <- 0.;
    kill_shard t (deterministic_victim t)
  end;
  if now >= t.next_probe then begin
    t.next_probe <- now +. t.cfg.probe_interval;
    Array.iter
      (fun sh -> if sh.pid > 0 then probe_shard t sh)
      t.members
  end

let supervisor_loop t =
  while not (Atomic.get t.stop_flag) do
    tick t;
    Unix.sleepf 0.1
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sockets t = Array.to_list (Array.map (fun sh -> sh.socket) t.members)
let cas_dir t = t.cas_dir

let start (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Fleet.start: shards must be >= 1";
  mkdir_p cfg.state_dir;
  let name i suffix =
    Filename.concat cfg.state_dir (Printf.sprintf "shard-%d%s" i suffix)
  in
  let t =
    {
      cfg;
      rpcc = locate_rpcc cfg.rpcc;
      cas_dir = Filename.concat cfg.state_dir "cas";
      members =
        Array.init cfg.shards (fun i ->
            {
              id = i;
              socket = name i ".sock";
              shard_state = name i "";
              log = name i ".log";
              pid = 0;
              respawns = 0;
              probes_ok = 0;
              probe_failures = 0;
              consec_probe_failures = 0;
              respawn_at = 0.;
              respawn_streak = 0;
            });
      resil = Resilience.create ();
      lock = Mutex.create ();
      stop_flag = Atomic.make false;
      supervisor = None;
      planted = 0;
      pass_version_mismatches = 0;
      next_probe = Clock.now () +. cfg.probe_interval;
      plant_at =
        (match cfg.plant_crash with
        | Some s -> Clock.now () +. s
        | None -> 0.);
    }
  in
  Array.iter (fun sh -> spawn_shard t sh) t.members;
  Array.iter
    (fun sh ->
      if not (Client.wait_ready ~attempts:200 ~delay:0.05 ~socket:sh.socket ())
      then
        failwith
          (Printf.sprintf "fleet: shard %d failed to start (see %s)" sh.id
             sh.log))
    t.members;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let stop t =
  Atomic.set t.stop_flag true;
  Option.iter Domain.join t.supervisor;
  t.supervisor <- None;
  (* graceful drain first; a shard that ignores SIGTERM is killed *)
  Array.iter
    (fun sh ->
      if sh.pid > 0 then
        try Unix.kill sh.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.members;
  Array.iter
    (fun sh ->
      if sh.pid > 0 then begin
        let deadline = Clock.now () +. 10. in
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] sh.pid with
          | (0, _) ->
            if Clock.now () > deadline then begin
              (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] sh.pid)
            end
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
          | _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        wait ();
        sh.pid <- 0
      end)
    t.members;
  (* drained shards unlink their own socket; SIGKILL'd ones cannot *)
  Array.iter
    (fun sh ->
      try Unix.unlink sh.socket with Unix.Unix_error _ -> ())
    t.members

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let respawns t =
  locked t (fun () ->
      Array.fold_left (fun acc sh -> acc + sh.respawns) 0 t.members)

let planted t = locked t (fun () -> t.planted)
let resilience t = t.resil

let telemetry_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("shards", Json.Int t.cfg.shards);
          ( "respawns",
            Json.Int
              (Array.fold_left (fun acc sh -> acc + sh.respawns) 0 t.members)
          );
          ("planted", Json.Int t.planted);
          ( "probes_ok",
            Json.Int
              (Array.fold_left (fun acc sh -> acc + sh.probes_ok) 0 t.members)
          );
          ( "probe_failures",
            Json.Int
              (Array.fold_left
                 (fun acc sh -> acc + sh.probe_failures)
                 0 t.members) );
          ("pass_version_mismatches", Json.Int t.pass_version_mismatches);
          ( "per_shard",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun sh ->
                      Json.Obj
                        [
                          ("shard", Json.Int sh.id);
                          ("pid", Json.Int sh.pid);
                          ("socket", Json.Str sh.socket);
                          ("respawns", Json.Int sh.respawns);
                          ("probes_ok", Json.Int sh.probes_ok);
                          ("probe_failures", Json.Int sh.probe_failures);
                        ])
                    t.members)) );
        ])

(* ------------------------------------------------------------------ *)
(* Foreground mode (rpcc fleet)                                        *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) =
  let t = start cfg in
  Printf.printf "rpcc-fleet: %d shards up under %s (pid %d)\n%!" cfg.shards
    cfg.state_dir (Unix.getpid ());
  Array.iter
    (fun sh ->
      Printf.printf "  shard %d: %s (pid %d)\n%!" sh.id sh.socket sh.pid)
    t.members;
  let stop_requested = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.2
  done;
  stop t;
  Printf.printf "rpcc-fleet: drained\n%!"
