(** The [rpcc-serve/2] wire protocol.  See protocol.mli. *)

module Json = Rp_support.Json

let schema = "rpcc-serve/2"

(* v1 requests (no [mode] field) are still accepted; responses always
   speak v2 *)
let accepted_schemas = [ schema; "rpcc-serve/1" ]

type exec_mode = Interp | Native

let mode_name = function Interp -> "interp" | Native -> "native"

type op =
  | Run of { src : string; config : string; mode : exec_mode }
  | Compile of { src : string; config : string }
  | Stats of { src : string; config : string }
  | Fuzz of { seed : int; trials : int }
  | Health

type request = { id : Json.t; client : string; op : op }

let op_name = function
  | Run _ -> "run"
  | Compile _ -> "compile"
  | Stats _ -> "stats"
  | Fuzz _ -> "fuzz"
  | Health -> "health"

let default_config = "modref/with"

let config_of_name name = List.assoc_opt name Rp_driver.Config.named_grid

let fuzz_key ~seed ~trials =
  Rp_support.Cas.key
    [ Rp_driver.Pipeline.pass_version; "fuzz"; string_of_int seed;
      string_of_int trials ]

(* [Run]'s mode is deliberately absent from the key: both modes compute
   the same answer by contract, so they share result-cache entries, and
   routing native and interp jobs for one program to the same shard is
   exactly what keeps that shard's binary cache hot. *)
let op_key (op : op) =
  match op with
  | Run { src; config; mode = _ }
  | Compile { src; config }
  | Stats { src; config } -> (
    match config_of_name config with
    | Some c -> Rp_driver.Pipeline.cache_key ~config:c src
    | None -> "")
  | Fuzz { seed; trials } -> fuzz_key ~seed ~trials
  | Health -> ""

let parse_request (doc : Json.t) : (request, string) result =
  let str k = match Json.member k doc with Some (Json.Str s) -> Some s | _ -> None in
  let int k = match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None in
  let id = Option.value (Json.member "id" doc) ~default:Json.Null in
  let client = Option.value (str "client") ~default:"anonymous" in
  let src_op mk =
    match str "src" with
    | None -> Error "missing src"
    | Some src ->
      let config = Option.value (str "config") ~default:default_config in
      Ok { id; client; op = mk ~src ~config }
  in
  match Json.member "schema" doc with
  | Some (Json.Str s) when not (List.mem s accepted_schemas) ->
    Error (Printf.sprintf "unsupported schema %s (want %s)" s schema)
  | _ -> (
    match str "op" with
    | None -> Error "missing op"
    | Some "run" -> (
      match Json.member "mode" doc with
      | None | Some (Json.Str "interp") ->
        src_op (fun ~src ~config -> Run { src; config; mode = Interp })
      | Some (Json.Str "native") ->
        src_op (fun ~src ~config -> Run { src; config; mode = Native })
      | Some (Json.Str other) ->
        Error (Printf.sprintf "unknown mode %s (want interp|native)" other)
      | Some _ -> Error "mode must be a string")
    | Some "compile" -> src_op (fun ~src ~config -> Compile { src; config })
    | Some "stats" -> src_op (fun ~src ~config -> Stats { src; config })
    | Some "fuzz" -> (
      match int "seed" with
      | None -> Error "missing seed"
      | Some seed ->
        let trials = Option.value (int "trials") ~default:1 in
        if trials < 1 then Error "trials must be >= 1"
        else Ok { id; client; op = Fuzz { seed; trials } })
    | Some "health" -> Ok { id; client; op = Health }
    | Some other -> Error ("unknown op " ^ other))

(* Field order is fixed so identical logical responses are identical
   bytes. *)
let base ~id ~client ~status rest =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("id", id);
       ("client", Json.Str client);
       ("status", Json.Str status);
     ]
    @ rest)

let ok ~id ~client payload = base ~id ~client ~status:"ok" payload

let error ~id ~client ~code msg =
  base ~id ~client ~status:"error"
    [ ("code", Json.Str code); ("message", Json.Str msg) ]

let overloaded ~id ~client =
  base ~id ~client ~status:"overloaded"
    [ ("message", Json.Str "queue bound exceeded; resubmit") ]

let rejected ~id ~client msg =
  base ~id ~client ~status:"rejected" [ ("message", Json.Str msg) ]

let response_status doc =
  match Json.member "status" doc with Some (Json.Str s) -> s | _ -> ""
