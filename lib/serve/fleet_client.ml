(** Rendezvous-hash router over a fleet of shards.  See fleet_client.mli. *)

module Json = Rp_support.Json
module Resilience = Rp_support.Resilience

exception All_shards_dead

(* ------------------------------------------------------------------ *)
(* Pure rendezvous (highest-random-weight) ranking                     *)
(* ------------------------------------------------------------------ *)

let score ~shard ~key = Digest.string (string_of_int shard ^ ":" ^ key)

let rank ~shards ~key =
  List.init shards (fun i -> (score ~shard:i ~key, i))
  |> List.sort (fun (a, i) (b, j) ->
         match compare (b : string) a with 0 -> compare i j | c -> c)
  |> List.map snd

let owner ~shards ~key =
  match rank ~shards ~key with
  | [] -> invalid_arg "Fleet_client.owner: shards must be >= 1"
  | s :: _ -> s

(* ------------------------------------------------------------------ *)
(* The router                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  sockets : string array;
  alive : bool array;
  timeout : float option;
  resil : Resilience.t option;
  mutable failovers : int;
  routed : int array;
  errors : int array;
}

let create ?timeout ?resilience ~sockets () =
  let sockets = Array.of_list sockets in
  let n = Array.length sockets in
  if n = 0 then invalid_arg "Fleet_client.create: no sockets";
  {
    sockets;
    alive = Array.make n true;
    timeout;
    resil = resilience;
    failovers = 0;
    routed = Array.make n 0;
    errors = Array.make n 0;
  }

let shards t = Array.length t.sockets
let failovers t = t.failovers

let request_key doc =
  match Protocol.parse_request doc with
  | Ok r -> Protocol.op_key r.Protocol.op
  | Error _ -> ""

(** Quick reconnect probe for shards marked dead on a previous round: a
    respawned shard rejoins the ring, pulling its keys back to the warm
    cache-local owner. *)
let revive t =
  Array.iteri
    (fun i alive ->
      if not alive then
        if Client.wait_ready ~attempts:1 ~delay:0. ~socket:t.sockets.(i) ()
        then t.alive.(i) <- true)
    t.alive

let live_rank t ~key =
  rank ~shards:(Array.length t.sockets) ~key
  |> List.filter (fun i -> t.alive.(i))

let route ?plant t (reqs : Json.t list) : Json.t list =
  let n = List.length reqs in
  revive t;
  let responses = Array.make n Json.Null in
  let planted = ref false in
  (* each round groups the outstanding requests by their highest-ranked
     live shard and sends one batch per shard; a failed batch marks that
     shard dead and rolls its requests into the next round, so every
     round either finishes work or shrinks the ring — termination and
     progress are both structural *)
  let rec dispatch pending =
    match pending with
    | [] -> ()
    | _ ->
      let groups : (int, (int * Json.t) list) Hashtbl.t = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun (i, doc, key) ->
          match live_rank t ~key with
          | [] -> raise All_shards_dead
          | s :: _ ->
            if not (Hashtbl.mem groups s) then order := s :: !order;
            Hashtbl.replace groups s
              ((i, doc)
              :: Option.value (Hashtbl.find_opt groups s) ~default:[]))
        pending;
      (match (plant, List.rev !order) with
      | Some f, s :: _ when not !planted ->
        planted := true;
        f s
      | _ -> ());
      let retry = ref [] in
      (* each shard's sub-batch goes out on its own domain so the shards
         compute in parallel; effects (responses, liveness, telemetry)
         are applied serially after the joins, so no locking is needed *)
      let jobs =
        List.map
          (fun s ->
            let items = List.rev (Hashtbl.find groups s) in
            let docs = List.map snd items in
            ( s,
              items,
              Domain.spawn (fun () ->
                  match
                    Client.call ?timeout:t.timeout ~socket:t.sockets.(s) docs
                  with
                  | resps when List.length resps = List.length docs ->
                    Ok resps
                  | _ ->
                    (* short reply: the shard died mid-batch; partial
                       responses are discarded and the whole sub-batch
                       re-routed — the CAS makes the re-served answers
                       byte-identical *)
                    Error ()
                  | exception Unix.Unix_error _ -> Error ()
                  | exception Client.Timeout _ -> Error ()
                  | exception Failure _ -> Error ()) ))
          (List.rev !order)
      in
      List.iter
        (fun (s, items, d) ->
          match Domain.join d with
          | Ok resps ->
            List.iter2 (fun (i, _) resp -> responses.(i) <- resp) items resps;
            t.routed.(s) <- t.routed.(s) + List.length items
          | Error () ->
            t.alive.(s) <- false;
            t.errors.(s) <- t.errors.(s) + 1;
            t.failovers <- t.failovers + List.length items;
            Option.iter
              (fun r ->
                List.iter
                  (fun _ -> Resilience.tick r Resilience.Failover)
                  items)
              t.resil;
            retry :=
              !retry @ List.map (fun (i, d) -> (i, d, request_key d)) items)
        jobs;
      dispatch !retry
  in
  dispatch (List.mapi (fun i doc -> (i, doc, request_key doc)) reqs);
  Array.to_list responses

let telemetry_json t =
  Json.Obj
    [
      ("shards", Json.Int (Array.length t.sockets));
      ("failovers", Json.Int t.failovers);
      ( "per_shard",
        Json.List
          (List.init (Array.length t.sockets) (fun i ->
               Json.Obj
                 [
                   ("shard", Json.Int i);
                   ("socket", Json.Str t.sockets.(i));
                   ("alive", Json.Bool t.alive.(i));
                   ("routed", Json.Int t.routed.(i));
                   ("errors", Json.Int t.errors.(i));
                 ])) );
    ]
