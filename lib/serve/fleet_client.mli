(** Client-side router for a {!Fleet} of [rpcc serve] shards.

    Each request is routed by rendezvous (highest-random-weight) hashing
    of its content-addressed key ({!Protocol.op_key}): every (shard, key)
    pair gets a deterministic score and the live shard with the highest
    score owns the key.  Rendezvous gives the two properties a cache
    fleet needs with no coordination state:

    - {b stable assignment} — the same key always lands on the same
      shard while membership is unchanged, so its cache stays hot;
    - {b minimal reshuffle} — when a shard leaves, only {e its} keys
      move (to their second choice); every other key keeps its owner.
      When it rejoins, exactly those keys come back.

    Failover contract: a batch that cannot be served by its owner
    (connect refused, timeout, short reply) is re-sent {e whole} to the
    next-ranked live shard.  Requests are idempotent against the shared
    content-addressed store, so re-execution is at worst recomputation —
    fewer shards means slower, never wrong and never lost. *)

module Json = Rp_support.Json

exception All_shards_dead
(** Raised by {!route} when every shard has been marked dead. *)

val rank : shards:int -> key:string -> int list
(** Shard ids [0..shards-1] ordered best-first for [key].  Pure and
    deterministic. *)

val owner : shards:int -> key:string -> int
(** [List.hd (rank ~shards ~key)]; raises [Invalid_argument] when
    [shards < 1]. *)

val request_key : Json.t -> string
(** The routing key of one request line: {!Protocol.op_key} of the
    parsed request, [""] for health/unparseable lines (routed to a
    fixed shard rather than spread). *)

type t

val create :
  ?timeout:float ->
  ?resilience:Rp_support.Resilience.t ->
  sockets:string list ->
  unit ->
  t
(** A router over the shard sockets (index = shard id).  [?timeout] is
    passed to every {!Client.call}; [?resilience] receives a
    [Failover] tick per re-routed request.  Not thread-safe: one
    router per driving thread. *)

val shards : t -> int

val route : ?plant:(int -> unit) -> t -> Json.t list -> Json.t list
(** Send the batch, responses in request order.  Dead shards are
    re-probed first (rejoin), then requests are grouped by owner and
    the per-shard sub-batches dispatched in parallel (one domain per
    shard); failures fail over down each request's rank order.
    [?plant] is a chaos hook: called once with the first sub-batch's
    target shard id {e before} anything is sent — killing that shard in
    the hook forces the failover path deterministically.  Raises
    {!All_shards_dead} when no shard answers. *)

val failovers : t -> int
(** Requests re-routed off a dead shard since [create]. *)

val telemetry_json : t -> Json.t
(** [{"shards", "failovers", "per_shard": [{"shard", "socket", "alive",
    "routed", "errors"}]}]. *)
