(** Client side of the batch exchange.  See client.mli. *)

module Json = Rp_support.Json
module Clock = Rp_support.Clock

exception Timeout of string

let call ?timeout ~socket (reqs : Json.t list) : Json.t list =
  let deadline = Option.map (fun s -> Clock.now () +. s) timeout in
  let remaining () = Option.map (fun d -> d -. Clock.now ()) deadline in
  let timed_out stage =
    raise
      (Timeout
         (Printf.sprintf "no answer from %s within %.1f s (%s)" socket
            (Option.value timeout ~default:0.)
            stage))
  in
  let check stage =
    match remaining () with Some r when r <= 0. -> timed_out stage | _ -> ()
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      (* SO_RCVTIMEO/SO_SNDTIMEO bound each syscall; the select loop
         below enforces the overall deadline across syscalls, so a daemon
         that trickles bytes forever still cannot wedge the client *)
      Option.iter
        (fun s ->
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
          with Unix.Unix_error _ | Invalid_argument _ -> ())
        timeout;
      let payload =
        let buf = Buffer.create 4096 in
        List.iter
          (fun r ->
            Buffer.add_string buf (Json.to_string ~indent:false r);
            Buffer.add_char buf '\n')
          reqs;
        Buffer.contents buf
      in
      let b = Bytes.unsafe_of_string payload in
      let n = Bytes.length b in
      let rec send off =
        if off < n then begin
          check "write";
          match Unix.write fd b off (n - off) with
          | written -> send (off + written)
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            timed_out "write"
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
        end
      in
      send 0;
      (* the daemon reads to EOF before answering the batch *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let acc = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec recv () =
        check "read";
        let tick =
          match remaining () with None -> 1.0 | Some r -> min r 1.0
        in
        match Unix.select [ fd ] [] [] tick with
        | ([], _, _) -> recv ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | got ->
            Buffer.add_subbytes acc chunk 0 got;
            recv ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            recv ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
      in
      recv ();
      Buffer.contents acc
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "")
      |> List.map (fun line ->
             match Json.parse line with
             | doc -> doc
             | exception Json.Parse_error m ->
               failwith ("unparseable response line: " ^ m)))

let wait_ready ?(attempts = 100) ?(delay = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then false
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf delay;
        go (n - 1)
  in
  go attempts
