(** Client side of the batch exchange.  See client.mli. *)

module Json = Rp_support.Json

let call ~socket (reqs : Json.t list) : Json.t list =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      List.iter
        (fun r ->
          output_string oc (Json.to_string ~indent:false r);
          output_char oc '\n')
        reqs;
      flush oc;
      (* the daemon reads to EOF before answering the batch *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let rec go acc =
        match input_line ic with
        | line -> (
          match Json.parse line with
          | doc -> go (doc :: acc)
          | exception Json.Parse_error m ->
            failwith ("unparseable response line: " ^ m))
        | exception End_of_file -> List.rev acc
      in
      go [])

let wait_ready ?(attempts = 100) ?(delay = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then false
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf delay;
        go (n - 1)
  in
  go attempts
