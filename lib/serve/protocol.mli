(** The [rpcc-serve/2] wire protocol.

    Line-oriented JSON over a Unix-domain socket, batch-per-connection:
    the client writes one request object per line, shuts down its write
    side, and the daemon replies with one response object per request,
    {e in request order}, then closes.

    Request: [{"schema": "rpcc-serve/2", "id": <any>, "client": <str>,
    "op": "run"|"compile"|"stats"|"fuzz"|"health", ...}] with
    op-specific fields — [src] (+ optional [config], a
    {!Rp_driver.Config.named_grid} name, default ["modref/with"]) for
    the compile family, [seed] (+ optional [trials], default 1) for
    [fuzz].  [run] additionally takes an optional [mode] ∈ {["interp"],
    ["native"]}, default ["interp"]: a [native] run is served through
    the compiled-C backend's degradation ladder and its payload carries
    an [exec] object naming the rung that answered.  [id] is echoed
    verbatim in the response; [client] (default ["anonymous"]) names the
    circuit-breaker key.  v1 requests ([rpcc-serve/1], which had no
    [mode]) are still accepted; responses always speak v2.

    Response: [{"schema", "id", "client", "status", ...}] where [status]
    is [ok] (op-specific payload fields follow), [error] (fields [code]
    ∈ {usage, trap, resource, internal} and [message]), [overloaded]
    (the batch exceeded the daemon's queue bound; resubmit), or
    [rejected] (the client's circuit is open; back off).

    Responses are built deterministically — same request, same cached
    artifacts ⇒ byte-identical response line.  Deliberately {e no}
    [cached] field: a warm daemon is indistinguishable from a cold one
    except through [health] and latency. *)

module Json = Rp_support.Json

val schema : string
(** ["rpcc-serve/2"]. *)

type exec_mode = Interp | Native

val mode_name : exec_mode -> string
(** ["interp"] / ["native"]. *)

type op =
  | Run of { src : string; config : string; mode : exec_mode }
      (** compile + execute; payload [result] + [stats], and for
          [Native] requests an [exec] object ([mode] actually used +
          [degraded] flag) — the answer itself is mode-independent by
          the backend's equivalence contract *)
  | Compile of { src : string; config : string }
      (** payload [il] (serialized post-pipeline program) + [stats] *)
  | Stats of { src : string; config : string }  (** payload [stats] only *)
  | Fuzz of { seed : int; trials : int }
      (** differential-oracle trials; payload [fuzz] summary *)
  | Health  (** daemon self-report; answered without entering the pool *)

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  client : string;
  op : op;
}

val op_name : op -> string

val parse_request : Json.t -> (request, string) result
(** Validate one request line.  [Error reason] maps to a [usage] error
    response. *)

val config_of_name : string -> Rp_driver.Config.t option
(** Look up a {!Rp_driver.Config.named_grid} name. *)

val fuzz_key : seed:int -> trials:int -> string
(** The content-addressed key a fuzz batch's summary lives under. *)

val op_key : op -> string
(** The content-addressed key the op's artifacts live under ([""] for
    [Health] and unknown configs).  The daemon journals it with each
    request record so replay can match work to cache entries; the fleet
    router hashes it so one op always lands on the shard whose cache is
    warm for it. *)

(** {2 Response constructors} *)

val ok : id:Json.t -> client:string -> (string * Json.t) list -> Json.t
val error : id:Json.t -> client:string -> code:string -> string -> Json.t
val overloaded : id:Json.t -> client:string -> Json.t
val rejected : id:Json.t -> client:string -> string -> Json.t

val response_status : Json.t -> string
(** The [status] field of a response ([""] when absent). *)
