(** Client side of the {!Protocol} batch exchange. *)

module Json = Rp_support.Json

val call : socket:string -> Json.t list -> Json.t list
(** Connect to the daemon, send the requests (one compact JSON line
    each), shut down the write side, and read the response lines to EOF.
    Responses come back in request order.  Raises [Unix.Unix_error] if
    the daemon is not listening and [Failure] on an unparseable response
    line. *)

val wait_ready : ?attempts:int -> ?delay:float -> socket:string -> unit -> bool
(** Poll-connect until the daemon accepts (true) or [attempts] × [delay]
    expire (false).  Defaults: 100 attempts, 50 ms apart. *)
