(** Client side of the {!Protocol} batch exchange. *)

module Json = Rp_support.Json

exception Timeout of string
(** Raised by {!call} when [?timeout] expires before the daemon has
    answered the whole batch: a wedged or dead-but-connected daemon must
    not block the client forever.  The payload names the socket, the
    budget, and the stage (write/read) that starved. *)

val call : ?timeout:float -> socket:string -> Json.t list -> Json.t list
(** Connect to the daemon, send the requests (one compact JSON line
    each), shut down the write side, and read the response lines to EOF.
    Responses come back in request order.  [?timeout] is an overall
    wall-clock budget for the exchange (enforced with [SO_RCVTIMEO]/
    [SO_SNDTIMEO] plus a deadline across syscalls); absent means wait
    forever.  Raises [Unix.Unix_error] if the daemon is not listening,
    {!Timeout} on an expired budget, and [Failure] on an unparseable
    response line. *)

val wait_ready : ?attempts:int -> ?delay:float -> socket:string -> unit -> bool
(** Poll-connect until the daemon accepts (true) or [attempts] × [delay]
    expire (false).  Defaults: 100 attempts, 50 ms apart. *)
