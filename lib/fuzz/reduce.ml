(** Delta-debugging reducer for differential-oracle failures.

    Line-oriented ddmin over Mini-C source: the caller supplies a
    predicate saying whether a candidate still reproduces the original
    failure, and the reducer greedily shrinks while the predicate keeps
    answering {!Fail}.  Four transformation families, iterated to a
    fixpoint under a wall-clock budget:

    - {b structured deletion} — remove a whole brace-balanced region
      (function, loop, or conditional), largest first;
    - {b unwrapping} — delete just the header and closer of a region,
      splicing its body into the parent (inlining a loop to one arm);
    - {b chunk deletion} — classic ddmin over shrinking runs of lines,
      filtered to brace-neutral chunks;
    - {b expression simplification} — replace a parenthesized binary
      expression with one of its operands.

    Candidates that would not even parse simply earn a {!Pass} verdict
    from the oracle-backed predicate and are discarded — the reducer
    never needs its own notion of validity.  Predicates answering
    {!Quarantine} (fuel or deadline exhaustion) are counted separately
    and treated as non-reproducing, so a shrink step that turns the
    program into a slow one is rejected rather than trusted. *)

type verdict = Fail | Pass | Quarantine

type result = {
  reduced : string;
  original_lines : int;
  reduced_lines : int;
  candidates : int;
  accepted : int;
  quarantined : int;
  deadline_hit : bool;
}

let count_lines s =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' s))

(* ------------------------------------------------------------------ *)
(* Line structure                                                      *)
(* ------------------------------------------------------------------ *)

let net_braces line =
  String.fold_left
    (fun n c -> if c = '{' then n + 1 else if c = '}' then n - 1 else n)
    0 line

(** All (i, j) with line [i] opening a brace region that closes at [j]. *)
let balanced_ranges lines =
  let n = Array.length lines in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if net_braces lines.(i) > 0 then begin
      let d = ref 0 and j = ref i and found = ref false in
      while (not !found) && !j < n do
        d := !d + net_braces lines.(!j);
        if !d = 0 then found := true else incr j
      done;
      if !found then acc := (i, !j) :: !acc
    end
  done;
  (* biggest regions first: one accepted deletion removes the most *)
  List.sort (fun (a, b) (c, d) -> compare (d - c) (b - a)) !acc

let delete_range lines i j =
  List.filteri (fun k _ -> k < i || k > j) lines

let delete_two lines i j =
  List.filteri (fun k _ -> k <> i && k <> j) lines

(* ------------------------------------------------------------------ *)
(* Expression simplification                                           *)
(* ------------------------------------------------------------------ *)

let binops =
  [ " + "; " - "; " * "; " / "; " % "; " & "; " >> "; " << "; " < "; " <= ";
    " == "; " != "; " > " ]

(** Split [s] (the inside of a paren group) at its first top-level binary
    operator, if any. *)
let split_binary s =
  let n = String.length s in
  let at_op i op =
    let k = String.length op in
    i + k <= n && String.sub s i k = op
  in
  let rec go i depth =
    if i >= n then None
    else
      match s.[i] with
      | '(' | '[' -> go (i + 1) (depth + 1)
      | ')' | ']' -> go (i + 1) (depth - 1)
      | _ when depth = 0 -> (
        match List.find_opt (at_op i) binops with
        | Some op ->
          Some (String.sub s 0 i, String.sub s (i + String.length op)
                  (n - i - String.length op))
        | None -> go (i + 1) depth)
      | _ -> go (i + 1) depth
  in
  go 0 0

(** Up to [limit] candidate rewrites of [line], each replacing one
    parenthesized binary expression with one of its operands. *)
let simplify_line ?(limit = 6) line =
  let n = String.length line in
  let out = ref [] and count = ref 0 in
  let i = ref 0 in
  while !i < n && !count < limit do
    if line.[!i] = '(' then begin
      (* find the matching close paren *)
      let d = ref 0 and j = ref !i and stop = ref (-1) in
      while !stop < 0 && !j < n do
        (match line.[!j] with
        | '(' -> incr d
        | ')' ->
          decr d;
          if !d = 0 then stop := !j
        | _ -> ());
        incr j
      done;
      if !stop > !i then begin
        let inner = String.sub line (!i + 1) (!stop - !i - 1) in
        match split_binary inner with
        | Some (a, b) ->
          let rewrite part =
            String.sub line 0 !i ^ String.trim part
            ^ String.sub line (!stop + 1) (n - !stop - 1)
          in
          out := rewrite a :: rewrite b :: !out;
          count := !count + 2
        | None -> ()
      end
    end;
    incr i
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The reduction loop                                                  *)
(* ------------------------------------------------------------------ *)

let run ?(budget = 30.) ?(should_stop = fun () -> false) ~predicate
    (src : string) : result =
  let t0 = Rp_support.Clock.now () in
  let deadline_hit = ref false in
  let over () =
    let o = Rp_support.Clock.elapsed t0 > budget || should_stop () in
    if o then deadline_hit := true;
    o
  in
  let candidates = ref 0 and accepted = ref 0 and quarantined = ref 0 in
  (* [Some lines'] when the candidate still reproduces the failure *)
  let try_candidate lines' =
    if over () then None
    else begin
      incr candidates;
      match predicate (String.concat "\n" lines') with
      | Fail ->
        incr accepted;
        Some lines'
      | Pass -> None
      | Quarantine ->
        incr quarantined;
        None
    end
  in
  let rec first_success = function
    | [] -> None
    | mk :: rest -> (
      if over () then None
      else
        match try_candidate (mk ()) with
        | Some _ as r -> r
        | None -> first_success rest)
  in
  (* Run one transformation family to its own fixpoint: regenerate
     candidates from the current lines after every accepted shrink. *)
  let to_fixpoint gen lines =
    let cur = ref lines and progress = ref true in
    while !progress && not (over ()) do
      progress := false;
      match first_success (gen !cur) with
      | Some lines' ->
        cur := lines';
        progress := true
      | None -> ()
    done;
    !cur
  in
  let structured lines =
    let arr = Array.of_list lines in
    List.concat_map
      (fun (i, j) ->
        [ (fun () -> delete_range lines i j);
          (fun () -> delete_two lines i j) ])
      (balanced_ranges arr)
  in
  let chunks lines =
    let arr = Array.of_list lines in
    let n = Array.length arr in
    let cands = ref [] in
    List.iter
      (fun size ->
        let i = ref 0 in
        while !i + size <= n do
          let j = !i + size - 1 in
          let net = ref 0 in
          for k = !i to j do
            net := !net + net_braces arr.(k)
          done;
          let i0 = !i in
          if !net = 0 then
            cands := (fun () -> delete_range lines i0 j) :: !cands;
          i := !i + max 1 (size / 2)
        done)
      [ 16; 8; 4; 2; 1 ];
    List.rev !cands
  in
  let simplify lines =
    let arr = Array.of_list lines in
    let cands = ref [] in
    Array.iteri
      (fun i line ->
        List.iter
          (fun line' ->
            cands :=
              (fun () ->
                List.mapi (fun k l -> if k = i then line' else l) lines)
              :: !cands)
          (simplify_line line))
      arr;
    List.rev !cands
  in
  let original_lines = count_lines src in
  let start = String.split_on_char '\n' src in
  let cur = ref start and progress = ref true in
  while !progress && not (over ()) do
    let before = List.length !cur in
    cur := to_fixpoint structured !cur;
    cur := to_fixpoint chunks !cur;
    cur := to_fixpoint simplify !cur;
    progress := List.length !cur < before
  done;
  (* drop whitespace-only lines if the result still reproduces *)
  let stripped = List.filter (fun l -> String.trim l <> "") !cur in
  if List.length stripped < List.length !cur then begin
    match try_candidate stripped with
    | Some lines' -> cur := lines'
    | None -> ()
  end;
  let reduced = String.concat "\n" !cur in
  {
    reduced;
    original_lines;
    reduced_lines = count_lines reduced;
    candidates = !candidates;
    accepted = !accepted;
    quarantined = !quarantined;
    deadline_hit = !deadline_hit;
  }
