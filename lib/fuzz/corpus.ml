(** Seed programs for the fault-injection harness.

    Deliberately tiny (hundreds to a few thousand dynamic operations): in
    oracle mode every guarded pass executes the program twice, so a fuzz
    campaign compiles each seed dozens of times.  Each program still
    exercises the IL features the fault classes target: scalar stores in
    loops (promotion material), pointer loads/stores with tag sets,
    direct and indirect control flow, calls, and heap allocation. *)

type seed = { name : string; source : string }

(* global counters mutated in a call-carrying loop: sStore/sLoad traffic,
   promotable tags, and an address-taken global *)
let counters =
  {|
int total;
int evens;
int calls;

void bump(int *slot, int v) {
  *slot = *slot + v;
  calls = calls + 1;
}

int main() {
  int i;
  total = 0;
  evens = 0;
  calls = 0;
  for (i = 0; i < 40; i++) {
    total = total + i;
    if (i % 2 == 0) {
      evens = evens + 1;
      bump(&total, 1);
    }
  }
  print_int(total);
  print_int(evens);
  print_int(calls);
  return 0;
}
|}

(* array traffic through pointer parameters: Loadg/Storeg with real tag
   sets, the shape pointer-based promotion (and Shrink_tagset) cares about *)
let vecsum =
  {|
int data[32];
int acc;

void fill(int *a, int n) {
  int i;
  for (i = 0; i < n; i++) a[i] = i * 3 + 1;
}

int total(int *a, int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) s = s + a[i];
  return s;
}

int main() {
  fill(data, 32);
  acc = total(data, 32);
  acc = acc + total(data, 16);
  print_int(acc);
  return 0;
}
|}

(* heap cells plus a conditional call chain: heap-site tags, MOD/REF
   summaries that differ per callee, and branchy control flow *)
let cells =
  {|
int steps;

int step(int *cell, int mode) {
  if (mode == 0) *cell = *cell + 7;
  else *cell = *cell * 2;
  steps = steps + 1;
  return *cell;
}

int main() {
  int *a = malloc(1);
  int *b = malloc(1);
  int i;
  int last = 0;
  *a = 1;
  *b = 100;
  steps = 0;
  for (i = 0; i < 12; i++) {
    last = step(a, i % 2);
    last = last + step(b, (i + 1) % 2);
  }
  print_int(*a);
  print_int(*b);
  print_int(last);
  print_int(steps);
  free(a);
  free(b);
  return 0;
}
|}

(* nested loops with an invariant pointer expression: LICM + PRE material,
   deeper block structure for the control-flow fault classes *)
let stencil =
  {|
int grid[64];
int edge;

void relax(int *g, int n, int rounds) {
  int r;
  int i;
  for (r = 0; r < rounds; r++) {
    for (i = 1; i < n - 1; i++) {
      g[i] = (g[i - 1] + g[i + 1]) / 2;
    }
    edge = edge + g[0] + g[n - 1];
  }
}

int main() {
  int i;
  for (i = 0; i < 64; i++) grid[i] = i % 9;
  edge = 0;
  relax(grid, 64, 6);
  int sum = 0;
  for (i = 0; i < 64; i++) sum = sum + grid[i];
  print_int(sum);
  print_int(edge);
  return 0;
}
|}

let all : seed list =
  [
    { name = "counters"; source = counters };
    { name = "vecsum"; source = vecsum };
    { name = "cells"; source = cells };
    { name = "stencil"; source = stencil };
  ]
