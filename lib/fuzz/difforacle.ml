(** Cross-configuration differential oracle (see [rpcc gen-fuzz]).

    One generated (safe, terminating) program; seven compiles.  The [O0]
    reference — front-end semantics, no analysis, no optimizer — fixes the
    intended behaviour, then each of the six grid configurations (the
    paper's four plus the §3.3 [modref/ptr] and [pointer/ptr] cells) must
    reproduce its output and checksum exactly, trap identically if it
    traps, and finish within a fuel budget proportional to the reference
    run.  Any difference is a compiler bug by construction, because the
    generator never emits undefined behaviour.

    Beyond the behavioural comparison, each grid compile can run with the
    hardened pipeline armed ({!Verify} adds per-pass structural
    validation, {!OraclePasses} the per-pass execution oracle that also
    catches unsound dynamic-count regressions), turning every rollback
    recorded by the isolation guard into a reported divergence with the
    offending pass named.

    The oracle can also {e plant} a fault (via {!Faultgen.mutate}) inside
    the first guarded pass of every grid compile — never the reference —
    which is how the end-to-end tests prove a real miscompile is caught
    and shrunk. *)

module Config = Rp_driver.Config
module Pipeline = Rp_driver.Pipeline
module Interp = Rp_exec.Interp

type mode = Plain | Verify | OraclePasses

let mode_name = function
  | Plain -> "plain"
  | Verify -> "verify"
  | OraclePasses -> "oracle"

type cls =
  | Crash
  | Degraded_pass
  | Count_regression
  | Output_mismatch
  | Checksum_mismatch
  | Trap_mismatch
  | Fuel_imbalance

let class_name = function
  | Crash -> "crash"
  | Degraded_pass -> "degraded"
  | Count_regression -> "counts"
  | Output_mismatch -> "output"
  | Checksum_mismatch -> "checksum"
  | Trap_mismatch -> "trap"
  | Fuel_imbalance -> "fuel"

let class_of_string = function
  | "crash" -> Some Crash
  | "degraded" -> Some Degraded_pass
  | "counts" -> Some Count_regression
  | "output" -> Some Output_mismatch
  | "checksum" -> Some Checksum_mismatch
  | "trap" -> Some Trap_mismatch
  | "fuel" -> Some Fuel_imbalance
  | _ -> None

type failure = { config : string; cls : cls; detail : string }

type outcome =
  | Agree of { configs : int; ref_ops : int }
  | Rejected of string
  | Inconclusive of string
  | Diverged of failure list

let default_fuel = 2_000_000

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)
(* ------------------------------------------------------------------ *)

let with_hook hook f = Pipeline.with_fault_hook hook f

let mode_config mode (cfg : Config.t) =
  match mode with
  | Plain -> cfg
  | Verify -> { cfg with Config.verify_passes = true }
  | OraclePasses -> { cfg with Config.verify_passes = true; oracle = true }

(** Excerpt a string for a failure detail: one line, bounded length. *)
let excerpt s =
  let s = String.map (function '\n' -> '|' | c -> c) s in
  if String.length s <= 96 then s
  else Printf.sprintf "%s... (%d bytes)" (String.sub s 0 96) (String.length s)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(** The per-pass oracle prefixes count regressions with "oracle:" and
    names the regressed counter; classify those separately because a
    count-reducing pass that increases dynamic operations is exactly the
    paper-level unsoundness the harness exists to find. *)
let reason_class reason =
  if contains_sub ~sub:"count regressed" reason then Count_regression
  else Degraded_pass

type run_outcome =
  | Rok of string * int * int  (** output, checksum, executed ops *)
  | Rtrap of string
  | Rfuel of string

let run_program ~fuel ?should_stop p =
  match Interp.run ~fuel ?should_stop p with
  | r -> Rok (r.Interp.output, r.Interp.checksum, r.Interp.total.Interp.ops)
  | exception Interp.Resource_limit m -> Rfuel m
  | exception Rp_exec.Value.Runtime_error m -> Rtrap m

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let check ?(mode = Verify) ?(fuel = default_fuel) ?deadline
    ?(should_stop = fun () -> false) ?inject ?native (src : string) : outcome =
  let past_deadline () =
    should_stop ()
    || match deadline with Some d -> Rp_support.Clock.now () > d | None -> false
  in
  let should_stop = Some past_deadline in
  (* Reference: O0 front-end semantics.  A program the front end rejects
     is rejected identically under every configuration, so it carries no
     differential signal; same for a reference run that exhausts fuel. *)
  match
    let p = Rp_irgen.Irgen.compile_source src in
    ignore (Pipeline.optimize ~config:Config.o0 p : Pipeline.stage_stats);
    p
  with
  | exception Rp_minic.Srcloc.Error (loc, msg) ->
    Rejected (Rp_minic.Srcloc.to_string (loc, msg))
  | exception e -> Rejected (Printexc.to_string e)
  | p0 -> (
    match run_program ~fuel ?should_stop p0 with
    | Rfuel m -> Inconclusive ("reference run: " ^ m)
    | ref_out ->
      let ref_ops = match ref_out with Rok (_, _, o) -> o | _ -> 0 in
      let cfg_fuel = max ((4 * ref_ops) + 10_000) 100_000 in
      let failures = ref [] in
      let add config cls detail =
        failures := { config; cls; detail } :: !failures
      in
      List.iteri
        (fun idx (name, cfg) ->
          if not (past_deadline ()) then begin
            let cfg = mode_config mode cfg in
            let p = Rp_irgen.Irgen.compile_source src in
            let hook =
              match inject with
              | None -> fun _ -> ()
              | Some (fc, iseed) ->
                (* one mutation per compile, at the first guarded pass;
                   [idx] keeps the per-configuration streams distinct *)
                let rng = Random.State.make [| 0x696e6a; iseed; idx |] in
                let fired = ref false in
                fun _pass ->
                  if not !fired then begin
                    fired := true;
                    ignore (Faultgen.mutate rng fc p : string option)
                  end
            in
            match with_hook hook (fun () -> Pipeline.optimize ~config:cfg p) with
            | exception e -> add name Crash (Printexc.to_string e)
            | stats ->
              List.iter
                (fun (pass, reason) ->
                  add name (reason_class reason)
                    (Printf.sprintf "pass %s rolled back: %s" pass
                       (excerpt reason)))
                stats.Pipeline.degraded;
              (match (ref_out, run_program ~fuel:cfg_fuel ?should_stop p) with
              | _, Rfuel m ->
                if not (past_deadline ()) then
                  add name Fuel_imbalance
                    (Printf.sprintf "reference ran %d ops; %s" ref_ops m)
              | Rok (o1, c1, _), Rok (o2, c2, _) ->
                if o1 <> o2 then
                  add name Output_mismatch
                    (Printf.sprintf "expected %S got %S" (excerpt o1)
                       (excerpt o2))
                else if c1 <> c2 then
                  add name Checksum_mismatch
                    (Printf.sprintf "expected %d got %d" c1 c2)
              | Rtrap m1, Rtrap m2 ->
                if m1 <> m2 then
                  add name Trap_mismatch
                    (Printf.sprintf "expected trap %S got trap %S" (excerpt m1)
                       (excerpt m2))
              | Rtrap m, Rok _ ->
                add name Trap_mismatch
                  (Printf.sprintf "reference trapped (%s) but this \
                                   configuration completed" (excerpt m))
              | Rok _, Rtrap m ->
                add name Trap_mismatch
                  (Printf.sprintf "reference completed but this \
                                   configuration trapped: %s" (excerpt m))
              | Rfuel _, _ -> assert false)
          end)
        Config.paper_grid;
      (* Interpreter-vs-native cell: one more compile of the same source
         under [Config.default] — no fault injection, no mode hardening,
         because both executors run the *identical* post-regalloc program.
         The compiled backend must reproduce the interpreter bit for bit
         (output, checksum, dynamic counts, even the trap message), so any
         difference here is a code-generator bug rather than an optimizer
         bug.  Infrastructure failures (cc missing, binary killed) raise
         {!Rp_backend.Native.Error} and are classed [Crash] — visible, but
         never mistaken for a behavioural divergence. *)
      (match native with
      | Some cc when not (past_deadline ()) -> (
        let p = Rp_irgen.Irgen.compile_source src in
        match Pipeline.optimize ~config:Config.default p with
        | exception e -> add "native" Crash (Printexc.to_string e)
        | (_ : Pipeline.stage_stats) -> (
          let run_exec f =
            match f () with
            | (r : Interp.result) -> Ok r
            | exception Interp.Resource_limit m -> Error (`Limit m)
            | exception Rp_exec.Value.Runtime_error m -> Error (`Trap m)
            | exception Rp_backend.Native.Error m -> Error (`Infra m)
          in
          let ir =
            run_exec (fun () -> Interp.run ~fuel:cfg_fuel ?should_stop p)
          in
          let budget =
            match deadline with
            | Some d ->
              let left = d -. Rp_support.Clock.now () in
              Some (if left > 0.05 then left else 0.05)
            | None -> None
          in
          let nr =
            run_exec (fun () ->
                Rp_backend.Native.run ~fuel:cfg_fuel ?deadline:budget ~cc p)
          in
          match (ir, nr) with
          | _, Error (`Infra m) ->
            add "native" Crash ("native backend: " ^ excerpt m)
          | Error (`Infra _), _ -> assert false
          | Ok a, Ok b ->
            if a.Interp.output <> b.Interp.output then
              add "native" Output_mismatch
                (Printf.sprintf "interpreter %S native %S"
                   (excerpt a.Interp.output) (excerpt b.Interp.output))
            else if a.Interp.checksum <> b.Interp.checksum then
              add "native" Checksum_mismatch
                (Printf.sprintf "interpreter %d native %d" a.Interp.checksum
                   b.Interp.checksum)
            else if Stdlib.compare a.Interp.ret b.Interp.ret <> 0 then
              add "native" Output_mismatch
                (Format.asprintf "return value: interpreter %a native %a"
                   Rp_exec.Value.pp a.Interp.ret Rp_exec.Value.pp b.Interp.ret)
            else if
              a.Interp.total <> b.Interp.total
              || a.Interp.per_func <> b.Interp.per_func
            then
              add "native" Count_regression
                (Printf.sprintf
                   "interpreter ops/loads/stores %d/%d/%d native %d/%d/%d"
                   a.Interp.total.Interp.ops a.Interp.total.Interp.loads
                   a.Interp.total.Interp.stores b.Interp.total.Interp.ops
                   b.Interp.total.Interp.loads b.Interp.total.Interp.stores)
          | Error (`Trap m1), Error (`Trap m2) when m1 = m2 -> ()
          | Error (`Limit m1), Error (`Limit m2) when m1 = m2 -> ()
          (* a limit reached because the wall-clock budget ran out mid-cell
             carries no differential signal, matching the grid's policy *)
          | _, Error (`Limit _) when past_deadline () -> ()
          | Error (`Limit _), _ when past_deadline () -> ()
          | Error (`Trap m1), Error (`Trap m2) ->
            add "native" Trap_mismatch
              (Printf.sprintf "interpreter trap %S native trap %S" (excerpt m1)
                 (excerpt m2))
          | Ok _, Error (`Trap m) ->
            add "native" Trap_mismatch
              (Printf.sprintf "interpreter completed but native trapped: %s"
                 (excerpt m))
          | Error (`Trap m), Ok _ ->
            add "native" Trap_mismatch
              (Printf.sprintf "interpreter trapped (%s) but native completed"
                 (excerpt m))
          | Error (`Limit m1), Error (`Limit m2) ->
            add "native" Fuel_imbalance
              (Printf.sprintf "interpreter limit %S native limit %S"
                 (excerpt m1) (excerpt m2))
          | Ok _, Error (`Limit m) ->
            add "native" Fuel_imbalance
              (Printf.sprintf "interpreter completed but native hit a limit: \
                               %s" (excerpt m))
          | Error (`Limit m), Ok _ ->
            add "native" Fuel_imbalance
              (Printf.sprintf "interpreter hit a limit (%s) but native \
                               completed" (excerpt m))
          | Error (`Trap m1), Error (`Limit m2) | Error (`Limit m1), Error (`Trap m2) ->
            add "native" Fuel_imbalance
              (Printf.sprintf "interpreter %S native %S" (excerpt m1)
                 (excerpt m2))))
      | _ -> ());
      match List.rev !failures with
      | [] ->
        if past_deadline () then Inconclusive "wall-clock budget exhausted"
        else
          Agree
            {
              configs =
                List.length Config.paper_grid
                + (if Option.is_some native then 1 else 0);
              ref_ops;
            }
      | fs -> Diverged fs)

(* ------------------------------------------------------------------ *)
(* Journal serialization                                               *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json

(** Outcomes round-trip through line-JSON so a campaign journal can
    replay them on [--resume] without re-running the trial. *)
let outcome_json : outcome -> Json.t = function
  | Agree { configs; ref_ops } ->
    Json.Obj
      [
        ("kind", Json.Str "agree");
        ("configs", Json.Int configs);
        ("ref_ops", Json.Int ref_ops);
      ]
  | Rejected m -> Json.Obj [ ("kind", Json.Str "rejected"); ("msg", Json.Str m) ]
  | Inconclusive m ->
    Json.Obj [ ("kind", Json.Str "inconclusive"); ("msg", Json.Str m) ]
  | Diverged fs ->
    Json.Obj
      [
        ("kind", Json.Str "diverged");
        ( "failures",
          Json.List
            (List.map
               (fun f ->
                 Json.Obj
                   [
                     ("config", Json.Str f.config);
                     ("cls", Json.Str (class_name f.cls));
                     ("detail", Json.Str f.detail);
                   ])
               fs) );
      ]

let outcome_of_json (j : Json.t) : outcome option =
  let str k fields =
    match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None
  in
  let int k fields =
    match List.assoc_opt k fields with Some (Json.Int i) -> Some i | _ -> None
  in
  match j with
  | Json.Obj fields -> (
    match str "kind" fields with
    | Some "agree" -> (
      match (int "configs" fields, int "ref_ops" fields) with
      | Some configs, Some ref_ops -> Some (Agree { configs; ref_ops })
      | _ -> None)
    | Some "rejected" -> Option.map (fun m -> Rejected m) (str "msg" fields)
    | Some "inconclusive" ->
      Option.map (fun m -> Inconclusive m) (str "msg" fields)
    | Some "diverged" -> (
      match List.assoc_opt "failures" fields with
      | Some (Json.List fs) ->
        let parse_failure = function
          | Json.Obj f -> (
            match (str "config" f, str "cls" f, str "detail" f) with
            | Some config, Some cls, Some detail ->
              Option.map
                (fun cls -> { config; cls; detail })
                (class_of_string cls)
            | _ -> None)
          | _ -> None
        in
        let parsed = List.map parse_failure fs in
        if List.for_all Option.is_some parsed then
          Some (Diverged (List.filter_map Fun.id parsed))
        else None
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.config (class_name f.cls) f.detail

let pp_outcome ppf = function
  | Agree { configs; ref_ops } ->
    Format.fprintf ppf "agree across %d configurations (%d reference ops)"
      configs ref_ops
  | Rejected m -> Format.fprintf ppf "rejected: %s" m
  | Inconclusive m -> Format.fprintf ppf "inconclusive: %s" m
  | Diverged fs ->
    Format.fprintf ppf "DIVERGED (%d failure%s)" (List.length fs)
      (if List.length fs = 1 then "" else "s");
    List.iter (fun f -> Format.fprintf ppf "@.  %a" pp_failure f) fs
