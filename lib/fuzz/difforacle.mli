(** Cross-configuration differential oracle (see [rpcc gen-fuzz]).

    Compiles one Mini-C program under the [O0] reference configuration and
    the paper's four-configuration grid, runs all five, and reports any
    divergence: output or checksum mismatch, asymmetric trap, a grid run
    needing disproportionate fuel, a compile-time crash, or a pass rolled
    back by the hardened pipeline (in {!Verify}/{!OraclePasses} modes),
    including unsound dynamic-count regressions.  Because the generator
    ({!Gen}) only emits defined, terminating programs, every divergence is
    a compiler bug. *)

(** How much of the hardened pipeline each grid compile arms:
    {!Plain} nothing (end-to-end comparison only), {!Verify} per-pass
    structural validation (cheap, the default), {!OraclePasses} the full
    per-pass execution oracle — strongest, but every guarded pass runs the
    program twice. *)
type mode = Plain | Verify | OraclePasses

val mode_name : mode -> string

(** Divergence classes, with their CLI names ({!class_name}):
    ["crash"] compile raised, ["degraded"] a pass was rolled back,
    ["counts"] a count-reducing pass regressed dynamic counts (oracle
    mode), ["output"]/["checksum"] behavioural mismatch vs the reference,
    ["trap"] asymmetric or different trap, ["fuel"] the configuration
    needed more than 4× the reference's operations. *)
type cls =
  | Crash
  | Degraded_pass
  | Count_regression
  | Output_mismatch
  | Checksum_mismatch
  | Trap_mismatch
  | Fuel_imbalance

val class_name : cls -> string
val class_of_string : string -> cls option

type failure = { config : string; cls : cls; detail : string }

type outcome =
  | Agree of { configs : int; ref_ops : int }
      (** all grid configurations matched the reference *)
  | Rejected of string
      (** the front end rejected the source — configuration-independent,
          so no differential signal (a generator bug if the source came
          from {!Gen}) *)
  | Inconclusive of string
      (** the reference run exhausted fuel or the wall-clock deadline
          passed — treated as quarantine by the reducer, never as failure *)
  | Diverged of failure list  (** at least one real divergence *)

val default_fuel : int
(** Reference-run fuel (2×10⁶); grid runs get [max (4×ref_ops + 10k) 100k]. *)

val check :
  ?mode:mode ->
  ?fuel:int ->
  ?deadline:float ->
  ?should_stop:(unit -> bool) ->
  ?inject:Faultgen.fault_class * int ->
  ?native:Rp_backend.Native.cc ->
  string ->
  outcome
(** Run the oracle on Mini-C source text.
    @param mode pipeline arming for grid compiles (default {!Verify})
    @param fuel reference-run fuel (default {!default_fuel})
    @param deadline absolute [Unix.gettimeofday] instant after which
    remaining work is skipped and, absent real failures, the outcome is
    [Inconclusive] — already-found divergences are still reported
    @param should_stop external cancellation, polled alongside [deadline]
    (both during interpretation and between grid compiles); turning
    [true] has the same effect as the deadline passing.  This is the
    supervised pool's per-job deadline hook.
    @param inject plant [Faultgen.mutate fc] (seeded by the int, mixed
    with the configuration index) inside the first guarded pass of every
    grid compile; the reference is never mutated
    @param native also run one interpreter-vs-native comparison cell
    (config name ["native"]) with the given C compiler: the same
    [Config.default]-compiled program executes under both {!Interp.run}
    and {!Rp_backend.Native.run}, and any difference in output, checksum,
    return value, dynamic counts (total or per-function) or trap message
    is a code-generator bug.  Never fault-injected.  Backend
    infrastructure failures are classed [Crash]. *)

val outcome_json : outcome -> Rp_support.Json.t
(** Serialize an outcome for a campaign journal record. *)

val outcome_of_json : Rp_support.Json.t -> outcome option
(** Inverse of {!outcome_json}; [None] on malformed input.  Used by
    [--resume] to replay finished trials without re-running them. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit
