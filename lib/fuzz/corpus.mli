(** Seed programs for the fault-injection harness ([rpcc fuzz]).

    Deliberately tiny (hundreds to a few thousand dynamic operations): in
    oracle mode every guarded pass executes the program twice, so a fuzz
    campaign compiles each seed dozens of times.  Each program still
    exercises the IL features the fault classes target: scalar stores in
    loops, pointer loads/stores with tag sets, direct and indirect control
    flow, calls, and heap allocation. *)

type seed = { name : string; source : string }

val all : seed list
(** The built-in corpus, in campaign order. *)
