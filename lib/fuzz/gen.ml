(** Seeded random Mini-C program generator for differential testing.

    Produces programs biased toward the shapes register promotion (and the
    interprocedural analyses feeding it) must get right: global scalars
    mutated in loops, address-taken locals, pointers retargeted at
    run time between globals / locals / heap cells, stores through
    may-alias pointers, helper calls that write through pointer parameters
    (so MOD/REF summaries and points-to sets carry real information),
    bounded recursion with global side effects, and — for §3.3 — weighted
    pointer-iteration shapes: strided array walks through a pointer and
    nested walks whose row base is invariant in the inner loop.

    Every generated program is {e safe and terminating by construction}:

    - all loops are [for] loops with constant bounds (2–6) whose index
      variable is never assigned in the body (the statement grammar cannot
      name index variables as assignment targets);
    - recursion decrements a structural counter with a constant start;
    - every array index is masked with [& 7] against arrays of size 8;
    - scalar pointers only ever aim at live scalars, array pointers only
      at 8-element arrays, and the single heap block is freed once, after
      the last access;
    - the walking pointer starts at an array base and advances at most
      once per iteration of a loop bounded by 8, so every dereference
      lands inside its 8-cell array;
    - division and modulus use non-zero constant divisors;
    - every variable is initialized before the generated body runs.

    Programs end with a fixed print epilogue covering every global, local,
    and array, so any miscompiled store is observable.  Generation is
    deterministic: the same [(seed, trial)] pair always yields the same
    source text, which is what makes every red fuzz run replayable. *)

module R = Random.State

let pick rng l = List.nth l (R.int rng (List.length l))

(** The vocabulary visible at a generation site.  [idxs] (loop indices and
    read-only parameters) are deliberately absent from [scalars], so the
    grammar cannot generate an assignment that would break loop
    termination. *)
type ctx = {
  rng : R.t;
  scalars : string list;  (** assignable int lvalues *)
  arrays : string list;  (** 8-element int arrays (or pointers to them) *)
  ptrs : string list;  (** scalar pointers, dereferenced as [*p] *)
  idxs : string list;  (** read-only ints: loop indices, parameters *)
  retargets : (string * string list) list;
      (** pointer name → the targets it may be re-aimed at here *)
  pure_calls : string list;  (** [int f(int, int)] helpers *)
  rec_calls : string list;  (** bounded-recursion [int f(int)] helpers *)
  mut_calls : (string * string list * string list) list;
      (** void helper → (array-argument, scalar-pointer-argument) choices *)
  walkers : (string * string list) list;
      (** walking pointer → the 8-cell array bases it may traverse;
          empty outside [main], where no walker variable is in scope *)
  depth : int;  (** current loop-nesting depth (max 3) *)
}

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr ctx fuel =
  let rng = ctx.rng in
  if fuel <= 0 then atom ctx
  else
    match R.int rng 10 with
    | 0 | 1 ->
      Printf.sprintf "(%s + %s)" (expr ctx (fuel - 1)) (expr ctx (fuel - 1))
    | 2 -> Printf.sprintf "(%s - %s)" (expr ctx (fuel - 1)) (atom ctx)
    | 3 -> Printf.sprintf "(%s * %s)" (atom ctx) (atom ctx)
    | 4 ->
      Printf.sprintf "(%s %% %d)" (expr ctx (fuel - 1)) (1 + R.int rng 9)
    | 5 -> Printf.sprintf "(%s / %d)" (expr ctx (fuel - 1)) (1 + R.int rng 9)
    | 6 ->
      let op = pick rng [ "<"; "<="; "=="; "!="; ">" ] in
      Printf.sprintf "(%s %s %s)" (atom ctx) op (atom ctx)
    | 7 -> Printf.sprintf "(%s & %d)" (expr ctx (fuel - 1)) (R.int rng 256)
    | 8 -> Printf.sprintf "(%s >> %d)" (atom ctx) (R.int rng 3)
    | _ -> atom ctx

and atom ctx =
  let rng = ctx.rng in
  match R.int rng 16 with
  | 0 | 1 | 2 -> string_of_int (R.int rng 21)
  | 3 | 4 | 5 when ctx.scalars <> [] -> pick rng ctx.scalars
  | 6 | 7 when ctx.arrays <> [] ->
    Printf.sprintf "%s[%s & 7]" (pick rng ctx.arrays) (index ctx)
  | 8 | 9 when ctx.ptrs <> [] -> Printf.sprintf "(*%s)" (pick rng ctx.ptrs)
  | 10 | 11 when ctx.idxs <> [] -> pick rng ctx.idxs
  | 12 when ctx.pure_calls <> [] ->
    Printf.sprintf "%s(%s, %s)" (pick rng ctx.pure_calls) (atom ctx) (atom ctx)
  | 13 when ctx.rec_calls <> [] ->
    Printf.sprintf "%s(%d)" (pick rng ctx.rec_calls) (R.int rng 7)
  | _ -> string_of_int (R.int rng 9)

(** Array subscripts: small, so index expressions do not balloon. *)
and index ctx =
  let rng = ctx.rng in
  match R.int rng 4 with
  | 0 when ctx.idxs <> [] -> pick rng ctx.idxs
  | 1 when ctx.scalars <> [] -> pick rng ctx.scalars
  | _ -> string_of_int (R.int rng 8)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmts ctx fuel indent =
  let n = 1 + R.int ctx.rng 3 in
  List.concat (List.init n (fun _ -> stmt ctx fuel indent))

and stmt ctx fuel indent =
  let rng = ctx.rng in
  let pad = String.make (2 * indent) ' ' in
  match R.int rng 15 with
  | 0 | 1 when ctx.scalars <> [] ->
    [ Printf.sprintf "%s%s = %s;" pad (pick rng ctx.scalars) (expr ctx 2) ]
  | 2 when ctx.scalars <> [] ->
    [ Printf.sprintf "%s%s += %s;" pad (pick rng ctx.scalars) (expr ctx 1) ]
  | 3 | 4 when ctx.arrays <> [] ->
    [ Printf.sprintf "%s%s[%s & 7] = %s;" pad (pick rng ctx.arrays)
        (index ctx) (expr ctx 2) ]
  | 5 when ctx.ptrs <> [] ->
    [ Printf.sprintf "%s*%s = %s;" pad (pick rng ctx.ptrs) (expr ctx 2) ]
  | 6 when ctx.retargets <> [] ->
    let (p, targets) = pick rng ctx.retargets in
    [ Printf.sprintf "%s%s = %s;" pad p (pick rng targets) ]
  | 7 | 8 when ctx.depth < 3 && fuel > 0 ->
    (* constant-bound loop; the new index is readable but not assignable *)
    let iv = Printf.sprintf "i%d" ctx.depth in
    let bound = 2 + R.int rng 5 in
    let ctx' = { ctx with depth = ctx.depth + 1; idxs = iv :: ctx.idxs } in
    [ Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {" pad iv iv bound iv ]
    @ loop_body ctx' (fuel - 1) (indent + 1)
    @ [ pad ^ "}" ]
  | 9 when fuel > 0 ->
    let cond = expr ctx 2 in
    let then_ = stmts ctx (fuel - 1) (indent + 1) in
    if R.bool rng then
      [ Printf.sprintf "%sif (%s) {" pad cond ]
      @ then_
      @ [ pad ^ "} else {" ]
      @ stmts ctx (fuel - 1) (indent + 1)
      @ [ pad ^ "}" ]
    else
      [ Printf.sprintf "%sif (%s) {" pad cond ] @ then_ @ [ pad ^ "}" ]
  | 10 | 11 when ctx.mut_calls <> [] ->
    let (h, aargs, sargs) = pick rng ctx.mut_calls in
    [ Printf.sprintf "%s%s(%s, %s, %s);" pad h (pick rng aargs)
        (pick rng sargs) (expr ctx 1) ]
  | 12 -> [ Printf.sprintf "%sgf = gf * 0.5 + %s;" pad (atom ctx) ]
  | 13 | 14 when ctx.walkers <> [] -> ptr_walk ctx indent
  | _ when ctx.scalars <> [] ->
    [ Printf.sprintf "%s%s = %s;" pad (pick rng ctx.scalars) (expr ctx 1) ]
  | _ -> []

(** The weighted §3.3 pointer-iteration shape: either a nested walk whose
    base pointer is advanced only by the outer loop — so the inner loop
    sees an invariant base the pointer promoter should lift into a
    register — or a single-loop strided walk whose base is redefined on
    every iteration, which the promoter must refuse.  Either way the
    walk visits at most the 8 cells of its array, so the safety argument
    above is unchanged.  Interleaved stores through the retargetable
    may-alias pointers come from the surrounding grammar, giving the
    oracle promotions that must be blocked as well as ones that fire. *)
and ptr_walk ctx indent =
  let rng = ctx.rng in
  let pad = String.make (2 * indent) ' ' in
  match ctx.walkers with
  | [] -> []
  | walkers ->
    let (wq, bases) = pick rng walkers in
    let base = pick rng bases in
    let invariant = R.bool rng in
    if invariant && ctx.depth < 2 then begin
      (* invariant row base: wq is fixed across the inner loop *)
      let io = Printf.sprintf "i%d" ctx.depth in
      let ii = Printf.sprintf "i%d" (ctx.depth + 1) in
      let outer = 2 + R.int rng 7 in
      let inner = 2 + R.int rng 5 in
      let ctx' =
        { ctx with depth = ctx.depth + 2; idxs = ii :: io :: ctx.idxs }
      in
      let stride_read =
        if ctx'.arrays <> [] && ctx'.scalars <> [] then
          [ Printf.sprintf "%s    %s += %s[(%s * %d + %s) & 7];" pad
              (pick rng ctx'.scalars) (pick rng ctx'.arrays) ii
              (1 + R.int rng 3) io ]
        else []
      in
      [ Printf.sprintf "%s%s = %s;" pad wq base;
        Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {" pad io io outer io;
        Printf.sprintf "%s  for (%s = 0; %s < %d; %s++) {" pad ii ii inner ii;
        Printf.sprintf "%s    *%s = (*%s + %s) %% 8192;" pad wq wq (atom ctx')
      ]
      @ stride_read
      @ [ pad ^ "  }";
          Printf.sprintf "%s  %s = %s + 1;" pad wq wq;
          pad ^ "}" ]
    end
    else if ctx.depth < 3 then begin
      (* strided walk: the base moves every iteration, promotion must
         stay silent *)
      let iv = Printf.sprintf "i%d" ctx.depth in
      let bound = 2 + R.int rng 7 in
      let ctx' = { ctx with depth = ctx.depth + 1; idxs = iv :: ctx.idxs } in
      [ Printf.sprintf "%s%s = %s;" pad wq base;
        Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {" pad iv iv bound iv;
        Printf.sprintf "%s  *%s = (*%s + %s) %% 8192;" pad wq wq (atom ctx');
        Printf.sprintf "%s  %s = %s + 1;" pad wq wq;
        pad ^ "}" ]
    end
    else []

(** Loop bodies lean on the promotion-relevant shapes: accumulation into
    global scalars, stores through the may-alias pointers, and array
    traffic through a base pointer that stays invariant across the loop. *)
and loop_body ctx fuel indent =
  let rng = ctx.rng in
  let pad = String.make (2 * indent) ' ' in
  let biased =
    match R.int rng 5 with
    | 0 when ctx.scalars <> [] ->
      [ Printf.sprintf "%s%s += %s;" pad (pick rng ctx.scalars) (atom ctx) ]
    | 1 when ctx.ptrs <> [] ->
      let p = pick rng ctx.ptrs in
      [ Printf.sprintf "%s*%s = (*%s) + %s;" pad p p (atom ctx) ]
    | 2 when ctx.arrays <> [] ->
      let a = pick rng ctx.arrays in
      [ Printf.sprintf "%s%s[%s & 7] = %s[%s & 7] + %s;" pad a (index ctx) a
          (index ctx) (atom ctx) ]
    | 3 when ctx.walkers <> [] -> ptr_walk ctx indent
    | _ -> []
  in
  biased @ stmts ctx fuel indent

(* ------------------------------------------------------------------ *)
(* Helper functions                                                    *)
(* ------------------------------------------------------------------ *)

let globals =
  [
    "int g0; int g1; int g2; int g3;";
    "int ga[8];";
    "int gb[8];";
    "int *ps;";
    "int *pa;";
    "float gf;";
  ]

let gen_pure rng k =
  let body =
    pick rng
      [ "(a * 3 + b)"; "((a - b) * 2 + 7)"; "((a & 15) + (b % 5))";
        "((a + b) >> 1)" ]
  in
  [ Printf.sprintf "int p%d(int a, int b) { return %s; }" k body ]

let gen_rec rng k =
  let g = R.int rng 4 in
  [
    Printf.sprintf "int r%d(int n) {" k;
    Printf.sprintf "  if (n <= 0) return %d;" (R.int rng 10);
    Printf.sprintf "  g%d = g%d + n;" g g;
    Printf.sprintf "  return r%d(n - 1) + (n & %d);" k (1 + R.int rng 7);
    "}";
  ]

(** A mutator helper: writes through both pointer parameters, so call
    sites decide what actually aliases what. *)
let gen_mut rng k ~pure_calls ~rec_calls ~prev_muts =
  let ctx =
    {
      rng;
      scalars = [ "g0"; "g1"; "g2"; "g3"; "t0" ];
      arrays = [ "a"; "ga"; "gb" ];
      ptrs = [ "s" ];
      idxs = [ "n" ];
      retargets =
        [ ("ps", [ "&g0"; "&g1"; "&g2"; "&g3" ]); ("pa", [ "ga"; "gb" ]) ];
      pure_calls;
      rec_calls;
      mut_calls =
        List.map
          (fun h -> (h, [ "a"; "ga"; "gb" ], [ "s"; "&g0"; "&g2" ]))
          prev_muts;
      walkers = [];
      depth = 1 (* helpers nest at most two loops deep *);
    }
  in
  [ Printf.sprintf "void h%d(int *a, int *s, int n) {" k;
    "  int i1; int i2;";
    "  int t0;";
    "  t0 = (n & 7);";
    Printf.sprintf "  a[t0] = a[t0] + (*s);" ]
  @ stmts ctx 2 1
  @ [ "}" ]

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let program rng =
  let n_pure = R.int rng 2 in
  let n_rec = R.int rng 2 in
  let n_mut = 1 + R.int rng 2 in
  let pure_calls = List.init n_pure (Printf.sprintf "p%d") in
  let rec_calls = List.init n_rec (Printf.sprintf "r%d") in
  let mut_names = List.init n_mut (Printf.sprintf "h%d") in
  let helpers =
    List.concat (List.init n_pure (gen_pure rng))
    @ List.concat (List.init n_rec (gen_rec rng))
    @ List.concat
        (List.init n_mut (fun k ->
             gen_mut rng k ~pure_calls ~rec_calls
               ~prev_muts:(List.filteri (fun j _ -> j < k) mut_names)))
  in
  let ctx =
    {
      rng;
      scalars = [ "x0"; "x1"; "x2"; "x3"; "loc0"; "loc1"; "g0"; "g1"; "g2"; "g3" ];
      arrays = [ "ga"; "gb"; "hp"; "pa" ];
      ptrs = [ "ps"; "lp" ];
      idxs = [];
      retargets =
        [
          ("ps", [ "&g0"; "&g1"; "&g2"; "&g3"; "lp" ]);
          ("lp", [ "&loc0"; "&loc1" ]);
          ("pa", [ "ga"; "gb"; "hp" ]);
        ];
      pure_calls;
      rec_calls;
      mut_calls =
        List.map
          (fun h ->
            ( h,
              [ "ga"; "gb"; "hp"; "pa" ],
              [ "&g0"; "&g1"; "&g2"; "&g3"; "lp"; "ps" ] ))
          mut_names;
      walkers = [ ("wq", [ "ga"; "gb"; "hp" ]) ];
      depth = 0;
    }
  in
  (* every program opens with one pointer walk — the §3.3 oracle always
     has something to disagree about — then the general grammar (which
     can emit more walks at its own weight) takes over *)
  let body = ptr_walk ctx 1 @ stmts ctx 3 1 in
  let lines =
    globals @ helpers
    @ [
        "int main() {";
        "  int x0; int x1; int x2; int x3;";
        "  int loc0; int loc1;";
        "  int *lp;";
        "  int *hp;";
        "  int *wq;";
        "  int i0; int i1; int i2;";
        "  x0 = 1; x1 = 2; x2 = 3; x3 = 5;";
        "  loc0 = 7; loc1 = 11;";
        "  lp = &loc0;";
        "  hp = malloc(8);";
        "  ps = &g0;";
        "  pa = ga;";
        "  wq = ga;";
        "  for (i0 = 0; i0 < 8; i0++) { ga[i0] = i0 * 3 + 1; gb[i0] = 17 - i0; \
         hp[i0] = i0 * i0; }";
      ]
    @ body
    @ [
        "  print_int(g0); print_int(g1); print_int(g2); print_int(g3);";
        "  print_int(x0 + x1 + x2 + x3);";
        "  print_int(loc0); print_int(loc1);";
        "  print_int(*ps);";
        "  print_float(gf);";
        "  { int s; s = 0; for (i0 = 0; i0 < 8; i0++) s = s + ga[i0] + gb[i0] \
         + hp[i0]; print_int(s); }";
        "  free(hp);";
        "  return 0;";
        "}";
      ]
  in
  String.concat "\n" lines

let program_of_seed ~seed ~trial =
  program (R.make [| 0x52504743; seed; trial |])
