(** Seeded random Mini-C program generator for differential testing.

    Generates closed, deterministic Mini-C programs biased toward the
    shapes register promotion must handle: global scalars mutated in
    loops, address-taken locals, run-time pointer retargeting across
    globals / locals / heap, stores through may-alias pointer parameters,
    and bounded recursion with global side effects.

    Generated programs are safe and terminating by construction (constant
    loop bounds with unassignable index variables, masked array indices,
    structural recursion, non-zero constant divisors, no uninitialized
    reads), so any behavioural difference between two compilation
    configurations is a compiler bug, never undefined behaviour.  They end
    with a fixed epilogue printing all observable state, making dropped or
    misdirected stores visible in the output. *)

val program : Random.State.t -> string
(** Generate one program, consuming randomness from the given state. *)

val program_of_seed : seed:int -> trial:int -> string
(** [program_of_seed ~seed ~trial] is the deterministic source for trial
    number [trial] of a campaign with seed [seed]: the same pair always
    yields byte-identical source, which is what makes failure reports
    replayable. *)
