(** Fault-injection harness for the hardened pipeline.

    Each trial compiles a known-good {!Corpus} program while injecting one
    fault {e inside} a guarded pass, through {!Rp_driver.Pipeline.fault_hook}
    — exactly where a buggy transformation would corrupt the IL.  The fault
    is either a structural or semantic IL mutation (emulating a miscompiling
    pass) or a raised exception (emulating a crashing pass).  The harness
    then asserts that the isolation/validation machinery reacts correctly:

    - structural faults (dangling branch targets, out-of-range registers)
      must be rolled back — flagged by the post-pass validator or by the
      pass itself crashing on the broken IL;
    - semantic faults (dropped stores, shrunk tag sets) must be rolled back
      by the execution oracle — or be provably benign, i.e. the finished
      program still behaves bit-identically to a clean compile;
    - injected pass exceptions must never escape [optimize], must appear in
      [degraded], and must leave the compile bit-identical to the same
      configuration with that pass disabled.

    Any other outcome is an {e escape}: the mutation survived to the final
    program and changed its behaviour undetected.  One escape fails the
    campaign (exit code 1 under [rpcc fuzz]). *)

open Rp_ir
module Pipeline = Rp_driver.Pipeline
module Config = Rp_driver.Config
module Interp = Rp_exec.Interp
module R = Random.State

type fault_class =
  | Drop_store  (** delete one sStore/Store instruction *)
  | Shrink_tagset  (** empty the tag set of one pointer operation *)
  | Dangling_target  (** retarget one terminator at a missing block *)
  | Bad_register  (** insert an instruction using out-of-range registers *)
  | Pass_exception  (** raise from inside a pass body *)
  | Native_cc_fail  (** the C compiler itself cannot be executed *)
  | Native_truncated_bin  (** a cached native binary loses its tail *)
  | Native_bad_trailer  (** a cached "binary" emits garbage, no trailer *)
  | Native_poisoned_cas  (** a cached binary's bytes rot under a stale CRC *)

let all_classes =
  [
    Drop_store;
    Shrink_tagset;
    Dangling_target;
    Bad_register;
    Pass_exception;
    Native_cc_fail;
    Native_truncated_bin;
    Native_bad_trailer;
    Native_poisoned_cas;
  ]

let class_name = function
  | Drop_store -> "drop_store"
  | Shrink_tagset -> "shrink_tagset"
  | Dangling_target -> "dangling_target"
  | Bad_register -> "bad_register"
  | Pass_exception -> "pass_exception"
  | Native_cc_fail -> "native_cc_fail"
  | Native_truncated_bin -> "native_truncated_bin"
  | Native_bad_trailer -> "native_bad_trailer"
  | Native_poisoned_cas -> "native_poisoned_cas"

let class_of_string = function
  | "drop_store" -> Some Drop_store
  | "shrink_tagset" -> Some Shrink_tagset
  | "dangling_target" -> Some Dangling_target
  | "bad_register" -> Some Bad_register
  | "pass_exception" -> Some Pass_exception
  | "native_cc_fail" -> Some Native_cc_fail
  | "native_truncated_bin" -> Some Native_truncated_bin
  | "native_bad_trailer" -> Some Native_bad_trailer
  | "native_poisoned_cas" -> Some Native_poisoned_cas
  | _ -> None

type class_stats = {
  mutable injected : int;  (** trials where the fault actually landed *)
  mutable skipped : int;  (** no mutation site at the chosen pass point *)
  mutable caught_validation : int;
  mutable caught_oracle : int;
  mutable caught_exception : int;  (** rolled back via a raised exception *)
  mutable benign : int;  (** survived but provably behaviour-preserving *)
  mutable escaped : int;
}

let zero_stats () =
  {
    injected = 0;
    skipped = 0;
    caught_validation = 0;
    caught_oracle = 0;
    caught_exception = 0;
    benign = 0;
    escaped = 0;
  }

type report = {
  seed : int;  (** the campaign's RNG seed, for replay *)
  classes : (fault_class * class_stats) list;
  mutable trials : int;
  mutable escapes : string list;  (** descriptions, newest first *)
}

let stats_for r c = List.assq c r.classes

(* ------------------------------------------------------------------ *)
(* IL mutations                                                        *)
(* ------------------------------------------------------------------ *)

(** All (func, block, index) positions whose instruction satisfies [pred]. *)
let instr_sites (p : Program.t) pred =
  let acc = ref [] in
  Program.iter_funcs
    (fun f ->
      Func.iter_blocks
        (fun (b : Block.t) ->
          List.iteri
            (fun i ins -> if pred ins then acc := (f, b, i) :: !acc)
            b.Block.instrs)
        f)
    p;
  !acc

let all_blocks (p : Program.t) =
  let acc = ref [] in
  Program.iter_funcs
    (fun f -> Func.iter_blocks (fun (b : Block.t) -> acc := (f, b) :: !acc) f)
    p;
  !acc

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (R.int rng (List.length l)))

let replace_at b idx i' =
  b.Block.instrs <- List.mapi (fun j i -> if j = idx then i' else i) b.Block.instrs

(** Apply [cls] to [p] at a random site.  Returns a description of what was
    mutated, or [None] when the program (at this pipeline point) offers no
    site for the class. *)
let mutate rng (cls : fault_class) (p : Program.t) : string option =
  match cls with
  | Drop_store -> (
    match pick rng (instr_sites p Instr.is_store) with
    | None -> None
    | Some (f, b, idx) ->
      b.Block.instrs <- List.filteri (fun j _ -> j <> idx) b.Block.instrs;
      Some (Printf.sprintf "dropped store %d in %s/%s" idx f.Func.name b.Block.label))
  | Shrink_tagset -> (
    let site =
      pick rng
        (instr_sites p (function
          | Instr.Loadg _ | Instr.Storeg _ -> true
          | _ -> false))
    in
    match site with
    | None -> None
    | Some (f, b, idx) ->
      let i' =
        match List.nth b.Block.instrs idx with
        | Instr.Loadg (d, a, _) -> Instr.Loadg (d, a, Tagset.empty)
        | Instr.Storeg (a, s, _) -> Instr.Storeg (a, s, Tagset.empty)
        | i -> i
      in
      replace_at b idx i';
      Some
        (Printf.sprintf "emptied tag set of op %d in %s/%s" idx f.Func.name
           b.Block.label))
  | Dangling_target -> (
    match pick rng (all_blocks p) with
    | None -> None
    | Some (f, b) ->
      let nowhere = "__fuzz_nowhere__" in
      (b.Block.term <-
         (match b.Block.term with
         | Instr.Cbr (r, _, l2) -> Instr.Cbr (r, nowhere, l2)
         | Instr.Jump _ | Instr.Ret _ -> Instr.Jump nowhere));
      Some (Printf.sprintf "retargeted %s/%s at a missing block" f.Func.name b.Block.label))
  | Bad_register -> (
    match pick rng (all_blocks p) with
    | None -> None
    | Some (f, b) ->
      let bad = f.Func.nreg + 7 in
      let idx =
        match b.Block.instrs with
        | [] -> 0
        | l -> R.int rng (List.length l + 1)
      in
      b.Block.instrs <-
        List.filteri (fun j _ -> j < idx) b.Block.instrs
        @ [ Instr.Copy (bad, bad + 2) ]
        @ List.filteri (fun j _ -> j >= idx) b.Block.instrs;
      Some
        (Printf.sprintf "inserted copy of r%d (nreg=%d) in %s/%s" bad
           f.Func.nreg f.Func.name b.Block.label))
  | Pass_exception | Native_cc_fail | Native_truncated_bin | Native_bad_trailer
  | Native_poisoned_cas ->
    None (* handled by their own trials, not as IL edits *)

(* ------------------------------------------------------------------ *)
(* Trials                                                              *)
(* ------------------------------------------------------------------ *)

(** The campaign configuration: every optional pass on, full translation
    validation (structural + oracle) so every detector is armed. *)
let fuzz_config =
  {
    Config.default with
    Config.dse = true;
    ptr_promote = true;
    verify_passes = true;
    oracle = true;
  }

(** Guarded passes at which IL mutations are injected.  Early and mid
    pipeline points, where stores and pointer operations still exist. *)
let mutation_passes =
  [ "clean"; "analysis"; "promotion"; "valnum"; "constprop"; "licm"; "pre" ]

(** Passes with an exact pass-disabled twin in {!Config.t} — the equivalence
    the exception trials assert. *)
let exception_passes =
  [
    ("analysis", { fuzz_config with Config.analysis = Config.Anone });
    ("promotion", { fuzz_config with Config.promote = false });
    ("dse", { fuzz_config with Config.dse = false });
    ("ptr_promotion", { fuzz_config with Config.ptr_promote = false });
  ]

let results_equal (a : Interp.result) (b : Interp.result) =
  a.Interp.output = b.Interp.output
  && a.Interp.checksum = b.Interp.checksum
  && a.Interp.total.Interp.ops = b.Interp.total.Interp.ops
  && a.Interp.total.Interp.loads = b.Interp.total.Interp.loads
  && a.Interp.total.Interp.stores = b.Interp.total.Interp.stores

let with_hook hook f = Pipeline.with_fault_hook hook f

(** What one trial observed.  Trials are pure with respect to the report —
    they run (possibly on a worker domain) and return an outcome, which the
    campaign folds into the report in trial-index order, so the report and
    its escape list are identical at any [jobs] level. *)
type outcome =
  | Caught of [ `Validation | `Oracle | `Exception ]
  | Benign
  | Skipped
  | Escaped of string
  | No_site  (** the trial found nothing to do (no target pass) *)

(** Reasons recorded by the guard start with "validation:" / "oracle:" for
    the two validators; anything else is a caught exception. *)
let classify_reason reason =
  if String.length reason >= 11 && String.sub reason 0 11 = "validation:" then
    `Validation
  else if String.length reason >= 7 && String.sub reason 0 7 = "oracle:" then
    `Oracle
  else `Exception

(** One IL-mutation trial: compile [seed] under full validation, mutating
    the IL at [target] via the fault hook; classify the pipeline's
    reaction. *)
let mutation_trial ?should_stop rng cls target (seed : Corpus.seed)
    (baseline : Interp.result) : outcome =
  let p = Rp_irgen.Irgen.compile_source seed.Corpus.source in
  let applied = ref None in
  let run () =
    with_hook
      (fun name ->
        if name = target && !applied = None then applied := mutate rng cls p)
      (fun () -> Pipeline.optimize ~config:fuzz_config p)
  in
  match run () with
  | exception e ->
    Escaped
      (Printf.sprintf "%s@%s on %s: exception escaped optimize: %s"
         (class_name cls) target seed.Corpus.name (Printexc.to_string e))
  | stats -> (
    match !applied with
    | None -> Skipped
    | Some desc -> (
      match List.assoc_opt target stats.Pipeline.degraded with
      | Some reason -> Caught (classify_reason reason)
      | None ->
        (* not rolled back: only acceptable if the finished program is
           still observably identical to a clean compile *)
        let same =
          match Interp.run ?should_stop p with
          | exception Rp_exec.Value.Runtime_error _ -> false
          | r ->
            r.Interp.output = baseline.Interp.output
            && r.Interp.checksum = baseline.Interp.checksum
        in
        if same then Benign
        else
          Escaped
            (Printf.sprintf "%s@%s on %s: %s survived undetected"
               (class_name cls) target seed.Corpus.name desc)))

(** One pass-exception trial: a pass that raises must be contained,
    recorded, and behave exactly like the pass-disabled configuration. *)
let exception_trial ?should_stop rng (seed : Corpus.seed) : outcome =
  match pick rng exception_passes with
  | None -> No_site
  | Some (target, disabled_config) -> (
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Escaped
            (Printf.sprintf "pass_exception@%s on %s: %s" target
               seed.Corpus.name m))
        fmt
    in
    let compile () =
      with_hook
        (fun name -> if name = target then failwith "injected pass fault")
        (fun () ->
          Pipeline.compile_and_run ~config:fuzz_config ?should_stop
            seed.Corpus.source)
    in
    match compile () with
    | exception e ->
      fail "exception escaped the compile: %s" (Printexc.to_string e)
    | (_, stats, r) -> (
      match List.assoc_opt target stats.Pipeline.degraded with
      | None -> fail "fault not recorded in degraded"
      | Some _ ->
        let (_, _, r0) =
          Pipeline.compile_and_run ~config:disabled_config ?should_stop
            seed.Corpus.source
        in
        if results_equal r r0 then Caught `Exception
        else fail "result differs from the pass-disabled configuration"))

(* ------------------------------------------------------------------ *)
(* Native-backend faults                                               *)
(* ------------------------------------------------------------------ *)

(* These trials attack the compiled-C execution path below the IL: the
   compiler process, the cached binary, and the store that holds it.
   The property under test is the degradation ladder's (native →
   recompile-once → interpreter) end-to-end promise: whatever breaks,
   the job's observable result must equal a clean interpreter run, and
   the breakage must be detected (degradation recorded or the corrupt
   object quarantined), never silently served. *)

module Native = Rp_backend.Native
module Cas = Rp_support.Cas
module Crc32 = Rp_support.Crc32

(* probed once per process ({!Native.find_cc} memoizes); the three
   classes that must first cache a genuine binary are [No_site] on
   hosts without a compiler.  [Native_cc_fail] needs no compiler at
   all — its whole point is running without one. *)
let native_cc = lazy (Native.find_cc ())

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun f -> rm_rf (Filename.concat path f))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** The store is fresh per trial, so after one priming run it holds
    exactly one [*.native-bin] object — the trial's compiled binary. *)
let bin_object root =
  let objects = Filename.concat root "objects" in
  Array.fold_left
    (fun acc shard ->
      match acc with
      | Some _ -> acc
      | None ->
        let dir = Filename.concat objects shard in
        Array.fold_left
          (fun acc f ->
            match acc with
            | Some _ -> acc
            | None ->
              if Filename.check_suffix f ".native-bin" then
                Some (Filename.concat dir f)
              else None)
          None
          (try Sys.readdir dir with Sys_error _ -> [||]))
    None
    (try Sys.readdir objects with Sys_error _ -> [||])

(** Replace an object's payload keeping the framing {e valid}: magic and
    kind are copied from the existing header, CRC and length recomputed
    over the new payload.  [Cas.get] serves the result without complaint
    — only the native layer's own defenses (trailer parse, output
    re-verification, exec failure) can catch the planted corruption. *)
let replant_object path payload =
  let raw = read_raw path in
  let nl = String.index raw '\n' in
  match String.split_on_char ' ' (String.sub raw 0 nl) with
  | magic :: kind :: _ ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "%s %s %s %d\n%s" magic kind
          (Crc32.to_hex (Crc32.string payload))
          (String.length payload) payload)
  | _ -> invalid_arg "replant_object: malformed header"

(** Flip the object's last payload byte in place, leaving the now-stale
    CRC: [Cas.get] must quarantine the entry on the next read. *)
let poison_object path =
  let raw = read_raw path in
  let n = String.length raw in
  let b = Bytes.of_string raw in
  Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0xFF));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc b)

(** One native-backend trial: compile the seed program through the real
    pipeline, plant the class's fault under the execution path, run the
    degradation ladder, and assert (a) the result equals the clean
    interpreter baseline and (b) the fault was detected, not silently
    served. *)
let native_trial ?should_stop rng cls (seed : Corpus.seed)
    (baseline : Interp.result) : outcome =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Escaped (Printf.sprintf "%s on %s: %s" (class_name cls) seed.Corpus.name m))
      fmt
  in
  let (p, _) =
    Pipeline.compile
      ~config:{ fuzz_config with Config.verify_passes = false; oracle = false }
      seed.Corpus.source
  in
  let interp () =
    let t0 = Rp_support.Clock.now () in
    let r = Interp.run ?should_stop p in
    (r, (Rp_support.Clock.now () -. t0) *. 1000.)
  in
  match cls with
  | Native_cc_fail -> (
    (* a compiler that cannot be executed: the ladder must descend all
       the way to the interpreter rung and record why, not abort *)
    let cc =
      Some
        {
          Native.path = "/nonexistent/rpcc-faultgen-cc";
          flags = [];
          identity = "faultgen-broken-cc";
        }
    in
    match Native.run_laddered ~interp ~cc p with
    | exception e -> fail "ladder raised: %s" (Printexc.to_string e)
    | lad ->
      if lad.Native.l_mode <> `Interp then
        fail "broken cc still claimed a native run"
      else if lad.Native.l_degraded = None then
        fail "interpreter fallback not recorded as degradation"
      else if results_equal lad.Native.l_result baseline then Caught `Exception
      else fail "interpreter rung result differs from baseline")
  | Native_truncated_bin | Native_bad_trailer | Native_poisoned_cas -> (
    match Lazy.force native_cc with
    | None -> No_site
    | Some cc -> (
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "rpcc-faultgen-%d-%d" (Unix.getpid ())
             (R.int rng 0x3FFFFFFF))
      in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let cache = Cas.open_ dir in
          (* prime: one honest native run caches the binary *)
          match Native.run_laddered ~cache ~interp ~cc:(Some cc) p with
          | exception e -> fail "priming run raised: %s" (Printexc.to_string e)
          | lad when lad.Native.l_mode <> `Native || lad.Native.l_degraded <> None
            ->
            fail "priming run did not execute natively"
          | _ -> (
            match bin_object dir with
            | None -> fail "priming run cached no binary"
            | Some path -> (
              (match cls with
              | Native_truncated_bin ->
                (* CRC-valid but half a binary: exec (or its trailer)
                   must fail, the recompile rung must repair *)
                let raw = read_raw path in
                let nl = String.index raw '\n' in
                let payload =
                  String.sub raw (nl + 1) (String.length raw - nl - 1)
                in
                replant_object path
                  (String.sub payload 0 (String.length payload / 2))
              | Native_bad_trailer ->
                (* runs fine, prints garbage: the strict trailer parser
                   must reject it rather than invent counts *)
                replant_object path "#!/bin/sh\necho not-a-trailer\n"
              | _ -> poison_object path);
              let quarantined_before = (Cas.stats cache).Cas.quarantined in
              match Native.run_laddered ~cache ~interp ~cc:(Some cc) p with
              | exception e ->
                fail "ladder raised on planted fault: %s" (Printexc.to_string e)
              | lad ->
                if not (results_equal lad.Native.l_result baseline) then
                  fail "result differs from baseline after planted fault"
                else (
                  match cls with
                  | Native_poisoned_cas ->
                    (* the store's own CRC is the detector: the bad
                       object is quarantined and the miss recompiles
                       cleanly, no ladder degradation at all *)
                    if (Cas.stats cache).Cas.quarantined > quarantined_before
                    then Caught `Validation
                    else fail "poisoned object was not quarantined"
                  | _ ->
                    (* CRC-valid corruption is invisible to the store;
                       the ladder itself must notice and recompile *)
                    if lad.Native.l_degraded = None then
                      fail "planted fault was served without detection"
                    else Caught `Exception))))))
  | _ -> No_site

(* ------------------------------------------------------------------ *)
(* Journal serialization                                               *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json

(** One finished trial as a journal record; {!trial_of_json} inverts it.
    Outcomes round-trip exactly, so a resumed campaign folds a replayed
    trial identically to having run it. *)
let trial_json i ((cls, outcome) : fault_class * outcome) : Json.t =
  let base = [ ("trial", Json.Int i); ("cls", Json.Str (class_name cls)) ] in
  let rest =
    match outcome with
    | Caught `Validation -> [ ("kind", Json.Str "caught_validation") ]
    | Caught `Oracle -> [ ("kind", Json.Str "caught_oracle") ]
    | Caught `Exception -> [ ("kind", Json.Str "caught_exception") ]
    | Benign -> [ ("kind", Json.Str "benign") ]
    | Skipped -> [ ("kind", Json.Str "skipped") ]
    | No_site -> [ ("kind", Json.Str "no_site") ]
    | Escaped desc ->
      [ ("kind", Json.Str "escaped"); ("desc", Json.Str desc) ]
  in
  Json.Obj (base @ rest)

let trial_of_json (j : Json.t) : (int * (fault_class * outcome)) option =
  match j with
  | Json.Obj fields -> (
    let str k =
      match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None
    in
    match (List.assoc_opt "trial" fields, str "cls", str "kind") with
    | Some (Json.Int i), Some cls, Some kind -> (
      match class_of_string cls with
      | None -> None
      | Some cls ->
        let outcome =
          match kind with
          | "caught_validation" -> Some (Caught `Validation)
          | "caught_oracle" -> Some (Caught `Oracle)
          | "caught_exception" -> Some (Caught `Exception)
          | "benign" -> Some Benign
          | "skipped" -> Some Skipped
          | "no_site" -> Some No_site
          | "escaped" -> Option.map (fun d -> Escaped d) (str "desc")
          | _ -> None
        in
        Option.map (fun o -> (i, (cls, o))) outcome)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

(** Trial [i] of campaign [seed], self-contained: draws every random
    choice from its own [R.make [| seed; i |]] stream, so a trial's
    behaviour depends only on [(seed, i)] — never on which domain ran it
    or what other trials did.  That is what makes [--jobs] replay-stable
    and lets [--seed S --trials N] reproduce any campaign exactly. *)
let run_trial ~seed ?should_stop baselines i : fault_class * outcome =
  let rng = R.make [| seed; i |] in
  let (prog, baseline) = List.nth baselines (i mod List.length baselines) in
  let cls = List.nth all_classes (R.int rng (List.length all_classes)) in
  let outcome =
    match cls with
    | Pass_exception -> exception_trial ?should_stop rng prog
    | Native_cc_fail | Native_truncated_bin | Native_bad_trailer
    | Native_poisoned_cas ->
      native_trial ?should_stop rng cls prog baseline
    | _ -> (
      match pick rng mutation_passes with
      | None -> No_site
      | Some target -> mutation_trial ?should_stop rng cls target prog baseline)
  in
  (cls, outcome)

(** Fold one trial's outcome into the report (main domain only). *)
let record report (cls, outcome) =
  report.trials <- report.trials + 1;
  let st = stats_for report cls in
  match outcome with
  | No_site -> ()
  | Skipped -> st.skipped <- st.skipped + 1
  | Caught k ->
    st.injected <- st.injected + 1;
    (match k with
    | `Validation -> st.caught_validation <- st.caught_validation + 1
    | `Oracle -> st.caught_oracle <- st.caught_oracle + 1
    | `Exception -> st.caught_exception <- st.caught_exception + 1)
  | Benign ->
    st.injected <- st.injected + 1;
    st.benign <- st.benign + 1
  | Escaped desc ->
    st.injected <- st.injected + 1;
    st.escaped <- st.escaped + 1;
    report.escapes <- desc :: report.escapes

let run ?(seed = 42) ?(seeds = 50) ?(jobs = 1) ?timeout ?retries ?journal
    ?resume ?resilience ?cancel ?(on_failure = fun _ _ -> ()) () : report =
  let report =
    {
      seed;
      classes = List.map (fun c -> (c, zero_stats ())) all_classes;
      trials = 0;
      escapes = [];
    }
  in
  (* replayed outcomes from a prior (interrupted) campaign's journal: a
     record is only ever written for a {e finished} trial, so replaying
     it is byte-equivalent to re-running it *)
  let replayed : (int, fault_class * outcome) Hashtbl.t = Hashtbl.create 64 in
  Option.iter
    (fun path ->
      List.iter
        (fun j ->
          match trial_of_json j with
          | Some (i, t) when i >= 0 && i < seeds ->
            Hashtbl.replace replayed i t;
            (match resilience with
            | Some r ->
              Rp_support.Resilience.tick r Rp_support.Resilience.Resumed
            | None -> ())
          | _ -> ())
        (Rp_support.Journal.load path))
    resume;
  (* one clean compile+run per corpus program, shared by every trial *)
  let baselines =
    List.map
      (fun (s : Corpus.seed) ->
        let (_, _, r) =
          Pipeline.compile_and_run
            ~config:{ fuzz_config with Config.verify_passes = false; oracle = false }
            s.Corpus.source
        in
        (s, r))
      Corpus.all
  in
  let fresh =
    Array.of_list
      (List.filter
         (fun i -> not (Hashtbl.mem replayed i))
         (List.init seeds Fun.id))
  in
  let jwriter = Option.map Rp_support.Journal.create journal in
  let on_result i (o : _ Rp_support.Pool.supervised) =
    match (o, jwriter) with
    | Ok t, Some w -> Rp_support.Journal.record w (trial_json fresh.(i) t)
    | _ -> ()
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter Rp_support.Journal.close jwriter)
      (fun () ->
        Rp_support.Pool.run_supervised ~jobs ?timeout ?retries ?cancel
          ?resilience ~on_result
          (fun ~should_stop i -> run_trial ~seed ~should_stop baselines i)
          fresh)
  in
  (* fold in trial-index order over the union of replayed and fresh
     trials, so the report is identical to an uninterrupted campaign's *)
  let fresh_outcome : (int, (fault_class * outcome, Rp_support.Pool.job_failure) result) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri (fun k o -> Hashtbl.replace fresh_outcome fresh.(k) o) outcomes;
  for i = 0 to seeds - 1 do
    match Hashtbl.find_opt replayed i with
    | Some t -> record report t
    | None -> (
      match Hashtbl.find_opt fresh_outcome i with
      | Some (Ok t) -> record report t
      | Some (Error f) -> on_failure i f
      | None -> ())
  done;
  report

let total_escapes r =
  List.fold_left (fun acc (_, s) -> acc + s.escaped) 0 r.classes

let pp_report ppf (r : report) =
  Fmt.pf ppf "campaign: seed=%d trials=%d (replay: rpcc fuzz --seed %d \
              --trials %d)@."
    r.seed r.trials r.seed r.trials;
  Fmt.pf ppf "%-16s %8s %7s %10s %6s %9s %6s %7s@." "class" "injected"
    "skipped" "validation" "oracle" "exception" "benign" "escaped";
  List.iter
    (fun (c, s) ->
      Fmt.pf ppf "%-16s %8d %7d %10d %6d %9d %6d %7d@." (class_name c)
        s.injected s.skipped s.caught_validation s.caught_oracle
        s.caught_exception s.benign s.escaped)
    r.classes;
  List.iter
    (fun e -> Fmt.pf ppf "ESCAPE [seed=%d]: %s@." r.seed e)
    (List.rev r.escapes)
