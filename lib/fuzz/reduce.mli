(** Delta-debugging reducer for differential-oracle failures
    (see [rpcc reduce]).

    Shrinks Mini-C source while a caller-supplied predicate keeps
    reproducing the original failure, using structured (brace-balanced)
    deletion, region unwrapping, ddmin chunk deletion, and expression
    simplification, iterated to a fixpoint under a wall-clock budget.
    Syntactically broken candidates need no special handling: the
    oracle-backed predicate answers {!Pass} (the front end rejects them
    identically under every configuration) and they are discarded. *)

(** Verdict of one candidate: {!Fail} still reproduces the failure (the
    shrink is kept), {!Pass} does not reproduce, {!Quarantine} could not
    be decided within resource limits (fuel or deadline) — counted, and
    treated as non-reproducing. *)
type verdict = Fail | Pass | Quarantine

type result = {
  reduced : string;  (** smallest reproducer found *)
  original_lines : int;  (** non-blank lines before reduction *)
  reduced_lines : int;  (** non-blank lines after reduction *)
  candidates : int;  (** predicate evaluations *)
  accepted : int;  (** candidates that kept reproducing *)
  quarantined : int;  (** candidates hitting resource limits *)
  deadline_hit : bool;  (** the wall-clock budget expired mid-search *)
}

val run :
  ?budget:float ->
  ?should_stop:(unit -> bool) ->
  predicate:(string -> verdict) ->
  string ->
  result
(** [run ~predicate src] shrinks [src].  The caller must already know
    [src] reproduces (i.e. [predicate src = Fail]); the reducer only
    evaluates candidates.  @param budget wall-clock seconds (default 30);
    on expiry the best reproducer so far is returned with
    [deadline_hit = true].  @param should_stop external cancellation
    polled between candidates; turning [true] behaves exactly like the
    budget expiring — the best reproducer so far is still returned, with
    [deadline_hit = true]. *)

val count_lines : string -> int
(** Non-blank line count (the metric in {!result}). *)
