(** Fault-injection harness for the hardened pipeline (see [rpcc fuzz]).

    Injects IL corruption and exceptions inside guarded passes via
    {!Rp_driver.Pipeline.fault_hook} and asserts the isolation, validation,
    and oracle machinery contains every fault: rolled back and recorded, or
    provably behaviour-preserving.  Anything else is an escape. *)

type fault_class =
  | Drop_store  (** delete one sStore/Store instruction *)
  | Shrink_tagset  (** empty the tag set of one pointer operation *)
  | Dangling_target  (** retarget one terminator at a missing block *)
  | Bad_register  (** insert an instruction using out-of-range registers *)
  | Pass_exception  (** raise from inside a pass body *)

val all_classes : fault_class list
val class_name : fault_class -> string

type class_stats = {
  mutable injected : int;
  mutable skipped : int;  (** no mutation site at the chosen pass point *)
  mutable caught_validation : int;
  mutable caught_oracle : int;
  mutable caught_exception : int;
  mutable benign : int;  (** survived but provably behaviour-preserving *)
  mutable escaped : int;
}

type report = {
  seed : int;  (** the campaign's RNG seed, printed in every report *)
  classes : (fault_class * class_stats) list;
  mutable trials : int;
  mutable escapes : string list;
}

(** Apply a fault class to a program at a random site (used directly by the
    unit tests); [None] when the program offers no site for the class. *)
val mutate :
  Random.State.t -> fault_class -> Rp_ir.Program.t -> string option

(** The campaign configuration: every optional pass on, structural and
    oracle validation armed. *)
val fuzz_config : Rp_driver.Config.t

(** Run a campaign of [seeds] trials (default 50) from RNG [seed]
    (default 42) over the built-in {!Corpus}.  Trials run on [jobs]
    worker domains (default 1); every random choice of trial [i] is drawn
    from its own [(seed, i)]-keyed stream and outcomes are folded into
    the report in trial order, so the report is identical at any [jobs]
    level. *)
val run : ?seed:int -> ?seeds:int -> ?jobs:int -> unit -> report

val total_escapes : report -> int
val pp_report : Format.formatter -> report -> unit
