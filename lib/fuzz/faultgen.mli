(** Fault-injection harness for the hardened pipeline (see [rpcc fuzz]).

    Injects IL corruption and exceptions inside guarded passes via
    {!Rp_driver.Pipeline.fault_hook} and asserts the isolation, validation,
    and oracle machinery contains every fault: rolled back and recorded, or
    provably behaviour-preserving.  Anything else is an escape. *)

type fault_class =
  | Drop_store  (** delete one sStore/Store instruction *)
  | Shrink_tagset  (** empty the tag set of one pointer operation *)
  | Dangling_target  (** retarget one terminator at a missing block *)
  | Bad_register  (** insert an instruction using out-of-range registers *)
  | Pass_exception  (** raise from inside a pass body *)
  | Native_cc_fail
      (** the C compiler cannot be executed: the degradation ladder must
          descend to the interpreter rung with the reason recorded *)
  | Native_truncated_bin
      (** a cached native binary loses its tail under a {e valid} CRC:
          only the native layer itself can detect it (exec/trailer
          failure), and its recompile rung must repair the entry *)
  | Native_bad_trailer
      (** a cached "binary" runs fine but prints garbage instead of the
          result trailer: the strict parser must reject, never invent
          counts *)
  | Native_poisoned_cas
      (** a cached binary's bytes rot under a stale CRC: the store must
          quarantine on read and the miss recompile cleanly *)

val all_classes : fault_class list
val class_name : fault_class -> string

val class_of_string : string -> fault_class option
(** Inverse of {!class_name}; [None] for unknown names. *)

type class_stats = {
  mutable injected : int;
  mutable skipped : int;  (** no mutation site at the chosen pass point *)
  mutable caught_validation : int;
  mutable caught_oracle : int;
  mutable caught_exception : int;
  mutable benign : int;  (** survived but provably behaviour-preserving *)
  mutable escaped : int;
}

type report = {
  seed : int;  (** the campaign's RNG seed, printed in every report *)
  classes : (fault_class * class_stats) list;
  mutable trials : int;
  mutable escapes : string list;
}

(** Apply a fault class to a program at a random site (used directly by the
    unit tests); [None] when the program offers no site for the class. *)
val mutate :
  Random.State.t -> fault_class -> Rp_ir.Program.t -> string option

(** The campaign configuration: every optional pass on, structural and
    oracle validation armed. *)
val fuzz_config : Rp_driver.Config.t

(** What one trial observed.  Trials are pure with respect to the
    report: they run (possibly on a worker domain) and return an outcome,
    which the campaign folds into the report in trial-index order. *)
type outcome =
  | Caught of [ `Validation | `Oracle | `Exception ]
  | Benign
  | Skipped
  | Escaped of string
  | No_site

val trial_json : int -> fault_class * outcome -> Rp_support.Json.t
(** Serialize trial [i]'s result as a campaign-journal record. *)

val trial_of_json : Rp_support.Json.t -> (int * (fault_class * outcome)) option
(** Inverse of {!trial_json}; [None] on malformed input. *)

(** Run a campaign of [seeds] trials (default 50) from RNG [seed]
    (default 42) over the built-in {!Corpus}.  Trials run supervised on
    [jobs] worker domains (default 1); every random choice of trial [i]
    is drawn from its own [(seed, i)]-keyed stream and outcomes are
    folded into the report in trial order, so the report is identical at
    any [jobs] level.

    [timeout]/[retries] impose a per-trial wall-clock deadline with
    bounded retries (see {!Rp_support.Pool.run_supervised}); a trial that
    exhausts its budget is reported through [on_failure] (with its trial
    index) instead of the report, and ticks [resilience].  [journal]
    appends one fsynced line-JSON record per {e finished} trial to that
    path; [resume] replays the finished trials of a previous journal
    without re-running them (ticking [Resumed] per replayed trial).
    [cancel] aborts the campaign cooperatively: unfinished trials are
    neither journaled nor folded. *)
val run :
  ?seed:int ->
  ?seeds:int ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?journal:string ->
  ?resume:string ->
  ?resilience:Rp_support.Resilience.t ->
  ?cancel:(unit -> bool) ->
  ?on_failure:(int -> Rp_support.Pool.job_failure -> unit) ->
  unit ->
  report

val total_escapes : report -> int
val pp_report : Format.formatter -> report -> unit
