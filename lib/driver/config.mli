(** Compilation configurations.

    The paper's experiment compiles each program four ways — {MOD/REF,
    points-to} × {promotion off, promotion on} — with the rest of the
    optimizer always enabled.  [Anone] is an extra ablation: with every
    tag set left at ⊤, promotion finds nothing (quantifying the paper's
    premise that promotion requires interprocedural analysis). *)

type analysis =
  | Anone  (** keep the front end's ⊤ sets (ablation) *)
  | Amodref  (** interprocedural MOD/REF only *)
  | Asteens  (** MOD/REF + Steensgaard unification points-to *)
  | Apointer  (** MOD/REF + Ruf-style inclusion points-to *)

type t = {
  analysis : analysis;
  promote : bool;  (** §3.1 scalar register promotion *)
  ptr_promote : bool;  (** §3.3 pointer-based promotion *)
  always_store : bool;  (** paper-literal unconditional exit stores *)
  throttle : bool;
      (** the §7 proposal: cap promotions by estimated register pressure
          (budget = [k]), keeping the least-referenced values in memory *)
  dse : bool;
      (** §3.4-inspired extension: global dead-store elimination over tags;
          off by default because the paper's compiler has no equivalent *)
  optimize : bool;  (** value numbering, const prop, LICM, PRE, DCE, clean *)
  regalloc : bool;
  k : int;  (** physical register count *)
  verify_passes : bool;
      (** translation validation: run structural IL validation after every
          guarded pass and roll the pass back (recording it as degraded)
          when its output is ill-formed *)
  oracle : bool;
      (** the stronger oracle mode (implies [verify_passes]): additionally
          execute the pre- and post-pass IR with bounded fuel and compare
          output, checksum, and dynamic counts, naming the offending pass
          on any mismatch *)
  analysis_budget : int option;
      (** override for the interprocedural analyses' fixpoint budgets
          (MOD/REF summary evaluations, points-to transfers, Steensgaard
          rounds); [None] uses each analysis's size-scaled default.  A
          blown budget degrades the compile to the ⊤ answer, it never
          aborts it. *)
}

val default : t
(** MOD/REF analysis, scalar promotion, full optimizer and allocator,
    [k = 24]; no validation. *)

val paper_grid : (string * t) list
(** The six-cell experiment grid: the paper's four configurations of
    Figures 5–7 — [modref/without], [modref/with], [pointer/without],
    [pointer/with] — plus the §3.3 cells [modref/ptr] and [pointer/ptr]
    (scalar promotion with pointer-based promotion stacked on top). *)

val o0 : t
(** The unoptimized reference configuration: front-end semantics with ⊤
    tag sets, no promotion, no optimizer, no allocator.  Used as the
    behavioural baseline by the differential fuzz oracle. *)

val named_grid : (string * t) list
(** The configurations the fuzz tools accept by name: [("O0", o0)]
    followed by {!paper_grid}. *)

val analysis_name : analysis -> string
(** ["none"], ["modref"], ["steens"], or ["pointer"]. *)

val name : t -> string
(** Canonical short name: the {!named_grid} name (["modref/ptr"], ["O0"],
    …) when the configuration structurally matches a grid entry ignoring
    the validation wrappers ([verify_passes]/[oracle]), otherwise a
    compact [analysis+flags k=N] string.  Unlike {!pp}, this keeps
    [+ptrpromote] cells distinguishable in machine-read records
    ([--stats-json], campaign journals). *)

val fingerprint : t -> string
(** A complete, deterministic rendering of every field: two
    configurations share a fingerprint iff they are structurally equal.
    Feeds content-addressed cache keys ({!Pipeline.cache_key}), where
    the human-oriented {!name}/{!pp} (which drop fields) would alias
    distinct configurations. *)

val pp : Format.formatter -> t -> unit
(** One line, e.g. [modref+promote+opt k=24]. *)
