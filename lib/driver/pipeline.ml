(** The compilation pipeline, in the paper's §5 order: front end →
    interprocedural analysis → register promotion (early) → value numbering,
    partial redundancy elimination, constant propagation, loop invariant
    code motion, dead code elimination → register allocation → block
    cleaning.

    Every stage is wrapped in a wall-clock timer and the interprocedural
    analyses report their fixpoint iteration counts, so a single compile
    yields a machine-readable per-pass profile (see [rpcc --stats-json] and
    the bench harness's [BENCH_timings.json]). *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
  mutable analysis_iters : int;
      (** fixpoint iterations spent in interprocedural analysis: MOD/REF
          summary evaluations plus points-to function transfers plus
          Steensgaard constraint rounds, summed over every (re-)run *)
  mutable timings : (string * float) list;
      (** per-pass wall-clock seconds, in execution order *)
}

let zero_stage_stats () =
  {
    promoted = 0;
    throttled = 0;
    ptr_promoted = 0;
    hoisted = 0;
    vn_rewrites = 0;
    pre_removed = 0;
    folded = 0;
    dce_removed = 0;
    dse_removed = 0;
    spilled = 0;
    coalesced = 0;
    analysis_iters = 0;
    timings = [];
  }

(** Run [f], appending its wall-clock time to [s.timings] under [name].
    Repeated passes (clean, copyprop, valnum) appear once per execution. *)
let timed (s : stage_stats) name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  s.timings <- (name, Unix.gettimeofday () -. t0) :: s.timings;
  r

(** Run the middle- and back-end on an already-lowered program.
    [stats] lets {!compile} pre-record front-end timing in the same
    record. *)
let optimize ?(config = Config.default) ?stats (p : Program.t) : stage_stats =
  let s = match stats with Some s -> s | None -> zero_stage_stats () in
  timed s "clean" (fun () -> Rp_cfg.Clean.run_program p);
  (* interprocedural analysis *)
  timed s "analysis" (fun () ->
      match config.Config.analysis with
      | Config.Anone -> ()
      | Config.Amodref ->
        let m = Rp_analysis.Modref.run p in
        s.analysis_iters <- s.analysis_iters + m.Rp_analysis.Modref.iters
      | Config.Asteens ->
        let st = Rp_analysis.Steensgaard.run p in
        s.analysis_iters <-
          s.analysis_iters + Rp_analysis.Steensgaard.iterations st
      | Config.Apointer ->
        let st = Rp_analysis.Pointsto.run p in
        s.analysis_iters <- s.analysis_iters + st.Rp_analysis.Pointsto.iters);
  (* register promotion, "in the early phases of optimization" *)
  if config.Config.promote then
    timed s "promotion" (fun () ->
        let pressure_budget =
          if config.Config.throttle then Some config.Config.k else None
        in
        let st =
          Rp_core.Promotion.promote_program
            ~always_store:config.Config.always_store ?pressure_budget p
        in
        s.promoted <- st.Rp_core.Promotion.promoted_tags;
        s.throttled <- st.Rp_core.Promotion.throttled_tags);
  if config.Config.optimize then begin
    timed s "valnum" (fun () ->
        s.vn_rewrites <- Rp_opt.Valnum.run_program p);
    timed s "constprop" (fun () -> s.folded <- Rp_opt.Constprop.run_program p);
    timed s "copyprop" (fun () ->
        ignore (Rp_opt.Copyprop.run_program p : int));
    timed s "clean" (fun () -> Rp_cfg.Clean.run_program p);
    timed s "licm" (fun () -> s.hoisted <- Rp_opt.Licm.run_program p);
    timed s "copyprop" (fun () ->
        ignore (Rp_opt.Copyprop.run_program p : int));
    (* §3.3 depends on LICM having hoisted base addresses *)
    if config.Config.ptr_promote then
      timed s "ptr_promotion" (fun () ->
          let st =
            Rp_core.Pointer_promotion.promote_program
              ~always_store:config.Config.always_store p
          in
          s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs);
    timed s "pre" (fun () -> s.pre_removed <- Rp_opt.Pre.run_program p);
    timed s "valnum" (fun () ->
        s.vn_rewrites <- s.vn_rewrites + Rp_opt.Valnum.run_program p);
    if config.Config.dse then
      timed s "dse" (fun () -> s.dse_removed <- Rp_opt.Dse.run_program p);
    timed s "dce" (fun () -> s.dce_removed <- Rp_opt.Dce.run_program p);
    timed s "clean" (fun () -> Rp_cfg.Clean.run_program p)
  end
  else if config.Config.ptr_promote then
    timed s "ptr_promotion" (fun () ->
        let st =
          Rp_core.Pointer_promotion.promote_program
            ~always_store:config.Config.always_store p
        in
        s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs);
  if config.Config.regalloc then
    timed s "regalloc" (fun () ->
        let st = Rp_regalloc.Regalloc.alloc_program ~k:config.Config.k p in
        s.spilled <- st.Rp_regalloc.Regalloc.spilled_regs;
        s.coalesced <- st.Rp_regalloc.Regalloc.coalesced;
        (* allocation can leave self-jump-free empty blocks and dead code *)
        ignore (Rp_opt.Dce.run_program p : int);
        Rp_cfg.Clean.run_program p);
  timed s "validate" (fun () -> Validate.assert_ok p);
  s.timings <- List.rev s.timings;
  s

(** Compile Mini-C source text under [config]. *)
let compile ?(config = Config.default) (src : string) : Program.t * stage_stats
    =
  let s = zero_stage_stats () in
  let p = timed s "frontend" (fun () -> Rp_irgen.Irgen.compile_source src) in
  let s = optimize ~config ~stats:s p in
  (p, s)

(** Compile and execute; returns the program, pipeline stats, and the
    interpreter result (output, checksum, dynamic counts). *)
let compile_and_run ?(config = Config.default) ?fuel ?check_tags (src : string)
    : Program.t * stage_stats * Rp_exec.Interp.result =
  let (p, s) = compile ~config src in
  let r = Rp_exec.Interp.run ?fuel ?check_tags p in
  (p, s, r)

(* ------------------------------------------------------------------ *)
(* JSON rendering of a compile's statistics                            *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json

(** Total seconds across all recorded passes. *)
let total_time (s : stage_stats) =
  List.fold_left (fun acc (_, t) -> acc +. t) 0. s.timings

(** The stats record as JSON: rewrite counters, fixpoint iterations, and
    per-pass timings in milliseconds (execution order preserved;
    re-executed passes are summed). *)
let stats_json (config : Config.t) (s : stage_stats) : Json.t =
  let merged =
    List.fold_left
      (fun acc (name, t) ->
        if List.mem_assoc name acc then
          List.map (fun (n, v) -> if n = name then (n, v +. t) else (n, v)) acc
        else acc @ [ (name, t) ])
      [] s.timings
  in
  Json.Obj
    [
      ("config", Json.Str (Fmt.str "%a" Config.pp config));
      ( "counters",
        Json.Obj
          [
            ("promoted", Json.Int s.promoted);
            ("throttled", Json.Int s.throttled);
            ("ptr_promoted", Json.Int s.ptr_promoted);
            ("hoisted", Json.Int s.hoisted);
            ("vn_rewrites", Json.Int s.vn_rewrites);
            ("pre_removed", Json.Int s.pre_removed);
            ("folded", Json.Int s.folded);
            ("dce_removed", Json.Int s.dce_removed);
            ("dse_removed", Json.Int s.dse_removed);
            ("spilled", Json.Int s.spilled);
            ("coalesced", Json.Int s.coalesced);
          ] );
      ("analysis_iters", Json.Int s.analysis_iters);
      ( "timings_ms",
        Json.Obj (List.map (fun (n, t) -> (n, Json.Float (1000. *. t))) merged)
      );
      ("total_ms", Json.Float (1000. *. total_time s));
    ]
