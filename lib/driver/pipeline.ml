(** The compilation pipeline, in the paper's §5 order: front end →
    interprocedural analysis → register promotion (early) → value numbering,
    partial redundancy elimination, constant propagation, loop invariant
    code motion, dead code elimination → register allocation → block
    cleaning.

    Every stage is wrapped in a wall-clock timer and the interprocedural
    analyses report their fixpoint iteration counts, so a single compile
    yields a machine-readable per-pass profile (see [rpcc --stats-json] and
    the bench harness's [BENCH_timings.json]).

    {b Hardening.}  The paper's premise is that the analysis may be
    conservative but the transformation may not be wrong — and a production
    compiler extends that to its own bugs: a pass that throws, blows the
    stack, corrupts the IL, or (in oracle mode) miscompiles is {e rolled
    back}, recorded in [stage_stats.degraded], and the rest of the pipeline
    continues on the pre-pass IR.  Likewise an interprocedural analysis
    whose fixpoint blows its budget degrades to the conservative ⊤ answer
    ("promotion finds nothing") instead of killing the compile. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
  mutable analysis_iters : int;
      (** fixpoint iterations spent in interprocedural analysis: MOD/REF
          summary evaluations plus points-to function transfers plus
          Steensgaard constraint rounds, summed over every (re-)run *)
  mutable timings : (string * float) list;
      (** per-pass wall-clock seconds, in execution order *)
  mutable degraded : (string * string) list;
      (** passes that failed and were rolled back, as (pass, reason), in
          execution order; empty on a healthy compile *)
  mutable converged : bool;
      (** false when an interprocedural analysis exhausted its fixpoint
          budget and the compile fell back to the conservative ⊤ answer *)
  mutable validated_passes : int;
      (** passes whose output passed translation validation (structural
          check, plus the execution oracle in oracle mode); 0 unless
          [Config.verify_passes] or [Config.oracle] is set *)
}

let zero_stage_stats () =
  {
    promoted = 0;
    throttled = 0;
    ptr_promoted = 0;
    hoisted = 0;
    vn_rewrites = 0;
    pre_removed = 0;
    folded = 0;
    dce_removed = 0;
    dse_removed = 0;
    spilled = 0;
    coalesced = 0;
    analysis_iters = 0;
    timings = [];
    degraded = [];
    converged = true;
    validated_passes = 0;
  }

(** Run [f], appending its wall-clock time to [s.timings] under [name].
    Repeated passes (clean, copyprop, valnum) appear once per execution. *)
let timed (s : stage_stats) name f =
  let t0 = Rp_support.Clock.now () in
  let r = f () in
  s.timings <- (name, Rp_support.Clock.elapsed t0) :: s.timings;
  r

exception Degraded of string
(** Raised {e inside} a guarded pass body to request a rollback with a
    human-readable reason (used by the analysis stage when a fixpoint
    budget is exhausted).  Never escapes {!optimize}. *)

(** Fault-injection hook for the test-suite and [rpcc fuzz]: called with
    the pass name at the start of every guarded pass body, {e inside} the
    isolation boundary, so a hook that raises exercises exactly the
    rollback path a buggy pass would.  Domain-local, so parallel fuzz
    workers ({!Rp_support.Pool}) inject faults into their own compiles
    only.  Default: no-op. *)
let fault_hook : (string -> unit) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (fun _ -> ()))

(** Run [f] with [hook] installed as this domain's fault hook, restoring
    the previous hook afterwards (even on exceptions). *)
let with_fault_hook (hook : string -> unit) (f : unit -> 'a) : 'a =
  let cell = Domain.DLS.get fault_hook in
  let saved = !cell in
  cell := hook;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Translation-validation oracle                                       *)
(* ------------------------------------------------------------------ *)

(** Fuel bound for oracle executions: enough for every suite program (the
    largest runs ~1.5M operations) while keeping a diverging mutant from
    hanging the compile. *)
let oracle_fuel = 50_000_000

(** Passes that must never increase the dynamic operation count: pure
    removers and local rewriters.  LICM, PRE, promotion, and regalloc are
    excluded — hoisting/spilling can legitimately add operations on
    zero-trip loops or spilled paths. *)
let count_reducing =
  [ "clean"; "constprop"; "copyprop"; "dce"; "dse"; "valnum" ]

type oracle_outcome =
  | Oresult of string * int * int  (** output, checksum, dynamic ops *)
  | Otrap of string
  | Oinconclusive  (** hit the fuel bound: cannot judge *)

(** Execute serialized IL on an independent round-tripped copy (so lazily
    created heap tags never leak into the live program's tag table). *)
let oracle_run (il : string) : oracle_outcome =
  match Rp_exec.Interp.run ~fuel:oracle_fuel (Serial.read il) with
  | r ->
    Oresult
      (r.Rp_exec.Interp.output, r.Rp_exec.Interp.checksum,
       r.Rp_exec.Interp.total.Rp_exec.Interp.ops)
  | exception Rp_exec.Interp.Resource_limit _ -> Oinconclusive
  | exception Rp_exec.Value.Runtime_error m -> Otrap m

(** Compare the behaviour of the pre-pass IR ([pre_il]) against the
    current (post-pass) program: output and checksum must agree exactly,
    traps must be identical, and count-reducing passes must not regress
    the dynamic operation count. *)
let oracle_check name pre_il (p : Program.t) : (unit, string) result =
  match (oracle_run pre_il, oracle_run (Serial.write p)) with
  | Oinconclusive, _ | _, Oinconclusive -> Ok ()
  | Otrap m1, Otrap m2 ->
    if m1 = m2 then Ok ()
    else Error (Printf.sprintf "trap changed (%S -> %S)" m1 m2)
  | Otrap m, Oresult _ ->
    Error (Printf.sprintf "pre-pass IR trapped (%s) but post-pass IR ran" m)
  | Oresult _, Otrap m ->
    Error ("post-pass IR trapped: " ^ m)
  | Oresult (o1, c1, ops1), Oresult (o2, c2, ops2) ->
    if o1 <> o2 then Error "output changed"
    else if c1 <> c2 then Error "checksum changed"
    else if List.mem name count_reducing && ops2 > ops1 then
      Error
        (Printf.sprintf "dynamic operation count regressed (%d -> %d)" ops1
           ops2)
    else Ok ()

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

(** Run the middle- and back-end on an already-lowered program.
    [stats] lets {!compile} pre-record front-end timing in the same
    record.

    Every pass runs isolated: the IR is snapshotted first, and a pass that
    raises (or, under [Config.verify_passes]/[Config.oracle], produces IL
    that fails validation or the execution oracle) is rolled back and
    recorded in [degraded] while the remaining pipeline continues. *)
let optimize ?(config = Config.default) ?stats (p : Program.t) : stage_stats =
  let s = match stats with Some s -> s | None -> zero_stage_stats () in
  let verify = config.Config.verify_passes || config.Config.oracle in
  let guarded name f =
    let snap = Program.snapshot p in
    let pre_il = if config.Config.oracle then Some (Serial.write p) else None in
    let degrade reason =
      Program.restore p snap;
      s.degraded <- s.degraded @ [ (name, reason) ]
    in
    let hook = Domain.DLS.get fault_hook in
    match
      timed s name (fun () ->
          !hook name;
          f ();
          (* the pass body mutates function bodies in place without going
             through [Program]'s mutators; stamp the change so the
             interpreter's precompile cache ({!Rp_exec.Precomp}) can't
             serve stale code.  Rollback paths stamp via [restore]. *)
          Program.touch p)
    with
    | () ->
      if verify then begin
        match Validate.check_program p with
        | [] -> (
          match pre_il with
          | None -> s.validated_passes <- s.validated_passes + 1
          | Some il -> (
            match oracle_check name il p with
            | Ok () -> s.validated_passes <- s.validated_passes + 1
            | Error reason -> degrade ("oracle: " ^ reason)))
        | errs -> degrade ("validation: " ^ String.concat "; " errs)
      end
    | exception Degraded reason -> degrade reason
    | exception Stack_overflow -> degrade "Stack_overflow"
    | exception Out_of_memory -> raise Out_of_memory
    | exception e -> degrade (Printexc.to_string e)
  in
  guarded "clean" (fun () -> Rp_cfg.Clean.run_program p);
  (* interprocedural analysis; a blown fixpoint budget degrades this stage
     to the Anone semantics (roll back to the front end's ⊤ sets) *)
  guarded "analysis" (fun () ->
      let budget = config.Config.analysis_budget in
      match config.Config.analysis with
      | Config.Anone -> ()
      | Config.Amodref ->
        let m = Rp_analysis.Modref.run ?budget p in
        s.analysis_iters <- s.analysis_iters + m.Rp_analysis.Modref.iters;
        if not m.Rp_analysis.Modref.converged then begin
          s.converged <- false;
          raise (Degraded "MOD/REF fixpoint budget exhausted")
        end
      | Config.Asteens ->
        let st = Rp_analysis.Steensgaard.run ?budget p in
        s.analysis_iters <-
          s.analysis_iters + Rp_analysis.Steensgaard.iterations st;
        if not (Rp_analysis.Steensgaard.converged st) then begin
          s.converged <- false;
          raise (Degraded "Steensgaard fixpoint budget exhausted")
        end
      | Config.Apointer ->
        let st = Rp_analysis.Pointsto.run ?budget p in
        s.analysis_iters <- s.analysis_iters + st.Rp_analysis.Pointsto.iters;
        if not st.Rp_analysis.Pointsto.converged then begin
          s.converged <- false;
          raise (Degraded "points-to fixpoint budget exhausted")
        end);
  (* register promotion, "in the early phases of optimization" *)
  if config.Config.promote then
    guarded "promotion" (fun () ->
        let pressure_budget =
          if config.Config.throttle then Some config.Config.k else None
        in
        let st =
          Rp_core.Promotion.promote_program
            ~always_store:config.Config.always_store ?pressure_budget p
        in
        s.promoted <- st.Rp_core.Promotion.promoted_tags;
        s.throttled <- st.Rp_core.Promotion.throttled_tags);
  if config.Config.optimize then begin
    guarded "valnum" (fun () ->
        s.vn_rewrites <- Rp_opt.Valnum.run_program p);
    guarded "constprop" (fun () -> s.folded <- Rp_opt.Constprop.run_program p);
    guarded "copyprop" (fun () ->
        ignore (Rp_opt.Copyprop.run_program p : int));
    guarded "clean" (fun () -> Rp_cfg.Clean.run_program p);
    guarded "licm" (fun () -> s.hoisted <- Rp_opt.Licm.run_program p);
    guarded "copyprop" (fun () ->
        ignore (Rp_opt.Copyprop.run_program p : int));
    (* §3.3 depends on LICM having hoisted base addresses *)
    if config.Config.ptr_promote then
      guarded "ptr_promotion" (fun () ->
          let st =
            Rp_core.Pointer_promotion.promote_program
              ~always_store:config.Config.always_store p
          in
          s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs);
    guarded "pre" (fun () -> s.pre_removed <- Rp_opt.Pre.run_program p);
    guarded "valnum" (fun () ->
        s.vn_rewrites <- s.vn_rewrites + Rp_opt.Valnum.run_program p);
    if config.Config.dse then
      guarded "dse" (fun () -> s.dse_removed <- Rp_opt.Dse.run_program p);
    guarded "dce" (fun () -> s.dce_removed <- Rp_opt.Dce.run_program p);
    guarded "clean" (fun () -> Rp_cfg.Clean.run_program p)
  end
  else if config.Config.ptr_promote then
    guarded "ptr_promotion" (fun () ->
        let st =
          Rp_core.Pointer_promotion.promote_program
            ~always_store:config.Config.always_store p
        in
        s.ptr_promoted <- st.Rp_core.Pointer_promotion.promoted_refs);
  if config.Config.regalloc then
    guarded "regalloc" (fun () ->
        let st = Rp_regalloc.Regalloc.alloc_program ~k:config.Config.k p in
        s.spilled <- st.Rp_regalloc.Regalloc.spilled_regs;
        s.coalesced <- st.Rp_regalloc.Regalloc.coalesced;
        (* allocation can leave self-jump-free empty blocks and dead code *)
        ignore (Rp_opt.Dce.run_program p : int);
        Rp_cfg.Clean.run_program p);
  (* the final check stays a hard failure: rollback restores known-good IL
     after every degraded pass, so reaching this with ill-formed IL means
     the isolation layer itself is broken *)
  timed s "validate" (fun () -> Validate.assert_ok ~ctx:"final" p);
  s.timings <- List.rev s.timings;
  s

(** Compile Mini-C source text under [config]. *)
let compile ?(config = Config.default) (src : string) : Program.t * stage_stats
    =
  let s = zero_stage_stats () in
  let p = timed s "frontend" (fun () -> Rp_irgen.Irgen.compile_source src) in
  let s = optimize ~config ~stats:s p in
  (p, s)

(** Compile and execute; returns the program, pipeline stats, and the
    interpreter result (output, checksum, dynamic counts). *)
let compile_and_run ?(config = Config.default) ?fuel ?check_tags ?max_depth
    ?should_stop ?deadline (src : string) :
    Program.t * stage_stats * Rp_exec.Interp.result =
  let (p, s) = compile ~config src in
  let r =
    Rp_exec.Interp.run ?fuel ?check_tags ?max_depth ?should_stop ?deadline p
  in
  (p, s, r)

(* ------------------------------------------------------------------ *)
(* JSON rendering of a compile's statistics                            *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json
module Cas = Rp_support.Cas

(** Total seconds across all recorded passes. *)
let total_time (s : stage_stats) =
  List.fold_left (fun acc (_, t) -> acc +. t) 0. s.timings

(** The stats record as JSON: rewrite counters, fixpoint iterations,
    degradation/validation state, and per-pass timings in milliseconds
    (execution order preserved; re-executed passes are summed). *)
let stats_json (config : Config.t) (s : stage_stats) : Json.t =
  let merged =
    (* single pass: a Hashtbl accumulates per-name sums while [order]
       remembers first-seen position *)
    let sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (name, t) ->
        match Hashtbl.find_opt sums name with
        | Some cur -> Hashtbl.replace sums name (cur +. t)
        | None ->
          Hashtbl.add sums name t;
          order := name :: !order)
      s.timings;
    List.rev_map (fun n -> (n, Hashtbl.find sums n)) !order
  in
  Json.Obj
    [
      ("config", Json.Str (Fmt.str "%a" Config.pp config));
      ("config_name", Json.Str (Config.name config));
      ( "counters",
        Json.Obj
          [
            ("promoted", Json.Int s.promoted);
            ("throttled", Json.Int s.throttled);
            ("ptr_promoted", Json.Int s.ptr_promoted);
            ("hoisted", Json.Int s.hoisted);
            ("vn_rewrites", Json.Int s.vn_rewrites);
            ("pre_removed", Json.Int s.pre_removed);
            ("folded", Json.Int s.folded);
            ("dce_removed", Json.Int s.dce_removed);
            ("dse_removed", Json.Int s.dse_removed);
            ("spilled", Json.Int s.spilled);
            ("coalesced", Json.Int s.coalesced);
          ] );
      ("analysis_iters", Json.Int s.analysis_iters);
      ("converged", Json.Bool s.converged);
      ( "degraded",
        Json.List
          (List.map
             (fun (pass, reason) ->
               Json.Obj [ ("pass", Json.Str pass); ("reason", Json.Str reason) ])
             s.degraded) );
      ("validated_passes", Json.Int s.validated_passes);
      ( "timings_ms",
        Json.Obj (List.map (fun (n, t) -> (n, Json.Float (1000. *. t))) merged)
      );
      ("total_ms", Json.Float (1000. *. total_time s));
    ]

(* ------------------------------------------------------------------ *)
(* Content-addressed caching                                           *)
(* ------------------------------------------------------------------ *)

(** Version stamp baked into every cache key.  Bump it whenever a pass,
    the serializer, the interpreter's observable counts, or the stats
    schema changes behaviour: old entries then simply stop matching (they
    age out as dead objects) instead of being served stale. *)
let pass_version = "rpcc-pipeline/1"

(** The content-addressed key for compiling [src] under [config]: pass
    version + full configuration fingerprint + source bytes.  Identical
    traffic — and only identical traffic — shares a key. *)
let cache_key ~(config : Config.t) (src : string) : string =
  Cas.key [ pass_version; Config.fingerprint config; src ]

type cached_run = {
  il : string;  (** serialized post-pipeline program *)
  stats : Json.t;  (** the {!stats_json} document of the populating compile *)
  output : string;
  checksum : int;
  ops : int;
  loads : int;
  stores : int;
  cache_hit : bool;
}

(** Decode the compact "result" cache object.  [None] on any shape
    mismatch (treated as a miss by the caller). *)
let decode_result raw : (string * int * int * int * int) option =
  match Json.parse raw with
  | exception Json.Parse_error _ -> None
  | doc -> (
    let str k = match Json.member k doc with Some (Json.Str s) -> Some s | _ -> None in
    let int k = match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None in
    match (str "output", int "checksum", int "ops", int "loads", int "stores") with
    | Some o, Some c, Some ops, Some loads, Some stores ->
      Some (o, c, ops, loads, stores)
    | _ -> None)

(** Compile-and-run through a content-addressed store.

    Warm path: when the store holds the post-pipeline program, stats
    document, and interpreter result for this (pass version, config,
    source) key, return them without touching the pipeline — the stored
    {e bytes} are re-served, so repeated submissions are byte-identical
    even across a daemon restart.

    Cold path: front end → optimizer → interpreter, then populate the
    store with four artifacts: the lowered front-end IL ([front], kept
    for forensics/oracle replay), the post-pipeline program ([program]),
    the stats document with its analysis facts ([stats]), and the
    interpreter result ([result]).  A run aborted by [should_stop] or
    [deadline] raises {!Rp_exec.Interp.Resource_limit} before anything is
    cached, so a half-finished job can never poison the store. *)
let compile_and_run_cached ?(config = Config.default) ?should_stop ?deadline
    ?runner ~(cas : Cas.t) (src : string) : cached_run =
  let key = cache_key ~config src in
  let warm =
    match
      ( Cas.get cas ~key ~kind:"program",
        Cas.get cas ~key ~kind:"stats",
        Cas.get cas ~key ~kind:"result" )
    with
    | Some il, Some stats_raw, Some result_raw -> (
      match (Json.parse stats_raw, decode_result result_raw) with
      | stats, Some (output, checksum, ops, loads, stores) ->
        Some
          { il; stats; output; checksum; ops; loads; stores; cache_hit = true }
      | exception Json.Parse_error _ -> None
      | _, None -> None)
    | _ -> None
  in
  match warm with
  | Some r -> r
  | None ->
    let s = zero_stage_stats () in
    let p = timed s "frontend" (fun () -> Rp_irgen.Irgen.compile_source src) in
    (* capture before [optimize] mutates the program in place *)
    let front_il = Serial.write p in
    let s = optimize ~config ~stats:s p in
    (* [runner] swaps the execution engine for the cold path only — warm
       hits re-serve stored bytes regardless of how they were computed,
       which is sound because every engine returns the interpreter's
       answer by contract *)
    let r =
      match runner with
      | Some run -> run p
      | None -> Rp_exec.Interp.run ?should_stop ?deadline p
    in
    let il = Serial.write p in
    let stats = stats_json config s in
    let output = r.Rp_exec.Interp.output in
    let checksum = r.Rp_exec.Interp.checksum in
    let t = r.Rp_exec.Interp.total in
    let ops = t.Rp_exec.Interp.ops in
    let loads = t.Rp_exec.Interp.loads in
    let stores = t.Rp_exec.Interp.stores in
    let result_doc =
      Json.Obj
        [
          ("output", Json.Str output);
          ("checksum", Json.Int checksum);
          ("ops", Json.Int ops);
          ("loads", Json.Int loads);
          ("stores", Json.Int stores);
        ]
    in
    Cas.put cas ~key ~kind:"front" front_il;
    Cas.put cas ~key ~kind:"program" il;
    Cas.put cas ~key ~kind:"stats" (Json.to_string ~indent:false stats);
    Cas.put cas ~key ~kind:"result" (Json.to_string ~indent:false result_doc);
    { il; stats; output; checksum; ops; loads; stores; cache_hit = false }
