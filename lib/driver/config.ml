(** Compilation configurations.

    The paper's experiment compiles each program four ways — {MOD/REF,
    points-to} × {promotion off, promotion on} — with the rest of the
    optimizer always enabled.  [`None] analysis is an extra ablation: with
    every tag set left at ⊤, promotion finds nothing (quantifying the
    paper's premise that promotion requires interprocedural analysis). *)

type analysis =
  | Anone  (** keep the front end's ⊤ sets (ablation) *)
  | Amodref  (** interprocedural MOD/REF only *)
  | Asteens  (** MOD/REF + Steensgaard unification points-to *)
  | Apointer  (** MOD/REF + Ruf-style inclusion points-to *)

type t = {
  analysis : analysis;
  promote : bool;  (** §3.1 scalar register promotion *)
  ptr_promote : bool;  (** §3.3 pointer-based promotion *)
  always_store : bool;  (** paper-literal unconditional exit stores *)
  throttle : bool;
      (** the §7 proposal: cap promotions by estimated register pressure
          (budget = [k]), keeping the least-referenced values in memory *)
  dse : bool;
      (** §3.4-inspired extension: global dead-store elimination over tags;
          off by default because the paper's compiler has no equivalent *)
  optimize : bool;  (** value numbering, const prop, LICM, PRE, DCE, clean *)
  regalloc : bool;
  k : int;  (** physical register count *)
  verify_passes : bool;
      (** translation validation: run structural IL validation after every
          guarded pass and roll the pass back (recording it as degraded)
          when its output is ill-formed *)
  oracle : bool;
      (** the stronger oracle mode (implies [verify_passes]): additionally
          execute the pre- and post-pass IR with bounded fuel and compare
          output, checksum, and dynamic counts, naming the offending pass
          on any mismatch *)
  analysis_budget : int option;
      (** override for the interprocedural analyses' fixpoint budgets
          (MOD/REF summary evaluations, points-to transfers, Steensgaard
          rounds); [None] uses each analysis's size-scaled default.  A
          blown budget degrades the compile to the ⊤ answer, it never
          aborts it. *)
}

let default =
  {
    analysis = Amodref;
    promote = true;
    ptr_promote = false;
    always_store = false;
    throttle = false;
    dse = false;
    optimize = true;
    regalloc = true;
    k = 24;
    verify_passes = false;
    oracle = false;
    analysis_budget = None;
  }

(** The experiment grid: the paper's four configurations of Figures 5–7
    — {MOD/REF, points-to} × {promotion off, on} — plus, per §3.3, the
    same two analyses with pointer-based promotion stacked on top of
    scalar promotion.  Every consumer of the grid (the bench tables and
    JSON baselines, the differential fuzz oracle, [rpcc table]) sees all
    six cells, so §3.3 is exercised by default rather than being a
    side-table ablation. *)
let paper_grid =
  [
    ("modref/without", { default with analysis = Amodref; promote = false });
    ("modref/with", { default with analysis = Amodref; promote = true });
    ( "modref/ptr",
      { default with analysis = Amodref; promote = true; ptr_promote = true }
    );
    ("pointer/without", { default with analysis = Apointer; promote = false });
    ("pointer/with", { default with analysis = Apointer; promote = true });
    ( "pointer/ptr",
      { default with analysis = Apointer; promote = true; ptr_promote = true }
    );
  ]

(** The unoptimized reference configuration: front-end semantics with ⊤
    tag sets, no promotion, no optimizer, no allocator.  Used as the
    behavioural baseline by the differential fuzz oracle. *)
let o0 =
  {
    default with
    analysis = Anone;
    promote = false;
    ptr_promote = false;
    optimize = false;
    regalloc = false;
  }

(** The configurations the fuzz tools accept by name: the paper grid plus
    the [O0] reference. *)
let named_grid = ("O0", o0) :: paper_grid

let analysis_name = function
  | Anone -> "none"
  | Amodref -> "modref"
  | Asteens -> "steens"
  | Apointer -> "pointer"

(** The canonical short name of a configuration: the grid name
    ("modref/ptr", "O0", …) when the configuration structurally matches a
    {!named_grid} entry — ignoring the validation wrappers
    ([verify_passes]/[oracle]), which the fuzz oracle and CI arm on top of
    a grid cell without changing what is being compiled — otherwise a
    compact [analysis+flags k=N] string.  This is what makes
    [+ptrpromote] cells distinguishable in [--stats-json] documents and
    campaign journal records, not just in bench table suffixes. *)
let name (c : t) : string =
  let essence c = { c with verify_passes = false; oracle = false } in
  match
    List.find_opt (fun (_, g) -> essence c = essence g) named_grid
  with
  | Some (n, _) -> n
  | None ->
    Printf.sprintf "%s%s%s%s%s%s%s k=%d" (analysis_name c.analysis)
      (if c.promote then "+promote" else "")
      (if c.ptr_promote then "+ptrpromote" else "")
      (if c.always_store then "+alwaysstore" else "")
      (if c.throttle then "+throttle" else "")
      (if c.dse then "+dse" else "")
      (if c.optimize then "+opt" else "")
      c.k

(** A complete, deterministic rendering of every configuration field, for
    content-addressed cache keys.  Unlike {!name}/{!pp} (human-oriented,
    which omit [always_store]/[regalloc]/[analysis_budget] in places),
    two configurations share a fingerprint iff they are structurally
    equal — anything less would let the daemon's cache serve one
    configuration's artifacts for another. *)
let fingerprint (c : t) : string =
  Printf.sprintf
    "analysis=%s promote=%b ptr_promote=%b always_store=%b throttle=%b \
     dse=%b optimize=%b regalloc=%b k=%d verify=%b oracle=%b budget=%s"
    (analysis_name c.analysis) c.promote c.ptr_promote c.always_store
    c.throttle c.dse c.optimize c.regalloc c.k c.verify_passes c.oracle
    (match c.analysis_budget with
    | None -> "default"
    | Some n -> string_of_int n)

let pp ppf c =
  Fmt.pf ppf "%s%s%s%s%s%s%s k=%d" (analysis_name c.analysis)
    (if c.promote then "+promote" else "")
    (if c.ptr_promote then "+ptrpromote" else "")
    (if c.throttle then "+throttle" else "")
    (if c.dse then "+dse" else "")
    (if c.optimize then "+opt" else "")
    (if c.oracle then "+oracle" else if c.verify_passes then "+verify" else "")
    c.k
