(** The compilation pipeline in the paper's §5 order: analysis → register
    promotion (early) → scalar optimizer → register allocation → cleaning.
    Each stage is timed; the analyses report fixpoint iteration counts.

    Every pass runs isolated behind a snapshot/rollback guard: a pass that
    raises (or fails translation validation when enabled) is rolled back
    and recorded in [degraded] while the rest of the pipeline continues. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
  mutable analysis_iters : int;
      (** fixpoint iterations spent in interprocedural analysis *)
  mutable timings : (string * float) list;
      (** per-pass wall-clock seconds, in execution order; repeated passes
          (clean, copyprop, valnum) appear once per execution *)
  mutable degraded : (string * string) list;
      (** passes rolled back by the isolation guard, as (pass, reason), in
          execution order; empty on a healthy compile *)
  mutable converged : bool;
      (** false when an interprocedural analysis exhausted its fixpoint
          budget and the compile degraded to the conservative ⊤ answer *)
  mutable validated_passes : int;
      (** passes whose output passed translation validation; 0 unless
          [Config.verify_passes] or [Config.oracle] is on *)
}

val zero_stage_stats : unit -> stage_stats

exception Degraded of string
(** Raised inside a guarded pass body to request rollback with a reason
    (used by the analysis stage on budget exhaustion).  Never escapes
    {!optimize}. *)

(** Fault-injection hook for tests and [rpcc fuzz]: called with the pass
    name at the start of every guarded pass body, inside the isolation
    boundary.  Domain-local: parallel fuzz workers inject faults into
    their own compiles only.  Default: no-op. *)
val fault_hook : (string -> unit) ref Domain.DLS.key

(** [with_fault_hook hook f] runs [f] with [hook] installed as this
    domain's fault hook, restoring the previous hook afterwards. *)
val with_fault_hook : (string -> unit) -> (unit -> 'a) -> 'a

(** Run the middle- and back-end on lowered IL; validates the result.
    [stats], when given, is extended in place (used by {!compile} to record
    front-end timing in the same record). *)
val optimize : ?config:Config.t -> ?stats:stage_stats -> Program.t -> stage_stats

(** Compile Mini-C source text. *)
val compile : ?config:Config.t -> string -> Program.t * stage_stats

(** Compile and execute.  [should_stop] and [deadline] are forwarded to
    {!Rp_exec.Interp.run}: the supervised execution layer uses them to
    impose per-job wall-clock budgets on the run phase. *)
val compile_and_run :
  ?config:Config.t ->
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  string ->
  Program.t * stage_stats * Rp_exec.Interp.result

(** Sum of all recorded pass times, in seconds. *)
val total_time : stage_stats -> float

(** Counters, fixpoint iterations, degradation/validation state, and
    per-pass timings (milliseconds, repeated passes summed) as a JSON
    object. *)
val stats_json : Config.t -> stage_stats -> Rp_support.Json.t

val pass_version : string
(** Version stamp baked into every content-addressed cache key.  Bump on
    any behaviour change to a pass, the serializer, the interpreter's
    observable counts, or the stats schema: stale entries then stop
    matching instead of being served. *)

val cache_key : config:Config.t -> string -> string
(** The {!Rp_support.Cas} key for compiling the source under the
    configuration: {!pass_version} + {!Config.fingerprint} + source
    bytes. *)

type cached_run = {
  il : string;  (** serialized post-pipeline program *)
  stats : Rp_support.Json.t;
      (** the {!stats_json} document of the populating compile — on a
          warm hit this includes the {e original} compile's timings, so
          re-served responses are byte-identical *)
  output : string;
  checksum : int;
  ops : int;
  loads : int;
  stores : int;
  cache_hit : bool;
}

(** {!compile_and_run} through a content-addressed store: a warm key
    re-serves the stored post-pipeline program, stats document, and
    interpreter result without touching the pipeline; a cold key
    compiles, runs, and populates the store (atomically, after the run
    completes — an aborted or trapped job caches nothing).  Corrupt
    entries are quarantined by {!Rp_support.Cas.get} and transparently
    recomputed. *)
val compile_and_run_cached :
  ?config:Config.t ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  ?runner:(Rp_ir.Program.t -> Rp_exec.Interp.result) ->
  cas:Rp_support.Cas.t ->
  string ->
  cached_run
(** @param runner the execution engine for the cold path (default: the
    interpreter with [should_stop]/[deadline]).  The daemon's native job
    mode passes the compiled-C degradation ladder here.  Contract: a
    runner must return the interpreter-identical result (or raise the
    interpreter's own exceptions), because its output is cached under the
    same mode-independent key and re-served to every later caller. *)
