(** The compilation pipeline in the paper's §5 order: analysis → register
    promotion (early) → scalar optimizer → register allocation → cleaning.
    Each stage is timed; the analyses report fixpoint iteration counts.

    Every pass runs isolated behind a snapshot/rollback guard: a pass that
    raises (or fails translation validation when enabled) is rolled back
    and recorded in [degraded] while the rest of the pipeline continues. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
  mutable analysis_iters : int;
      (** fixpoint iterations spent in interprocedural analysis *)
  mutable timings : (string * float) list;
      (** per-pass wall-clock seconds, in execution order; repeated passes
          (clean, copyprop, valnum) appear once per execution *)
  mutable degraded : (string * string) list;
      (** passes rolled back by the isolation guard, as (pass, reason), in
          execution order; empty on a healthy compile *)
  mutable converged : bool;
      (** false when an interprocedural analysis exhausted its fixpoint
          budget and the compile degraded to the conservative ⊤ answer *)
  mutable validated_passes : int;
      (** passes whose output passed translation validation; 0 unless
          [Config.verify_passes] or [Config.oracle] is on *)
}

val zero_stage_stats : unit -> stage_stats

exception Degraded of string
(** Raised inside a guarded pass body to request rollback with a reason
    (used by the analysis stage on budget exhaustion).  Never escapes
    {!optimize}. *)

(** Fault-injection hook for tests and [rpcc fuzz]: called with the pass
    name at the start of every guarded pass body, inside the isolation
    boundary.  Domain-local: parallel fuzz workers inject faults into
    their own compiles only.  Default: no-op. *)
val fault_hook : (string -> unit) ref Domain.DLS.key

(** [with_fault_hook hook f] runs [f] with [hook] installed as this
    domain's fault hook, restoring the previous hook afterwards. *)
val with_fault_hook : (string -> unit) -> (unit -> 'a) -> 'a

(** Run the middle- and back-end on lowered IL; validates the result.
    [stats], when given, is extended in place (used by {!compile} to record
    front-end timing in the same record). *)
val optimize : ?config:Config.t -> ?stats:stage_stats -> Program.t -> stage_stats

(** Compile Mini-C source text. *)
val compile : ?config:Config.t -> string -> Program.t * stage_stats

(** Compile and execute.  [should_stop] and [deadline] are forwarded to
    {!Rp_exec.Interp.run}: the supervised execution layer uses them to
    impose per-job wall-clock budgets on the run phase. *)
val compile_and_run :
  ?config:Config.t ->
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  string ->
  Program.t * stage_stats * Rp_exec.Interp.result

(** Sum of all recorded pass times, in seconds. *)
val total_time : stage_stats -> float

(** Counters, fixpoint iterations, degradation/validation state, and
    per-pass timings (milliseconds, repeated passes summed) as a JSON
    object. *)
val stats_json : Config.t -> stage_stats -> Rp_support.Json.t
