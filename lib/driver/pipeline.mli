(** The compilation pipeline in the paper's §5 order: analysis → register
    promotion (early) → scalar optimizer → register allocation → cleaning.
    Each stage is timed; the analyses report fixpoint iteration counts. *)

open Rp_ir

type stage_stats = {
  mutable promoted : int;
  mutable throttled : int;
  mutable ptr_promoted : int;
  mutable hoisted : int;
  mutable vn_rewrites : int;
  mutable pre_removed : int;
  mutable folded : int;
  mutable dce_removed : int;
  mutable dse_removed : int;
  mutable spilled : int;
  mutable coalesced : int;
  mutable analysis_iters : int;
      (** fixpoint iterations spent in interprocedural analysis *)
  mutable timings : (string * float) list;
      (** per-pass wall-clock seconds, in execution order; repeated passes
          (clean, copyprop, valnum) appear once per execution *)
}

val zero_stage_stats : unit -> stage_stats

(** Run the middle- and back-end on lowered IL; validates the result.
    [stats], when given, is extended in place (used by {!compile} to record
    front-end timing in the same record). *)
val optimize : ?config:Config.t -> ?stats:stage_stats -> Program.t -> stage_stats

(** Compile Mini-C source text. *)
val compile : ?config:Config.t -> string -> Program.t * stage_stats

(** Compile and execute. *)
val compile_and_run :
  ?config:Config.t ->
  ?fuel:int ->
  ?check_tags:bool ->
  string ->
  Program.t * stage_stats * Rp_exec.Interp.result

(** Sum of all recorded pass times, in seconds. *)
val total_time : stage_stats -> float

(** Counters, fixpoint iterations, and per-pass timings (milliseconds,
    repeated passes summed) as a JSON object. *)
val stats_json : Config.t -> stage_stats -> Rp_support.Json.t
