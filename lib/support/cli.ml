(** Uniform numeric-argument validation.  See cli.mli. *)

let usage_exit msg =
  prerr_endline ("usage: " ^ msg);
  exit 2

let jobs ~flag n =
  if n < 0 then usage_exit (Printf.sprintf "%s must be >= 0 (0 = auto)" flag)
  else if n = 0 then Pool.recommended_jobs ()
  else n

let positive ~flag n =
  if n < 1 then usage_exit (Printf.sprintf "%s must be >= 1" flag) else n
