(** Fixed-size Domain worker pool with deterministic, index-ordered
    collection, and a supervised variant with per-job deadlines, bounded
    retries, and worker respawn.  See {!run} and {!run_supervised}. *)

type 'a outcome = ('a, exn) result

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the natural default for a
    [--jobs] flag. *)

val run :
  jobs:int ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** [run ~jobs f inputs] maps [f] over [inputs] on up to [jobs] domains
    (clamped to [1 .. Array.length inputs]; the calling domain is one of
    them) and returns outcomes in input order.  A job that raises yields
    [Error exn] in its slot; the other jobs still run.  The result array
    is identical for every [jobs] value.  Jobs must not print or share
    mutable non-atomic state.

    [on_result i o] fires on the domain that finished job [i], as soon as
    it finishes — out of index order.  It must be thread-safe and must not
    raise; campaign drivers use it to journal completions incrementally.

    All spawned domains are joined even if the calling domain's share of
    the work — or [on_result] — raises: no domain leaks on exception
    paths. *)

val run_exn : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [run] plus fail-fast collection: re-raises the first captured
    exception in index order — the same exception a sequential loop would
    have raised first. *)

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)
(* ------------------------------------------------------------------ *)

(** Why a supervised job was given up on, after its retry budget:
    [attempts] is the total number of attempts made. *)
type job_failure =
  | Timed_out of { elapsed : float; attempts : int }
      (** every attempt exceeded the per-job deadline *)
  | Crashed of { reason : string; attempts : int }
      (** every attempt raised ([reason] is the last exception), or the
          run was cancelled before the job finished
          ([reason = "cancelled"], [attempts] = attempts started) *)

type 'a supervised = ('a, job_failure) result

val pp_job_failure : Format.formatter -> job_failure -> unit

val run_supervised :
  jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?grace:float ->
  ?poll:float ->
  ?cancel:(unit -> bool) ->
  ?resilience:Resilience.t ->
  ?on_result:(int -> 'b supervised -> unit) ->
  (should_stop:(unit -> bool) -> 'a -> 'b) ->
  'a array ->
  'b supervised array
(** [run_supervised ~jobs f inputs] is {!run} under supervision.  Unlike
    {!run}, the calling domain does not execute jobs: it spawns [jobs]
    worker domains and supervises them.

    {b Deadlines.}  Each job attempt receives a [should_stop] closure that
    turns [true] once the attempt has run for [timeout] seconds (or the
    run is cancelled); cooperative workloads — anything built on the
    interpreter's [?should_stop] polling — abort promptly and the attempt
    counts as timed out.  No [timeout] means no deadline.

    {b Supervision.}  A worker that has overrun [timeout + grace] without
    polling [should_stop] (a wedged compile, a non-cooperative loop) is
    declared dead: its job is taken away, the worker domain is abandoned
    (left to finish into the void — OCaml domains cannot be killed; its
    late result is discarded by a claim check) and a replacement worker is
    spawned so throughput recovers.  [grace] defaults to 1 s.

    {b Retries.}  A failed attempt (timeout or exception) is re-queued up
    to [retries] extra times (default 1), then the job is quarantined as
    [Error (Timed_out _ | Crashed _)].  Failure events tick [resilience]
    (timeouts, retries, crashes, quarantines) when given.

    {b Cancellation.}  When [cancel ()] turns true, workers stop taking
    jobs, in-flight attempts are asked to stop, and every unfinished job
    resolves to [Error (Crashed { reason = "cancelled"; _ })] without
    firing [on_result] — callers flush their journal and exit; completed
    work is already recorded.

    {b Determinism.}  Completed jobs ([Ok _] slots) carry exactly the
    value a sequential run would have produced: retrying a deterministic
    job cannot change its result, and collection is by index, so the
    [Ok] portion of the result array is byte-identical at any [jobs]
    value.  Only {e whether} a job times out depends on the wall clock.

    [on_result i o] fires on the resolving domain as soon as job [i]
    resolves (completes, or exhausts its retries) — not on cancellation.
    All live (non-abandoned) workers are joined before returning, even if
    supervision raises. *)
