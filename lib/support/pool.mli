(** Fixed-size Domain worker pool with deterministic, index-ordered
    collection.  See {!run}. *)

type 'a outcome = ('a, exn) result

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the natural default for a
    [--jobs] flag. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b outcome array
(** [run ~jobs f inputs] maps [f] over [inputs] on up to [jobs] domains
    (clamped to [1 .. Array.length inputs]; the calling domain is one of
    them) and returns outcomes in input order.  A job that raises yields
    [Error exn] in its slot; the other jobs still run.  The result array
    is identical for every [jobs] value.  Jobs must not print or share
    mutable non-atomic state. *)

val run_exn : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [run] plus fail-fast collection: re-raises the first captured
    exception in index order — the same exception a sequential loop would
    have raised first. *)
