(** Append-only, fsync-on-record, CRC-protected line-JSON journal.

    One record per line, written with [O_APPEND] and [fsync]ed before
    {!record} returns, so every acknowledged record survives a crash or
    SIGKILL of the process.  Campaign drivers ([rpcc gen-fuzz], [rpcc
    fuzz], [bench --json]) and the [rpcc serve] daemon write one record
    per unit of work and re-read the file on [--resume] / warm restart to
    skip work already done.

    Writers are thread-safe: worker domains may {!record} concurrently
    (records are serialized under an internal lock, never interleaved).

    {b Record format.}  Each line is a v2 wrapper
    [{"crc32": "xxxxxxxx", "r": <record>}]: the CRC-32 of the record's
    compact serialization travels with it, so a bit flip or torn write
    {e anywhere} in the file — not just a truncated final line — is
    detected on load and the damaged record is skipped (and surfaced via
    [on_skip]) instead of being parsed as garbage.  CRC-less v1 journals
    (any line that is not a v2 wrapper) keep loading for [--resume]
    compatibility. *)

type writer

val create : string -> writer
(** Open [path] for appending, creating it if missing. *)

val record : writer -> Json.t -> unit
(** Append one record as a single CRC-wrapped JSON line and [fsync].
    Raises [Invalid_argument] if the writer is closed. *)

val close : writer -> unit
(** Idempotent. *)

val path : writer -> string

val load : ?on_skip:(line:int -> string -> unit) -> string -> Json.t list
(** Parse every line of [path] in order, returning the unwrapped payload
    records.  A missing file is an empty journal.  An unparseable
    {e final} line (the record being written when the process died) is
    dropped silently; a corrupt {e interior} line — unparseable, or a v2
    record whose CRC does not match — is skipped and reported through
    [on_skip] (1-based line number and reason), so callers can count a
    [journal_skipped] telemetry event rather than crash or resume from
    garbage. *)
