(** Append-only, fsync-on-record, line-JSON campaign journal.

    One record per line, written with [O_APPEND] and [fsync]ed before
    {!record} returns, so every acknowledged record survives a crash or
    SIGKILL of the process.  Campaign drivers ([rpcc gen-fuzz], [rpcc
    fuzz], [bench --json]) write one record per finished unit of work and
    re-read the file under [--resume] to skip work already done.

    Writers are thread-safe: worker domains may {!record} concurrently
    (records are serialized under an internal lock, never interleaved).
    The loader tolerates exactly the corruption a crash can cause — a
    truncated final line — and rejects anything else. *)

type writer

val create : string -> writer
(** Open [path] for appending, creating it if missing. *)

val record : writer -> Json.t -> unit
(** Append one record as a single unindented JSON line and [fsync].
    Raises [Invalid_argument] if the writer is closed. *)

val close : writer -> unit
(** Idempotent. *)

val path : writer -> string

val load : string -> Json.t list
(** Parse every line of [path] in order.  A missing file is an empty
    journal.  An unparseable {e final} line (the record being written when
    the process died) is dropped; an unparseable interior line raises
    [Failure] — the journal is corrupt, not merely truncated. *)
