(** A minimal JSON tree, emitter, and parser.

    The pipeline's observability layer ([rpcc --stats-json], the bench
    harness's [BENCH_*.json] exports) needs machine-readable output, and
    the test suite needs to read it back; the container deliberately ships
    no third-party JSON library, so this ~150-line module is the whole
    dependency.  Covers the full JSON grammar except: integers and floats
    are kept as separate constructors, and parsing accepts only what the
    emitter produces plus ordinary interchange JSON (no comments, no
    trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else invalid_arg "Json: non-finite float"

let rec emit b indent level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List vs ->
    Buffer.add_char b '[';
    nl ();
    List.iteri
      (fun i v ->
        if i > 0 then begin Buffer.add_char b ','; nl () end;
        pad (level + 1);
        emit b indent (level + 1) v)
      vs;
    nl ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin Buffer.add_char b ','; nl () end;
        pad (level + 1);
        escape_string b k;
        Buffer.add_string b (if indent then ": " else ":");
        emit b indent (level + 1) v)
      kvs;
    nl ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = true) v =
  let b = Buffer.create 1024 in
  emit b indent 0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

let to_file ?indent path v =
  let oc = open_out path in
  output_string oc (to_string ?indent v);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin pos := !pos + String.length word; v end
    else fail ("bad literal, wanted " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          pos := !pos + 4;
          (* BMP only; enough for the emitter's control-char escapes *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do incr pos done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ((k, v) :: acc)
          | Some '}' -> incr pos; List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; items (v :: acc)
          | Some ']' -> incr pos; List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse s

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let keys = function Obj kvs -> List.map fst kvs | _ -> []
