(** CRC-32 (IEEE).  See crc32.mli. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let to_hex c = Printf.sprintf "%08x" (c land 0xffffffff)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 -> Some v
    | _ -> None
