(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    The journal's per-record integrity check ({!Journal}) and the
    content-addressed store's header verification ({!Cas}) need a
    checksum that detects bit flips and torn writes without any external
    dependency; this is the standard reflected table-driven
    implementation, ~20 lines, deterministic across platforms. *)

val string : string -> int
(** CRC-32 of the whole string, in [0, 2^32). *)

val to_hex : int -> string
(** Eight lowercase hex digits, zero-padded. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] if the string is not 8 hex digits. *)
