(** Generic retry with exponential backoff and a per-key circuit breaker.

    The supervision layer's two failure-handling primitives, shared by the
    worker pool, the campaign drivers, and [rpcc run --retries]:

    - {!with_backoff} re-runs a failing thunk with exponentially growing,
      deterministically jittered delays — replaying a campaign with the
      same seed replays the same delay sequence;
    - {!Breaker} stops hammering a known-bad key (a benchmark program
      whose every cell times out, a wedged configuration) after a bounded
      number of consecutive failures, re-probing after a cooldown. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** backoff ceiling, pre-jitter *)
  jitter : float;  (** jitter fraction in [0, 1]: delay *= 1 + jitter·u *)
}

val default_policy : policy
(** 3 attempts, 50 ms base, 2 s ceiling, 25 % jitter. *)

val delay_for : policy -> seed:int -> attempt:int -> float
(** Backoff delay before retry [attempt] (1-based): [base·2^(attempt-1)]
    clamped to [max_delay], stretched by the policy's jitter fraction drawn
    from a hash of [(seed, attempt)] — deterministic, so replays and tests
    see identical schedules. *)

val with_backoff :
  ?policy:policy ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> exn -> unit) ->
  (unit -> 'a) ->
  ('a, exn) result
(** Run the thunk; on an exception, sleep the {!delay_for} schedule and
    re-run, up to [policy.max_attempts] total attempts.  Returns the first
    success or the {e last} exception.  [on_retry] fires before each
    re-attempt (attempt number of the {e upcoming} try, 2-based).
    @param sleep defaults to [Unix.sleepf]; inject for tests. *)

(** Per-key circuit breaker (closed → open → half-open).

    Every key starts {!Closed}.  [threshold] consecutive failures {e trip}
    the key {!Open}: calls are rejected without running until [cooldown]
    seconds pass, then one probe call runs {!Half_open}; its success
    {e resets} the key to {!Closed}, its failure re-trips it.  All
    transitions are recorded as {!event}s.  Thread-safe; the protected
    thunk runs outside the lock. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  type event = {
    key : string;
    at : float;  (** {!Clock.now} at the transition *)
    transition : [ `Trip | `Probe | `Reset ];
  }

  type t

  exception Open_circuit of string
  (** Returned (never raised into the caller's thunk) by {!call} when the
      key's circuit is open: the payload is the key. *)

  val create : ?threshold:int -> ?cooldown:float -> ?now:(unit -> float) -> unit -> t
  (** @param threshold consecutive failures before tripping (default 2)
      @param cooldown seconds open before a half-open probe (default 30)
      @param now clock override for tests (default {!Clock.now}) *)

  val state : t -> string -> state

  val call : t -> key:string -> (unit -> 'a) -> ('a, exn) result
  (** Run the thunk under the key's circuit.  [Error (Open_circuit key)]
      when rejected; otherwise the thunk's result, with its outcome folded
      into the key's state.  While one probe is in flight, concurrent
      calls on the key are rejected. *)

  val trips : t -> int
  (** Total [`Trip] events across all keys. *)

  val events : t -> event list
  (** All transition events, oldest first. *)

  (** One key's observable state, for health/stats surfaces. *)
  type snapshot = {
    skey : string;
    sstate : state;
    sconsecutive : int;  (** consecutive failures while closed *)
    slast : ([ `Trip | `Probe | `Reset ] * float) option;
        (** most recent transition and its {!Clock.now} instant *)
  }

  val state_name : state -> string
  (** ["closed"], ["open"], or ["half_open"]. *)

  val snapshots : t -> snapshot list
  (** Every key the breaker has seen, sorted by key. *)

  val snapshots_json : t -> Json.t
  (** [{key: {"state": _, "consecutive_failures": _, "last_transition":
      _, "last_transition_at": _}, ...}] — the [breakers] object embedded
      in resilience JSON by surfaces that own a breaker ([rpcc serve]
      health, the bench grid). *)
end
