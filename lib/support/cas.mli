(** A crash-tolerant content-addressed store.

    The [rpcc serve] daemon's warm path: compile artifacts — serialized
    front-end and post-pipeline programs, stats JSON, interpreter results
    — are stored under a key derived from the {e content} that produced
    them (source text, configuration fingerprint, pipeline pass version),
    so identical traffic skips the pipeline entirely and a SIGKILL'd
    daemon restarts warm.

    Robustness contract:
    - {b Atomic writes.}  {!put} writes to a temp file in the store,
      [fsync]s, then [rename]s into place — a reader (or a crash) never
      observes a half-written entry under its final name.
    - {b Verified reads.}  Every object carries a header with its kind,
      payload CRC-32, and length; {!get} verifies all three and treats
      any mismatch — truncation, bit flip, wrong kind — as a miss.
    - {b Quarantine, never a wrong answer.}  A corrupt entry is moved to
      the store's [quarantine/] directory (preserved for forensics) and
      counted; the caller recomputes.  Corruption can cost a cache hit,
      never correctness.

    Counters are atomic; domains may hit one store concurrently.
    Entries are immutable by construction (same key + kind ⇒ same
    bytes), so concurrent writers racing on one entry are benign: the
    last rename wins with identical content. *)

type t

val open_ : string -> t
(** Open (creating if needed) a store rooted at the directory.  Temp
    files orphaned by a crash mid-{!put} are reaped; a temp file whose
    writer process is still alive (another shard's in-flight put on a
    shared store) is left alone. *)

val root : t -> string

val key : string list -> string
(** Collision-resistant hex key of the (order-sensitive,
    length-delimited) parts. *)

val put : t -> key:string -> kind:string -> string -> unit
(** Store the payload under (key, kind), atomically.  [kind] must be a
    short [[a-z0-9_-]] label ("program", "stats", "result", ...). *)

val get : t -> key:string -> kind:string -> string option
(** The verified payload, or [None] on a miss.  A present-but-corrupt
    entry is quarantined (moved aside, counted) and reported as a miss. *)

type stats = { hits : int; misses : int; puts : int; quarantined : int }

val stats : t -> stats

val stats_json : t -> Json.t
(** [{"hits": _, "misses": _, "puts": _, "quarantined": _}] — the cache
    section of [rpcc serve]'s health document. *)
