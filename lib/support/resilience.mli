(** The supervision layer's failure-outcome counters.

    Every supervised execution surface — the worker pool, the campaign
    drivers, [rpcc run --retries] — folds its failure handling into one of
    these records, and every stats-JSON document renders it as the
    [resilience] object, so timeouts, retries, breaker trips, and resumed
    work are observable wherever counts are.  Counters are atomic: worker
    domains tick them concurrently. *)

type t

type outcome =
  | Timeout  (** a job hit its wall-clock deadline *)
  | Retry  (** a failed job was re-attempted *)
  | Breaker_trip  (** a circuit breaker opened *)
  | Resumed  (** a unit of work was skipped via a [--resume] journal *)
  | Crash  (** a job raised (or its worker died) *)
  | Quarantine  (** a job was given up on after its retry budget *)
  | Failover  (** a request was re-routed off a dead fleet shard *)
  | Respawn  (** a crashed or wedged fleet shard was replaced *)

val create : unit -> t
val tick : t -> outcome -> unit
val count : t -> outcome -> int
val set : t -> outcome -> int -> unit

val any : t -> bool
(** True when any counter is nonzero. *)

val merge : into:t -> t -> unit
(** Add every counter of the second record into [into]. *)

val to_json : ?breakers:Json.t -> t -> Json.t
(** [{"timeouts": _, "retries": _, "breaker_trips": _, "resumed": _,
     "crashed": _, "quarantined": _, "failovers": _, "respawns": _}] —
    the stats-JSON [resilience] object.  Surfaces that own a circuit breaker (the bench grid, [rpcc
    serve] health) pass [?breakers] (normally
    {!Retry.Breaker.snapshots_json}) to append a [breakers] key with
    per-key state; surfaces without one ([rpcc run]) omit it and their
    schema is unchanged. *)

val pp : Format.formatter -> t -> unit
(** One line: [timeouts=0 retries=0 breaker_trips=0 resumed=0 crashed=0
    quarantined=0 failovers=0 respawns=0]. *)
