(** Crash-tolerant content-addressed store.  See cas.mli. *)

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  puts : int Atomic.t;
  quarantined : int Atomic.t;
  uniq : int Atomic.t;  (** per-process temp/quarantine name counter *)
}

let magic = "rpcc-cas/1"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let objects_dir t = Filename.concat t.root "objects"
let tmp_dir t = Filename.concat t.root "tmp"
let quarantine_dir t = Filename.concat t.root "quarantine"

let open_ root =
  let t =
    { root; hits = Atomic.make 0; misses = Atomic.make 0;
      puts = Atomic.make 0; quarantined = Atomic.make 0;
      uniq = Atomic.make 0 }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  mkdir_p (quarantine_dir t);
  (* reap temp files orphaned by a crash mid-[put]: they were never
     renamed into place, so nothing references them.  Several processes
     (fleet shards) may share one store, so a temp file whose embedded
     writer pid is still alive is an in-flight put, not an orphan — and
     must survive a sibling's restart. *)
  let owner_alive f =
    (* temp names are "<key>.<kind>.<pid>.<uniq>" (see [put]) *)
    match String.split_on_char '.' f with
    | [ _; _; pid; _ ] -> (
      match int_of_string_opt pid with
      | Some pid when pid <> Unix.getpid () -> (
        match Unix.kill pid 0 with
        | () -> true
        | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
        | exception Unix.Unix_error _ -> false)
      | _ -> false)
    | _ -> false
  in
  Array.iter
    (fun f ->
      if not (owner_alive f) then
        try Sys.remove (Filename.concat (tmp_dir t) f) with Sys_error _ -> ())
    (try Sys.readdir (tmp_dir t) with Sys_error _ -> [||]);
  t

let root t = t.root

(* Length-delimited concatenation, then MD5 (stdlib Digest): parts can
   contain arbitrary bytes and cannot collide by concatenation. *)
let key parts =
  Digest.to_hex
    (Digest.string
       (String.concat ""
          (List.map
             (fun p -> string_of_int (String.length p) ^ ":" ^ p)
             parts)))

let check_kind kind =
  if
    kind = ""
    || not
         (String.for_all
            (function 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
            kind)
  then invalid_arg ("Cas: bad kind " ^ kind)

let entry_path t ~key:k ~kind =
  let shard =
    Filename.concat (objects_dir t) (String.sub (k ^ "00") 0 2)
  in
  (shard, Filename.concat shard (k ^ "." ^ kind))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let put t ~key:k ~kind payload =
  check_kind kind;
  let (shard, path) = entry_path t ~key:k ~kind in
  mkdir_p shard;
  let tmp =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "%s.%s.%d.%d" k kind (Unix.getpid ())
         (Atomic.fetch_and_add t.uniq 1))
  in
  let header =
    Printf.sprintf "%s %s %s %d\n" magic kind
      (Crc32.to_hex (Crc32.string payload))
      (String.length payload)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let write_all s =
        let b = Bytes.unsafe_of_string s in
        let n = Bytes.length b in
        let rec go off =
          if off < n then go (off + Unix.write fd b off (n - off))
        in
        go 0
      in
      write_all header;
      write_all payload;
      Unix.fsync fd);
  Unix.rename tmp path;
  Atomic.incr t.puts

(** Parse and verify an object file's bytes; [Error reason] on any
    header/CRC/length mismatch. *)
let verify ~kind raw =
  match String.index_opt raw '\n' with
  | None -> Error "no header"
  | Some nl -> (
    let header = String.sub raw 0 nl in
    let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
    match String.split_on_char ' ' header with
    | [ m; k; crc_hex; len ] ->
      if m <> magic then Error "bad magic"
      else if k <> kind then Error "kind mismatch"
      else if int_of_string_opt len <> Some (String.length payload) then
        Error "length mismatch"
      else (
        match Crc32.of_hex crc_hex with
        | Some c when c = Crc32.string payload -> Ok payload
        | _ -> Error "crc mismatch")
    | _ -> Error "malformed header")

let quarantine t path =
  let dest =
    Filename.concat (quarantine_dir t)
      (Printf.sprintf "%s.%d.%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add t.uniq 1))
  in
  (try Unix.rename path dest
   with Unix.Unix_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  Atomic.incr t.quarantined

let get t ~key:k ~kind =
  check_kind kind;
  let (_, path) = entry_path t ~key:k ~kind in
  match read_file path with
  | exception Sys_error _ ->
    Atomic.incr t.misses;
    None
  | raw -> (
    match verify ~kind raw with
    | Ok payload ->
      Atomic.incr t.hits;
      Some payload
    | Error _ ->
      quarantine t path;
      Atomic.incr t.misses;
      None)

type stats = { hits : int; misses : int; puts : int; quarantined : int }

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    puts = Atomic.get t.puts;
    quarantined = Atomic.get t.quarantined;
  }

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("puts", Json.Int s.puts);
      ("quarantined", Json.Int s.quarantined);
    ]
