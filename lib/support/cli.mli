(** Uniform validation for numeric CLI arguments.

    Every parallel surface ([rpcc serve]/[fuzz]/[gen-fuzz], the bench
    harness) takes a [--jobs] count and the daemon takes a queue bound;
    before this module each command hand-rolled its own clamping
    (silently promoting [-3] to [1], or to "auto").  These helpers give
    them one behaviour: invalid values are rejected with a usage message
    on stderr and exit code 2 (the repo-wide usage-error code), never
    silently corrected. *)

val jobs : flag:string -> int -> int
(** Worker-domain count: [0] means the machine's recommended domain
    count ({!Pool.recommended_jobs}); positive values pass through; a
    negative value prints [usage: FLAG must be >= 0 (0 = auto)] and
    exits 2. *)

val positive : flag:string -> int -> int
(** A strictly positive argument (queue bounds, thresholds): values
    [< 1] print [usage: FLAG must be >= 1] and exit 2. *)
