(** Supervision-layer failure counters.  See resilience.mli. *)

type outcome =
  | Timeout
  | Retry
  | Breaker_trip
  | Resumed
  | Crash
  | Quarantine
  | Failover
  | Respawn

type t = {
  timeouts : int Atomic.t;
  retries : int Atomic.t;
  breaker_trips : int Atomic.t;
  resumed : int Atomic.t;
  crashed : int Atomic.t;
  quarantined : int Atomic.t;
  failovers : int Atomic.t;
  respawns : int Atomic.t;
}

let create () =
  {
    timeouts = Atomic.make 0;
    retries = Atomic.make 0;
    breaker_trips = Atomic.make 0;
    resumed = Atomic.make 0;
    crashed = Atomic.make 0;
    quarantined = Atomic.make 0;
    failovers = Atomic.make 0;
    respawns = Atomic.make 0;
  }

let cell t = function
  | Timeout -> t.timeouts
  | Retry -> t.retries
  | Breaker_trip -> t.breaker_trips
  | Resumed -> t.resumed
  | Crash -> t.crashed
  | Quarantine -> t.quarantined
  | Failover -> t.failovers
  | Respawn -> t.respawns

let tick t o = Atomic.incr (cell t o)
let count t o = Atomic.get (cell t o)
let set t o v = Atomic.set (cell t o) v

let all =
  [ Timeout; Retry; Breaker_trip; Resumed; Crash; Quarantine; Failover;
    Respawn ]
let any t = List.exists (fun o -> count t o > 0) all

let merge ~into src =
  List.iter
    (fun o -> ignore (Atomic.fetch_and_add (cell into o) (count src o) : int))
    all

let to_json ?breakers t =
  Json.Obj
    ([
       ("timeouts", Json.Int (count t Timeout));
       ("retries", Json.Int (count t Retry));
       ("breaker_trips", Json.Int (count t Breaker_trip));
       ("resumed", Json.Int (count t Resumed));
       ("crashed", Json.Int (count t Crash));
       ("quarantined", Json.Int (count t Quarantine));
       ("failovers", Json.Int (count t Failover));
       ("respawns", Json.Int (count t Respawn));
     ]
    @ match breakers with None -> [] | Some b -> [ ("breakers", b) ])

let pp ppf t =
  Format.fprintf ppf
    "timeouts=%d retries=%d breaker_trips=%d resumed=%d crashed=%d \
     quarantined=%d failovers=%d respawns=%d"
    (count t Timeout) (count t Retry) (count t Breaker_trip) (count t Resumed)
    (count t Crash) (count t Quarantine) (count t Failover) (count t Respawn)
