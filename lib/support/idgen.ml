(** Monotonic fresh-id generators.

    Every namespace in the compiler (tags, call sites, heap sites, ...) draws
    its identifiers from an independent generator so that ids are dense,
    deterministic, and usable as array indices. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

(** [fresh g] returns the next unused id. *)
let fresh g =
  let id = g.next in
  g.next <- id + 1;
  id

(** [peek g] returns the id that the next call to [fresh] will produce. *)
let peek g = g.next

(** [reset g n] rewinds the generator so the next [fresh] returns [n].
    Only for restoring a previously [peek]ed state (pass rollback); never
    rewind past ids that are still live elsewhere. *)
let reset g n = g.next <- n

(** [count g] is the number of ids handed out so far (assuming [start=0]). *)
let count g = g.next
