(** Monotonic wall-clock time: [Unix.gettimeofday] clamped process-wide so
    readings never decrease (system clock steps cannot fire budgets early
    or make timers negative).  Values stay on the Unix epoch, so deadlines
    built as [now () +. budget] compare correctly against any later
    reading. *)

val now : unit -> float
(** Current time in seconds since the Unix epoch, never decreasing. *)

val elapsed : float -> float
(** [elapsed t0] is seconds since the {!now} reading [t0]; >= 0. *)
