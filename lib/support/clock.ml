(** Monotonic wall-clock time for budgets and pass timings.

    [Unix.gettimeofday] follows the system clock, which can step backwards
    (NTP corrections, manual resets); a deadline or a pass timer built
    directly on it can misfire or report negative durations.  The proper
    fix is [clock_gettime(CLOCK_MONOTONIC)], but neither the OCaml stdlib
    nor this repo's vendored dependency set exposes it ([mtime] is not
    available in the build image), so this module {e monotonizes} the wall
    clock instead: every reading is clamped to be >= the largest reading
    ever returned, process-wide, via an atomic max.

    Two properties callers rely on:
    - [now] never decreases, even across domains, so elapsed-time
      differences and deadline comparisons are always well-ordered;
    - the returned value stays on the [gettimeofday] epoch (seconds since
      1970-01-01), so deadlines computed as [Clock.now () +. budget] can
      be compared against readings taken anywhere else in the process. *)

(* A float payload in an [Atomic.t] is a boxed immutable value; the CAS
   loop below is the standard lock-free atomic-max. *)
let last = Atomic.make 0.

let rec clamp t =
  let cur = Atomic.get last in
  if t <= cur then cur
  else if Atomic.compare_and_set last cur t then t
  else clamp t

(** Current time in seconds, monotonic non-decreasing process-wide. *)
let now () = clamp (Unix.gettimeofday ())

(** Seconds elapsed since [t0] (a previous {!now} reading); never
    negative. *)
let elapsed t0 = now () -. t0
