(** Append-only fsync-on-record line-JSON journal.  See journal.mli. *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  lock : Mutex.t;
  mutable closed : bool;
}

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; lock = Mutex.create (); closed = false }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let record w j =
  let line = Json.to_string ~indent:false j ^ "\n" in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if w.closed then invalid_arg "Journal.record: writer is closed";
      write_all w.fd line;
      Unix.fsync w.fd)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        Unix.close w.fd
      end)

let path w = w.path

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
    in
    let n = List.length lines in
    List.mapi (fun i l -> (i, l)) lines
    |> List.filter_map (fun (i, l) ->
           match Json.parse l with
           | j -> Some j
           | exception Json.Parse_error _ ->
             if i = n - 1 then None  (* truncated by a crash mid-write *)
             else
               failwith
                 (Printf.sprintf "Journal.load: %s: corrupt record on line %d"
                    path (i + 1)))
  end
