(** Append-only fsync-on-record line-JSON journal with per-record CRC.
    See journal.mli. *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  lock : Mutex.t;
  mutable closed : bool;
}

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; lock = Mutex.create (); closed = false }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* A v2 record line wraps the payload in {"crc32": "...", "r": payload},
   with the CRC computed over the payload's own compact serialization —
   exactly the bytes between the wrapper's ["r":] and the closing brace,
   so the loader can re-derive them from the parse. *)
let wrap j =
  let payload = Json.to_string ~indent:false j in
  Printf.sprintf "{\"crc32\":\"%s\",\"r\":%s}\n"
    (Crc32.to_hex (Crc32.string payload))
    payload

let record w j =
  let line = wrap j in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if w.closed then invalid_arg "Journal.record: writer is closed";
      write_all w.fd line;
      Unix.fsync w.fd)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        Unix.close w.fd
      end)

let path w = w.path

(* Classify one parsed line: a v2 wrapper is unwrapped after its CRC
   checks out; anything else is a CRC-less v1 record, taken as-is. *)
let unwrap = function
  | Json.Obj [ ("crc32", Json.Str h); ("r", payload) ] -> (
    let bytes = Json.to_string ~indent:false payload in
    match Crc32.of_hex h with
    | Some c when c = Crc32.string bytes -> Ok payload
    | _ -> Error "crc32 mismatch")
  | j -> Ok j

let load ?(on_skip = fun ~line:_ _ -> ()) path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
    in
    let n = List.length lines in
    List.mapi (fun i l -> (i, l)) lines
    |> List.filter_map (fun (i, l) ->
           match Json.parse l with
           | exception Json.Parse_error _ ->
             (* a torn final line is the normal crash signature and is
                dropped silently; an unparseable interior line is
                corruption and is counted *)
             if i < n - 1 then on_skip ~line:(i + 1) "unparseable record";
             None
           | j -> (
             match unwrap j with
             | Ok payload -> Some payload
             | Error reason ->
               on_skip ~line:(i + 1) reason;
               None))
  end
