(** Generic retry with exponential backoff and a per-key circuit breaker.
    See retry.mli for the contract. *)

type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
}

let default_policy =
  { max_attempts = 3; base_delay = 0.05; max_delay = 2.0; jitter = 0.25 }

(* splitmix64 finalizer: a well-mixed hash of (seed, attempt) whose low
   bits drive the jitter draw.  Deterministic across runs and platforms. *)
let mix seed attempt =
  let z = ref (Int64.of_int ((seed * 0x9e3779b9) lxor (attempt * 0x85ebca6b))) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xbf58476d1ce4e5b9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94d049bb133111ebL;
  Int64.logxor !z (Int64.shift_right_logical !z 31)

(** Uniform draw in [0, 1) from the hash of (seed, attempt). *)
let unit_draw seed attempt =
  let bits = Int64.to_int (Int64.shift_right_logical (mix seed attempt) 11) in
  float_of_int bits /. float_of_int (1 lsl 53)

let delay_for p ~seed ~attempt =
  let exp = Float.of_int (max 0 (attempt - 1)) in
  let raw = Float.min p.max_delay (p.base_delay *. Float.pow 2. exp) in
  raw *. (1. +. (p.jitter *. unit_draw seed attempt))

let with_backoff ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception e ->
      if attempt >= policy.max_attempts then Error e
      else begin
        let delay = delay_for policy ~seed ~attempt in
        on_retry ~attempt:(attempt + 1) ~delay e;
        if delay > 0. then sleep delay;
        go (attempt + 1)
      end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state = Closed | Open | Half_open

  type event = {
    key : string;
    at : float;
    transition : [ `Trip | `Probe | `Reset ];
  }

  type circuit = {
    mutable st : state;
    mutable consecutive : int;  (** consecutive failures while closed *)
    mutable opened_at : float;
    mutable probing : bool;  (** a half-open probe is in flight *)
    mutable last : ([ `Trip | `Probe | `Reset ] * float) option;
        (** most recent transition and when it happened *)
  }

  type t = {
    threshold : int;
    cooldown : float;
    now : unit -> float;
    lock : Mutex.t;
    circuits : (string, circuit) Hashtbl.t;
    mutable evs : event list;  (** newest first *)
    mutable trip_count : int;
  }

  exception Open_circuit of string

  let create ?(threshold = 2) ?(cooldown = 30.) ?(now = Clock.now) () =
    {
      threshold = max 1 threshold;
      cooldown;
      now;
      lock = Mutex.create ();
      circuits = Hashtbl.create 8;
      evs = [];
      trip_count = 0;
    }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let circuit t key =
    match Hashtbl.find_opt t.circuits key with
    | Some c -> c
    | None ->
      let c =
        { st = Closed; consecutive = 0; opened_at = 0.; probing = false;
          last = None }
      in
      Hashtbl.add t.circuits key c;
      c

  let emit t key transition =
    let at = t.now () in
    t.evs <- { key; at; transition } :: t.evs;
    (circuit t key).last <- Some (transition, at);
    if transition = `Trip then t.trip_count <- t.trip_count + 1

  let state t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.circuits key with
        | None -> Closed
        | Some c -> c.st)

  (* Decide under the lock whether this call may run (and whether it is
     the half-open probe); fold the outcome back under the lock. *)
  let call t ~key f =
    let admitted =
      locked t (fun () ->
          let c = circuit t key in
          match c.st with
          | Closed -> `Run
          | Half_open -> `Reject  (* one probe at a time *)
          | Open ->
            if t.now () -. c.opened_at >= t.cooldown && not c.probing then begin
              c.st <- Half_open;
              c.probing <- true;
              emit t key `Probe;
              `Run
            end
            else `Reject)
    in
    match admitted with
    | `Reject -> Error (Open_circuit key)
    | `Run -> (
      let outcome = try Ok (f ()) with e -> Error e in
      locked t (fun () ->
          let c = circuit t key in
          let was_probe = c.probing in
          c.probing <- false;
          (match outcome with
          | Ok _ ->
            if c.st <> Closed then emit t key `Reset;
            c.st <- Closed;
            c.consecutive <- 0
          | Error _ ->
            c.consecutive <- c.consecutive + 1;
            if was_probe || c.consecutive >= t.threshold then begin
              if c.st <> Open then emit t key `Trip;
              c.st <- Open;
              c.opened_at <- t.now ();
              c.consecutive <- 0
            end));
      outcome)

  let trips t = locked t (fun () -> t.trip_count)
  let events t = locked t (fun () -> List.rev t.evs)

  (* -------------------------------------------------------------- *)
  (* Observability: per-key snapshots for health/stats surfaces       *)
  (* -------------------------------------------------------------- *)

  type snapshot = {
    skey : string;
    sstate : state;
    sconsecutive : int;
    slast : ([ `Trip | `Probe | `Reset ] * float) option;
  }

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  let transition_name = function
    | `Trip -> "trip"
    | `Probe -> "probe"
    | `Reset -> "reset"

  let snapshots t =
    locked t (fun () ->
        Hashtbl.fold
          (fun key c acc ->
            { skey = key; sstate = c.st; sconsecutive = c.consecutive;
              slast = c.last }
            :: acc)
          t.circuits []
        |> List.sort (fun a b -> compare a.skey b.skey))

  let snapshots_json t =
    Json.Obj
      (List.map
         (fun s ->
           ( s.skey,
             Json.Obj
               [
                 ("state", Json.Str (state_name s.sstate));
                 ("consecutive_failures", Json.Int s.sconsecutive);
                 ( "last_transition",
                   match s.slast with
                   | None -> Json.Null
                   | Some (tr, _) -> Json.Str (transition_name tr) );
                 ( "last_transition_at",
                   match s.slast with
                   | None -> Json.Null
                   | Some (_, at) -> Json.Float at );
               ] ))
         (snapshots t))
end
