(** A fixed-size Domain worker pool for embarrassingly parallel jobs.

    [run ~jobs f inputs] applies [f] to every element of [inputs] on up to
    [jobs] domains (the calling domain always participates, so [jobs = 4]
    spawns three) and returns one outcome per input, {e in input order}.
    Work is handed out through a single atomic counter, so scheduling is
    dynamic, but collection is by index: the result array — including the
    order of captured exceptions — is bit-identical for every [jobs] value.
    That property is what lets the bench grid, the fuzz campaigns, and the
    determinism tests assert byte-identical reports at [-j1] and [-j4].

    Per-job failures are {e captured}, not propagated: a job that raises
    yields [Error exn] in its slot and the remaining jobs still run.
    Callers that want fail-fast semantics re-raise the first [Error] in
    index order, which reproduces exactly what a sequential loop would
    have reported first.

    Jobs must not print (interleaved output would break the determinism
    guarantee) and must not share mutable state; domain-local state
    ([Domain.DLS], as used by the pipeline's fault hook and the
    interpreter's precompile cache) is safe because one domain runs one
    job at a time.

    {!run_supervised} adds the supervision layer: per-job wall-clock
    deadlines delivered cooperatively through a [should_stop] closure,
    detection and replacement of wedged worker domains, bounded retries,
    and quarantine — see pool.mli for the full contract. *)

type 'a outcome = ('a, exn) result

(** The number of domains the runtime considers profitable on this host;
    the natural default for a [--jobs] flag. *)
let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ?(on_result = fun _ _ -> ()) (f : 'a -> 'b) (inputs : 'a array) :
    'b outcome array =
  let n = Array.length inputs in
  let results : 'b outcome array = Array.make n (Error Exit) in
  let work i =
    let o = try Ok (f inputs.(i)) with e -> Error e in
    results.(i) <- o;
    on_result i o
  in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          work i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* join even if the calling domain's share of the work (or the
       caller's [on_result]) raises: no worker domain may leak on an
       exception path *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join spawned) worker
  end;
  results

(** [run_exn] is [run] with fail-fast collection: the first failed job in
    {e index} order is re-raised (matching what a sequential loop over
    [inputs] would have reported first); otherwise the plain result array
    is returned. *)
let run_exn ~jobs f inputs =
  let outcomes = run ~jobs f inputs in
  Array.map (function Ok v -> v | Error e -> raise e) outcomes

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)
(* ------------------------------------------------------------------ *)

type job_failure =
  | Timed_out of { elapsed : float; attempts : int }
  | Crashed of { reason : string; attempts : int }

type 'a supervised = ('a, job_failure) result

let pp_job_failure ppf = function
  | Timed_out { elapsed; attempts } ->
    Format.fprintf ppf "timed out after %.1fs (%d attempt%s)" elapsed attempts
      (if attempts = 1 then "" else "s")
  | Crashed { reason; attempts } ->
    Format.fprintf ppf "crashed: %s (%d attempt%s)" reason attempts
      (if attempts = 1 then "" else "s")

(** Per-worker heartbeat slot, written by the owning worker and read by
    the supervisor.  [job = -1] means idle; [started_us] is the attempt's
    start in integer microseconds on the {!Clock} epoch. *)
type slot = {
  job : int Atomic.t;
  ticket : int Atomic.t;
  started_us : int Atomic.t;
}

let fresh_slot () =
  { job = Atomic.make (-1); ticket = Atomic.make 0; started_us = Atomic.make 0 }

let now_us () = int_of_float (Clock.now () *. 1e6)

let run_supervised ~jobs ?timeout ?(retries = 1) ?(grace = 1.0) ?(poll = 0.002)
    ?(cancel = fun () -> false) ?resilience ?(on_result = fun _ _ -> ())
    (f : should_stop:(unit -> bool) -> 'a -> 'b) (inputs : 'a array) :
    'b supervised array =
  let n = Array.length inputs in
  let results : 'b supervised array =
    Array.make n (Error (Crashed { reason = "cancelled"; attempts = 0 }))
  in
  if n = 0 then results
  else begin
    let jobs = max 1 (min jobs n) in
    let tick o =
      match resilience with Some r -> Resilience.tick r o | None -> ()
    in
    (* Job claim protocol: 0 = queued (claimable), t > 0 = attempt with
       ticket t in flight, -1 = resolved.  Whoever CASes a state to -1
       owns the final outcome; a late write from an abandoned attempt
       fails its CAS and is discarded. *)
    let jstate = Array.init n (fun _ -> Atomic.make 0) in
    let attempts = Array.make n 0 in (* failed attempts so far; under qlock *)
    let completed = Atomic.make 0 in
    let stop = Atomic.make false in
    let qlock = Mutex.create () in
    let retryq : int Queue.t = Queue.create () in
    let next = Atomic.make 0 in
    let tickets = Atomic.make 1 in
    let locked g =
      Mutex.lock qlock;
      Fun.protect ~finally:(fun () -> Mutex.unlock qlock) g
    in
    let resolve i (o : 'b supervised) =
      results.(i) <- o;
      on_result i o;
      Atomic.incr completed
    in
    (* Count this failed attempt; [Some ()] when the job earned a retry
       (and was re-queued), [None] when its budget is spent. *)
    let retry_or_give_up i t =
      let budget_left =
        locked (fun () ->
            attempts.(i) <- attempts.(i) + 1;
            attempts.(i) <= retries)
      in
      if budget_left && not (Atomic.get stop || cancel ()) then begin
        if Atomic.compare_and_set jstate.(i) t 0 then begin
          tick Resilience.Retry;
          locked (fun () -> Queue.push i retryq);
          true
        end
        else true (* someone else already re-dispatched or resolved it *)
      end
      else false
    in
    let total_attempts i = locked (fun () -> attempts.(i)) in
    let take () =
      match locked (fun () -> Queue.take_opt retryq) with
      | Some i -> Some i
      | None ->
        let i = Atomic.fetch_and_add next 1 in
        if i < n then Some i else None
    in
    let worker (slot : slot) () =
      let rec loop () =
        if Atomic.get stop || Atomic.get completed >= n then ()
        else
          match take () with
          | None ->
            (* drained the fresh queue, but failures may still be
               re-queued: idle until everything resolves *)
            Unix.sleepf poll;
            loop ()
          | Some i ->
            let t = Atomic.fetch_and_add tickets 1 in
            if Atomic.compare_and_set jstate.(i) 0 t then begin
              Atomic.set slot.ticket t;
              Atomic.set slot.started_us (now_us ());
              Atomic.set slot.job i;
              let t0 = Clock.now () in
              let timed_out = ref false in
              let should_stop () =
                Atomic.get stop || cancel ()
                || Atomic.get jstate.(i) <> t (* supervisor took the job *)
                ||
                match timeout with
                | Some tmo when Clock.elapsed t0 > tmo ->
                  timed_out := true;
                  true
                | _ -> false
              in
              let o = try Ok (f ~should_stop inputs.(i)) with e -> Error e in
              Atomic.set slot.job (-1);
              (match o with
              | Ok v ->
                if Atomic.compare_and_set jstate.(i) t (-1) then
                  resolve i (Ok v)
              | Error e ->
                let elapsed = Clock.elapsed t0 in
                let timed_out =
                  !timed_out
                  ||
                  match timeout with
                  | Some tmo -> elapsed > tmo
                  | None -> false
                in
                if Atomic.get stop || cancel () then
                  (* aborted by cancellation, not by its own deadline:
                     release the claim; the epilogue marks it cancelled *)
                  ignore (Atomic.compare_and_set jstate.(i) t 0 : bool)
                else begin
                  tick (if timed_out then Resilience.Timeout else Resilience.Crash);
                  if not (retry_or_give_up i t) then
                    if Atomic.compare_and_set jstate.(i) t (-1) then begin
                      tick Resilience.Quarantine;
                      let attempts = total_attempts i in
                      resolve i
                        (Error
                           (if timed_out then Timed_out { elapsed; attempts }
                            else
                              Crashed
                                { reason = Printexc.to_string e; attempts }))
                    end
                end);
              loop ()
            end
            else loop ()
      in
      loop ()
    in
    (* worker registry: (domain, heartbeat slot, abandoned) *)
    let workers = ref [] in
    let spawn_worker () =
      let slot = fresh_slot () in
      let d = Domain.spawn (worker slot) in
      workers := (d, slot, ref false) :: !workers
    in
    for _ = 1 to jobs do
      spawn_worker ()
    done;
    let wedge_limit = Option.map (fun tmo -> tmo +. grace) timeout in
    (* One supervision sweep: declare dead any worker whose current
       attempt has overrun deadline+grace without stopping, take its job
       away (retry or quarantine), and spawn a replacement. *)
    let sweep lim =
      List.iter
        (fun (_, (slot : slot), abandoned) ->
          if not !abandoned then begin
            let i = Atomic.get slot.job in
            if i >= 0 then begin
              let t = Atomic.get slot.ticket in
              let started = float_of_int (Atomic.get slot.started_us) /. 1e6 in
              if
                Clock.now () -. started > lim
                && Atomic.get slot.job = i
                && Atomic.get slot.ticket = t
              then begin
                abandoned := true;
                tick Resilience.Timeout;
                if not (retry_or_give_up i t) then begin
                  if Atomic.compare_and_set jstate.(i) t (-1) then begin
                    tick Resilience.Quarantine;
                    resolve i
                      (Error
                         (Timed_out
                            {
                              elapsed = Clock.now () -. started;
                              attempts = total_attempts i;
                            }))
                  end
                end;
                spawn_worker ()
              end
            end
          end)
        !workers
    in
    let rec supervise () =
      if Atomic.get completed >= n || cancel () then ()
      else begin
        Option.iter sweep wedge_limit;
        Unix.sleepf poll;
        supervise ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        (* join every live worker; an abandoned (wedged) domain cannot be
           joined without hanging — it is left to finish into the void,
           its claim-check already guarantees its result is discarded *)
        List.iter
          (fun (d, _, abandoned) -> if not !abandoned then Domain.join d)
          !workers)
      supervise;
    (* cancellation epilogue: everything unresolved is marked cancelled,
       without firing [on_result] — the work did not finish *)
    if Atomic.get completed < n then
      Array.iteri
        (fun i st ->
          let s = Atomic.get st in
          if s <> -1 && Atomic.compare_and_set st s (-1) then begin
            results.(i) <-
              Error (Crashed { reason = "cancelled"; attempts = total_attempts i });
            Atomic.incr completed
          end)
        jstate;
    results
  end
