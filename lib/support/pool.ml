(** A fixed-size Domain worker pool for embarrassingly parallel jobs.

    [run ~jobs f inputs] applies [f] to every element of [inputs] on up to
    [jobs] domains (the calling domain always participates, so [jobs = 4]
    spawns three) and returns one outcome per input, {e in input order}.
    Work is handed out through a single atomic counter, so scheduling is
    dynamic, but collection is by index: the result array — including the
    order of captured exceptions — is bit-identical for every [jobs] value.
    That property is what lets the bench grid, the fuzz campaigns, and the
    determinism tests assert byte-identical reports at [-j1] and [-j4].

    Per-job failures are {e captured}, not propagated: a job that raises
    yields [Error exn] in its slot and the remaining jobs still run.
    Callers that want fail-fast semantics re-raise the first [Error] in
    index order, which reproduces exactly what a sequential loop would
    have reported first.

    Jobs must not print (interleaved output would break the determinism
    guarantee) and must not share mutable state; domain-local state
    ([Domain.DLS], as used by the pipeline's fault hook and the
    interpreter's precompile cache) is safe because one domain runs one
    job at a time. *)

type 'a outcome = ('a, exn) result

(** The number of domains the runtime considers profitable on this host;
    the natural default for a [--jobs] flag. *)
let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs (f : 'a -> 'b) (inputs : 'a array) : 'b outcome array =
  let n = Array.length inputs in
  let results : 'b outcome array = Array.make n (Error Exit) in
  let work i =
    results.(i) <- (try Ok (f inputs.(i)) with e -> Error e)
  in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          work i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end;
  results

(** [run_exn] is [run] with fail-fast collection: the first failed job in
    {e index} order is re-raised (matching what a sequential loop over
    [inputs] would have raised first); otherwise the plain result array is
    returned. *)
let run_exn ~jobs f inputs =
  let outcomes = run ~jobs f inputs in
  Array.map (function Ok v -> v | Error e -> raise e) outcomes
