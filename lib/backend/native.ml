(** The native runner: cc invocation, binary cache, trailer decoding.

    Failure discipline: everything that is not a faithful program outcome
    raises {!Error}.  In particular the runner re-verifies what it can —
    the captured stdout length against the trailer's [outlen], and the
    FNV-1a checksum recomputed over the captured bytes against the
    trailer's compiled-in checksum — so a binary that died mid-write, a
    truncated trailer, or a corrupted cache entry quarantines instead of
    producing a subtly wrong result. *)

open Rp_exec

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type cc = { path : string; flags : string list; identity : string }

let read_first_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (input_line ic) with End_of_file -> None in
    let status = Unix.close_process_in ic in
    match (status, line) with
    | Unix.WEXITED 0, Some l when String.trim l <> "" -> Some (String.trim l)
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let find_cc ?(path = "cc") ?(flags = [ "-O1" ]) () =
  match
    read_first_line (Filename.quote path ^ " --version 2>/dev/null")
  with
  | Some identity -> Some { path; flags; identity }
  | None -> None

let default_cache_dir () =
  Filename.concat (Filename.get_temp_dir_name ()) "rpcc-native-cas"

(* ------------------------------------------------------------------ *)
(* Trailer                                                             *)
(* ------------------------------------------------------------------ *)

type trailer = {
  status : [ `Ok | `Trap | `Limit | `Invalid ];
  msg : string;
  ret : Value.t;
  checksum : int;
  ops : int;
  loads : int;
  stores : int;
  outlen : int;
  elapsed_ns : int;
  funcs : (string * Interp.counts) list;
}

let magic = "rpcc-native/1"

let parse_trailer (s : string) : trailer =
  let fail fmt = Printf.ksprintf (fun m -> error "native trailer: %s" m) fmt in
  let int_of x =
    match int_of_string_opt x with
    | Some n -> n
    | None -> fail "bad integer %S" x
  in
  let lines = String.split_on_char '\n' s in
  let status = ref None
  and msg = ref ""
  and ret = ref None
  and checksum = ref None
  and ops = ref None
  and loads = ref None
  and stores = ref None
  and outlen = ref None
  and elapsed = ref 0
  and funcs = ref []
  and ended = ref false in
  let rest_after line prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ "status"; ("ok" | "trap" | "limit" | "invalid") as st ] ->
      status :=
        Some
          (match st with
          | "ok" -> `Ok
          | "trap" -> `Trap
          | "limit" -> `Limit
          | _ -> `Invalid)
    | "msg" :: _ -> msg := rest_after line "msg "
    | [ "ret"; "undef" ] -> ret := Some Value.Vundef
    | [ "ret"; "int"; n ] -> ret := Some (Value.Vint (int_of n))
    | [ "ret"; "flt"; h ] ->
      let bits =
        try Int64.of_string ("0x" ^ h)
        with Failure _ -> fail "bad float bits %S" h
      in
      ret := Some (Value.Vflt (Int64.float_of_bits bits))
    | [ "ret"; "ptr"; b; o ] ->
      ret := Some (Value.Vptr (int_of b, int_of o))
    | "ret" :: "fun" :: _ -> ret := Some (Value.Vfun (rest_after line "ret fun "))
    | [ "checksum"; n ] -> checksum := Some (int_of n)
    | [ "ops"; n ] -> ops := Some (int_of n)
    | [ "loads"; n ] -> loads := Some (int_of n)
    | [ "stores"; n ] -> stores := Some (int_of n)
    | [ "outlen"; n ] -> outlen := Some (int_of n)
    | [ "elapsed_ns"; n ] -> elapsed := int_of n
    | "func" :: o :: l :: st :: name_words ->
      let name = String.concat " " name_words in
      funcs :=
        ( name,
          { Interp.ops = int_of o; loads = int_of l; stores = int_of st } )
        :: !funcs
    | _ -> fail "unrecognized line %S" line
  in
  (match lines with
  | m :: rest when m = magic ->
    let rec go = function
      | [] -> ()
      | "end" :: _ -> ended := true
      | line :: tl ->
        parse_line line;
        go tl
    in
    go rest
  | m :: _ -> fail "bad magic %S" m
  | [] -> fail "empty");
  if not !ended then fail "missing end marker (truncated)";
  let req name = function Some v -> v | None -> fail "missing %s" name in
  let status = req "status" !status in
  let ret =
    match (status, !ret) with
    | `Ok, Some r -> r
    | `Ok, None -> fail "missing ret"
    | _, _ -> Value.Vundef
  in
  {
    status;
    msg = !msg;
    ret;
    checksum = req "checksum" !checksum;
    ops = req "ops" !ops;
    loads = req "loads" !loads;
    stores = req "stores" !stores;
    outlen = req "outlen" !outlen;
    elapsed_ns = !elapsed;
    funcs = List.rev !funcs;
  }

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* O_CLOEXEC matters: another domain's concurrent fork (a cc invocation,
   a sibling binary) must not inherit a write fd to a file this domain is
   about to exec, or the exec fails with ETXTBSY. *)
let write_file path s =
  let fd =
    Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o600
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.unsafe_of_string s in
      let n = Bytes.length b in
      let rec go off =
        if off < n then go (off + Unix.write fd b off (n - off))
      in
      go 0)

let cc_compile ~cc csrc =
  let cfile = Filename.temp_file "rpcc_native" ".c" in
  let bin = Filename.temp_file "rpcc_native" ".bin" in
  let errf = Filename.temp_file "rpcc_cc" ".err" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove cfile with Sys_error _ -> ());
      try Sys.remove errf with Sys_error _ -> ())
    (fun () ->
      write_file cfile csrc;
      let cmd =
        Printf.sprintf "%s %s -o %s %s -lm 2>%s" (Filename.quote cc.path)
          (String.concat " " (List.map Filename.quote cc.flags))
          (Filename.quote bin) (Filename.quote cfile) (Filename.quote errf)
      in
      let rc = Sys.command cmd in
      if rc <> 0 then begin
        let err = try read_file errf with Sys_error _ -> "" in
        let err =
          if String.length err > 800 then String.sub err 0 800 ^ "..."
          else err
        in
        (try Sys.remove bin with Sys_error _ -> ());
        error "cc failed (exit %d): %s" rc (String.trim err)
      end;
      Unix.chmod bin 0o700;
      bin)

let bin_key ?key ~cc csrc =
  Rp_support.Cas.key
    [
      Cgen.version;
      (match key with Some k -> k | None -> csrc);
      cc.identity;
      String.concat " " cc.flags;
    ]

let compile ?cache ?key ~cc prog =
  let csrc = Cgen.emit prog in
  match cache with
  | None -> (cc_compile ~cc csrc, false)
  | Some cas -> (
    let k = bin_key ?key ~cc csrc in
    match Rp_support.Cas.get cas ~key:k ~kind:"native-bin" with
    | Some bytes ->
      let bin = Filename.temp_file "rpcc_native" ".bin" in
      write_file bin bytes;
      Unix.chmod bin 0o700;
      (bin, true)
    | None ->
      let bin = cc_compile ~cc csrc in
      Rp_support.Cas.put cas ~key:k ~kind:"native-bin" (read_file bin);
      (bin, false))

(* ------------------------------------------------------------------ *)
(* Execute                                                             *)
(* ------------------------------------------------------------------ *)

let fnv_byte cs b = (cs lxor b) * 16777619 land 0x3FFFFFFFFFFFFFF

let checksum_of_string s =
  String.fold_left (fun cs c -> fnv_byte cs (Char.code c)) 0x1505 s

(* Returns the result plus the binary's self-timed [main] duration in ms
   (from the trailer's [elapsed_ns]) — the native analogue of interpreter
   run time, excluding fork/exec/loader overhead the harness pays. *)
let exec_bin_elapsed ?(fuel = 400_000_000) ?(check_tags = true)
    ?(max_depth = 100_000) ?(seed = 12345) ?deadline bin :
    Interp.result * float =
  let trailer_path = Filename.temp_file "rpcc_trailer" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      try Sys.remove trailer_path with Sys_error _ -> ())
    (fun () ->
      let budget = match deadline with Some d -> d | None -> 0.0 in
      (* the binary raises its own stack limit (deep recursion runs on
         the C stack), so no shell wrapper: exec it directly *)
      let argv =
        [|
          bin;
          trailer_path;
          string_of_int fuel;
          string_of_int max_depth;
          string_of_int seed;
          (if check_tags then "1" else "0");
          Printf.sprintf "%.6f" budget;
        |]
      in
      (* cloexec on both ends: a concurrent fork in another domain must
         not inherit [w_out], or this pipe never sees EOF until that
         unrelated child exits ([create_process] dup2s [w_out] to the
         child's stdout, which clears the flag there) *)
      let r_out, w_out = Unix.pipe ~cloexec:true () in
      let pid =
        (* ETXTBSY (EUNKNOWNERR 26 — OCaml's Unix.error has no
           constructor for it) is the one transient worth absorbing
           here: a fork racing this exec (another domain spawning cc)
           can briefly hold an inherited write fd to [bin]; retry
           briefly rather than quarantine *)
        let rec spawn attempts =
          try Unix.create_process bin argv Unix.stdin w_out Unix.stderr
          with
          | Unix.Unix_error (Unix.EUNKNOWNERR 26, _, _) when attempts > 0 ->
            Unix.sleepf 0.01;
            spawn (attempts - 1)
        in
        spawn 100
      in
      Unix.close w_out;
      let out = Buffer.create 4096 in
      let ic = Unix.in_channel_of_descr r_out in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes out chunk 0 n;
          drain ()
        end
      in
      (try drain () with End_of_file -> ());
      close_in_noerr ic;
      let _, st = Unix.waitpid [] pid in
      (match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> error "native binary exited with status %d" n
      | Unix.WSIGNALED n -> error "native binary killed by signal %d" n
      | Unix.WSTOPPED n -> error "native binary stopped by signal %d" n);
      let output = Buffer.contents out in
      let t =
        parse_trailer
          (try read_file trailer_path
           with Sys_error e -> error "native trailer unreadable: %s" e)
      in
      if t.outlen <> String.length output then
        error "native output truncated: trailer says %d bytes, captured %d"
          t.outlen (String.length output);
      match t.status with
      | `Trap -> raise (Interp.Error t.msg)
      | `Limit -> raise (Interp.Resource_limit t.msg)
      | `Invalid -> raise (Invalid_argument t.msg)
      | `Ok ->
        if checksum_of_string output <> t.checksum then
          error
            "native checksum mismatch: trailer %d vs %d recomputed over \
             captured output"
            t.checksum
            (checksum_of_string output);
        let total =
          { Interp.ops = t.ops; loads = t.loads; stores = t.stores }
        in
        let per_func =
          t.funcs
          |> List.filter (fun (_, (c : Interp.counts)) -> c.Interp.ops <> 0)
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        ( { Interp.ret = t.ret; output; checksum = t.checksum; total; per_func },
          float_of_int t.elapsed_ns /. 1e6 ))

let exec_bin ?fuel ?check_tags ?max_depth ?seed ?deadline bin =
  fst (exec_bin_elapsed ?fuel ?check_tags ?max_depth ?seed ?deadline bin)

type timed = {
  result : Interp.result;
  cc_ms : float;
  exec_ms : float;
  cache_hit : bool;
}

let run_timed ?fuel ?check_tags ?max_depth ?seed ?deadline ?cache ?key ~cc
    prog =
  let t0 = Rp_support.Clock.now () in
  let bin, cache_hit = compile ?cache ?key ~cc prog in
  let t1 = Rp_support.Clock.now () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bin with Sys_error _ -> ())
    (fun () ->
      let result, elapsed_ms =
        exec_bin_elapsed ?fuel ?check_tags ?max_depth ?seed ?deadline bin
      in
      let t2 = Rp_support.Clock.now () in
      {
        result;
        cc_ms = (t1 -. t0) *. 1000.;
        (* prefer the binary's own clock; a pre-elapsed_ns binary from an
           older cache entry reports 0, fall back to harness wall time *)
        exec_ms =
          (if elapsed_ms > 0. then elapsed_ms else (t2 -. t1) *. 1000.);
        cache_hit;
      })

let run ?fuel ?check_tags ?max_depth ?seed ?deadline ?cache ?key ~cc prog =
  (run_timed ?fuel ?check_tags ?max_depth ?seed ?deadline ?cache ?key ~cc
     prog)
    .result
