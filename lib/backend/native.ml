(** The native runner: cc invocation, binary cache, trailer decoding.

    Failure discipline: everything that is not a faithful program outcome
    raises {!Error}.  In particular the runner re-verifies what it can —
    the captured stdout length against the trailer's [outlen], and the
    FNV-1a checksum recomputed over the captured bytes against the
    trailer's compiled-in checksum — so a binary that died mid-write, a
    truncated trailer, or a corrupted cache entry quarantines instead of
    producing a subtly wrong result. *)

open Rp_exec

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type cc = { path : string; flags : string list; identity : string }

let read_first_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (input_line ic) with End_of_file -> None in
    let status = Unix.close_process_in ic in
    match (status, line) with
    | Unix.WEXITED 0, Some l when String.trim l <> "" -> Some (String.trim l)
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

(* One probe per compiler path per process: the identity line cannot
   change under us without the executable changing, and the probe is a
   fork+exec a warm bench campaign would otherwise pay on every
   invocation.  Negative results memoize too — a missing cc stays
   missing for the life of the process. *)
let cc_memo : (string, string option) Hashtbl.t = Hashtbl.create 4
let cc_memo_lock = Mutex.create ()

let resolve_in_path p =
  if String.contains p '/' then if Sys.file_exists p then Some p else None
  else
    match Sys.getenv_opt "PATH" with
    | None -> None
    | Some path ->
      List.find_map
        (fun dir ->
          if dir = "" then None
          else
            let cand = Filename.concat dir p in
            if Sys.file_exists cand then Some cand else None)
        (String.split_on_char ':' path)

let probe_identity path =
  read_first_line (Filename.quote path ^ " --version 2>/dev/null")

(* The CAS rung makes the probe survive the process: the identity is
   cached keyed on the resolved executable's (path, size, mtime), so an
   all-warm-cache campaign in a fresh process spawns no compiler at all
   — the identity is needed to form binary cache keys {e before} any
   binary lookup can hit. *)
let identity_of ?cache path =
  Mutex.lock cc_memo_lock;
  let memo = Hashtbl.find_opt cc_memo path in
  Mutex.unlock cc_memo_lock;
  match memo with
  | Some id -> id
  | None ->
    let id =
      match (cache, resolve_in_path path) with
      | Some cas, Some resolved -> (
        match Unix.stat resolved with
        | exception Unix.Unix_error _ -> probe_identity path
        | st -> (
          let k =
            Rp_support.Cas.key
              [
                "cc-identity";
                resolved;
                string_of_int st.Unix.st_size;
                Printf.sprintf "%.6f" st.Unix.st_mtime;
              ]
          in
          match Rp_support.Cas.get cas ~key:k ~kind:"cc-id" with
          | Some id -> Some id
          | None -> (
            match probe_identity path with
            | Some id ->
              Rp_support.Cas.put cas ~key:k ~kind:"cc-id" id;
              Some id
            | None -> None)))
      | _ -> probe_identity path
    in
    Mutex.lock cc_memo_lock;
    Hashtbl.replace cc_memo path id;
    Mutex.unlock cc_memo_lock;
    id

let find_cc ?cache ?(path = "cc") ?(flags = [ "-O1" ]) () =
  match identity_of ?cache path with
  | Some identity -> Some { path; flags; identity }
  | None -> None

let default_cache_dir () =
  Filename.concat (Filename.get_temp_dir_name ()) "rpcc-native-cas"

(* ------------------------------------------------------------------ *)
(* Trailer                                                             *)
(* ------------------------------------------------------------------ *)

type trailer = {
  status : [ `Ok | `Trap | `Limit | `Invalid ];
  msg : string;
  ret : Value.t;
  checksum : int;
  ops : int;
  loads : int;
  stores : int;
  outlen : int;
  elapsed_ns : int;
  funcs : (string * Interp.counts) list;
}

let magic = "rpcc-native/1"

let parse_trailer (s : string) : trailer =
  let fail fmt = Printf.ksprintf (fun m -> error "native trailer: %s" m) fmt in
  let int_of x =
    match int_of_string_opt x with
    | Some n -> n
    | None -> fail "bad integer %S" x
  in
  let lines = String.split_on_char '\n' s in
  let status = ref None
  and msg = ref ""
  and ret = ref None
  and checksum = ref None
  and ops = ref None
  and loads = ref None
  and stores = ref None
  and outlen = ref None
  and elapsed = ref 0
  and funcs = ref []
  and ended = ref false in
  let rest_after line prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ "status"; ("ok" | "trap" | "limit" | "invalid") as st ] ->
      status :=
        Some
          (match st with
          | "ok" -> `Ok
          | "trap" -> `Trap
          | "limit" -> `Limit
          | _ -> `Invalid)
    | "msg" :: _ -> msg := rest_after line "msg "
    | [ "ret"; "undef" ] -> ret := Some Value.Vundef
    | [ "ret"; "int"; n ] -> ret := Some (Value.Vint (int_of n))
    | [ "ret"; "flt"; h ] ->
      let bits =
        try Int64.of_string ("0x" ^ h)
        with Failure _ -> fail "bad float bits %S" h
      in
      ret := Some (Value.Vflt (Int64.float_of_bits bits))
    | [ "ret"; "ptr"; b; o ] ->
      ret := Some (Value.Vptr (int_of b, int_of o))
    | "ret" :: "fun" :: _ -> ret := Some (Value.Vfun (rest_after line "ret fun "))
    | [ "checksum"; n ] -> checksum := Some (int_of n)
    | [ "ops"; n ] -> ops := Some (int_of n)
    | [ "loads"; n ] -> loads := Some (int_of n)
    | [ "stores"; n ] -> stores := Some (int_of n)
    | [ "outlen"; n ] -> outlen := Some (int_of n)
    | [ "elapsed_ns"; n ] -> elapsed := int_of n
    | "func" :: o :: l :: st :: name_words ->
      let name = String.concat " " name_words in
      funcs :=
        ( name,
          { Interp.ops = int_of o; loads = int_of l; stores = int_of st } )
        :: !funcs
    | _ -> fail "unrecognized line %S" line
  in
  (match lines with
  | m :: rest when m = magic ->
    let rec go = function
      | [] -> ()
      | "end" :: _ -> ended := true
      | line :: tl ->
        parse_line line;
        go tl
    in
    go rest
  | m :: _ -> fail "bad magic %S" m
  | [] -> fail "empty");
  if not !ended then fail "missing end marker (truncated)";
  let req name = function Some v -> v | None -> fail "missing %s" name in
  let status = req "status" !status in
  let ret =
    match (status, !ret) with
    | `Ok, Some r -> r
    | `Ok, None -> fail "missing ret"
    | _, _ -> Value.Vundef
  in
  {
    status;
    msg = !msg;
    ret;
    checksum = req "checksum" !checksum;
    ops = req "ops" !ops;
    loads = req "loads" !loads;
    stores = req "stores" !stores;
    outlen = req "outlen" !outlen;
    elapsed_ns = !elapsed;
    funcs = List.rev !funcs;
  }

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* O_CLOEXEC matters: another domain's concurrent fork (a cc invocation,
   a sibling binary) must not inherit a write fd to a file this domain is
   about to exec, or the exec fails with ETXTBSY. *)
let write_file path s =
  let fd =
    Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o600
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.unsafe_of_string s in
      let n = Bytes.length b in
      let rec go off =
        if off < n then go (off + Unix.write fd b off (n - off))
      in
      go 0)

(* The compiler subprocess is sandboxed: a wedged or runaway cc must
   degrade this one cell, never take the harness down with it.  OCaml's
   Unix has no setrlimit, so the rlimits ride a [/bin/sh -c "ulimit ...;
   exec cc ..."] wrapper — [exec] keeps the limited pid the compiler
   itself — and the wall-clock deadline is enforced by the harness with
   a WNOHANG poll + SIGKILL. *)
type sandbox = {
  cpu_s : int;
  mem_mb : int;
  fsize_mb : int;
  wall_s : float;
  spawn_retry : Rp_support.Retry.policy;
}

let default_sandbox =
  {
    cpu_s = 60;
    mem_mb = 4096;
    fsize_mb = 512;
    wall_s = 120.;
    spawn_retry =
      {
        Rp_support.Retry.max_attempts = 5;
        base_delay = 0.01;
        max_delay = 0.2;
        jitter = 0.25;
      };
  }

let truncate_err err =
  let err = String.trim err in
  if String.length err > 800 then String.sub err 0 800 ^ "..." else err

let cc_compile ?(sandbox = default_sandbox) ~cc csrc =
  let cfile = Filename.temp_file "rpcc_native" ".c" in
  let bin = Filename.temp_file "rpcc_native" ".bin" in
  let errf = Filename.temp_file "rpcc_cc" ".err" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove cfile with Sys_error _ -> ());
      try Sys.remove errf with Sys_error _ -> ())
    (fun () ->
      write_file cfile csrc;
      let cmd =
        Printf.sprintf
          "ulimit -t %d 2>/dev/null; ulimit -v %d 2>/dev/null; ulimit -f %d \
           2>/dev/null; exec %s %s -o %s %s -lm 2>%s"
          sandbox.cpu_s (sandbox.mem_mb * 1024)
          (sandbox.fsize_mb * 2048)
          (Filename.quote cc.path)
          (String.concat " " (List.map Filename.quote cc.flags))
          (Filename.quote bin) (Filename.quote cfile) (Filename.quote errf)
      in
      (* fork can transiently fail under pressure (EAGAIN) or race a
         sibling's inherited fd (ETXTBSY on the shell, EUNKNOWNERR 26);
         absorb a bounded burst through the shared backoff machinery
         rather than quarantining the cell on the first hiccup *)
      let pid =
        match
          Rp_support.Retry.with_backoff ~policy:sandbox.spawn_retry
            (fun () ->
              Unix.create_process "/bin/sh"
                [| "/bin/sh"; "-c"; cmd |]
                Unix.stdin Unix.stdout Unix.stderr)
        with
        | Ok pid -> pid
        | Error (Unix.Unix_error (e, _, _)) ->
          error "cc spawn failed: %s" (Unix.error_message e)
        | Error e -> error "cc spawn failed: %s" (Printexc.to_string e)
      in
      let deadline = Rp_support.Clock.now () +. sandbox.wall_s in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Rp_support.Clock.now () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            (try Sys.remove bin with Sys_error _ -> ());
            error "cc sandbox: wall-clock deadline (%.0fs) exceeded"
              sandbox.wall_s
          end
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
        | _, st -> st
      in
      let st = try wait () with Unix.Unix_error (Unix.EINTR, _, _) -> wait () in
      (match st with
      | Unix.WEXITED 0 -> ()
      | st ->
        let err = truncate_err (try read_file errf with Sys_error _ -> "") in
        (try Sys.remove bin with Sys_error _ -> ());
        (match st with
        | Unix.WEXITED n -> error "cc failed (exit %d): %s" n err
        | Unix.WSIGNALED n ->
          error "cc killed by signal %d (sandbox rlimit?): %s" n err
        | Unix.WSTOPPED n -> error "cc stopped by signal %d: %s" n err));
      Unix.chmod bin 0o700;
      bin)

let bin_key ?key ~cc csrc =
  Rp_support.Cas.key
    [
      Cgen.version;
      (match key with Some k -> k | None -> csrc);
      cc.identity;
      String.concat " " cc.flags;
    ]

let compile ?sandbox ?cache ?key ~cc prog =
  let csrc = Cgen.emit prog in
  match cache with
  | None -> (cc_compile ?sandbox ~cc csrc, false)
  | Some cas -> (
    let k = bin_key ?key ~cc csrc in
    match Rp_support.Cas.get cas ~key:k ~kind:"native-bin" with
    | Some bytes ->
      let bin = Filename.temp_file "rpcc_native" ".bin" in
      write_file bin bytes;
      Unix.chmod bin 0o700;
      (bin, true)
    | None ->
      let bin = cc_compile ?sandbox ~cc csrc in
      Rp_support.Cas.put cas ~key:k ~kind:"native-bin" (read_file bin);
      (bin, false))

(* The degradation ladder's second rung: recompile without reading the
   cache (a CRC-valid but behaviorally bad entry would just be refetched)
   but write the fresh binary back through, repairing the entry for every
   later job on this key. *)
let compile_fresh ?sandbox ?cache ?key ~cc prog =
  let csrc = Cgen.emit prog in
  let bin = cc_compile ?sandbox ~cc csrc in
  (match cache with
  | Some cas ->
    Rp_support.Cas.put cas ~key:(bin_key ?key ~cc csrc) ~kind:"native-bin"
      (read_file bin)
  | None -> ());
  bin

(* ------------------------------------------------------------------ *)
(* Execute                                                             *)
(* ------------------------------------------------------------------ *)

let fnv_byte cs b = (cs lxor b) * 16777619 land 0x3FFFFFFFFFFFFFF

let checksum_of_string s =
  String.fold_left (fun cs c -> fnv_byte cs (Char.code c)) 0x1505 s

(* Returns the result plus the binary's self-timed [main] duration in ms
   (from the trailer's [elapsed_ns]) — the native analogue of interpreter
   run time, excluding fork/exec/loader overhead the harness pays. *)
let exec_bin_elapsed ?(fuel = 400_000_000) ?(check_tags = true)
    ?(max_depth = 100_000) ?(seed = 12345) ?deadline bin :
    Interp.result * float =
  let trailer_path = Filename.temp_file "rpcc_trailer" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      try Sys.remove trailer_path with Sys_error _ -> ())
    (fun () ->
      let budget = match deadline with Some d -> d | None -> 0.0 in
      (* the binary raises its own stack limit (deep recursion runs on
         the C stack), so no shell wrapper: exec it directly *)
      let argv =
        [|
          bin;
          trailer_path;
          string_of_int fuel;
          string_of_int max_depth;
          string_of_int seed;
          (if check_tags then "1" else "0");
          Printf.sprintf "%.6f" budget;
        |]
      in
      (* cloexec on both ends: a concurrent fork in another domain must
         not inherit [w_out], or this pipe never sees EOF until that
         unrelated child exits ([create_process] dup2s [w_out] to the
         child's stdout, which clears the flag there) *)
      let r_out, w_out = Unix.pipe ~cloexec:true () in
      let pid =
        (* ETXTBSY (EUNKNOWNERR 26 — OCaml's Unix.error has no
           constructor for it) is the one transient worth absorbing
           here: a fork racing this exec (another domain spawning cc)
           can briefly hold an inherited write fd to [bin]; retry
           briefly rather than quarantine *)
        let rec spawn attempts =
          try Unix.create_process bin argv Unix.stdin w_out Unix.stderr
          with
          | Unix.Unix_error (Unix.EUNKNOWNERR 26, _, _) when attempts > 0 ->
            Unix.sleepf 0.01;
            spawn (attempts - 1)
        in
        spawn 100
      in
      Unix.close w_out;
      let out = Buffer.create 4096 in
      let ic = Unix.in_channel_of_descr r_out in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes out chunk 0 n;
          drain ()
        end
      in
      (try drain () with End_of_file -> ());
      close_in_noerr ic;
      let _, st = Unix.waitpid [] pid in
      (match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> error "native binary exited with status %d" n
      | Unix.WSIGNALED n -> error "native binary killed by signal %d" n
      | Unix.WSTOPPED n -> error "native binary stopped by signal %d" n);
      let output = Buffer.contents out in
      let t =
        parse_trailer
          (try read_file trailer_path
           with Sys_error e -> error "native trailer unreadable: %s" e)
      in
      if t.outlen <> String.length output then
        error "native output truncated: trailer says %d bytes, captured %d"
          t.outlen (String.length output);
      match t.status with
      | `Trap -> raise (Interp.Error t.msg)
      | `Limit -> raise (Interp.Resource_limit t.msg)
      | `Invalid -> raise (Invalid_argument t.msg)
      | `Ok ->
        if checksum_of_string output <> t.checksum then
          error
            "native checksum mismatch: trailer %d vs %d recomputed over \
             captured output"
            t.checksum
            (checksum_of_string output);
        let total =
          { Interp.ops = t.ops; loads = t.loads; stores = t.stores }
        in
        let per_func =
          t.funcs
          |> List.filter (fun (_, (c : Interp.counts)) -> c.Interp.ops <> 0)
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        ( { Interp.ret = t.ret; output; checksum = t.checksum; total; per_func },
          float_of_int t.elapsed_ns /. 1e6 ))

let exec_bin ?fuel ?check_tags ?max_depth ?seed ?deadline bin =
  fst (exec_bin_elapsed ?fuel ?check_tags ?max_depth ?seed ?deadline bin)

type timed = {
  result : Interp.result;
  cc_ms : float;
  exec_ms : float;
  cache_hit : bool;
}

let run_timed ?fuel ?check_tags ?max_depth ?seed ?deadline ?sandbox ?cache
    ?key ~cc prog =
  let t0 = Rp_support.Clock.now () in
  let bin, cache_hit = compile ?sandbox ?cache ?key ~cc prog in
  let t1 = Rp_support.Clock.now () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bin with Sys_error _ -> ())
    (fun () ->
      let result, elapsed_ms =
        exec_bin_elapsed ?fuel ?check_tags ?max_depth ?seed ?deadline bin
      in
      let t2 = Rp_support.Clock.now () in
      {
        result;
        cc_ms = (t1 -. t0) *. 1000.;
        (* prefer the binary's own clock; a pre-elapsed_ns binary from an
           older cache entry reports 0, fall back to harness wall time *)
        exec_ms =
          (if elapsed_ms > 0. then elapsed_ms else (t2 -. t1) *. 1000.);
        cache_hit;
      })

let run ?fuel ?check_tags ?max_depth ?seed ?deadline ?sandbox ?cache ?key ~cc
    prog =
  (run_timed ?fuel ?check_tags ?max_depth ?seed ?deadline ?sandbox ?cache ?key
     ~cc prog)
    .result

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

type laddered = {
  l_result : Interp.result;
  l_mode : [ `Native | `Interp ];
  l_degraded : string option;
  l_cc_ms : float;
  l_exec_ms : float;
  l_cache_hit : bool;
}

(* native → recompile-once (cache-read bypassed, write-through) →
   interpreter.  Only {!Error} — infrastructure failure — descends a
   rung; faithful program outcomes ([Interp.Error], [Resource_limit],
   [Invalid_argument]) re-raise from whichever rung produced them,
   because every rung computes the same answer by contract.  The
   result is therefore independent of which rungs fired; only the
   telemetry ([l_mode]/[l_degraded]) and the latency differ. *)
let run_laddered ?fuel ?check_tags ?max_depth ?seed ?deadline ?sandbox ?cache
    ?key ~interp ~cc prog =
  let fallback reason =
    let result, run_ms = interp () in
    {
      l_result = result;
      l_mode = `Interp;
      l_degraded = Some reason;
      l_cc_ms = 0.;
      l_exec_ms = run_ms;
      l_cache_hit = false;
    }
  in
  match cc with
  | None -> fallback "no C compiler"
  | Some cc -> (
    match
      run_timed ?fuel ?check_tags ?max_depth ?seed ?deadline ?sandbox ?cache
        ?key ~cc prog
    with
    | t ->
      {
        l_result = t.result;
        l_mode = `Native;
        l_degraded = None;
        l_cc_ms = t.cc_ms;
        l_exec_ms = t.exec_ms;
        l_cache_hit = t.cache_hit;
      }
    | exception Error first -> (
      match
        let t0 = Rp_support.Clock.now () in
        let bin = compile_fresh ?sandbox ?cache ?key ~cc prog in
        let t1 = Rp_support.Clock.now () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove bin with Sys_error _ -> ())
          (fun () ->
            let result, elapsed_ms =
              exec_bin_elapsed ?fuel ?check_tags ?max_depth ?seed ?deadline
                bin
            in
            let t2 = Rp_support.Clock.now () in
            ( result,
              (t1 -. t0) *. 1000.,
              if elapsed_ms > 0. then elapsed_ms else (t2 -. t1) *. 1000. ))
      with
      | result, cc_ms, exec_ms ->
        {
          l_result = result;
          l_mode = `Native;
          l_degraded = Some (Printf.sprintf "recompiled: %s" first);
          l_cc_ms = cc_ms;
          l_exec_ms = exec_ms;
          l_cache_hit = false;
        }
      | exception Error second ->
        fallback
          (Printf.sprintf "native failed twice (%s; retry: %s)" first second)
      ))
