(** C code generation from post-regalloc IR.

    [emit] translates a whole {!Rp_ir.Program.t} — via {!Rp_exec.Precomp}'s
    dense, lazily-faithful form — into one self-contained C translation
    unit: one C function per IR function, labels as [goto] targets,
    registers as locals, and a word-addressed object memory mirroring
    {!Rp_exec.Memory}.  The dynamic [ops]/[loads]/[stores] counters, the
    FNV-1a output checksum, and every runtime trap message are compiled
    into the emitted code, placed exactly where {!Rp_exec.Interp} places
    them, so a native run is bit-identical to an interpreted run: same
    output bytes, same checksum, same total and per-function counts, same
    trap/limit messages on erroneous or resource-bounded programs.

    The emitted program takes six argv parameters —
    [trailer-path fuel max-depth seed check-tags deadline-budget] — so one
    compiled binary serves every runtime parameterization (the binary
    cache key never includes fuel or seed).  It writes raw program output
    to stdout and a fixed-format result trailer ({!Native.parse_trailer})
    to the trailer path, always exiting 0 for controlled terminations;
    any other exit is infrastructure failure, which the runner quarantines
    rather than ever reporting a wrong answer. *)

val version : string
(** Emitter version stamp; part of the compiled-binary cache key, so any
    change to the emitted code invalidates cached binaries. *)

val mangle : int -> string -> string
(** [mangle idx name] is the C identifier used for IR function [name]
    occupying precompiled slot [idx]: a ["fn_<idx>_"] prefix followed by
    [name] with every character outside [A-Za-z0-9_] replaced by ['_'].
    The index prefix alone guarantees uniqueness and keeps C keywords and
    empty names harmless; the sanitized name is only for readability of
    the emitted code. *)

val emit : Rp_ir.Program.t -> string
(** The complete C source for [prog].  Pure: compiles the program's
    current version via {!Rp_exec.Precomp.of_program} and never mutates
    [prog] (heap tags for call sites the analyses never reified are given
    synthetic out-of-table ids, which keeps their tag-set membership
    [false] exactly as the interpreter's lazily created tags would be). *)
