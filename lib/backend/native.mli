(** Run programs at hardware speed: shell the {!Cgen} C out to the system
    compiler, execute the binary, and parse its trailer back into the
    {!Rp_exec.Interp} result type.

    Contract: for every program and every runtime parameterization, a
    native run is observably identical to an interpreted run — same
    output, checksum, total and per-function counters, and the same
    {!Rp_exec.Interp.Error} / {!Rp_exec.Interp.Resource_limit} /
    [Invalid_argument] exceptions with the same messages on erroneous or
    resource-bounded programs.  Anything that prevents the runner from
    establishing that answer — no C compiler, a compile failure, a binary
    killed by a signal, a truncated or garbled trailer, a checksum that
    does not match the captured output — raises {!Error} instead, so
    infrastructure failure is always a quarantine and never a wrong
    answer. *)

exception Error of string
(** Native-backend infrastructure failure (distinct from program traps
    and resource limits, which re-raise the interpreter's exceptions). *)

type cc = {
  path : string;  (** compiler executable *)
  flags : string list;  (** e.g. [["-O1"]] *)
  identity : string;
      (** first line of [cc --version]; part of the binary cache key so a
          toolchain upgrade invalidates cached binaries *)
}

val find_cc :
  ?cache:Rp_support.Cas.t -> ?path:string -> ?flags:string list -> unit ->
  cc option
(** Probe for a working C compiler ([cc] on PATH by default, [-O1] by
    default) and capture its identity line.  [None] when the probe
    fails — callers skip or error out, visibly, rather than guessing.

    The probe is memoized per process (positive {e and} negative), so
    repeated callers — the bench host record, gen-fuzz, a daemon serving
    thousands of native jobs — pay one fork+exec per compiler path.
    With [?cache] the identity is additionally cached in the CAS keyed
    on the resolved executable's (path, size, mtime), so a fresh process
    running an all-warm-cache campaign spawns no compiler subprocess at
    all; a toolchain upgrade changes the stat triple and re-probes. *)

val default_cache_dir : unit -> string
(** Per-user binary cache root under the system temp directory. *)

(* ---- cc sandbox -------------------------------------------------- *)

type sandbox = {
  cpu_s : int;  (** CPU rlimit for the compiler ([ulimit -t]), seconds *)
  mem_mb : int;  (** address-space rlimit ([ulimit -v]), MiB *)
  fsize_mb : int;  (** output file-size rlimit ([ulimit -f]), MiB *)
  wall_s : float;  (** harness-enforced wall-clock deadline, seconds *)
  spawn_retry : Rp_support.Retry.policy;
      (** bounded retries for transient spawn failures (fork [EAGAIN],
          [ETXTBSY] races) *)
}

val default_sandbox : sandbox
(** 60 s CPU, 4 GiB AS, 512 MiB output, 120 s wall, 5 spawn attempts —
    generous for any one translation unit, fatal for a wedged cc. *)

(* ---- trailer protocol (exposed for tests) ------------------------ *)

type trailer = {
  status : [ `Ok | `Trap | `Limit | `Invalid ];
  msg : string;  (** trap/limit/invalid message; [""] for [`Ok] *)
  ret : Rp_exec.Value.t;
  checksum : int;
  ops : int;
  loads : int;
  stores : int;
  outlen : int;  (** bytes the binary wrote to stdout *)
  elapsed_ns : int;
      (** the binary's self-timed [main] duration (monotonic clock, from
          entry to trailer write); 0 if the line is absent *)
  funcs : (string * Rp_exec.Interp.counts) list;  (** didx order, all funcs *)
}

val parse_trailer : string -> trailer
(** Parse the fixed-format trailer ({b rpcc-native/1}).  Raises {!Error}
    on anything malformed: wrong magic, unknown status, missing fields,
    short or garbled records, a missing [end] marker.  Strictness is the
    point — a partial trailer must quarantine, not round down to a
    plausible result. *)

(* ---- compile & execute ------------------------------------------- *)

val compile :
  ?sandbox:sandbox ->
  ?cache:Rp_support.Cas.t ->
  ?key:string ->
  cc:cc ->
  Rp_ir.Program.t ->
  string * bool
(** [compile ?cache ?key ~cc prog] emits C, compiles it, and returns
    [(binary_path, cache_hit)].  The binary lands in a fresh temp file the
    caller should remove when done.  With [?cache], compiled binaries are
    stored content-addressed under
    [Cas.key [Cgen.version; key-or-C-source; cc identity; cc flags]] —
    pass {!Rp_driver.Pipeline.cache_key} output as [?key] to key on
    program fingerprint × config fingerprint, or omit [key] to fall back
    to hashing the emitted C itself.  Raises {!Error} if cc fails. *)

val exec_bin :
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?seed:int ->
  ?deadline:float ->
  string ->
  Rp_exec.Interp.result
(** Execute a compiled binary with the interpreter's runtime parameter
    defaults (fuel 400M, tag checks on, depth 100k, seed 12345).  The
    binary raises its own stack rlimit to the hard maximum at startup
    (deep IR recursion lives on the C stack; the interpreter's frames
    lived on the OCaml heap), with
    stdout captured as the program output and the trailer read from a
    private temp file.  [?deadline] is a wall-clock budget in seconds,
    enforced cooperatively by the emitted code's 4096-op poll exactly
    like the interpreter's [should_stop].  Raises [Interp.Error],
    [Interp.Resource_limit], or [Invalid_argument] as the interpreter
    would; {!Error} on infrastructure failure. *)

val run :
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?seed:int ->
  ?deadline:float ->
  ?sandbox:sandbox ->
  ?cache:Rp_support.Cas.t ->
  ?key:string ->
  cc:cc ->
  Rp_ir.Program.t ->
  Rp_exec.Interp.result
(** [compile] + [exec_bin] + cleanup, as a drop-in for
    {!Rp_exec.Interp.run}. *)

type timed = {
  result : Rp_exec.Interp.result;
  cc_ms : float;  (** emit + compile (0.0 on a binary-cache hit) *)
  exec_ms : float;
      (** the binary's self-timed [main] duration: the native [run_ms],
          symmetric with the interpreter's (which excludes compile) —
          fork/exec/loader overhead is harness cost, not program run
          time.  Falls back to harness-measured wall time if the trailer
          carries no [elapsed_ns]. *)
  cache_hit : bool;
}

val run_timed :
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?seed:int ->
  ?deadline:float ->
  ?sandbox:sandbox ->
  ?cache:Rp_support.Cas.t ->
  ?key:string ->
  cc:cc ->
  Rp_ir.Program.t ->
  timed
(** Like {!run} but splitting compile time from execution time, for the
    bench harness's [run_ms] accounting. *)

(* ---- graceful degradation ---------------------------------------- *)

type laddered = {
  l_result : Rp_exec.Interp.result;
  l_mode : [ `Native | `Interp ];  (** which rung produced the answer *)
  l_degraded : string option;
      (** [Some reason] when any rung below the first fired — including
          a successful recompile that still answered natively *)
  l_cc_ms : float;
  l_exec_ms : float;
  l_cache_hit : bool;
}

val run_laddered :
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?seed:int ->
  ?deadline:float ->
  ?sandbox:sandbox ->
  ?cache:Rp_support.Cas.t ->
  ?key:string ->
  interp:(unit -> Rp_exec.Interp.result * float) ->
  cc:cc option ->
  Rp_ir.Program.t ->
  laddered
(** The graceful degradation ladder: native → one fresh recompile that
    bypasses the binary cache's read side (but writes through, repairing
    a bad entry for later jobs) → the caller's [interp] thunk (which
    returns the result plus its run time in ms).  Only {!Error} —
    infrastructure failure: cc missing or crashing, a sandbox-limit
    trip, a malformed trailer, a corrupt cached binary — descends a
    rung.  Faithful program outcomes ({!Rp_exec.Interp.Error},
    {!Rp_exec.Interp.Resource_limit}, [Invalid_argument]) re-raise from
    whichever rung produced them: every rung computes the same answer by
    contract, so the result is rung-independent and only the telemetry
    and latency vary.  Never raises {!Error} itself — if the interpreter
    rung also fails, that exception is the campaign's to handle. *)
