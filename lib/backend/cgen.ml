(** C emitter: post-regalloc IR -> one self-contained C translation unit.

    The emitted program is a transliteration of {!Rp_exec.Interp} running
    over {!Rp_exec.Precomp}'s dense form: one C function per IR function
    ([static val fn_<idx>_<name>(i64 nargs, val *args)]), labels as [goto]
    targets, registers as [val] locals, and a growable object array
    mirroring {!Rp_exec.Memory}'s base-indexed heap.  Every placement
    decision that affects observable counts is copied from the
    interpreter, statement for statement:

    - one [TICK] per executed instruction, one per block terminator,
      checking fuel after the increment and polling the deadline every
      4096 operations with the interpreter's exact messages;
    - loads/stores counted {e before} the access is checked (a trapping
      access still counts, exactly as [count_load] precedes [Memory.load]);
    - calls enter with depth-check-then-arity-check, frame objects are
      allocated in declaration order and released in the same order, so
      base numbering — observable through trap messages — is identical;
    - operand coercions evaluate right-to-left ([as_int b] before
      [as_int a]), matching OCaml's evaluation order, so when both
      operands are bad the {e same} operand produces the trap message;
    - OCaml's 63-bit boxed-int semantics are reproduced with 64-bit
      arithmetic followed by a sign-extending renormalization ([norm63]),
      including [lsl]/[asr] shift-count masking and [int_of_float]'s
      x86-64 overflow behaviour.

    Tag sets compile to static bitsets over emit-time tag ids.  Heap tags
    the analyses never reified (the interpreter creates them lazily at
    the first [malloc] of a site) get synthetic ids past the end of every
    bitset, which makes their membership [false] — the same answer the
    interpreter's fresh ids produce — without mutating the program. *)

open Rp_ir
module P = Rp_exec.Precomp
module V = Rp_exec.Value

let version = "rpcc-cgen/1"

let mangle idx name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      in
      if not ok then Bytes.set b i '_')
    b;
  Printf.sprintf "fn_%d_%s" idx (Bytes.to_string b)

(** Escape [s] as the body of a C string literal. *)
let c_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string b (Printf.sprintf "\\%03o" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bpf = Printf.bprintf

(* ------------------------------------------------------------------ *)
(* Emit-time context                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prog : Program.t;
  dp : P.dprog;
  ntags : int;  (** static tag-table size; bitsets cover ids [0, ntags) *)
  mutable synth : (int * string) list;  (** synthetic heap tags (rev) *)
  mutable nsynth : int;
  site_tag : (int, int) Hashtbl.t;  (** call site -> tag id *)
  fun_ids : (string, int) Hashtbl.t;  (** interned Loadfp names *)
  mutable fun_names : string list;  (** rev, index = id *)
  mutable nfuns : int;
  ts_ids : (string, int) Hashtbl.t;  (** tagset fingerprint -> ts index *)
  mutable tagsets : (int list * string) list;  (** rev: ids, pp string *)
  mutable nts : int;
}

let intern_fun ctx n =
  match Hashtbl.find_opt ctx.fun_ids n with
  | Some i -> i
  | None ->
    let i = ctx.nfuns in
    Hashtbl.replace ctx.fun_ids n i;
    ctx.fun_names <- n :: ctx.fun_names;
    ctx.nfuns <- i + 1;
    i

(** The tag id objects allocated at [site] carry: the reified heap tag if
    one exists, else a synthetic id past every bitset. *)
let site_tag_id ctx site =
  match Hashtbl.find_opt ctx.site_tag site with
  | Some id -> id
  | None ->
    let id =
      match Hashtbl.find_opt ctx.prog.Program.heap_site_tags site with
      | Some (t : Tag.t) -> t.Tag.id
      | None ->
        let id = ctx.ntags + ctx.nsynth in
        ctx.synth <- (id, Printf.sprintf "heap@%d" site) :: ctx.synth;
        ctx.nsynth <- ctx.nsynth + 1;
        id
    in
    Hashtbl.replace ctx.site_tag site id;
    id

let tagset_id ctx (ts : Tagset.t) =
  let ids = List.map (fun (t : Tag.t) -> t.Tag.id) (Tagset.elements ts) in
  let ids = List.sort_uniq compare ids in
  let fp = String.concat "," (List.map string_of_int ids) in
  match Hashtbl.find_opt ctx.ts_ids fp with
  | Some i -> i
  | None ->
    let i = ctx.nts in
    Hashtbl.replace ctx.ts_ids fp i;
    ctx.tagsets <- (ids, Fmt.str "%a" Tagset.pp ts) :: ctx.tagsets;
    ctx.nts <- i + 1;
    i

(** Pre-register everything that needs a stable id before any code is
    emitted (tables are printed before function bodies). *)
let scan ctx =
  Array.iter
    (fun (g : P.dfunc) ->
      Array.iter
        (fun (b : P.dblock) ->
          Array.iter
            (fun i ->
              match i with
              | P.Dloadfp (_, n) -> ignore (intern_fun ctx n)
              | P.Dloadg (_, _, ts) | P.Dstoreg (_, _, ts) ->
                if not (Tagset.is_univ ts) then ignore (tagset_id ctx ts)
              | P.Dcall c -> ignore (site_tag_id ctx c.P.csite)
              | _ -> ())
            b.P.dinstrs)
        g.P.dblocks)
    ctx.dp.P.dfuncs

(* ------------------------------------------------------------------ *)
(* The fixed runtime                                                   *)
(* ------------------------------------------------------------------ *)

let c_header =
  {|#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <stdarg.h>
#include <math.h>
#include <unistd.h>
#include <sys/time.h>
#include <sys/resource.h>

typedef long long i64;
typedef unsigned long long u64;

/* The hot helpers must dissolve into the emitted bodies: forcing the
   inline lets the C compiler propagate value kinds through the tagged
   [val] struct and drop the dynamic dispatch on monomorphic paths. */
#define RT_INL static inline __attribute__((always_inline))

enum { K_UNDEF = 0, K_INT = 1, K_FLT = 2, K_PTR = 3, K_FUN = 4 };
typedef struct { i64 a; i64 b; double f; unsigned char k; } val;
typedef struct { val *cells; i64 size; i64 tag; unsigned char live; } obj;

static obj *g_objs; static i64 g_nobjs, g_cap;
static i64 g_ops, g_loads, g_stores;
static i64 g_checksum = 0x1505, g_outlen;
static i64 g_fuel, g_maxdepth, g_depth, g_rng;
static int g_check_tags, g_has_deadline;
static double g_t0, g_budget;
static const char *g_trailer_path;
static char g_obuf[1 << 16];

static void rt_trap(const char *fmt, ...) __attribute__((noreturn, format(printf, 1, 2)));
static void rt_limit(const char *fmt, ...) __attribute__((noreturn, format(printf, 1, 2)));
static void rt_invalid(const char *fmt, ...) __attribute__((noreturn, format(printf, 1, 2)));
static void rt_badload(val v) __attribute__((noreturn));
static void rt_badstore(val v) __attribute__((noreturn));
static void rt_badcall(val v) __attribute__((noreturn));
static void rt_val_str(char *dst, size_t n, val v);
static void rt_trailer(const char *status, const char *msg, const val *ret);
static val rt_builtin(int bid, i64 site, i64 nargs, val *args);
static val rt_call_name(i64 fid, i64 site, i64 nargs, val *args);
static i64 rt_site_tag(i64 s);
RT_INL i64 rt_gbase(i64 id);
|}

let runtime_prelude =
  {|
RT_INL val vundef(void) { val v; v.k = K_UNDEF; v.a = 0; v.b = 0; v.f = 0.0; return v; }
RT_INL val vint(i64 n) { val v; v.k = K_INT; v.a = n; v.b = 0; v.f = 0.0; return v; }
RT_INL val vflt(double f) { val v; v.k = K_FLT; v.a = 0; v.b = 0; v.f = f; return v; }
RT_INL val vptr(i64 b, i64 o) { val v; v.k = K_PTR; v.a = b; v.b = o; v.f = 0.0; return v; }
RT_INL val vfun(i64 id) { val v; v.k = K_FUN; v.a = id; v.b = 0; v.f = 0.0; return v; }

RT_INL double rt_bits(u64 b) { double d; memcpy(&d, &b, 8); return d; }

/* OCaml's 63-bit boxed int: keep bit 62 as the sign, discard bit 63. */
RT_INL i64 norm63(i64 x) { u64 u = (u64)x << 1; return (i64)u >> 1; }

static double rt_now(void) {
  struct timeval tv; gettimeofday(&tv, 0);
  return (double)tv.tv_sec + (double)tv.tv_usec * 1e-6;
}

static void rt_val_str(char *dst, size_t n, val v) {
  switch (v.k) {
  case K_INT: snprintf(dst, n, "%lld", v.a); break;
  case K_FLT: snprintf(dst, n, "%g", v.f); break;
  case K_PTR: snprintf(dst, n, "<%lld:+%lld>", v.a, v.b); break;
  case K_FUN: snprintf(dst, n, "@%s", g_funname[v.a]); break;
  default: snprintf(dst, n, "undef"); break;
  }
}

static void __attribute__((noreturn)) rt_fail(const char *status, const char *fmt, va_list ap) {
  char buf[768];
  vsnprintf(buf, sizeof buf, fmt, ap);
  fflush(stdout);
  rt_trailer(status, buf, 0);
  exit(0);
}

static void rt_trap(const char *fmt, ...) {
  va_list ap; va_start(ap, fmt); rt_fail("trap", fmt, ap);
}
static void rt_limit(const char *fmt, ...) {
  va_list ap; va_start(ap, fmt); rt_fail("limit", fmt, ap);
}
static void rt_invalid(const char *fmt, ...) {
  va_list ap; va_start(ap, fmt); rt_fail("invalid", fmt, ap);
}
static void rt_badload(val v) {
  char s[192]; rt_val_str(s, sizeof s, v);
  rt_trap("Load through non-pointer %s", s);
}
static void rt_badstore(val v) {
  char s[192]; rt_val_str(s, sizeof s, v);
  rt_trap("Store through non-pointer %s", s);
}
static void rt_badcall(val v) {
  char s[192]; rt_val_str(s, sizeof s, v);
  rt_trap("indirect call through %s", s);
}

static void rt_emit(const char *s, size_t n) {
  fwrite(s, 1, n, stdout);
  for (size_t i = 0; i < n; i++)
    g_checksum = (i64)((((u64)(g_checksum ^ (i64)(unsigned char)s[i]))
                        * 16777619ULL) & 0x3FFFFFFFFFFFFFFULL);
  g_outlen += (i64)n;
}

/* ---- memory ---------------------------------------------------- */

static i64 rt_alloc(i64 tag, i64 size) {
  if (size < 0) size = 0;
  if (g_nobjs == g_cap) {
    g_cap = g_cap ? g_cap * 2 : 256;
    g_objs = (obj *)realloc(g_objs, (size_t)g_cap * sizeof(obj));
    if (!g_objs) _exit(9);
  }
  obj *o = &g_objs[g_nobjs++];
  o->cells = (val *)calloc(size ? (size_t)size : 1, sizeof(val));
  if (!o->cells) _exit(9);
  o->size = size; o->tag = tag; o->live = 1;
  return g_nobjs; /* bases are 1-based, dense, in allocation order */
}

static obj *rt_find(i64 b) {
  if (b < 1 || b > g_nobjs) rt_trap("access to invalid base %lld", b);
  return &g_objs[b - 1];
}

static void rt_release(i64 b) {
  obj *o = rt_find(b);
  o->live = 0;
  free(o->cells); o->cells = 0;
}

static obj *rt_checked(i64 b, i64 off) {
  obj *o = rt_find(b);
  if (!o->live) rt_trap("access to dead object '%s'", g_tagname[o->tag]);
  if (off < 0 || off >= o->size)
    rt_trap("out-of-bounds access to '%s' (offset %lld, size %lld)",
            g_tagname[o->tag], off, o->size);
  return o;
}

RT_INL val rt_load(i64 b, i64 off) { return rt_checked(b, off)->cells[off]; }
RT_INL void rt_store(i64 b, i64 off, val v) { rt_checked(b, off)->cells[off] = v; }

RT_INL i64 rt_gbase(i64 id) {
  i64 b = g_gbase[id];
  if (b < 0) rt_trap("no storage for global tag '%s'", g_tagname[id]);
  return b;
}

static void rt_check_ts(i64 base, const u64 *ts, const char *op, const char *pps) {
  if (!g_check_tags) return;
  obj *o = rt_find(base);
  i64 id = o->tag;
  int member = id >= 0 && id < NTS_BITS && ((ts[id >> 6] >> (id & 63)) & 1);
  if (!member)
    rt_trap("tag-set violation in %s: object '%s' not in static tag set %s",
            op, g_tagname[id], pps);
}

/* ---- value operators (coercions evaluate right-to-left) --------- */

RT_INL i64 rt_as_int(val v) {
  if (v.k == K_INT) return v.a;
  if (v.k == K_UNDEF) rt_trap("use of an undefined value as an integer");
  { char s[192]; rt_val_str(s, sizeof s, v);
    rt_trap("expected an integer, got %s", s); }
}

RT_INL double rt_as_flt(val v) {
  if (v.k == K_FLT) return v.f;
  if (v.k == K_UNDEF) rt_trap("use of an undefined value as a float");
  { char s[192]; rt_val_str(s, sizeof s, v);
    rt_trap("expected a float, got %s", s); }
}

RT_INL int rt_truthy(val v) {
  if (v.k == K_INT) return v.a != 0;
  if (v.k == K_PTR) return 1;
  if (v.k == K_UNDEF) rt_trap("branch on an undefined value");
  { char s[192]; rt_val_str(s, sizeof s, v);
    rt_trap("branch on a non-integer value %s", s); }
}

RT_INL val rt_add(val a, val b) {
  if (a.k == K_PTR && b.k == K_INT)
    return vptr(a.a, norm63((i64)((u64)a.b + (u64)b.a)));
  if (a.k == K_INT && b.k == K_PTR)
    return vptr(b.a, norm63((i64)((u64)b.b + (u64)a.a)));
  { i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
    return vint(norm63((i64)((u64)ya + (u64)yb))); }
}

RT_INL val rt_sub(val a, val b) {
  if (a.k == K_PTR && b.k == K_INT)
    return vptr(a.a, norm63((i64)((u64)a.b - (u64)b.a)));
  if (a.k == K_PTR && b.k == K_PTR) {
    if (a.a == b.a) return vint(norm63((i64)((u64)a.b - (u64)b.b)));
    rt_trap("subtraction of pointers into different objects");
  }
  { i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
    return vint(norm63((i64)((u64)ya - (u64)yb))); }
}

RT_INL val rt_mul(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
  return vint(norm63((i64)((u64)ya * (u64)yb)));
}

RT_INL val rt_div(val a, val b) {
  i64 d = rt_as_int(b);
  if (d == 0) rt_trap("integer division by zero");
  { i64 ya = rt_as_int(a); return vint(norm63(ya / d)); }
}

RT_INL val rt_rem(val a, val b) {
  i64 d = rt_as_int(b);
  if (d == 0) rt_trap("integer remainder by zero");
  { i64 ya = rt_as_int(a); return vint(norm63(ya % d)); }
}

/* OCaml lsl/asr on x86-64: the shift count is masked to 6 bits. */
RT_INL val rt_shl(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
  return vint(norm63((i64)((u64)ya << ((u64)yb & 63))));
}
RT_INL val rt_shr(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
  return vint(ya >> ((u64)yb & 63));
}
RT_INL val rt_band(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a); return vint(ya & yb);
}
RT_INL val rt_bor(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a); return vint(ya | yb);
}
RT_INL val rt_bxor(val a, val b) {
  i64 yb = rt_as_int(b); i64 ya = rt_as_int(a); return vint(ya ^ yb);
}

RT_INL val rt_icmp(val a, val b, int op) {
  static const char *names[] = { "<", "<=", ">", ">=" };
  if (a.k == K_PTR || b.k == K_PTR) {
    if (a.k == K_PTR && b.k == K_PTR) {
      if (a.a == b.a) {
        i64 x = a.b, y = b.b;
        switch (op) {
        case 0: return vint(x < y);
        case 1: return vint(x <= y);
        case 2: return vint(x > y);
        default: return vint(x >= y);
        }
      }
      rt_trap("%s on pointers into different objects", names[op]);
    }
    rt_trap("invalid pointer comparison under %s", names[op]);
  }
  { i64 yb = rt_as_int(b); i64 ya = rt_as_int(a);
    switch (op) {
    case 0: return vint(ya < yb);
    case 1: return vint(ya <= yb);
    case 2: return vint(ya > yb);
    default: return vint(ya >= yb);
    } }
}

RT_INL int rt_ptr_eq(val a, val b) {
  if (a.k == K_PTR && b.k == K_PTR) return a.a == b.a && a.b == b.b;
  if ((a.k == K_PTR && b.k == K_INT && b.a == 0)
      || (a.k == K_INT && a.a == 0 && b.k == K_PTR)) return 0;
  if (a.k == K_FUN && b.k == K_FUN) return a.a == b.a;
  if ((a.k == K_FUN && b.k == K_INT && b.a == 0)
      || (a.k == K_INT && a.a == 0 && b.k == K_FUN)) return 0;
  { char s1[192], s2[192];
    rt_val_str(s1, sizeof s1, a); rt_val_str(s2, sizeof s2, b);
    rt_trap("invalid pointer comparison %s == %s", s1, s2); }
}

RT_INL val rt_eq(val a, val b) {
  if (a.k == K_PTR || a.k == K_FUN || b.k == K_PTR || b.k == K_FUN)
    return vint(rt_ptr_eq(a, b));
  { i64 yb = rt_as_int(b); i64 ya = rt_as_int(a); return vint(ya == yb); }
}
RT_INL val rt_ne(val a, val b) {
  if (a.k == K_PTR || a.k == K_FUN || b.k == K_PTR || b.k == K_FUN)
    return vint(!rt_ptr_eq(a, b));
  { i64 yb = rt_as_int(b); i64 ya = rt_as_int(a); return vint(ya != yb); }
}

RT_INL val rt_fadd(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vflt(fa + fb);
}
RT_INL val rt_fsub(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vflt(fa - fb);
}
RT_INL val rt_fmul(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vflt(fa * fb);
}
RT_INL val rt_fdiv(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vflt(fa / fb);
}
RT_INL val rt_flt(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa < fb);
}
RT_INL val rt_fle(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa <= fb);
}
RT_INL val rt_fgt(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa > fb);
}
RT_INL val rt_fge(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa >= fb);
}
RT_INL val rt_feq(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa == fb);
}
RT_INL val rt_fne(val a, val b) {
  double fb = rt_as_flt(b); double fa = rt_as_flt(a); return vint(fa != fb);
}

RT_INL val rt_neg(val v) {
  return vint(norm63((i64)(0ULL - (u64)rt_as_int(v))));
}
RT_INL val rt_fneg(val v) { return vflt(-rt_as_flt(v)); }
RT_INL val rt_lnot(val v) { return vint(!rt_truthy(v)); }
RT_INL val rt_bnot(val v) { return vint(norm63(~rt_as_int(v))); }
RT_INL val rt_i2f(val v) { return vflt((double)rt_as_int(v)); }

/* int_of_float on x86-64: cvttsd2si's INT64_MIN on overflow/NaN, then the
   OCaml tag drops bit 63 — i.e. norm63 of the truncation result. */
RT_INL val rt_f2i(val v) {
  double d = rt_as_flt(v);
  i64 x;
  if (d != d || d >= 9223372036854775808.0 || d < -9223372036854775808.0)
    x = (i64)(-9223372036854775807LL - 1);
  else x = (i64)d;
  return vint(norm63(x));
}

#define TICK(fi) do { g_ops++; g_fops[fi]++; \
  if (__builtin_expect(g_ops > g_fuel, 0)) \
    rt_limit("fuel exhausted (%lld operations)", g_fuel); \
  if (__builtin_expect((g_ops & 4095) == 0, 0) && g_has_deadline \
      && rt_now() - g_t0 > g_budget) \
    rt_limit("external stop after %lld operations", g_ops); } while (0)
#define CLOAD(fi) (g_loads++, g_floads[fi]++)
#define CSTORE(fi) (g_stores++, g_fstores[fi]++)
|}

let trailer_runtime =
  {|
static void rt_trailer(const char *status, const char *msg, const val *ret) {
  fflush(stdout);
  FILE *t = fopen(g_trailer_path, "w");
  if (!t) _exit(9);
  fprintf(t, "rpcc-native/1\n");
  fprintf(t, "status %s\n", status);
  if (msg) fprintf(t, "msg %s\n", msg);
  if (ret) {
    switch (ret->k) {
    case K_INT: fprintf(t, "ret int %lld\n", ret->a); break;
    case K_FLT: { u64 b; memcpy(&b, &ret->f, 8);
      fprintf(t, "ret flt %016llx\n", b); } break;
    case K_PTR: fprintf(t, "ret ptr %lld %lld\n", ret->a, ret->b); break;
    case K_FUN: fprintf(t, "ret fun %s\n", g_funname[ret->a]); break;
    default: fprintf(t, "ret undef\n"); break;
    }
  }
  fprintf(t, "checksum %lld\n", g_checksum);
  fprintf(t, "ops %lld\n", g_ops);
  fprintf(t, "loads %lld\n", g_loads);
  fprintf(t, "stores %lld\n", g_stores);
  fprintf(t, "outlen %lld\n", g_outlen);
  fprintf(t, "elapsed_ns %lld\n", (i64)((rt_now() - g_t0) * 1e9));
  for (int i = 0; i < NFUNCS; i++)
    fprintf(t, "func %lld %lld %lld %s\n",
            g_fops[i], g_floads[i], g_fstores[i], g_irname[i]);
  fprintf(t, "end\n");
  fflush(t);
  fclose(t);
}
|}

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

(** The C body of builtin case [name]; must cover every name in
    {!Rp_minic.Builtins.signatures} so divergence from the interpreter's
    builtin table is an emit-time failure, never a silent difference. *)
let builtin_case name =
  match name with
  | "malloc" ->
    {|    if (nargs != 1) break;
    { i64 size = rt_as_int(args[0]);
      if (size < 0) rt_trap("malloc of negative size %lld", size);
      { i64 b = rt_alloc(rt_site_tag(site), size);
        obj *o = &g_objs[b - 1];
        for (i64 i = 0; i < o->size; i++) o->cells[i] = vint(0);
        return vptr(b, 0); } }|}
  | "free" ->
    {|    if (nargs != 1) break;
    { val v = args[0];
      if (v.k == K_PTR && v.b == 0) { rt_release(v.a); return vundef(); }
      if (v.k == K_INT && v.a == 0) return vundef();
      { char s[192]; rt_val_str(s, sizeof s, v);
        rt_trap("free of a non-base pointer %s", s); } }|}
  | "print_int" ->
    {|    if (nargs != 1) break;
    { char b[32]; int n = snprintf(b, sizeof b, "%lld", rt_as_int(args[0]));
      rt_emit(b, (size_t)n); rt_emit("\n", 1); return vundef(); }|}
  | "print_float" ->
    {|    if (nargs != 1) break;
    { char b[48]; int n = snprintf(b, sizeof b, "%.6g", rt_as_flt(args[0]));
      rt_emit(b, (size_t)n); rt_emit("\n", 1); return vundef(); }|}
  | "print_char" ->
    {|    if (nargs != 1) break;
    { char c = (char)(rt_as_int(args[0]) & 0xff);
      rt_emit(&c, 1); return vundef(); }|}
  | "rand" ->
    {|    if (nargs != 0) break;
    g_rng = (i64)(((u64)g_rng * 1103515245ULL + 12345ULL) & 0x3FFFFFFFULL);
    return vint((g_rng >> 8) & 0x7FFF);|}
  | "srand" ->
    {|    if (nargs != 1) break;
    g_rng = rt_as_int(args[0]) & 0x3FFFFFFF;
    return vundef();|}
  | "pow" ->
    {|    if (nargs != 2) break;
    { double y = rt_as_flt(args[1]); double x = rt_as_flt(args[0]);
      return vflt(pow(x, y)); }|}
  | "sqrt" -> "    if (nargs != 1) break;\n    return vflt(sqrt(rt_as_flt(args[0])));"
  | "sin" -> "    if (nargs != 1) break;\n    return vflt(sin(rt_as_flt(args[0])));"
  | "cos" -> "    if (nargs != 1) break;\n    return vflt(cos(rt_as_flt(args[0])));"
  | "exp" -> "    if (nargs != 1) break;\n    return vflt(exp(rt_as_flt(args[0])));"
  | "log" -> "    if (nargs != 1) break;\n    return vflt(log(rt_as_flt(args[0])));"
  | "fabs" -> "    if (nargs != 1) break;\n    return vflt(fabs(rt_as_flt(args[0])));"
  | "abs" ->
    {|    if (nargs != 1) break;
    { i64 n = rt_as_int(args[0]);
      return vint(n < 0 ? norm63((i64)(0ULL - (u64)n)) : n); }|}
  | n -> failwith ("Cgen: builtin without a C body: " ^ n)

let builtin_names = List.map fst Rp_minic.Builtins.signatures

let builtin_id name =
  let rec find i = function
    | [] -> failwith ("Cgen: unknown builtin " ^ name)
    | n :: _ when n = name -> i
    | _ :: tl -> find (i + 1) tl
  in
  find 0 builtin_names

let emit_builtins buf =
  bpf buf "static const char *g_bname[] = {";
  List.iter (fun n -> bpf buf " \"%s\"," (c_escape n)) builtin_names;
  bpf buf " };\n\n";
  bpf buf "static val rt_builtin(int bid, i64 site, i64 nargs, val *args) {\n";
  bpf buf "  (void)site; (void)args;\n";
  bpf buf "  switch (bid) {\n";
  List.iteri
    (fun i n -> bpf buf "  case %d: /* %s */\n%s\n    break;\n" i n
        (builtin_case n))
    builtin_names;
  bpf buf "  default: break;\n  }\n";
  bpf buf
    "  rt_trap(\"bad builtin call: %%s/%%lld\", g_bname[bid], nargs);\n}\n\n"

(* ------------------------------------------------------------------ *)
(* Function bodies                                                     *)
(* ------------------------------------------------------------------ *)

let fname (g : P.dfunc) = mangle g.P.didx g.P.dname

let goto_code (_g : P.dfunc) l =
  if l >= 0 then Printf.sprintf "goto L%d;" l
  else Printf.sprintf "goto BAD%d;" (-1 - l)

(** Base expression for a resolved scalar operand, or the trap statement
    the interpreter would raise on first execution. *)
let base_of ctx = function
  | P.Rframe i -> Ok (Printf.sprintf "fr%d" i)
  | P.Rglobal (t : Tag.t) ->
    ignore ctx;
    Ok (Printf.sprintf "rt_gbase(%d)" t.Tag.id)
  | P.Rnoframe (t : Tag.t) ->
    Error
      (Printf.sprintf "rt_trap(\"no frame storage for tag '%%s'\", \"%s\");"
         (c_escape t.Tag.name))
  | P.Rheap (t : Tag.t) ->
    Error
      (Printf.sprintf "rt_trap(\"direct access to heap tag '%%s'\", \"%s\");"
         (c_escape t.Tag.name))

let binop_fn : Instr.binop -> string = function
  | Instr.Add -> "rt_add"
  | Instr.Sub -> "rt_sub"
  | Instr.Mul -> "rt_mul"
  | Instr.Div -> "rt_div"
  | Instr.Rem -> "rt_rem"
  | Instr.Shl -> "rt_shl"
  | Instr.Shr -> "rt_shr"
  | Instr.Band -> "rt_band"
  | Instr.Bor -> "rt_bor"
  | Instr.Bxor -> "rt_bxor"
  | Instr.Lt -> "RT_LT"
  | Instr.Le -> "RT_LE"
  | Instr.Gt -> "RT_GT"
  | Instr.Ge -> "RT_GE"
  | Instr.Eq -> "rt_eq"
  | Instr.Ne -> "rt_ne"
  | Instr.Fadd -> "rt_fadd"
  | Instr.Fsub -> "rt_fsub"
  | Instr.Fmul -> "rt_fmul"
  | Instr.Fdiv -> "rt_fdiv"
  | Instr.Flt -> "rt_flt"
  | Instr.Fle -> "rt_fle"
  | Instr.Fgt -> "rt_fgt"
  | Instr.Fge -> "rt_fge"
  | Instr.Feq -> "rt_feq"
  | Instr.Fne -> "rt_fne"

let unop_fn : Instr.unop -> string = function
  | Instr.Neg -> "rt_neg"
  | Instr.Lnot -> "rt_lnot"
  | Instr.Bnot -> "rt_bnot"
  | Instr.Fneg -> "rt_fneg"
  | Instr.I2f -> "rt_i2f"
  | Instr.F2i -> "rt_f2i"

let emit_call ctx buf fi (c : P.dcall) =
  ignore fi;
  let n = Array.length c.P.cargs in
  bpf buf "  { ";
  if n > 0 then begin
    bpf buf "val ca[%d]; " n;
    Array.iteri (fun i r -> bpf buf "ca[%d] = r%d; " i r) c.P.cargs
  end
  else bpf buf "val *ca = 0; ";
  bpf buf "val rv; ";
  (match c.P.ctarget with
  | P.Dslot g -> bpf buf "rv = %s(%d, ca); " (fname g) n
  | P.Dbuiltin name ->
    bpf buf "rv = rt_builtin(%d, %d, %d, ca); " (builtin_id name) c.P.csite n
  | P.Dunknown name ->
    bpf buf
      "rv = vundef(); (void)ca; rt_trap(\"call to unknown function '%%s'\", \
       \"%s\"); "
      (c_escape name)
  | P.Dindirect r ->
    bpf buf
      "if (r%d.k == K_FUN) rv = rt_call_name(r%d.a, %d, %d, ca); else { rv \
       = vundef(); rt_badcall(r%d); } "
      r r c.P.csite n r);
  (if c.P.cret >= 0 then bpf buf "r%d = rv; " c.P.cret
   else bpf buf "(void)rv; ");
  ignore ctx;
  bpf buf "}\n"

let emit_instr ctx buf fi (i : P.dinstr) =
  bpf buf "  TICK(%d);\n" fi;
  match i with
  | P.Dloadi (d, V.Vint n) -> bpf buf "  r%d = vint(%LdLL);\n" d (Int64.of_int n)
  | P.Dloadi (d, V.Vflt f) ->
    bpf buf "  r%d = vflt(rt_bits(0x%LxULL));\n" d (Int64.bits_of_float f)
  | P.Dloadi _ -> failwith "Cgen: non-constant Dloadi"
  | P.Dloada (d, tr) -> (
    match base_of ctx tr with
    | Ok e -> bpf buf "  r%d = vptr(%s, 0);\n" d e
    | Error trap -> bpf buf "  %s\n" trap)
  | P.Dloadfp (d, n) -> bpf buf "  r%d = vfun(%d);\n" d (intern_fun ctx n)
  | P.Dunop (op, d, s) -> bpf buf "  r%d = %s(r%d);\n" d (unop_fn op) s
  | P.Dbinop (op, d, s1, s2) -> (
    match binop_fn op with
    | "RT_LT" -> bpf buf "  r%d = rt_icmp(r%d, r%d, 0);\n" d s1 s2
    | "RT_LE" -> bpf buf "  r%d = rt_icmp(r%d, r%d, 1);\n" d s1 s2
    | "RT_GT" -> bpf buf "  r%d = rt_icmp(r%d, r%d, 2);\n" d s1 s2
    | "RT_GE" -> bpf buf "  r%d = rt_icmp(r%d, r%d, 3);\n" d s1 s2
    | fn -> bpf buf "  r%d = %s(r%d, r%d);\n" d fn s1 s2)
  | P.Dcopy (d, s) -> bpf buf "  r%d = r%d;\n" d s
  | P.Dload_tag (d, tr) -> (
    bpf buf "  CLOAD(%d);\n" fi;
    match base_of ctx tr with
    | Ok e -> bpf buf "  r%d = rt_load(%s, 0);\n" d e
    | Error trap -> bpf buf "  %s\n" trap)
  | P.Dstore_tag (tr, s) -> (
    bpf buf "  CSTORE(%d);\n" fi;
    match base_of ctx tr with
    | Ok e -> bpf buf "  rt_store(%s, 0, r%d);\n" e s
    | Error trap -> bpf buf "  %s\n" trap)
  | P.Dloadg (d, a, ts) ->
    bpf buf "  CLOAD(%d);\n" fi;
    bpf buf "  if (r%d.k == K_PTR) { " a;
    if not (Tagset.is_univ ts) then
      bpf buf "rt_check_ts(r%d.a, ts_%d, \"Load\", ts_pp_%d); " a
        (tagset_id ctx ts) (tagset_id ctx ts);
    bpf buf "r%d = rt_load(r%d.a, r%d.b); } else rt_badload(r%d);\n" d a a a
  | P.Dstoreg (a, s, ts) ->
    bpf buf "  CSTORE(%d);\n" fi;
    bpf buf "  if (r%d.k == K_PTR) { " a;
    if not (Tagset.is_univ ts) then
      bpf buf "rt_check_ts(r%d.a, ts_%d, \"Store\", ts_pp_%d); " a
        (tagset_id ctx ts) (tagset_id ctx ts);
    bpf buf "rt_store(r%d.a, r%d.b, r%d); } else rt_badstore(r%d);\n" a a s a
  | P.Dcall c -> emit_call ctx buf fi c
  | P.Dtrap msg -> bpf buf "  rt_trap(\"%%s\", \"%s\");\n" (c_escape msg)

let emit_func ctx buf (g : P.dfunc) =
  let fi = g.P.didx in
  bpf buf "static val %s(i64 nargs, val *args) {\n" (fname g);
  bpf buf "  (void)args;\n";
  bpf buf
    "  if (++g_depth > g_maxdepth) rt_limit(\"call stack overflow (max \
     depth %%lld)\", g_maxdepth);\n";
  bpf buf "  if (nargs != %d) rt_trap(\"arity mismatch calling %%s\", \"%s\");\n"
    g.P.darity (c_escape g.P.dname);
  for r = 0 to g.P.dnreg - 1 do
    bpf buf "  val r%d = vundef(); (void)r%d;\n" r r
  done;
  Array.iteri (fun i p -> bpf buf "  r%d = args[%d];\n" p i) g.P.dparams;
  Array.iteri
    (fun i (t : Tag.t) ->
      bpf buf "  i64 fr%d = rt_alloc(%d, %d); (void)fr%d;\n" i t.Tag.id
        t.Tag.size i)
    g.P.dlocals;
  bpf buf "  val rret = vundef();\n";
  bpf buf "  %s\n" (goto_code g g.P.dentry);
  Array.iteri
    (fun bi (b : P.dblock) ->
      bpf buf "L%d:\n" bi;
      Array.iter (emit_instr ctx buf fi) b.P.dinstrs;
      bpf buf "  TICK(%d);\n" fi;
      match b.P.dterm with
      | P.Djump l -> bpf buf "  %s\n" (goto_code g l)
      | P.Dcbr (r, a, bb) ->
        bpf buf "  if (rt_truthy(r%d)) { %s } else { %s }\n" r
          (goto_code g a) (goto_code g bb)
      | P.Dret r ->
        if r < 0 then bpf buf "  goto Lepi;\n"
        else bpf buf "  rret = r%d; goto Lepi;\n" r)
    g.P.dblocks;
  Array.iteri
    (fun i lbl ->
      bpf buf "BAD%d:\n  rt_invalid(\"%%s\", \"%s\");\n" i
        (c_escape ("Func.block: no block " ^ lbl)))
    g.P.dbad;
  bpf buf "Lepi:\n";
  Array.iteri (fun i _ -> bpf buf "  rt_release(fr%d);\n" i) g.P.dlocals;
  bpf buf "  g_depth--;\n  return rret;\n}\n\n"

(* ------------------------------------------------------------------ *)
(* Whole program                                                       *)
(* ------------------------------------------------------------------ *)

let emit (prog : Program.t) : string =
  let dp = P.of_program prog in
  let ntags = Tag.Table.count prog.Program.tags in
  let ctx =
    {
      prog;
      dp;
      ntags;
      synth = [];
      nsynth = 0;
      site_tag = Hashtbl.create 32;
      fun_ids = Hashtbl.create 16;
      fun_names = [];
      nfuns = 0;
      ts_ids = Hashtbl.create 32;
      tagsets = [];
      nts = 0;
    }
  in
  scan ctx;
  let nfuncs = Array.length dp.P.dfuncs in
  let buf = Buffer.create (1 lsl 16) in
  bpf buf "/* generated by %s — do not edit */\n" version;
  Buffer.add_string buf c_header;
  (* sizes next: the fixed runtime references them *)
  bpf buf "#define NFUNCS %d\n" nfuncs;
  bpf buf "#define NTS_BITS %d\n" ntags;
  bpf buf "static i64 g_fops[%d], g_floads[%d], g_fstores[%d];\n"
    (max nfuncs 1) (max nfuncs 1) (max nfuncs 1);
  bpf buf "static i64 g_gbase[%d];\n" (max ntags 1);
  (* tag names: table order, then synthetic heap tags *)
  bpf buf "static const char *g_tagname[] = {\n";
  for id = 0 to ntags - 1 do
    bpf buf "  \"%s\",\n" (c_escape (Tag.Table.get prog.Program.tags id).Tag.name)
  done;
  List.iter
    (fun (_, n) -> bpf buf "  \"%s\",\n" (c_escape n))
    (List.rev ctx.synth);
  bpf buf "  \"\"\n};\n";
  (* interned function-pointer names *)
  bpf buf "static const char *g_funname[] = {\n";
  List.iter (fun n -> bpf buf "  \"%s\",\n" (c_escape n)) (List.rev ctx.fun_names);
  bpf buf "  \"\"\n};\n";
  (* IR function names, didx order, for the trailer *)
  bpf buf "static const char *g_irname[] = {\n";
  Array.iter
    (fun (g : P.dfunc) -> bpf buf "  \"%s\",\n" (c_escape g.P.dname))
    dp.P.dfuncs;
  bpf buf "  \"\"\n};\n";
  (* call-site -> heap tag id *)
  let sites = Hashtbl.fold (fun s id acc -> (s, id) :: acc) ctx.site_tag [] in
  let max_site = List.fold_left (fun m (s, _) -> max m s) (-1) sites in
  bpf buf "static const i64 g_site_tag[] = {";
  for s = 0 to max_site do
    bpf buf " %dLL,"
      (match List.assoc_opt s sites with Some id -> id | None -> -1)
  done;
  bpf buf " -1LL };\n";
  bpf buf
    "static i64 rt_site_tag(i64 s) {\n\
    \  if (s < 0 || s > %dLL) _exit(9);\n\
    \  { i64 id = g_site_tag[s]; if (id < 0) _exit(9); return id; }\n}\n\n"
    max_site;
  Buffer.add_string buf runtime_prelude;
  Buffer.add_string buf trailer_runtime;
  (* tag-set bitsets + their pretty-printed forms for violation messages *)
  let words = max 1 ((ntags + 63) / 64) in
  List.iteri
    (fun i (ids, pps) ->
      let w = Array.make words 0L in
      List.iter
        (fun id ->
          if id >= 0 && id < ntags then
            w.(id / 64) <-
              Int64.logor w.(id / 64) (Int64.shift_left 1L (id mod 64)))
        ids;
      bpf buf "static const u64 ts_%d[%d] = {" i words;
      Array.iter (fun x -> bpf buf " 0x%LxULL," x) w;
      bpf buf " };\n";
      bpf buf "static const char *ts_pp_%d = \"%s\";\n" i (c_escape pps))
    (List.rev ctx.tagsets);
  Buffer.add_char buf '\n';
  (* forward declarations, then builtins, then indirect dispatch *)
  Array.iter
    (fun (g : P.dfunc) ->
      bpf buf "static val %s(i64 nargs, val *args);\n" (fname g))
    dp.P.dfuncs;
  Buffer.add_char buf '\n';
  emit_builtins buf;
  bpf buf "static val rt_call_name(i64 fid, i64 site, i64 nargs, val *args) {\n";
  bpf buf "  (void)site;\n  switch (fid) {\n";
  List.iteri
    (fun id n ->
      match Hashtbl.find_opt dp.P.by_name n with
      | Some g -> bpf buf "  case %d: return %s(nargs, args);\n" id (fname g)
      | None ->
        if Rp_minic.Builtins.is_builtin n then
          bpf buf "  case %d: return rt_builtin(%d, site, nargs, args);\n" id
            (builtin_id n))
    (List.rev ctx.fun_names);
  bpf buf "  default: break;\n  }\n";
  bpf buf "  rt_trap(\"call to unknown function '%%s'\", g_funname[fid]);\n}\n\n";
  (* function bodies *)
  Array.iter (emit_func ctx buf) dp.P.dfuncs;
  (* main: argv = trailer fuel maxdepth seed checktags budget *)
  bpf buf "int main(int argc, char **argv) {\n";
  bpf buf "  if (argc != 7) { fprintf(stderr, \"bad argv\\n\"); return 9; }\n";
  (* deep IR recursion lives on the C stack (the interpreter's frames
     lived on the OCaml heap), so lift the soft stack limit up front *)
  bpf buf
    "  { struct rlimit rl;\n\
    \    if (getrlimit(RLIMIT_STACK, &rl) == 0 && rl.rlim_cur != rl.rlim_max)\n\
    \      { rl.rlim_cur = rl.rlim_max; setrlimit(RLIMIT_STACK, &rl); } }\n";
  bpf buf "  g_trailer_path = argv[1];\n";
  bpf buf "  g_fuel = strtoll(argv[2], 0, 10);\n";
  bpf buf "  g_maxdepth = strtoll(argv[3], 0, 10);\n";
  bpf buf "  g_rng = strtoll(argv[4], 0, 10) & 0x3FFFFFFF;\n";
  bpf buf "  g_check_tags = atoi(argv[5]) != 0;\n";
  bpf buf "  g_budget = strtod(argv[6], 0);\n";
  bpf buf "  g_has_deadline = g_budget > 0;\n";
  bpf buf "  g_t0 = rt_now();\n";
  bpf buf "  setvbuf(stdout, g_obuf, _IOFBF, sizeof g_obuf);\n";
  bpf buf "  for (int i = 0; i < %d; i++) g_gbase[i] = -1;\n" (max ntags 1);
  (* globals: allocation order defines base numbering; init stores are
     direct cell writes, uncounted, exactly like Interp.run's prologue *)
  List.iter
    (fun ((t : Tag.t), init) ->
      bpf buf "  { i64 b = rt_alloc(%d, %d); obj *o = &g_objs[b - 1]; (void)o;\n"
        t.Tag.id t.Tag.size;
      bpf buf "    g_gbase[%d] = b;\n" t.Tag.id;
      (match init with
      | Program.Init_zero (Instr.Cint n) ->
        bpf buf "    for (i64 i = 0; i < %dLL; i++) o->cells[i] = vint(%LdLL);\n"
          t.Tag.size (Int64.of_int n)
      | Program.Init_zero (Instr.Cflt f) ->
        bpf buf
          "    for (i64 i = 0; i < %dLL; i++) o->cells[i] = \
           vflt(rt_bits(0x%LxULL));\n"
          t.Tag.size (Int64.bits_of_float f)
      | Program.Init_words ws ->
        let size = max t.Tag.size 0 in
        List.iteri
          (fun i c ->
            if i < size then
              match c with
              | Instr.Cint n ->
                bpf buf "    o->cells[%d] = vint(%LdLL);\n" i (Int64.of_int n)
              | Instr.Cflt f ->
                bpf buf "    o->cells[%d] = vflt(rt_bits(0x%LxULL));\n" i
                  (Int64.bits_of_float f)
            else if i = size then
              (* faithful to Array.set out of bounds in Memory.init_words *)
              bpf buf "    rt_invalid(\"%%s\", \"index out of bounds\");\n")
          ws);
      bpf buf "  }\n")
    prog.Program.globals;
  (match dp.P.dmain with
  | Some g ->
    bpf buf "  { val r = %s(0, (val *)0);\n" (fname g);
    bpf buf "    rt_trailer(\"ok\", 0, &r); }\n"
  | None ->
    bpf buf "  rt_invalid(\"%%s\", \"%s\");\n"
      (c_escape ("Program.func: no function " ^ dp.P.dmain_name)));
  bpf buf "  return 0;\n}\n";
  Buffer.contents buf
