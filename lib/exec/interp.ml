(** The instrumented IL interpreter.

    Executes a whole program from [main], producing its output, an output
    checksum, and dynamic operation counts — "each version was instrumented
    to record the total number of operations executed, stores executed, and
    loads executed" (§5).  Counts are kept for the whole program and per
    function.

    Classification (DESIGN.md §6): every executed instruction and terminator
    is one operation; loads are cLoad/sLoad/Load; stores are sStore/Store;
    iLoad and address materialization are plain operations.

    With [check_tags] enabled (the default), every pointer-based access is
    dynamically checked against its static tag set: the tag naming the
    object actually touched must belong to the operation's tag set.  This
    turns every program run into a soundness test for the MOD/REF and
    points-to analyses.

    The execution core runs on {!Precomp}'s dense form — blocks as a
    label-indexed array, instructions as arrays, calls resolved to callee
    slots with precomputed arities — compiled once per program version and
    cached, so the hot loop performs no hashtable probes and no list
    traversals.  Counts, output, and trap behaviour are bit-identical to
    the original list-walking interpreter. *)

open Rp_ir
module P = Precomp

type counts = {
  mutable ops : int;
  mutable loads : int;
  mutable stores : int;
}

let zero_counts () = { ops = 0; loads = 0; stores = 0 }

let add_counts a b =
  a.ops <- a.ops + b.ops;
  a.loads <- a.loads + b.loads;
  a.stores <- a.stores + b.stores

type result = {
  ret : Value.t;  (** main's return value *)
  output : string;
  checksum : int;  (** FNV-1a over the output bytes *)
  total : counts;
  per_func : (string * counts) list;  (** sorted by function name *)
}

exception Error = Value.Runtime_error

exception Resource_limit of string
(** Fuel exhaustion or call-stack overflow: the program exceeded an
    interpreter resource limit rather than performing an erroneous
    operation.  Kept distinct from {!Error} so drivers can report it with
    its own exit code and translation-validation oracles can treat a
    bounded run as inconclusive instead of a miscompile. *)

let resource_limit fmt = Fmt.kstr (fun s -> raise (Resource_limit s)) fmt

type state = {
  prog : Program.t;
  dprog : P.dprog;
  mem : Memory.t;
  gbase : int array;  (** tag id -> base for globals; -1 = no storage *)
  mutable rng : int;
  out : Buffer.t;
  mutable checksum : int;
  total : counts;
  fcounts : counts array;  (** per-function counts, indexed by [didx] *)
  fuel : int;
  check_tags : bool;
  max_depth : int;
  mutable depth : int;
  should_stop : unit -> bool;
      (** polled every 4096 operations; [true] aborts the run with
          {!Resource_limit} (wall-clock budgets for fuzz reducers) *)
}

let fnv_byte cs b = (cs lxor b) * 16777619 land 0x3FFFFFFFFFFFFFF

let emit_str st s =
  Buffer.add_string st.out s;
  String.iter (fun c -> st.checksum <- fnv_byte st.checksum (Char.code c)) s

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let call_builtin st name (args : Value.t list) site : Value.t =
  match (name, args) with
  | "malloc", [ n ] ->
    let size = Value.as_int n in
    if size < 0 then Value.error "malloc of negative size %d" size;
    let tag = Program.heap_tag st.prog site in
    let b = Memory.alloc st.mem ~tag ~size in
    Memory.zero_fill st.mem b;
    Value.Vptr (b, 0)
  | "free", [ Value.Vptr (b, 0) ] ->
    Memory.release st.mem b;
    Value.Vundef
  | "free", [ Value.Vint 0 ] -> Value.Vundef
  | "free", [ v ] -> Value.error "free of a non-base pointer %a" Value.pp v
  | "print_int", [ v ] ->
    emit_str st (string_of_int (Value.as_int v));
    emit_str st "\n";
    Value.Vundef
  | "print_float", [ v ] ->
    emit_str st (Printf.sprintf "%.6g" (Value.as_flt v));
    emit_str st "\n";
    Value.Vundef
  | "print_char", [ v ] ->
    emit_str st (String.make 1 (Char.chr (Value.as_int v land 0xff)));
    Value.Vundef
  | "rand", [] ->
    st.rng <- (st.rng * 1103515245) + 12345;
    st.rng <- st.rng land 0x3FFFFFFF;
    Value.Vint ((st.rng lsr 8) land 0x7FFF)
  | "srand", [ v ] ->
    st.rng <- Value.as_int v land 0x3FFFFFFF;
    Value.Vundef
  | "pow", [ a; b ] -> Value.Vflt (Float.pow (Value.as_flt a) (Value.as_flt b))
  | "sqrt", [ a ] -> Value.Vflt (sqrt (Value.as_flt a))
  | "sin", [ a ] -> Value.Vflt (sin (Value.as_flt a))
  | "cos", [ a ] -> Value.Vflt (cos (Value.as_flt a))
  | "exp", [ a ] -> Value.Vflt (exp (Value.as_flt a))
  | "log", [ a ] -> Value.Vflt (log (Value.as_flt a))
  | "fabs", [ a ] -> Value.Vflt (Float.abs (Value.as_flt a))
  | "abs", [ a ] -> Value.Vint (abs (Value.as_int a))
  | _ ->
    Value.error "bad builtin call: %s/%d" name (List.length args)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(** Resolve the base of a scalar memory operand in the current frame. *)
let tag_base st (frame : int array) (tr : P.tagref) =
  match tr with
  | P.Rframe i -> Array.unsafe_get frame i
  | P.Rglobal t ->
    let id = t.Tag.id in
    let b = if id < Array.length st.gbase then st.gbase.(id) else -1 in
    if b >= 0 then b
    else Value.error "no storage for global tag '%s'" t.Tag.name
  | P.Rnoframe t -> Value.error "no frame storage for tag '%s'" t.Tag.name
  | P.Rheap t -> Value.error "direct access to heap tag '%s'" t.Tag.name

let check_tagset st (tags : Tagset.t) base op =
  if st.check_tags && not (Tagset.is_univ tags) then begin
    let actual = Memory.obj_tag st.mem base in
    if not (Tagset.mem actual tags) then
      Value.error
        "tag-set violation in %s: object '%s' not in static tag set %a" op
        actual.Tag.name Tagset.pp tags
  end

let[@inline] tick st (fc : counts) =
  let t = st.total in
  t.ops <- t.ops + 1;
  fc.ops <- fc.ops + 1;
  if t.ops > st.fuel then
    resource_limit "fuel exhausted (%d operations)" st.fuel;
  if t.ops land 4095 = 0 && st.should_stop () then
    resource_limit "external stop after %d operations" t.ops

let[@inline] count_load st (fc : counts) =
  st.total.loads <- st.total.loads + 1;
  fc.loads <- fc.loads + 1

let[@inline] count_store st (fc : counts) =
  st.total.stores <- st.total.stores + 1;
  fc.stores <- fc.stores + 1

(** Enter [g] with arguments taken from the caller's registers through the
    call's precompiled [int array] ([main] enters with two empty arrays).
    Order of effects matches the list interpreter exactly: depth check,
    then arity check, then frame allocation, then the block loop. *)
let rec exec_dfunc st (g : P.dfunc) (caller_regs : Value.t array)
    (dargs : int array) : Value.t =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    resource_limit "call stack overflow (max depth %d)" st.max_depth;
  if Array.length dargs <> g.P.darity then
    Value.error "arity mismatch calling %s" g.P.dname;
  let regs = Array.make g.P.dnreg Value.Vundef in
  let params = g.P.dparams in
  for i = 0 to g.P.darity - 1 do
    regs.(params.(i)) <- caller_regs.(dargs.(i))
  done;
  (* frame: one fresh object per local tag, in declaration order *)
  let nlocals = Array.length g.P.dlocals in
  let frame = Array.make nlocals 0 in
  for i = 0 to nlocals - 1 do
    let t = g.P.dlocals.(i) in
    frame.(i) <- Memory.alloc st.mem ~tag:t ~size:t.Tag.size
  done;
  let fc = st.fcounts.(g.P.didx) in
  let ret = run_block st g regs frame fc g.P.dentry in
  (* pop the frame: locals die here, catching dangling pointers *)
  for i = 0 to nlocals - 1 do
    Memory.release st.mem frame.(i)
  done;
  st.depth <- st.depth - 1;
  ret

and run_block st (g : P.dfunc) regs frame fc (bi : int) : Value.t =
  if bi < 0 then
    (* faithful to [Func.block] on a missing label *)
    invalid_arg ("Func.block: no block " ^ g.P.dbad.(-1 - bi));
  let b = g.P.dblocks.(bi) in
  let ins = b.P.dinstrs in
  for k = 0 to Array.length ins - 1 do
    exec_instr st regs frame fc (Array.unsafe_get ins k)
  done;
  tick st fc;
  (* terminator *)
  match b.P.dterm with
  | P.Djump l -> run_block st g regs frame fc l
  | P.Dcbr (r, a, bb) ->
    run_block st g regs frame fc (if Value.truthy regs.(r) then a else bb)
  | P.Dret r -> if r < 0 then Value.Vundef else regs.(r)

and exec_instr st (regs : Value.t array) frame fc (i : P.dinstr) : unit =
  tick st fc;
  match i with
  | P.Dloadi (d, v) -> regs.(d) <- v
  | P.Dloada (d, tr) -> regs.(d) <- Value.Vptr (tag_base st frame tr, 0)
  | P.Dloadfp (d, n) -> regs.(d) <- Value.Vfun n
  | P.Dunop (op, d, s) -> regs.(d) <- Value.unop op regs.(s)
  | P.Dbinop (op, d, s1, s2) ->
    regs.(d) <- Value.binop op regs.(s1) regs.(s2)
  | P.Dcopy (d, s) -> regs.(d) <- regs.(s)
  | P.Dload_tag (d, tr) ->
    count_load st fc;
    regs.(d) <- Memory.load st.mem (tag_base st frame tr) 0
  | P.Dstore_tag (tr, s) ->
    count_store st fc;
    Memory.store st.mem (tag_base st frame tr) 0 regs.(s)
  | P.Dloadg (d, a, tags) -> (
    count_load st fc;
    match regs.(a) with
    | Value.Vptr (b, o) ->
      check_tagset st tags b "Load";
      regs.(d) <- Memory.load st.mem b o
    | v -> Value.error "Load through non-pointer %a" Value.pp v)
  | P.Dstoreg (a, s, tags) -> (
    count_store st fc;
    match regs.(a) with
    | Value.Vptr (b, o) ->
      check_tagset st tags b "Store";
      Memory.store st.mem b o regs.(s)
    | v -> Value.error "Store through non-pointer %a" Value.pp v)
  | P.Dcall c -> exec_call st regs c
  | P.Dtrap msg -> raise (Value.Runtime_error msg)

and exec_call st (regs : Value.t array) (c : P.dcall) : unit =
  let rv =
    match c.P.ctarget with
    | P.Dslot g -> exec_dfunc st g regs c.P.cargs
    | P.Dbuiltin name -> call_builtin st name (argv st regs c) c.P.csite
    | P.Dunknown name -> Value.error "call to unknown function '%s'" name
    | P.Dindirect r -> (
      match regs.(r) with
      | Value.Vfun n -> (
        match Hashtbl.find_opt st.dprog.P.by_name n with
        | Some g -> exec_dfunc st g regs c.P.cargs
        | None ->
          if Rp_minic.Builtins.is_builtin n then
            call_builtin st n (argv st regs c) c.P.csite
          else Value.error "call to unknown function '%s'" n)
      | v -> Value.error "indirect call through %a" Value.pp v)
  in
  if c.P.cret >= 0 then regs.(c.P.cret) <- rv

(** Argument values for a builtin call (builtins take lists; program
    functions copy registers directly and never build this). *)
and argv _st (regs : Value.t array) (c : P.dcall) : Value.t list =
  Array.to_list (Array.map (fun r -> regs.(r)) c.P.cargs)

(** Run [main] and return outputs plus dynamic counts. *)
let run ?(fuel = 400_000_000) ?(check_tags = true) ?(max_depth = 100_000)
    ?(seed = 12345) ?(should_stop = fun () -> false) ?deadline
    (prog : Program.t) : result =
  let should_stop =
    match deadline with
    | None -> should_stop
    | Some budget ->
      let t0 = Rp_support.Clock.now () in
      fun () -> should_stop () || Rp_support.Clock.now () -. t0 > budget
  in
  let dprog = P.get prog in
  let st =
    {
      prog;
      dprog;
      mem = Memory.create ();
      gbase = Array.make (Tag.Table.count prog.Program.tags) (-1);
      rng = seed land 0x3FFFFFFF;
      out = Buffer.create 256;
      checksum = 0x1505;
      total = zero_counts ();
      fcounts = Array.map (fun _ -> zero_counts ()) dprog.P.dfuncs;
      fuel;
      check_tags;
      max_depth;
      depth = 0;
      should_stop;
    }
  in
  (* allocate and initialize globals *)
  List.iter
    (fun ((t : Tag.t), init) ->
      let b = Memory.alloc st.mem ~tag:t ~size:t.Tag.size in
      if t.Tag.id < Array.length st.gbase then st.gbase.(t.Tag.id) <- b;
      (match init with
      | Program.Init_zero zero ->
        let o = Value.of_const zero in
        for i = 0 to t.Tag.size - 1 do
          Memory.store st.mem b i o
        done
      | Program.Init_words ws -> Memory.init_words st.mem b ws))
    st.prog.Program.globals;
  let main_df =
    match dprog.P.dmain with
    | Some g -> g
    | None -> invalid_arg ("Program.func: no function " ^ dprog.P.dmain_name)
  in
  let ret = exec_dfunc st main_df [||] [||] in
  let per_func =
    Array.to_list dprog.P.dfuncs
    |> List.filter_map (fun (g : P.dfunc) ->
           let c = st.fcounts.(g.P.didx) in
           (* a function that was entered ticked at least once *)
           if c.ops = 0 then None else Some (g.P.dname, c))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    ret;
    output = Buffer.contents st.out;
    checksum = st.checksum;
    total = st.total;
    per_func;
  }
