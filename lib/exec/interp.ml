(** The instrumented IL interpreter.

    Executes a whole program from [main], producing its output, an output
    checksum, and dynamic operation counts — "each version was instrumented
    to record the total number of operations executed, stores executed, and
    loads executed" (§5).  Counts are kept for the whole program and per
    function.

    Classification (DESIGN.md §6): every executed instruction and terminator
    is one operation; loads are cLoad/sLoad/Load; stores are sStore/Store;
    iLoad and address materialization are plain operations.

    With [check_tags] enabled (the default), every pointer-based access is
    dynamically checked against its static tag set: the tag naming the
    object actually touched must belong to the operation's tag set.  This
    turns every program run into a soundness test for the MOD/REF and
    points-to analyses. *)

open Rp_ir

type counts = {
  mutable ops : int;
  mutable loads : int;
  mutable stores : int;
}

let zero_counts () = { ops = 0; loads = 0; stores = 0 }

let add_counts a b =
  a.ops <- a.ops + b.ops;
  a.loads <- a.loads + b.loads;
  a.stores <- a.stores + b.stores

type result = {
  ret : Value.t;  (** main's return value *)
  output : string;
  checksum : int;  (** FNV-1a over the output bytes *)
  total : counts;
  per_func : (string * counts) list;  (** sorted by function name *)
}

exception Error = Value.Runtime_error

exception Resource_limit of string
(** Fuel exhaustion or call-stack overflow: the program exceeded an
    interpreter resource limit rather than performing an erroneous
    operation.  Kept distinct from {!Error} so drivers can report it with
    its own exit code and translation-validation oracles can treat a
    bounded run as inconclusive instead of a miscompile. *)

let resource_limit fmt = Fmt.kstr (fun s -> raise (Resource_limit s)) fmt

type state = {
  prog : Program.t;
  mem : Memory.t;
  globals : (int, int) Hashtbl.t;  (** tag id -> base *)
  mutable rng : int;
  out : Buffer.t;
  mutable checksum : int;
  total : counts;
  per_func : (string, counts) Hashtbl.t;
  fuel : int;
  check_tags : bool;
  max_depth : int;
  mutable depth : int;
  should_stop : unit -> bool;
      (** polled every 4096 operations; [true] aborts the run with
          {!Resource_limit} (wall-clock budgets for fuzz reducers) *)
}

let fnv_byte cs b = (cs lxor b) * 16777619 land 0x3FFFFFFFFFFFFFF

let emit_str st s =
  Buffer.add_string st.out s;
  String.iter (fun c -> st.checksum <- fnv_byte st.checksum (Char.code c)) s

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let call_builtin st name (args : Value.t list) site : Value.t =
  match (name, args) with
  | "malloc", [ n ] ->
    let size = Value.as_int n in
    if size < 0 then Value.error "malloc of negative size %d" size;
    let tag = Program.heap_tag st.prog site in
    let b = Memory.alloc st.mem ~tag ~size in
    Memory.zero_fill st.mem b;
    Value.Vptr (b, 0)
  | "free", [ Value.Vptr (b, 0) ] ->
    Memory.release st.mem b;
    Value.Vundef
  | "free", [ Value.Vint 0 ] -> Value.Vundef
  | "free", [ v ] -> Value.error "free of a non-base pointer %a" Value.pp v
  | "print_int", [ v ] ->
    emit_str st (string_of_int (Value.as_int v));
    emit_str st "\n";
    Value.Vundef
  | "print_float", [ v ] ->
    emit_str st (Printf.sprintf "%.6g" (Value.as_flt v));
    emit_str st "\n";
    Value.Vundef
  | "print_char", [ v ] ->
    emit_str st (String.make 1 (Char.chr (Value.as_int v land 0xff)));
    Value.Vundef
  | "rand", [] ->
    st.rng <- (st.rng * 1103515245) + 12345;
    st.rng <- st.rng land 0x3FFFFFFF;
    Value.Vint ((st.rng lsr 8) land 0x7FFF)
  | "srand", [ v ] ->
    st.rng <- Value.as_int v land 0x3FFFFFFF;
    Value.Vundef
  | "pow", [ a; b ] -> Value.Vflt (Float.pow (Value.as_flt a) (Value.as_flt b))
  | "sqrt", [ a ] -> Value.Vflt (sqrt (Value.as_flt a))
  | "sin", [ a ] -> Value.Vflt (sin (Value.as_flt a))
  | "cos", [ a ] -> Value.Vflt (cos (Value.as_flt a))
  | "exp", [ a ] -> Value.Vflt (exp (Value.as_flt a))
  | "log", [ a ] -> Value.Vflt (log (Value.as_flt a))
  | "fabs", [ a ] -> Value.Vflt (Float.abs (Value.as_flt a))
  | "abs", [ a ] -> Value.Vint (abs (Value.as_int a))
  | _ ->
    Value.error "bad builtin call: %s/%d" name (List.length args)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let func_counts st fname =
  match Hashtbl.find_opt st.per_func fname with
  | Some c -> c
  | None ->
    let c = zero_counts () in
    Hashtbl.replace st.per_func fname c;
    c

(** Resolve the base of a tag in the current frame. *)
let tag_base st frame (t : Tag.t) =
  match t.Tag.storage with
  | Tag.Global -> (
    match Hashtbl.find_opt st.globals t.Tag.id with
    | Some b -> b
    | None -> Value.error "no storage for global tag '%s'" t.Tag.name)
  | Tag.Local _ | Tag.Spill _ -> (
    match Hashtbl.find_opt frame t.Tag.id with
    | Some b -> b
    | None -> Value.error "no frame storage for tag '%s'" t.Tag.name)
  | Tag.Heap _ -> Value.error "direct access to heap tag '%s'" t.Tag.name

let check_tagset st (tags : Tagset.t) base op =
  if st.check_tags && not (Tagset.is_univ tags) then begin
    let actual = Memory.obj_tag st.mem base in
    if not (Tagset.mem actual tags) then
      Value.error
        "tag-set violation in %s: object '%s' not in static tag set %a" op
        actual.Tag.name Tagset.pp tags
  end

let rec exec_func st (fname : string) (args : Value.t list) : Value.t =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    resource_limit "call stack overflow (max depth %d)" st.max_depth;
  let f = Program.func st.prog fname in
  if List.length args <> List.length f.Func.params then
    Value.error "arity mismatch calling %s" fname;
  let regs = Array.make (max f.Func.nreg 1) Value.Vundef in
  List.iter2 (fun p v -> regs.(p) <- v) f.Func.params args;
  (* frame: one fresh object per local tag *)
  let frame = Hashtbl.create 8 in
  List.iter
    (fun (t : Tag.t) ->
      Hashtbl.replace frame t.Tag.id
        (Memory.alloc st.mem ~tag:t ~size:t.Tag.size))
    f.Func.local_tags;
  let fc = func_counts st fname in
  let tick () =
    st.total.ops <- st.total.ops + 1;
    fc.ops <- fc.ops + 1;
    if st.total.ops > st.fuel then
      resource_limit "fuel exhausted (%d operations)" st.fuel;
    if st.total.ops land 4095 = 0 && st.should_stop () then
      resource_limit "external stop after %d operations" st.total.ops
  in
  let count_load () =
    st.total.loads <- st.total.loads + 1;
    fc.loads <- fc.loads + 1
  in
  let count_store () =
    st.total.stores <- st.total.stores + 1;
    fc.stores <- fc.stores + 1
  in
  let exec_instr (i : Instr.t) : unit =
    tick ();
    match i with
    | Instr.Loadi (d, c) -> regs.(d) <- Value.of_const c
    | Instr.Loada (d, t) -> regs.(d) <- Value.Vptr (tag_base st frame t, 0)
    | Instr.Loadfp (d, n) -> regs.(d) <- Value.Vfun n
    | Instr.Unop (op, d, s) -> regs.(d) <- Value.unop op regs.(s)
    | Instr.Binop (op, d, s1, s2) ->
      regs.(d) <- Value.binop op regs.(s1) regs.(s2)
    | Instr.Copy (d, s) -> regs.(d) <- regs.(s)
    | Instr.Loadc (d, t) | Instr.Loads (d, t) ->
      count_load ();
      regs.(d) <- Memory.load st.mem (tag_base st frame t) 0
    | Instr.Stores (t, s) ->
      count_store ();
      Memory.store st.mem (tag_base st frame t) 0 regs.(s)
    | Instr.Loadg (d, a, tags) -> (
      count_load ();
      match regs.(a) with
      | Value.Vptr (b, o) ->
        check_tagset st tags b "Load";
        regs.(d) <- Memory.load st.mem b o
      | v -> Value.error "Load through non-pointer %a" Value.pp v)
    | Instr.Storeg (a, s, tags) -> (
      count_store ();
      match regs.(a) with
      | Value.Vptr (b, o) ->
        check_tagset st tags b "Store";
        Memory.store st.mem b o regs.(s)
      | v -> Value.error "Store through non-pointer %a" Value.pp v)
    | Instr.Call c -> (
      let argv = List.map (fun r -> regs.(r)) c.Instr.args in
      let callee =
        match c.Instr.target with
        | Instr.Direct n -> n
        | Instr.Indirect r -> (
          match regs.(r) with
          | Value.Vfun n -> n
          | v -> Value.error "indirect call through %a" Value.pp v)
      in
      let rv =
        if Program.func_opt st.prog callee <> None then
          exec_func st callee argv
        else if Rp_minic.Builtins.is_builtin callee then
          call_builtin st callee argv c.Instr.site
        else Value.error "call to unknown function '%s'" callee
      in
      match c.Instr.ret with
      | Some d -> regs.(d) <- rv
      | None -> ())
    | Instr.Phi _ -> Value.error "phi instruction reached the interpreter"
  in
  let rec run_block (l : Instr.label) : Value.t =
    let b = Func.block f l in
    List.iter exec_instr b.Block.instrs;
    tick ();
    (* terminator *)
    match b.Block.term with
    | Instr.Jump l -> run_block l
    | Instr.Cbr (r, a, bb) ->
      if Value.truthy regs.(r) then run_block a else run_block bb
    | Instr.Ret None -> Value.Vundef
    | Instr.Ret (Some r) -> regs.(r)
  in
  let ret = run_block f.Func.entry in
  (* pop the frame: locals die here, catching dangling pointers *)
  Hashtbl.iter (fun _ b -> Memory.release st.mem b) frame;
  st.depth <- st.depth - 1;
  ret

(** Run [main] and return outputs plus dynamic counts. *)
let run ?(fuel = 400_000_000) ?(check_tags = true) ?(max_depth = 100_000)
    ?(seed = 12345) ?(should_stop = fun () -> false) (prog : Program.t) :
    result =
  let st =
    {
      prog;
      mem = Memory.create ();
      globals = Hashtbl.create 64;
      rng = seed land 0x3FFFFFFF;
      out = Buffer.create 256;
      checksum = 0x1505;
      total = zero_counts ();
      per_func = Hashtbl.create 16;
      fuel;
      check_tags;
      max_depth;
      depth = 0;
      should_stop;
    }
  in
  (* allocate and initialize globals *)
  List.iter
    (fun ((t : Tag.t), init) ->
      let b = Memory.alloc st.mem ~tag:t ~size:t.Tag.size in
      Hashtbl.replace st.globals t.Tag.id b;
      (match init with
      | Program.Init_zero zero ->
        let o = Value.of_const zero in
        for i = 0 to t.Tag.size - 1 do
          Memory.store st.mem b i o
        done
      | Program.Init_words ws -> Memory.init_words st.mem b ws))
    st.prog.Program.globals;
  let ret = exec_func st st.prog.Program.main [] in
  let per_func =
    Hashtbl.fold (fun n c acc -> (n, c) :: acc) st.per_func []
    |> List.sort compare
  in
  {
    ret;
    output = Buffer.contents st.out;
    checksum = st.checksum;
    total = st.total;
    per_func;
  }
