(** The interpreter's precompiled program form.

    {!Rp_ir.Program.t} is a pass-friendly representation: blocks live in a
    label-keyed hashtable, instruction sequences are lists, call arguments
    are lists, and every branch transition or call pays a lookup.  The
    interpreter's hot loop wants the opposite trade-off, so each function
    is compiled {e once} into a dense, fully resolved form:

    - blocks become an array indexed by a precomputed label index, so a
      branch is an integer jump instead of a [Func.block] hashtable probe;
    - instruction lists become arrays (sequential access, no pointer
      chasing);
    - call argument lists become [int array]s, arities are precomputed
      (the list interpreter paid two [List.length] per call), and direct
      call targets are resolved to their callee's slot up front — which
      also gives each activation its per-function dynamic-count record
      without a hashtable probe per call;
    - constants are converted to runtime {!Value.t}s at compile time;
    - scalar memory operands are resolved to frame slots or global tags,
      so a frame access is an array index instead of a hashtable probe.

    Resolution is {e lazy-faithful}: anything the list interpreter only
    diagnosed when an instruction actually executed — a branch to a
    missing block, a reference to a tag with no storage, a phi that
    survived SSA destruction, a call to an unknown function — compiles to
    a form that raises the {e identical} exception at execution time, and
    never at compile time.  Dynamic counts, traps, and output are
    bit-identical to the list interpreter by construction.

    Compiled forms are cached per physical [Program.t] (keyed additionally
    on {!Rp_ir.Program.touch}'s version stamp, which every guarded
    pipeline pass bumps), so repeated executions of an unchanged program —
    the bench grid, the per-pass oracle, the test suite — compile once.
    The cache is domain-local: parallel workers never contend on it. *)

open Rp_ir

(** A scalar memory operand (sLoad/sStore/addr-of), resolved against the
    owning function's frame layout. *)
type tagref =
  | Rglobal of Tag.t  (** global storage: index the run's global-base table *)
  | Rframe of int  (** this function's frame, slot index *)
  | Rnoframe of Tag.t
      (** Local/Spill storage not in this function's frame — faithful to
          the list interpreter, this errors only if executed *)
  | Rheap of Tag.t  (** direct access to heap storage: error if executed *)

type dtarget =
  | Dslot of dfunc  (** direct call, resolved to the callee's slot *)
  | Dbuiltin of string
  | Dunknown of string  (** direct call to a name that is neither *)
  | Dindirect of int  (** call through a function pointer in this register *)

and dcall = {
  ctarget : dtarget;
  cargs : int array;
  cret : int;  (** destination register, or -1 for none *)
  csite : int;  (** call-site id (names the heap site for [malloc]) *)
}

and dinstr =
  | Dloadi of int * Value.t  (** constant pre-converted to a runtime value *)
  | Dloada of int * tagref
  | Dloadfp of int * string
  | Dunop of Instr.unop * int * int
  | Dbinop of Instr.binop * int * int * int
  | Dcopy of int * int
  | Dload_tag of int * tagref  (** Loadc and Loads: identical execution *)
  | Dstore_tag of tagref * int
  | Dloadg of int * int * Tagset.t
  | Dstoreg of int * int * Tagset.t
  | Dcall of dcall
  | Dtrap of string  (** an instruction that traps if executed (phi) *)

(** Block successors are label {e indices}: [>= 0] indexes [dblocks];
    a negative value [v] names the missing label [dbad.(-1 - v)] and
    reproduces [Func.block]'s [Invalid_argument] when the edge is taken. *)
and dterm =
  | Djump of int
  | Dcbr of int * int * int
  | Dret of int  (** returned register, or -1 for none *)

and dblock = { dinstrs : dinstr array; dterm : dterm }

and dfunc = {
  dname : string;
  didx : int;  (** slot in {!dprog.dfuncs}; indexes per-run count arrays *)
  dparams : int array;
  darity : int;
  dnreg : int;  (** register file size, >= 1 *)
  dlocals : Tag.t array;  (** frame layout: one fresh object per activation *)
  mutable dentry : int;  (** entry label index (negative if missing) *)
  mutable dblocks : dblock array;  (** filled in phase 2 (calls link here) *)
  mutable dbad : string array;
      (** missing labels, addressed by negative indices *)
}

type dprog = {
  dfuncs : dfunc array;  (** in [Program.func_order] order *)
  by_name : (string, dfunc) Hashtbl.t;
  dmain : dfunc option;  (** [None] reproduces [Program.func]'s error *)
  dmain_name : string;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile_func_shell idx (f : Func.t) : dfunc =
  {
    dname = f.Func.name;
    didx = idx;
    dparams = Array.of_list f.Func.params;
    darity = List.length f.Func.params;
    dnreg = max f.Func.nreg 1;
    dlocals = Array.of_list f.Func.local_tags;
    dentry = 0;
    dblocks = [||];
    dbad = [||];
  }

(** Compile [f]'s body into [df], in place (calls elsewhere in the program
    already hold [df] as their [Dslot]).  [lookup] resolves direct callee
    names program-wide. *)
let compile_body (lookup : string -> dtarget) (f : Func.t) (df : dfunc) : unit
    =
  (* every block the list interpreter could reach: layout order first,
     then any stragglers present in the table but missing from the order
     list (sorted by label for determinism) *)
  let labels =
    let in_order = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace in_order l ()) f.Func.order;
    let extra =
      Hashtbl.fold
        (fun l _ acc -> if Hashtbl.mem in_order l then acc else l :: acc)
        f.Func.blocks []
      |> List.sort String.compare
    in
    Array.of_list (List.filter (Hashtbl.mem f.Func.blocks) f.Func.order @ extra)
  in
  let index = Hashtbl.create (Array.length labels * 2) in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let bad = ref [] and nbad = ref 0 in
  let resolve_label l =
    match Hashtbl.find_opt index l with
    | Some i -> i
    | None ->
      (* executing this edge must raise exactly [Func.block]'s error *)
      bad := l :: !bad;
      incr nbad;
      - !nbad
  in
  let local_slot = Hashtbl.create 8 in
  Array.iteri
    (fun i (t : Tag.t) -> Hashtbl.replace local_slot t.Tag.id i)
    df.dlocals;
  let resolve_tag (t : Tag.t) =
    match t.Tag.storage with
    | Tag.Global -> Rglobal t
    | Tag.Local _ | Tag.Spill _ -> (
      match Hashtbl.find_opt local_slot t.Tag.id with
      | Some i -> Rframe i
      | None -> Rnoframe t)
    | Tag.Heap _ -> Rheap t
  in
  let compile_instr (i : Instr.t) : dinstr =
    match i with
    | Instr.Loadi (d, c) -> Dloadi (d, Value.of_const c)
    | Instr.Loada (d, t) -> Dloada (d, resolve_tag t)
    | Instr.Loadfp (d, n) -> Dloadfp (d, n)
    | Instr.Unop (op, d, s) -> Dunop (op, d, s)
    | Instr.Binop (op, d, s1, s2) -> Dbinop (op, d, s1, s2)
    | Instr.Copy (d, s) -> Dcopy (d, s)
    | Instr.Loadc (d, t) | Instr.Loads (d, t) -> Dload_tag (d, resolve_tag t)
    | Instr.Stores (t, s) -> Dstore_tag (resolve_tag t, s)
    | Instr.Loadg (d, a, tags) -> Dloadg (d, a, tags)
    | Instr.Storeg (a, s, tags) -> Dstoreg (a, s, tags)
    | Instr.Call c ->
      let ctarget =
        match c.Instr.target with
        | Instr.Direct n -> lookup n
        | Instr.Indirect r -> Dindirect r
      in
      Dcall
        {
          ctarget;
          cargs = Array.of_list c.Instr.args;
          cret = (match c.Instr.ret with Some r -> r | None -> -1);
          csite = c.Instr.site;
        }
    | Instr.Phi _ -> Dtrap "phi instruction reached the interpreter"
  in
  let compile_term (t : Instr.term) : dterm =
    match t with
    | Instr.Jump l -> Djump (resolve_label l)
    | Instr.Cbr (r, a, b) -> Dcbr (r, resolve_label a, resolve_label b)
    | Instr.Ret None -> Dret (-1)
    | Instr.Ret (Some r) -> Dret r
  in
  let dblocks =
    Array.map
      (fun l ->
        let b = Hashtbl.find f.Func.blocks l in
        {
          dinstrs = Array.of_list (List.map compile_instr b.Block.instrs);
          dterm = compile_term b.Block.term;
        })
      labels
  in
  df.dblocks <- dblocks;
  df.dentry <- resolve_label f.Func.entry;
  df.dbad <- Array.of_list (List.rev !bad)

(** Compile a whole program.  Pure: no caching, no mutation of [p]. *)
let of_program (p : Program.t) : dprog =
  let funcs = Program.funcs p in
  let shells = List.mapi compile_func_shell funcs in
  let by_name = Hashtbl.create (List.length shells * 2) in
  List.iter (fun df -> Hashtbl.replace by_name df.dname df) shells;
  let lookup n =
    (* same resolution order as the list interpreter: program functions
       shadow builtins; anything else errors at the call *)
    match Hashtbl.find_opt by_name n with
    | Some df -> Dslot df
    | None ->
      if Rp_minic.Builtins.is_builtin n then Dbuiltin n else Dunknown n
  in
  List.iter2 (compile_body lookup) funcs shells;
  let dfuncs = Array.of_list shells in
  {
    dfuncs;
    by_name;
    dmain = Hashtbl.find_opt by_name p.Program.main;
    dmain_name = p.Program.main;
  }

(* ------------------------------------------------------------------ *)
(* The cache                                                           *)
(* ------------------------------------------------------------------ *)

type entry = { eprog : Program.t; eversion : int; edprog : dprog }

(** Domain-local so parallel workers ({!Rp_support.Pool}) never contend;
    each domain runs one job at a time, so a per-domain cache is exactly
    as effective as a shared one for the pool's access pattern.  Small and
    LRU-ordered: one-shot programs (the per-pass oracle round-trips a
    fresh [Program.t] per execution) wash through without evicting a
    long-lived benchmark program's entry for long. *)
let cache_key : entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let max_entries = 4

(* cache telemetry, cross-domain (the invalidation tests read these) *)
let hits = Atomic.make 0
let misses = Atomic.make 0

let cache_stats () = (Atomic.get hits, Atomic.get misses)

let reset_cache_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0

(** The compiled form of [p]: cached if this physical program was compiled
    before at its current {!Rp_ir.Program.touch} version, freshly compiled
    (and cached) otherwise. *)
let get (p : Program.t) : dprog =
  let cache = Domain.DLS.get cache_key in
  let version = p.Program.version in
  match
    List.find_opt (fun e -> e.eprog == p && e.eversion = version) !cache
  with
  | Some e ->
    Atomic.incr hits;
    (* move to front: recently run programs survive oracle churn *)
    if (List.hd !cache).eprog != p then
      cache := e :: List.filter (fun e' -> e' != e) !cache;
    e.edprog
  | None ->
    Atomic.incr misses;
    let d = of_program p in
    let keep =
      List.filteri
        (fun i e -> e.eprog != p && i < max_entries - 1)
        !cache
    in
    cache := { eprog = p; eversion = version; edprog = d } :: keep;
    d

