(** Precompiled dense program form for the interpreter: label-indexed
    block arrays, instruction arrays, resolved call targets with [int
    array] arguments and precomputed arities, frame-slot-resolved scalar
    operands.  Faithful to the list-walking interpreter: anything that
    only failed when executed still only fails when executed, with the
    identical exception.  See the implementation header for the full
    contract. *)

open Rp_ir

type tagref =
  | Rglobal of Tag.t
  | Rframe of int
  | Rnoframe of Tag.t
  | Rheap of Tag.t

type dtarget =
  | Dslot of dfunc
  | Dbuiltin of string
  | Dunknown of string
  | Dindirect of int

and dcall = {
  ctarget : dtarget;
  cargs : int array;
  cret : int;  (** -1 for none *)
  csite : int;
}

and dinstr =
  | Dloadi of int * Value.t
  | Dloada of int * tagref
  | Dloadfp of int * string
  | Dunop of Instr.unop * int * int
  | Dbinop of Instr.binop * int * int * int
  | Dcopy of int * int
  | Dload_tag of int * tagref
  | Dstore_tag of tagref * int
  | Dloadg of int * int * Tagset.t
  | Dstoreg of int * int * Tagset.t
  | Dcall of dcall
  | Dtrap of string

and dterm =
  | Djump of int
  | Dcbr of int * int * int
  | Dret of int  (** -1 for none *)

and dblock = { dinstrs : dinstr array; dterm : dterm }

and dfunc = {
  dname : string;
  didx : int;
  dparams : int array;
  darity : int;
  dnreg : int;
  dlocals : Tag.t array;
  mutable dentry : int;
  mutable dblocks : dblock array;
  mutable dbad : string array;
}

type dprog = {
  dfuncs : dfunc array;
  by_name : (string, dfunc) Hashtbl.t;
  dmain : dfunc option;
  dmain_name : string;
}

val of_program : Program.t -> dprog
(** Compile, bypassing the cache.  Pure. *)

val get : Program.t -> dprog
(** Compile through the domain-local cache, keyed on the physical program
    and its {!Rp_ir.Program.touch} version stamp: a hit requires both to
    match, so any pass that ran since the last execution forces a fresh
    compile. *)

val cache_stats : unit -> int * int
(** Cross-domain [(hits, misses)] counters since the last reset. *)

val reset_cache_stats : unit -> unit
