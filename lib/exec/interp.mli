(** The instrumented IL interpreter.

    Executes a program from [main] and reports its output, an FNV-1a output
    checksum, and the dynamic operation counts the paper's evaluation is
    built on: total operations, loads (cLoad/sLoad/Load), and stores
    (sStore/Store), whole-program and per-function.

    With [check_tags] (default on), every pointer-based access dynamically
    verifies that the tag of the object actually touched belongs to the
    operation's static tag set — each run doubles as a soundness check of
    MOD/REF and points-to analysis. *)

open Rp_ir

type counts = {
  mutable ops : int;
  mutable loads : int;
  mutable stores : int;
}

val zero_counts : unit -> counts
val add_counts : counts -> counts -> unit

type result = {
  ret : Value.t;  (** [main]'s return value *)
  output : string;
  checksum : int;
  total : counts;
  per_func : (string * counts) list;  (** sorted by function name *)
}

exception Error of string
(** Alias of {!Value.Runtime_error}: traps (bounds, use-after-free,
    undefined values, division by zero, tag-set violations). *)

exception Resource_limit of string
(** Fuel exhaustion or call-stack overflow — the program exceeded an
    interpreter resource limit rather than trapping.  Reported by [rpcc]
    with its own exit code (3). *)

(** Run the program.
    @param fuel maximum executed operations (default 4×10⁸)
    @param check_tags dynamic tag-set verification (default on)
    @param max_depth call-stack limit (default 100000)
    @param seed PRNG seed for the [rand] builtin (default 12345)
    @param should_stop polled every 4096 operations; returning [true]
    aborts the run with {!Resource_limit} — wall-clock budgets for the
    fuzz reducer (default: never)
    @param deadline wall-clock budget in seconds for this run; folded
    into the [should_stop] poll, so exceeding it aborts with
    {!Resource_limit} just like an external stop (default: none).  This
    is how the supervised pool's per-job deadlines reach the
    interpreter. *)
val run :
  ?fuel:int ->
  ?check_tags:bool ->
  ?max_depth:int ->
  ?seed:int ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  Program.t ->
  result
