(** Pointer-based register promotion — the paper's §3.3 extension.

    "It finds memory references r where the base register b is invariant in
    a loop and the only accesses in the loop to the tags accessed by r are
    through the invariant base register b.  This algorithm relies on
    loop-invariant code motion to identify the loop-invariant base registers
    and place the computation of these registers outside a loop.  When it
    finds memory references satisfying these conditions, it promotes the
    reference into a register using the same rewriting scheme as before — a
    load before each loop entry, a store at each loop exit, and a copy at
    each reference."

    This is what turns the Figure 3 loop

    {v for (j=0; j<DIM_Y; j++) B[i] += A[i][j]; v}

    into a loop over a scalar [rb], with the load of [B[i]] hoisted to the
    landing pad and the store sunk to the exit.

    Run it {e after} LICM so address computations sit outside loops.

    {b Strided bases.}  The paper's formulation asks for a {e loop-invariant}
    base register and leans on LICM to expose one.  That misses the
    pointer-recurrence shapes of real C — [p = p + c] walks advanced by an
    outer loop, and row bases like [&A\[i\]\[0\]] recomputed per outer
    iteration — because such a base has several reaching definitions, even
    though none of them lives in the loop under consideration.  Following
    the closed-form/recurrence view of pointer iteration (Lepori et al.,
    {e Iterating Pointers}, 2025), we only require that the base is a
    recurrence {e of an enclosing loop}: every definition of the base sits
    outside the candidate loop (so its value cannot change while the loop
    runs) and at least one definition dominates the landing pad (so the pad
    load reads a well-defined address).  Aliasing discipline is unchanged:
    the group's tag set still comes from MOD/REF + points-to facts, and any
    other in-loop access that may touch those tags blocks the promotion.

    Like the paper's promoter, the inserted landing-pad load is speculative
    with respect to a zero-trip loop; it can only differ from the original
    program when the original would have been free to fault (see
    DESIGN.md §6). *)

open Rp_ir
module Loops = Rp_cfg.Loops
module SS = Rp_support.Smaps.String_set

type stats = {
  mutable promoted_refs : int;  (** invariant-base groups promoted *)
  mutable rewritten_ops : int;
  mutable inserted_loads : int;
  mutable inserted_stores : int;
}

let zero_stats () =
  { promoted_refs = 0; rewritten_ops = 0; inserted_loads = 0; inserted_stores = 0 }

(** Information about candidate base registers within one loop. *)
type group = {
  base : Instr.reg;
  mutable tags : Tagset.t;
  mutable has_load : bool;
  mutable has_store : bool;
  mutable nops : int;
}

let promote_loop ?(always_store = false) (f : Func.t)
    (dom : Rp_cfg.Dominators.t) (l : Loops.loop) (stats : stats) : bool =
  match Loops.preheader f l with
  | None -> false
  | Some pad ->
    (* every defining block of every register: the strided-base analysis
       needs the full definition set, not just single-def registers *)
    let def_blocks : (Instr.reg, Instr.label list) Hashtbl.t =
      Hashtbl.create 64
    in
    let bump r lbl =
      Hashtbl.replace def_blocks r
        (lbl :: Option.value ~default:[] (Hashtbl.find_opt def_blocks r))
    in
    List.iter (fun r -> bump r f.Func.entry) f.Func.params;
    Func.iter_blocks
      (fun (b : Block.t) ->
        List.iter
          (fun i -> List.iter (fun d -> bump d b.Block.label) (Instr.defs i))
          b.Block.instrs)
      f;
    (* [r] is invariant {e within} [l] when no definition of [r] is inside
       the loop — this admits affine recurrences ([p = p + c] advanced by an
       enclosing loop, per-outer-iteration row bases) that the classic
       single-definition test rejects.  One definition must still dominate
       the landing pad so the speculative pad load reads a well-defined
       address (the pad itself qualifies: [Block.append] places the load
       after any definition already there). *)
    let invariant_base r =
      match Hashtbl.find_opt def_blocks r with
      | None | Some [] -> false
      | Some dls ->
        List.for_all (fun dl -> not (SS.mem dl l.Loops.blocks)) dls
        && List.exists (fun dl -> Rp_cfg.Dominators.dominates dom dl pad) dls
    in
    (* gather pointer-op groups keyed by base register *)
    let groups : (Instr.reg, group) Hashtbl.t = Hashtbl.create 8 in
    let group r =
      match Hashtbl.find_opt groups r with
      | Some g -> g
      | None ->
        let g =
          { base = r; tags = Tagset.empty; has_load = false;
            has_store = false; nops = 0 }
        in
        Hashtbl.replace groups r g;
        g
    in
    SS.iter
      (fun lbl ->
        List.iter
          (fun i ->
            match i with
            | Instr.Loadg (_, a, ts) ->
              let g = group a in
              g.tags <- Tagset.union ts g.tags;
              g.has_load <- true;
              g.nops <- g.nops + 1
            | Instr.Storeg (a, _, ts) ->
              let g = group a in
              g.tags <- Tagset.union ts g.tags;
              g.has_store <- true;
              g.nops <- g.nops + 1
            | _ -> ())
          (Func.block f lbl).Block.instrs)
      l.Loops.blocks;
    (* a group qualifies if its base is invariant and nothing else in the
       loop can touch its tags *)
    let conflicts (g : group) =
      let clash = ref false in
      SS.iter
        (fun lbl ->
          List.iter
            (fun i ->
              match i with
              | Instr.Loads (_, t) | Instr.Loadc (_, t) | Instr.Stores (t, _)
                ->
                if Tagset.mem t g.tags then clash := true
              | Instr.Loadg (_, a, ts) | Instr.Storeg (a, _, ts) ->
                if a <> g.base && not (Tagset.disjoint ts g.tags) then
                  clash := true
              | Instr.Call c ->
                if
                  (not (Tagset.disjoint c.Instr.mods g.tags))
                  || not (Tagset.disjoint c.Instr.refs g.tags)
                then clash := true
              | _ -> ())
            (Func.block f lbl).Block.instrs)
        l.Loops.blocks;
      !clash
    in
    let candidates =
      Hashtbl.fold
        (fun _ g acc ->
          if
            invariant_base g.base
            && (not (Tagset.is_univ g.tags))
            && (not (Tagset.is_empty g.tags))
            && not (conflicts g)
          then g :: acc
          else acc)
        groups []
      |> List.sort (fun a b -> compare a.base b.base)
    in
    if candidates = [] then false
    else begin
      let exits = Loops.exit_targets f l in
      List.iter
        (fun g ->
          let v = Func.fresh_reg f in
          stats.promoted_refs <- stats.promoted_refs + 1;
          (* rewrite in-loop references *)
          SS.iter
            (fun lbl ->
              let b = Func.block f lbl in
              b.Block.instrs <-
                List.map
                  (fun i ->
                    match i with
                    | Instr.Loadg (d, a, _) when a = g.base ->
                      stats.rewritten_ops <- stats.rewritten_ops + 1;
                      Instr.Copy (d, v)
                    | Instr.Storeg (a, s, _) when a = g.base ->
                      stats.rewritten_ops <- stats.rewritten_ops + 1;
                      Instr.Copy (v, s)
                    | i -> i)
                  b.Block.instrs)
            l.Loops.blocks;
          (* load before entry, store at exits *)
          Block.append (Func.block f pad) (Instr.Loadg (v, g.base, g.tags));
          stats.inserted_loads <- stats.inserted_loads + 1;
          if g.has_store || always_store then
            List.iter
              (fun e ->
                Block.prepend (Func.block f e)
                  (Instr.Storeg (g.base, v, g.tags));
                stats.inserted_stores <- stats.inserted_stores + 1)
              exits)
        candidates;
      true
    end

(** Promote invariant-base pointer references in one function.  Loops are
    processed outermost-first, so a reference promotable across a whole nest
    is lifted as far out as its conditions allow. *)
let promote_func ?always_store (f : Func.t) : stats =
  let stats = zero_stats () in
  Rp_cfg.Normalize.run f;
  let dom = Rp_cfg.Dominators.compute f in
  let forest = Loops.analyze f dom in
  let loops =
    List.sort (fun a b -> compare a.Loops.depth b.Loops.depth) forest.Loops.loops
  in
  List.iter (fun l -> ignore (promote_loop ?always_store f dom l stats : bool)) loops;
  stats

let promote_program ?always_store (p : Program.t) : stats =
  let total = zero_stats () in
  Program.iter_funcs
    (fun f ->
      let s = promote_func ?always_store f in
      total.promoted_refs <- total.promoted_refs + s.promoted_refs;
      total.rewritten_ops <- total.rewritten_ops + s.rewritten_ops;
      total.inserted_loads <- total.inserted_loads + s.inserted_loads;
      total.inserted_stores <- total.inserted_stores + s.inserted_stores)
    p;
  total
