(** Whole programs: the tag registry, global variables with initializers,
    and the function table. *)

type init =
  | Init_zero of Instr.const
      (** zero-filled object; the payload is the element's zero value
          ([Cint 0] or [Cflt 0.]), so the runtime can type the cells *)
  | Init_words of Instr.const list  (** explicit word-by-word initializer *)

type t = {
  tags : Tag.Table.t;
  mutable globals : (Tag.t * init) list;  (** in declaration order *)
  funcs : (string, Func.t) Hashtbl.t;
  mutable func_order : string list;
  mutable main : string;
  sites : Rp_support.Idgen.t;  (** call-site id generator *)
  heap_site_tags : (int, Tag.t) Hashtbl.t;
      (** one tag per allocating call site ("a single name for each
          call-site that can generate a new heap address") *)
  mutable version : int;
      (** structural-mutation stamp.  Bumped by {!touch} whenever the
          program's {e code} may have changed — every guarded pipeline
          pass, {!restore}, {!add_func}, {!add_global} — so caches keyed
          on a physical [t] (the interpreter's precompiled form) can
          detect staleness.  Lazy {!heap_tag} creation during execution
          deliberately does {e not} bump it: heap tags are never referenced
          by instructions, so they cannot invalidate compiled code. *)
}

let create () =
  {
    tags = Tag.Table.create ();
    globals = [];
    funcs = Hashtbl.create 16;
    func_order = [];
    main = "main";
    sites = Rp_support.Idgen.create ();
    heap_site_tags = Hashtbl.create 16;
    version = 0;
  }

(** Record that the program's code may have changed.  Cheap (one integer
    store); called by every guarded pipeline pass and by any code that
    mutates function bodies outside the pipeline and intends to re-execute
    the same physical program. *)
let touch p = p.version <- p.version + 1

(** The tag naming all heap memory allocated at call site [site]; created on
    first request. *)
let heap_tag p site =
  match Hashtbl.find_opt p.heap_site_tags site with
  | Some t -> t
  | None ->
    let t =
      Tag.Table.fresh p.tags
        ~name:(Printf.sprintf "heap@%d" site)
        ~storage:(Tag.Heap site) ~size:0 ~is_scalar:false ()
    in
    Hashtbl.replace p.heap_site_tags site t;
    t

let add_func p (f : Func.t) =
  if Hashtbl.mem p.funcs f.name then
    invalid_arg ("Program.add_func: duplicate function " ^ f.name);
  Hashtbl.replace p.funcs f.name f;
  p.func_order <- p.func_order @ [ f.name ];
  touch p

let func p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Program.func: no function " ^ name)

let func_opt p name = Hashtbl.find_opt p.funcs name
let funcs p = List.map (func p) p.func_order
let iter_funcs fn p = List.iter fn (funcs p)

let fresh_site p = Rp_support.Idgen.fresh p.sites

let add_global p tag init =
  p.globals <- p.globals @ [ (tag, init) ];
  touch p

let global_tags p = List.map fst p.globals

(** Total static instruction count (the paper's C, "code size"). *)
let size p =
  List.fold_left (fun n f -> n + Func.instr_count f) 0 (funcs p)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (pass isolation)                                 *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_tag_count : int;
  snap_sites : int;
  snap_globals : (Tag.t * init) list;
  snap_func_order : string list;
  snap_funcs : (string * Func.t) list;  (** deep copies, in order *)
  snap_main : string;
  snap_heap : (int * Tag.t) list;
}

(** Capture the program's current state.  Function bodies are deep-copied
    ({!Func.copy}); instructions are immutable and shared, so the snapshot
    stays intact while passes rewrite block instruction lists in place.
    Cost is O(blocks), not O(instructions). *)
let snapshot (p : t) : snapshot =
  {
    snap_tag_count = Tag.Table.count p.tags;
    snap_sites = Rp_support.Idgen.peek p.sites;
    snap_globals = p.globals;
    snap_func_order = p.func_order;
    snap_funcs = List.map (fun (f : Func.t) -> (f.Func.name, Func.copy f)) (funcs p);
    snap_main = p.main;
    snap_heap = Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.heap_site_tags [];
  }

(** Roll [p] back to [s], in place (callers hold the [t] reference, so the
    record itself must survive).  Tags and call-site ids allocated after
    the snapshot are forgotten; a snapshot must be restored at most once
    (its function copies are installed directly, not re-copied). *)
let restore (p : t) (s : snapshot) : unit =
  Tag.Table.truncate p.tags s.snap_tag_count;
  Rp_support.Idgen.reset p.sites s.snap_sites;
  p.globals <- s.snap_globals;
  p.func_order <- s.snap_func_order;
  p.main <- s.snap_main;
  Hashtbl.reset p.funcs;
  List.iter (fun (n, f) -> Hashtbl.replace p.funcs n f) s.snap_funcs;
  Hashtbl.reset p.heap_site_tags;
  List.iter (fun (k, v) -> Hashtbl.replace p.heap_site_tags k v) s.snap_heap;
  touch p

let pp ppf p =
  let pp_global ppf (t, init) =
    match init with
    | Init_zero _ -> Fmt.pf ppf "global %a : %d words" Tag.pp_full t t.Tag.size
    | Init_words ws ->
      Fmt.pf ppf "global %a = {%a}" Tag.pp_full t
        Fmt.(list ~sep:(any ", ") Instr.pp_const)
        ws
  in
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list ~sep:cut pp_global)
    p.globals
    Fmt.(list ~sep:(cut ++ cut) Func.pp)
    (funcs p)
