(** Sets of memory tags, with an explicit top element.

    Before interprocedural analysis runs, the front end "must behave
    conservatively and assume that an operation may reference any memory
    location" — represented here as [Univ].  MOD/REF analysis replaces every
    [Univ] with a concrete set, so the optimizer and the promoter only ever
    iterate concrete sets.

    Representation.  Tag ids are dense (one registry per program), so a
    concrete set is a {e bitset}: an immutable [Bytes.t] bitvector indexed
    by tag id, paired with the member records sorted by id (the bitvector
    answers [mem]/[subset]/[disjoint] with word-parallel operations; the
    array gives [fold]/[iter]/[elements] their tags back without a global
    id→tag registry, which would break when several programs coexist).
    Every value is immutable; operations share physical structure whenever
    the result equals an operand. *)

type set = {
  bits : Bytes.t;
      (** bit [id] set iff a tag with that id is a member; length is a
          multiple of 8 so the vector can be scanned 64 bits at a time *)
  tags : Tag.t array;  (** members, sorted by [Tag.id], no duplicates *)
}

type t = Univ | Set of set

(* ------------------------------------------------------------------ *)
(* Bitvector primitives                                                *)
(* ------------------------------------------------------------------ *)

let word_bytes = 8

(* number of bytes (a multiple of 8) needed to index bit [max_id] *)
let bytes_for max_id = (((max_id / 8) / word_bytes) + 1) * word_bytes

let bit_set bits id =
  let byte = id lsr 3 in
  byte < Bytes.length bits
  && Char.code (Bytes.unsafe_get bits byte) land (1 lsl (id land 7)) <> 0

let set_bit bits id =
  let byte = id lsr 3 in
  Bytes.unsafe_set bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl (id land 7))))

let get_word bits i =
  (* word [i] of the vector, 0 past the end: lets binary word scans walk
     the longer operand without bounds gymnastics *)
  if i * word_bytes >= Bytes.length bits then 0L
  else Bytes.get_int64_le bits (i * word_bytes)

let words bits = Bytes.length bits / word_bytes

(* build the bitvector for a sorted member array *)
let bits_of_tags (tags : Tag.t array) =
  let n = Array.length tags in
  if n = 0 then Bytes.empty
  else begin
    let bits = Bytes.make (bytes_for tags.(n - 1).Tag.id) '\000' in
    Array.iter (fun (t : Tag.t) -> set_bit bits t.Tag.id) tags;
    bits
  end

let mk tags = Set { bits = bits_of_tags tags; tags }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let empty = Set { bits = Bytes.empty; tags = [||] }
let univ = Univ
let singleton t = mk [| t |]

(** Sort by id, keeping the {e first} record of any duplicated id — the
    retention rule of folding [Set.add] over the list. *)
let of_list ts =
  match ts with
  | [] -> empty
  | ts ->
    let arr = Array.of_list ts in
    let n = Array.length arr in
    (* stable sort so first-occurrence wins the dedup below *)
    let sorted = Array.copy arr in
    Array.stable_sort Tag.compare sorted;
    let out = Array.make n sorted.(0) in
    let k = ref 0 in
    Array.iter
      (fun (t : Tag.t) ->
        if !k = 0 || out.(!k - 1).Tag.id <> t.Tag.id then begin
          out.(!k) <- t;
          incr k
        end)
      sorted;
    mk (if !k = n then out else Array.sub out 0 !k)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let is_univ = function Univ -> true | Set _ -> false
let is_empty = function Univ -> false | Set s -> Array.length s.tags = 0

let mem tag = function
  | Univ -> true
  | Set s -> bit_set s.bits tag.Tag.id

let add tag set =
  match set with
  | Univ -> Univ
  | Set s ->
    if bit_set s.bits tag.Tag.id then set
    else begin
      let n = Array.length s.tags in
      let out = Array.make (n + 1) tag in
      (* insertion position by id *)
      let pos = ref 0 in
      while !pos < n && s.tags.(!pos).Tag.id < tag.Tag.id do incr pos done;
      Array.blit s.tags 0 out 0 !pos;
      Array.blit s.tags !pos out (!pos + 1) (n - !pos);
      out.(!pos) <- tag;
      let bits =
        let need = bytes_for tag.Tag.id in
        let bits = Bytes.make (max need (Bytes.length s.bits)) '\000' in
        Bytes.blit s.bits 0 bits 0 (Bytes.length s.bits);
        set_bit bits tag.Tag.id;
        bits
      in
      Set { bits; tags = out }
    end

(* ------------------------------------------------------------------ *)
(* Binary operations                                                   *)
(* ------------------------------------------------------------------ *)

let union a b =
  match (a, b) with
  | Univ, _ | _, Univ -> Univ
  | Set x, Set y ->
    if x == y || Array.length y.tags = 0 then a
    else if Array.length x.tags = 0 then b
    else begin
      (* merge the sorted member arrays, preferring [a]'s record on ties *)
      let nx = Array.length x.tags and ny = Array.length y.tags in
      let out = Array.make (nx + ny) x.tags.(0) in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < nx && !j < ny do
        let tx = x.tags.(!i) and ty = y.tags.(!j) in
        if tx.Tag.id < ty.Tag.id then (out.(!k) <- tx; incr i)
        else if tx.Tag.id > ty.Tag.id then (out.(!k) <- ty; incr j)
        else (out.(!k) <- tx; incr i; incr j);
        incr k
      done;
      while !i < nx do out.(!k) <- x.tags.(!i); incr i; incr k done;
      while !j < ny do out.(!k) <- y.tags.(!j); incr j; incr k done;
      if !k = nx then a  (* y ⊆ x: share *)
      else if !k = ny then b  (* x ⊆ y: share *)
      else begin
        let tags = Array.sub out 0 !k in
        let bits = Bytes.make (max (Bytes.length x.bits) (Bytes.length y.bits)) '\000' in
        for w = 0 to words bits - 1 do
          Bytes.set_int64_le bits (w * word_bytes)
            (Int64.logor (get_word x.bits w) (get_word y.bits w))
        done;
        Set { bits; tags }
      end
    end

(** Members of [x] whose bit in [y] satisfies [keep]; shares [whole] when
    nothing is dropped.  Implements both [inter] ([keep] = member) and
    [diff] ([keep] = non-member). *)
let filter_against whole (x : set) (y : set) ~keep =
  let n = Array.length x.tags in
  let out = Array.make (max n 1) x.tags.(0) in
  let k = ref 0 in
  Array.iter
    (fun (t : Tag.t) ->
      if keep (bit_set y.bits t.Tag.id) then begin
        out.(!k) <- t;
        incr k
      end)
    x.tags;
  if !k = n then whole else mk (Array.sub out 0 !k)

let inter a b =
  match (a, b) with
  | Univ, x | x, Univ -> x
  | Set x, Set y ->
    if Array.length x.tags = 0 then a
    else if Array.length y.tags = 0 then b
    else filter_against a x y ~keep:(fun present -> present)

(** [diff a b]: when [b] is [Univ] the result is empty; when [a] is [Univ]
    the (sound, conservative) result is [Univ]. *)
let diff a b =
  match (a, b) with
  | _, Univ -> empty
  | Univ, _ -> Univ
  | Set x, Set y ->
    if Array.length x.tags = 0 || Array.length y.tags = 0 then a
    else filter_against a x y ~keep:(fun present -> not present)

let subset a b =
  match (a, b) with
  | _, Univ -> true
  | Univ, Set _ -> false
  | Set x, Set y ->
    let ok = ref true in
    let w = ref 0 in
    let nw = words x.bits in
    while !ok && !w < nw do
      if Int64.logand (get_word x.bits !w) (Int64.lognot (get_word y.bits !w)) <> 0L
      then ok := false;
      incr w
    done;
    !ok

let equal a b =
  match (a, b) with
  | Univ, Univ -> true
  | Set x, Set y ->
    x == y
    || (Array.length x.tags = Array.length y.tags
       && Array.for_all2 (fun (s : Tag.t) (t : Tag.t) -> s.Tag.id = t.Tag.id)
            x.tags y.tags)
  | _ -> false

let disjoint a b =
  match (a, b) with
  | Univ, x | x, Univ -> is_empty x
  | Set x, Set y ->
    let clash = ref false in
    let w = ref 0 in
    let nw = min (words x.bits) (words y.bits) in
    while (not !clash) && !w < nw do
      if Int64.logand (get_word x.bits !w) (get_word y.bits !w) <> 0L then
        clash := true;
      incr w
    done;
    not !clash

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

(** Cardinality; [None] for the universe. *)
let cardinal = function Univ -> None | Set s -> Some (Array.length s.tags)

(** The unique element of a singleton set, if any. *)
let as_singleton = function
  | Univ -> None
  | Set s -> if Array.length s.tags = 1 then Some s.tags.(0) else None

(** Fold over a concrete set in increasing id order.  Raises
    [Invalid_argument] on [Univ]: passes that iterate tag sets must run
    after analysis has concretized them. *)
let fold f acc = function
  | Univ -> invalid_arg "Tagset.fold: universe"
  | Set s -> Array.fold_left f acc s.tags

let iter f = function
  | Univ -> invalid_arg "Tagset.iter: universe"
  | Set s -> Array.iter f s.tags

let elements = function
  | Univ -> invalid_arg "Tagset.elements: universe"
  | Set s -> Array.to_list s.tags

let exists f = function Univ -> true | Set s -> Array.exists f s.tags
let for_all f = function Univ -> false | Set s -> Array.for_all f s.tags

let filter f set =
  match set with
  | Univ -> Univ
  | Set s ->
    let kept = Array.of_list (List.filter f (Array.to_list s.tags)) in
    if Array.length kept = Array.length s.tags then set else mk kept

(* ------------------------------------------------------------------ *)

let pp ppf = function
  | Univ -> Fmt.string ppf "[*]"
  | Set s ->
    Fmt.pf ppf "[%a]"
      Fmt.(list ~sep:(any " ") Tag.pp)
      (Array.to_list s.tags)
