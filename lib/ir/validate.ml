(** Structural well-formedness checks for IL, run by the test-suite after
    every pass and available to the driver under a debug flag.  Returns a
    list of human-readable violations; the empty list means the function is
    well formed. *)

let check_func (f : Func.t) =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  (* block table and order agree *)
  let order_set = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem order_set l then err "%s: label %s repeated in order" f.Func.name l;
      Hashtbl.replace order_set l ();
      if not (Func.mem_block f l) then
        err "%s: order mentions missing block %s" f.Func.name l)
    f.Func.order;
  Hashtbl.iter
    (fun l _ ->
      if not (Hashtbl.mem order_set l) then
        err "%s: block %s missing from order" f.Func.name l)
    f.Func.blocks;
  if not (Func.mem_block f f.Func.entry) then
    err "%s: entry block %s missing" f.Func.name f.Func.entry;
  (* per-block checks *)
  Func.iter_blocks
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if not (Func.mem_block f s) then
            err "%s/%s: terminator targets missing block %s" f.Func.name
              b.Block.label s)
        (Block.succs b);
      (* registers in range *)
      let chk_reg r =
        if r < 0 || r >= f.Func.nreg then
          err "%s/%s: register r%d out of range (nreg=%d)" f.Func.name
            b.Block.label r f.Func.nreg
      in
      List.iter
        (fun i ->
          List.iter chk_reg (Instr.defs i);
          List.iter chk_reg (Instr.uses i))
        b.Block.instrs;
      List.iter chk_reg (Instr.term_uses b.Block.term);
      (* phis must be a prefix of the block *)
      let seen_nonphi = ref false in
      List.iter
        (fun i ->
          if Instr.is_phi i then begin
            if !seen_nonphi then
              err "%s/%s: phi after non-phi instruction" f.Func.name
                b.Block.label
          end
          else seen_nonphi := true)
        b.Block.instrs)
    f;
  List.rev !errs

let check_program (p : Program.t) =
  let errs = List.concat_map check_func (Program.funcs p) in
  let errs =
    if Program.func_opt p p.Program.main = None then
      Fmt.str "program: main function %s missing" p.Program.main :: errs
    else errs
  in
  errs

exception Invalid of string * string
(** [(context, report)] — the context names the pipeline stage (or input
    source) whose output failed validation, so drivers can report which
    pass broke the IL instead of a bare failure. *)

(** Raise {!Invalid} with a readable report if the program is ill-formed.
    [ctx] names the producer of the IL being checked. *)
let assert_ok ?(ctx = "program") p =
  match check_program p with
  | [] -> ()
  | errs ->
    raise (Invalid (ctx, String.concat "\n" ("IL validation failed:" :: errs)))
