(** Memory tags.

    A {e tag} is the textual/structural name of a memory object, exactly as in
    the Rice compiler's ILOC described in the paper: "Each memory operation
    has an associated list of tags; these are textual names that identify the
    memory locations that can be used by the operation."

    One tag is created per global variable, per address-taken local (one tag
    per declaration, covering every activation), per array, per spill slot,
    and per heap allocation site. *)

type storage =
  | Global  (** a file-scope variable or array *)
  | Local of string
      (** an address-taken local or local array; the payload is the name of
          the function that declares it.  One tag covers all activations. *)
  | Heap of int
      (** all memory allocated by the call site with this id ("a single name
          for each call-site that can generate a new heap address") *)
  | Spill of string
      (** a spill slot introduced by the register allocator in the named
          function; participates in load/store accounting like any memory *)

type t = {
  id : int;  (** dense unique id; the key for set operations *)
  name : string;  (** source-level or synthesized name, for printing *)
  storage : storage;
  size : int;  (** object size in words (scalars are 1) *)
  is_scalar : bool;  (** a single one-word location (not an array/heap blob) *)
  is_const : bool;  (** contents never change after initialization *)
  declared_in_recursive : bool;
      (** for [Local] tags: the declaring function may be recursive, so this
          one tag stands for several live activations at once and must never
          be treated as a single location through a pointer *)
}

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id

(** Can a {e direct} (sLoad/sStore) reference to this tag be promoted?  True
    for any scalar, non-heap location: a direct reference always denotes the
    current activation's (or the global's) unique word. *)
let promotable_direct t =
  t.is_scalar && (match t.storage with Heap _ -> false | _ -> true)

(** Can a {e pointer-based} reference whose tag set is the singleton [t] be
    treated as an explicit reference to a single location?  Only globals
    qualify: a singleton [Local] tag may still denote a different activation
    of a recursive function, and a [Heap] tag denotes a whole allocation
    site. *)
let promotable_via_pointer t =
  t.is_scalar && (not t.declared_in_recursive) && t.storage = Global

let storage_pp ppf = function
  | Global -> Fmt.string ppf "global"
  | Local f -> Fmt.pf ppf "local(%s)" f
  | Heap s -> Fmt.pf ppf "heap@%d" s
  | Spill f -> Fmt.pf ppf "spill(%s)" f

let pp ppf t = Fmt.string ppf t.name

let pp_full ppf t =
  Fmt.pf ppf "%s#%d[%a,%dw%s%s]" t.name t.id storage_pp t.storage t.size
    (if t.is_scalar then ",scalar" else "")
    (if t.is_const then ",const" else "")

(** Tag registries.  A program owns one table; every tag in the program is
    registered there so that tag ids are dense, deterministic, and printable
    from any pass. *)
module Table = struct
  type tag = t

  type t = { mutable tags : tag array; mutable n : int }
  (* growable array indexed by id: registration and [get] are O(1), so the
     table doubles as the dense id→tag decode for bitset iteration *)

  let create () = { tags = [||]; n = 0 }

  let fresh table ~name ~storage ?(size = 1) ?(is_scalar = true)
      ?(is_const = false) ?(declared_in_recursive = false) () =
    let tag =
      { id = table.n; name; storage; size; is_scalar; is_const;
        declared_in_recursive }
    in
    if table.n = Array.length table.tags then begin
      let grown = Array.make (max 8 (2 * table.n)) tag in
      Array.blit table.tags 0 grown 0 table.n;
      table.tags <- grown
    end;
    table.tags.(table.n) <- tag;
    table.n <- table.n + 1;
    tag

  let count table = table.n
  let all table = Array.to_list (Array.sub table.tags 0 table.n)

  (** Forget every tag with id ≥ [n], so the next [fresh] reuses id [n].
      Only for rolling a program back to a snapshot taken when the table
      held [n] tags (see {!Program.restore}); the caller must guarantee no
      live IR references the dropped tags. *)
  let truncate table n =
    if n < 0 || n > table.n then invalid_arg "Tag.Table.truncate";
    table.n <- n

  let get table id =
    if id < 0 || id >= table.n then invalid_arg "Tag.Table.get"
    else table.tags.(id)

  (** Mark an existing local tag as belonging to a recursive function.  Tags
      are immutable, so this returns a fresh record with the same id; callers
      (the front end) must substitute it wherever the old record escaped.  In
      practice the front end computes recursiveness before creating tags, so
      this is only used by tests. *)
  let as_recursive tag = { tag with declared_in_recursive = true }
end
