(** Sets of memory tags with an explicit top element.

    [Univ] ("⊤") represents the front end's conservative "may touch any
    memory location"; interprocedural analysis replaces every ⊤ with a
    concrete set before the optimizer or the promoter iterate one.

    Concrete sets are dense bitsets over the program's tag ids (an
    immutable [Bytes.t] bitvector plus the member records sorted by id), so
    [mem], [subset], [disjoint] and the binary operations run word-parallel
    over the id space instead of walking a balanced tree. *)

type set
(** A concrete (non-⊤) set; abstract — use the operations below. *)

type t = Univ | Set of set

val empty : t
val univ : t
val singleton : Tag.t -> t
val of_list : Tag.t list -> t

val is_univ : t -> bool
val is_empty : t -> bool
val mem : Tag.t -> t -> bool
val add : Tag.t -> t -> t

val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] over-approximates in the may-direction: [diff _ Univ] is
    empty (nothing certainly survives subtracting everything) and
    [diff Univ _] stays [Univ].  Do {e not} use ⊤ operands where an
    under-approximation is required (see {!Rp_opt.Dse} for the pattern). *)
val diff : t -> t -> t

val subset : t -> t -> bool
val equal : t -> t -> bool

(** [None] on the universe. *)
val cardinal : t -> int option

val as_singleton : t -> Tag.t option

(** Iteration over concrete sets, in increasing tag-id order; raises
    [Invalid_argument] on [Univ]. *)
val fold : ('a -> Tag.t -> 'a) -> 'a -> t -> 'a

val iter : (Tag.t -> unit) -> t -> unit
val elements : t -> Tag.t list

val exists : (Tag.t -> bool) -> t -> bool
val for_all : (Tag.t -> bool) -> t -> bool
val filter : (Tag.t -> bool) -> t -> t
val disjoint : t -> t -> bool

val pp : Format.formatter -> t -> unit
