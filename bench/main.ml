(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md §4 for the experiment index).

    {v
      dune exec bench/main.exe            -- all count tables (Figures 4-7,
                                             §3.3, register pressure)
      dune exec bench/main.exe -- --timings   -- Bechamel wall-clock benches,
                                                 one Test.make per table
      dune exec bench/main.exe -- --json      -- write BENCH_counts.json and
                                                 BENCH_timings.json
      dune exec bench/main.exe -- --json --via-daemon SOCK
                                              -- counts grid through a running
                                                 rpcc serve daemon (cached)
      dune exec bench/main.exe -- --json --via-fleet N [--plant-crash]
                                              -- counts grid through a
                                                 supervised N-shard fleet;
                                                 --plant-crash SIGKILLs a
                                                 shard mid-campaign (the
                                                 counts stay byte-identical)
      dune exec bench/main.exe -- --json --native [--cc-flags "-O2"]
                                              -- every cell executed through
                                                 the compiled-C backend:
                                                 BENCH_counts.json stays
                                                 byte-identical, run_ms is
                                                 the native binary's (10x+).
                                                 Composes with --via-daemon /
                                                 --via-fleet: jobs carry
                                                 [mode: native] and each shard
                                                 answers through its own
                                                 degradation ladder (native →
                                                 recompile-once → interp)
      dune exec bench/main.exe -- --json --native --plant-cc-failure
                                              -- fault drill: a planted broken
                                                 compiler fails every native
                                                 attempt; the campaign must
                                                 complete on the interpreter
                                                 rung with exec.degraded_native
                                                 counting the fallen cells
    v}

    Adding [--verify-passes] to any mode reruns the whole experiment under
    translation validation and aborts on the first degraded pass or
    non-converged analysis — the full-suite soundness gate used by CI.

    Counts are exact and deterministic (the interpreter counts executed IL
    operations); wall-clock numbers are only for the compiler itself. *)

open Rp_driver
module I = Rp_exec.Interp

let counts (r : I.result) = r.I.total

(* [ptr_promoted] is the static §3.3 counter for the cell's compile: how
   many invariant-base groups pointer promotion rewrote.  Zero everywhere
   except the [*/ptr] configs, where the suite's pointer-walk programs
   pin nonzero values as golden. *)
type cell = {
  ops : int;
  loads : int;
  stores : int;
  checksum : int;
  ptr_promoted : int;
}

(* --verify-passes: run every compile of the experiment under translation
   validation; any degraded pass or non-converged analysis aborts the
   bench.  Off by default so baseline counts are produced by the exact
   configurations under study. *)
let verify = ref false

let apply_verify (cfg : Config.t) =
  if !verify then { cfg with Config.verify_passes = true } else cfg

let assert_healthy pname (st : Pipeline.stage_stats) =
  if !verify then begin
    if not st.Pipeline.converged then
      Fmt.failwith "analysis did not converge for %s" pname;
    match st.Pipeline.degraded with
    | [] -> ()
    | (pass, reason) :: _ ->
      Fmt.failwith "pass %s degraded compiling %s: %s" pass pname reason
  end

exception Quarantined of string
(** A benchmark program that exhausts interpreter resource limits, traps,
    or overflows the OCaml stack is quarantined — its table section reports
    the reason and BENCH_counts.json records it as degraded — instead of
    aborting the whole bench run.  [assert_healthy]'s [Failure] is
    deliberately not caught: a degraded pass under [--verify-passes] is the
    CI soundness gate and must stay fatal. *)

type cell_result = Cok of cell | Cquarantined of string

(** Compile and run, converting resource/runtime blowups to {!Quarantined}
    (with the program named) while letting verification failures abort.
    [should_stop] (supervised --json grid only) aborts the interpreter
    cooperatively; the resulting resource-limit message still mentions
    "external stop", which the supervised job uses to tell a deadline from
    a deterministic fuel exhaustion. *)
let run_raw ?should_stop pname (cfg : Config.t) source =
  match
    Pipeline.compile_and_run ?should_stop ~config:(apply_verify cfg) source
  with
  | exception I.Resource_limit m ->
    raise (Quarantined (Printf.sprintf "%s: resource limit: %s" pname m))
  | exception Rp_exec.Value.Runtime_error m ->
    raise (Quarantined (Printf.sprintf "%s: runtime error: %s" pname m))
  | exception Stack_overflow ->
    raise (Quarantined (pname ^ ": interpreter stack overflow"))
  | (prog, st, r) ->
    assert_healthy pname st;
    (prog, st, r)

let run_config (p : Rp_suite.Programs.program) (cfg : Config.t) : cell_result =
  match run_raw p.Rp_suite.Programs.name cfg p.Rp_suite.Programs.source with
  | exception Quarantined m -> Cquarantined m
  | (_, st, r) ->
    let t = counts r in
    Cok
      { ops = t.I.ops; loads = t.I.loads; stores = t.I.stores;
        checksum = r.I.checksum; ptr_promoted = st.Pipeline.ptr_promoted }

(* memoize runs: the same (program, config) pair feeds several tables *)
let cache : (string * string, cell_result) Hashtbl.t = Hashtbl.create 64

let cell_result (p : Rp_suite.Programs.program) (cname : string)
    (cfg : Config.t) : cell_result =
  let key = (p.Rp_suite.Programs.name, cname) in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
    let c = run_config p cfg in
    Hashtbl.replace cache key c;
    c

(* -j/--jobs: number of worker domains for the compile×run grid.  Cells
   are computed in parallel but collected and rendered in a fixed order,
   so every table and both JSON documents are byte-identical at any -j. *)
let jobs = ref 1

(* Supervision knobs for the --json grid (see json_export):
   --job-timeout gives every cell a wall-clock deadline, --retries bounds
   re-attempts before a cell is quarantined, --journal/--resume make the
   grid crash-resumable, --breaker-threshold trips a per-program circuit
   breaker after that many consecutive failures, and --plant-hang wedges
   one named cell on purpose (the supervision layer's own test fixture). *)
let job_timeout : float option ref = ref None
let job_retries = ref 1
let journal_path : string option ref = ref None
let resume_path : string option ref = ref None
let breaker_threshold = ref 3
let plant_hang : string option ref = ref None (* "program:config" *)
let interrupted = Atomic.make false

(* --native: run the --json grid's cells through the compiled-C backend
   instead of the interpreter.  Counts must come out byte-identical (the
   emitted code carries the interpreter's counters); run_ms becomes the
   native binary's wall time.  Compiled binaries are cached in the
   content-addressed store keyed by program × config × cc identity.

   Every cell goes down the backend's degradation ladder: an
   infrastructure failure (cc crash, sandbox trip, garbled trailer,
   corrupt cached binary) recompiles once and then falls back to the
   interpreter, recording the degradation instead of quarantining — the
   counts document is byte-identical regardless of which rungs fired. *)
let native_cc : Rp_backend.Native.cc option ref = ref None

(* --native --via-daemon/--via-fleet: cells carry [mode: native] to the
   shards, which answer through their own ladders *)
let remote_native = ref false

(* cells that fell past native all the way to the interpreter; worker
   domains tick it concurrently *)
let degraded_native = Atomic.make 0

(* forced at CLI-parse time, before the worker pool spawns: Lazy.force
   from two domains at once is a race (CamlinternalLazy.Undefined) *)
let native_cas =
  lazy (Rp_support.Cas.open_ (Rp_backend.Native.default_cache_dir ()))

(** The native analogue of {!run_raw}: one pipeline compile, then the
    degradation ladder (native → recompile-once → interpreter).  Program
    outcomes (traps, resource limits) still quarantine the cell exactly
    as the interpreter path would — they are faithful answers, identical
    on every rung.  Returns the native split (cc_ms, exec_ms, cache_hit,
    mode) for the timings document. *)
let run_native ?should_stop pname (cfg : Config.t) source cc =
  let config = apply_verify cfg in
  let prog, st = Pipeline.compile ~config source in
  assert_healthy pname st;
  let key = Pipeline.cache_key ~config source in
  let cache = Lazy.force native_cas in
  match
    Rp_backend.Native.run_laddered ?deadline:!job_timeout ~cache ~key
      ~interp:(fun () ->
        let t0 = Rp_support.Clock.now () in
        let r = I.run ?should_stop ?deadline:!job_timeout prog in
        (r, (Rp_support.Clock.now () -. t0) *. 1000.))
      ~cc:(Some cc) prog
  with
  | exception I.Resource_limit m ->
    raise (Quarantined (Printf.sprintf "%s: resource limit: %s" pname m))
  | exception Rp_exec.Value.Runtime_error m ->
    raise (Quarantined (Printf.sprintf "%s: runtime error: %s" pname m))
  | lad ->
    let mode =
      match lad.Rp_backend.Native.l_mode with
      | `Native -> "native"
      | `Interp ->
        Atomic.incr degraded_native;
        "interp"
    in
    ( st,
      lad.Rp_backend.Native.l_result,
      Some
        ( lad.Rp_backend.Native.l_cc_ms,
          lad.Rp_backend.Native.l_exec_ms,
          lad.Rp_backend.Native.l_cache_hit,
          mode ) )

(** Fill the memo cache for [cells] using [!jobs] worker domains.  Workers
    only compute ({!run_config} never prints); results land in the cache
    in input order.  A cell whose computation raised (only possible under
    [--verify-passes], where a degraded pass is fatal) is left uncached:
    the table section that needs it recomputes serially and fails at the
    same point, with the same exception, as a sequential run. *)
let prewarm (cells : (Rp_suite.Programs.program * string * Config.t) list) =
  let cells =
    List.filter
      (fun ((p : Rp_suite.Programs.program), cname, _) ->
        not (Hashtbl.mem cache (p.Rp_suite.Programs.name, cname)))
      cells
  in
  let inputs = Array.of_list cells in
  Rp_support.Pool.run ~jobs:!jobs
    (fun (p, _, cfg) -> run_config p cfg)
    inputs
  |> Array.iteri (fun i r ->
         let ((p : Rp_suite.Programs.program), cname, _) = inputs.(i) in
         match r with
         | Ok c -> Hashtbl.replace cache (p.Rp_suite.Programs.name, cname) c
         | Error _ -> ())

let cell (p : Rp_suite.Programs.program) (cname : string) (cfg : Config.t) :
    cell =
  match cell_result p cname cfg with
  | Cok c -> c
  | Cquarantined m ->
    raise (Quarantined (Printf.sprintf "%s under %s" m cname))

let pct without with_ =
  if without = 0 then 0.
  else 100. *. float_of_int (without - with_) /. float_of_int without

(* ------------------------------------------------------------------ *)
(* Figure 4: program descriptions                                      *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  Fmt.pr "@.== Figure 4: Program Descriptions ==@.";
  Fmt.pr "%-10s  %-6s  %-40s@." "Program" "Lines" "Description";
  List.iter
    (fun (p : Rp_suite.Programs.program) ->
      let lines =
        List.length (String.split_on_char '\n' p.Rp_suite.Programs.source)
      in
      Fmt.pr "%-10s  %-6d  %-40s@." p.Rp_suite.Programs.name lines
        p.Rp_suite.Programs.description)
    Rp_suite.Programs.all;
  Fmt.pr "@.Paper-shape notes:@.";
  List.iter
    (fun (p : Rp_suite.Programs.program) ->
      Fmt.pr "  %-10s %s@." p.Rp_suite.Programs.name p.Rp_suite.Programs.paper_note)
    Rp_suite.Programs.all

(* ------------------------------------------------------------------ *)
(* Figures 5, 6, 7: total operations / stores / loads                  *)
(* ------------------------------------------------------------------ *)

let metric_tables () =
  (* verify semantic preservation across the whole grid first *)
  List.iter
    (fun (p : Rp_suite.Programs.program) ->
      let sums =
        List.map
          (fun (n, cfg) -> (cell p n cfg).checksum)
          Config.paper_grid
      in
      match sums with
      | base :: rest ->
        if not (List.for_all (( = ) base) rest) then
          Fmt.failwith "checksum mismatch across configurations for %s"
            p.Rp_suite.Programs.name
      | [] -> ())
    Rp_suite.Programs.all;
  let table title pick =
    Fmt.pr "@.== %s ==@." title;
    Fmt.pr "%-10s %-8s %12s %12s %12s %10s@." "Program" "analysis" "without"
      "with" "difference" "% removed";
    List.iter
      (fun (p : Rp_suite.Programs.program) ->
        List.iter
          (fun analysis ->
            let without =
              pick (cell p (analysis ^ "/without")
                      (List.assoc (analysis ^ "/without") Config.paper_grid))
            in
            let with_ =
              pick (cell p (analysis ^ "/with")
                      (List.assoc (analysis ^ "/with") Config.paper_grid))
            in
            Fmt.pr "%-10s %-8s %12d %12d %12d %10.2f@." p.Rp_suite.Programs.name
              analysis without with_ (without - with_) (pct without with_))
          [ "modref"; "pointer" ])
      Rp_suite.Programs.all
  in
  table "Figure 5: Total Operations" (fun c -> c.ops);
  table "Figure 6: Stores" (fun c -> c.stores);
  table "Figure 7: Loads" (fun c -> c.loads)

(* ------------------------------------------------------------------ *)
(* §5 in-text: "register promotion removed 2.8 million loads from one  *)
(* function in mlink"                                                  *)
(* ------------------------------------------------------------------ *)

let mlink_function () =
  Fmt.pr "@.== Section 5: mlink's hot function (per-function counts) ==@.";
  Fmt.pr
    "%-18s %-9s %10s %10s   (paper: promotion removed 2.8M loads from one \
     function)@."
    "Function" "promotion" "loads" "stores";
  let p = Rp_suite.Programs.find "mlink" in
  List.iter
    (fun (name, cfg) ->
      let (_, _, r) = run_raw "mlink" cfg p.Rp_suite.Programs.source in
      List.iter
        (fun (fn, (c : I.counts)) ->
          if fn = "likelihood_pass" then
            Fmt.pr "%-18s %-9s %10d %10d@." fn name c.I.loads c.I.stores)
        r.I.per_func)
    [
      ("without", { Config.default with Config.promote = false });
      ("with", Config.default);
    ]

(* ------------------------------------------------------------------ *)
(* §3.3: scalar promotion vs scalar + pointer-based promotion          *)
(* ------------------------------------------------------------------ *)

let section33 () =
  Fmt.pr "@.== Section 3.3: pointer-based promotion on top of scalar ==@.";
  Fmt.pr
    "%-10s %14s %14s %14s %10s   (additional removals vs scalar-only; paper: \
     ~0 everywhere except fft — the pointer-walk programs are this \
     reproduction's additions)@."
    "Program" "ops" "stores" "loads" "promoted";
  let scalar_cfg = { Config.default with Config.analysis = Config.Apointer } in
  let both_cfg = { scalar_cfg with Config.ptr_promote = true } in
  List.iter
    (fun (p : Rp_suite.Programs.program) ->
      let a = cell p "s33/scalar" scalar_cfg in
      let b = cell p "s33/both" both_cfg in
      if a.checksum <> b.checksum then
        Fmt.failwith "checksum mismatch (3.3) for %s" p.Rp_suite.Programs.name;
      Fmt.pr "%-10s %14d %14d %14d %10d@." p.Rp_suite.Programs.name
        (a.ops - b.ops) (a.stores - b.stores) (a.loads - b.loads)
        b.ptr_promoted)
    Rp_suite.Programs.all

(* ------------------------------------------------------------------ *)
(* §5 register pressure: the water experiment                          *)
(* ------------------------------------------------------------------ *)

let pressure () =
  Fmt.pr "@.== Section 5: register pressure (water) ==@.";
  Fmt.pr
    "%-4s %-9s %12s %12s %12s   (paper: promotion causes spills and a net \
     loss in tight register files)@."
    "k" "promotion" "ops" "loads" "stores";
  let water = Rp_suite.Programs.find "water" in
  List.iter
    (fun k ->
      List.iter
        (fun promote ->
          let cfg =
            { Config.default with Config.analysis = Config.Amodref; promote; k }
          in
          let c = cell water (Printf.sprintf "water/k%d/%b" k promote) cfg in
          Fmt.pr "%-4d %-9s %12d %12d %12d@." k
            (if promote then "with" else "without")
            c.ops c.loads c.stores)
        [ false; true ])
    [ 12; 16; 24; 32 ]

(* ------------------------------------------------------------------ *)
(* Ablations for the design decisions called out in DESIGN.md §6       *)
(* ------------------------------------------------------------------ *)

let ablations () =
  Fmt.pr "@.== Ablation 1: what interprocedural analysis buys promotion ==@.";
  Fmt.pr
    "%-10s %-22s %12s %12s %12s   (without analysis every call carries ⊤ \
     MOD/REF: loops containing calls — clean's emit, bc's dispatch — lose \
     their promotions; call-free hot loops like mlink's keep the front \
     end's direct-access precision)@."
    "Program" "configuration" "ops" "loads" "stores";
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun (cname, cfg) ->
          let c = cell p ("abl1/" ^ cname) cfg in
          Fmt.pr "%-10s %-22s %12d %12d %12d@." name cname c.ops c.loads
            c.stores)
        [
          ("none+promotion",
           { Config.default with Config.analysis = Config.Anone });
          ("modref+promotion", Config.default);
        ])
    [ "clean"; "bc"; "mlink" ];
  Fmt.pr "@.== Ablation 2: unconditional exit stores (the paper's literal \
          scheme) ==@.";
  Fmt.pr
    "%-10s %-22s %12s %12s %12s   (always_store adds write-backs for \
     read-only promotions)@."
    "Program" "configuration" "ops" "loads" "stores";
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun (cname, cfg) ->
          let c = cell p ("abl2/" ^ cname) cfg in
          Fmt.pr "%-10s %-22s %12d %12d %12d@." name cname c.ops c.loads
            c.stores)
        [
          ("store-if-stored", Config.default);
          ("always-store",
           { Config.default with Config.always_store = true });
        ])
    [ "go"; "bison"; "gzip(dec)" ];
  Fmt.pr "@.== Ablation 3: the optimizer without promotion vs promotion \
          without the optimizer ==@.";
  Fmt.pr "%-10s %-22s %12s %12s %12s@." "Program" "configuration" "ops"
    "loads" "stores";
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun (cname, cfg) ->
          let c = cell p ("abl3/" ^ cname) cfg in
          Fmt.pr "%-10s %-22s %12d %12d %12d@." name cname c.ops c.loads
            c.stores)
        [
          ("neither",
           { Config.default with Config.promote = false; optimize = false });
          ("optimizer-only", { Config.default with Config.promote = false });
          ("promotion-only", { Config.default with Config.optimize = false });
          ("both", Config.default);
        ])
    [ "mlink"; "clean" ];
  Fmt.pr "@.== Ablation 4: the §7 pressure throttle (future work, \
          implemented) ==@.";
  Fmt.pr
    "%-4s %-12s %12s %12s %12s   (water; the throttle keeps the \
     least-referenced promotable values in memory instead of spilling)@."
    "k" "promotion" "ops" "loads" "stores";
  let water = Rp_suite.Programs.find "water" in
  List.iter
    (fun k ->
      List.iter
        (fun (cname, cfg) ->
          let cfg = { cfg with Config.k } in
          let c = cell water (Printf.sprintf "abl4/%s/k%d" cname k) cfg in
          Fmt.pr "%-4d %-12s %12d %12d %12d@." k cname c.ops c.loads c.stores)
        [
          ("without", { Config.default with Config.promote = false });
          ("naive", Config.default);
          ("throttled", { Config.default with Config.throttle = true });
        ])
    [ 12; 16; 24; 32 ];
  Fmt.pr "@.== Ablation 5: global dead-store elimination (a §3.4 \
          extension, off by default) ==@.";
  Fmt.pr "%-10s %-12s %12s %12s %12s@." "Program" "configuration" "ops"
    "loads" "stores";
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun (cname, cfg) ->
          let c = cell p (Printf.sprintf "abl5/%s" cname) cfg in
          Fmt.pr "%-10s %-12s %12d %12d %12d@." name cname c.ops c.loads
            c.stores)
        [
          ("paper", Config.default);
          ("paper+dse", { Config.default with Config.dse = true });
        ])
    [ "mlink"; "indent"; "gzip(enc)" ];
  Fmt.pr "@.== Ablation 6: the analysis-precision ladder (with promotion) \
          ==@.";
  Fmt.pr
    "%-10s %-9s %12s %12s %12s   (none < Steensgaard [20] < MOD/REF < \
     Ruf-style points-to; the paper's claim is that the top rungs barely \
     differ)@."
    "Program" "analysis" "ops" "loads" "stores";
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun analysis ->
          let cfg = { Config.default with Config.analysis } in
          let c =
            cell p (Printf.sprintf "abl6/%s" (Config.analysis_name analysis))
              cfg
          in
          Fmt.pr "%-10s %-9s %12d %12d %12d@." name
            (Config.analysis_name analysis) c.ops c.loads c.stores)
        [ Config.Anone; Config.Asteens; Config.Amodref; Config.Apointer ])
    [ "fft"; "bc"; "clean"; "go" ]

(* ------------------------------------------------------------------ *)
(* The cell inventory                                                  *)
(* ------------------------------------------------------------------ *)

(** Every (program, cell-name, config) the table sections will request,
    in request order — the parallel prewarm's work list.  Kept next to
    the sections above; a cell missing here is still correct, just
    computed serially on first use. *)
let table_cells () : (Rp_suite.Programs.program * string * Config.t) list =
  let cells = ref [] in
  let add p cname cfg = cells := (p, cname, cfg) :: !cells in
  (* Figures 5-7: the paper grid, every program *)
  List.iter
    (fun (p : Rp_suite.Programs.program) ->
      List.iter (fun (cname, cfg) -> add p cname cfg) Config.paper_grid)
    Rp_suite.Programs.all;
  (* §3.3 *)
  let scalar_cfg = { Config.default with Config.analysis = Config.Apointer } in
  let both_cfg = { scalar_cfg with Config.ptr_promote = true } in
  List.iter
    (fun p ->
      add p "s33/scalar" scalar_cfg;
      add p "s33/both" both_cfg)
    Rp_suite.Programs.all;
  (* §5 register pressure *)
  let water = Rp_suite.Programs.find "water" in
  List.iter
    (fun k ->
      List.iter
        (fun promote ->
          add water
            (Printf.sprintf "water/k%d/%b" k promote)
            { Config.default with Config.analysis = Config.Amodref; promote; k })
        [ false; true ])
    [ 12; 16; 24; 32 ];
  (* ablations 1-6 *)
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      add p "abl1/none+promotion"
        { Config.default with Config.analysis = Config.Anone };
      add p "abl1/modref+promotion" Config.default)
    [ "clean"; "bc"; "mlink" ];
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      add p "abl2/store-if-stored" Config.default;
      add p "abl2/always-store"
        { Config.default with Config.always_store = true })
    [ "go"; "bison"; "gzip(dec)" ];
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      add p "abl3/neither"
        { Config.default with Config.promote = false; optimize = false };
      add p "abl3/optimizer-only" { Config.default with Config.promote = false };
      add p "abl3/promotion-only" { Config.default with Config.optimize = false };
      add p "abl3/both" Config.default)
    [ "mlink"; "clean" ];
  List.iter
    (fun k ->
      List.iter
        (fun (cname, cfg) ->
          add water (Printf.sprintf "abl4/%s/k%d" cname k) { cfg with Config.k })
        [
          ("without", { Config.default with Config.promote = false });
          ("naive", Config.default);
          ("throttled", { Config.default with Config.throttle = true });
        ])
    [ 12; 16; 24; 32 ];
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      add p "abl5/paper" Config.default;
      add p "abl5/paper+dse" { Config.default with Config.dse = true })
    [ "mlink"; "indent"; "gzip(enc)" ];
  List.iter
    (fun name ->
      let p = Rp_suite.Programs.find name in
      List.iter
        (fun analysis ->
          add p
            (Printf.sprintf "abl6/%s" (Config.analysis_name analysis))
            { Config.default with Config.analysis })
        [ Config.Anone; Config.Asteens; Config.Amodref; Config.Apointer ])
    [ "fft"; "bc"; "clean"; "go" ];
  List.rev !cells

(* ------------------------------------------------------------------ *)
(* --json: machine-readable exports                                    *)
(* ------------------------------------------------------------------ *)

module Json = Rp_support.Json

let cell_json = function
  | Cok c ->
    Json.Obj
      [
        ("ops", Json.Int c.ops);
        ("loads", Json.Int c.loads);
        ("stores", Json.Int c.stores);
        ("checksum", Json.Int c.checksum);
        ("ptr_promoted", Json.Int c.ptr_promoted);
      ]
  | Cquarantined reason -> Json.Obj [ ("degraded", Json.Str reason) ]

(* schema v3 cells carry ptr_promoted; v2 journal records (written before
   the field existed) are still resumable, defaulting the counter to 0 *)
let cell_of_json = function
  | Json.Obj
      [
        ("ops", Json.Int ops);
        ("loads", Json.Int loads);
        ("stores", Json.Int stores);
        ("checksum", Json.Int checksum);
        ("ptr_promoted", Json.Int ptr_promoted);
      ] ->
    Some (Cok { ops; loads; stores; checksum; ptr_promoted })
  | Json.Obj
      [
        ("ops", Json.Int ops);
        ("loads", Json.Int loads);
        ("stores", Json.Int stores);
        ("checksum", Json.Int checksum);
      ] ->
    Some (Cok { ops; loads; stores; checksum; ptr_promoted = 0 })
  | Json.Obj [ ("degraded", Json.Str reason) ] -> Some (Cquarantined reason)
  | _ -> None

(** Host/toolchain provenance for the timings document (schema v3):
    timings are machine-dependent, so the machine is named in the file —
    kernel/arch, the C compiler identity (even for interpreted runs, so
    an interp-vs-native pair taken on one host is self-describing), and
    the OCaml word size. *)
let host_json () =
  let first_line_of cmd =
    try
      let ic = Unix.open_process_in cmd in
      let line = try Some (input_line ic) with End_of_file -> None in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> line
      | _ -> None)
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  let uname =
    Option.value (first_line_of "uname -srm 2>/dev/null") ~default:"unknown"
  in
  let cc_id =
    match !native_cc with
    | Some cc -> cc.Rp_backend.Native.identity
    | None -> (
      (* memoized per process and persisted through the CAS identity
         cache: an all-warm campaign writes its host record without
         spawning `cc --version` at all *)
      match Rp_backend.Native.find_cc ~cache:(Lazy.force native_cas) () with
      | Some cc -> cc.Rp_backend.Native.identity
      | None -> "unavailable")
  in
  Json.Obj
    [
      ("uname", Json.Str uname);
      ("cc", Json.Str cc_id);
      ("word_size", Json.Int Sys.word_size);
    ]

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Write [BENCH_counts.json] (program × grid config × dynamic counts,
    schema v2: plus the run's resilience counters; v3: six-config grid and
    per-cell [ptr_promoted]; v4: per-program breaker snapshots inside
    [resilience]; v5: the resilience object gains the fleet
    [failovers]/[respawns] counters) and [BENCH_timings.json]
    (program × config × per-pass wall-clock and analysis fixpoint
    iterations, schema v2: plus per-cell wall/run time, the job count, and
    the grid's wall-clock).  Counts are deterministic — byte-identical at
    every [-j] — and serve as a committable baseline; timings are
    machine-dependent and meant for relative comparison between runs on one
    machine.

    Cells run under {!Rp_support.Pool.run_supervised} on [!jobs] worker
    domains; a cell is one compile+run of one (program, config) pair, and
    results are regrouped into (program × config) rows in grid order, so
    document structure never depends on scheduling.  With [--job-timeout]
    each cell gets a wall-clock deadline (enforced cooperatively through
    the interpreter's [should_stop] polling and by the pool's wedge
    detector); a cell that exhausts its [--retries] budget lands as a
    degraded cell instead of aborting the grid.  A per-program circuit
    breaker ([--breaker-threshold] consecutive failures) short-circuits
    the remaining cells of a systematically bad program.  [--journal]
    appends one fsynced record per finished cell; [--resume] reloads such
    a journal and recomputes only the missing cells.  SIGINT flushes the
    journal and exits 130.  Under [--verify-passes] a degraded pass is
    still fatal: the first failing cell in grid order aborts, as in a
    sequential run. *)
let json_export () =
  let module R = Rp_support.Resilience in
  let resil = R.create () in
  let grid_t0 = Rp_support.Clock.now () in
  let flat =
    List.concat_map
      (fun (p : Rp_suite.Programs.program) ->
        List.map (fun (cname, cfg) -> (p, cname, cfg)) Config.paper_grid)
      Rp_suite.Programs.all
  in
  (* --resume: cells already finished by a previous (possibly killed) run *)
  let resumed : (string * string, cell_result) Hashtbl.t = Hashtbl.create 64 in
  Option.iter
    (fun path ->
      List.iter
        (function
          | Json.Obj
              [
                ("program", Json.Str p); ("config", Json.Str c); ("cell", cj);
              ]
            when not (Hashtbl.mem resumed (p, c)) ->
            Option.iter
              (fun cell ->
                Hashtbl.replace resumed (p, c) cell;
                R.tick resil R.Resumed)
              (cell_of_json cj)
          | _ -> ())
        (Rp_support.Journal.load path))
    !resume_path;
  let fresh =
    Array.of_list
      (List.filter
         (fun ((p : Rp_suite.Programs.program), cname, _) ->
           not (Hashtbl.mem resumed (p.Rp_suite.Programs.name, cname)))
         flat)
  in
  let jwriter = Option.map Rp_support.Journal.create !journal_path in
  let breaker =
    Rp_support.Retry.Breaker.create ~threshold:!breaker_threshold ()
  in
  let planted pname cname =
    match !plant_hang with
    | Some s -> s = pname ^ ":" ^ cname
    | None -> false
  in
  (* One supervised job = one cell.  The last tuple slot carries a fatal
     --verify-passes failure out of the pool: it must abort the whole
     bench (the CI soundness gate), not degrade to a quarantined cell, so
     it is not allowed to escape as an exception the pool would retry. *)
  let job ~should_stop ((p : Rp_suite.Programs.program), cname, cfg) =
    let pname = p.Rp_suite.Programs.name in
    if planted pname cname then begin
      (* test fixture for the supervision layer: a cell that never
         terminates on its own but polls its deadline cooperatively *)
      while not (should_stop ()) do
        ignore (Sys.opaque_identity 0)
      done;
      raise Exit
    end;
    let t0 = Rp_support.Clock.now () in
    match
      Rp_support.Retry.Breaker.call breaker ~key:pname (fun () ->
          match !native_cc with
          | None ->
            let _, st, r =
              run_raw ~should_stop pname cfg p.Rp_suite.Programs.source
            in
            (st, r, None)
          | Some cc ->
            run_native ~should_stop pname cfg p.Rp_suite.Programs.source cc)
    with
    | Ok (st, r, nat) ->
      let wall = Rp_support.Clock.elapsed t0 in
      let t = counts r in
      ( cname,
        Some (st, nat),
        Cok
          { ops = t.I.ops; loads = t.I.loads; stores = t.I.stores;
            checksum = r.I.checksum; ptr_promoted = st.Pipeline.ptr_promoted },
        wall,
        None )
    | Error (Rp_support.Retry.Breaker.Open_circuit key) ->
      ( cname,
        None,
        Cquarantined
          (Printf.sprintf "%s under %s: circuit open for %s" pname cname key),
        0.,
        None )
    | Error (Quarantined m) when has_substring m "external stop" ->
      (* the interpreter was stopped by the pool's deadline, not by its
         own fuel: re-raise so the pool classifies the attempt as timed
         out and applies the retry policy *)
      raise (Quarantined m)
    | Error (Quarantined m) -> (cname, None, Cquarantined m, 0., None)
    | Error (Failure m) -> (cname, None, Cquarantined m, 0., Some m)
    | Error e -> raise e
  in
  let results =
    Fun.protect
      ~finally:(fun () -> Option.iter Rp_support.Journal.close jwriter)
      (fun () ->
        let on_result k o =
          match (o, jwriter) with
          | Ok (cname, _, c, _, None), Some w ->
            let ((p : Rp_suite.Programs.program), _, _) = fresh.(k) in
            Rp_support.Journal.record w
              (Json.Obj
                 [
                   ("program", Json.Str p.Rp_suite.Programs.name);
                   ("config", Json.Str cname);
                   ("cell", cell_json c);
                 ])
          | _ -> ()
        in
        Rp_support.Pool.run_supervised ~jobs:!jobs ?timeout:!job_timeout
          ~retries:!job_retries
          ~cancel:(fun () -> Atomic.get interrupted)
          ~resilience:resil ~on_result job fresh)
  in
  if Atomic.get interrupted then begin
    let finished =
      Hashtbl.length resumed
      + Array.fold_left
          (fun n o -> match o with Ok _ -> n + 1 | Error _ -> n)
          0 results
    in
    let hint =
      match !journal_path with
      | Some p -> Printf.sprintf "; resume with --resume %s" p
      | None -> " (no --journal, completed work is lost)"
    in
    Fmt.epr "interrupted after %d/%d finished cells%s@." finished
      (List.length flat) hint;
    exit 130
  end;
  (* --verify-passes: the first fatal cell in grid order aborts, with the
     same exception a sequential run would have raised *)
  Array.iter
    (function Ok (_, _, _, _, Some m) -> failwith m | _ -> ())
    results;
  R.set resil R.Breaker_trip (Rp_support.Retry.Breaker.trips breaker);
  let grid_wall = Rp_support.Clock.elapsed grid_t0 in
  let fi = ref 0 in
  let cells =
    Array.of_list
      (List.map
         (fun ((p : Rp_suite.Programs.program), cname, _) ->
           match
             Hashtbl.find_opt resumed (p.Rp_suite.Programs.name, cname)
           with
           | Some c -> (cname, None, c, 0., true)
           | None ->
             let k = !fi in
             incr fi;
             (match results.(k) with
             | Ok (cname, st, c, wall, _) -> (cname, st, c, wall, false)
             | Error f ->
               ( cname,
                 None,
                 Cquarantined
                   (Fmt.str "%s under %s: %a" p.Rp_suite.Programs.name cname
                      Rp_support.Pool.pp_job_failure f),
                 0.,
                 false )))
         flat)
  in
  let nconfigs = List.length Config.paper_grid in
  let rows =
    List.mapi
      (fun i (p : Rp_suite.Programs.program) ->
        ( p.Rp_suite.Programs.name,
          List.init nconfigs (fun j -> cells.((i * nconfigs) + j)) ))
      Rp_suite.Programs.all
  in
  let counts_doc =
    Json.Obj
      [
        ("schema", Json.Str "rpcc-bench-counts/6");
        ( "programs",
          Json.Obj
            (List.map
               (fun (pname, per_config) ->
                 ( pname,
                   Json.Obj
                     (List.map
                        (fun (cname, _, c, _, _) -> (cname, cell_json c))
                        per_config) ))
               rows) );
        (* v4: per-program breaker snapshots ride along so a grid that
           tripped circuits says which programs and when *)
        ( "resilience",
          R.to_json
            ~breakers:(Rp_support.Retry.Breaker.snapshots_json breaker)
            resil );
        (* v6: cells that a --native campaign served from the ladder's
           interpreter rung.  Top-level, not per-cell, so the cells stay
           byte-identical across modes; 0 on every healthy run of either
           mode, nonzero only when native execution was requested and
           genuinely unavailable (e.g. a planted cc failure) *)
        ( "exec",
          Json.Obj
            [ ("degraded_native", Json.Int (Atomic.get degraded_native)) ] );
      ]
  in
  let timings_doc =
    Json.Obj
      [
        ("schema", Json.Str "rpcc-bench-timings/4");
        ("jobs", Json.Int !jobs);
        ( "mode",
          Json.Str (match !native_cc with Some _ -> "native" | None -> "interp")
        );
        ("host", host_json ());
        ( "programs",
          Json.Obj
            (List.map
               (fun (pname, per_config) ->
                 ( pname,
                   Json.Obj
                     (List.map
                        (fun (cname, st, c, wall, was_resumed) ->
                          ( cname,
                            match st with
                            | Some (st, nat) ->
                              let compile_s = Pipeline.total_time st in
                              (* the cell is one compile followed by one
                                 run; interpreted, the run's share is wall
                                 minus compile; native, it is the binary's
                                 measured wall time *)
                              Json.Obj
                                ([
                                   ("wall_ms", Json.Float (1000. *. wall));
                                   ( "run_ms",
                                     Json.Float
                                       (match nat with
                                       | Some (_, exec_ms, _, _) -> exec_ms
                                       | None ->
                                         1000. *. max 0. (wall -. compile_s))
                                   );
                                 ]
                                (* v4: exec_mode names the ladder rung
                                   that answered a --native cell; the
                                   mode-dependent telemetry lives here,
                                   not in the counts document, which must
                                   stay byte-identical across modes *)
                                @ (match nat with
                                  | Some (cc_ms, _, hit, mode) ->
                                    [
                                      ("cc_ms", Json.Float cc_ms);
                                      ("cc_cache_hit", Json.Bool hit);
                                      ("exec_mode", Json.Str mode);
                                    ]
                                  | None -> [])
                                @ [
                                    ( "compile",
                                      Pipeline.stats_json
                                        (List.assoc cname Config.paper_grid)
                                        st );
                                  ])
                            | None when was_resumed ->
                              (* timing was spent in the journaled run *)
                              Json.Obj [ ("resumed", Json.Bool true) ]
                            | None ->
                              let reason =
                                match c with
                                | Cquarantined r -> r
                                | Cok _ -> "quarantined"
                              in
                              Json.Obj [ ("degraded", Json.Str reason) ] ))
                        per_config) ))
               rows) );
        ( "total_compile_ms",
          Json.Float
            (1000.
            *. List.fold_left
                 (fun acc (_, per_config) ->
                   List.fold_left
                     (fun acc (_, st, _, _, _) ->
                       match st with
                       | Some (st, _) -> acc +. Pipeline.total_time st
                       | None -> acc)
                     acc per_config)
                 0. rows) );
        ("grid_wall_ms", Json.Float (1000. *. grid_wall));
      ]
  in
  Json.to_file "BENCH_counts.json" counts_doc;
  Json.to_file "BENCH_timings.json" timings_doc;
  if R.any resil then Fmt.epr "resilience: %a@." R.pp resil;
  Fmt.pr "wrote BENCH_counts.json (%d programs x %d configs)@."
    (List.length rows)
    (List.length Config.paper_grid);
  Fmt.pr "wrote BENCH_timings.json@."

(* ------------------------------------------------------------------ *)
(* --json --via-daemon / --via-fleet: the counts grid through rpcc     *)
(* serve, single daemon or sharded fleet                               *)
(* ------------------------------------------------------------------ *)

(** The remote counts grid, shared between the single-daemon and fleet
    exporters.  Requests go in batches of at most 32 per connection
    (inside the daemon's default queue bound), responses come back in
    request order, and the document is assembled in the same grid order
    as {!json_export} — so via-daemon and via-fleet runs against healthy
    or crashing backends all produce byte-identical [BENCH_counts.json]
    files: responses are deterministic given the shared store, and the
    exporter extracts only the count fields. *)

let remote_flat () =
  List.concat_map
    (fun (p : Rp_suite.Programs.program) ->
      List.map (fun (cname, cfg) -> (p, cname, cfg)) Config.paper_grid)
    Rp_suite.Programs.all

let remote_req i ((p : Rp_suite.Programs.program), cname, _) =
  Json.Obj
    ([
       ("schema", Json.Str Rp_serve.Protocol.schema);
       ("id", Json.Int i);
       ("client", Json.Str "bench");
       ("op", Json.Str "run");
       ("src", Json.Str p.Rp_suite.Programs.source);
       ("config", Json.Str cname);
     ]
    (* --native: the shard answers through its own degradation ladder
       and reports the rung in the response's [exec] object; the counts
       we extract are mode-independent by contract *)
    @ (if !remote_native then [ ("mode", Json.Str "native") ] else []))

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k = function
      | x :: rest when k > 0 ->
        let (head, tail) = take (k - 1) rest in
        (x :: head, tail)
      | rest -> ([], rest)
    in
    let (head, tail) = take n l in
    head :: chunks n tail

let cell_of_response ((p : Rp_suite.Programs.program), cname, _) resp =
    let pname = p.Rp_suite.Programs.name in
    match Rp_serve.Protocol.response_status resp with
    | "ok" -> (
      let int_in doc k =
        match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None
      in
      let ptr_promoted =
        match Json.member "stats" resp with
        | Some st -> (
          match Json.member "counters" st with
          | Some c -> Option.value (int_in c "ptr_promoted") ~default:0
          | None -> 0)
        | None -> 0
      in
      match Json.member "result" resp with
      | Some res -> (
        match
          ( int_in res "ops", int_in res "loads", int_in res "stores",
            int_in res "checksum" )
        with
        | Some ops, Some loads, Some stores, Some checksum ->
          Cok { ops; loads; stores; checksum; ptr_promoted }
        | _ ->
          Cquarantined
            (Printf.sprintf "%s under %s: malformed daemon result" pname
               cname))
      | None ->
        Cquarantined
          (Printf.sprintf "%s under %s: daemon response has no result" pname
             cname))
    | status ->
      let msg =
        match Json.member "message" resp with
        | Some (Json.Str m) -> m
        | _ -> "no message"
      in
      Cquarantined
        (Printf.sprintf "%s under %s: daemon %s: %s" pname cname status msg)

(** Assemble and write the counts document from per-cell responses —
    identical structure and bytes whether the cells came from a local
    grid run, one daemon, or a (possibly crashing) fleet.  Supervision
    lives backend-side (daemon health / BENCH_fleet.json); the
    client-side resilience counters here are structurally present and
    zero so the document's shape matches a local run. *)
let write_remote_counts_doc flat responses =
  let module R = Rp_support.Resilience in
  let cells = Array.of_list (List.map2 cell_of_response flat responses) in
  let nconfigs = List.length Config.paper_grid in
  let rows =
    List.mapi
      (fun i (p : Rp_suite.Programs.program) ->
        ( p.Rp_suite.Programs.name,
          List.init nconfigs (fun j ->
              let (_, cname, _) = List.nth flat ((i * nconfigs) + j) in
              (cname, cells.((i * nconfigs) + j))) ))
      Rp_suite.Programs.all
  in
  (* cells whose shard answered from the ladder's interpreter rung
     (exec.degraded in the response); 0 for interp campaigns (no exec
     object) and for native campaigns where every shard answered
     natively, so healthy documents cmp clean across modes *)
  let degraded_native =
    List.fold_left
      (fun n resp ->
        match Json.member "exec" resp with
        | Some e -> (
          match Json.member "degraded" e with
          | Some (Json.Bool true) -> n + 1
          | _ -> n)
        | None -> n)
      0 responses
  in
  let counts_doc =
    Json.Obj
      [
        ("schema", Json.Str "rpcc-bench-counts/6");
        ( "programs",
          Json.Obj
            (List.map
               (fun (pname, per_config) ->
                 ( pname,
                   Json.Obj
                     (List.map
                        (fun (cname, c) -> (cname, cell_json c))
                        per_config) ))
               rows) );
        ("resilience", R.to_json (R.create ()));
        ( "exec",
          Json.Obj [ ("degraded_native", Json.Int degraded_native) ] );
      ]
  in
  Json.to_file "BENCH_counts.json" counts_doc;
  List.length rows

(** One [rpcc serve] daemon: the daemon owns supervision and timing
    state, so only the counts document is written; the grid's
    wall-clock is printed (warm runs show the cache). *)
let json_export_via_daemon socket =
  let grid_t0 = Rp_support.Clock.now () in
  let flat = remote_flat () in
  let requests = List.mapi remote_req flat in
  let responses =
    try
      List.concat_map
        (fun batch -> Rp_serve.Client.call ~timeout:300. ~socket batch)
        (chunks 32 requests)
    with
    | Unix.Unix_error (e, _, _) ->
      Fmt.epr "cannot reach daemon at %s: %s@." socket (Unix.error_message e);
      exit 2
    | Rp_serve.Client.Timeout m ->
      Fmt.epr "daemon timeout: %s@." m;
      exit 3
  in
  if List.length responses <> List.length flat then begin
    Fmt.epr "daemon answered %d of %d requests@." (List.length responses)
      (List.length flat);
    exit 2
  end;
  let nrows = write_remote_counts_doc flat responses in
  Fmt.pr "wrote BENCH_counts.json (%d programs x %d configs) via %s@." nrows
    (List.length Config.paper_grid)
    socket;
  Fmt.pr "grid wall: %.1f ms@." (1000. *. Rp_support.Clock.elapsed grid_t0)

(** Chaos-drill step two: flip one payload byte of a cached native
    binary in the fleet's shared store, leaving the stale CRC in place.
    The next shard to read the entry quarantines it ([Cas.get] verifies
    the checksum) and the degradation ladder recompiles — the counts
    document must not notice.  No-op when no native binary is cached
    yet (interp drills, cold stores). *)
let corrupt_native_bin cas_root =
  let objects = Filename.concat cas_root "objects" in
  let shards = try Sys.readdir objects with Sys_error _ -> [||] in
  let victim =
    Array.fold_left
      (fun acc shard ->
        match acc with
        | Some _ -> acc
        | None ->
          let dir = Filename.concat objects shard in
          let entries = try Sys.readdir dir with Sys_error _ -> [||] in
          Array.fold_left
            (fun acc f ->
              match acc with
              | Some _ -> acc
              | None ->
                if Filename.check_suffix f ".native-bin" then
                  Some (Filename.concat dir f)
                else None)
            None entries)
      None shards
  in
  match victim with
  | None -> ()
  | Some path -> (
    try
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let len = Unix.lseek fd 0 Unix.SEEK_END in
          if len > 0 then begin
            ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET : int);
            let b = Bytes.create 1 in
            if Unix.read fd b 0 1 = 1 then begin
              Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
              ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET : int);
              ignore (Unix.write fd b 0 1 : int)
            end
          end)
    with Unix.Unix_error _ -> ())

(** A supervised shard fleet: spawn it, route the grid through the
    rendezvous router, and write [BENCH_fleet.json] (supervisor + router
    telemetry and the real failover/respawn counters) alongside the
    byte-identical counts document.  [plant] SIGKILLs the second
    batch's first-choice shard right before that batch is sent — the
    deterministic chaos drill: the router must fail the batch over and
    the supervisor must respawn the victim, with no effect on the
    counts document. *)
let json_export_via_fleet shards ~plant ~state_dir =
  let module R = Rp_support.Resilience in
  let module Fleet = Rp_serve.Fleet in
  let module Router = Rp_serve.Fleet_client in
  let flat = remote_flat () in
  let requests = List.mapi remote_req flat in
  let resil = R.create () in
  let boot_t0 = Rp_support.Clock.now () in
  let fleet =
    Fleet.start
      { Fleet.default_config with Fleet.shards; state_dir; jobs = !jobs }
  in
  Fmt.pr "fleet up: %.1f ms@." (1000. *. Rp_support.Clock.elapsed boot_t0);
  (* the grid clock starts once the fleet accepts, mirroring the
     via-daemon path (which times against an already-running daemon) *)
  let grid_t0 = Rp_support.Clock.now () in
  Fun.protect
    ~finally:(fun () -> Fleet.stop fleet)
    (fun () ->
      let router =
        Router.create ~timeout:300. ~resilience:resil
          ~sockets:(Fleet.sockets fleet) ()
      in
      let responses =
        try
          List.concat
            (List.mapi
               (fun bi batch ->
                 let plant_hook =
                   if plant && bi = 1 then
                     Some
                       (fun s ->
                         (* two faults at once: a cached artifact goes
                            bad AND the batch's first-choice shard dies.
                            The survivors must quarantine + recompile
                            and the router must fail over, with zero
                            effect on the counts document *)
                         corrupt_native_bin (Fleet.cas_dir fleet);
                         Fleet.kill_shard fleet s)
                   else None
                 in
                 Router.route ?plant:plant_hook router batch)
               (* chunking exists to give the planted crash a
                  mid-campaign batch boundary; without a drill the grid
                  goes out as one round so each shard sees one batch *)
               (if plant then chunks 32 requests else [ requests ]))
        with Router.All_shards_dead ->
          Fmt.epr "fleet: all shards dead@.";
          exit 3
      in
      if List.length responses <> List.length flat then begin
        Fmt.epr "fleet answered %d of %d requests@." (List.length responses)
          (List.length flat);
        exit 2
      end;
      let nrows = write_remote_counts_doc flat responses in
      (* let the supervisor finish respawning any planted kill before
         the telemetry is frozen *)
      let deadline = Rp_support.Clock.now () +. 15. in
      while
        Fleet.respawns fleet < Fleet.planted fleet
        && Rp_support.Clock.now () < deadline
      do
        Unix.sleepf 0.1
      done;
      R.merge ~into:resil (Fleet.resilience fleet);
      let fleet_doc =
        Json.Obj
          [
            ("schema", Json.Str "rpcc-fleet/1");
            ("shards", Json.Int shards);
            ("supervisor", Fleet.telemetry_json fleet);
            ("router", Router.telemetry_json router);
            ("resilience", R.to_json resil);
          ]
      in
      Json.to_file "BENCH_fleet.json" fleet_doc;
      Fmt.pr
        "wrote BENCH_counts.json (%d programs x %d configs) via fleet of %d@."
        nrows
        (List.length Config.paper_grid)
        shards;
      Fmt.pr "wrote BENCH_fleet.json (failovers %d, respawns %d)@."
        (Router.failovers router) (Fleet.respawns fleet);
      Fmt.pr "grid wall: %.1f ms@." (1000. *. Rp_support.Clock.elapsed grid_t0))

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches (one Test.make per table)                   *)
(* ------------------------------------------------------------------ *)

let timings () =
  let open Bechamel in
  let mlink = (Rp_suite.Programs.find "mlink").Rp_suite.Programs.source in
  let go = (Rp_suite.Programs.find "go").Rp_suite.Programs.source in
  let compile cfg src () = ignore (Pipeline.compile ~config:cfg src) in
  let grid name = List.assoc name Config.paper_grid in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        (* Figure 4 is the front end itself *)
        Test.make ~name:"figure4_frontend"
          (Staged.stage (fun () ->
               List.iter
                 (fun (p : Rp_suite.Programs.program) ->
                   ignore (Rp_irgen.Irgen.compile_source p.Rp_suite.Programs.source))
                 Rp_suite.Programs.all));
        (* Figures 5-7 all flow through the grid pipeline; time one
           representative program per figure *)
        Test.make ~name:"figure5_pipeline_modref"
          (Staged.stage (compile (grid "modref/with") mlink));
        Test.make ~name:"figure6_pipeline_pointer"
          (Staged.stage (compile (grid "pointer/with") mlink));
        Test.make ~name:"figure7_pipeline_go"
          (Staged.stage (compile (grid "pointer/with") go));
        (* §3.3 adds pointer-based promotion *)
        Test.make ~name:"section33_ptr_promotion"
          (Staged.stage
             (compile
                { Config.default with
                  Config.analysis = Config.Apointer; ptr_promote = true }
                (Rp_suite.Programs.find "fft").Rp_suite.Programs.source));
        (* the pressure table exercises the allocator *)
        Test.make ~name:"pressure_regalloc_k12"
          (Staged.stage
             (compile
                { Config.default with Config.k = 12 }
                (Rp_suite.Programs.find "water").Rp_suite.Programs.source));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Fmt.pr "@.== Compiler timings (Bechamel, monotonic clock) ==@.";
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Fmt.pr "%-40s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-40s %12s@." name "n/a")
        (List.sort compare rows))
    results

(* ------------------------------------------------------------------ *)

(** Parse [-j N] / [--jobs N] / [--jobs=N]; 0 means the machine's
    recommended domain count. *)
let rec parse_jobs = function
  | [] -> 1
  | ("-j" | "--jobs") :: v :: _ -> int_of_string v
  | a :: rest ->
    (match String.index_opt a '=' with
    | Some i when String.sub a 0 i = "--jobs" ->
      int_of_string (String.sub a (i + 1) (String.length a - i - 1))
    | _ -> parse_jobs rest)

(** Parse [--name V] / [--name=V]. *)
let opt_value name args =
  let prefix = name ^ "=" in
  let rec go = function
    | [] -> None
    | a :: v :: _ when a = name -> Some v
    | a :: rest ->
      if String.starts_with ~prefix a then
        Some
          (String.sub a (String.length prefix)
             (String.length a - String.length prefix))
      else go rest
  in
  go args

let () =
  let args = Array.to_list Sys.argv in
  let rest = List.tl args in
  let want_timings = List.mem "--timings" args in
  let want_json = List.mem "--json" args in
  verify := List.mem "--verify-passes" args;
  (* uniform with rpcc serve/fuzz/gen-fuzz: 0 = auto, negative = usage
     error (exit 2), never a silent clamp *)
  jobs := Rp_support.Cli.jobs ~flag:"-j/--jobs" (parse_jobs rest);
  job_timeout := Option.map float_of_string (opt_value "--job-timeout" rest);
  Option.iter
    (fun v -> job_retries := max 0 (int_of_string v))
    (opt_value "--retries" rest);
  Option.iter
    (fun v -> breaker_threshold := max 1 (int_of_string v))
    (opt_value "--breaker-threshold" rest);
  journal_path := opt_value "--journal" rest;
  resume_path := opt_value "--resume" rest;
  plant_hang := opt_value "--plant-hang" rest;
  let via_daemon = opt_value "--via-daemon" rest in
  let via_fleet = Option.map int_of_string (opt_value "--via-fleet" rest) in
  let want_native = List.mem "--native" args in
  let plant_cc_failure = List.mem "--plant-cc-failure" args in
  if plant_cc_failure && not want_native then begin
    Fmt.epr "--plant-cc-failure requires --native@.";
    exit 2
  end;
  if want_native then begin
    if not want_json then begin
      Fmt.epr "--native requires --json@.";
      exit 2
    end;
    let flags =
      match opt_value "--cc-flags" rest with
      | Some s ->
        List.filter (fun f -> f <> "") (String.split_on_char ' ' s)
      | None -> [ "-O1" ]
    in
    if via_daemon <> None || via_fleet <> None then
      (* rpcc-serve/2 carries the mode per job: each shard compiles and
         executes through its own degradation ladder, so nothing is
         probed (or planted) in this process *)
      if plant_cc_failure then begin
        Fmt.epr
          "--plant-cc-failure plants a local compiler and cannot be \
           combined with --via-daemon/--via-fleet@.";
        exit 2
      end
      else remote_native := true
    else begin
      (if plant_cc_failure then
         (* a compiler that cannot exist: every cell's native attempt
            (and its recompile retry) fails, forcing the interpreter
            rung; the fake identity keeps its binary keys clear of any
            real compiler's warm cache, so the failure cannot be masked
            by a cached binary *)
         native_cc :=
           Some
             {
               Rp_backend.Native.path = "/nonexistent/rpcc-planted-cc";
               flags;
               identity = "planted-broken-cc";
             }
       else
         match
           Rp_backend.Native.find_cc ~cache:(Lazy.force native_cas) ~flags ()
         with
         | Some cc -> native_cc := Some cc
         | None ->
           Fmt.epr
             "--native: no working C compiler found (probed `cc --version`)@.";
           exit 2);
      ignore (Lazy.force native_cas : Rp_support.Cas.t)
    end
  end;
  let plant_crash = List.mem "--plant-crash" args in
  let fleet_state =
    Option.value (opt_value "--fleet-state" rest) ~default:".rpcc-fleet"
  in
  let remote_conflicts () =
    (* supervision, journaling, and verification all live backend-side *)
    if
      !journal_path <> None || !resume_path <> None || !plant_hang <> None
      || !verify
    then begin
      Fmt.epr
        "--via-daemon/--via-fleet cannot be combined with \
         --journal/--resume/--plant-hang/--verify-passes@.";
      exit 2
    end
  in
  if want_json then begin
    match (via_daemon, via_fleet) with
    | Some _, Some _ ->
      Fmt.epr "--via-daemon and --via-fleet are mutually exclusive@.";
      exit 2
    | Some socket, None ->
      remote_conflicts ();
      if plant_crash then begin
        Fmt.epr "--plant-crash requires --via-fleet@.";
        exit 2
      end;
      json_export_via_daemon socket
    | None, Some shards ->
      remote_conflicts ();
      if shards < 1 then begin
        Fmt.epr "--via-fleet needs at least one shard@.";
        exit 2
      end;
      json_export_via_fleet shards ~plant:plant_crash ~state_dir:fleet_state
    | None, None ->
      if plant_crash then begin
        Fmt.epr "--plant-crash requires --via-fleet@.";
        exit 2
      end;
      if !plant_hang <> None && !job_timeout = None then begin
        Fmt.epr "--plant-hang requires --job-timeout@.";
        exit 2
      end;
      (try
         Sys.set_signal Sys.sigint
           (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))
       with Invalid_argument _ | Sys_error _ -> ());
      json_export ()
  end
  else begin
  let only_timings = want_timings && not (List.mem "--tables" args) in
  if not only_timings then begin
    Fmt.pr
      "Register Promotion in C Programs (Cooper & Lu, PLDI 1997) — \
       reproduction@.";
    Fmt.pr
      "Memory-operation hierarchy (Table 1): iLoad, cLoad, sLoad/sStore, \
       Load/Store@.";
    (* each table section survives a quarantined program: the reason is
       printed in place and the remaining sections still run *)
    let section f =
      try f () with Quarantined m -> Fmt.pr "  quarantined: %s@." m
    in
    (* compute the full grid in parallel before any table renders; the
       sections below then read the memo cache in their fixed order *)
    if !jobs > 1 then prewarm (table_cells ());
    figure4 ();
    section metric_tables;
    section mlink_function;
    section section33;
    section pressure;
    section ablations;
    Fmt.pr "@.All configurations produced identical checksums per program.@."
  end;
  if want_timings then timings ()
  end
